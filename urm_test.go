package urm

import (
	"context"
	"errors"
	"math"
	"testing"
)

// buildPeopleSchemas creates the small running-example schemas of the paper's
// introduction through the public API.
func buildPeopleSchemas() (*Schema, *Schema) {
	source := NewSchema("crm")
	source.MustAddRelation(&RelationSchema{Name: "Customer", Columns: []Column{
		{Name: "cid", Type: TypeInt}, {Name: "cname"}, {Name: "ophone"}, {Name: "hphone"},
		{Name: "mobile"}, {Name: "oaddr"}, {Name: "haddr"},
	}})
	target := NewSchema("partner")
	target.MustAddRelation(&RelationSchema{Name: "Person", Columns: []Column{
		{Name: "pname"}, {Name: "phone"}, {Name: "addr"},
	}})
	return source, target
}

func buildPeopleInstance() *Instance {
	db := NewInstance("crm-db")
	c := NewRelation("Customer", []string{"cid", "cname", "ophone", "hphone", "mobile", "oaddr", "haddr"})
	c.MustAppend(Tuple{Int(1), String("Alice"), String("123"), String("789"), String("555"), String("aaa"), String("hk")})
	c.MustAppend(Tuple{Int(2), String("Bob"), String("456"), String("123"), String("556"), String("bbb"), String("hk")})
	c.MustAppend(Tuple{Int(3), String("Cindy"), String("456"), String("789"), String("557"), String("aaa"), String("aaa")})
	db.AddRelation(c)
	return db
}

func TestFacadeEndToEnd(t *testing.T) {
	source, target := buildPeopleSchemas()
	matching, err := Match(source, target, MatchOptions{Mappings: 6, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(matching.Mappings) == 0 {
		t.Fatal("no mappings derived")
	}
	if r := ORatio(matching.Mappings); r <= 0 || r > 1 {
		t.Errorf("o-ratio out of range: %g", r)
	}
	db := buildPeopleInstance()
	q, err := ParseQuery("q0", target, "SELECT addr FROM Person WHERE phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{Basic, EBasic, EMQO, QSharing, OSharing} {
		res, err := Evaluate(q, matching.Mappings, db, Options{Method: method, Strategy: SEF})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		total := res.EmptyProb
		for _, a := range res.Answers {
			total += a.Prob
			if a.Prob <= 0 || a.Prob > 1+1e-9 {
				t.Errorf("%v: answer probability out of range: %v", method, a)
			}
		}
		if total > 1+1e-6 {
			t.Errorf("%v: total probability mass %g exceeds 1", method, total)
		}
	}
	// Top-k through the facade.
	full, err := Evaluate(q, matching.Mappings, db, Options{Method: OSharing})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Answers) > 0 {
		top, err := EvaluateTopK(q, matching.Mappings, db, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(top.Answers) != 1 {
			t.Fatalf("top-1 returned %d answers", len(top.Answers))
		}
		if top.Answers[0].Tuple.Key() != full.Answers[0].Tuple.Key() {
			t.Errorf("top-1 tuple %v differs from the most probable answer %v",
				top.Answers[0].Tuple, full.Answers[0].Tuple)
		}
	}
}

// TestFacadeEvaluateContext exercises the context-aware entry points through
// the public API: parallel evaluation matches sequential exactly, and a
// cancelled context aborts with context.Canceled.
func TestFacadeEvaluateContext(t *testing.T) {
	source, target := buildPeopleSchemas()
	matching, err := Match(source, target, MatchOptions{Mappings: 6, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	db := buildPeopleInstance()
	q, err := ParseQuery("q0", target, "SELECT addr FROM Person WHERE phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{Basic, EBasic, EMQO, QSharing, OSharing} {
		seq, err := Evaluate(q, matching.Mappings, db, Options{Method: method, Parallelism: 1})
		if err != nil {
			t.Fatalf("%v sequential: %v", method, err)
		}
		par, err := EvaluateContext(context.Background(), q, matching.Mappings, db,
			Options{Method: method, Parallelism: 4})
		if err != nil {
			t.Fatalf("%v parallel: %v", method, err)
		}
		if len(seq.Answers) != len(par.Answers) {
			t.Fatalf("%v: %d parallel answers, want %d", method, len(par.Answers), len(seq.Answers))
		}
		for i := range seq.Answers {
			if seq.Answers[i].Tuple.Key() != par.Answers[i].Tuple.Key() || seq.Answers[i].Prob != par.Answers[i].Prob {
				t.Errorf("%v: answer[%d] = %v, want %v", method, i, par.Answers[i], seq.Answers[i])
			}
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateContext(cancelled, q, matching.Mappings, db, Options{Method: QSharing}); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateContext with cancelled context: err = %v, want context.Canceled", err)
	}
	if _, err := EvaluateTopKContext(cancelled, q, matching.Mappings, db, 1, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateTopKContext with cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestFacadeManualMappings(t *testing.T) {
	_, target := buildPeopleSchemas()
	corrs := []Correspondence{
		{Source: Attribute{Relation: "Customer", Name: "ophone"}, Target: Attribute{Relation: "Person", Name: "phone"}, Score: 0.85},
		{Source: Attribute{Relation: "Customer", Name: "hphone"}, Target: Attribute{Relation: "Person", Name: "phone"}, Score: 0.83},
		{Source: Attribute{Relation: "Customer", Name: "oaddr"}, Target: Attribute{Relation: "Person", Name: "addr"}, Score: 0.75},
	}
	maps, err := DeriveMappings(corrs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 2 {
		t.Fatalf("mappings = %d, want 2 (two phone alternatives)", len(maps))
	}
	if err := maps.Validate(); err != nil {
		t.Errorf("derived mappings invalid: %v", err)
	}
	m, err := NewMapping("manual", corrs[:1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 {
		t.Error("manual mapping size wrong")
	}
	db := buildPeopleInstance()
	q, err := ParseQuery("q", target, "SELECT addr FROM Person WHERE phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(q, maps, db, Options{Method: OSharing})
	if err != nil {
		t.Fatal(err)
	}
	// ophone=123 -> Alice -> aaa (prob of the ophone mapping);
	// hphone=123 -> Bob -> aaa? no: addr maps to oaddr in both -> Bob's oaddr is bbb.
	sum := 0.0
	for _, a := range res.Answers {
		sum += a.Prob
	}
	if sum <= 0 || sum > 1+1e-9 {
		t.Errorf("probability mass = %g", sum)
	}
}

func TestFacadeParsers(t *testing.T) {
	if _, err := ParseMethod("o-sharing"); err != nil {
		t.Error(err)
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("bogus method should fail")
	}
	if _, err := ParseStrategy("SEF"); err != nil {
		t.Error(err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy should fail")
	}
	if Null().IsNull() != true || Float(2).IsNull() {
		t.Error("value constructors broken")
	}
}

func TestScenario(t *testing.T) {
	s, err := NewScenario(ScenarioOptions{Target: "Excel", Mappings: 10, SizeMB: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Target != "Excel" || s.DB == nil || s.TargetSchema == nil || s.SourceSchema == nil {
		t.Fatal("scenario incomplete")
	}
	if len(s.Mappings()) == 0 {
		t.Fatal("scenario has no mappings")
	}
	q, err := s.WorkloadQuery(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluator().Evaluate(q, Options{Method: OSharing})
	if err != nil {
		t.Fatal(err)
	}
	mass := res.EmptyProb
	for _, a := range res.Answers {
		mass += a.Prob
	}
	if math.Abs(mass-1) > 1e-6 {
		t.Errorf("probability mass = %g, want 1", mass)
	}
	// Q6 belongs to Noris, not Excel.
	if _, err := s.WorkloadQuery(6); err == nil {
		t.Error("cross-target workload query should be rejected")
	}
	if _, err := s.Query("adhoc", "SELECT orderNum FROM PO WHERE telephone = '335-1736'"); err != nil {
		t.Errorf("ad-hoc query: %v", err)
	}
	if _, err := NewScenario(ScenarioOptions{Target: "bogus"}); err == nil {
		t.Error("bogus target should fail")
	}
	// Defaults.
	d, err := NewScenario(ScenarioOptions{Mappings: 5, SizeMB: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Target != "Excel" {
		t.Errorf("default target = %s, want Excel", d.Target)
	}
}
