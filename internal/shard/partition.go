// Package shard distributes query evaluation over horizontal partitions of a
// source instance.  A Partitioner splits one chosen base relation into N
// disjoint shard slices (hash or range on one column) while every other
// relation is replicated by reference; an Evaluator scatters a prepared
// query's per-group plans across the shard instances and gathers the answer
// streams back through the canonical aggregation order, so sharded answers
// are bit-identical to unsharded evaluation.
//
// The same partitioning contract backs the multi-node layer: shard nodes
// built from the same instance and Spec hold exactly the slices the
// in-process partitioner would produce, so a coordinator can merge their
// per-group answer streams with core.GroupMerge.
package shard

import (
	"fmt"
	"sort"

	"github.com/probdb/urm/internal/engine"
)

// Kind selects the partitioning function.
type Kind int

const (
	// KindHash routes a row by the 64-bit hash of its partition-column value
	// modulo the shard count.  Placement is data-independent: any process
	// that knows the Spec routes a row identically without seeing the data.
	KindHash Kind = iota
	// KindRange routes a row by comparing its partition-column value against
	// quantile boundaries computed from the relation at partitioner
	// construction.  Placement is order-preserving per shard but depends on
	// the data the partitioner was built over.
	KindRange
)

// String names the kind as accepted by ParseKind.
func (k Kind) String() string {
	switch k {
	case KindHash:
		return "hash"
	case KindRange:
		return "range"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses "hash" or "range".
func ParseKind(s string) (Kind, error) {
	switch s {
	case "hash":
		return KindHash, nil
	case "range":
		return KindRange, nil
	default:
		return 0, fmt.Errorf("shard: unknown partitioner kind %q (want hash or range)", s)
	}
}

// Spec names the partitioning: which relation to split, on which column,
// into how many shards, and by which function.
type Spec struct {
	Relation string
	Column   string
	Shards   int
	Kind     Kind
}

// String renders the spec as "Rel.col/hash:4".
func (s Spec) String() string {
	return fmt.Sprintf("%s.%s/%s:%d", s.Relation, s.Column, s.Kind, s.Shards)
}

// Partitioner routes rows of one base relation to shards and materializes
// shard instances.  It is immutable after construction and safe for
// concurrent use.
type Partitioner struct {
	spec Spec
	col  int
	// bounds are the range kind's shard upper bounds (len Shards-1): shard i
	// owns values v with bounds[i-1] < v <= bounds[i] under engine.Value
	// comparison, the last shard owning everything above the last bound.
	bounds []engine.Value
}

// NewPartitioner validates the spec against the instance and, for range
// partitioning, computes the quantile boundaries from the relation's current
// rows.  Boundaries are deterministic for a given instance, so every process
// that builds a partitioner over the same data routes rows identically.
func NewPartitioner(db *engine.Instance, spec Spec) (*Partitioner, error) {
	if db == nil {
		return nil, fmt.Errorf("shard: nil instance")
	}
	if spec.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", spec.Shards)
	}
	switch spec.Kind {
	case KindHash, KindRange:
	default:
		return nil, fmt.Errorf("shard: unknown partitioner kind %d", spec.Kind)
	}
	rel := db.Relation(spec.Relation)
	if rel == nil {
		return nil, fmt.Errorf("shard: instance %s has no relation %q", db.Name, spec.Relation)
	}
	col := rel.ColumnIndex(spec.Column)
	if col < 0 {
		return nil, fmt.Errorf("shard: relation %s has no column %q", spec.Relation, spec.Column)
	}
	p := &Partitioner{spec: spec, col: col}
	if spec.Kind == KindRange && spec.Shards > 1 {
		vals := make([]engine.Value, len(rel.Rows))
		for i, row := range rel.Rows {
			vals[i] = row[col]
		}
		sort.SliceStable(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
		p.bounds = make([]engine.Value, spec.Shards-1)
		for i := 1; i < spec.Shards; i++ {
			idx := i * len(vals) / spec.Shards
			if idx >= len(vals) {
				idx = len(vals) - 1
			}
			if len(vals) == 0 {
				p.bounds[i-1] = engine.Null()
				continue
			}
			p.bounds[i-1] = vals[idx]
		}
	}
	return p, nil
}

// Spec returns the partitioning spec.
func (p *Partitioner) Spec() Spec { return p.spec }

// Route returns the shard index owning a row of the partitioned relation.
func (p *Partitioner) Route(row engine.Tuple) int {
	return p.RouteValue(row[p.col])
}

// RouteValue returns the shard index owning a partition-column value.
func (p *Partitioner) RouteValue(v engine.Value) int {
	if p.spec.Shards == 1 {
		return 0
	}
	if p.spec.Kind == KindHash {
		return int(v.Hash64() % uint64(p.spec.Shards))
	}
	lo, hi := 0, len(p.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Compare(p.bounds[mid]) <= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Partition splits the instance into shard instances: the partitioned
// relation's rows are routed to per-shard slices (row order preserved within
// each shard) and every other relation is shared by reference.  Shard i of a
// later Partition call over the same rows is identical to shard i of an
// earlier one.
func (p *Partitioner) Partition(db *engine.Instance) ([]*engine.Instance, error) {
	rel := db.Relation(p.spec.Relation)
	if rel == nil {
		return nil, fmt.Errorf("shard: instance %s has no relation %q", db.Name, p.spec.Relation)
	}
	slices := make([]*engine.Relation, p.spec.Shards)
	for i := range slices {
		slices[i] = engine.NewRelation(rel.Name, rel.Columns)
	}
	for _, row := range rel.Rows {
		s := p.Route(row)
		slices[s].Rows = append(slices[s].Rows, row)
	}
	out := make([]*engine.Instance, p.spec.Shards)
	for i := range out {
		name := fmt.Sprintf("%s/shard-%d-of-%d", db.Name, i, p.spec.Shards)
		out[i] = db.WithRelations(name, map[string]*engine.Relation{rel.Name: slices[i]})
	}
	return out, nil
}

// Slice returns only shard i of the instance — what a multi-node shard
// server keeps after regenerating the full scenario deterministically.
func (p *Partitioner) Slice(db *engine.Instance, i int) (*engine.Instance, error) {
	if i < 0 || i >= p.spec.Shards {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", i, p.spec.Shards)
	}
	shards, err := p.Partition(db)
	if err != nil {
		return nil, err
	}
	return shards[i], nil
}
