package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
)

// Distributable reports whether a plan distributes over a horizontal
// partition of the named relation, i.e. whether
//
//	Q(R1 ⊎ ... ⊎ Rn, S, ...) = Q(R1, S, ...) ∪ ... ∪ Q(Rn, S, ...)
//
// holds as a set equality.  It does when the plan scans the partitioned
// relation at most once — a join or product referencing it twice (a
// self-join) pairs rows across shard boundaries, which per-shard evaluation
// never sees — and contains no aggregate, because an aggregate of a union is
// not the union of per-shard aggregates.  Materialized inputs are rejected
// too: their provenance is unknown, so they may embed pre-partition state.
// Plans over only replicated relations are distributable — every shard
// returns the same answers and the merge's per-group dedup collapses them.
func Distributable(plan engine.Plan, relation string) bool {
	refs, ok := scanRefs(plan, relation)
	return ok && refs <= 1
}

// scanRefs counts scans of the named relation and reports false on any node
// that breaks distribution.
func scanRefs(plan engine.Plan, relation string) (int, bool) {
	switch n := plan.(type) {
	case *engine.AggregatePlan:
		return 0, false
	case *engine.MaterialPlan:
		return 0, false
	case *engine.ScanPlan:
		if n.Relation == relation {
			return 1, true
		}
		return 0, true
	}
	refs := 0
	for _, c := range plan.Children() {
		r, ok := scanRefs(c, relation)
		if !ok {
			return 0, false
		}
		refs += r
	}
	return refs, true
}

// Evaluator evaluates prepared queries by scatter-gather over shard
// instances.  It partitions the instance once (re-slicing lazily when the
// partitioned relation's rows change) and is safe for concurrent use.
//
// Methods whose evaluation does not distribute — o-sharing and top-k always,
// and any query with a non-distributable group plan (self-joins on the
// partitioned relation, aggregates) — fall back to unsharded evaluation on
// the original instance, which trivially preserves the bit-identical-answers
// contract.  Fallbacks are counted so callers and tests can observe them.
type Evaluator struct {
	part *Partitioner
	base *engine.Instance

	mu      sync.Mutex
	shards  []*engine.Instance
	version uint64
	rows    int

	fallbacks int
}

// NewEvaluator builds a partitioner for the spec and partitions the instance.
func NewEvaluator(db *engine.Instance, spec Spec) (*Evaluator, error) {
	p, err := NewPartitioner(db, spec)
	if err != nil {
		return nil, err
	}
	ev := &Evaluator{part: p, base: db}
	if _, err := ev.instances(); err != nil {
		return nil, err
	}
	return ev, nil
}

// Partitioner returns the evaluator's partitioner.
func (ev *Evaluator) Partitioner() *Partitioner { return ev.part }

// NumShards returns the shard count.
func (ev *Evaluator) NumShards() int { return ev.part.Spec().Shards }

// Fallbacks returns how many executions fell back to unsharded evaluation.
func (ev *Evaluator) Fallbacks() int {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.fallbacks
}

// instances returns the shard instances, re-partitioning if the partitioned
// relation changed since the last slice (appends route new rows to their
// shard on the next execution; range boundaries stay fixed at construction so
// placement of existing rows never moves).
func (ev *Evaluator) instances() ([]*engine.Instance, error) {
	rel := ev.base.Relation(ev.part.Spec().Relation)
	if rel == nil {
		return nil, fmt.Errorf("shard: instance %s lost relation %q", ev.base.Name, ev.part.Spec().Relation)
	}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if ev.shards == nil || rel.Version() != ev.version || len(rel.Rows) != ev.rows {
		shards, err := ev.part.Partition(ev.base)
		if err != nil {
			return nil, err
		}
		ev.shards = shards
		ev.version = rel.Version()
		ev.rows = len(rel.Rows)
	}
	return ev.shards, nil
}

func (ev *Evaluator) noteFallback() {
	ev.mu.Lock()
	ev.fallbacks++
	ev.mu.Unlock()
}

// Execute evaluates the prepared query over the shards and merges the
// per-shard answer streams into a Result bit-identical to
// prep.ExecuteContext: same tuples, probabilities, order and empty-answer
// mass.  Non-distributable (query, method) pairs fall back to unsharded
// evaluation.
func (ev *Evaluator) Execute(ctx context.Context, prep *core.Prepared, opts core.Options) (*core.Result, error) {
	if opts.Method == core.MethodOSharing {
		ev.noteFallback()
		return prep.ExecuteContext(ctx, opts)
	}
	start := time.Now()
	ec := exec.NewContext(ctx, opts.Parallelism)
	if opts.BatchSize != 0 {
		ec = ec.WithBatch(opts.BatchSize)
	}
	sp, err := prep.Scatter(ec, opts)
	if err != nil {
		if errors.Is(err, core.ErrNotShardable) {
			ev.noteFallback()
			return prep.ExecuteContext(ctx, opts)
		}
		return nil, err
	}
	for _, g := range sp.Groups {
		if g.Plan != nil && !Distributable(g.Plan, ev.part.Spec().Relation) {
			ev.noteFallback()
			return prep.ExecuteContext(ctx, opts)
		}
	}
	shards, err := ev.instances()
	if err != nil {
		return nil, err
	}
	runs, err := ExecuteShards(ec, sp, shards)
	if err != nil {
		return nil, err
	}
	res := &core.Result{
		Query:            prep.Query(),
		Method:           opts.Method,
		Columns:          core.OutputColumns(prep.Query()),
		Stats:            engine.NewStats(),
		RewrittenQueries: sp.Rewritten,
		Partitions:       sp.Partitions,
	}
	for _, run := range runs {
		res.ExecTime += run.ExecTime
		res.Stats.Add(run.Stats)
	}
	aggStart := time.Now()
	merge := core.NewGroupMerge(sp.PreEmptyProb)
	rels := make([]*engine.Relation, len(runs))
	for gi, g := range sp.Groups {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for si, run := range runs {
			rels[si] = run.Rels[gi]
		}
		merge.AddGroup(g, rels)
		if g.Plan != nil {
			res.ExecutedQueries += len(runs)
		}
	}
	res.Answers, res.EmptyProb = merge.Finalize()
	res.AggregateTime = time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return res, nil
}

// ExecuteTopK evaluates probabilistic top-k.  The traversal's
// early-termination bounds are data-dependent and sequential, so top-k always
// falls back to unsharded evaluation.
func (ev *Evaluator) ExecuteTopK(ctx context.Context, prep *core.Prepared, k int, opts core.Options) (*core.Result, error) {
	ev.noteFallback()
	return prep.ExecuteTopKContext(ctx, k, opts)
}

// ExecuteShards runs the scatter plan on every shard instance, fanning the
// shards out over the runtime's worker pool.  Within a shard the plan runs
// with the leftover parallelism budget (at least sequential), so the total
// worker count stays bounded by ec.Parallelism regardless of shard count.
// Results are index-aligned with shards.
func ExecuteShards(ec *exec.Context, sp *core.ScatterPlan, shards []*engine.Instance) ([]*core.ShardRun, error) {
	inner := ec.Parallelism() / len(shards)
	if inner < 1 {
		inner = 1
	}
	runs := make([]*core.ShardRun, len(shards))
	err := exec.Map(ec, len(shards),
		func(ctx context.Context, i int) (*core.ShardRun, error) {
			sec := exec.NewContext(ctx, inner).WithBatch(ec.Batch())
			return sp.ExecuteOn(sec, shards[i])
		},
		func(i int, run *core.ShardRun) error {
			runs[i] = run
			return nil
		})
	if err != nil {
		return nil, err
	}
	return runs, nil
}
