package shard

import (
	"context"
	"fmt"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
)

// testSpec partitions the generated source's Orders relation, which most
// Excel workload queries reach through the possible mappings.
func testSpec(kind Kind, shards int) Spec {
	return Spec{Relation: "Orders", Column: "o_orderkey", Shards: shards, Kind: kind}
}

func testDataset(t *testing.T, mappings int, seed uint64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.NewDataset(datagen.DatasetOptions{
		Target:      datagen.TargetExcel,
		NumMappings: mappings,
		SizeMB:      1.5,
		Seed:        seed,
	})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	return ds
}

// identical asserts bit-identical results: same answer values, probabilities
// (exact float equality), order, and empty-answer probability.
func identical(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("%s: %d answers, want %d", label, len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		w, g := want.Answers[i], got.Answers[i]
		if !g.Tuple.Equal(w.Tuple) {
			t.Fatalf("%s: answer %d tuple %v, want %v", label, i, g.Tuple, w.Tuple)
		}
		if g.Prob != w.Prob {
			t.Fatalf("%s: answer %d prob %v, want %v (tuple %v)", label, i, g.Prob, w.Prob, w.Tuple)
		}
	}
	if got.EmptyProb != want.EmptyProb {
		t.Fatalf("%s: empty prob %v, want %v", label, got.EmptyProb, want.EmptyProb)
	}
}

var allMethods = []core.Method{
	core.MethodBasic, core.MethodEBasic, core.MethodEMQO, core.MethodQSharing, core.MethodOSharing,
}

// TestShardedBitIdentical is the tentpole property test: over a randomized
// scenario, every method (and top-k) produces bit-identical answers at
// shards=1, 4 and 8 with both partitioners, compared against unsharded
// prepared evaluation.
func TestShardedBitIdentical(t *testing.T) {
	ds := testDataset(t, 16, 3)
	eval := core.NewEvaluator(ds.DB, ds.Mappings())
	ctx := context.Background()

	// Q1 select chain, Q2 join, Q3/Q4 self-joins (exercise the
	// non-distributable fallback), Q5 aggregate (ditto).
	for _, qid := range []int{1, 2, 3, 5} {
		q := datagen.MustWorkloadQuery(qid)
		prep, err := eval.Prepare(q)
		if err != nil {
			t.Fatalf("Q%d prepare: %v", qid, err)
		}
		for _, m := range allMethods {
			opts := core.Options{Method: m, Parallelism: 4}
			want, err := prep.ExecuteContext(ctx, opts)
			if err != nil {
				t.Fatalf("Q%d %s unsharded: %v", qid, m, err)
			}
			for _, kind := range []Kind{KindHash, KindRange} {
				for _, n := range []int{1, 4, 8} {
					ev, err := NewEvaluator(ds.DB, testSpec(kind, n))
					if err != nil {
						t.Fatalf("evaluator %s/%d: %v", kind, n, err)
					}
					got, err := ev.Execute(ctx, prep, opts)
					if err != nil {
						t.Fatalf("Q%d %s %s/%d: %v", qid, m, kind, n, err)
					}
					identical(t, fmt.Sprintf("Q%d %s %s/%d", qid, m, kind, n), want, got)
				}
			}
		}
		// Top-k always falls back; it must still match exactly.
		opts := core.Options{Method: core.MethodOSharing}
		want, err := prep.ExecuteTopKContext(ctx, 5, opts)
		if err != nil {
			t.Fatalf("Q%d topk unsharded: %v", qid, err)
		}
		ev, err := NewEvaluator(ds.DB, testSpec(KindHash, 4))
		if err != nil {
			t.Fatalf("topk evaluator: %v", err)
		}
		got, err := ev.ExecuteTopK(ctx, prep, 5, opts)
		if err != nil {
			t.Fatalf("Q%d topk sharded: %v", qid, err)
		}
		identical(t, fmt.Sprintf("Q%d topk", qid), want, got)
	}
}

// TestShardedDistributes pins that sharding is not fallback-in-disguise: a
// join query under e-basic actually scatters (no fallback recorded).
func TestShardedDistributes(t *testing.T) {
	ds := testDataset(t, 12, 7)
	eval := core.NewEvaluator(ds.DB, ds.Mappings())
	prep, err := eval.Prepare(datagen.MustWorkloadQuery(1))
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	ev, err := NewEvaluator(ds.DB, testSpec(KindHash, 4))
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	if _, err := ev.Execute(context.Background(), prep, core.Options{Method: core.MethodEBasic}); err != nil {
		t.Fatalf("execute: %v", err)
	}
	if n := ev.Fallbacks(); n != 0 {
		t.Fatalf("Q1 e-basic fell back %d times; expected a genuine scatter", n)
	}
	// o-sharing must fall back, by contract.
	if _, err := ev.Execute(context.Background(), prep, core.Options{Method: core.MethodOSharing}); err != nil {
		t.Fatalf("o-sharing execute: %v", err)
	}
	if n := ev.Fallbacks(); n != 1 {
		t.Fatalf("o-sharing fallbacks = %d, want 1", n)
	}
}

// TestPartitionerRoundTrip checks the partitioning contract: every row lands
// on exactly one shard, the shard matches Route, and the other relations are
// replicated by reference.
func TestPartitionerRoundTrip(t *testing.T) {
	ds := testDataset(t, 8, 11)
	orders := ds.DB.Relation("Orders")
	for _, kind := range []Kind{KindHash, KindRange} {
		for _, n := range []int{1, 3, 8} {
			p, err := NewPartitioner(ds.DB, testSpec(kind, n))
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, n, err)
			}
			shards, err := p.Partition(ds.DB)
			if err != nil {
				t.Fatalf("%s/%d partition: %v", kind, n, err)
			}
			total := 0
			for si, sh := range shards {
				rel := sh.Relation("Orders")
				total += len(rel.Rows)
				for _, row := range rel.Rows {
					if got := p.Route(row); got != si {
						t.Fatalf("%s/%d: row routed to %d but stored on shard %d", kind, n, got, si)
					}
				}
				if sh.Relation("Customer") != ds.DB.Relation("Customer") {
					t.Fatalf("%s/%d: replicated relation was copied, want shared reference", kind, n)
				}
			}
			if total != len(orders.Rows) {
				t.Fatalf("%s/%d: shards hold %d rows, want %d", kind, n, total, len(orders.Rows))
			}
		}
	}
}

// TestShardedSeesAppends pins the staleness contract: rows appended to the
// base instance after partitioning are routed into the shard slices on the
// next execution, keeping sharded answers identical to unsharded ones.
func TestShardedSeesAppends(t *testing.T) {
	ds := testDataset(t, 10, 5)
	eval := core.NewEvaluator(ds.DB, ds.Mappings())
	prep, err := eval.Prepare(datagen.MustWorkloadQuery(2))
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	ev, err := NewEvaluator(ds.DB, testSpec(KindHash, 4))
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ctx := context.Background()
	opts := core.Options{Method: core.MethodQSharing}
	if _, err := ev.Execute(ctx, prep, opts); err != nil {
		t.Fatalf("warm execute: %v", err)
	}
	orders := ds.DB.Relation("Orders")
	clone := orders.Rows[0].Clone()
	clone[0] = engine.I(999999991)
	if err := orders.Append(clone); err != nil {
		t.Fatalf("append: %v", err)
	}
	want, err := prep.ExecuteContext(ctx, opts)
	if err != nil {
		t.Fatalf("unsharded after append: %v", err)
	}
	got, err := ev.Execute(ctx, prep, opts)
	if err != nil {
		t.Fatalf("sharded after append: %v", err)
	}
	identical(t, "after append", want, got)
}

// TestShardedCancellation: a cancelled context aborts the scatter (and the
// merge) with the context's error instead of returning partial answers.
func TestShardedCancellation(t *testing.T) {
	ds := testDataset(t, 10, 9)
	eval := core.NewEvaluator(ds.DB, ds.Mappings())
	prep, err := eval.Prepare(datagen.MustWorkloadQuery(2))
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	ev, err := NewEvaluator(ds.DB, testSpec(KindRange, 4))
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ev.Execute(ctx, prep, core.Options{Method: core.MethodBasic})
	if err == nil {
		t.Fatalf("cancelled execute returned %d answers, want error", len(res.Answers))
	}
	if res != nil {
		t.Fatalf("cancelled execute returned a partial result alongside the error")
	}
}

// TestShardErrorFailsCleanly: a shard whose instance cannot execute the plan
// fails the whole scatter with an error and no result.
func TestShardErrorFailsCleanly(t *testing.T) {
	ds := testDataset(t, 10, 13)
	eval := core.NewEvaluator(ds.DB, ds.Mappings())
	prep, err := eval.Prepare(datagen.MustWorkloadQuery(1))
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	ec := exec.NewContext(context.Background(), 2)
	sp, err := prep.Scatter(ec, core.Options{Method: core.MethodEBasic})
	if err != nil {
		t.Fatalf("scatter: %v", err)
	}
	p, err := NewPartitioner(ds.DB, testSpec(KindHash, 3))
	if err != nil {
		t.Fatalf("partitioner: %v", err)
	}
	shards, err := p.Partition(ds.DB)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	shards[1] = engine.NewInstance("broken") // loses every relation
	runs, err := ExecuteShards(ec, sp, shards)
	if err == nil {
		t.Fatalf("scatter over a broken shard succeeded with %d runs", len(runs))
	}
	if runs != nil {
		t.Fatalf("scatter over a broken shard returned partial runs alongside the error")
	}
}

// TestDistributable pins the plan classification.
func TestDistributable(t *testing.T) {
	scan := func(rel string) engine.Plan { return &engine.ScanPlan{Relation: rel} }
	join := &engine.JoinPlan{LeftCol: "a", RightCol: "b", Left: scan("Orders"), Right: scan("Customer")}
	selfJoin := &engine.JoinPlan{LeftCol: "a", RightCol: "b", Left: scan("Orders"), Right: scan("Orders")}
	agg := &engine.AggregatePlan{Child: scan("Orders")}
	cases := []struct {
		name string
		plan engine.Plan
		want bool
	}{
		{"single scan", scan("Orders"), true},
		{"replicated only", scan("Customer"), true},
		{"join single ref", join, true},
		{"self join", selfJoin, false},
		{"aggregate", agg, false},
		{"distinct over join", &engine.DistinctPlan{Child: join}, true},
	}
	for _, c := range cases {
		if got := Distributable(c.plan, "Orders"); got != c.want {
			t.Errorf("%s: Distributable = %v, want %v", c.name, got, c.want)
		}
	}
}
