package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/server"
	"github.com/probdb/urm/internal/shard"
)

// The shards benchmark records the scatter-gather scaling curve: the
// join-heavy Excel workload query evaluated through the in-process
// shard.Evaluator at shards ∈ {1,2,4,8}, plus the same query answered by a
// real 2-node HTTP deployment behind a coordinator.  Each in-process point
// runs with one worker per shard — the distributed model, where adding a
// shard adds a core — so the curve measures what partitioning buys, not what
// intra-plan parallelism already bought.

// ShardsPoint is one point on the in-process scaling curve.
type ShardsPoint struct {
	Shards  int     `json:"shards"`
	NsOp    int64   `json:"ns_per_op"`
	Speedup float64 `json:"speedup_vs_1"`
}

// ShardsBench is the sharded-evaluation section of the engine snapshot.
// The regression gate enforces the 4-shard speedup only when the recording
// machine had at least 4 CPUs, mirroring the multicore section's convention
// of recording the environment alongside the numbers.
type ShardsBench struct {
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Mappings   int     `json:"mappings"`
	SizeMB     float64 `json:"size_mb"`
	Rows       int     `json:"partitioned_rows"`
	Method     string  `json:"method"`
	Query      string  `json:"query"`

	InProcess []ShardsPoint `json:"in_process"`

	// TwoNode is the same query answered end to end through a coordinator
	// fanning out to two shard-node HTTP servers on loopback: scatter RPC,
	// per-shard evaluation and the bit-identical merge, lease lookups
	// included.  There is no answer cache on the scatter path, so every
	// request pays a full sharded evaluation.
	TwoNode LatencyStats `json:"two_node_http"`
}

const (
	shardsBenchMappings = 12
	shardsBenchSizeMB   = 6.0
	shardsBenchSeed     = 42
	// Q3 is the join-heavy workload shape: a 3-way join (PO against an Item
	// self-join) with a selective filter on PO, so per-shard join work scales
	// with the partitioned relation while the merged answer set stays small —
	// the curve measures scatter-gather, not the sequential merge.
	shardsBenchQuery = 3
	// shardsBenchExtraRows inflates the partitioned relation with unique-key,
	// non-matching rows: the generated instance is workload-shaped but tiny,
	// and sharding only pays off once per-shard data work dominates the
	// per-shard plan overhead.
	shardsBenchExtraRows = 120000
	twoNodeRequests      = 15
)

var shardsBenchCounts = []int{1, 2, 4, 8}

func shardsBenchSpec(n int) shard.Spec {
	return shard.Spec{Relation: "Orders", Column: "o_orderkey", Shards: n, Kind: shard.KindHash}
}

// inflateOrders appends rows with fresh order keys and unique contact fields:
// they spread evenly over the hash shards and feed the join scans, but match
// neither the workload's selective filters nor any Lineitem key, so answer
// counts stay small.
func inflateOrders(ds *datagen.Dataset) {
	orders := ds.DB.Relation("Orders")
	key := orders.ColumnIndex("o_orderkey")
	name := orders.ColumnIndex("o_contactname")
	phone := orders.ColumnIndex("o_contactphone")
	base := len(orders.Rows)
	for i := 0; i < shardsBenchExtraRows; i++ {
		row := append(engine.Tuple{}, orders.Rows[i%base]...)
		row[key] = engine.I(int64(100000 + i))
		row[name] = engine.S(fmt.Sprintf("Contact %d", i))
		row[phone] = engine.S(fmt.Sprintf("555-%04d", i))
		orders.MustAppend(row)
	}
}

// ShardsSnapshot measures the scaling curve and returns the section.
func ShardsSnapshot() (*ShardsBench, error) {
	ds, err := datagen.NewDataset(datagen.DatasetOptions{
		Target:      datagen.TargetExcel,
		NumMappings: shardsBenchMappings,
		SizeMB:      shardsBenchSizeMB,
		Seed:        shardsBenchSeed,
	})
	if err != nil {
		return nil, err
	}
	inflateOrders(ds)
	// Scan-bound on purpose: with per-column indexes on, the workload's
	// selective filters make per-shard data work near zero and the curve
	// would measure only scatter overhead.  Shard slices inherit the flag.
	ds.DB.SetIndexing(false)
	q := datagen.MustWorkloadQuery(shardsBenchQuery)
	text, err := q.SQL()
	if err != nil {
		return nil, fmt.Errorf("shards bench: Q%d has no canonical text: %w", shardsBenchQuery, err)
	}
	prep, err := core.NewEvaluator(ds.DB, ds.Mappings()).Prepare(q)
	if err != nil {
		return nil, err
	}
	out := &ShardsBench{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Mappings:   shardsBenchMappings,
		SizeMB:     shardsBenchSizeMB,
		Rows:       ds.DB.Relation("Orders").NumRows(),
		Method:     "e-basic",
		Query:      text,
	}

	ctx := context.Background()
	for _, n := range shardsBenchCounts {
		ev, err := shard.NewEvaluator(ds.DB, shardsBenchSpec(n))
		if err != nil {
			return nil, fmt.Errorf("shards bench: evaluator for %d shards: %w", n, err)
		}
		opts := core.Options{Method: core.MethodEBasic, Parallelism: n}
		var benchErr error
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ev.Execute(ctx, prep, opts); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		if benchErr != nil {
			return nil, fmt.Errorf("shards bench: %d shards: %w", n, benchErr)
		}
		// A fallback would mean the curve silently measured unsharded
		// evaluation N times: refuse to record it.
		if f := ev.Fallbacks(); f != 0 {
			return nil, fmt.Errorf("shards bench: %d shards fell back to unsharded evaluation %d time(s) — Q%d/e-basic should distribute", n, f, shardsBenchQuery)
		}
		point := ShardsPoint{Shards: n, NsOp: res.NsPerOp()}
		if len(out.InProcess) > 0 && point.NsOp > 0 {
			point.Speedup = float64(out.InProcess[0].NsOp) / float64(point.NsOp)
		} else {
			point.Speedup = 1
		}
		out.InProcess = append(out.InProcess, point)
	}

	lat, err := twoNodeLatency(ds, text)
	if err != nil {
		return nil, err
	}
	out.TwoNode = lat
	return out, nil
}

// twoNodeLatency boots two shard-node servers holding complementary slices of
// the dataset plus a coordinator on loopback listeners, and measures the
// coordinated query latency over real HTTP.
func twoNodeLatency(ds *datagen.Dataset, text string) (LatencyStats, error) {
	spec := shardsBenchSpec(2)
	part, err := shard.NewPartitioner(ds.DB, spec)
	if err != nil {
		return LatencyStats{}, err
	}
	coord, err := server.NewCoordinator(server.CoordinatorConfig{Shards: spec.Shards})
	if err != nil {
		return LatencyStats{}, err
	}
	var servers []*http.Server
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()
	listen := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		hs := &http.Server{Handler: h}
		servers = append(servers, hs)
		go func() { _ = hs.Serve(ln) }()
		return "http://" + ln.Addr().String(), nil
	}
	for i := 0; i < spec.Shards; i++ {
		slice, err := part.Slice(ds.DB, i)
		if err != nil {
			return LatencyStats{}, err
		}
		registry := server.NewRegistry()
		if _, err := registry.Register(context.Background(), "excel", ds.Target, slice, ds.Mappings(),
			server.RegisterOptions{TargetLabel: string(ds.TargetName)}); err != nil {
			return LatencyStats{}, err
		}
		node := server.New(registry, server.Config{Parallelism: 1, Shard: &server.ShardIdentity{
			Node:     fmt.Sprintf("bench-node-%d", i),
			Index:    i,
			Count:    spec.Shards,
			Relation: spec.Relation,
			Column:   spec.Column,
			Kind:     spec.Kind.String(),
		}})
		url, err := listen(node)
		if err != nil {
			return LatencyStats{}, err
		}
		if err := coord.Leases().Heartbeat(fmt.Sprintf("bench-node-%d", i), url, []int{i}); err != nil {
			return LatencyStats{}, err
		}
	}
	base, err := listen(coord)
	if err != nil {
		return LatencyStats{}, err
	}

	body, err := json.Marshal(server.Request{Scenario: "excel", Query: text, Method: "e-basic"})
	if err != nil {
		return LatencyStats{}, err
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	var lats []float64
	for i := 0; i < twoNodeRequests; i++ {
		start := time.Now()
		resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return LatencyStats{}, fmt.Errorf("shards bench two-node: %w", err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return LatencyStats{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return LatencyStats{}, fmt.Errorf("shards bench two-node: status %d: %s", resp.StatusCode, data)
		}
		lats = append(lats, float64(time.Since(start).Microseconds())/1000)
	}
	return summarize(lats), nil
}
