package bench

import (
	"testing"

	"github.com/probdb/urm/internal/core"
)

// BenchmarkMethods is the end-to-end counterpart of the engine
// microbenchmarks: one full evaluation per method over the default benchmark
// query, so regressions anywhere on the per-core hot path (reformulation,
// streaming execution, answer aggregation) show up as wall-clock.
//
//	go test ./internal/bench -bench Methods
func BenchmarkMethods(b *testing.B) {
	r := NewRunner(Config{
		Mappings: 24,
		SizeMB:   8,
		Seed:     42,
	})
	methods := []core.Method{
		core.MethodBasic, core.MethodEBasic, core.MethodEMQO,
		core.MethodQSharing, core.MethodOSharing,
	}
	// Generate the dataset once, outside the timed sections.
	if _, err := r.evaluate(4, core.MethodBasic, 24, 8); err != nil {
		b.Fatal(err)
	}
	for _, m := range methods {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.evaluate(4, m, 24, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
