package bench

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/server"
	"github.com/probdb/urm/internal/store"
)

// StoreBench measures the durable scenario store against the in-memory
// registry baseline on real disk: what registration, per-row WAL appends
// (with and without fsync), snapshots and recovery cost.
type StoreBench struct {
	// Rows is the size of the benchmark scenario's source instance.
	Rows int `json:"rows"`
	// RegisterMs is the cost of durably registering the scenario: encoding
	// its full state into the WAL's register record plus the fsyncs that
	// anchor it.
	RegisterMs float64 `json:"register_ms"`
	// AppendMemNs is the in-memory baseline: AppendRow on a registry with no
	// store attached.
	AppendMemNs int64 `json:"append_mem_ns_per_op"`
	// AppendNoSyncNs adds the WAL record write without fsync.
	AppendNoSyncNs int64 `json:"append_nosync_ns_per_op"`
	// AppendFsyncNs is the fully durable append: WAL record plus fsync.
	AppendFsyncNs int64 `json:"append_fsync_ns_per_op"`
	// FsyncOverhead is AppendFsyncNs / AppendNoSyncNs — what the durability
	// guarantee costs per row.
	FsyncOverhead float64 `json:"fsync_overhead"`
	// SnapshotMs is the cost of one snapshot: encode full state, write, sync,
	// rename, rotate the WAL.
	SnapshotMs float64 `json:"snapshot_ms"`
	// RecoverMs is the cost of rebuilding the registry from disk (snapshot
	// load plus replaying ReplayedRecords WAL records).
	RecoverMs float64 `json:"recover_ms"`
	// ReplayedRecords is how many WAL records the recovery measurement
	// replayed on top of the snapshot.
	ReplayedRecords int `json:"replayed_records"`
}

// storeBenchRow mirrors the datagen Customer relation shape.
func storeBenchRow(i int) engine.Tuple {
	return engine.Tuple{
		engine.I(int64(100000 + i)),
		engine.S(fmt.Sprintf("bench-cust-%d", i)),
		engine.S("1 Bench Way"),
		engine.S("555-0000"),
		engine.S("555-0001"),
		engine.I(int64(i % 25)),
		engine.S("BUILDING"),
	}
}

// cloneBenchInstance copies the dataset's instance so each benchmark registry
// appends to its own relations.
func cloneBenchInstance(db *engine.Instance) *engine.Instance {
	out := engine.NewInstance("bench")
	for _, name := range db.RelationNames() {
		rel := db.Relation(name)
		nr := engine.NewRelation(rel.Name, rel.Columns)
		nr.Rows = append([]engine.Tuple(nil), rel.Rows...)
		out.AddRelation(nr)
	}
	return out
}

// storeBenchRegistry registers the benchmark scenario on a registry backed by
// a store rooted in a fresh temp directory (or memory-only when opts is nil).
func storeBenchRegistry(ds *datagen.Dataset, opts *store.Options) (reg *server.Registry, sc *server.Scenario, dir string, err error) {
	if opts != nil {
		dir, err = os.MkdirTemp("", "urm-store-bench-*")
		if err != nil {
			return nil, nil, "", err
		}
		st, err := store.Open(dir, *opts)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, "", err
		}
		reg = server.NewRegistryWithStore(st)
	} else {
		reg = server.NewRegistry()
	}
	sc, err = reg.Register(context.Background(), "bench", ds.Target, cloneBenchInstance(ds.DB), ds.MappingsPrefix(10),
		server.RegisterOptions{TargetLabel: string(ds.TargetName)})
	if err != nil {
		if dir != "" {
			os.RemoveAll(dir)
		}
		return nil, nil, "", err
	}
	return reg, sc, dir, nil
}

// StoreSnapshot measures the durable-store section of BENCH_engine.json on
// real disk (temp directories, removed afterwards).
func StoreSnapshot() (*StoreBench, error) {
	ds, err := datagen.NewDataset(datagen.DatasetOptions{
		Target: datagen.TargetExcel, NumMappings: 10, SizeMB: 40, Seed: 42,
	})
	if err != nil {
		return nil, err
	}
	sb := &StoreBench{Rows: ds.DB.NumRows()}

	// In-memory baseline.
	_, memSc, _, err := storeBenchRegistry(ds, nil)
	if err != nil {
		return nil, err
	}
	memRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := memSc.AppendRow("Customer", storeBenchRow(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	sb.AppendMemNs = memRes.NsPerOp()

	// WAL without fsync.
	_, noSyncSc, noSyncDir, err := storeBenchRegistry(ds, &store.Options{Fsync: false, SnapshotEvery: -1})
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(noSyncDir)
	noSyncRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := noSyncSc.AppendRow("Customer", storeBenchRow(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	sb.AppendNoSyncNs = noSyncRes.NsPerOp()

	// Fully durable: WAL with per-record fsync.  Registration time is taken
	// from this configuration, and its directory then feeds the snapshot and
	// recovery measurements.
	regStart := time.Now()
	_, fsyncSc, fsyncDir, err := storeBenchRegistry(ds, &store.Options{Fsync: true, SnapshotEvery: -1})
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(fsyncDir)
	sb.RegisterMs = float64(time.Since(regStart).Microseconds()) / 1000
	fsyncRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := fsyncSc.AppendRow("Customer", storeBenchRow(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	sb.AppendFsyncNs = fsyncRes.NsPerOp()
	if sb.AppendNoSyncNs > 0 {
		sb.FsyncOverhead = float64(sb.AppendFsyncNs) / float64(sb.AppendNoSyncNs)
	}

	// Snapshot the fsync scenario, then append a fresh WAL tail so recovery
	// measures snapshot load plus replay rather than either alone.
	snapStart := time.Now()
	if err := fsyncSc.SnapshotNow(); err != nil {
		return nil, err
	}
	sb.SnapshotMs = float64(time.Since(snapStart).Microseconds()) / 1000
	const tail = 256
	for i := 0; i < tail; i++ {
		if err := fsyncSc.AppendRow("Customer", storeBenchRow(1<<20+i)); err != nil {
			return nil, err
		}
	}

	recSt, err := store.Open(fsyncDir, store.Options{Fsync: true, SnapshotEvery: -1})
	if err != nil {
		return nil, err
	}
	recReg := server.NewRegistryWithStore(recSt)
	recStart := time.Now()
	stats, err := recReg.Recover(context.Background(), server.RegisterOptions{})
	if err != nil {
		return nil, err
	}
	sb.RecoverMs = float64(time.Since(recStart).Microseconds()) / 1000
	sb.ReplayedRecords = stats.ReplayedRecords
	if len(stats.Quarantined) != 0 {
		return nil, fmt.Errorf("store bench: recovery quarantined %v", stats.Quarantined)
	}
	rec, ok := recReg.Get("bench")
	if !ok {
		return nil, fmt.Errorf("store bench: scenario lost across recovery")
	}
	if rec.Epoch() != fsyncSc.Epoch() {
		return nil, fmt.Errorf("store bench: recovered epoch %d, want %d", rec.Epoch(), fsyncSc.Epoch())
	}
	return sb, nil
}
