package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
)

// OperatorBench compares the live implementation of one engine operator
// against the retained naive reference (the pre-streaming engine) on the same
// input: the "before/after" record of the streaming-pipeline rewrite.
type OperatorBench struct {
	Rows       int     `json:"rows"`
	NaiveNsOp  int64   `json:"naive_ns_per_op"`
	EngineNsOp int64   `json:"engine_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// MethodBench is one full evaluation of the default benchmark query.
// IndexBuilds/IndexLookups surface the shared base-relation index subsystem's
// work for the run: how many per-column indexes were constructed versus how
// many operators were served from one.
//
// ColdMs/PreparedMs compare one-shot evaluation (parse-validated query,
// reformulation through every mapping, plan compilation, execution) against
// re-executing a prepared query (execution and aggregation only), both
// measured under the Go benchmark harness.  PreparedSpeedup = ColdMs /
// PreparedMs is what the session API's amortization buys per request.
type MethodBench struct {
	TotalMs      float64 `json:"total_ms"`
	Operators    int     `json:"operators"`
	Answers      int     `json:"answers"`
	IndexBuilds  int     `json:"index_builds"`
	IndexLookups int     `json:"index_lookups"`

	ColdMs          float64 `json:"cold_ms,omitempty"`
	PreparedMs      float64 `json:"prepared_ms,omitempty"`
	PreparedSpeedup float64 `json:"prepared_speedup,omitempty"`
}

// EngineSnapshot is the machine-readable perf snapshot urm-bench -json emits
// (BENCH_engine.json): per-operator reference-vs-engine throughput plus
// end-to-end per-method timings.  Most operator pairs compare against the
// retained naive reference; the index pairs ("index-lookup",
// "shared-join-build") compare the shared base-relation index subsystem
// against the non-indexed streaming pipeline.
type EngineSnapshot struct {
	GoVersion  string                   `json:"go_version"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	BenchRows  int                      `json:"bench_rows"`
	Operators  map[string]OperatorBench `json:"operators"`
	Methods    map[string]MethodBench   `json:"methods"`
	// Serve is the query-service benchmark (`urm-bench -serve`): cold versus
	// cached latency and throughput through the HTTP layer.  Omitted until a
	// serve run has been merged into the snapshot.
	Serve *ServeBench `json:"serve,omitempty"`
	// QoS is the tenant-isolation benchmark (also `urm-bench -serve`): the
	// compliant tenant's latency and success rate under a hostile flood,
	// relative to its solo baseline.
	QoS *QoSBench `json:"qos,omitempty"`
	// Store is the durable-store benchmark (`urm-bench -store`): registration,
	// WAL append (fsync on/off versus the in-memory registry), snapshot and
	// recovery costs on real disk.
	Store *StoreBench `json:"store,omitempty"`
	// Delta is the incremental-maintenance benchmark (`urm-bench -delta`):
	// query latency under a high-churn append stream with cached answers
	// maintained by the delta reconciler versus invalidated every epoch.
	Delta *DeltaBench `json:"delta,omitempty"`
	// Shards is the scatter-gather scaling curve (`urm-bench -shards`):
	// the join-heavy workload at shards ∈ {1,2,4,8} in-process plus a 2-node
	// HTTP deployment behind a coordinator.  The regression gate enforces the
	// 4-shard speedup only when the recording machine had at least 4 CPUs
	// (one core per shard worker).
	Shards *ShardsBench `json:"shards,omitempty"`
	// Multicore is the partitioned hash-join build measurement, taken with
	// GOMAXPROCS forced to 4: a large-build join executed with Workers=4
	// versus Workers=1.  The regression gate enforces its speedup only when
	// the recording machine actually had multiple CPUs (NumCPU >= 2), so
	// snapshots taken on single-core boxes stay valid while CI's multi-core
	// runners gate the parallel build.
	Multicore *MulticoreBench `json:"gomaxprocs_4,omitempty"`
}

// MulticoreBench records the partitioned-build join pair: the same plan with
// the build split across 4 workers versus built sequentially.
type MulticoreBench struct {
	NumCPU       int     `json:"num_cpu"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	BuildRows    int     `json:"build_rows"`
	Workers      int     `json:"workers"`
	SequentialNs int64   `json:"sequential_ns_per_op"`
	ParallelNs   int64   `json:"parallel_ns_per_op"`
	Speedup      float64 `json:"speedup"`
}

// snapshotRows is the input size for the operator measurements.
const snapshotRows = 20000

// snapshotSharedH is the number of identical source queries the shared
// join-build pair evaluates per measurement — the e-basic shape, one probe per
// reformulated mapping.
const snapshotSharedH = 8

func snapshotRelation(name string, n int) *engine.Relation {
	r := engine.NewRelation(name, []string{name + ".id", name + ".tag", name + ".score"})
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, engine.Tuple{
			engine.I(int64(i % (n/100 + 1))),
			engine.S(fmt.Sprintf("tag-%d", i%97)),
			engine.F(float64(i%1000) / 3),
		})
	}
	return r
}

func snapshotKeyedRelation(name string, n, stride int) *engine.Relation {
	r := engine.NewRelation(name, []string{name + ".id", name + ".tag"})
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, engine.Tuple{
			engine.I(int64((i*stride + 1) % snapshotRows)),
			engine.S(fmt.Sprintf("tag-%d", i%97)),
		})
	}
	return r
}

// measurePair benchmarks the naive and live implementations of one operator.
func measurePair(rows int, naive, live func() error) (OperatorBench, error) {
	var firstErr error
	run := func(fn func() error) int64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					b.Fatal(err)
				}
			}
		})
		return res.NsPerOp()
	}
	nb := run(naive)
	eb := run(live)
	if firstErr != nil {
		return OperatorBench{}, firstErr
	}
	out := OperatorBench{Rows: rows, NaiveNsOp: nb, EngineNsOp: eb}
	if eb > 0 {
		out.Speedup = float64(nb) / float64(eb)
	}
	return out, nil
}

// Snapshot measures the engine's operator throughput against the naive
// reference and times every evaluation method end to end.  It takes on the
// order of ten seconds: each operator pair runs under the standard Go
// benchmark harness until timings stabilise.
func Snapshot() (*EngineSnapshot, error) {
	ctx := context.Background()
	snap := &EngineSnapshot{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchRows:  snapshotRows,
		Operators:  make(map[string]OperatorBench),
		Methods:    make(map[string]MethodBench),
	}

	execPlan := func(db *engine.Instance, plan engine.Plan, indexes *engine.IndexCache) error {
		ex := &engine.Executor{DB: db, Stats: engine.NewStats(), Indexes: indexes}
		_, err := ex.ExecuteContext(ctx, plan)
		return err
	}
	selectPred := func() engine.Predicate {
		return engine.And(
			&engine.ConstPredicate{Column: "L.score", Op: engine.OpGt, Value: engine.F(50)},
			&engine.ConstPredicate{Column: "L.tag", Op: engine.OpNe, Value: engine.S("tag-13")},
		)
	}

	// Every pair builds its fixtures inside its own setup closure, so the only
	// live heap during a measurement is that pair's own input — a fixture for
	// a later pair must not tax an earlier pair's GC cycles.  The explicit GC
	// between pairs returns the previous fixtures before the next timing run.
	type opCase struct {
		name  string
		rows  int
		setup func() (naive, live func() error, err error)
	}
	cases := []opCase{
		{"select", snapshotRows, func() (func() error, func() error, error) {
			rel := snapshotRelation("L", snapshotRows)
			pred := selectPred()
			return func() error { _, err := engine.NaiveSelect(ctx, rel, pred, nil); return err },
				func() error { _, err := engine.Select(ctx, rel, pred, nil); return err }, nil
		}},
		{"project", snapshotRows, func() (func() error, func() error, error) {
			rel := snapshotRelation("L", snapshotRows)
			cols := []string{"L.score", "L.id"}
			return func() error { _, err := engine.NaiveProject(ctx, rel, cols, nil); return err },
				func() error { _, err := engine.Project(ctx, rel, cols, nil); return err }, nil
		}},
		{"hashjoin", snapshotRows + snapshotRows/4, func() (func() error, func() error, error) {
			joinLeft := snapshotKeyedRelation("L", snapshotRows, 1)
			joinRight := snapshotKeyedRelation("R", snapshotRows/4, 4)
			return func() error {
					_, err := engine.NaiveHashJoin(ctx, joinLeft, joinRight, "L.id", "R.id", nil)
					return err
				}, func() error {
					_, err := engine.HashJoin(ctx, joinLeft, joinRight, "L.id", "R.id", nil)
					return err
				}, nil
		}},
		{"distinct", snapshotRows, func() (func() error, func() error, error) {
			rel := snapshotRelation("L", snapshotRows)
			return func() error { _, err := engine.NaiveDistinct(ctx, rel, nil); return err },
				func() error { _, err := engine.Distinct(ctx, rel, nil); return err }, nil
		}},
		{"aggregate", snapshotRows, func() (func() error, func() error, error) {
			rel := snapshotRelation("L", snapshotRows)
			return func() error { _, err := engine.NaiveAggregate(ctx, rel, engine.AggSum, "L.score", nil); return err },
				func() error { _, err := engine.Aggregate(ctx, rel, engine.AggSum, "L.score", nil); return err }, nil
		}},
		{"pipeline", snapshotRows, func() (func() error, func() error, error) {
			pipelineDB := engine.NewInstance("D")
			pipelineDB.AddRelation(snapshotRelation("T", snapshotRows))
			pipelinePlan := &engine.ProjectPlan{
				Columns: []string{"T.id"},
				Child: &engine.SelectPlan{
					Pred: &engine.ConstPredicate{Column: "T.score", Op: engine.OpGt, Value: engine.F(50)},
					Child: &engine.SelectPlan{
						Pred:  &engine.ConstPredicate{Column: "T.tag", Op: engine.OpNe, Value: engine.S("tag-13")},
						Child: &engine.ScanPlan{Relation: "T"},
					},
				},
			}
			return func() error {
					_, err := engine.NaiveExecute(ctx, pipelineDB, pipelinePlan, engine.NewStats())
					return err
				}, func() error {
					ex := &engine.Executor{DB: pipelineDB, Stats: engine.NewStats()}
					_, err := ex.ExecuteContext(ctx, pipelinePlan)
					return err
				}, nil
		}},
		// Index subsystem pairs: a selective (~0.5%) constant-equality
		// selection served from the shared per-column index versus the full
		// scan+filter pipeline, and h identical joins probing the shared build
		// versus h independent builds.  The setups warm the shared indexes so
		// the pairs measure steady-state lookups, not the one-time builds.
		{"index-lookup", snapshotRows, func() (func() error, func() error, error) {
			idxDB := engine.NewInstance("DX")
			idxDB.AddRelation(snapshotRelation("T", snapshotRows))
			idxSelPlan := &engine.SelectPlan{
				Pred:  &engine.ConstPredicate{Column: "T.id", Op: engine.OpEq, Value: engine.I(7)},
				Child: &engine.ScanPlan{Relation: "T"},
			}
			if err := execPlan(idxDB, idxSelPlan, idxDB.Indexes()); err != nil {
				return nil, nil, err
			}
			return func() error { return execPlan(idxDB, idxSelPlan, nil) },
				func() error { return execPlan(idxDB, idxSelPlan, idxDB.Indexes()) }, nil
		}},
		{"shared-join-build", snapshotRows + snapshotRows/4, func() (func() error, func() error, error) {
			joinDB := engine.NewInstance("DJ")
			joinDB.AddRelation(snapshotKeyedRelation("L", snapshotRows, 1))
			joinDB.AddRelation(snapshotKeyedRelation("R", snapshotRows/4, 4))
			idxJoinPlan := &engine.JoinPlan{
				LeftCol: "L.id", RightCol: "R.id",
				Left:  &engine.ScanPlan{Relation: "L"},
				Right: &engine.ScanPlan{Relation: "R"},
			}
			if err := execPlan(joinDB, idxJoinPlan, joinDB.Indexes()); err != nil {
				return nil, nil, err
			}
			return func() error {
					for q := 0; q < snapshotSharedH; q++ {
						if err := execPlan(joinDB, idxJoinPlan, nil); err != nil {
							return err
						}
					}
					return nil
				}, func() error {
					for q := 0; q < snapshotSharedH; q++ {
						if err := execPlan(joinDB, idxJoinPlan, joinDB.Indexes()); err != nil {
							return err
						}
					}
					return nil
				}, nil
		}},
	}
	for _, c := range cases {
		naive, live, err := c.setup()
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", c.name, err)
		}
		runtime.GC()
		ob, err := measurePair(c.rows, naive, live)
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", c.name, err)
		}
		snap.Operators[c.name] = ob
	}

	// End-to-end per-method timings on the default benchmark query, plus the
	// cold-versus-prepared pair: how much of each method's per-request cost
	// the session API's prepare-once amortizes away.
	// Mappings is the *maximum* h any measurement below asks for: the
	// per-method timings use a renormalised 24-mapping prefix, the prepared
	// pair the full paper-scale 100.
	r := NewRunner(Config{Mappings: preparedBenchMappings, SizeMB: 8, Seed: 42})
	for _, m := range []core.Method{
		core.MethodBasic, core.MethodEBasic, core.MethodEMQO,
		core.MethodQSharing, core.MethodOSharing,
	} {
		res, err := r.evaluate(4, m, 24, 8)
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", m, err)
		}
		mb := MethodBench{
			TotalMs:      float64(res.TotalTime.Microseconds()) / 1000,
			Operators:    res.Stats.TotalOperators(),
			Answers:      len(res.Answers),
			IndexBuilds:  res.Stats.IndexBuilds(),
			IndexLookups: res.Stats.IndexLookups(),
		}
		cold, prepared, err := r.preparedPair(preparedBenchQuery, m, preparedBenchMappings, preparedBenchSizeMB)
		if err != nil {
			return nil, fmt.Errorf("snapshot %s prepared pair: %w", m, err)
		}
		mb.ColdMs = float64(cold) / 1e6
		mb.PreparedMs = float64(prepared) / 1e6
		if prepared > 0 {
			mb.PreparedSpeedup = float64(cold) / float64(prepared)
		}
		snap.Methods[m.String()] = mb
	}

	mc, err := measureMulticore(ctx)
	if err != nil {
		return nil, fmt.Errorf("snapshot multicore: %w", err)
	}
	snap.Multicore = mc
	return snap, nil
}

// multicoreBuildRows sizes the partitioned-build pair's build side: large
// enough to clear the engine's partitioned-build threshold several times over,
// so the measurement is dominated by the build phase the workers split.
const multicoreBuildRows = 200000

// measureMulticore benchmarks the partitioned hash-join build with GOMAXPROCS
// forced to 4 (restored afterwards): one join whose build side is
// multicoreBuildRows rows, executed with Workers=4 versus Workers=1.  On a
// single-core machine the numbers are still recorded — the regression gate
// skips the speedup floor when NumCPU < 2.
func measureMulticore(ctx context.Context) (*MulticoreBench, error) {
	const workers = 4
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)

	db := engine.NewInstance("DM")
	db.AddRelation(snapshotKeyedRelation("P", 2000, 1))
	db.AddRelation(snapshotKeyedRelation("B", multicoreBuildRows, 3))
	plan := &engine.JoinPlan{
		LeftCol: "P.id", RightCol: "B.id",
		Left:  &engine.ScanPlan{Relation: "P"},
		Right: &engine.ScanPlan{Relation: "B"},
	}
	exec := func(w int) error {
		ex := &engine.Executor{DB: db, Stats: engine.NewStats(), Workers: w}
		_, err := ex.ExecuteContext(ctx, plan)
		return err
	}
	ob, err := measurePair(multicoreBuildRows, func() error { return exec(1) }, func() error { return exec(workers) })
	if err != nil {
		return nil, err
	}
	return &MulticoreBench{
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   workers,
		BuildRows:    multicoreBuildRows,
		Workers:      workers,
		SequentialNs: ob.NaiveNsOp,
		ParallelNs:   ob.EngineNsOp,
		Speedup:      ob.Speedup,
	}, nil
}

// The prepared-versus-cold pair runs the paper's Q1 — a selection chain the
// shared indexes answer with point probes — at the paper's mapping scale on a
// small instance: with h=100 and microsecond executions the front half
// (reformulate through every mapping, optimize, compile — and for e-MQO the
// Θ(Q³) global-plan search) is a large share of each request, which is
// exactly the serving regime the session API targets (many mappings, indexed
// point queries behind the answer cache).
const (
	preparedBenchQuery    = 1
	preparedBenchMappings = 100
	preparedBenchSizeMB   = 4
)

// preparedPair measures one workload query under the method twice: cold
// (a fresh one-shot Evaluate per iteration) and prepared (re-executing one
// prepared query), returning ns/op for each.
func (r *Runner) preparedPair(queryID int, m core.Method, h int, sizeMB float64) (coldNs, preparedNs int64, err error) {
	target, err := datagen.QueryTarget(queryID)
	if err != nil {
		return 0, 0, err
	}
	ds, maps, err := r.dataset(target, sizeMB, h)
	if err != nil {
		return 0, 0, err
	}
	q, err := datagen.WorkloadQuery(queryID)
	if err != nil {
		return 0, 0, err
	}
	opts := core.Options{Method: m, Parallelism: 1}
	ev := core.NewEvaluator(ds.DB, maps)

	prep, err := ev.Prepare(q)
	if err != nil {
		return 0, 0, err
	}
	// Warm the front half (and the shared base-relation indexes) so both
	// sides measure steady state: cold still pays reformulation and plan
	// compilation every iteration, prepared only execution.
	if _, err := prep.Execute(opts); err != nil {
		return 0, 0, err
	}

	var firstErr error
	run := func(fn func() error) int64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					b.Fatal(err)
				}
			}
		})
		return res.NsPerOp()
	}
	coldNs = run(func() error { _, err := ev.Evaluate(q, opts); return err })
	preparedNs = run(func() error { _, err := prep.Execute(opts); return err })
	if firstErr != nil {
		return 0, 0, firstErr
	}
	return coldNs, preparedNs, nil
}

// JSON renders the snapshot with stable indentation.
func (s *EngineSnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
