package bench

import (
	"context"
	"fmt"
	"time"

	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/server"
)

// The delta benchmark measures what incremental maintenance buys an
// append+query mix: two identical in-process servers take the same high-churn
// append stream against the same scenario and query, one maintaining cached
// answers through the delta reconciler, the other invalidating on every epoch
// (DisableDelta).  Queries go through server.Do rather than HTTP so the ratio
// compares cache maintenance against re-evaluation, not transport noise.

// DeltaBench is the delta-maintenance section of the engine snapshot.
type DeltaBench struct {
	Scenario  string  `json:"scenario"`
	Mappings  int     `json:"mappings"`
	SizeMB    float64 `json:"size_mb"`
	Method    string  `json:"method"`
	Rounds    int     `json:"rounds"`
	BatchSize int     `json:"batch_size"`
	// QueriesPerRound queries follow each appended batch on both servers; all
	// of them are measured, so the baseline distribution mixes the post-append
	// cold evaluation with the cache hits that follow it.
	QueriesPerRound int `json:"queries_per_round"`

	// Delta: cached answers maintained through the reconciler; a convergence
	// pass follows each batch, so measured queries are cache hits.
	Delta LatencyStats `json:"delta"`
	// Baseline: epoch invalidation; the first query after each batch pays a
	// full evaluation.
	Baseline LatencyStats `json:"baseline"`
	// MaintainMs is the total wall time the delta server spent in convergence
	// passes — the asynchronous work the latency win is paid with.
	MaintainMs float64 `json:"maintain_ms"`

	P99Ratio  float64 `json:"p99_ratio"`
	MeanRatio float64 `json:"mean_ratio"`

	// Server-side counters after the run.
	DeltaApplied        int64 `json:"delta_applied"`
	DeltaFallbacks      int64 `json:"delta_fallbacks"`
	IndexInplaceAppends int64 `json:"index_inplace_appends"`
	DeltaEvaluations    int64 `json:"delta_evaluations"`
	BaselineEvaluations int64 `json:"baseline_evaluations"`
}

// delta-bench scale: the serve-bench dataset, a Zipf-skewed Orders stream in
// small batches, and enough rounds that the percentiles are stable.
const (
	deltaBenchMappings  = 24
	deltaBenchSizeMB    = 8.0
	deltaBenchSeed      = 42
	deltaBenchRounds    = 40
	deltaBenchBatch     = 25
	deltaBenchQPerRound = 5
)

// deltaBenchServer builds one in-process server over a freshly generated
// dataset (identical across calls for a fixed seed).
func deltaBenchServer(cfg server.Config) (*server.Server, *server.Scenario, error) {
	ds, err := datagen.NewDataset(datagen.DatasetOptions{
		Target:      datagen.TargetExcel,
		NumMappings: deltaBenchMappings,
		SizeMB:      deltaBenchSizeMB,
		Seed:        deltaBenchSeed,
	})
	if err != nil {
		return nil, nil, err
	}
	registry := server.NewRegistry()
	sc, err := registry.Register(context.Background(), "excel", ds.Target, ds.DB, ds.Mappings(),
		server.RegisterOptions{TargetLabel: string(ds.TargetName), WarmIndexes: true})
	if err != nil {
		return nil, nil, err
	}
	return server.New(registry, cfg), sc, nil
}

// DeltaSnapshot runs the append+query mix on the delta-maintaining and the
// invalidate-all server and returns the measured section.
func DeltaSnapshot() (*DeltaBench, error) {
	deltaSrv, deltaSc, err := deltaBenchServer(server.Config{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	baseSrv, baseSc, err := deltaBenchServer(server.Config{Parallelism: 1, DisableDelta: true})
	if err != nil {
		return nil, err
	}

	// Q1: the hot-constant SPJ selection over PO — the shape the delta
	// subsystem maintains, and one the Orders churn stream feeds (the Excel
	// mappings reformulate PO over Orders).
	q, err := datagen.WorkloadQuery(1)
	if err != nil {
		return nil, err
	}
	text, err := q.SQL()
	if err != nil {
		return nil, fmt.Errorf("delta bench: Q1 has no canonical text: %w", err)
	}
	req := server.Request{Scenario: "excel", Query: text, Method: "e-basic"}
	ctx := context.Background()

	// Warm-up: the first evaluation on the delta server must enroll — if Q1
	// stopped being delta-maintainable the benchmark would silently measure
	// two identical invalidate-all servers.
	if _, err := deltaSrv.Do(ctx, req); err != nil {
		return nil, fmt.Errorf("delta bench warm-up: %w", err)
	}
	if n := deltaSrv.DeltaEntries("excel"); n != 1 {
		return nil, fmt.Errorf("delta bench: Q1 enrolled %d maintained entries, want 1 — the workload query is no longer delta-maintainable", n)
	}
	if _, err := baseSrv.Do(ctx, req); err != nil {
		return nil, fmt.Errorf("delta bench warm-up: %w", err)
	}

	stream := datagen.AppendStream(datagen.AppendStreamOptions{
		Rows: deltaBenchRounds * deltaBenchBatch,
		Seed: deltaBenchSeed,
	})
	batches := datagen.Batches(stream, deltaBenchBatch)

	out := &DeltaBench{
		Scenario:        "excel",
		Mappings:        deltaBenchMappings,
		SizeMB:          deltaBenchSizeMB,
		Method:          "e-basic",
		Rounds:          len(batches),
		BatchSize:       deltaBenchBatch,
		QueriesPerRound: deltaBenchQPerRound,
	}
	var deltaLat, baseLat []float64
	var maintain time.Duration
	for _, batch := range batches {
		if err := deltaSc.AppendRows(datagen.AppendStreamRelation, batch); err != nil {
			return nil, fmt.Errorf("delta bench append: %w", err)
		}
		if err := baseSc.AppendRows(datagen.AppendStreamRelation, batch); err != nil {
			return nil, fmt.Errorf("delta bench append: %w", err)
		}
		start := time.Now()
		deltaSrv.ConvergeDelta("excel")
		maintain += time.Since(start)
		for i := 0; i < deltaBenchQPerRound; i++ {
			start := time.Now()
			if _, err := deltaSrv.Do(ctx, req); err != nil {
				return nil, fmt.Errorf("delta bench query: %w", err)
			}
			deltaLat = append(deltaLat, float64(time.Since(start).Microseconds())/1000)
			start = time.Now()
			if _, err := baseSrv.Do(ctx, req); err != nil {
				return nil, fmt.Errorf("delta bench baseline query: %w", err)
			}
			baseLat = append(baseLat, float64(time.Since(start).Microseconds())/1000)
		}
	}
	out.Delta = summarize(deltaLat)
	out.Baseline = summarize(baseLat)
	out.MaintainMs = float64(maintain.Microseconds()) / 1000
	if out.Delta.P99Ms > 0 {
		out.P99Ratio = out.Baseline.P99Ms / out.Delta.P99Ms
	}
	if out.Delta.MeanMs > 0 {
		out.MeanRatio = out.Baseline.MeanMs / out.Delta.MeanMs
	}

	dm, bm := deltaSrv.Metrics(), baseSrv.Metrics()
	out.DeltaApplied = dm.DeltaApplied
	out.DeltaFallbacks = dm.DeltaFallbacks
	out.IndexInplaceAppends = dm.IndexInplaceAppends
	out.DeltaEvaluations = dm.Evaluations
	out.BaselineEvaluations = bm.Evaluations
	return out, nil
}
