// Package bench is the experiment harness of Section VIII: one runner per
// table and figure of the paper's evaluation, producing the same rows or data
// series the paper reports (query times per workload query, sweeps over
// database size, mapping-set size, query size, operator-selection strategy,
// executed source operators, and top-k performance).
//
// Absolute times differ from the paper — this reproduction runs an in-memory
// Go engine on synthetic data rather than the authors' C++ system on a 100 MB
// disk-resident TPC-H instance — but the comparisons the paper draws (who
// wins, how methods scale, where crossovers happen) are preserved.  By default
// the harness evaluates sequentially, matching the paper's single-threaded
// setting; Config.Parallelism (urm-bench -parallel) measures the concurrent
// evaluation runtime instead.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/schema"
)

// Config controls the scale of the experiments.
type Config struct {
	// Mappings is the default mapping-set size h (paper default: 100).
	Mappings int
	// SizeMB is the default source-instance scale (the paper's default is
	// 100 MB; the harness default is 40 to keep full sweeps fast — pass 100
	// for the paper-scale run).
	SizeMB float64
	// Seed drives data generation.
	Seed uint64
	// MappingSweep is the list of mapping-set sizes for Figures 9(a), 10(c)
	// and 11(c).
	MappingSweep []int
	// SizeSweep is the list of database sizes (MB) for Figures 10(b) and 11(b).
	SizeSweep []float64
	// KSweep is the list of k values for Figure 12.
	KSweep []int
	// Runs is the number of repetitions averaged per measurement.
	Runs int
	// Parallelism is the evaluation runtime's worker bound.  The harness
	// defaults to 1 (sequential) so that reported timings reproduce the
	// paper's single-threaded comparisons; pass -parallel to urm-bench to
	// measure the concurrent runtime.
	Parallelism int
	// BatchSize is the engine batch-size override (urm-bench -batch): 0 runs
	// the engine's default vectorized batch size, a positive value overrides
	// the rows per batch, and a negative value measures the tuple-at-a-time
	// fallback pipeline.
	BatchSize int
}

// DefaultConfig returns the configuration used by cmd/urm-bench when no flags
// are given.
func DefaultConfig() Config {
	return Config{
		Mappings:     100,
		SizeMB:       40,
		Seed:         42,
		MappingSweep: []int{100, 200, 300, 400, 500},
		SizeSweep:    []float64{20, 40, 60, 80, 100},
		KSweep:       []int{1, 5, 10, 15, 20},
		Runs:         1,
		Parallelism:  1,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Mappings <= 0 {
		c.Mappings = d.Mappings
	}
	if c.SizeMB <= 0 {
		c.SizeMB = d.SizeMB
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if len(c.MappingSweep) == 0 {
		c.MappingSweep = d.MappingSweep
	}
	if len(c.SizeSweep) == 0 {
		c.SizeSweep = d.SizeSweep
	}
	if len(c.KSweep) == 0 {
		c.KSweep = d.KSweep
	}
	if c.Runs <= 0 {
		c.Runs = d.Runs
	}
	if c.Parallelism == 0 {
		c.Parallelism = d.Parallelism
	}
	return c
}

// Table is one reproduced figure or table: a title, column headers and
// formatted rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(values ...string) { t.Rows = append(t.Rows, values) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Runner caches generated datasets and mapping sets across experiments so a
// full reproduction run generates each instance and mapping set once.
type Runner struct {
	cfg Config
	// mapping sets per target, generated once at the largest h needed.
	mappings map[datagen.TargetName]schema.MappingSet
	// datasets per (target, sizeMB).
	datasets map[string]*datagen.Dataset
}

// NewRunner returns a runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{
		cfg:      cfg.withDefaults(),
		mappings: make(map[datagen.TargetName]schema.MappingSet),
		datasets: make(map[string]*datagen.Dataset),
	}
}

// Config returns the runner's effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// execContext returns the evaluation runtime context used by experiments that
// call the core algorithms directly.
func (r *Runner) execContext() *exec.Context {
	ec := exec.NewContext(context.Background(), r.cfg.Parallelism)
	if r.cfg.BatchSize != 0 {
		ec = ec.WithBatch(r.cfg.BatchSize)
	}
	return ec
}

// options returns the core evaluation options for the given method under the
// runner's configuration.
func (r *Runner) options(method core.Method) core.Options {
	return core.Options{Method: method, Parallelism: r.cfg.Parallelism, BatchSize: r.cfg.BatchSize}
}

func (r *Runner) maxMappings() int {
	max := r.cfg.Mappings
	for _, h := range r.cfg.MappingSweep {
		if h > max {
			max = h
		}
	}
	return max
}

// dataset returns a dataset for the target at the given size, with exactly h
// mappings (a renormalised prefix of the cached top-maxMappings set).
func (r *Runner) dataset(target datagen.TargetName, sizeMB float64, h int) (*datagen.Dataset, schema.MappingSet, error) {
	key := fmt.Sprintf("%s|%.1f", target, sizeMB)
	ds, ok := r.datasets[key]
	if !ok {
		var err error
		ds, err = datagen.NewDataset(datagen.DatasetOptions{
			Target:      target,
			NumMappings: r.maxMappings(),
			SizeMB:      sizeMB,
			Seed:        r.cfg.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		r.datasets[key] = ds
		if _, ok := r.mappings[target]; !ok {
			r.mappings[target] = ds.Mappings()
		}
	}
	maps := ds.MappingsPrefix(h)
	return ds, maps, nil
}

// seconds formats a duration as seconds with millisecond resolution.
func seconds(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// timed runs fn cfg.Runs times and returns the mean duration it reports.
func (r *Runner) timed(fn func() (time.Duration, error)) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < r.cfg.Runs; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(r.cfg.Runs), nil
}
