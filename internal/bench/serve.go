package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/server"
)

// The serve benchmark measures the query service end to end — HTTP layer,
// admission control, answer cache — against an in-process server, separating
// cold latency (every request evaluates) from cached latency (every request
// hits).  The gap between the two is the request-level sharing the service
// layer adds on top of the engine's mapping-level sharing.

// LatencyStats summarizes one phase's request latencies.
type LatencyStats struct {
	Requests int     `json:"requests"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// ServeBench is the serve-benchmark section of the engine snapshot.
type ServeBench struct {
	Scenario        string  `json:"scenario"`
	Mappings        int     `json:"mappings"`
	SizeMB          float64 `json:"size_mb"`
	DistinctQueries int     `json:"distinct_queries"`
	Clients         int     `json:"clients"`

	// Cold: one sequential pass over the distinct queries against an empty
	// cache; every request pays a full evaluation.
	Cold LatencyStats `json:"cold"`
	// Cached: concurrent clients replaying the same queries; every request is
	// an answer-cache hit.
	Cached        LatencyStats `json:"cached"`
	ThroughputRPS float64      `json:"cached_throughput_rps"`

	// Server-side counters after the run (cache behaviour and the shared
	// index subsystem's build/lookup balance).
	Evaluations int64 `json:"evaluations"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// WarmIndexBuilds is registration-time index construction; IndexBuilds
	// counts request-time builds, which warm registration keeps at zero.
	WarmIndexBuilds int   `json:"warm_index_builds"`
	IndexBuilds     int64 `json:"index_builds"`
	IndexLookups    int64 `json:"index_lookups"`
}

// serve-bench scale: a small instance keeps the cold phase in seconds while
// the cached phase still measures the serving stack, not the engine.
const (
	serveBenchMappings = 24
	serveBenchSizeMB   = 8.0
	serveBenchSeed     = 42
	serveBenchClients  = 8
	serveBenchRequests = 50 // per client, cached phase
)

// ServeSnapshot boots an in-process query server on a loopback listener,
// drives the paper's Excel workload queries through it over real HTTP, and
// returns the measured section.
func ServeSnapshot() (*ServeBench, error) {
	ds, err := datagen.NewDataset(datagen.DatasetOptions{
		Target:      datagen.TargetExcel,
		NumMappings: serveBenchMappings,
		SizeMB:      serveBenchSizeMB,
		Seed:        serveBenchSeed,
	})
	if err != nil {
		return nil, err
	}
	registry := server.NewRegistry()
	if _, err := registry.Register(context.Background(), "excel", ds.Target, ds.DB, ds.Mappings(),
		server.RegisterOptions{TargetLabel: string(ds.TargetName), WarmIndexes: true}); err != nil {
		return nil, err
	}
	srv := server.New(registry, server.Config{
		MaxConcurrent: runtime.GOMAXPROCS(0),
		QueueWait:     time.Second,
		Parallelism:   1,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpServer := &http.Server{Handler: srv}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = httpServer.Serve(ln)
	}()
	defer func() {
		_ = httpServer.Close()
		<-serveDone
	}()
	base := "http://" + ln.Addr().String()

	// The Excel workload slice of Table III (Q1-Q5), as HTTP request bodies.
	var bodies [][]byte
	for id := 1; id <= 5; id++ {
		q, err := datagen.WorkloadQuery(id)
		if err != nil {
			return nil, err
		}
		text, err := q.SQL()
		if err != nil {
			return nil, fmt.Errorf("serve bench: Q%d has no canonical text: %w", id, err)
		}
		body, err := json.Marshal(server.Request{Scenario: "excel", Query: text})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}

	out := &ServeBench{
		Scenario:        "excel",
		Mappings:        serveBenchMappings,
		SizeMB:          serveBenchSizeMB,
		DistinctQueries: len(bodies),
		Clients:         serveBenchClients,
	}
	// One idle connection per client: the default transport keeps only two
	// per host, which would make most cached-phase requests pay connection
	// setup/teardown and measure transport churn instead of the serving
	// stack.
	transport := &http.Transport{
		MaxIdleConns:        serveBenchClients,
		MaxIdleConnsPerHost: serveBenchClients,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Timeout: 5 * time.Minute, Transport: transport}

	// Cold phase: sequential, empty cache — each request is one evaluation.
	var coldLat []float64
	for _, body := range bodies {
		ms, cached, err := timedQuery(client, base, body)
		if err != nil {
			return nil, fmt.Errorf("serve bench cold: %w", err)
		}
		if cached {
			return nil, fmt.Errorf("serve bench cold: request unexpectedly served from cache")
		}
		coldLat = append(coldLat, ms)
	}
	out.Cold = summarize(coldLat)

	// Cached phase: concurrent clients replay the distinct queries in
	// deterministic per-client shuffles; every request must hit.
	latCh := make(chan []float64, serveBenchClients)
	errCh := make(chan error, serveBenchClients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < serveBenchClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			lats := make([]float64, 0, serveBenchRequests)
			for i := 0; i < serveBenchRequests; i++ {
				body := bodies[rng.Intn(len(bodies))]
				ms, cached, err := timedQuery(client, base, body)
				if err != nil {
					errCh <- fmt.Errorf("serve bench client %d: %w", c, err)
					return
				}
				if !cached {
					errCh <- fmt.Errorf("serve bench client %d: warm request missed the cache", c)
					return
				}
				lats = append(lats, ms)
			}
			latCh <- lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(latCh)
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	var cachedLat []float64
	for lats := range latCh {
		cachedLat = append(cachedLat, lats...)
	}
	out.Cached = summarize(cachedLat)
	if elapsed > 0 {
		out.ThroughputRPS = float64(len(cachedLat)) / elapsed.Seconds()
	}

	metrics := srv.Metrics()
	out.Evaluations = metrics.Evaluations
	out.CacheHits = metrics.Cache.Hits
	out.CacheMisses = metrics.Cache.Misses
	out.IndexBuilds = metrics.IndexBuilds
	out.IndexLookups = metrics.IndexLookups
	for _, info := range metrics.Scenarios {
		out.WarmIndexBuilds += info.WarmIndexBuilds
	}
	return out, nil
}

// timedQuery posts one query and returns its wall latency and cached flag.
func timedQuery(client *http.Client, base string, body []byte) (ms float64, cached bool, err error) {
	start := time.Now()
	resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	elapsed := time.Since(start)
	if err != nil {
		return 0, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var qr server.Response
	if err := json.Unmarshal(data, &qr); err != nil {
		return 0, false, err
	}
	return float64(elapsed.Microseconds()) / 1000, qr.Cached, nil
}

// summarize computes the latency distribution of one phase.
func summarize(lats []float64) LatencyStats {
	if len(lats) == 0 {
		return LatencyStats{}
	}
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	quantile := func(q float64) float64 {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	return LatencyStats{
		Requests: len(sorted),
		MeanMs:   sum / float64(len(sorted)),
		P50Ms:    quantile(0.50),
		P99Ms:    quantile(0.99),
		MaxMs:    sorted[len(sorted)-1],
	}
}
