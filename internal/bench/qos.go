package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/qos"
	"github.com/probdb/urm/internal/server"
)

// The QoS benchmark measures tenant isolation under overload: a compliant
// tenant paced within its token-bucket share runs once alone (solo baseline)
// and once while a hostile tenant floods the service at ten times its own
// budget.  The section records both phases' latency distributions and success
// rates; the regression gate requires the contended phase to stay within 20%
// of the solo baseline, which is exactly the property the per-tenant limiter,
// the weighted-fair queue and the shed ladder exist to provide.

// QoSPhase is the compliant tenant's measurement for one phase.  A request is
// one logical query: the client retries 429s with backoff (honouring
// Retry-After), so its latency includes any retry pauses and Succeeded counts
// queries that eventually got an answer.
type QoSPhase struct {
	Requests    int          `json:"requests"`
	Succeeded   int          `json:"succeeded"`
	SuccessRate float64      `json:"success_rate"`
	Latency     LatencyStats `json:"latency"`
}

// QoSBench is the tenant-isolation section of the engine snapshot.
type QoSBench struct {
	// The compliant tenant evaluates method=basic against the larger
	// scenario (every request a distinct query, so each one is a genuine
	// cache miss); the hostile tenant spams distinct queries against the
	// small scenario, so the handful its bucket admits stay cheap.
	CompliantScenario string  `json:"compliant_scenario"`
	HostileScenario   string  `json:"hostile_scenario"`
	TenantRate        float64 `json:"tenant_rate"`
	TenantBurst       float64 `json:"tenant_burst"`
	CompliantWeight   float64 `json:"compliant_weight"`
	HostileWeight     float64 `json:"hostile_weight"`
	// OverBudget is the hostile tenant's attempt rate as a multiple of its
	// contended token share.
	OverBudget float64 `json:"hostile_over_budget_factor"`

	Solo      QoSPhase `json:"solo"`
	Contended QoSPhase `json:"contended"`

	// P99Ratio and SuccessRatio compare the compliant tenant's contended
	// phase against its solo baseline; the regression gate bounds both.
	P99Ratio     float64 `json:"p99_ratio"`
	SuccessRatio float64 `json:"success_ratio"`

	// Hostile-side evidence that the flood was real and was shed: client
	// attempt counts plus the server's per-tenant rate-limit counter.
	HostileAttempts       int   `json:"hostile_attempts"`
	HostileAdmitted       int   `json:"hostile_admitted"`
	HostileRejected       int   `json:"hostile_rejected"`
	ServerShedRateLimited int64 `json:"server_shed_rate_limited"`
}

// qos-bench scale: the compliant scenario is large enough that its requests
// are evaluation-dominated (tens of milliseconds under method=basic), while
// the hostile scenario is small enough that an admitted hostile evaluation
// costs a fraction of one compliant request — so the isolation measurement
// reflects admission control, not raw CPU contention.
const (
	qosBenchSeed       = 42
	qosCompliantMaps   = 48
	qosCompliantSizeMB = 8.0
	qosHostileMaps     = 2
	qosHostileSizeMB   = 0.5

	qosBenchWarmup   = 40
	qosBenchRequests = 120
	qosBenchPace     = 25 * time.Millisecond

	qosTenantRate      = 30.0
	qosTenantBurst     = 10.0
	qosCompliantWeight = 4.0
	qosHostileWeight   = 1.0
	qosOverBudget      = 10.0
)

// QoSSnapshot boots an in-process query server with per-tenant QoS enabled,
// runs the compliant tenant solo and then under a hostile flood, and returns
// the measured section.
func QoSSnapshot() (*QoSBench, error) {
	// Multiple Ps even on a single-core machine: with GOMAXPROCS=1 every
	// hostile wakeup preempts the compliant evaluation for a full scheduler
	// quantum, measuring Go's single-P scheduling granularity instead of
	// admission control.  The kernel timeslices threads far more finely.
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	registry := server.NewRegistry()
	register := func(name string, mappings int, sizeMB float64, seed uint64) error {
		ds, err := datagen.NewDataset(datagen.DatasetOptions{
			Target:      datagen.TargetExcel,
			NumMappings: mappings,
			SizeMB:      sizeMB,
			Seed:        seed,
		})
		if err != nil {
			return err
		}
		_, err = registry.Register(context.Background(), name, ds.Target, ds.DB, ds.Mappings(),
			server.RegisterOptions{TargetLabel: string(ds.TargetName), WarmIndexes: true})
		return err
	}
	if err := register("excel", qosCompliantMaps, qosCompliantSizeMB, qosBenchSeed); err != nil {
		return nil, err
	}
	if err := register("tiny", qosHostileMaps, qosHostileSizeMB, qosBenchSeed+1); err != nil {
		return nil, err
	}

	srv := server.New(registry, server.Config{
		MaxConcurrent: runtime.GOMAXPROCS(0),
		QueueWait:     time.Second,
		Parallelism:   1,
		CacheBytes:    4 << 20,
		TenantRate:    qosTenantRate,
		TenantBurst:   qosTenantBurst,
		Tenants: map[string]server.TenantQoS{
			"gold":  {Weight: qosCompliantWeight, Priority: server.PriorityInteractive},
			"flood": {Weight: qosHostileWeight, Priority: server.PriorityBatch},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpServer := &http.Server{Handler: srv}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = httpServer.Serve(ln)
	}()
	defer func() {
		_ = httpServer.Close()
		<-serveDone
	}()
	base := "http://" + ln.Addr().String()

	// One client per tenant: sharing a transport would let the hostile
	// tenant's churn steal the compliant tenant's warm connections, measuring
	// client-side pool contention instead of server-side isolation.
	newClient := func() (*http.Client, func()) {
		tr := &http.Transport{MaxIdleConns: 2, MaxIdleConnsPerHost: 2}
		return &http.Client{Timeout: time.Minute, Transport: tr}, tr.CloseIdleConnections
	}
	client, closeCompliant := newClient()
	defer closeCompliant()
	hostileClient, closeHostile := newClient()
	defer closeHostile()

	out := &QoSBench{
		CompliantScenario: "excel",
		HostileScenario:   "tiny",
		TenantRate:        qosTenantRate,
		TenantBurst:       qosTenantBurst,
		CompliantWeight:   qosCompliantWeight,
		HostileWeight:     qosHostileWeight,
		OverBudget:        qosOverBudget,
	}

	// Distinct query per request keeps every request a genuine answer-cache
	// miss: cache hits bypass admission entirely, which would let the
	// hostile tenant evade its bucket and the compliant tenant skip the
	// evaluation cost the phase is supposed to measure.  The range predicate
	// defeats the per-column equality indexes, so each compliant request is
	// a scan-dominated evaluation through every mapping — heavy enough that
	// waiting out one admitted hostile evaluation (a point query on the
	// small scenario) barely moves its latency — while the aggregate keeps
	// the response body small, so the measurement is evaluation, not
	// response marshalling and transfer.
	seq := 0
	nextQuery := func() string {
		seq++
		return fmt.Sprintf("SELECT COUNT(*) FROM PO WHERE priority > %d AND telephone <> 'qos-%06d'", seq%3, seq)
	}

	// One compliant logical request: POST with retry, honouring Retry-After
	// on 429s, exactly as a well-behaved client would.
	compliantOne := func(seed uint64) (ms float64, ok bool, err error) {
		start := time.Now()
		retryErr := qos.Retry(context.Background(), qos.Backoff{
			Base: 10 * time.Millisecond, Max: 250 * time.Millisecond, Attempts: 4, Seed: seed,
		}, func(ctx context.Context) (time.Duration, bool, error) {
			return postQoS(ctx, client, base, "gold", server.PriorityInteractive, "excel", "basic", nextQuery())
		})
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		if retryErr != nil {
			// Exhausted retries on 429s is a shed request — a data point
			// (a failed logical request), not a benchmark failure.
			if errors.Is(retryErr, errQoSShed) {
				return elapsed, false, nil
			}
			return 0, false, retryErr
		}
		return elapsed, true, nil
	}

	runPhase := func() (QoSPhase, error) {
		for i := 0; i < qosBenchWarmup; i++ {
			if _, _, err := compliantOne(uint64(i) + 1); err != nil {
				return QoSPhase{}, err
			}
		}
		var lats []float64
		succeeded := 0
		for i := 0; i < qosBenchRequests; i++ {
			ms, ok, err := compliantOne(uint64(i) + 100)
			if err != nil {
				return QoSPhase{}, err
			}
			if ok {
				succeeded++
				lats = append(lats, ms)
			}
			// Self-clocked pacing: the next request starts only after the
			// previous one finished, so the compliant tenant never exceeds
			// its bucket share no matter how slow the machine is.
			time.Sleep(qosBenchPace)
		}
		return QoSPhase{
			Requests:    qosBenchRequests,
			Succeeded:   succeeded,
			SuccessRate: float64(succeeded) / float64(qosBenchRequests),
			Latency:     summarize(lats),
		}, nil
	}

	// Phase 1: compliant tenant alone.
	solo, err := runPhase()
	if err != nil {
		return nil, fmt.Errorf("qos bench solo: %w", err)
	}
	out.Solo = solo

	// Phase 2: hostile flood at OverBudget times its contended token share.
	hostileShare := qosTenantRate * qosHostileWeight / (qosCompliantWeight + qosHostileWeight)
	hostileInterval := time.Duration(float64(time.Second) / (hostileShare * qosOverBudget))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var hostileAttempts, hostileAdmitted, hostileRejected int
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			n++
			// Distinct hostile queries too: a repeated text would become an
			// answer-cache hit, which is served before admission and would
			// let the flood dodge its bucket entirely.
			q := fmt.Sprintf("SELECT orderNum FROM PO WHERE telephone = 'flood-%06d'", n)
			_, retryable, err := postQoS(context.Background(), hostileClient, base, "flood", "", "tiny", "", q)
			hostileAttempts++
			switch {
			case err == nil:
				hostileAdmitted++
			case retryable:
				hostileRejected++
			}
			time.Sleep(hostileInterval)
		}
	}()
	// Let the limiter see the hostile tenant as active (and the compliant
	// tenant's share settle to its contended value) before measuring.
	time.Sleep(300 * time.Millisecond)
	contended, err := runPhase()
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, fmt.Errorf("qos bench contended: %w", err)
	}
	out.Contended = contended
	out.HostileAttempts = hostileAttempts
	out.HostileAdmitted = hostileAdmitted
	out.HostileRejected = hostileRejected

	if out.Solo.Latency.P99Ms > 0 {
		out.P99Ratio = out.Contended.Latency.P99Ms / out.Solo.Latency.P99Ms
	}
	if out.Solo.SuccessRate > 0 {
		out.SuccessRatio = out.Contended.SuccessRate / out.Solo.SuccessRate
	}
	out.ServerShedRateLimited = srv.Metrics().Tenants["flood"].ShedRateLimited
	return out, nil
}

// errQoSShed marks a 429 response, so a compliant request that exhausted its
// retries is counted as shed rather than failing the benchmark.
var errQoSShed = errors.New("rate limited")

// postQoS posts one query as the given tenant and classifies the response the
// way qos.Retry expects: (retryAfter, retryable=true) on a 429, nil error on
// success, terminal error otherwise.
func postQoS(ctx context.Context, client *http.Client, base, tenant, priority, scenario, method, query string) (time.Duration, bool, error) {
	body, err := json.Marshal(server.Request{Scenario: scenario, Query: query, Method: method})
	if err != nil {
		return 0, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-URM-Tenant", tenant)
	if priority != "" {
		req.Header.Set("X-URM-Priority", priority)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return 0, false, nil
	case http.StatusTooManyRequests:
		var eb struct {
			Error        string  `json:"error"`
			RetryAfterMS float64 `json:"retry_after_ms"`
		}
		_ = json.Unmarshal(data, &eb)
		return time.Duration(eb.RetryAfterMS * float64(time.Millisecond)), true,
			fmt.Errorf("qos bench %s: %w: %s", tenant, errQoSShed, eb.Error)
	default:
		return 0, false, fmt.Errorf("qos bench %s: status %d: %s", tenant, resp.StatusCode, data)
	}
}
