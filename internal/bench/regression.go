package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ReadSnapshot loads a BENCH_engine.json previously written by
// `urm-bench -json`.
func ReadSnapshot(path string) (*EngineSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap EngineSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// CheckRegression validates an engine snapshot against the perf floor every
// change must preserve: each operator pair's live implementation must be at
// least as fast as its reference (speedup >= 1.0).  It returns an error
// naming every operator below the floor, so the CI bench-regression gate can
// fail with the full picture in one run.
func CheckRegression(snap *EngineSnapshot) error {
	if len(snap.Operators) == 0 {
		return fmt.Errorf("snapshot contains no operator measurements")
	}
	names := make([]string, 0, len(snap.Operators))
	for name := range snap.Operators {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	for _, name := range names {
		if ob := snap.Operators[name]; ob.Speedup < 1.0 {
			bad = append(bad, fmt.Sprintf("%s %.3fx", name, ob.Speedup))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("operator speedup below 1.0: %s", strings.Join(bad, ", "))
	}
	return nil
}
