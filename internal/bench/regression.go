package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ReadSnapshot loads a BENCH_engine.json previously written by
// `urm-bench -json`.
func ReadSnapshot(path string) (*EngineSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap EngineSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// preparedSpeedupFloor and preparedSpeedupMinMethods gate the session API's
// amortization: re-executing a prepared query must be at least
// preparedSpeedupFloor× faster than a cold Evaluate for at least
// preparedSpeedupMinMethods of the five methods.  Not all five, because for
// execution-dominated methods (o-sharing's u-trace) the front half is
// legitimately a small share of the request.
const (
	preparedSpeedupFloor      = 1.3
	preparedSpeedupMinMethods = 3
)

// operatorSpeedupFloors raises the bar for the operators the vectorized batch
// pipeline rewrote: their live implementation must beat the naive reference by
// at least this factor, not merely match it.  Speedup ratios are used rather
// than absolute ns/op because both sides of a pair scale together with machine
// speed, making the ratio stable across runners.  Floors sit at roughly 60-70%
// of the speedups measured when the snapshot was committed (select 4.3x,
// project 1.5x, pipeline 6.5x, hashjoin 4.1x), leaving headroom for
// machine-to-machine variance.  Project's floor is low by design: a
// non-contiguous root projection must materialize a fresh value slab
// (~2.4 MB/op on the benchmark shape), so it is allocation-bandwidth-bound and
// the batch pipeline can only trim constant factors around that traffic.
// Operators not listed keep the generic 1.0 floor.
var operatorSpeedupFloors = map[string]float64{
	"select":   3.0,
	"project":  1.2,
	"pipeline": 4.0,
	"hashjoin": 2.5,
}

// multicoreSpeedupFloor gates the partitioned hash-join build: with 4 workers
// on a multi-core machine the build-dominated join must run at least this much
// faster than the sequential build.  Enforced only when the snapshot's
// multicore section was recorded on a machine that actually had multiple CPUs.
const multicoreSpeedupFloor = 1.05

// CheckRegression validates an engine snapshot against the perf floor every
// change must preserve: each operator pair's live implementation must be at
// least as fast as its reference (speedup >= 1.0), and — when the snapshot
// carries prepared-pair measurements — prepared re-execution must beat cold
// evaluation by the prepared floor on enough methods.  It returns an error
// naming every measurement below its floor, so the CI bench-regression gate
// can fail with the full picture in one run.
func CheckRegression(snap *EngineSnapshot) error {
	if len(snap.Operators) == 0 {
		return fmt.Errorf("snapshot contains no operator measurements")
	}
	names := make([]string, 0, len(snap.Operators))
	for name := range snap.Operators {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	for _, name := range names {
		floor := 1.0
		if f, ok := operatorSpeedupFloors[name]; ok {
			floor = f
		}
		if ob := snap.Operators[name]; ob.Speedup < floor {
			bad = append(bad, fmt.Sprintf("%s %.3fx (floor %.2fx)", name, ob.Speedup, floor))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("operator speedup below floor: %s", strings.Join(bad, ", "))
	}
	if err := checkMulticore(snap); err != nil {
		return err
	}
	if err := checkQoS(snap); err != nil {
		return err
	}
	if err := checkShards(snap); err != nil {
		return err
	}
	if err := checkDelta(snap); err != nil {
		return err
	}
	return checkPreparedSpeedups(snap)
}

// deltaP99RatioFloor gates incremental maintenance: under the append+query
// mix, the delta-maintained server's query p99 must beat the invalidate-all
// baseline's by at least this factor.
const deltaP99RatioFloor = 2.0

// checkDelta applies the incremental-maintenance floor.  Snapshots without a
// delta section pass (older snapshots stay valid).  A run where no delta pass
// ever published, or where the maintained query fell back, measured the wrong
// thing and fails outright.
func checkDelta(snap *EngineSnapshot) error {
	d := snap.Delta
	if d == nil {
		return nil
	}
	if d.DeltaApplied <= 0 {
		return fmt.Errorf("delta: no maintenance pass ever published (delta_applied %d) — the benchmark measured two invalidate-all servers", d.DeltaApplied)
	}
	if d.DeltaFallbacks > 0 {
		return fmt.Errorf("delta: the maintained query fell back %d times — it is no longer delta-maintainable", d.DeltaFallbacks)
	}
	if d.P99Ratio < deltaP99RatioFloor {
		return fmt.Errorf("delta: maintained query p99 beats invalidate-all by %.2fx (%.3fms vs %.3fms), need %.1fx",
			d.P99Ratio, d.Baseline.P99Ms, d.Delta.P99Ms, deltaP99RatioFloor)
	}
	return nil
}

// shardsSpeedupFloor gates scatter-gather scaling: on a multi-core machine
// the join-heavy workload at 4 in-process shards (one worker per shard) must
// run at least this much faster than at 1 shard.
const shardsSpeedupFloor = 1.5

// checkShards applies the scatter-gather scaling floor.  Snapshots without a
// shards section pass (older snapshots stay valid), as do sections recorded
// on machines with fewer than 4 CPUs: the gate compares a 4-way scatter (one
// worker per shard) against 1 shard, and with fewer cores than shards the
// workers time-slice instead of running concurrently — the numbers are still
// recorded there so the environment is visible.
func checkShards(snap *EngineSnapshot) error {
	sb := snap.Shards
	if sb == nil || sb.NumCPU < 4 {
		return nil
	}
	var one, four *ShardsPoint
	for i := range sb.InProcess {
		switch sb.InProcess[i].Shards {
		case 1:
			one = &sb.InProcess[i]
		case 4:
			four = &sb.InProcess[i]
		}
	}
	if one == nil || four == nil {
		return fmt.Errorf("shards: section lacks the 1- and 4-shard points the gate compares")
	}
	if four.Speedup < shardsSpeedupFloor {
		return fmt.Errorf("shards: 4-shard scatter-gather is %.3fx over 1 shard (%.3fms vs %.3fms), need %.2fx (%d CPUs)",
			four.Speedup, float64(four.NsOp)/1e6, float64(one.NsOp)/1e6, shardsSpeedupFloor, sb.NumCPU)
	}
	return nil
}

// qosP99RatioCeiling and qosSuccessRatioFloor gate tenant isolation: with a
// hostile tenant flooding at ten times its budget, the compliant tenant's p99
// latency may grow by at most 20% over its solo baseline and its success rate
// may drop by at most 20%.  The flood must also demonstrably have been shed —
// a snapshot where the hostile tenant was never rejected measured nothing.
const (
	qosP99RatioCeiling   = 1.2
	qosSuccessRatioFloor = 0.8
)

// checkQoS applies the tenant-isolation floors.  Snapshots without a qos
// section pass (older snapshots, and `-json`-only re-measurements, stay
// valid).
func checkQoS(snap *EngineSnapshot) error {
	q := snap.QoS
	if q == nil {
		return nil
	}
	if q.HostileRejected <= 0 || q.ServerShedRateLimited <= 0 {
		return fmt.Errorf("qos: hostile tenant was never rate-limited (client rejections %d, server shed %d) — the flood did not exercise admission control",
			q.HostileRejected, q.ServerShedRateLimited)
	}
	if q.P99Ratio > qosP99RatioCeiling {
		return fmt.Errorf("qos: compliant tenant p99 under flood is %.2fx its solo baseline (%.2fms vs %.2fms), ceiling %.2fx",
			q.P99Ratio, q.Contended.Latency.P99Ms, q.Solo.Latency.P99Ms, qosP99RatioCeiling)
	}
	if q.SuccessRatio < qosSuccessRatioFloor {
		return fmt.Errorf("qos: compliant tenant success rate under flood is %.2fx its solo baseline (%.3f vs %.3f), floor %.2fx",
			q.SuccessRatio, q.Contended.SuccessRate, q.Solo.SuccessRate, qosSuccessRatioFloor)
	}
	return nil
}

// checkMulticore applies the partitioned-build floor.  Snapshots without a
// multicore section pass (older snapshots stay valid), as do sections recorded
// on single-CPU machines, where no parallel speedup is physically available —
// the numbers are still recorded there so the environment is visible.
func checkMulticore(snap *EngineSnapshot) error {
	mc := snap.Multicore
	if mc == nil || mc.NumCPU < 2 {
		return nil
	}
	if mc.Speedup < multicoreSpeedupFloor {
		return fmt.Errorf("partitioned join build with %d workers: %.3fx over sequential, need %.2fx (build %d rows, %d CPUs)",
			mc.Workers, mc.Speedup, multicoreSpeedupFloor, mc.BuildRows, mc.NumCPU)
	}
	return nil
}

// checkPreparedSpeedups applies the prepared-re-execution floor.  Snapshots
// without prepared measurements (none of the methods carries a pair) pass, so
// older snapshots and serve-only merges stay valid.
func checkPreparedSpeedups(snap *EngineSnapshot) error {
	measured, fast := 0, 0
	var speeds []string
	names := make([]string, 0, len(snap.Methods))
	for name := range snap.Methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mb := snap.Methods[name]
		if mb.PreparedSpeedup == 0 {
			continue
		}
		measured++
		if mb.PreparedSpeedup >= preparedSpeedupFloor {
			fast++
		}
		speeds = append(speeds, fmt.Sprintf("%s %.2fx", name, mb.PreparedSpeedup))
	}
	if measured == 0 {
		return nil
	}
	if fast < preparedSpeedupMinMethods {
		return fmt.Errorf("prepared re-execution >= %.1fx on %d/%d methods, need %d: %s",
			preparedSpeedupFloor, fast, measured, preparedSpeedupMinMethods, strings.Join(speeds, ", "))
	}
	return nil
}
