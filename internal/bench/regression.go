package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ReadSnapshot loads a BENCH_engine.json previously written by
// `urm-bench -json`.
func ReadSnapshot(path string) (*EngineSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap EngineSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// preparedSpeedupFloor and preparedSpeedupMinMethods gate the session API's
// amortization: re-executing a prepared query must be at least
// preparedSpeedupFloor× faster than a cold Evaluate for at least
// preparedSpeedupMinMethods of the five methods.  Not all five, because for
// execution-dominated methods (o-sharing's u-trace) the front half is
// legitimately a small share of the request.
const (
	preparedSpeedupFloor      = 1.3
	preparedSpeedupMinMethods = 3
)

// CheckRegression validates an engine snapshot against the perf floor every
// change must preserve: each operator pair's live implementation must be at
// least as fast as its reference (speedup >= 1.0), and — when the snapshot
// carries prepared-pair measurements — prepared re-execution must beat cold
// evaluation by the prepared floor on enough methods.  It returns an error
// naming every measurement below its floor, so the CI bench-regression gate
// can fail with the full picture in one run.
func CheckRegression(snap *EngineSnapshot) error {
	if len(snap.Operators) == 0 {
		return fmt.Errorf("snapshot contains no operator measurements")
	}
	names := make([]string, 0, len(snap.Operators))
	for name := range snap.Operators {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	for _, name := range names {
		if ob := snap.Operators[name]; ob.Speedup < 1.0 {
			bad = append(bad, fmt.Sprintf("%s %.3fx", name, ob.Speedup))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("operator speedup below 1.0: %s", strings.Join(bad, ", "))
	}
	return checkPreparedSpeedups(snap)
}

// checkPreparedSpeedups applies the prepared-re-execution floor.  Snapshots
// without prepared measurements (none of the methods carries a pair) pass, so
// older snapshots and serve-only merges stay valid.
func checkPreparedSpeedups(snap *EngineSnapshot) error {
	measured, fast := 0, 0
	var speeds []string
	names := make([]string, 0, len(snap.Methods))
	for name := range snap.Methods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mb := snap.Methods[name]
		if mb.PreparedSpeedup == 0 {
			continue
		}
		measured++
		if mb.PreparedSpeedup >= preparedSpeedupFloor {
			fast++
		}
		speeds = append(speeds, fmt.Sprintf("%s %.2fx", name, mb.PreparedSpeedup))
	}
	if measured == 0 {
		return nil
	}
	if fast < preparedSpeedupMinMethods {
		return fmt.Errorf("prepared re-execution >= %.1fx on %d/%d methods, need %d: %s",
			preparedSpeedupFloor, fast, measured, preparedSpeedupMinMethods, strings.Join(speeds, ", "))
	}
	return nil
}
