package bench

import (
	"fmt"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/query"
)

// Experiment is one reproducible figure or table.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (*Table, error)
}

// Experiments lists every figure and table of the paper's evaluation in the
// order they appear in Section VIII.
func Experiments() []Experiment {
	return []Experiment{
		{"Fig9a", "Overlap (o-ratio) of possible mappings vs. number of mappings", (*Runner).Figure9a},
		{"Fig10a", "basic: breakdown into evaluation and aggregation time, Q1-Q10", (*Runner).Figure10a},
		{"Fig10b", "Simple solutions vs. database size (Q4)", (*Runner).Figure10b},
		{"Fig10c", "Simple solutions vs. number of mappings (Q4)", (*Runner).Figure10c},
		{"Fig11a", "e-basic vs. q-sharing vs. o-sharing, Q1-Q10", (*Runner).Figure11a},
		{"Fig11b", "e-basic vs. q-sharing vs. o-sharing vs. database size (Q4)", (*Runner).Figure11b},
		{"Fig11c", "e-basic vs. q-sharing vs. o-sharing vs. number of mappings (Q4)", (*Runner).Figure11c},
		{"Fig11d", "Query time vs. number of selection operators", (*Runner).Figure11d},
		{"Fig11e", "Query time vs. number of Cartesian product operators", (*Runner).Figure11e},
		{"Fig11f", "Operator selection strategies (Random/SNF/SEF), Q1-Q5", (*Runner).Figure11f},
		{"TableIV", "Operator selection strategies: time and executed source operators (Q4)", (*Runner).TableIV},
		{"Fig12a", "Top-k vs. o-sharing, Q4 (Excel)", (*Runner).Figure12a},
		{"Fig12b", "Top-k vs. o-sharing, Q7 (Noris)", (*Runner).Figure12b},
		{"Fig12c", "Top-k vs. o-sharing, Q10 (Paragon)", (*Runner).Figure12c},
	}
}

// ExperimentByID returns the experiment with the given ID.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("unknown experiment %q", id)
}

// RunAll executes every experiment and returns the resulting tables.
func (r *Runner) RunAll() ([]*Table, error) {
	var out []*Table
	for _, e := range Experiments() {
		t, err := e.Run(r)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// evaluate runs one query with one method and returns its result.
func (r *Runner) evaluate(queryID int, method core.Method, h int, sizeMB float64) (*core.Result, error) {
	target, err := datagen.QueryTarget(queryID)
	if err != nil {
		return nil, err
	}
	ds, maps, err := r.dataset(target, sizeMB, h)
	if err != nil {
		return nil, err
	}
	q, err := datagen.WorkloadQuery(queryID)
	if err != nil {
		return nil, err
	}
	return core.NewEvaluator(ds.DB, maps).Evaluate(q, r.options(method))
}

// evaluateTime returns the mean total evaluation time of a query/method pair.
func (r *Runner) evaluateTime(queryID int, method core.Method, h int, sizeMB float64) (time.Duration, error) {
	return r.timed(func() (time.Duration, error) {
		res, err := r.evaluate(queryID, method, h, sizeMB)
		if err != nil {
			return 0, err
		}
		return res.TotalTime, nil
	})
}

// Figure9a reproduces Figure 9(a): the average pairwise o-ratio of the
// possible mappings between TPC-H and Excel as the number of mappings grows.
// The paper reports 73%-79%.
func (r *Runner) Figure9a() (*Table, error) {
	t := &Table{ID: "Fig9a", Title: "o-ratio vs. number of mappings (TPC-H / Excel)",
		Columns: []string{"#mappings", "o-ratio"}}
	ds, _, err := r.dataset(datagen.TargetExcel, r.cfg.SizeMB, r.cfg.Mappings)
	if err != nil {
		return nil, err
	}
	for _, h := range r.cfg.MappingSweep {
		maps := ds.MappingsPrefix(h)
		t.AddRow(fmt.Sprintf("%d", len(maps)), fmt.Sprintf("%.3f", maps.ORatio()))
	}
	// The per-schema o-ratios quoted in the text (79%, 68%, 72%).
	for _, tgt := range datagen.AllTargets() {
		dsT, _, err := r.dataset(tgt, r.cfg.SizeMB, r.cfg.Mappings)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(tgt)+" (h="+fmt.Sprintf("%d", r.cfg.Mappings)+")",
			fmt.Sprintf("%.3f", dsT.MappingsPrefix(r.cfg.Mappings).ORatio()))
	}
	return t, nil
}

// Figure10a reproduces Figure 10(a): for every workload query, the time basic
// spends in query evaluation (rewrite + execution) versus answer aggregation.
func (r *Runner) Figure10a() (*Table, error) {
	t := &Table{ID: "Fig10a", Title: "basic: evaluation vs. aggregation time (s)",
		Columns: []string{"query", "evaluation(s)", "aggregation(s)", "evaluation-share"}}
	for id := 1; id <= datagen.NumWorkloadQueries; id++ {
		res, err := r.evaluate(id, core.MethodBasic, r.cfg.Mappings, r.cfg.SizeMB)
		if err != nil {
			return nil, err
		}
		eval := res.RewriteTime + res.ExecTime
		total := eval + res.AggregateTime
		share := 0.0
		if total > 0 {
			share = eval.Seconds() / total.Seconds()
		}
		t.AddRow(fmt.Sprintf("Q%d", id), seconds(eval), seconds(res.AggregateTime), fmt.Sprintf("%.2f", share))
	}
	return t, nil
}

// Figure10b reproduces Figure 10(b): basic, e-basic and e-MQO on Q4 as the
// database size grows.
func (r *Runner) Figure10b() (*Table, error) {
	t := &Table{ID: "Fig10b", Title: "simple solutions vs. database size, Q4 (s)",
		Columns: []string{"sizeMB", "basic", "e-basic", "e-MQO"}}
	for _, size := range r.cfg.SizeSweep {
		row := []string{fmt.Sprintf("%.0f", size)}
		for _, m := range []core.Method{core.MethodBasic, core.MethodEBasic, core.MethodEMQO} {
			d, err := r.evaluateTime(4, m, r.cfg.Mappings, size)
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure10c reproduces Figure 10(c): basic, e-basic and e-MQO on Q4 as the
// number of mappings grows.
func (r *Runner) Figure10c() (*Table, error) {
	t := &Table{ID: "Fig10c", Title: "simple solutions vs. number of mappings, Q4 (s)",
		Columns: []string{"#mappings", "basic", "e-basic", "e-MQO"}}
	for _, h := range r.cfg.MappingSweep {
		row := []string{fmt.Sprintf("%d", h)}
		for _, m := range []core.Method{core.MethodBasic, core.MethodEBasic, core.MethodEMQO} {
			d, err := r.evaluateTime(4, m, h, r.cfg.SizeMB)
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// sharingMethods are the methods compared throughout Figure 11.
var sharingMethods = []core.Method{core.MethodEBasic, core.MethodQSharing, core.MethodOSharing}

// Figure11a reproduces Figure 11(a): e-basic, q-sharing and o-sharing on every
// workload query.
func (r *Runner) Figure11a() (*Table, error) {
	t := &Table{ID: "Fig11a", Title: "e-basic vs. q-sharing vs. o-sharing, Q1-Q10 (s)",
		Columns: []string{"query", "e-basic", "q-sharing", "o-sharing"}}
	for id := 1; id <= datagen.NumWorkloadQueries; id++ {
		row := []string{fmt.Sprintf("Q%d", id)}
		for _, m := range sharingMethods {
			d, err := r.evaluateTime(id, m, r.cfg.Mappings, r.cfg.SizeMB)
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure11b reproduces Figure 11(b): the three sharing methods on Q4 as the
// database size grows.
func (r *Runner) Figure11b() (*Table, error) {
	t := &Table{ID: "Fig11b", Title: "sharing methods vs. database size, Q4 (s)",
		Columns: []string{"sizeMB", "e-basic", "q-sharing", "o-sharing"}}
	for _, size := range r.cfg.SizeSweep {
		row := []string{fmt.Sprintf("%.0f", size)}
		for _, m := range sharingMethods {
			d, err := r.evaluateTime(4, m, r.cfg.Mappings, size)
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure11c reproduces Figure 11(c): the three sharing methods on Q4 as the
// number of mappings grows.
func (r *Runner) Figure11c() (*Table, error) {
	t := &Table{ID: "Fig11c", Title: "sharing methods vs. number of mappings, Q4 (s)",
		Columns: []string{"#mappings", "e-basic", "q-sharing", "o-sharing"}}
	for _, h := range r.cfg.MappingSweep {
		row := []string{fmt.Sprintf("%d", h)}
		for _, m := range sharingMethods {
			d, err := r.evaluateTime(4, m, h, r.cfg.SizeMB)
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runCustomQuery measures a non-Table-III query (the parametric families of
// Figures 11(d) and 11(e)) with the given method on the Excel dataset.
func (r *Runner) runCustomQuery(build func() (*query.Query, error), method core.Method) (time.Duration, error) {
	ds, maps, err := r.dataset(datagen.TargetExcel, r.cfg.SizeMB, r.cfg.Mappings)
	if err != nil {
		return 0, err
	}
	return r.timed(func() (time.Duration, error) {
		q, err := build()
		if err != nil {
			return 0, err
		}
		res, err := core.NewEvaluator(ds.DB, maps).Evaluate(q, r.options(method))
		if err != nil {
			return 0, err
		}
		return res.TotalTime, nil
	})
}

// Figure11d reproduces Figure 11(d): 1-5 selection operators on the Excel PO
// relation for the three sharing methods.
func (r *Runner) Figure11d() (*Table, error) {
	t := &Table{ID: "Fig11d", Title: "query time vs. number of selection operators (s)",
		Columns: []string{"#selections", "e-basic", "q-sharing", "o-sharing"}}
	for n := 1; n <= 5; n++ {
		n := n
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range sharingMethods {
			d, err := r.runCustomQuery(func() (*query.Query, error) {
				return datagen.SelectionChainQuery(n)
			}, m)
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure11e reproduces Figure 11(e): 1-3 Cartesian product operators (PO
// self-joins) for the three sharing methods.
func (r *Runner) Figure11e() (*Table, error) {
	t := &Table{ID: "Fig11e", Title: "query time vs. number of Cartesian products (s)",
		Columns: []string{"#products", "e-basic", "q-sharing", "o-sharing"}}
	for p := 1; p <= 3; p++ {
		p := p
		row := []string{fmt.Sprintf("%d", p)}
		for _, m := range sharingMethods {
			d, err := r.runCustomQuery(func() (*query.Query, error) {
				return datagen.SelfJoinQuery(p)
			}, m)
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// strategies compared by Figure 11(f) and Table IV.
var strategies = []core.Strategy{core.StrategyRandom, core.StrategySNF, core.StrategySEF}

// Figure11f reproduces Figure 11(f): o-sharing under Random, SNF and SEF on
// the Excel queries Q1-Q5.
func (r *Runner) Figure11f() (*Table, error) {
	t := &Table{ID: "Fig11f", Title: "o-sharing operator selection strategies, Q1-Q5 (s)",
		Columns: []string{"query", "Random", "SNF", "SEF"}}
	for id := 1; id <= 5; id++ {
		row := []string{fmt.Sprintf("Q%d", id)}
		for _, s := range strategies {
			target, _ := datagen.QueryTarget(id)
			ds, maps, err := r.dataset(target, r.cfg.SizeMB, r.cfg.Mappings)
			if err != nil {
				return nil, err
			}
			q, err := datagen.WorkloadQuery(id)
			if err != nil {
				return nil, err
			}
			d, err := r.timed(func() (time.Duration, error) {
				res, err := core.OSharing(r.execContext(), q, maps, ds.DB, core.OSharingOptions{Strategy: s, RandomSeed: int64(r.cfg.Seed)})
				if err != nil {
					return 0, err
				}
				return res.TotalTime, nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, seconds(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// TableIV reproduces Table IV: evaluation time and the number of executed
// source operators for o-sharing under each strategy, with e-MQO's optimal
// operator count for reference.
func (r *Runner) TableIV() (*Table, error) {
	t := &Table{ID: "TableIV", Title: "operator selection strategies on Q4",
		Columns: []string{"strategy", "time(s)", "#source operators"}}
	ds, maps, err := r.dataset(datagen.TargetExcel, r.cfg.SizeMB, r.cfg.Mappings)
	if err != nil {
		return nil, err
	}
	q, err := datagen.WorkloadQuery(4)
	if err != nil {
		return nil, err
	}
	operatorCount := func(res *core.Result) int {
		total := res.Stats.TotalOperators()
		return total - res.Stats.Count(engine.OpKindScan)
	}
	for _, s := range strategies {
		res, err := core.OSharing(r.execContext(), q, maps, ds.DB, core.OSharingOptions{Strategy: s, RandomSeed: int64(r.cfg.Seed)})
		if err != nil {
			return nil, err
		}
		t.AddRow(s.String(), seconds(res.TotalTime), fmt.Sprintf("%d", operatorCount(res)))
	}
	emqo, err := core.EMQO(r.execContext(), q, maps, ds.DB)
	if err != nil {
		return nil, err
	}
	t.AddRow("e-MQO", seconds(emqo.TotalTime), fmt.Sprintf("%d", operatorCount(emqo)))
	return t, nil
}

// figure12 reproduces one Figure 12 panel: top-k versus full o-sharing for a
// given query as k grows.
func (r *Runner) figure12(id string, queryID int) (*Table, error) {
	t := &Table{ID: id, Title: fmt.Sprintf("top-k vs. o-sharing, Q%d (s)", queryID),
		Columns: []string{"k", "top-k", "o-sharing"}}
	target, err := datagen.QueryTarget(queryID)
	if err != nil {
		return nil, err
	}
	ds, maps, err := r.dataset(target, r.cfg.SizeMB, r.cfg.Mappings)
	if err != nil {
		return nil, err
	}
	q, err := datagen.WorkloadQuery(queryID)
	if err != nil {
		return nil, err
	}
	full, err := r.timed(func() (time.Duration, error) {
		res, err := core.OSharing(r.execContext(), q, maps, ds.DB, core.OSharingOptions{})
		if err != nil {
			return 0, err
		}
		return res.TotalTime, nil
	})
	if err != nil {
		return nil, err
	}
	for _, k := range r.cfg.KSweep {
		k := k
		d, err := r.timed(func() (time.Duration, error) {
			res, err := core.TopK(r.execContext(), q, maps, ds.DB, k, core.OSharingOptions{})
			if err != nil {
				return 0, err
			}
			return res.TotalTime, nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), seconds(d), seconds(full))
	}
	return t, nil
}

// Figure12a reproduces Figure 12(a): Q4 on Excel.
func (r *Runner) Figure12a() (*Table, error) { return r.figure12("Fig12a", 4) }

// Figure12b reproduces Figure 12(b): Q7 on Noris.
func (r *Runner) Figure12b() (*Table, error) { return r.figure12("Fig12b", 7) }

// Figure12c reproduces Figure 12(c): Q10 on Paragon.
func (r *Runner) Figure12c() (*Table, error) { return r.figure12("Fig12c", 10) }
