package bench

import (
	"strconv"
	"strings"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
)

// quickConfig keeps unit tests fast: a small instance and few mappings.
func quickConfig() Config {
	return Config{
		Mappings:     12,
		SizeMB:       5,
		Seed:         42,
		MappingSweep: []int{6, 12},
		SizeSweep:    []float64{3, 5},
		KSweep:       []int{1, 3},
		Runs:         1,
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2.5")
	tab.AddRow("long-label", "3")
	s := tab.String()
	if !strings.Contains(s, "X — demo") || !strings.Contains(s, "long-label") {
		t.Errorf("table rendering missing content:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") || !strings.Contains(csv, "1,2.5") {
		t.Errorf("csv rendering wrong:\n%s", csv)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Mappings != 100 || cfg.SizeMB != 40 || len(cfg.MappingSweep) == 0 || cfg.Runs != 1 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	r := NewRunner(Config{})
	if r.Config().Mappings != 100 {
		t.Error("runner should expose effective config")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("experiments = %d, want 14 (every figure and table)", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Errorf("experiment %+v incomplete", e)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"Fig9a", "Fig10a", "Fig10b", "Fig10c", "Fig11a", "Fig11b", "Fig11c", "Fig11d", "Fig11e", "Fig11f", "TableIV", "Fig12a", "Fig12b", "Fig12c"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	if _, err := ExperimentByID("Fig9a"); err != nil {
		t.Errorf("ExperimentByID(Fig9a): %v", err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFigure9a(t *testing.T) {
	r := NewRunner(quickConfig())
	tab, err := r.Figure9a()
	if err != nil {
		t.Fatal(err)
	}
	// Two sweep rows plus three per-schema rows.
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var v float64
		if _, err := sscan(row[1], &v); err != nil {
			t.Fatalf("o-ratio %q not numeric: %v", row[1], err)
		}
		if v < 0.4 || v > 1 {
			t.Errorf("o-ratio %v outside the high-overlap range the paper reports", v)
		}
	}
}

func TestFigure10aEvaluationDominates(t *testing.T) {
	r := NewRunner(quickConfig())
	tab, err := r.Figure10a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != datagen.NumWorkloadQueries {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), datagen.NumWorkloadQueries)
	}
	// The paper reports evaluation taking >80% of basic's time; on the scaled
	// instance we only require that evaluation dominates aggregation overall.
	dominated := 0
	for _, row := range tab.Rows {
		var share float64
		if _, err := sscan(row[3], &share); err != nil {
			t.Fatal(err)
		}
		if share >= 0.5 {
			dominated++
		}
	}
	if dominated < datagen.NumWorkloadQueries/2 {
		t.Errorf("evaluation dominates in only %d/%d queries", dominated, datagen.NumWorkloadQueries)
	}
}

func TestSweepExperiments(t *testing.T) {
	r := NewRunner(quickConfig())
	cases := []struct {
		name string
		run  func() (*Table, error)
		rows int
		cols int
	}{
		{"Fig10b", r.Figure10b, 2, 4},
		{"Fig10c", r.Figure10c, 2, 4},
		{"Fig11b", r.Figure11b, 2, 4},
		{"Fig11c", r.Figure11c, 2, 4},
		{"Fig11d", r.Figure11d, 5, 4},
		{"Fig11e", r.Figure11e, 3, 4},
		{"Fig11f", r.Figure11f, 5, 4},
		{"Fig12a", r.Figure12a, 2, 3},
	}
	for _, c := range cases {
		tab, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(tab.Rows) != c.rows {
			t.Errorf("%s: rows = %d, want %d", c.name, len(tab.Rows), c.rows)
		}
		if len(tab.Columns) != c.cols {
			t.Errorf("%s: columns = %d, want %d", c.name, len(tab.Columns), c.cols)
		}
		for _, row := range tab.Rows {
			if len(row) != c.cols {
				t.Errorf("%s: row %v has %d cells, want %d", c.name, row, len(row), c.cols)
			}
		}
	}
}

func TestFigure11aAllQueries(t *testing.T) {
	r := NewRunner(quickConfig())
	tab, err := r.Figure11a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != datagen.NumWorkloadQueries {
		t.Errorf("rows = %d, want %d", len(tab.Rows), datagen.NumWorkloadQueries)
	}
}

func TestTableIVOperatorCounts(t *testing.T) {
	r := NewRunner(quickConfig())
	tab, err := r.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (Random, SNF, SEF, e-MQO)", len(tab.Rows))
	}
	ops := map[string]float64{}
	for _, row := range tab.Rows {
		var v float64
		if _, err := sscan(row[2], &v); err != nil {
			t.Fatal(err)
		}
		ops[row[0]] = v
	}
	// The paper's Table IV shape: SEF <= SNF <= Random in executed operators.
	if !(ops["SEF"] <= ops["SNF"]+1e-9) {
		t.Errorf("SEF executed %v operators, SNF %v; expected SEF <= SNF", ops["SEF"], ops["SNF"])
	}
	if !(ops["SNF"] <= ops["Random"]+1e-9) {
		t.Errorf("SNF executed %v operators, Random %v; expected SNF <= Random", ops["SNF"], ops["Random"])
	}
	if ops["e-MQO"] <= 0 {
		t.Errorf("e-MQO operator count should be positive, got %v", ops["e-MQO"])
	}
}

// TestSharingShapeOnOperatorCounts verifies the Figure 11 shape on a metric
// that is stable in unit tests (executed operators rather than wall time):
// o-sharing executes no more source operators than e-basic for the default
// query.
func TestSharingShapeOnOperatorCounts(t *testing.T) {
	r := NewRunner(quickConfig())
	ebasic, err := r.evaluate(4, core.MethodEBasic, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	osharing, err := r.evaluate(4, core.MethodOSharing, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	opCount := func(res *core.Result) int {
		return res.Stats.TotalOperators() - res.Stats.Count(engine.OpKindScan)
	}
	if opCount(osharing) > opCount(ebasic) {
		t.Errorf("o-sharing executed %d operators, e-basic %d", opCount(osharing), opCount(ebasic))
	}
	if len(osharing.Answers) != len(ebasic.Answers) {
		t.Errorf("answer sets differ: %d vs %d", len(osharing.Answers), len(ebasic.Answers))
	}
}

func TestDatasetCaching(t *testing.T) {
	r := NewRunner(quickConfig())
	a, _, err := r.dataset(datagen.TargetExcel, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, maps, err := r.dataset(datagen.TargetExcel, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset should be cached per (target, size)")
	}
	if len(maps) > 12 {
		t.Errorf("prefix of 12 returned %d mappings", len(maps))
	}
}

// sscan parses a single float out of a formatted table cell.
func sscan(s string, v *float64) (int, error) {
	parsed, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	*v = parsed
	return 1, nil
}
