package server

import (
	"context"
	"errors"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/query"
)

// TestPreparedCacheReuse pins the prepared-query satellite: repeated requests
// for the same text — including answer-cache misses under different methods —
// reuse one compiled entry, and a differently spelled but canonically equal
// text reuses it too (paying only the parse).
func TestPreparedCacheReuse(t *testing.T) {
	srv, _ := newTestServer(t, 300, Config{MaxConcurrent: 2})
	ctx := context.Background()

	if _, err := srv.Do(ctx, Request{Scenario: "test", Query: fastQueryText}); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if m.PreparedBuilds != 1 || m.PreparedReuses != 0 {
		t.Fatalf("after first request: builds=%d reuses=%d, want 1/0", m.PreparedBuilds, m.PreparedReuses)
	}

	// Same text, different method: answer cache misses, prepared cache hits.
	if _, err := srv.Do(ctx, Request{Scenario: "test", Query: fastQueryText, Method: "basic"}); err != nil {
		t.Fatal(err)
	}
	// Same text again: answer cache hit, still a prepared reuse.
	if _, err := srv.Do(ctx, Request{Scenario: "test", Query: fastQueryText}); err != nil {
		t.Fatal(err)
	}
	// Different spelling, same canonical SQL.
	if _, err := srv.Do(ctx, Request{Scenario: "test", Query: "SELECT  a  FROM T WHERE b=7"}); err != nil {
		t.Fatal(err)
	}
	m = srv.Metrics()
	if m.PreparedBuilds != 1 {
		t.Errorf("prepared builds = %d, want 1 (everything after the first request must reuse)", m.PreparedBuilds)
	}
	if m.PreparedReuses != 3 {
		t.Errorf("prepared reuses = %d, want 3", m.PreparedReuses)
	}
}

// TestPreparedCacheEpochInvalidation: an AppendRow bumps the epoch, so the
// next request re-prepares (the compiled entry of the old epoch is dead) and
// answers reflect the new data.
func TestPreparedCacheEpochInvalidation(t *testing.T) {
	srv, sc := newTestServer(t, 100, Config{MaxConcurrent: 2})
	ctx := context.Background()

	first, err := srv.Do(ctx, Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.AppendRow("S", tuple("fresh", 7, 7)); err != nil {
		t.Fatal(err)
	}
	second, err := srv.Do(ctx, Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Error("request after epoch bump served from answer cache")
	}
	m := srv.Metrics()
	if m.PreparedBuilds != 2 {
		t.Errorf("prepared builds = %d, want 2 (epoch bump must rebuild)", m.PreparedBuilds)
	}
	find := func(r *Response, label string) bool {
		for _, a := range r.Answers {
			if len(a.Values) == 1 && a.Values[0] == label {
				return true
			}
		}
		return false
	}
	if find(first, "fresh") {
		t.Error("first response already contains the appended row")
	}
	if !find(second, "fresh") {
		t.Error("response after AppendRow does not see the new row")
	}

	// The prepared result must equal a from-scratch evaluation on the new data.
	q, err := sc.Parse("verify", fastQueryText)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Evaluate(ctx, q, 0, core.Options{Method: core.MethodOSharing})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "prepared-after-append", want, second.Result)
}

// TestTypedSentinelErrors pins the error-classification satellite: the Do
// path's failures are distinguishable with errors.Is.
func TestTypedSentinelErrors(t *testing.T) {
	srv, _ := newTestServer(t, 50, Config{MaxConcurrent: 1})
	ctx := context.Background()

	if _, err := srv.Do(ctx, Request{Scenario: "nope", Query: fastQueryText}); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("unknown scenario: err = %v, want ErrUnknownScenario", err)
	}
	if _, err := srv.Do(ctx, Request{Scenario: "test", Query: "SELECT FROM WHERE"}); !errors.Is(err, query.ErrBadQuery) {
		t.Errorf("unparsable query: err = %v, want ErrBadQuery", err)
	}
	if _, err := srv.Do(ctx, Request{Scenario: "test", Query: ""}); !errors.Is(err, query.ErrBadQuery) {
		t.Errorf("missing query: err = %v, want ErrBadQuery", err)
	}
	if _, err := srv.Do(ctx, Request{Scenario: "test", Query: fastQueryText, Method: "bogus"}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("bogus method: err = %v, want ErrBadOptions", err)
	}
	if _, err := srv.Do(ctx, Request{Scenario: "test", Query: fastQueryText, TopK: -1}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("negative topk: err = %v, want ErrBadOptions", err)
	}
}
