package server

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/probdb/urm/internal/qos"
)

// Priority classes.  Interactive requests carry a 4× weight in the admission
// queue: under backlog they receive four grants for every batch grant, which
// keeps interactive latency flat without ever starving batch (the fair queue
// guarantees progress at any positive weight).
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"

	interactiveClassWeight = 4
	batchClassWeight       = 1
)

// TenantQoS is the per-tenant QoS configuration in Config.Tenants.
type TenantQoS struct {
	// Weight scales the tenant's share of the global admission rate and of the
	// fair queue (0 = 1).  A weight-2 tenant earns twice a weight-1 tenant's
	// rate while both are active.
	Weight float64
	// Priority is the tenant's default class, "interactive" or "batch"
	// ("" = interactive).  Requests may override it per call.
	Priority string
}

// admission is the resolved QoS identity of one request: who is asking and
// with what effective weight in the fair queue.
type admission struct {
	tenant string
	weight float64 // tenant weight × priority class weight
}

// defaultTenant is the bucket anonymous requests share.  Folding them into
// one identity is itself a QoS decision: unidentified traffic competes as a
// single tenant instead of minting a fresh full-rate bucket per request.
const defaultTenant = "default"

// maxTenantNameLen bounds tenant identifiers; they come straight from an
// attacker-controllable header.
const maxTenantNameLen = 64

// admissionFor resolves the request's tenant and effective queue weight.
func (s *Server) admissionFor(req Request) (admission, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = defaultTenant
	}
	if len(tenant) > maxTenantNameLen {
		return admission{}, errBadRequest("tenant name longer than %d bytes", maxTenantNameLen)
	}
	cfg := s.cfg.Tenants[tenant]
	priority := req.Priority
	if priority == "" {
		priority = cfg.Priority
	}
	var class float64
	switch priority {
	case PriorityInteractive, "":
		class = interactiveClassWeight
	case PriorityBatch:
		class = batchClassWeight
	default:
		return admission{}, errBadRequest("unknown priority %q (want %q or %q)", priority, PriorityInteractive, PriorityBatch)
	}
	weight := cfg.Weight
	if weight <= 0 {
		weight = 1
	}
	return admission{tenant: tenant, weight: weight * class}, nil
}

// maxTrackedTenants bounds the per-tenant metrics table.  Past the cap, new
// names fold into a single "other" row — the table must not be a memory
// amplifier for whoever invents the most tenant names.
const maxTrackedTenants = 256

// tenantTable holds per-tenant counters.  The map is guarded; the counters
// inside are atomics, so the hot path locks only to find its row.
type tenantTable struct {
	mu sync.Mutex
	m  map[string]*tenantCounters
}

type tenantCounters struct {
	requests           atomic.Int64
	cacheHits          atomic.Int64
	evaluations        atomic.Int64
	shedRateLimited    atomic.Int64
	shedQueueTimeout   atomic.Int64
	shedDoomedDeadline atomic.Int64
	staleServed        atomic.Int64
	queueWait          qos.Histogram
}

func newTenantTable() *tenantTable {
	return &tenantTable{m: make(map[string]*tenantCounters)}
}

// get returns the tenant's counter row, folding overflow names into "other".
func (t *tenantTable) get(tenant string) *tenantCounters {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.m[tenant]; ok {
		return c
	}
	if len(t.m) >= maxTrackedTenants {
		tenant = "other"
		if c, ok := t.m[tenant]; ok {
			return c
		}
	}
	c := &tenantCounters{}
	t.m[tenant] = c
	return c
}

// TenantMetrics is the JSON form of one tenant's counters in /metrics.
type TenantMetrics struct {
	Requests    int64 `json:"requests"`
	CacheHits   int64 `json:"cache_hits"`
	Evaluations int64 `json:"evaluations"`
	// The shed counters split the tenant's rejections by ladder rung: over
	// its token-bucket rate, queue wait exhausted, or deadline shorter than
	// the scenario's median cold latency.
	ShedRateLimited    int64 `json:"shed_rate_limited"`
	ShedQueueTimeout   int64 `json:"shed_queue_timeout"`
	ShedDoomedDeadline int64 `json:"shed_doomed_deadline"`
	// StaleServed counts requests answered from a previous epoch's cache
	// entry instead of being rejected.
	StaleServed int64 `json:"stale_served"`
	// QueueWait is the distribution of measured evaluation-slot waits.
	QueueWait qos.HistogramSnapshot `json:"queue_wait"`
}

func (t *tenantTable) snapshot() map[string]TenantMetrics {
	t.mu.Lock()
	rows := make(map[string]*tenantCounters, len(t.m))
	for name, c := range t.m {
		rows[name] = c
	}
	t.mu.Unlock()
	out := make(map[string]TenantMetrics, len(rows))
	for name, c := range rows {
		out[name] = TenantMetrics{
			Requests:           c.requests.Load(),
			CacheHits:          c.cacheHits.Load(),
			Evaluations:        c.evaluations.Load(),
			ShedRateLimited:    c.shedRateLimited.Load(),
			ShedQueueTimeout:   c.shedQueueTimeout.Load(),
			ShedDoomedDeadline: c.shedDoomedDeadline.Load(),
			StaleServed:        c.staleServed.Load(),
			QueueWait:          c.queueWait.Snapshot(),
		}
	}
	return out
}

// limiterWeights extracts the per-tenant rate weights from the tenant config.
func limiterWeights(tenants map[string]TenantQoS) map[string]float64 {
	if len(tenants) == 0 {
		return nil
	}
	out := make(map[string]float64, len(tenants))
	for name, t := range tenants {
		if t.Weight > 0 {
			out[name] = t.Weight
		}
	}
	return out
}

// ParseTenantSpec parses the urm-serve -tenants flag syntax:
// "name=weight[/priority]" — e.g. "gold=4/interactive".  Exported so the CLI
// and tests share one parser.
func ParseTenantSpec(name, spec string) (TenantQoS, error) {
	var t TenantQoS
	weightStr := spec
	if i := strings.IndexByte(spec, '/'); i >= 0 {
		weightStr, t.Priority = spec[:i], spec[i+1:]
		switch t.Priority {
		case PriorityInteractive, PriorityBatch:
		default:
			return t, fmt.Errorf("tenant %s: unknown priority %q", name, t.Priority)
		}
	}
	if _, err := fmt.Sscanf(weightStr, "%g", &t.Weight); err != nil || t.Weight <= 0 {
		return t, fmt.Errorf("tenant %s: bad weight %q", name, weightStr)
	}
	return t, nil
}
