package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/qos"
	"github.com/probdb/urm/internal/shard"
	"github.com/probdb/urm/internal/store"
)

// testShardSpec partitions the fixture's S relation on its string key.
func testShardSpec(count int) shard.Spec {
	return shard.Spec{Relation: "S", Column: "x", Shards: count, Kind: shard.KindHash}
}

// newShardNode builds one shard node: a server whose "test" scenario holds
// only slice `index` of the fixture instance, declared via Config.Shard.
func newShardNode(t *testing.T, rows, index, count int) *Server {
	t.Helper()
	full := serveInstance(rows)
	p, err := shard.NewPartitioner(full, testShardSpec(count))
	if err != nil {
		t.Fatal(err)
	}
	slice, err := p.Slice(full, index)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Register(context.Background(), "test", serveTargetSchema(), slice, serveMappings(),
		RegisterOptions{TargetLabel: "Test"}); err != nil {
		t.Fatal(err)
	}
	return New(reg, Config{Shard: &ShardIdentity{
		Node:     nodeNameFor(index),
		Index:    index,
		Count:    count,
		Relation: "S",
		Column:   "x",
		Kind:     "hash",
	}})
}

func nodeNameFor(index int) string { return "node-" + string(rune('a'+index)) }

// cluster is a coordinator plus its shard nodes, all over httptest.
type cluster struct {
	coord *Coordinator
	http  *httptest.Server
	nodes []*httptest.Server
}

func newCluster(t *testing.T, rows, count int, cfg CoordinatorConfig) *cluster {
	t.Helper()
	cfg.Shards = count
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{coord: coord, http: httptest.NewServer(coord)}
	t.Cleanup(cl.http.Close)
	for i := 0; i < count; i++ {
		node := httptest.NewServer(newShardNode(t, rows, i, count))
		t.Cleanup(node.Close)
		cl.nodes = append(cl.nodes, node)
		if err := coord.Leases().Heartbeat(nodeNameFor(i), node.URL, []int{i}); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}

// postQuery sends one query through the coordinator's HTTP surface and
// returns the status code and decoded body.
func (cl *cluster) postQuery(t *testing.T, req Request) (int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(cl.http.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

// TestCoordinatorBitIdentical: queries answered through the coordinator's
// scatter fan-out over 2 shard nodes match unsharded evaluation bit-exactly —
// same tuples, same order, exactly equal probabilities — for every
// distributable method.
func TestCoordinatorBitIdentical(t *testing.T) {
	const rows = 300
	ref, _ := newTestServer(t, rows, Config{})
	cl := newCluster(t, rows, 2, CoordinatorConfig{})

	for _, method := range []string{"basic", "e-basic", "e-mqo", "q-sharing"} {
		for _, q := range []string{fastQueryText, "SELECT a, b FROM T", "SELECT a FROM T WHERE b = 3"} {
			req := Request{Scenario: "test", Query: q, Method: method}
			want, err := ref.Do(context.Background(), req)
			if err != nil {
				t.Fatalf("%s %q unsharded: %v", method, q, err)
			}
			got, err := cl.coord.Query(context.Background(), req)
			if err != nil {
				t.Fatalf("%s %q coordinated: %v", method, q, err)
			}
			sameResult(t, method+" "+q, want.Result, got.Result)
			if got.Query != want.Query {
				t.Fatalf("canonical query %q, want %q", got.Query, want.Query)
			}
		}
	}
	// A self-join of the target scans the partitioned relation twice per
	// mapping; per-shard evaluation would drop cross-shard pairs, so the
	// shards refuse and the coordinator answers an honest 422.
	_, err := cl.coord.Query(context.Background(), Request{Scenario: "test", Query: slowQueryText, Method: "e-basic"})
	if !errors.Is(err, ErrNotDistributable) {
		t.Fatalf("self-join through coordinator: %v, want ErrNotDistributable", err)
	}
}

// TestCoordinatorRefusesNonDistributable: o-sharing and top-k cannot fan out
// — the coordinator holds no data to fall back to — so they are refused with
// 422 up front, before any shard round-trip.
func TestCoordinatorRefusesNonDistributable(t *testing.T) {
	cl := newCluster(t, 60, 2, CoordinatorConfig{})
	for _, req := range []Request{
		{Scenario: "test", Query: fastQueryText}, // default method is o-sharing
		{Scenario: "test", Query: fastQueryText, Method: "o-sharing"},
		{Scenario: "test", Query: fastQueryText, Method: "e-basic", TopK: 3},
	} {
		status, body := cl.postQuery(t, req)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("%+v: status %d (%v), want 422", req, status, body["error"])
		}
	}
	if got := cl.coord.Metrics().NotShardable; got < 3 {
		t.Fatalf("not_shardable = %d, want >= 3", got)
	}
}

// TestCoordinatorUnownedShard: with one shard never heartbeated the query
// fails 503 with a Retry-After hint — never a partial answer from the shards
// that are up.
func TestCoordinatorUnownedShard(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Shards: 2, Retry: qos.Backoff{Attempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	node := httptest.NewServer(newShardNode(t, 60, 0, 2))
	defer node.Close()
	if err := coord.Leases().Heartbeat(nodeNameFor(0), node.URL, []int{0}); err != nil {
		t.Fatal(err)
	}
	_, qerr := coord.Query(context.Background(), Request{Scenario: "test", Query: fastQueryText, Method: "e-basic"})
	if !errors.Is(qerr, ErrShardUnowned) {
		t.Fatalf("query error = %v, want ErrShardUnowned", qerr)
	}
	var ae *apiError
	if !errors.As(qerr, &ae) || ae.status != http.StatusServiceUnavailable {
		t.Fatalf("query error = %v, want status 503", qerr)
	}
	if RetryAfter(qerr) <= 0 {
		t.Fatalf("unowned-shard error carries no Retry-After hint: %v", qerr)
	}
	if coord.Metrics().Unowned == 0 {
		t.Fatal("unowned counter not incremented")
	}
}

// TestCoordinatorDeadShardFailsCleanly: kill one shard node (its lease still
// live) — the fan-out must fail the whole query rather than answer from the
// surviving shard.
func TestCoordinatorDeadShardFailsCleanly(t *testing.T) {
	cl := newCluster(t, 60, 2, CoordinatorConfig{Retry: qos.Backoff{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond}})
	cl.nodes[1].Close()
	resp, err := cl.coord.Query(context.Background(), Request{Scenario: "test", Query: fastQueryText, Method: "e-basic"})
	if err == nil {
		t.Fatalf("query over a dead shard succeeded: %+v", resp)
	}
	if resp != nil {
		t.Fatal("dead-shard query returned a partial response alongside the error")
	}
	if cl.coord.Metrics().UpstreamErrors == 0 {
		t.Fatal("upstream_errors not incremented")
	}
}

// TestCoordinatorShardEchoMismatch: a node booted with the wrong shard index
// answers with the wrong placement echo; the coordinator must refuse with 502
// instead of merging slices that do not partition the data.
func TestCoordinatorShardEchoMismatch(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Shards: 2, Retry: qos.Backoff{Attempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a := httptest.NewServer(newShardNode(t, 60, 0, 2))
	defer a.Close()
	// Node b wrongly believes it is shard 0 too.
	b := httptest.NewServer(newShardNode(t, 60, 0, 2))
	defer b.Close()
	if err := coord.Leases().Heartbeat("a", a.URL, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Leases().Heartbeat("b", b.URL, []int{1}); err != nil {
		t.Fatal(err)
	}
	_, qerr := coord.Query(context.Background(), Request{Scenario: "test", Query: fastQueryText, Method: "e-basic"})
	if !errors.Is(qerr, ErrShardMismatch) {
		t.Fatalf("query error = %v, want ErrShardMismatch", qerr)
	}
	var ae *apiError
	if !errors.As(qerr, &ae) || ae.status != http.StatusBadGateway {
		t.Fatalf("query error = %v, want status 502", qerr)
	}
}

// TestLeaseExpiryPromotesStandby drives the lease state machine with a fake
// clock: the senior owner misses its heartbeats, the standby is promoted at
// TTL, and the old owner's later return does not snatch the shard back.
func TestLeaseExpiryPromotesStandby(t *testing.T) {
	clock := qos.NewFakeClock()
	lt, err := NewLeaseTable(LeaseConfig{Shards: 1, Interval: time.Second, MissedIntervals: 3, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	hb := func(node string) {
		t.Helper()
		if err := lt.Heartbeat(node, "http://"+node, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	hb("alpha")
	hb("beta") // standby: same shard, later acquisition
	if owner, ok := lt.Owner(0); !ok || owner.Node != "alpha" {
		t.Fatalf("owner = %+v, %v; want alpha", owner, ok)
	}
	// Beta keeps heartbeating; alpha goes quiet.  Just before TTL alpha still
	// owns the shard; past TTL beta is promoted.
	clock.Advance(time.Second)
	hb("beta")
	clock.Advance(2 * time.Second) // alpha's age: 3s = TTL, not yet expired
	if owner, _ := lt.Owner(0); owner.Node != "alpha" {
		t.Fatalf("owner at TTL = %q, want alpha", owner.Node)
	}
	clock.Advance(time.Millisecond)
	if owner, ok := lt.Owner(0); !ok || owner.Node != "beta" {
		t.Fatalf("owner past TTL = %+v, %v; want beta", owner, ok)
	}
	// Alpha comes back: it rejoins behind beta and must not reclaim the shard.
	hb("alpha")
	if owner, _ := lt.Owner(0); owner.Node != "beta" {
		t.Fatalf("owner after alpha's return = %q, want beta (promotion must stick)", owner.Node)
	}
	// Once beta expires, alpha (still heartbeating) takes over again.
	clock.Advance(3*time.Second + time.Millisecond)
	hb("alpha")
	if owner, _ := lt.Owner(0); owner.Node != "alpha" {
		t.Fatalf("owner after beta expiry = %q, want alpha", owner.Node)
	}
}

// TestLeaseTablePersistence: the table survives a coordinator restart via the
// store's aux blob, including seniority order; a corrupted blob degrades to
// an empty table instead of refusing to start.
func TestLeaseTablePersistence(t *testing.T) {
	fs := store.NewMemFS()
	st, err := store.Open("/data", store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	clock := qos.NewFakeClock()
	lt, err := NewLeaseTable(LeaseConfig{Shards: 2, Interval: time.Second, Clock: clock, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := lt.Heartbeat("alpha", "http://alpha", []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := lt.Heartbeat("beta", "http://beta", []int{1}); err != nil {
		t.Fatal(err)
	}
	// "Restart": a fresh table over the same store sees the same owners.
	lt2, err := NewLeaseTable(LeaseConfig{Shards: 2, Interval: time.Second, Clock: clock, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	owners := lt2.Owners()
	if owners[0].Node != "alpha" || owners[1].Node != "alpha" {
		t.Fatalf("restored owners = %+v, want alpha on both (senior)", owners)
	}
	if lt2.PersistErrors() != 0 {
		t.Fatalf("persist errors = %d", lt2.PersistErrors())
	}
	// Leases keep aging across the restart: expire alpha, beta takes shard 1.
	clock.Advance(3*time.Second + time.Millisecond)
	if err := lt2.Heartbeat("beta", "http://beta", []int{1}); err != nil {
		t.Fatal(err)
	}
	owners = lt2.Owners()
	if _, ok := owners[0]; ok {
		t.Fatalf("shard 0 still owned after every claimant expired: %+v", owners)
	}
	if owners[1].Node != "beta" {
		t.Fatalf("shard 1 owner = %+v, want beta", owners[1])
	}
	// Corrupt the blob: a new table starts empty rather than failing.
	if err := st.SaveAux("leases", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	lt3, err := NewLeaseTable(LeaseConfig{Shards: 2, Clock: clock, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(lt3.Owners()); n != 0 {
		t.Fatalf("table from undecodable blob has %d owners, want 0", n)
	}
}

// TestCoordinatorLeaseEndpointAndHealth covers the HTTP half of the lease
// protocol: heartbeats register nodes, health flips to ok only when every
// shard is owned, and the lease response carries the cadence.
func TestCoordinatorLeaseEndpointAndHealth(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Shards: 2, LeaseInterval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord)
	defer ts.Close()

	health := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := health(); got != http.StatusServiceUnavailable {
		t.Fatalf("health with no shards = %d, want 503", got)
	}
	hb := func(body string) (int, LeaseResponse) {
		resp, err := http.Post(ts.URL+"/v1/lease", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var lr LeaseResponse
		_ = json.NewDecoder(resp.Body).Decode(&lr)
		return resp.StatusCode, lr
	}
	status, lr := hb(`{"node":"a","addr":"http://a","shards":[0]}`)
	if status != http.StatusOK || lr.IntervalMS != 1000 || lr.TTLMS != 3000 {
		t.Fatalf("heartbeat = %d %+v, want 200 with interval 1000ms, ttl 3000ms", status, lr)
	}
	if got := health(); got != http.StatusServiceUnavailable {
		t.Fatalf("health with one of two shards = %d, want 503", got)
	}
	if status, _ := hb(`{"node":"b","addr":"http://b","shards":[1]}`); status != http.StatusOK {
		t.Fatalf("second heartbeat = %d", status)
	}
	if got := health(); got != http.StatusOK {
		t.Fatalf("health with all shards owned = %d, want 200", got)
	}
	// Out-of-range claims are rejected.
	if status, _ := hb(`{"node":"c","addr":"http://c","shards":[7]}`); status != http.StatusBadRequest {
		t.Fatalf("out-of-range claim = %d, want 400", status)
	}
}

// TestScatterEndpoint: the shard-side API refuses non-distributable methods
// with 422, echoes the node's placement, and carries typed values that
// reconstruct tuples exactly.
func TestScatterEndpoint(t *testing.T) {
	node := newShardNode(t, 60, 0, 2)
	srv := httptest.NewServer(node)
	defer srv.Close()

	post := func(body string) (int, []byte) {
		resp, err := http.Post(srv.URL+"/v1/scatter", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}
	status, body := post(`{"scenario":"test","query":"` + fastQueryText + `","method":"e-basic"}`)
	if status != http.StatusOK {
		t.Fatalf("scatter = %d: %s", status, body)
	}
	var sr ScatterResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Shard == nil || sr.Shard.Index != 0 || sr.Shard.Count != 2 || sr.Shard.Relation != "S" {
		t.Fatalf("shard echo = %+v", sr.Shard)
	}
	if len(sr.Groups) == 0 {
		t.Fatal("scatter returned no groups")
	}
	// o-sharing cannot scatter: 422, not a fallback (the node only holds a
	// slice, so falling back would answer from partial data).
	if status, body := post(`{"scenario":"test","query":"` + fastQueryText + `","method":"o-sharing"}`); status != http.StatusUnprocessableEntity {
		t.Fatalf("o-sharing scatter = %d: %s", status, body)
	}
	// Unknown scenario: 404.
	if status, _ := post(`{"scenario":"nope","query":"` + fastQueryText + `"}`); status != http.StatusNotFound {
		t.Fatal("unknown scenario not 404")
	}
	if node.Metrics().Scatters != 3 {
		t.Fatalf("scatters = %d, want 3", node.Metrics().Scatters)
	}
}

// tupleMixed exercises every wire kind, including the float/int distinction
// (3.0 versus 3) and NULL.
func tupleMixed() engine.Tuple {
	return engine.Tuple{engine.S("s"), engine.I(3), engine.F(3), engine.Null()}
}

// TestWireValueRoundTrip pins the typed wire format: kinds survive encoding,
// so a float 3.0 does not come back as an int 3.
func TestWireValueRoundTrip(t *testing.T) {
	tup := wireTuple(wireValues(tuple("k01", 7, 3)))
	if !tup.Equal(tuple("k01", 7, 3)) {
		t.Fatalf("round trip = %v", tup)
	}
	// Mixed kinds through JSON, the actual wire.
	in := [][]WireValue{wireValues(tupleMixed())}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]WireValue
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	got := wireTuple(out[0])
	want := tupleMixed()
	if !got.Equal(want) {
		t.Fatalf("wire round trip = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].Kind != want[i].Kind {
			t.Fatalf("value %d kind %v, want %v", i, got[i].Kind, want[i].Kind)
		}
	}
}

// TestCoordinatorScenarios: the aggregated scenario listing reports each
// shard's placement (node, epoch, rows) without summing replicated rows.
func TestCoordinatorScenarios(t *testing.T) {
	cl := newCluster(t, 80, 2, CoordinatorConfig{})
	resp, err := http.Get(cl.http.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Scenarios []CoordinatorScenario `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Scenarios) != 1 || out.Scenarios[0].Name != "test" {
		t.Fatalf("scenarios = %+v", out.Scenarios)
	}
	sc := out.Scenarios[0]
	if len(sc.Shards) != 2 {
		t.Fatalf("placements = %+v, want 2 shards", sc.Shards)
	}
	totalRows := 0
	for i, pl := range sc.Shards {
		if pl.Shard != i {
			t.Fatalf("placement %d reports shard %d", i, pl.Shard)
		}
		if pl.Node == "" || pl.Addr == "" {
			t.Fatalf("placement %d missing node identity: %+v", i, pl)
		}
		totalRows += pl.Rows
	}
	if totalRows != 80 {
		t.Fatalf("shard rows sum to %d, want 80 (S partitioned, nothing replicated here)", totalRows)
	}
}
