package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/delta"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/qos"
	"github.com/probdb/urm/internal/query"
)

// Config tunes a Server.
type Config struct {
	// MaxConcurrent bounds the number of evaluations running at once (the
	// admission-control slot count).  Cache hits and coalesced waiters do not
	// consume slots.  0 selects GOMAXPROCS.
	MaxConcurrent int
	// QueueWait is how long a request may wait for a free evaluation slot
	// before being rejected with 429.  0 rejects immediately when saturated.
	QueueWait time.Duration
	// RequestTimeout caps the per-request evaluation deadline.  Requests may
	// ask for less via timeout_ms but never more.  0 selects 30s.
	RequestTimeout time.Duration
	// CacheBytes is the answer cache's byte budget.  0 selects 64 MiB;
	// negative disables caching (singleflight coalescing still applies).
	CacheBytes int64
	// Parallelism is passed through to core.Options for each evaluation
	// (0 = GOMAXPROCS).  With MaxConcurrent evaluation slots, total worker
	// goroutines reach MaxConcurrent×Parallelism; keep the product near the
	// core count.
	Parallelism int

	// TenantRate is the global evaluation-admission rate in requests/sec,
	// shared by all active tenants in proportion to their weights (see
	// internal/qos.Limiter).  0 disables rate limiting; the fair queue and
	// shed ladder still apply.  Cache hits never spend tokens — the limiter
	// protects evaluation capacity, not reads.
	TenantRate float64
	// TenantBurst is the shared burst allowance (0 = one second of
	// TenantRate).
	TenantBurst float64
	// Tenants sets per-tenant weights and default priorities.  Tenants absent
	// from the map get weight 1 and interactive priority.
	Tenants map[string]TenantQoS
	// DisableStaleServe turns off the last rung of the shed ladder: serving a
	// previous epoch's cached answer (flagged "stale") instead of rejecting.
	DisableStaleServe bool
	// DisableDelta turns off incremental maintenance: appends then invalidate
	// cached answers by epoch (the pre-delta behavior) instead of refreshing
	// them through delta passes.
	DisableDelta bool
	// DeltaMaxEntries caps maintained (query, method, strategy) entries per
	// scenario; evaluations past the cap fall back to epoch invalidation.
	// 0 selects the maintainer default (256).
	DeltaMaxEntries int
	// Faults is the deterministic fault-injection seam; nil in production.
	Faults *qos.Faults

	// Shard, when non-nil, declares this node a shard of a partitioned
	// deployment: its scenarios hold only the declared slice of the
	// partitioned relation, POST /v1/scatter refuses non-distributable plans,
	// and the placement is echoed in scatter responses and /v1/scenarios.
	Shard *ShardIdentity

	// SlowQueryThreshold, when positive, counts requests whose total wall
	// time crosses it under the slow_queries metric.  Logging them is the
	// AfterQuery hook's job (it receives the same elapsed time).
	SlowQueryThreshold time.Duration

	// BeforeQuery and AfterQuery are request-path hooks around Do.
	// BeforeQuery sees the request after it is admitted (and may not mutate
	// it); AfterQuery sees the outcome — response or error — and the measured
	// wall time.  Both run on the request goroutine, so they must be fast and
	// must not call back into the server.  The slow-query log is an AfterQuery
	// hook.
	BeforeQuery func(req *Request)
	AfterQuery  func(req *Request, resp *Response, err error, elapsed time.Duration)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	return c
}

// Server answers probabilistic queries over registered scenarios.  It is an
// http.Handler; Do is the transport-free core the handler (and the load
// harness, and in-process callers) share.
type Server struct {
	registry *Registry
	cache    *AnswerCache
	cfg      Config

	// The QoS ladder: limiter (per-tenant token buckets, nil when TenantRate
	// is 0), then queue (weighted-fair admission to the evaluation slots).
	// clock is the injected time source every rung reads.
	limiter *qos.Limiter
	queue   *qos.FairQueue
	clock   qos.Clock

	metrics serverMetrics
	tenants *tenantTable

	// maintainer is the incremental-maintenance reconciler (nil when
	// Config.DisableDelta): appends mark scenarios dirty through the Observer
	// hooks, and its background pass republishes each enrolled answer at the
	// new epoch instead of letting the epoch-keyed cache entry go stale.
	maintainer *delta.Maintainer

	// latency tracks per-scenario cold-evaluation medians for the
	// doomed-deadline shed rung.
	latMu   sync.Mutex
	latency map[string]*qos.LatencyTracker

	// drainMu/drainSet gate request entry against Drain: Drain flips the flag
	// and then waits, and no request can join the WaitGroup after the flip.
	drainMu  sync.RWMutex
	drainSet bool
	wg       sync.WaitGroup

	// recovering, while set, answers every query 503 ("recovering") so the
	// listener can come up before WAL replay and index warming finish —
	// load balancers see a live but not-yet-ready node instead of connection
	// refused.
	recovering atomic.Bool
}

// SetRecovering flips the recovery gate.  Boot sequence: SetRecovering(true),
// start the listener, Registry.Recover, SetRecovering(false).
func (s *Server) SetRecovering(on bool) { s.recovering.Store(on) }

// Recovering reports whether the server is still replaying its store.
func (s *Server) Recovering() bool { return s.recovering.Load() }

// New builds a server over the registry.
func New(reg *Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	clock := cfg.Faults.ClockOrWall()
	s := &Server{
		registry: reg,
		cache:    NewAnswerCache(cfg.CacheBytes),
		cfg:      cfg,
		clock:    clock,
		queue:    qos.NewFairQueue(qos.QueueConfig{Slots: cfg.MaxConcurrent, Clock: clock}),
		tenants:  newTenantTable(),
		latency:  make(map[string]*qos.LatencyTracker),
	}
	if cfg.TenantRate > 0 {
		s.limiter = qos.NewLimiter(qos.LimiterConfig{
			Rate:    cfg.TenantRate,
			Burst:   cfg.TenantBurst,
			Weights: limiterWeights(cfg.Tenants),
			Clock:   clock,
		})
	}
	if !cfg.DisableDelta {
		s.maintainer = delta.New(delta.Config{
			MaxEntries:  cfg.DeltaMaxEntries,
			Parallelism: cfg.Parallelism,
			Publish:     s.publishMaintained,
		})
		s.maintainer.Start()
	}
	reg.SetObserver(s)
	return s
}

// publishMaintained is the maintainer's publish callback: a refreshed answer
// lands in the cache under the epoch it was converged at, exactly where the
// next request for the same question will look.
func (s *Server) publishMaintained(scenario, query string, method core.Method, strategy core.Strategy, res *core.Result, epoch uint64) {
	s.cache.Put(CacheKey{
		Scenario: scenario,
		Epoch:    epoch,
		Query:    query,
		Method:   method,
		Strategy: strategy,
	}, res)
	s.metrics.deltaApplied.Add(1)
}

// OnAppend implements Observer: count appended rows and in-place index
// extensions, and queue the scenario for delta convergence.  Counting here
// rather than in the HTTP handler covers programmatic appends too.
func (s *Server) OnAppend(scenario string, rows, extendedIndexes int) {
	s.metrics.appends.Add(int64(rows))
	s.metrics.indexInplace.Add(int64(extendedIndexes))
	if s.maintainer != nil {
		s.maintainer.MarkDirty(scenario)
	}
}

// OnBump implements Observer: an explicit epoch bump is the one mutation the
// delta cannot describe, so it purges the scenario's maintained entries —
// epoch invalidation, recorded as such.
func (s *Server) OnBump(scenario string) {
	s.metrics.epochInvalidations.Add(1)
	if s.maintainer != nil {
		s.maintainer.Purge(scenario)
	}
}

// OnDrop implements Observer.
func (s *Server) OnDrop(scenario string) {
	if s.maintainer != nil {
		s.maintainer.Purge(scenario)
	}
}

// ConvergeDelta synchronously runs one delta-convergence pass for the
// scenario's enrolled entries and returns the number of refreshed answers
// published — the deterministic hook tests and benchmarks drive instead of
// waiting on the background loop.
func (s *Server) ConvergeDelta(scenario string) int {
	if s.maintainer == nil {
		return 0
	}
	return s.maintainer.Converge(scenario)
}

// DeltaEntries returns the number of maintained entries for the scenario.
func (s *Server) DeltaEntries(scenario string) int {
	if s.maintainer == nil {
		return 0
	}
	return s.maintainer.Entries(scenario)
}

// latencyFor returns the scenario's cold-latency tracker, creating it on
// first use.  The registry bounds scenario names, so the map is bounded too.
func (s *Server) latencyFor(scenario string) *qos.LatencyTracker {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	t := s.latency[scenario]
	if t == nil {
		t = &qos.LatencyTracker{}
		s.latency[scenario] = t
	}
	return t
}

// Registry returns the server's scenario registry.
func (s *Server) Registry() *Registry { return s.registry }

// Cache returns the server's answer cache.
func (s *Server) Cache() *AnswerCache { return s.cache }

// Metrics returns a snapshot of the server counters.
func (s *Server) Metrics() Metrics { return s.snapshotMetrics() }

// Request is one query request, the body of POST /v1/query.
type Request struct {
	// Scenario names a registered scenario.
	Scenario string `json:"scenario"`
	// Query is the query text in the library's SQL subset.
	Query string `json:"query"`
	// Method is the evaluation method name ("o-sharing" default).
	Method string `json:"method,omitempty"`
	// Strategy is the o-sharing operator-selection strategy ("SEF" default).
	Strategy string `json:"strategy,omitempty"`
	// TopK, when positive, runs the probabilistic top-k algorithm.
	TopK int `json:"topk,omitempty"`
	// TimeoutMS optionally tightens the server's request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Tenant identifies the caller for QoS accounting.  The HTTP layer fills
	// it from the X-URM-Tenant header; empty means the shared "default"
	// tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the admission class, "interactive" or "batch" (X-URM-Priority
	// over HTTP).  Empty falls back to the tenant's configured default, then
	// to interactive.
	Priority string `json:"priority,omitempty"`
}

// AnswerJSON is one probabilistic answer in a response.  Values keep their
// engine kinds: strings as JSON strings, ints and floats as JSON numbers,
// NULL as null.
type AnswerJSON struct {
	Values []any   `json:"values"`
	Prob   float64 `json:"prob"`
}

// Response is the body of a successful POST /v1/query.
type Response struct {
	Scenario  string       `json:"scenario"`
	Epoch     uint64       `json:"epoch"`
	Query     string       `json:"query"` // canonical text, the cache-key form
	Method    string       `json:"method"`
	Strategy  string       `json:"strategy,omitempty"`
	TopK      int          `json:"topk,omitempty"`
	Columns   []string     `json:"columns,omitempty"`
	Answers   []AnswerJSON `json:"answers"`
	EmptyProb float64      `json:"empty_prob"`
	// Cached is true when the response came from the answer cache; Coalesced
	// when it shared another request's in-flight evaluation.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Stale is true when overload degraded the response to a previous epoch's
	// cached answer (Epoch then names the epoch actually served).  A stale
	// answer is a bit-identical replay of an answer served fresh earlier; it
	// is only offered while the scenario has seen nothing but appends since.
	Stale bool `json:"stale,omitempty"`
	// QueueWaitMS is the measured time this request spent waiting for an
	// evaluation slot (zero for cache hits and coalesced waiters).
	QueueWaitMS float64 `json:"queue_wait_ms"`
	ElapsedMS   float64 `json:"elapsed_ms"`

	// Result is the evaluation result backing the response, shared and
	// immutable; in-process callers (tests, the load harness) use it for
	// bit-identical comparisons.  It is not serialized.
	Result *core.Result `json:"-"`
}

// Typed sentinel errors of the request path.  The facade re-exports them;
// errors returned by Do wrap them, so callers classify failures with
// errors.Is instead of matching message strings or HTTP statuses.
var (
	// ErrOverloaded is returned (and mapped to 429) when no evaluation slot
	// frees up within Config.QueueWait.
	ErrOverloaded = errors.New("server overloaded: no evaluation slot available")
	// ErrUnknownScenario is returned (and mapped to 404) when the request
	// names a scenario the registry does not hold.
	ErrUnknownScenario = errors.New("unknown scenario")
	// ErrDraining is returned (and mapped to 503) once Drain has begun.
	ErrDraining = errors.New("server is draining")
	// ErrDeadlineTooShort is returned (and mapped to 504) when the request's
	// remaining deadline is below the scenario's observed median cold-eval
	// latency: the evaluation would more likely than not burn a slot and time
	// out anyway, so the server sheds it before admission.
	ErrDeadlineTooShort = errors.New("request deadline shorter than expected evaluation latency")
	// ErrQuarantined is returned (and mapped to 503) when the request names a
	// scenario whose on-disk state failed recovery validation.  The rest of
	// the node serves normally; this scenario needs operator attention.
	ErrQuarantined = errors.New("scenario is quarantined: on-disk state failed recovery")
	// ErrRecovering is returned (and mapped to 503) while the server is still
	// replaying the durable store at boot.
	ErrRecovering = errors.New("server is recovering from its durable store")
)

// apiError carries an HTTP status through the Do path while keeping the
// underlying error (and any sentinel it wraps) reachable through errors.Is.
// retryAfter, when positive, is the server's honest wait hint (the token
// bucket's exact next-token time, or the queue-wait budget) surfaced as the
// Retry-After header on 429 responses.
type apiError struct {
	status     int
	retryAfter time.Duration
	err        error
}

func (e *apiError) Error() string { return e.err.Error() }
func (e *apiError) Unwrap() error { return e.err }

// apiErr tags an error with an HTTP status.
func apiErr(status int, err error) error { return &apiError{status: status, err: err} }

// apiErrRetry tags an error with a status and a Retry-After hint.
func apiErrRetry(status int, retryAfter time.Duration, err error) error {
	return &apiError{status: status, retryAfter: retryAfter, err: err}
}

// RetryAfter extracts the Retry-After hint from an error returned by Do
// (zero when the error carries none) — the in-process mirror of the HTTP
// header, used by the load harness's backoff.
func RetryAfter(err error) time.Duration {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.retryAfter
	}
	return 0
}

func errBadRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// Do answers one request.  It is the transport-free request path: admission,
// parsing, cache lookup with singleflight, evaluation under the request
// deadline.  Returned errors are *apiError when they carry an HTTP status.
func (s *Server) Do(ctx context.Context, req Request) (*Response, error) {
	s.metrics.requests.Add(1)
	if !s.enter() {
		s.metrics.unavailable.Add(1)
		return nil, apiErr(http.StatusServiceUnavailable, ErrDraining)
	}
	defer s.leave()
	if s.recovering.Load() {
		s.metrics.unavailable.Add(1)
		return nil, apiErr(http.StatusServiceUnavailable, ErrRecovering)
	}
	if s.cfg.BeforeQuery != nil {
		s.cfg.BeforeQuery(&req)
	}
	start := time.Now()
	resp, err := s.do(ctx, req)
	elapsed := time.Since(start)
	if t := s.cfg.SlowQueryThreshold; t > 0 && elapsed >= t {
		s.metrics.slowQueries.Add(1)
	}
	if s.cfg.AfterQuery != nil {
		s.cfg.AfterQuery(&req, resp, err, elapsed)
	}
	if err != nil {
		var ae *apiError
		switch {
		case errors.Is(err, ErrQuarantined):
			s.metrics.unavailable.Add(1)
		case errors.As(err, &ae) && ae.status == http.StatusTooManyRequests:
			s.metrics.rejected.Add(1)
		case errors.Is(err, ErrDeadlineTooShort):
			s.metrics.shedDoomed.Add(1)
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.timeouts.Add(1)
		case errors.As(err, &ae) && ae.status >= 400 && ae.status < 500:
			s.metrics.badRequests.Add(1)
		}
	}
	return resp, err
}

func (s *Server) do(ctx context.Context, req Request) (*Response, error) {
	start := time.Now()
	if req.Scenario == "" {
		return nil, errBadRequest("missing scenario")
	}
	sc, ok := s.registry.Get(req.Scenario)
	if !ok {
		if qerr, quarantined := s.registry.QuarantineReason(req.Scenario); quarantined {
			return nil, apiErr(http.StatusServiceUnavailable, fmt.Errorf("%w: %q: %v", ErrQuarantined, req.Scenario, qerr))
		}
		return nil, apiErr(http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownScenario, req.Scenario))
	}
	if strings.TrimSpace(req.Query) == "" {
		return nil, apiErr(http.StatusBadRequest, fmt.Errorf("%w: missing query", query.ErrBadQuery))
	}
	method := core.MethodOSharing
	if req.Method != "" {
		var err error
		if method, err = core.ParseMethod(req.Method); err != nil {
			return nil, errBadRequest("%w: %v", core.ErrBadOptions, err)
		}
	}
	strategy := core.StrategySEF
	if req.Strategy != "" {
		var err error
		if strategy, err = core.ParseStrategy(req.Strategy); err != nil {
			return nil, errBadRequest("%w: %v", core.ErrBadOptions, err)
		}
	}
	if req.TopK < 0 {
		return nil, errBadRequest("%w: topk must be >= 0, got %d", core.ErrBadOptions, req.TopK)
	}
	adm, err := s.admissionFor(req)
	if err != nil {
		return nil, err
	}
	tc := s.tenants.get(adm.tenant)
	tc.requests.Add(1)
	// The prepared-query cache makes answer-cache *misses* cheap too: the
	// first sight of (epoch, query text) parses, reformulates through every
	// mapping and compiles plans; every later request — even with a cold
	// answer cache — skips straight to execution.
	parseStart := time.Now()
	prep, canonical, reused, err := sc.Prepare(req.Query)
	if err != nil {
		return nil, apiErr(http.StatusBadRequest, err)
	}
	if reused {
		s.metrics.preparedReuses.Add(1)
	} else {
		s.metrics.preparedBuilds.Add(1)
		s.metrics.stageParse.Observe(time.Since(parseStart))
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// The epoch is read once per request: a mutation racing this request
	// either lands before the read (the request sees the new epoch and fresh
	// data) or after (the request caches under the old epoch, which the bump
	// just made unreachable).  Either way no stale answer is served under a
	// current key.
	key := CacheKey{
		Scenario: sc.Name(),
		Epoch:    sc.Epoch(),
		Query:    canonical,
		Method:   method,
		Strategy: strategy,
		TopK:     req.TopK,
	}
	// queueWait is written by the compute callback, which GetOrCompute runs on
	// this goroutine (waiters coalesce; only the leader computes), so the
	// capture is race-free.
	var queueWait time.Duration
	res, outcome, err := s.cache.GetOrCompute(ctx, key, func() (*core.Result, error) {
		r, wait, err := s.evaluate(ctx, sc, prep, canonical, method, strategy, req.TopK, adm)
		queueWait = wait
		return r, err
	})
	if err != nil {
		if resp := s.tryStale(key, sc, adm, method, strategy, req.TopK, start, err); resp != nil {
			return resp, nil
		}
		return nil, err
	}
	if outcome == OutcomeHit {
		tc.cacheHits.Add(1)
	}
	return &Response{
		Scenario:    sc.Name(),
		Epoch:       key.Epoch,
		Query:       canonical,
		Method:      method.String(),
		Strategy:    strategy.String(),
		TopK:        req.TopK,
		Columns:     res.Columns,
		Answers:     answersJSON(res),
		EmptyProb:   res.EmptyProb,
		Cached:      outcome == OutcomeHit,
		Coalesced:   outcome == OutcomeCoalesced,
		QueueWaitMS: float64(queueWait.Microseconds()) / 1000,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		Result:      res,
	}, nil
}

// tryStale is the last rung of the shed ladder: when the request was shed for
// capacity (429) or a doomed deadline, and stale serving is enabled, answer
// with the newest cached result for the same question from a previous epoch —
// provided every epoch since was an append (Scenario.StaleFloor).  The entry
// is an immutable, fully materialized result some earlier request was served
// fresh, so degradation never exposes a torn answer.
func (s *Server) tryStale(key CacheKey, sc *Scenario, adm admission, method core.Method, strategy core.Strategy, topK int, start time.Time, cause error) *Response {
	if s.cfg.DisableStaleServe {
		return nil
	}
	var ae *apiError
	if !errors.As(cause, &ae) {
		return nil
	}
	if ae.status != http.StatusTooManyRequests && !errors.Is(cause, ErrDeadlineTooShort) {
		return nil
	}
	res, epoch, ok := s.cache.GetStale(key, sc.StaleFloor())
	if !ok {
		return nil
	}
	stale := epoch < key.Epoch
	if stale {
		s.metrics.staleServed.Add(1)
		s.metrics.staleWindow.Store(int64(key.Epoch - epoch))
		s.tenants.get(adm.tenant).staleServed.Add(1)
	}
	return &Response{
		Scenario:  key.Scenario,
		Epoch:     epoch,
		Query:     key.Query,
		Method:    method.String(),
		Strategy:  strategy.String(),
		TopK:      topK,
		Columns:   res.Columns,
		Answers:   answersJSON(res),
		EmptyProb: res.EmptyProb,
		Cached:    true,
		Stale:     stale,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Result:    res,
	}
}

// evaluate runs one evaluation under the shed ladder, and reports the
// measured queue wait alongside the result:
//
//  1. the tenant's token bucket (429 with an exact Retry-After),
//  2. doomed-deadline rejection — remaining deadline below the scenario's
//     median cold latency means the evaluation would likely time out anyway
//     (504, ErrDeadlineTooShort),
//  3. the weighted-fair queue over the evaluation slots (429 after QueueWait).
//
// The ladder sits inside the cache's compute callback on purpose: cache hits
// and coalesced waiters consume no evaluation capacity, so they are admitted
// unconditionally and only actual evaluations spend tokens and slots.
func (s *Server) evaluate(ctx context.Context, sc *Scenario, prep *core.Prepared, canonical string, method core.Method, strategy core.Strategy, topK int, adm admission) (*core.Result, time.Duration, error) {
	tc := s.tenants.get(adm.tenant)
	if s.limiter != nil {
		if ok, retryAfter := s.limiter.Admit(adm.tenant); !ok {
			tc.shedRateLimited.Add(1)
			return nil, 0, apiErrRetry(http.StatusTooManyRequests, retryAfter,
				fmt.Errorf("%w: tenant %q over its admission rate", ErrOverloaded, adm.tenant))
		}
	}
	// Deadlines live in wall time (context.WithTimeout), so this comparison
	// does too, whatever clock the QoS rungs run on.
	if deadline, ok := ctx.Deadline(); ok {
		if p50, have := s.latencyFor(sc.Name()).P50(); have {
			if remaining := time.Until(deadline); remaining < p50 {
				tc.shedDoomedDeadline.Add(1)
				return nil, 0, apiErr(http.StatusGatewayTimeout,
					fmt.Errorf("%w: %v remaining, median cold evaluation takes %v", ErrDeadlineTooShort, remaining.Round(time.Millisecond), p50.Round(time.Millisecond)))
			}
		}
	}
	wait, err := s.queue.Acquire(ctx, adm.tenant, adm.weight, s.cfg.QueueWait)
	s.metrics.queueWait.Observe(wait)
	tc.queueWait.Observe(wait)
	if err != nil {
		if errors.Is(err, qos.ErrSaturated) {
			tc.shedQueueTimeout.Add(1)
			return nil, wait, apiErrRetry(http.StatusTooManyRequests, s.cfg.QueueWait,
				fmt.Errorf("%w: no evaluation slot within %v", ErrOverloaded, s.cfg.QueueWait))
		}
		return nil, wait, err
	}
	defer s.queue.Release()
	if f := s.cfg.Faults; f != nil && f.SlotStall != nil {
		f.SlotStall(adm.tenant)
	}

	s.metrics.evaluations.Add(1)
	tc.evaluations.Add(1)
	if f := s.cfg.Faults; f != nil && f.SlowEvaluation != nil {
		f.SlowEvaluation(adm.tenant)
	}
	evalStart := s.clock.Now()
	opts := core.Options{Method: method, Strategy: strategy, Parallelism: s.cfg.Parallelism}
	var res *core.Result
	if s.maintainer != nil && topK == 0 {
		// Delta-first: evaluate through the scatter form and keep the per-group
		// state, so later appends refresh this answer instead of invalidating
		// it.  Plans the delta cannot maintain (non-SPJ, o-sharing, self-joins)
		// fall through to the ordinary evaluator and are counted as fallbacks.
		var st *core.DeltaState
		var epoch uint64
		res, st, epoch, err = sc.EvaluateDelta(ctx, prep, opts)
		switch {
		case err == nil:
			if !s.maintainer.Enroll(sc, canonical, method, strategy, st, epoch) {
				s.metrics.deltaFallbacks.Add(1)
			}
		case errors.Is(err, core.ErrNotDeltaMaintainable):
			s.metrics.deltaFallbacks.Add(1)
			res, err = sc.EvaluatePrepared(ctx, prep, topK, opts)
		}
	} else {
		res, err = sc.EvaluatePrepared(ctx, prep, topK, opts)
	}
	if err != nil {
		s.metrics.evalErrors.Add(1)
		return nil, wait, err
	}
	s.latencyFor(sc.Name()).Observe(s.clock.Now().Sub(evalStart))
	s.metrics.indexBuilds.Add(int64(res.Stats.IndexBuilds()))
	s.metrics.indexLookups.Add(int64(res.Stats.IndexLookups()))
	s.metrics.operators.Add(int64(res.Stats.TotalOperators()))
	s.metrics.stageReformulate.Observe(res.RewriteTime)
	s.metrics.stageExecute.Observe(res.ExecTime)
	s.metrics.stageMerge.Observe(res.AggregateTime)
	return res, wait, nil
}

// enter admits a request unless the server is draining; every admitted
// request is tracked so Drain can wait for it.
func (s *Server) enter() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.drainSet {
		return false
	}
	s.wg.Add(1)
	s.metrics.inflight.Add(1)
	return true
}

func (s *Server) leave() {
	s.metrics.inflight.Add(-1)
	s.wg.Done()
}

func (s *Server) draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.drainSet
}

// Drain stops admitting requests and waits for the in-flight ones to finish,
// or for the context to expire — whichever comes first.  It is idempotent;
// wiring it before http.Server.Shutdown gives a clean two-phase stop: refuse
// new work, finish accepted work, then close listeners.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.drainSet = true
	s.drainMu.Unlock()
	if s.maintainer != nil {
		// Stop background convergence first: no new answers are published while
		// the accepted requests finish, and the maintenance goroutine is down
		// before the process exits.
		s.maintainer.Stop()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %d request(s) still in flight: %w", s.metrics.inflight.Load(), ctx.Err())
	}
}

// ServeHTTP routes the JSON API:
//
//	POST /v1/query      evaluate (or serve from cache)
//	POST /v1/scatter    shard-side half of a coordinator fan-out (per-group rows)
//	POST /v1/append     append a row to a scenario relation (durable when a store is attached)
//	POST /v1/bump       bump a scenario's epoch (invalidate cached answers)
//	GET  /v1/scenarios  registered scenarios
//	GET  /healthz       readiness ("recovering" then "draining" beat "ok")
//	GET  /metrics       counters snapshot
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/query":
		s.handleQuery(w, r)
	case r.URL.Path == "/v1/scatter":
		s.handleScatter(w, r)
	case r.URL.Path == "/v1/append":
		s.handleAppend(w, r)
	case r.URL.Path == "/v1/bump":
		s.handleBump(w, r)
	case r.URL.Path == "/v1/scenarios":
		s.handleScenarios(w, r)
	case r.URL.Path == "/healthz":
		s.handleHealthz(w, r)
	case r.URL.Path == "/metrics":
		writeJSON(w, http.StatusOK, s.snapshotMetrics())
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("no route %s %s", r.Method, r.URL.Path))
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	// Headers carry the QoS identity so callers can route without touching
	// the body; an explicit body field wins over the header.
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-URM-Tenant")
	}
	if req.Priority == "" {
		req.Priority = r.Header.Get("X-URM-Priority")
	}
	resp, err := s.Do(r.Context(), req)
	if err != nil {
		status := http.StatusInternalServerError
		var ae *apiError
		switch {
		case errors.As(err, &ae):
			status = ae.status
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			// The client went away; the status code is for the log line only.
			status = 499
		}
		body := map[string]any{"error": err.Error(), "status": status}
		if retryAfter := RetryAfter(err); retryAfter > 0 {
			setRetryAfter(w, body, retryAfter)
		}
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// setRetryAfter writes a Retry-After hint onto an error response.  The header
// is integer seconds (rounded up, HTTP cannot say less than 1); the body
// carries the precise hint for clients that can use it.
func setRetryAfter(w http.ResponseWriter, body map[string]any, retryAfter time.Duration) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	body["retry_after_ms"] = float64(retryAfter.Microseconds()) / 1000
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": s.scenarioInfos()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// "recovering" outranks "draining": a node still replaying its WAL has
	// not served anything yet, so balancers should treat it as not-yet-ready
	// rather than going-away.
	if s.recovering.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
		return
	}
	if s.draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// AppendRequest is the body of POST /v1/append.  Values map JSON types onto
// engine values: strings stay strings, integral numbers become ints, other
// numbers become floats, null becomes the null value.  Exactly one of Values
// (a single row) and Rows (a batch) must be set; a batch commits as one epoch
// step and one WAL record — one fsync however many rows it carries.
type AppendRequest struct {
	Scenario string  `json:"scenario"`
	Relation string  `json:"relation"`
	Values   []any   `json:"values,omitempty"`
	Rows     [][]any `json:"rows,omitempty"`
}

// BumpRequest is the body of POST /v1/bump.
type BumpRequest struct {
	Scenario string `json:"scenario"`
}

// mutableScenario runs the shared admission checks for the mutation
// endpoints and resolves the target scenario.  It returns nil after writing
// the error response itself.
func (s *Server) mutableScenario(w http.ResponseWriter, r *http.Request, name string) (*Scenario, func()) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return nil, nil
	}
	if !s.enter() {
		s.metrics.unavailable.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return nil, nil
	}
	if s.recovering.Load() {
		s.leave()
		s.metrics.unavailable.Add(1)
		writeError(w, http.StatusServiceUnavailable, ErrRecovering.Error())
		return nil, nil
	}
	sc, ok := s.registry.Get(name)
	if !ok {
		s.leave()
		if qerr, quarantined := s.registry.QuarantineReason(name); quarantined {
			s.metrics.unavailable.Add(1)
			writeError(w, http.StatusServiceUnavailable, fmt.Sprintf("%v: %q: %v", ErrQuarantined, name, qerr))
			return nil, nil
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("%v: %q", ErrUnknownScenario, name))
		return nil, nil
	}
	return sc, s.leave
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	dec.UseNumber()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	if (req.Values != nil) == (req.Rows != nil) {
		writeError(w, http.StatusBadRequest, "exactly one of values and rows must be set")
		return
	}
	var rows []engine.Tuple
	if req.Values != nil {
		row, err := tupleFromJSON(req.Values)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		rows = []engine.Tuple{row}
	} else {
		rows = make([]engine.Tuple, len(req.Rows))
		for i, values := range req.Rows {
			row, err := tupleFromJSON(values)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("rows[%d]: %v", i, err))
				return
			}
			rows[i] = row
		}
	}
	sc, leave := s.mutableScenario(w, r, req.Scenario)
	if sc == nil {
		return
	}
	defer leave()
	var err error
	if req.Values != nil {
		err = sc.AppendRow(req.Relation, rows[0])
	} else {
		err = sc.AppendRows(req.Relation, rows)
	}
	if err != nil {
		// A persistence failure means the rows are live in memory but not on
		// disk — that is a server-side durability fault, not a bad request.
		status := http.StatusBadRequest
		if sc.PersistErr() != nil {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scenario": sc.Name(),
		"relation": req.Relation,
		"epoch":    sc.Epoch(),
		"rows":     sc.NumRows(),
	})
}

func (s *Server) handleBump(w http.ResponseWriter, r *http.Request) {
	var req BumpRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	sc, leave := s.mutableScenario(w, r, req.Scenario)
	if sc == nil {
		return
	}
	defer leave()
	epoch := sc.Bump()
	if err := sc.PersistErr(); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("epoch bumped in memory but not persisted: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenario": sc.Name(), "epoch": epoch})
}

// tupleFromJSON converts a decoded JSON value slice (with json.Number for
// numbers) into an engine tuple.
func tupleFromJSON(values []any) (engine.Tuple, error) {
	row := make(engine.Tuple, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case nil:
			row[i] = engine.Null()
		case string:
			row[i] = engine.S(x)
		case json.Number:
			if n, err := strconv.ParseInt(string(x), 10, 64); err == nil {
				row[i] = engine.I(n)
			} else if f, err := x.Float64(); err == nil {
				row[i] = engine.F(f)
			} else {
				return nil, fmt.Errorf("values[%d]: unparseable number %q", i, x)
			}
		case bool:
			return nil, fmt.Errorf("values[%d]: booleans are not supported", i)
		default:
			return nil, fmt.Errorf("values[%d]: unsupported JSON type %T", i, v)
		}
	}
	return row, nil
}

func (s *Server) scenarioInfos() []ScenarioInfo {
	names := s.registry.Names()
	out := make([]ScenarioInfo, 0, len(names))
	for _, name := range names {
		sc, ok := s.registry.Get(name)
		if !ok {
			continue
		}
		out = append(out, ScenarioInfo{
			Name:            sc.Name(),
			Target:          sc.TargetLabel(),
			Epoch:           sc.Epoch(),
			Mappings:        len(sc.Mappings()),
			Relations:       len(sc.DB().RelationNames()),
			Rows:            sc.NumRows(),
			WarmIndexBuilds: sc.WarmIndexBuilds(),
			Shard:           s.cfg.Shard,
		})
	}
	return out
}

func answersJSON(res *core.Result) []AnswerJSON {
	out := make([]AnswerJSON, len(res.Answers))
	for i, a := range res.Answers {
		values := make([]any, len(a.Tuple))
		for j, v := range a.Tuple {
			values[j] = valueJSON(v)
		}
		out[i] = AnswerJSON{Values: values, Prob: a.Prob}
	}
	return out
}

func valueJSON(v engine.Value) any {
	switch v.Kind {
	case engine.KindString:
		return v.Str
	case engine.KindInt:
		return v.Int
	case engine.KindFloat:
		return v.Float
	default:
		return nil
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
