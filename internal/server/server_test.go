package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/probdb/urm/internal/core"
)

// directEvaluate is the reference the served answers must be bit-identical
// to: a plain library evaluation of the same query over the same scenario.
func directEvaluate(t *testing.T, sc *Scenario, text string, method core.Method) *core.Result {
	t.Helper()
	q, err := sc.Parse("ref", text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Evaluator().Evaluate(q, core.Options{Method: method})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestServedAnswersBitIdenticalToDirectEvaluate(t *testing.T) {
	srv, sc := newTestServer(t, 400, Config{})
	for _, method := range []string{"basic", "e-basic", "e-mqo", "q-sharing", "o-sharing"} {
		m, err := core.ParseMethod(method)
		if err != nil {
			t.Fatal(err)
		}
		want := directEvaluate(t, sc, fastQueryText, m)
		resp, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText, Method: method})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		sameResult(t, method, want, resp.Result)
		if resp.Cached {
			t.Errorf("%s: first request reported cached", method)
		}
	}
}

func TestSecondRequestServedFromCache(t *testing.T) {
	srv, sc := newTestServer(t, 400, Config{})
	want := directEvaluate(t, sc, fastQueryText, core.MethodOSharing)
	first, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	second, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags = %v, %v; want false, true", first.Cached, second.Cached)
	}
	sameResult(t, "cached", want, second.Result)
	if n := srv.Metrics().Evaluations; n != 1 {
		t.Fatalf("evaluations = %d, want 1", n)
	}
	// The canonical fingerprint, not the raw text, keys the cache: a
	// differently spelled but identically parsed query must hit too.
	respaced, err := srv.Do(context.Background(), Request{Scenario: "test", Query: "SELECT  a  FROM  T  WHERE  b  =  7"})
	if err != nil {
		t.Fatal(err)
	}
	if !respaced.Cached {
		t.Error("respaced query missed the cache despite equal canonical form")
	}
}

// TestSingleflightConcurrentIdenticalRequests is the acceptance criterion: 8
// concurrent identical requests cost exactly one evaluation and return
// bit-identical answers.
func TestSingleflightConcurrentIdenticalRequests(t *testing.T) {
	srv, sc := newTestServer(t, 700, Config{MaxConcurrent: 4})
	want := directEvaluate(t, sc, slowQueryText, core.MethodOSharing)

	const clients = 8
	start := make(chan struct{})
	responses := make([]*Response, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			responses[i], errs[i] = srv.Do(context.Background(), Request{Scenario: "test", Query: slowQueryText})
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		sameResult(t, fmt.Sprintf("client %d", i), want, responses[i].Result)
	}
	m := srv.Metrics()
	if m.Evaluations != 1 {
		t.Fatalf("evaluations = %d, want exactly 1 for %d concurrent identical requests", m.Evaluations, clients)
	}
	if m.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1", m.Cache.Misses)
	}
	if got := m.Cache.Hits + m.Cache.Coalesced; got != clients-1 {
		t.Fatalf("hits+coalesced = %d, want %d", got, clients-1)
	}
}

func TestEpochInvalidationAfterAppend(t *testing.T) {
	srv, sc := newTestServer(t, 100, Config{})
	before, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	// Append a row visible to the query under both mappings (y = z = 7) with
	// a fresh answer value.
	if err := sc.AppendRow("S", tuple("fresh", 7, 7)); err != nil {
		t.Fatal(err)
	}
	after, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached || after.Coalesced {
		t.Fatal("post-append request was served from cache; epoch bump failed to invalidate")
	}
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", after.Epoch, before.Epoch+1)
	}
	if !hasAnswerValue(after, "fresh") {
		t.Fatal("appended row missing from post-append answers")
	}
	if hasAnswerValue(before, "fresh") {
		t.Fatal("appended row visible in pre-append answers")
	}
	// The new epoch's entry caches normally.
	again, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("second post-append request missed the cache")
	}
	sameResult(t, "post-append", directEvaluate(t, sc, fastQueryText, core.MethodOSharing), again.Result)

	// AppendRow validates the relation and arity.
	if err := sc.AppendRow("nosuch", tuple("x", 1, 1)); err == nil {
		t.Error("AppendRow accepted an unknown relation")
	}
	if err := sc.AppendRow("S", tuple("x", 1, 1)[:2]); err == nil {
		t.Error("AppendRow accepted a wrong-arity tuple")
	}
}

// TestAppendDuringConcurrentQueries races mutation against evaluation: under
// -race this proves AppendRow's writer lock excludes in-flight evaluations,
// so a request never scans a relation mid-append.
func TestAppendDuringConcurrentQueries(t *testing.T) {
	srv, sc := newTestServer(t, 300, Config{MaxConcurrent: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Vary the method so requests miss the cache and evaluate.
				method := []string{"basic", "e-basic", "q-sharing", "o-sharing"}[(c+i)%4]
				if _, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText, Method: method}); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	for i := 0; i < 50; i++ {
		if err := sc.AppendRow("S", tuple(fmt.Sprintf("new%02d", i), 7, 7)); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	// After the dust settles, a fresh request must see every appended row.
	resp, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	if !hasAnswerValue(resp, "new49") {
		t.Error("final append not visible to post-mutation query")
	}
	if got := sc.Epoch(); got != 50 {
		t.Errorf("epoch = %d, want 50", got)
	}
}

// TestDeadlineAbort: a 1ms deadline must abort the self-product evaluation
// mid-stream with context.DeadlineExceeded.
func TestDeadlineAbort(t *testing.T) {
	srv, _ := newTestServer(t, 1000, Config{})
	_, err := srv.Do(context.Background(), Request{Scenario: "test", Query: slowQueryText, TimeoutMS: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	m := srv.Metrics()
	if m.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", m.Timeouts)
	}
	if m.EvalErrors != 1 {
		t.Errorf("eval errors = %d, want 1", m.EvalErrors)
	}
	// The failed evaluation must not be cached: a retry with a generous
	// deadline succeeds.
	resp, err := srv.Do(context.Background(), Request{Scenario: "test", Query: slowQueryText})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Fatal("retry after deadline abort was served from cache")
	}
}

// TestOverloadRejects: with one evaluation slot held and no queue wait, a
// second distinct request is rejected with ErrOverloaded (HTTP 429).
func TestOverloadRejects(t *testing.T) {
	srv, _ := newTestServer(t, 1000, Config{MaxConcurrent: 1, QueueWait: 0})
	slowDone := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), Request{Scenario: "test", Query: slowQueryText})
		slowDone <- err
	}()
	waitFor(t, "slot held", func() bool { return srv.Metrics().Evaluations == 1 })

	_, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if m := srv.Metrics(); m.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("slow request failed: %v", err)
	}
	// With the slot free again the same request is admitted.
	if _, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText}); err != nil {
		t.Fatalf("post-overload request failed: %v", err)
	}
}

// TestDrain: draining refuses new requests, waits for in-flight ones, and is
// bounded by the caller's context.
func TestDrain(t *testing.T) {
	srv, _ := newTestServer(t, 1000, Config{MaxConcurrent: 2})
	slowDone := make(chan error, 1)
	go func() {
		_, err := srv.Do(context.Background(), Request{Scenario: "test", Query: slowQueryText})
		slowDone <- err
	}()
	waitFor(t, "request in flight", func() bool { return srv.Metrics().Inflight == 1 })

	// A drain bounded too tightly reports the in-flight request.
	shortCtx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	err := srv.Drain(shortCtx)
	cancel()
	if err == nil && srv.Metrics().Inflight > 0 {
		t.Fatal("Drain returned nil with a request still in flight")
	}

	// New work is refused as soon as draining starts.
	if _, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	if m := srv.Metrics(); !m.Draining || m.Unavailable != 1 {
		t.Errorf("draining = %v, unavailable = %d; want true, 1", m.Draining, m.Unavailable)
	}

	// A patient drain completes once the in-flight request finishes.
	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
}

func TestTopKRequests(t *testing.T) {
	srv, sc := newTestServer(t, 400, Config{})
	q, err := sc.Parse("ref", fastQueryText)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Evaluator().EvaluateTopK(q, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "topk", want, resp.Result)
	// Top-k and full evaluation must not share cache entries.
	full, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}
	if full.Cached {
		t.Fatal("full evaluation hit the top-k cache entry")
	}
}

func TestRequestValidation(t *testing.T) {
	srv, _ := newTestServer(t, 50, Config{})
	cases := []struct {
		name string
		req  Request
		want int
	}{
		{"missing scenario", Request{Query: fastQueryText}, http.StatusBadRequest},
		{"unknown scenario", Request{Scenario: "nope", Query: fastQueryText}, http.StatusNotFound},
		{"missing query", Request{Scenario: "test"}, http.StatusBadRequest},
		{"bad sql", Request{Scenario: "test", Query: "SELEC a FROM T"}, http.StatusBadRequest},
		{"bad method", Request{Scenario: "test", Query: fastQueryText, Method: "psychic"}, http.StatusBadRequest},
		{"bad strategy", Request{Scenario: "test", Query: fastQueryText, Strategy: "vibes"}, http.StatusBadRequest},
		{"negative topk", Request{Scenario: "test", Query: fastQueryText, TopK: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, err := srv.Do(context.Background(), tc.req)
		var ae *apiError
		if !errors.As(err, &ae) || ae.status != tc.want {
			t.Errorf("%s: err = %v, want apiError status %d", tc.name, err, tc.want)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, 400, Config{})
	body := `{"scenario": "test", "query": "` + fastQueryText + `"}`

	first := doHTTP(t, srv, http.MethodPost, "/v1/query", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first query: status %d: %s", first.Code, first.Body)
	}
	var firstResp Response
	mustDecode(t, first.Body.Bytes(), &firstResp)
	if firstResp.Cached || len(firstResp.Answers) == 0 || firstResp.Query == "" {
		t.Fatalf("first response: %+v", firstResp)
	}

	second := doHTTP(t, srv, http.MethodPost, "/v1/query", body)
	var secondResp Response
	mustDecode(t, second.Body.Bytes(), &secondResp)
	if !secondResp.Cached {
		t.Fatal("second identical request was not served from cache")
	}

	scenarios := doHTTP(t, srv, http.MethodGet, "/v1/scenarios", "")
	if scenarios.Code != http.StatusOK || !strings.Contains(scenarios.Body.String(), `"test"`) {
		t.Fatalf("scenarios: %d %s", scenarios.Code, scenarios.Body)
	}
	if !strings.Contains(scenarios.Body.String(), `"warm_index_builds": 3`) {
		t.Errorf("scenarios missing warm index builds: %s", scenarios.Body)
	}

	health := doHTTP(t, srv, http.MethodGet, "/healthz", "")
	if health.Code != http.StatusOK {
		t.Fatalf("healthz: %d", health.Code)
	}

	metrics := doHTTP(t, srv, http.MethodGet, "/metrics", "")
	var m Metrics
	mustDecode(t, metrics.Body.Bytes(), &m)
	if m.Requests != 2 || m.Evaluations != 1 || m.Cache.Hits != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.IndexLookups == 0 {
		t.Error("metrics: no index lookups recorded for an indexable query")
	}

	if rec := doHTTP(t, srv, http.MethodGet, "/v1/query", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query: %d, want 405", rec.Code)
	}
	if rec := doHTTP(t, srv, http.MethodPost, "/v1/query", `{"scenario": "test"`); rec.Code != http.StatusBadRequest {
		t.Errorf("truncated body: %d, want 400", rec.Code)
	}
	if rec := doHTTP(t, srv, http.MethodPost, "/v1/query", `{"scenario": "nope", "query": "SELECT a FROM T"}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown scenario: %d, want 404", rec.Code)
	}
	if rec := doHTTP(t, srv, http.MethodGet, "/nope", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown route: %d, want 404", rec.Code)
	}
}

func TestHTTPDeadlineMapsTo504(t *testing.T) {
	srv, _ := newTestServer(t, 1000, Config{})
	rec := doHTTP(t, srv, http.MethodPost, "/v1/query",
		`{"scenario": "test", "query": "`+slowQueryText+`", "timeout_ms": 1}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body)
	}
}

func TestHTTPHealthzDuringDrain(t *testing.T) {
	srv, _ := newTestServer(t, 50, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rec := doHTTP(t, srv, http.MethodGet, "/healthz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", rec.Code)
	}
	if rec := doHTTP(t, srv, http.MethodPost, "/v1/query",
		`{"scenario": "test", "query": "`+fastQueryText+`"}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d, want 503", rec.Code)
	}
}

func doHTTP(t *testing.T, srv *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func mustDecode(t *testing.T, data []byte, into any) {
	t.Helper()
	if err := json.Unmarshal(data, into); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
}

func hasAnswerValue(resp *Response, value string) bool {
	for _, a := range resp.Result.Answers {
		for _, v := range a.Tuple {
			if v.Str == value {
				return true
			}
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
