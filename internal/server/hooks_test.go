package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// TestHooksStagesAndSlowQueries covers the request-path observability seams:
// BeforeQuery/AfterQuery fire around every Do (errors included), a request
// over the slow-query threshold is counted, and the per-stage histograms
// record parse/reformulate/execute/merge timings.
func TestHooksStagesAndSlowQueries(t *testing.T) {
	var before, after, failed atomic.Int64
	srv, _ := newTestServer(t, 60, Config{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		BeforeQuery:        func(req *Request) { before.Add(1) },
		AfterQuery: func(req *Request, resp *Response, err error, elapsed time.Duration) {
			after.Add(1)
			if err != nil {
				failed.Add(1)
			}
			if elapsed < 0 {
				t.Errorf("AfterQuery elapsed = %v", elapsed)
			}
		},
	})
	if _, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText, Method: "e-basic"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Do(context.Background(), Request{Scenario: "missing", Query: fastQueryText}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
	if before.Load() != 2 || after.Load() != 2 || failed.Load() != 1 {
		t.Fatalf("hooks: before=%d after=%d failed=%d, want 2/2/1", before.Load(), after.Load(), failed.Load())
	}
	m := srv.Metrics()
	if m.SlowQueries < 1 {
		t.Fatalf("slow_queries = %d, want >= 1", m.SlowQueries)
	}
	for _, stage := range []string{"parse", "reformulate", "execute", "merge"} {
		if m.Stages[stage].Count != 1 {
			t.Fatalf("stage %q count = %d, want 1 (one built prepared query, one evaluation)", stage, m.Stages[stage].Count)
		}
	}
	// A second identical request reuses the prepared query and the answer
	// cache: no new parse, no new evaluation stages.
	if _, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText, Method: "e-basic"}); err != nil {
		t.Fatal(err)
	}
	m = srv.Metrics()
	for _, stage := range []string{"parse", "reformulate", "execute", "merge"} {
		if m.Stages[stage].Count != 1 {
			t.Fatalf("stage %q count after cache hit = %d, want still 1", stage, m.Stages[stage].Count)
		}
	}
}
