package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/probdb/urm/internal/qos"
	"github.com/probdb/urm/internal/store"
)

// LeaseConfig tunes a LeaseTable.
type LeaseConfig struct {
	// Shards is the shard count the table tracks ownership for.
	Shards int
	// Interval is the heartbeat cadence nodes are expected to keep (default
	// 2s).  The coordinator hands it back in every lease response so nodes
	// and coordinator agree without separate configuration.
	Interval time.Duration
	// MissedIntervals is how many consecutive heartbeats a node may miss
	// before its lease expires (default 3): the TTL is Interval×MissedIntervals.
	MissedIntervals int
	// Clock is the injected time source (nil = wall clock).
	Clock qos.Clock
	// Store, when non-nil, persists the table as the "leases" aux blob after
	// every change, so a restarted coordinator resumes with the ownership it
	// had — leases keep aging from their persisted last-seen times rather
	// than resetting, and shards stay routable across a coordinator restart
	// without waiting for a full heartbeat round.
	Store *store.Store
}

func (c LeaseConfig) withDefaults() LeaseConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MissedIntervals <= 0 {
		c.MissedIntervals = 3
	}
	if c.Clock == nil {
		c.Clock = qos.Wall()
	}
	return c
}

// LeaseOwner identifies the node currently owning a shard.
type LeaseOwner struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
}

// leaseNode is one node's lease state.  The JSON tags are the aux-blob
// persistence format.
type leaseNode struct {
	Name       string `json:"node"`
	Addr       string `json:"addr"`
	Shards     []int  `json:"shards"`
	LastSeenNS int64  `json:"last_seen_unix_ns"`
	// Acquired is the node's position in lease seniority: among live nodes
	// claiming the same shard, the one with the smallest Acquired owns it.
	// A node whose lease expired re-acquires at the back of the line, so a
	// promoted standby keeps ownership when the old owner comes back.
	Acquired uint64 `json:"acquired"`
}

// leaseTableState is the persisted form of the table.
type leaseTableState struct {
	Seq   uint64       `json:"seq"`
	Nodes []*leaseNode `json:"nodes"`
}

// LeaseTable tracks lease-based shard ownership from node heartbeats.  A
// node's lease on the shards it claims lives for Interval×MissedIntervals
// past its last heartbeat; when several live nodes claim one shard, the most
// senior lease (earliest acquisition) owns it and the others are standbys
// that take over the moment the owner's lease expires.  Expiry is passive —
// computed against the clock at read time — so there is no background
// goroutine to leak and a FakeClock drives every transition in tests.
type LeaseTable struct {
	cfg LeaseConfig

	mu            sync.Mutex
	nodes         map[string]*leaseNode
	seq           uint64
	persistErrors int64
}

// NewLeaseTable builds a lease table, restoring persisted state when the
// config carries a store.  A corrupt lease blob is discarded rather than
// refusing to start: the table is fully reconstructible from one heartbeat
// round, and the next persist replaces the damaged blob.
func NewLeaseTable(cfg LeaseConfig) (*LeaseTable, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("lease table: shard count %d < 1", cfg.Shards)
	}
	lt := &LeaseTable{cfg: cfg, nodes: make(map[string]*leaseNode)}
	if cfg.Store != nil {
		data, err := cfg.Store.LoadAux("leases")
		switch {
		case errors.Is(err, store.ErrAuxNotFound), errors.Is(err, store.ErrCorrupt):
			// Nothing persisted (or nothing usable): start empty.
		case err != nil:
			return nil, err
		default:
			var st leaseTableState
			if jerr := json.Unmarshal(data, &st); jerr == nil {
				lt.seq = st.Seq
				for _, n := range st.Nodes {
					if n.Name != "" {
						lt.nodes[n.Name] = n
					}
				}
			}
		}
	}
	return lt, nil
}

// Interval returns the configured heartbeat interval.
func (lt *LeaseTable) Interval() time.Duration { return lt.cfg.Interval }

// TTL returns how long a lease lives past its last heartbeat.
func (lt *LeaseTable) TTL() time.Duration {
	return lt.cfg.Interval * time.Duration(lt.cfg.MissedIntervals)
}

// Heartbeat records one node heartbeat: the node claims the given shards and
// its lease is renewed from the table's clock.  A node heartbeating after its
// lease expired rejoins at the back of the seniority line, so it does not
// snatch shards back from a standby that was promoted in the meantime.
func (lt *LeaseTable) Heartbeat(node, addr string, shards []int) error {
	if node == "" {
		return fmt.Errorf("lease table: empty node name")
	}
	if addr == "" {
		return fmt.Errorf("lease table: node %q: empty address", node)
	}
	for _, sh := range shards {
		if sh < 0 || sh >= lt.cfg.Shards {
			return fmt.Errorf("lease table: node %q claims shard %d, valid range [0,%d)", node, sh, lt.cfg.Shards)
		}
	}
	now := lt.cfg.Clock.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	n := lt.nodes[node]
	if n == nil {
		lt.seq++
		n = &leaseNode{Name: node, Acquired: lt.seq}
		lt.nodes[node] = n
	} else if lt.expiredLocked(n, now) {
		lt.seq++
		n.Acquired = lt.seq
	}
	n.Addr = addr
	n.Shards = append(n.Shards[:0], shards...)
	n.LastSeenNS = now.UnixNano()
	lt.persistLocked()
	return nil
}

func (lt *LeaseTable) expiredLocked(n *leaseNode, now time.Time) bool {
	return now.Sub(time.Unix(0, n.LastSeenNS)) > lt.TTL()
}

func (lt *LeaseTable) persistLocked() {
	if lt.cfg.Store == nil {
		return
	}
	st := leaseTableState{Seq: lt.seq, Nodes: make([]*leaseNode, 0, len(lt.nodes))}
	for _, n := range lt.nodes {
		st.Nodes = append(st.Nodes, n)
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].Acquired < st.Nodes[j].Acquired })
	data, err := json.Marshal(st)
	if err == nil {
		err = lt.cfg.Store.SaveAux("leases", data)
	}
	if err != nil {
		lt.persistErrors++
	}
}

// PersistErrors reports how many lease-table changes failed to reach disk.
func (lt *LeaseTable) PersistErrors() int64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.persistErrors
}

// Owner resolves the node currently owning a shard: the live claimant with
// the most senior lease.  ok is false while no live node claims the shard.
func (lt *LeaseTable) Owner(shardIndex int) (LeaseOwner, bool) {
	now := lt.cfg.Clock.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	best := lt.ownerLocked(shardIndex, now)
	if best == nil {
		return LeaseOwner{}, false
	}
	return LeaseOwner{Node: best.Name, Addr: best.Addr}, true
}

func (lt *LeaseTable) ownerLocked(shardIndex int, now time.Time) *leaseNode {
	var best *leaseNode
	for _, n := range lt.nodes {
		if lt.expiredLocked(n, now) {
			continue
		}
		claims := false
		for _, sh := range n.Shards {
			if sh == shardIndex {
				claims = true
				break
			}
		}
		if claims && (best == nil || n.Acquired < best.Acquired) {
			best = n
		}
	}
	return best
}

// Owners resolves every shard's current owner; shards with no live claimant
// are absent from the map.
func (lt *LeaseTable) Owners() map[int]LeaseOwner {
	now := lt.cfg.Clock.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make(map[int]LeaseOwner, lt.cfg.Shards)
	for sh := 0; sh < lt.cfg.Shards; sh++ {
		if n := lt.ownerLocked(sh, now); n != nil {
			out[sh] = LeaseOwner{Node: n.Name, Addr: n.Addr}
		}
	}
	return out
}

// LeaseNodeStatus is one node's lease state in a snapshot.
type LeaseNodeStatus struct {
	Node   string  `json:"node"`
	Addr   string  `json:"addr"`
	Shards []int   `json:"shards"`
	AgeMS  float64 `json:"age_ms"`
	Live   bool    `json:"live"`
}

// LeaseSnapshot is the JSON form of the table served under /metrics.
type LeaseSnapshot struct {
	Shards     int                   `json:"shards"`
	IntervalMS float64               `json:"interval_ms"`
	TTLMS      float64               `json:"ttl_ms"`
	Owners     map[string]LeaseOwner `json:"owners"` // key: shard index
	Unowned    []int                 `json:"unowned,omitempty"`
	Nodes      []LeaseNodeStatus     `json:"nodes"`
}

// Snapshot returns a point-in-time view of the table.
func (lt *LeaseTable) Snapshot() LeaseSnapshot {
	now := lt.cfg.Clock.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	snap := LeaseSnapshot{
		Shards:     lt.cfg.Shards,
		IntervalMS: float64(lt.cfg.Interval.Microseconds()) / 1000,
		TTLMS:      float64(lt.TTL().Microseconds()) / 1000,
		Owners:     make(map[string]LeaseOwner, lt.cfg.Shards),
	}
	for sh := 0; sh < lt.cfg.Shards; sh++ {
		if n := lt.ownerLocked(sh, now); n != nil {
			snap.Owners[strconv.Itoa(sh)] = LeaseOwner{Node: n.Name, Addr: n.Addr}
		} else {
			snap.Unowned = append(snap.Unowned, sh)
		}
	}
	for _, n := range lt.nodes {
		snap.Nodes = append(snap.Nodes, LeaseNodeStatus{
			Node:   n.Name,
			Addr:   n.Addr,
			Shards: append([]int(nil), n.Shards...),
			AgeMS:  float64(now.Sub(time.Unix(0, n.LastSeenNS)).Microseconds()) / 1000,
			Live:   !lt.expiredLocked(n, now),
		})
	}
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].Node < snap.Nodes[j].Node })
	return snap
}
