package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/store"
)

// allMethods is every evaluation algorithm; restart tests assert bit-identical
// answers under each one plus top-k.
var allMethods = []core.Method{
	core.MethodBasic, core.MethodEBasic, core.MethodEMQO,
	core.MethodQSharing, core.MethodOSharing,
}

// custRow builds one Customer row for the datagen source schema
// (c_custkey, c_name, c_address, c_phone, c_mobile, c_nationkey, c_mktsegment).
func custRow(key int64, phone string) engine.Tuple {
	return engine.Tuple{
		engine.I(key),
		engine.S(fmt.Sprintf("cust-%d", key)),
		engine.S("1 Restart Way"),
		engine.S(phone),
		engine.S(phone),
		engine.I(key % 25),
		engine.S("BUILDING"),
	}
}

// openStoreRegistry opens a store on fs and wraps it in a registry.
func openStoreRegistry(t *testing.T, fs *store.MemFS, snapshotEvery int) *Registry {
	t.Helper()
	st, err := store.Open("data", store.Options{FS: fs, Fsync: true, SnapshotEvery: snapshotEvery})
	if err != nil {
		t.Fatal(err)
	}
	return NewRegistryWithStore(st)
}

// sameScenarioAnswers evaluates q on both scenarios under every method and
// top-k and asserts bit-identical results throughout.
func sameScenarioAnswers(t *testing.T, label string, q *query.Query, want, got *Scenario) {
	t.Helper()
	ctx := context.Background()
	for _, m := range allMethods {
		w, err := want.Evaluate(ctx, q, 0, core.Options{Method: m})
		if err != nil {
			t.Fatalf("%s/%v: reference eval: %v", label, m, err)
		}
		g, err := got.Evaluate(ctx, q, 0, core.Options{Method: m})
		if err != nil {
			t.Fatalf("%s/%v: recovered eval: %v", label, m, err)
		}
		sameResult(t, fmt.Sprintf("%s/%v", label, m), w, g)
	}
	w, err := want.Evaluate(ctx, q, 3, core.Options{})
	if err != nil {
		t.Fatalf("%s/topk: reference eval: %v", label, err)
	}
	g, err := got.Evaluate(ctx, q, 3, core.Options{})
	if err != nil {
		t.Fatalf("%s/topk: recovered eval: %v", label, err)
	}
	sameResult(t, label+"/topk", w, g)
}

// TestRestartRoundTrip is the restart property test: register the fixture
// scenario, a datagen Excel scenario, and a randomized scenario against a
// durable store; interleave a seeded random stream of AppendRow and Bump
// mutations (with snapshots triggering every few records); then rebuild a
// fresh registry from the durable image and assert epochs match and answers
// under all five methods plus top-k are bit-identical to the live registry.
func TestRestartRoundTrip(t *testing.T) {
	ctx := context.Background()
	fs := store.NewMemFS()
	reg := openStoreRegistry(t, fs, 4)

	fixture, err := reg.Register(ctx, "fixture", serveTargetSchema(), serveInstance(60), serveMappings(),
		RegisterOptions{TargetLabel: "Test"})
	if err != nil {
		t.Fatal(err)
	}

	ds, err := datagen.NewDataset(datagen.DatasetOptions{
		Target: datagen.TargetExcel, NumMappings: 6, SizeMB: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	excel, err := reg.Register(ctx, "excel", ds.Target, ds.DB, ds.MappingsPrefix(6),
		RegisterOptions{TargetLabel: string(ds.TargetName)})
	if err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(1729))
	randDB := engine.NewInstance("R")
	randRel := engine.NewRelation("S", []string{"x", "y", "z"})
	for i := 0; i < 30; i++ {
		randRel.MustAppend(tuple(fmt.Sprintf("r%02d", rnd.Intn(20)), int64(rnd.Intn(23)), int64(rnd.Intn(17))))
	}
	randDB.AddRelation(randRel)
	random, err := reg.Register(ctx, "random", serveTargetSchema(), randDB, serveMappings(),
		RegisterOptions{TargetLabel: "Random"})
	if err != nil {
		t.Fatal(err)
	}

	// Interleaved mutation stream.  Enough appends that every scenario
	// crosses the SnapshotEvery=4 threshold several times, so recovery
	// exercises snapshot-plus-tail replay rather than pure WAL replay.
	for i := 0; i < 60; i++ {
		switch rnd.Intn(10) {
		case 0:
			fixture.Bump()
		case 1:
			excel.Bump()
		case 2, 3, 4:
			row := tuple(fmt.Sprintf("k%02d", rnd.Intn(40)), int64(rnd.Intn(23)), int64(rnd.Intn(17)))
			if err := fixture.AppendRow("S", row); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		case 5, 6, 7:
			phone := "335-1736"
			if rnd.Intn(2) == 0 {
				phone = fmt.Sprintf("555-%04d", rnd.Intn(10000))
			}
			if err := excel.AppendRow("Customer", custRow(int64(10000+i), phone)); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		default:
			row := tuple(fmt.Sprintf("r%02d", rnd.Intn(20)), int64(rnd.Intn(23)), int64(rnd.Intn(17)))
			if err := random.AppendRow("S", row); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
	}
	for _, sc := range []*Scenario{fixture, excel, random} {
		if err := sc.PersistErr(); err != nil {
			t.Fatalf("%s: persistence error: %v", sc.Name(), err)
		}
	}

	// Restart: rebuild a registry from the durable image alone.
	reg2 := openStoreRegistry(t, fs.Clone(), 4)
	stats, err := reg2.Recover(ctx, RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scenarios != 3 || len(stats.Quarantined) != 0 {
		t.Fatalf("recovered %d scenarios, quarantined %v; want 3 and none", stats.Scenarios, stats.Quarantined)
	}
	if int64(stats.ReplayedRecords) != reg2.ReplayedRecords() {
		t.Fatalf("stats report %d replayed records, registry counter says %d", stats.ReplayedRecords, reg2.ReplayedRecords())
	}

	fixtureQ, err := fixture.Parse("restart-fixture", fastQueryText)
	if err != nil {
		t.Fatal(err)
	}
	excelQ := datagen.MustWorkloadQuery(1)
	for _, tc := range []struct {
		name string
		q    *query.Query
		want *Scenario
	}{
		{"fixture", fixtureQ, fixture},
		{"excel", excelQ, excel},
		{"random", fixtureQ, random},
	} {
		got, ok := reg2.Get(tc.name)
		if !ok {
			t.Fatalf("scenario %q lost across restart", tc.name)
		}
		if got.Epoch() != tc.want.Epoch() {
			t.Fatalf("%s: recovered epoch %d, want %d", tc.name, got.Epoch(), tc.want.Epoch())
		}
		if got.StaleFloor() != tc.want.StaleFloor() {
			t.Fatalf("%s: recovered stale floor %d, want %d", tc.name, got.StaleFloor(), tc.want.StaleFloor())
		}
		if got.NumRows() != tc.want.NumRows() {
			t.Fatalf("%s: recovered %d rows, want %d", tc.name, got.NumRows(), tc.want.NumRows())
		}
		sameScenarioAnswers(t, tc.name, tc.q, tc.want, got)
	}
}

// TestAppendRowSnapshotRace pins the satellite fix: AppendRow racing a
// concurrent snapshot must never persist a row under a pre-bump epoch.  Run
// with -race; afterwards recovery must reproduce the live state exactly.
func TestAppendRowSnapshotRace(t *testing.T) {
	ctx := context.Background()
	fs := store.NewMemFS()
	reg := openStoreRegistry(t, fs, -1)
	sc, err := reg.Register(ctx, "test", serveTargetSchema(), serveInstance(40), serveMappings(),
		RegisterOptions{TargetLabel: "Test"})
	if err != nil {
		t.Fatal(err)
	}

	const appends = 64
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := sc.AppendRow("S", tuple(fmt.Sprintf("race-%02d", i), int64(i%23), int64(i%17))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			if err := sc.SnapshotNow(); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		q, err := sc.Parse("race-read", fastQueryText)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 8; i++ {
			if _, err := sc.Evaluate(ctx, q, 0, core.Options{}); err != nil {
				t.Errorf("eval %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	reg2 := openStoreRegistry(t, fs.Clone(), -1)
	if _, err := reg2.Recover(ctx, RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	got, ok := reg2.Get("test")
	if !ok {
		t.Fatal("scenario lost across restart")
	}
	if got.Epoch() != sc.Epoch() {
		t.Fatalf("recovered epoch %d, want %d", got.Epoch(), sc.Epoch())
	}
	if got.NumRows() != 40+appends {
		t.Fatalf("recovered %d rows, want %d", got.NumRows(), 40+appends)
	}
}

// TestQuarantinedScenarioGets503 corrupts a scenario's WAL on disk and
// asserts the recovered server keeps running, answers requests for that
// scenario with 503/ErrQuarantined, counts it in /metrics, and refuses to
// re-register the name.
func TestQuarantinedScenarioGets503(t *testing.T) {
	ctx := context.Background()
	fs := store.NewMemFS()
	reg := openStoreRegistry(t, fs, -1)
	if _, err := reg.Register(ctx, "test", serveTargetSchema(), serveInstance(20), serveMappings(),
		RegisterOptions{TargetLabel: "Test"}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(ctx, "healthy", serveTargetSchema(), serveInstance(10), serveMappings(),
		RegisterOptions{TargetLabel: "Test"}); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the register record's payload: recovery must see a
	// checksum mismatch, not a torn tail.
	disk := fs.Clone()
	disk.Corrupt("data/scenarios/test/wal.log", 20, 0xFF)

	reg2 := openStoreRegistry(t, disk, -1)
	stats, err := reg2.Recover(ctx, RegisterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scenarios != 1 || len(stats.Quarantined) != 1 || stats.Quarantined[0] != "test" {
		t.Fatalf("recovery = %d scenarios, quarantined %v; want healthy alone and test quarantined",
			stats.Scenarios, stats.Quarantined)
	}
	qerr, ok := reg2.QuarantineReason("test")
	if !ok || !errors.Is(qerr, store.ErrCorrupt) {
		t.Fatalf("quarantine reason = %v, %v; want ErrCorrupt", qerr, ok)
	}

	srv := New(reg2, Config{})
	if _, err := srv.Do(ctx, Request{Scenario: "healthy", Query: fastQueryText}); err != nil {
		t.Fatalf("healthy scenario must keep serving: %v", err)
	}
	_, err = srv.Do(ctx, Request{Scenario: "test", Query: fastQueryText})
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined scenario error = %v, want ErrQuarantined", err)
	}
	var ae *apiError
	if !errors.As(err, &ae) || ae.status != 503 {
		t.Fatalf("quarantined scenario status = %v, want 503", err)
	}

	m := srv.snapshotMetrics()
	if m.StoreQuarantined != 1 {
		t.Fatalf("store_quarantined = %d, want 1", m.StoreQuarantined)
	}
	if m.StoreRecoveries != 1 {
		t.Fatalf("store_recoveries = %d, want 1", m.StoreRecoveries)
	}
	if m.Unavailable == 0 {
		t.Fatal("quarantined request not counted as unavailable")
	}

	// Re-registering a quarantined name must be refused: silently overwriting
	// would destroy the evidence an operator needs.
	if _, err := reg2.Register(ctx, "test", serveTargetSchema(), serveInstance(5), serveMappings(),
		RegisterOptions{}); err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("re-register of quarantined name = %v, want quarantine refusal", err)
	}
}

// TestRecoveringGate verifies the boot-time readiness gate: while recovering,
// /healthz reports "recovering" with 503 and queries are refused with
// ErrRecovering; clearing the gate restores normal service.
func TestRecoveringGate(t *testing.T) {
	srv, _ := newTestServer(t, 10, Config{})
	srv.SetRecovering(true)

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "recovering") {
		t.Fatalf("healthz while recovering = %d %q", rec.Code, rec.Body.String())
	}

	_, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText})
	if !errors.Is(err, ErrRecovering) {
		t.Fatalf("query while recovering = %v, want ErrRecovering", err)
	}

	srv.SetRecovering(false)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz after recovery = %d", rec.Code)
	}
	if _, err := srv.Do(context.Background(), Request{Scenario: "test", Query: fastQueryText}); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}

// TestAppendAndBumpEndpoints drives the mutation endpoints over HTTP: a valid
// append advances the epoch and row count, type errors are 400s, unknown
// scenarios are 404s, and a bump invalidates via a fresh epoch.
func TestAppendAndBumpEndpoints(t *testing.T) {
	srv, sc := newTestServer(t, 10, Config{})
	post := func(path, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		srv.ServeHTTP(rec, req)
		return rec
	}

	epoch0 := sc.Epoch()
	rec := post("/v1/append", `{"scenario":"test","relation":"S","values":["via-http",3,1.5]}`)
	if rec.Code != 200 {
		t.Fatalf("append = %d %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Epoch uint64 `json:"epoch"`
		Rows  int    `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != epoch0+1 || resp.Rows != 11 {
		t.Fatalf("append response epoch=%d rows=%d, want epoch=%d rows=11", resp.Epoch, resp.Rows, epoch0+1)
	}
	if sc.Epoch() != epoch0+1 {
		t.Fatalf("scenario epoch %d, want %d", sc.Epoch(), epoch0+1)
	}

	if rec := post("/v1/append", `{"scenario":"test","relation":"S","values":["too","few"]}`); rec.Code != 400 {
		t.Fatalf("arity error = %d %q", rec.Code, rec.Body.String())
	}
	if rec := post("/v1/append", `{"scenario":"test","relation":"S","values":[true,1,2]}`); rec.Code != 400 {
		t.Fatalf("bool value = %d %q", rec.Code, rec.Body.String())
	}
	if rec := post("/v1/append", `{"scenario":"nope","relation":"S","values":["x",1,2]}`); rec.Code != 404 {
		t.Fatalf("unknown scenario = %d %q", rec.Code, rec.Body.String())
	}

	rec = post("/v1/bump", `{"scenario":"test"}`)
	if rec.Code != 200 {
		t.Fatalf("bump = %d %q", rec.Code, rec.Body.String())
	}
	if sc.Epoch() != epoch0+2 {
		t.Fatalf("epoch after bump %d, want %d", sc.Epoch(), epoch0+2)
	}

	m := srv.snapshotMetrics()
	if m.Appends != 1 {
		t.Fatalf("appends metric = %d, want 1", m.Appends)
	}
}
