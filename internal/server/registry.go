// Package server is the query service layer: a registry of named scenarios, a
// byte-budgeted answer cache with singleflight semantics, and an HTTP JSON API
// with admission control.  It turns the library — one evaluation per call, one
// caller per process — into a long-lived system that amortizes work across
// requests and users, the same axis the paper amortizes across mappings.
//
// The sharing story stacks three layers deep:
//
//   - within one evaluation, the methods share work across mappings
//     (q-sharing / o-sharing, internal/core);
//   - across evaluations of one instance, the base-relation index subsystem
//     shares per-column hash indexes (internal/engine); registration warms
//     them so first queries do not pay construction;
//   - across requests, the answer cache shares whole results: N concurrent
//     identical requests cost exactly one evaluation (singleflight), repeated
//     requests cost none.
package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
	"github.com/probdb/urm/internal/store"
)

// Scenario is one registered, named evaluation environment: a source instance,
// a target schema and a possible-mapping set, plus a monotonically increasing
// epoch.  Query results are cached under (scenario, epoch, ...); any mutation
// of the underlying data must bump the epoch, which makes every cached answer
// for the old epoch unreachable.
//
// Mutate only through AppendRow (or Bump after out-of-band changes).  The
// engine's contract makes relation data immutable while an evaluation reads
// it, so AppendRow excludes in-flight evaluations: Evaluate holds mu as a
// reader, AppendRow as a writer.  The epoch bump then keeps *cached* answers
// honest; the lock keeps the memory safe.
type Scenario struct {
	name   string
	target *schema.Schema
	label  string
	db     *engine.Instance
	maps   schema.MappingSet

	epoch atomic.Uint64
	// staleFloor is the oldest epoch whose cached answers may still be served
	// as *stale* under overload.  AppendRow leaves it alone — an append-only
	// change keeps every earlier answer a correct answer over a prefix of the
	// data — while Bump raises it to the new epoch, because an out-of-band
	// mutation may have rewritten history and old answers with it.
	staleFloor atomic.Uint64
	// mu is the evaluation/mutation lock: evaluations (many, long) share it
	// as readers, AppendRow (rare, microseconds) takes it exclusively.
	// Writer acquisition is bounded by the request deadlines of the
	// in-flight evaluations ahead of it.
	mu sync.RWMutex

	// prepMu guards the prepared-query cache: compiled front halves keyed by
	// raw request text and by canonical SQL, both scoped to the epoch they
	// were built under.  A hit on the raw text skips even the parse; a hit on
	// the canonical form (a differently spelled but equivalent text) skips
	// reformulation and plan compilation.
	prepMu  sync.Mutex
	prepped map[string]*preparedEntry // raw query text -> entry
	byCanon map[string]*preparedEntry // canonical SQL -> entry

	// obs receives mutation notifications (appends, bumps) after they commit
	// in memory; the server uses it to drive the delta reconciler and the
	// mutation metrics.  Atomic because SetObserver may race in-flight appends.
	obs atomic.Pointer[Observer]

	// persistMu makes {in-memory mutation, epoch bump, WAL record} one atomic
	// unit with respect to snapshot capture.  Without it, a snapshot running
	// between AppendRow's epoch bump and its WAL append could capture the new
	// row under the new epoch while the row's own WAL record lands in the
	// rotated (truncated) log — or, worse, a row could be logged under the
	// pre-bump epoch and skipped by replay.  Lock order: persistMu before mu;
	// evaluations take only mu (read) and are never blocked by persistence.
	persistMu sync.Mutex
	// log is the scenario's durable WAL, nil when the registry has no store.
	log *store.Log

	warmBuilds int
}

// Observer receives scenario mutation notifications after the in-memory
// change committed (and before persistence, whose failures do not undo the
// change).  Implementations must be fast and non-blocking: appends call
// OnAppend while no locks are held, but on the mutation path.
type Observer interface {
	// OnAppend reports rows appended to a scenario and how many shared
	// indexes were extended in place to cover them.
	OnAppend(scenario string, rows, extendedIndexes int)
	// OnBump reports an explicit epoch invalidation.
	OnBump(scenario string)
	// OnDrop reports a scenario removal.
	OnDrop(scenario string)
}

func (s *Scenario) notifyAppend(rows, extended int) {
	if p := s.obs.Load(); p != nil {
		(*p).OnAppend(s.name, rows, extended)
	}
}

// preparedEntry is one compiled query: the front half (reformulations, plans,
// partitions) of every evaluation method, valid for one (scenario, epoch).
type preparedEntry struct {
	epoch     uint64
	canonical string
	prep      *core.Prepared
}

// preparedCacheCap bounds the prepared-query cache.  The cache is a
// performance aid, not an accounting system: when an ad-hoc workload pushes
// past the cap, both maps are flushed wholesale — re-preparing is milliseconds
// — rather than maintaining LRU chains on the hot path.
const preparedCacheCap = 1024

// Name returns the registry key of the scenario.
func (s *Scenario) Name() string { return s.name }

// TargetLabel returns the human-readable target schema label ("Excel", ...).
func (s *Scenario) TargetLabel() string { return s.label }

// Target returns the target schema queries are parsed against.
func (s *Scenario) Target() *schema.Schema { return s.target }

// DB returns the source instance.
func (s *Scenario) DB() *engine.Instance { return s.db }

// Mappings returns the possible-mapping set.
func (s *Scenario) Mappings() schema.MappingSet { return s.maps }

// Epoch returns the current epoch.  Cached answers are keyed by it.
func (s *Scenario) Epoch() uint64 { return s.epoch.Load() }

// Bump advances the epoch, invalidating every cached answer for the scenario.
// Call it after any out-of-band mutation of the instance or mapping set.  The
// stale-serve floor rises with it: answers from before an out-of-band change
// must never reappear, not even flagged stale.
//
// With a store attached the bump is logged; a persistence failure does not
// block the bump (the in-memory invalidation must win) but is sticky on the
// log — check PersistErr or the store_persist_errors metric.
func (s *Scenario) Bump() uint64 {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	e := s.epoch.Add(1)
	s.staleFloor.Store(e)
	if p := s.obs.Load(); p != nil {
		(*p).OnBump(s.name)
	}
	if s.log != nil {
		if err := s.log.Bump(e, e); err == nil {
			s.maybeSnapshotLocked()
		}
	}
	return e
}

// PersistErr returns the scenario's sticky persistence failure, if any.  A
// non-nil value means some acknowledged-in-memory mutation after the failure
// point is not durable; served answers remain correct for this process's
// lifetime.
func (s *Scenario) PersistErr() error {
	if s.log == nil {
		return nil
	}
	return s.log.Err()
}

// StaleFloor returns the oldest epoch eligible for stale-answer degradation.
// Epochs below it were invalidated by Bump (destructive change); epochs at or
// above it differ from the present only by appends.
func (s *Scenario) StaleFloor() uint64 { return s.staleFloor.Load() }

// AppendRow appends a tuple to the named base relation and bumps the epoch.
// It waits for in-flight evaluations to finish (and blocks new ones for the
// microseconds the append takes), because engine relations must not mutate
// under a running scan.  The engine's own index invalidation
// (Relation.Append's version counter) handles the per-column indexes; the
// epoch bump handles the answer cache.
// With a store attached, the row is logged under the epoch its in-memory
// append committed at, and the whole {append, bump, log} sequence happens
// under persistMu so a concurrent snapshot sees either none or all of it.  A
// persistence failure is returned (and sticky): the row is live in memory but
// will not survive a restart.
func (s *Scenario) AppendRow(relation string, t engine.Tuple) error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.mu.Lock()
	rel := s.db.Relation(relation)
	if rel == nil {
		s.mu.Unlock()
		return fmt.Errorf("scenario %s: unknown relation %q", s.name, relation)
	}
	oldLen, oldVer := len(rel.Rows), rel.Version()
	if err := rel.Append(t); err != nil {
		s.mu.Unlock()
		return err
	}
	epoch := s.epoch.Add(1)
	extended := 0
	if cache := s.db.Indexes(); cache != nil {
		extended = cache.AppendInPlace(context.Background(), rel, oldLen, oldVer)
	}
	s.mu.Unlock()
	s.notifyAppend(1, extended)
	if s.log != nil {
		if err := s.log.AppendRow(relation, t, epoch); err != nil {
			return fmt.Errorf("scenario %s: row live in memory but not persisted: %w", s.name, err)
		}
		s.maybeSnapshotLocked()
	}
	return nil
}

// AppendRows appends a whole batch of tuples to the named base relation as
// one atomic mutation: one evaluation-lock acquisition, one epoch bump, one
// WAL record, one fsync — the durability cost of the batch is that of a
// single row, which is what makes append-heavy workloads affordable (fsync
// dominates single-row appends by nearly two orders of magnitude).  Shared
// per-column indexes are extended in place to cover the new rows, so the
// batch invalidates neither the indexes nor — through the delta reconciler —
// maintained cached answers.
func (s *Scenario) AppendRows(relation string, rows []engine.Tuple) error {
	if len(rows) == 0 {
		return fmt.Errorf("scenario %s: empty append batch", s.name)
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.mu.Lock()
	rel := s.db.Relation(relation)
	if rel == nil {
		s.mu.Unlock()
		return fmt.Errorf("scenario %s: unknown relation %q", s.name, relation)
	}
	oldLen, oldVer := len(rel.Rows), rel.Version()
	if err := rel.AppendAll(rows); err != nil {
		s.mu.Unlock()
		return err
	}
	epoch := s.epoch.Add(1)
	extended := 0
	if cache := s.db.Indexes(); cache != nil {
		extended = cache.AppendInPlace(context.Background(), rel, oldLen, oldVer)
	}
	s.mu.Unlock()
	s.notifyAppend(len(rows), extended)
	if s.log != nil {
		if err := s.log.AppendRows(relation, rows, epoch); err != nil {
			return fmt.Errorf("scenario %s: rows live in memory but not persisted: %w", s.name, err)
		}
		s.maybeSnapshotLocked()
	}
	return nil
}

// View runs f under the scenario's evaluation lock as a reader, passing the
// instance and the epoch the locked state corresponds to.  The delta
// reconciler's convergence passes run through here: holding the read lock for
// the whole pass keeps the relation data, the epoch, and the maintained
// states' covered row counts mutually consistent.
func (s *Scenario) View(f func(db *engine.Instance, epoch uint64) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return f(s.db, s.epoch.Load())
}

// maybeSnapshotLocked snapshots when the WAL has outgrown its cadence.
// Callers hold persistMu.  A snapshot failure is not fatal here: the WAL
// still covers the full state, and the store counts the error.
func (s *Scenario) maybeSnapshotLocked() {
	if s.log.ShouldSnapshot() {
		_ = s.log.Snapshot(s.captureStateLocked())
	}
}

// SnapshotNow forces a durable snapshot (and WAL truncation) immediately.
func (s *Scenario) SnapshotNow() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Snapshot(s.captureStateLocked())
}

// captureStateLocked builds the durable image of the scenario.  Callers hold
// persistMu, which excludes every mutation; the brief read lock additionally
// orders the row-slice reads against the memory model.  Tuples are shared,
// not copied — they are immutable by the engine's contract.
func (s *Scenario) captureStateLocked() *store.ScenarioState {
	st := &store.ScenarioState{
		Name:       s.name,
		Label:      s.label,
		Epoch:      s.epoch.Load(),
		StaleFloor: s.staleFloor.Load(),
		Target:     s.target,
		Mappings:   s.maps,
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, name := range s.db.RelationNames() {
		rel := s.db.Relation(name)
		st.Relations = append(st.Relations, store.RelationState{
			Name:    rel.Name,
			Columns: append([]string(nil), rel.Columns...),
			Rows:    append([]engine.Tuple(nil), rel.Rows...),
		})
	}
	return st
}

// Evaluate runs one evaluation while holding the scenario's evaluation lock
// as a reader, so AppendRow cannot mutate relation data mid-scan.  Evaluator()
// remains available for callers that manage mutation exclusion themselves.
func (s *Scenario) Evaluate(ctx context.Context, q *query.Query, topK int, opts core.Options) (*core.Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ev := core.NewEvaluator(s.db, s.maps)
	if topK > 0 {
		return ev.EvaluateTopKContext(ctx, q, topK, opts)
	}
	return ev.EvaluateContext(ctx, q, opts)
}

// Prepare returns the compiled form of the query text at the current epoch,
// parsing, reformulating through every mapping and compiling plans only on
// first sight of the text.  reused reports whether a cached entry was served
// (by raw text, skipping even the parse, or by canonical SQL).  Entries from
// older epochs are rebuilt, so a prepared execution never mixes plans with a
// mapping set or schema the epoch bump left behind; a Prepare racing a bump
// behaves like the answer cache — it keys under the epoch it read.
func (s *Scenario) Prepare(text string) (prep *core.Prepared, canonical string, reused bool, err error) {
	epoch := s.Epoch()
	s.prepMu.Lock()
	if e, ok := s.prepped[text]; ok && e.epoch == epoch {
		s.prepMu.Unlock()
		return e.prep, e.canonical, true, nil
	}
	s.prepMu.Unlock()

	// Parse outside the lock; the per-method reformulation inside
	// core.Prepared is lazy, so building the entry itself is cheap.
	q, err := query.Parse("q", s.target, text)
	if err != nil {
		return nil, "", false, err
	}
	canonical = q.Fingerprint()

	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	if e, ok := s.byCanon[canonical]; ok && e.epoch == epoch {
		s.rememberLocked(text, e)
		return e.prep, e.canonical, true, nil
	}
	p, err := core.NewEvaluator(s.db, s.maps).Prepare(q)
	if err != nil {
		return nil, "", false, err
	}
	e := &preparedEntry{epoch: epoch, canonical: canonical, prep: p}
	s.rememberLocked(text, e)
	return e.prep, e.canonical, false, nil
}

// rememberLocked stores the entry under both keys, flushing the cache
// wholesale at the cap.  Callers hold prepMu.
func (s *Scenario) rememberLocked(text string, e *preparedEntry) {
	if s.prepped == nil || len(s.prepped) >= preparedCacheCap {
		s.prepped = make(map[string]*preparedEntry)
		s.byCanon = make(map[string]*preparedEntry)
	}
	s.prepped[text] = e
	s.byCanon[e.canonical] = e
}

// EvaluatePrepared runs a prepared query while holding the scenario's
// evaluation lock as a reader, so AppendRow cannot mutate relation data
// mid-scan.  This is the evaluation path the server uses.
func (s *Scenario) EvaluatePrepared(ctx context.Context, prep *core.Prepared, topK int, opts core.Options) (*core.Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if topK > 0 {
		return prep.ExecuteTopKContext(ctx, topK, opts)
	}
	return prep.ExecuteContext(ctx, opts)
}

// EvaluateDelta evaluates a prepared query through the delta-maintainable
// path: it builds the delta plan (failing fast with
// core.ErrNotDeltaMaintainable for plan shapes and methods the delta cannot
// maintain), runs the full evaluation once, and returns the result together
// with the maintained state and the epoch the evaluation saw — everything the
// reconciler needs to enroll the entry.  Answers are bit-identical to
// EvaluatePrepared's for the same options.
func (s *Scenario) EvaluateDelta(ctx context.Context, prep *core.Prepared, opts core.Options) (*core.Result, *core.DeltaState, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ec := exec.NewContext(ctx, opts.Parallelism)
	if opts.BatchSize != 0 {
		ec = ec.WithBatch(opts.BatchSize)
	}
	dp, err := core.PrepareDelta(prep, ec, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	start := time.Now()
	st, err := dp.EvaluateFull(ec, s.db)
	if err != nil {
		return nil, nil, 0, err
	}
	res := st.Result()
	res.TotalTime = time.Since(start)
	return res, st, s.epoch.Load(), nil
}

// Parse parses an ad-hoc query against the scenario's target schema.
func (s *Scenario) Parse(name, text string) (*query.Query, error) {
	return query.Parse(name, s.target, text)
}

// Evaluator returns a fresh evaluator over the scenario's instance and
// mappings; evaluators are stateless, so one per request is free.
func (s *Scenario) Evaluator() *core.Evaluator {
	return core.NewEvaluator(s.db, s.maps)
}

// WarmIndexBuilds reports how many base-relation indexes registration built.
func (s *Scenario) WarmIndexBuilds() int { return s.warmBuilds }

// NumRows returns the total row count of the source instance.
func (s *Scenario) NumRows() int { return s.db.NumRows() }

// Registry holds the scenarios a server can answer queries against.  It is
// safe for concurrent use; registration is expected at startup but allowed at
// any time.  With a store attached (NewRegistryWithStore), registrations and
// mutations are written through to disk and Recover rebuilds the registry
// after a restart.
type Registry struct {
	mu          sync.RWMutex
	scenarios   map[string]*Scenario
	quarantined map[string]error // scenario name -> why recovery refused it

	st *store.Store

	// obs is propagated to every scenario (existing and future) by
	// SetObserver; guarded by mu.
	obs Observer

	recoveries atomic.Int64 // scenarios recovered from disk
	replayed   atomic.Int64 // WAL records replayed on top of snapshots
}

// SetObserver installs the mutation observer on the registry and every
// registered scenario; scenarios registered or recovered later inherit it.
// Passing nil clears it.
func (r *Registry) SetObserver(o Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = o
	for _, s := range r.scenarios {
		if o == nil {
			s.obs.Store(nil)
		} else {
			s.obs.Store(&o)
		}
	}
}

// NewRegistry returns an empty, memory-only registry.
func NewRegistry() *Registry {
	return &Registry{scenarios: make(map[string]*Scenario), quarantined: make(map[string]error)}
}

// NewRegistryWithStore returns a registry whose registrations and mutations
// persist to the store.  Call Recover before serving to load what disk holds.
func NewRegistryWithStore(st *store.Store) *Registry {
	r := NewRegistry()
	r.st = st
	return r
}

// Store returns the attached store, or nil for a memory-only registry.
func (r *Registry) Store() *store.Store { return r.st }

// RegisterOptions tunes Register.
type RegisterOptions struct {
	// TargetLabel is a display label for the target schema; defaults to the
	// schema's own name.
	TargetLabel string
	// WarmIndexes eagerly builds every base-relation index at registration so
	// no request pays first-build latency.  Registration is the right time to
	// pay: it is one-off, off the request path, and the paper's workload shape
	// guarantees the indexes get used by every reformulated query.
	WarmIndexes bool
}

// Register adds a scenario under the given name.  The name must be unused;
// the instance and mappings must be non-nil and valid.
func (r *Registry) Register(ctx context.Context, name string, target *schema.Schema, db *engine.Instance, maps schema.MappingSet, opts RegisterOptions) (*Scenario, error) {
	if name == "" {
		return nil, fmt.Errorf("register: empty scenario name")
	}
	if target == nil {
		return nil, fmt.Errorf("register %s: nil target schema", name)
	}
	if db == nil {
		return nil, fmt.Errorf("register %s: nil instance", name)
	}
	if len(maps) == 0 {
		return nil, fmt.Errorf("register %s: empty mapping set", name)
	}
	if err := maps.Validate(); err != nil {
		return nil, fmt.Errorf("register %s: invalid mapping set: %w", name, err)
	}
	label := opts.TargetLabel
	if label == "" {
		label = target.Name
	}
	s := &Scenario{name: name, target: target, label: label, db: db, maps: maps}
	if opts.WarmIndexes {
		if cache := db.Indexes(); cache != nil {
			built, err := cache.Warm(ctx, engine.NewStats())
			if err != nil {
				return nil, fmt.Errorf("register %s: warming indexes: %w", name, err)
			}
			s.warmBuilds = built
		}
	}
	r.mu.RLock()
	_, dup := r.scenarios[name]
	qerr := r.quarantined[name]
	r.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("register: scenario %q already registered", name)
	}
	if qerr != nil {
		// Registering over a quarantined name would truncate the damaged
		// files an operator may still want to inspect — refuse until the
		// scenario's directory is cleared out of band.
		return nil, fmt.Errorf("register: scenario %q is quarantined (%v): clear its data directory first", name, qerr)
	}
	if r.st != nil {
		log, err := r.st.Register(s.captureStateLocked())
		if err != nil {
			return nil, fmt.Errorf("register %s: persisting: %w", name, err)
		}
		s.log = log
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.scenarios[name]; dup {
		if s.log != nil {
			_ = s.log.Drop()
		}
		return nil, fmt.Errorf("register: scenario %q already registered", name)
	}
	if r.obs != nil {
		o := r.obs
		s.obs.Store(&o)
	}
	r.scenarios[name] = s
	return s, nil
}

// Drop removes a scenario from the registry and, with a store attached,
// durably deletes its on-disk state.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	s, ok := r.scenarios[name]
	delete(r.scenarios, name)
	obs := r.obs
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("drop: unknown scenario %q", name)
	}
	if obs != nil {
		obs.OnDrop(name)
	}
	if s.log != nil {
		return s.log.Drop()
	}
	return nil
}

// RecoveryStats summarizes one Recover call.
type RecoveryStats struct {
	// Scenarios is how many scenarios were rebuilt from disk.
	Scenarios int
	// ReplayedRecords is how many WAL records were applied on top of
	// snapshots and register records.
	ReplayedRecords int
	// Quarantined lists scenarios whose on-disk state could not be trusted,
	// sorted by name.  They answer 503 until an operator intervenes.
	Quarantined []string
	// Elapsed is wall-clock recovery time, index warming included.
	Elapsed time.Duration
}

// Recover loads every scenario the store holds: snapshot plus WAL tail,
// index warm-up (when opts.WarmIndexes), quarantine bookkeeping for anything
// corrupt.  Call it once, before serving; on a memory-only registry it is a
// no-op.  Scenario-level damage never fails Recover — it quarantines; only
// store-wide problems (unreadable directory, context cancellation during
// warming) are returned as errors.
func (r *Registry) Recover(ctx context.Context, opts RegisterOptions) (*RecoveryStats, error) {
	stats := &RecoveryStats{}
	if r.st == nil {
		return stats, nil
	}
	start := time.Now()
	rec, err := r.st.Recover()
	if err != nil {
		return nil, err
	}
	quarantined := rec.Quarantined
	for _, rs := range rec.Scenarios {
		s, err := scenarioFromState(rs.State, rs.Log)
		if err != nil {
			quarantined = append(quarantined, store.QuarantinedScenario{Name: rs.State.Name, Err: err})
			continue
		}
		if opts.WarmIndexes {
			if cache := s.db.Indexes(); cache != nil {
				built, err := cache.Warm(ctx, engine.NewStats())
				if err != nil {
					return nil, fmt.Errorf("recover %s: warming indexes: %w", s.name, err)
				}
				s.warmBuilds = built
			}
		}
		r.mu.Lock()
		if _, dup := r.scenarios[s.name]; dup {
			r.mu.Unlock()
			return nil, fmt.Errorf("recover: scenario %q already registered", s.name)
		}
		if r.obs != nil {
			o := r.obs
			s.obs.Store(&o)
		}
		r.scenarios[s.name] = s
		r.mu.Unlock()
		stats.Scenarios++
		stats.ReplayedRecords += rs.Replayed
	}
	r.mu.Lock()
	for _, q := range quarantined {
		r.quarantined[q.Name] = q.Err
		stats.Quarantined = append(stats.Quarantined, q.Name)
	}
	r.mu.Unlock()
	sort.Strings(stats.Quarantined)
	r.recoveries.Add(int64(stats.Scenarios))
	r.replayed.Add(int64(stats.ReplayedRecords))
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// scenarioFromState rebuilds a servable scenario from its durable image.
// Structural damage was already caught by the store's checksums and decoders;
// this guards the semantic contracts (valid mapping set, non-empty target)
// that registration would have enforced.
func scenarioFromState(st *store.ScenarioState, log *store.Log) (*Scenario, error) {
	if st.Target == nil || len(st.Target.Relations) == 0 {
		return nil, fmt.Errorf("%w: empty target schema", store.ErrCorrupt)
	}
	if err := st.Mappings.Validate(); err != nil {
		return nil, fmt.Errorf("%w: invalid mapping set: %v", store.ErrCorrupt, err)
	}
	db := engine.NewInstance(st.Name)
	for _, rs := range st.Relations {
		rel := engine.NewRelation(rs.Name, rs.Columns)
		rel.Rows = rs.Rows
		db.AddRelation(rel)
	}
	s := &Scenario{name: st.Name, target: st.Target, label: st.Label, db: db, maps: st.Mappings, log: log}
	s.epoch.Store(st.Epoch)
	s.staleFloor.Store(st.StaleFloor)
	return s, nil
}

// QuarantineReason returns why the named scenario is quarantined, if it is.
func (r *Registry) QuarantineReason(name string) (error, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	err, ok := r.quarantined[name]
	return err, ok
}

// QuarantinedNames returns the quarantined scenario names, sorted.
func (r *Registry) QuarantinedNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.quarantined))
	for name := range r.quarantined {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Recoveries returns the number of scenarios recovered from disk.
func (r *Registry) Recoveries() int64 { return r.recoveries.Load() }

// ReplayedRecords returns the number of WAL records replayed during recovery.
func (r *Registry) ReplayedRecords() int64 { return r.replayed.Load() }

// Get returns the named scenario.
func (r *Registry) Get(name string) (*Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.scenarios[name]
	return s, ok
}

// Names returns the registered scenario names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.scenarios))
	for name := range r.scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered scenarios.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.scenarios)
}
