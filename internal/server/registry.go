// Package server is the query service layer: a registry of named scenarios, a
// byte-budgeted answer cache with singleflight semantics, and an HTTP JSON API
// with admission control.  It turns the library — one evaluation per call, one
// caller per process — into a long-lived system that amortizes work across
// requests and users, the same axis the paper amortizes across mappings.
//
// The sharing story stacks three layers deep:
//
//   - within one evaluation, the methods share work across mappings
//     (q-sharing / o-sharing, internal/core);
//   - across evaluations of one instance, the base-relation index subsystem
//     shares per-column hash indexes (internal/engine); registration warms
//     them so first queries do not pay construction;
//   - across requests, the answer cache shares whole results: N concurrent
//     identical requests cost exactly one evaluation (singleflight), repeated
//     requests cost none.
package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// Scenario is one registered, named evaluation environment: a source instance,
// a target schema and a possible-mapping set, plus a monotonically increasing
// epoch.  Query results are cached under (scenario, epoch, ...); any mutation
// of the underlying data must bump the epoch, which makes every cached answer
// for the old epoch unreachable.
//
// Mutate only through AppendRow (or Bump after out-of-band changes).  The
// engine's contract makes relation data immutable while an evaluation reads
// it, so AppendRow excludes in-flight evaluations: Evaluate holds mu as a
// reader, AppendRow as a writer.  The epoch bump then keeps *cached* answers
// honest; the lock keeps the memory safe.
type Scenario struct {
	name   string
	target *schema.Schema
	label  string
	db     *engine.Instance
	maps   schema.MappingSet

	epoch atomic.Uint64
	// staleFloor is the oldest epoch whose cached answers may still be served
	// as *stale* under overload.  AppendRow leaves it alone — an append-only
	// change keeps every earlier answer a correct answer over a prefix of the
	// data — while Bump raises it to the new epoch, because an out-of-band
	// mutation may have rewritten history and old answers with it.
	staleFloor atomic.Uint64
	// mu is the evaluation/mutation lock: evaluations (many, long) share it
	// as readers, AppendRow (rare, microseconds) takes it exclusively.
	// Writer acquisition is bounded by the request deadlines of the
	// in-flight evaluations ahead of it.
	mu sync.RWMutex

	// prepMu guards the prepared-query cache: compiled front halves keyed by
	// raw request text and by canonical SQL, both scoped to the epoch they
	// were built under.  A hit on the raw text skips even the parse; a hit on
	// the canonical form (a differently spelled but equivalent text) skips
	// reformulation and plan compilation.
	prepMu  sync.Mutex
	prepped map[string]*preparedEntry // raw query text -> entry
	byCanon map[string]*preparedEntry // canonical SQL -> entry

	warmBuilds int
}

// preparedEntry is one compiled query: the front half (reformulations, plans,
// partitions) of every evaluation method, valid for one (scenario, epoch).
type preparedEntry struct {
	epoch     uint64
	canonical string
	prep      *core.Prepared
}

// preparedCacheCap bounds the prepared-query cache.  The cache is a
// performance aid, not an accounting system: when an ad-hoc workload pushes
// past the cap, both maps are flushed wholesale — re-preparing is milliseconds
// — rather than maintaining LRU chains on the hot path.
const preparedCacheCap = 1024

// Name returns the registry key of the scenario.
func (s *Scenario) Name() string { return s.name }

// TargetLabel returns the human-readable target schema label ("Excel", ...).
func (s *Scenario) TargetLabel() string { return s.label }

// Target returns the target schema queries are parsed against.
func (s *Scenario) Target() *schema.Schema { return s.target }

// DB returns the source instance.
func (s *Scenario) DB() *engine.Instance { return s.db }

// Mappings returns the possible-mapping set.
func (s *Scenario) Mappings() schema.MappingSet { return s.maps }

// Epoch returns the current epoch.  Cached answers are keyed by it.
func (s *Scenario) Epoch() uint64 { return s.epoch.Load() }

// Bump advances the epoch, invalidating every cached answer for the scenario.
// Call it after any out-of-band mutation of the instance or mapping set.  The
// stale-serve floor rises with it: answers from before an out-of-band change
// must never reappear, not even flagged stale.
func (s *Scenario) Bump() uint64 {
	e := s.epoch.Add(1)
	s.staleFloor.Store(e)
	return e
}

// StaleFloor returns the oldest epoch eligible for stale-answer degradation.
// Epochs below it were invalidated by Bump (destructive change); epochs at or
// above it differ from the present only by appends.
func (s *Scenario) StaleFloor() uint64 { return s.staleFloor.Load() }

// AppendRow appends a tuple to the named base relation and bumps the epoch.
// It waits for in-flight evaluations to finish (and blocks new ones for the
// microseconds the append takes), because engine relations must not mutate
// under a running scan.  The engine's own index invalidation
// (Relation.Append's version counter) handles the per-column indexes; the
// epoch bump handles the answer cache.
func (s *Scenario) AppendRow(relation string, t engine.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rel := s.db.Relation(relation)
	if rel == nil {
		return fmt.Errorf("scenario %s: unknown relation %q", s.name, relation)
	}
	if err := rel.Append(t); err != nil {
		return err
	}
	s.epoch.Add(1)
	return nil
}

// Evaluate runs one evaluation while holding the scenario's evaluation lock
// as a reader, so AppendRow cannot mutate relation data mid-scan.  Evaluator()
// remains available for callers that manage mutation exclusion themselves.
func (s *Scenario) Evaluate(ctx context.Context, q *query.Query, topK int, opts core.Options) (*core.Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ev := core.NewEvaluator(s.db, s.maps)
	if topK > 0 {
		return ev.EvaluateTopKContext(ctx, q, topK, opts)
	}
	return ev.EvaluateContext(ctx, q, opts)
}

// Prepare returns the compiled form of the query text at the current epoch,
// parsing, reformulating through every mapping and compiling plans only on
// first sight of the text.  reused reports whether a cached entry was served
// (by raw text, skipping even the parse, or by canonical SQL).  Entries from
// older epochs are rebuilt, so a prepared execution never mixes plans with a
// mapping set or schema the epoch bump left behind; a Prepare racing a bump
// behaves like the answer cache — it keys under the epoch it read.
func (s *Scenario) Prepare(text string) (prep *core.Prepared, canonical string, reused bool, err error) {
	epoch := s.Epoch()
	s.prepMu.Lock()
	if e, ok := s.prepped[text]; ok && e.epoch == epoch {
		s.prepMu.Unlock()
		return e.prep, e.canonical, true, nil
	}
	s.prepMu.Unlock()

	// Parse outside the lock; the per-method reformulation inside
	// core.Prepared is lazy, so building the entry itself is cheap.
	q, err := query.Parse("q", s.target, text)
	if err != nil {
		return nil, "", false, err
	}
	canonical = q.Fingerprint()

	s.prepMu.Lock()
	defer s.prepMu.Unlock()
	if e, ok := s.byCanon[canonical]; ok && e.epoch == epoch {
		s.rememberLocked(text, e)
		return e.prep, e.canonical, true, nil
	}
	p, err := core.NewEvaluator(s.db, s.maps).Prepare(q)
	if err != nil {
		return nil, "", false, err
	}
	e := &preparedEntry{epoch: epoch, canonical: canonical, prep: p}
	s.rememberLocked(text, e)
	return e.prep, e.canonical, false, nil
}

// rememberLocked stores the entry under both keys, flushing the cache
// wholesale at the cap.  Callers hold prepMu.
func (s *Scenario) rememberLocked(text string, e *preparedEntry) {
	if s.prepped == nil || len(s.prepped) >= preparedCacheCap {
		s.prepped = make(map[string]*preparedEntry)
		s.byCanon = make(map[string]*preparedEntry)
	}
	s.prepped[text] = e
	s.byCanon[e.canonical] = e
}

// EvaluatePrepared runs a prepared query while holding the scenario's
// evaluation lock as a reader, so AppendRow cannot mutate relation data
// mid-scan.  This is the evaluation path the server uses.
func (s *Scenario) EvaluatePrepared(ctx context.Context, prep *core.Prepared, topK int, opts core.Options) (*core.Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if topK > 0 {
		return prep.ExecuteTopKContext(ctx, topK, opts)
	}
	return prep.ExecuteContext(ctx, opts)
}

// Parse parses an ad-hoc query against the scenario's target schema.
func (s *Scenario) Parse(name, text string) (*query.Query, error) {
	return query.Parse(name, s.target, text)
}

// Evaluator returns a fresh evaluator over the scenario's instance and
// mappings; evaluators are stateless, so one per request is free.
func (s *Scenario) Evaluator() *core.Evaluator {
	return core.NewEvaluator(s.db, s.maps)
}

// WarmIndexBuilds reports how many base-relation indexes registration built.
func (s *Scenario) WarmIndexBuilds() int { return s.warmBuilds }

// NumRows returns the total row count of the source instance.
func (s *Scenario) NumRows() int { return s.db.NumRows() }

// Registry holds the scenarios a server can answer queries against.  It is
// safe for concurrent use; registration is expected at startup but allowed at
// any time.
type Registry struct {
	mu        sync.RWMutex
	scenarios map[string]*Scenario
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{scenarios: make(map[string]*Scenario)}
}

// RegisterOptions tunes Register.
type RegisterOptions struct {
	// TargetLabel is a display label for the target schema; defaults to the
	// schema's own name.
	TargetLabel string
	// WarmIndexes eagerly builds every base-relation index at registration so
	// no request pays first-build latency.  Registration is the right time to
	// pay: it is one-off, off the request path, and the paper's workload shape
	// guarantees the indexes get used by every reformulated query.
	WarmIndexes bool
}

// Register adds a scenario under the given name.  The name must be unused;
// the instance and mappings must be non-nil and valid.
func (r *Registry) Register(ctx context.Context, name string, target *schema.Schema, db *engine.Instance, maps schema.MappingSet, opts RegisterOptions) (*Scenario, error) {
	if name == "" {
		return nil, fmt.Errorf("register: empty scenario name")
	}
	if target == nil {
		return nil, fmt.Errorf("register %s: nil target schema", name)
	}
	if db == nil {
		return nil, fmt.Errorf("register %s: nil instance", name)
	}
	if len(maps) == 0 {
		return nil, fmt.Errorf("register %s: empty mapping set", name)
	}
	if err := maps.Validate(); err != nil {
		return nil, fmt.Errorf("register %s: invalid mapping set: %w", name, err)
	}
	label := opts.TargetLabel
	if label == "" {
		label = target.Name
	}
	s := &Scenario{name: name, target: target, label: label, db: db, maps: maps}
	if opts.WarmIndexes {
		if cache := db.Indexes(); cache != nil {
			built, err := cache.Warm(ctx, engine.NewStats())
			if err != nil {
				return nil, fmt.Errorf("register %s: warming indexes: %w", name, err)
			}
			s.warmBuilds = built
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.scenarios[name]; dup {
		return nil, fmt.Errorf("register: scenario %q already registered", name)
	}
	r.scenarios[name] = s
	return s, nil
}

// Get returns the named scenario.
func (r *Registry) Get(name string) (*Scenario, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.scenarios[name]
	return s, ok
}

// Names returns the registered scenario names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.scenarios))
	for name := range r.scenarios {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered scenarios.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.scenarios)
}
