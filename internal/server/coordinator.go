package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/qos"
	"github.com/probdb/urm/internal/store"
)

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// Shards is the deployment's shard count; every query fans out to all of
	// them.
	Shards int
	// LeaseInterval is the heartbeat cadence handed to nodes (default 2s);
	// MissedIntervals is how many heartbeats a node may miss before its
	// leases expire (default 3).
	LeaseInterval   time.Duration
	MissedIntervals int
	// RequestTimeout caps one coordinated query end to end, fan-out retries
	// included (0 = 30s).
	RequestTimeout time.Duration
	// Client issues the shard HTTP requests (nil = http.DefaultClient).
	Client *http.Client
	// Retry shapes the per-shard retry loop.  Its zero value gets the qos
	// defaults (4 attempts, 50ms base, 2s cap).
	Retry qos.Backoff
	// Clock is the injected time source for leases and backoff (nil = wall).
	Clock qos.Clock
	// Store, when non-nil, persists the lease table so a restarted
	// coordinator keeps routing without waiting out a heartbeat round.
	Store *store.Store
}

// Coordinator is the multi-node half of sharded evaluation: an http.Handler
// that owns the shard map and no data.  Shard nodes register by heartbeating
// POST /v1/lease; queries arriving at POST /v1/query fan out as /v1/scatter
// requests to each shard's current lease owner, and the per-group answer
// streams are re-aggregated with core.GroupMerge — the same float-addition
// sequence as unsharded evaluation, so coordinated answers are bit-identical
// to a single node holding all the data.
//
// Failure modes are explicit rather than silent: a shard with no live owner
// (after retries) is 503 with the lease interval as Retry-After — never a
// partial answer; shard responses that disagree on the deterministic front
// half (epoch, canonical query, group probabilities) are 502 — merging them
// could fabricate answers; methods whose evaluation cannot distribute
// (o-sharing, top-k) are 422, because unlike a single sharded process the
// coordinator holds no unpartitioned instance to fall back to.
type Coordinator struct {
	cfg    CoordinatorConfig
	leases *LeaseTable
	client *http.Client

	requests       atomic.Int64
	merged         atomic.Int64 // queries answered by a full fan-out merge
	unowned        atomic.Int64 // 503: a shard had no live owner
	notShardable   atomic.Int64 // 422: method/plan cannot distribute
	upstreamErrors atomic.Int64 // shard responses that failed or were 5xx
	mismatches     atomic.Int64 // 502: shards disagreed on the front half
	heartbeats     atomic.Int64
}

// NewCoordinator builds a coordinator, restoring persisted leases when the
// config carries a store.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	lt, err := NewLeaseTable(LeaseConfig{
		Shards:          cfg.Shards,
		Interval:        cfg.LeaseInterval,
		MissedIntervals: cfg.MissedIntervals,
		Clock:           cfg.Clock,
		Store:           cfg.Store,
	})
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	if cfg.Retry.Clock == nil {
		cfg.Retry.Clock = cfg.Clock
	}
	return &Coordinator{cfg: cfg, leases: lt, client: client}, nil
}

// Leases exposes the coordinator's lease table (tests and metrics).
func (c *Coordinator) Leases() *LeaseTable { return c.leases }

// LeaseRequest is the body of POST /v1/lease — one shard node's heartbeat.
type LeaseRequest struct {
	Node   string `json:"node"`
	Addr   string `json:"addr"`
	Shards []int  `json:"shards"`
}

// LeaseResponse acknowledges a heartbeat and tells the node the cadence the
// coordinator expects, so interval configuration lives in one place.
type LeaseResponse struct {
	IntervalMS float64               `json:"interval_ms"`
	TTLMS      float64               `json:"ttl_ms"`
	Owners     map[string]LeaseOwner `json:"owners"`
}

// CoordinatorMetrics is the JSON body of the coordinator's GET /metrics.
type CoordinatorMetrics struct {
	Requests           int64         `json:"requests"`
	Merged             int64         `json:"merged"`
	Unowned            int64         `json:"unowned"`
	NotShardable       int64         `json:"not_shardable"`
	UpstreamErrors     int64         `json:"upstream_errors"`
	Mismatches         int64         `json:"mismatches"`
	Heartbeats         int64         `json:"heartbeats"`
	LeasePersistErrors int64         `json:"lease_persist_errors"`
	Leases             LeaseSnapshot `json:"leases"`
}

// Metrics returns a snapshot of the coordinator counters.
func (c *Coordinator) Metrics() CoordinatorMetrics {
	return CoordinatorMetrics{
		Requests:           c.requests.Load(),
		Merged:             c.merged.Load(),
		Unowned:            c.unowned.Load(),
		NotShardable:       c.notShardable.Load(),
		UpstreamErrors:     c.upstreamErrors.Load(),
		Mismatches:         c.mismatches.Load(),
		Heartbeats:         c.heartbeats.Load(),
		LeasePersistErrors: c.leases.PersistErrors(),
		Leases:             c.leases.Snapshot(),
	}
}

// ServeHTTP routes the coordinator API:
//
//	POST /v1/query      fan out to shard owners, merge, answer
//	POST /v1/lease      shard-node heartbeat
//	GET  /v1/scenarios  aggregated per-shard scenario placement
//	GET  /healthz       ok once every shard has a live owner
//	GET  /metrics       coordinator counters + lease table
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/query":
		c.handleQuery(w, r)
	case r.URL.Path == "/v1/lease":
		c.handleLease(w, r)
	case r.URL.Path == "/v1/scenarios":
		c.handleScenarios(w, r)
	case r.URL.Path == "/healthz":
		c.handleHealthz(w, r)
	case r.URL.Path == "/metrics":
		writeJSON(w, http.StatusOK, c.Metrics())
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("no route %s %s", r.Method, r.URL.Path))
	}
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req LeaseRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	if err := c.leases.Heartbeat(req.Node, req.Addr, req.Shards); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	c.heartbeats.Add(1)
	snap := c.leases.Snapshot()
	writeJSON(w, http.StatusOK, LeaseResponse{
		IntervalMS: snap.IntervalMS,
		TTLMS:      snap.TTLMS,
		Owners:     snap.Owners,
	})
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := c.leases.Snapshot()
	if len(snap.Unowned) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "waiting-for-shards",
			"unowned": snap.Unowned,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// coordError is an error with an HTTP status and optional Retry-After for the
// coordinator's response path.
func coordErr(status int, retryAfter time.Duration, err error) error {
	return &apiError{status: status, retryAfter: retryAfter, err: err}
}

// ErrShardUnowned is returned (and mapped to 503 with the lease interval as
// Retry-After) when a shard has no live lease owner: the coordinator cannot
// answer without it and refuses to fabricate a partial answer.
var ErrShardUnowned = errors.New("shard has no live owner")

// ErrShardMismatch is returned (and mapped to 502) when shard responses
// disagree on the deterministic front half — different epochs, canonical
// queries or group probabilities.  Merging disagreeing shards could fabricate
// an answer distribution no instance ever held, so the coordinator refuses.
var ErrShardMismatch = errors.New("shard responses disagree")

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	resp, err := c.Query(r.Context(), req)
	if err != nil {
		status := http.StatusInternalServerError
		var ae *apiError
		switch {
		case errors.As(err, &ae):
			status = ae.status
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = 499
		}
		body := map[string]any{"error": err.Error(), "status": status}
		if retryAfter := RetryAfter(err); retryAfter > 0 {
			setRetryAfter(w, body, retryAfter)
		}
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// Query answers one request by scatter fan-out and merge.  It is the
// transport-free core handleQuery wraps, like Server.Do.
func (c *Coordinator) Query(ctx context.Context, req Request) (*Response, error) {
	c.requests.Add(1)
	start := time.Now()
	if req.Scenario == "" {
		return nil, errBadRequest("missing scenario")
	}
	if req.TopK > 0 {
		c.notShardable.Add(1)
		return nil, coordErr(http.StatusUnprocessableEntity, 0,
			fmt.Errorf("%w: top-k does not distribute over shards", ErrNotDistributable))
	}
	method := core.MethodOSharing
	if req.Method != "" {
		var err error
		if method, err = core.ParseMethod(req.Method); err != nil {
			return nil, errBadRequest("%w: %v", core.ErrBadOptions, err)
		}
	}
	if method == core.MethodOSharing {
		c.notShardable.Add(1)
		return nil, coordErr(http.StatusUnprocessableEntity, 0,
			fmt.Errorf("%w: o-sharing interleaves operators across mappings and does not distribute; pick basic, e-basic, e-mqo or q-sharing", ErrNotDistributable))
	}

	timeout := c.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	sreq := ScatterRequest{Scenario: req.Scenario, Query: req.Query, Method: method.String()}
	parts := make([]*ScatterResponse, c.cfg.Shards)
	errs := make([]error, c.cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], errs[i] = c.scatterShard(ctx, i, sreq)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	res, err := c.mergeParts(method, parts)
	if err != nil {
		return nil, err
	}
	c.merged.Add(1)
	return &Response{
		Scenario:  req.Scenario,
		Epoch:     parts[0].Epoch,
		Query:     parts[0].Query,
		Method:    method.String(),
		Columns:   res.Columns,
		Answers:   answersJSON(res),
		EmptyProb: res.EmptyProb,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Result:    res,
	}, nil
}

// scatterShard runs one shard's scatter with per-attempt owner resolution:
// the lease table is consulted on every retry, so a lease expiring mid-query
// re-routes the next attempt to the promoted standby instead of hammering the
// dead owner.
func (c *Coordinator) scatterShard(ctx context.Context, index int, req ScatterRequest) (*ScatterResponse, error) {
	var resp *ScatterResponse
	err := qos.Retry(ctx, c.cfg.Retry, func(ctx context.Context) (time.Duration, bool, error) {
		owner, ok := c.leases.Owner(index)
		if !ok {
			// Unowned is retryable: the standby's next heartbeat may promote
			// it within the backoff budget.
			return c.leases.Interval(), true, coordErr(http.StatusServiceUnavailable, c.leases.Interval(),
				fmt.Errorf("%w: shard %d", ErrShardUnowned, index))
		}
		r, retryAfter, retryable, err := c.scatterOnce(ctx, owner, req)
		if err != nil {
			return retryAfter, retryable, err
		}
		if r.Shard == nil || r.Shard.Index != index || r.Shard.Count != c.cfg.Shards {
			// The node answered for the wrong slice (misconfigured boot);
			// treat like a mismatch, not a retryable blip.
			c.mismatches.Add(1)
			got := "no shard identity"
			if r.Shard != nil {
				got = fmt.Sprintf("shard %d of %d", r.Shard.Index, r.Shard.Count)
			}
			return 0, false, coordErr(http.StatusBadGateway, 0,
				fmt.Errorf("%w: node %q answered as %s, want shard %d of %d", ErrShardMismatch, owner.Node, got, index, c.cfg.Shards))
		}
		resp = r
		return 0, false, nil
	})
	if err != nil {
		if errors.Is(err, ErrShardUnowned) {
			c.unowned.Add(1)
		}
		return nil, err
	}
	return resp, nil
}

// scatterOnce issues one POST /v1/scatter to a shard owner and classifies the
// outcome: network errors and 429/503/504 are retryable (with the server's
// Retry-After hint when it sent one), 422 propagates as not-distributable,
// other statuses fail the query.
func (c *Coordinator) scatterOnce(ctx context.Context, owner LeaseOwner, req ScatterRequest) (*ScatterResponse, time.Duration, bool, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, false, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner.Addr+"/v1/scatter", bytes.NewReader(body))
	if err != nil {
		return nil, 0, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		// The transport failed (connection refused, reset, timeout): the node
		// may be mid-crash with its lease not yet expired, so retry — the
		// per-attempt owner resolution picks up a standby once promoted.
		c.upstreamErrors.Add(1)
		return nil, 0, true, fmt.Errorf("node %q: %w", owner.Node, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 16<<20))
	if err != nil {
		c.upstreamErrors.Add(1)
		return nil, 0, true, fmt.Errorf("node %q: reading response: %w", owner.Node, err)
	}
	switch hresp.StatusCode {
	case http.StatusOK:
		var sr ScatterResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			c.upstreamErrors.Add(1)
			return nil, 0, false, coordErr(http.StatusBadGateway, 0, fmt.Errorf("node %q: undecodable scatter response: %w", owner.Node, err))
		}
		return &sr, 0, false, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		c.upstreamErrors.Add(1)
		hint := retryAfterHint(hresp, data)
		return nil, hint, true,
			coordErr(hresp.StatusCode, hint, fmt.Errorf("node %q: %s", owner.Node, upstreamMessage(hresp.StatusCode, data)))
	case http.StatusUnprocessableEntity:
		c.notShardable.Add(1)
		return nil, 0, false, coordErr(http.StatusUnprocessableEntity, 0,
			fmt.Errorf("%w: node %q: %s", ErrNotDistributable, owner.Node, upstreamMessage(hresp.StatusCode, data)))
	default:
		c.upstreamErrors.Add(1)
		return nil, 0, false, coordErr(http.StatusBadGateway, 0,
			fmt.Errorf("node %q: %s", owner.Node, upstreamMessage(hresp.StatusCode, data)))
	}
}

// retryAfterHint extracts the server's wait hint from a shard error response:
// the precise retry_after_ms body field when present, else the Retry-After
// header, else zero (the backoff's own schedule applies).
func retryAfterHint(resp *http.Response, body []byte) time.Duration {
	var parsed struct {
		RetryAfterMS float64 `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(body, &parsed); err == nil && parsed.RetryAfterMS > 0 {
		return time.Duration(parsed.RetryAfterMS * float64(time.Millisecond))
	}
	if h := resp.Header.Get("Retry-After"); h != "" {
		if secs, err := strconv.Atoi(h); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// upstreamMessage renders a shard error body for wrapping: the JSON error
// field when decodable, else the status text.
func upstreamMessage(status int, body []byte) string {
	var parsed struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &parsed); err == nil && parsed.Error != "" {
		return fmt.Sprintf("%d: %s", status, parsed.Error)
	}
	return fmt.Sprintf("%d %s", status, http.StatusText(status))
}

// mergeParts cross-checks the shard responses' deterministic front halves and
// re-aggregates their per-group rows into the canonical answer distribution.
func (c *Coordinator) mergeParts(method core.Method, parts []*ScatterResponse) (*core.Result, error) {
	first := parts[0]
	for i, p := range parts[1:] {
		if err := scatterConsistent(first, p); err != nil {
			c.mismatches.Add(1)
			return nil, coordErr(http.StatusBadGateway, 0,
				fmt.Errorf("%w: shard 0 (node %q) vs shard %d (node %q): %v",
					ErrShardMismatch, nodeName(first), i+1, nodeName(p), err))
		}
	}
	gm := core.NewGroupMerge(first.PreEmptyProb)
	for gi, g := range first.Groups {
		if !g.Covered {
			gm.AddEmpty(g.Prob)
			continue
		}
		n := 0
		for _, p := range parts {
			n += len(p.Groups[gi].Rows)
		}
		rows := make([]engine.Tuple, 0, n)
		for _, p := range parts {
			for _, wire := range p.Groups[gi].Rows {
				rows = append(rows, wireTuple(wire))
			}
		}
		gm.Add(g.Prob, rows)
	}
	answers, emptyProb := gm.Finalize()
	return &core.Result{
		Method:    method,
		Answers:   answers,
		EmptyProb: emptyProb,
		Columns:   first.Columns,
	}, nil
}

func nodeName(p *ScatterResponse) string {
	if p.Shard != nil {
		return p.Shard.Node
	}
	return "?"
}

// scatterConsistent verifies two shard responses share the deterministic
// front half: same epoch, canonical query, method, columns, pre-group empty
// mass and group sequence (count, probabilities, coverage).  Shard nodes
// regenerate the scenario from the same seed, so any disagreement means a
// node is running different data or code and merging would be unsound.
func scatterConsistent(a, b *ScatterResponse) error {
	if a.Epoch != b.Epoch {
		return fmt.Errorf("epoch %d vs %d", a.Epoch, b.Epoch)
	}
	if a.Query != b.Query {
		return fmt.Errorf("canonical query %q vs %q", a.Query, b.Query)
	}
	if a.Method != b.Method {
		return fmt.Errorf("method %q vs %q", a.Method, b.Method)
	}
	if len(a.Columns) != len(b.Columns) {
		return fmt.Errorf("%d columns vs %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return fmt.Errorf("column %d %q vs %q", i, a.Columns[i], b.Columns[i])
		}
	}
	if a.PreEmptyProb != b.PreEmptyProb {
		return fmt.Errorf("pre-group empty mass %v vs %v", a.PreEmptyProb, b.PreEmptyProb)
	}
	if len(a.Groups) != len(b.Groups) {
		return fmt.Errorf("%d groups vs %d", len(a.Groups), len(b.Groups))
	}
	for i := range a.Groups {
		ga, gb := a.Groups[i], b.Groups[i]
		if ga.Prob != gb.Prob || ga.Covered != gb.Covered {
			return fmt.Errorf("group %d (prob %v covered %v) vs (prob %v covered %v)", i, ga.Prob, ga.Covered, gb.Prob, gb.Covered)
		}
	}
	return nil
}

// ScenarioShardInfo is one shard's placement of a scenario in the
// coordinator's GET /v1/scenarios.
type ScenarioShardInfo struct {
	Shard int    `json:"shard"`
	Node  string `json:"node"`
	Addr  string `json:"addr"`
	Epoch uint64 `json:"epoch"`
	Rows  int    `json:"rows"`
}

// CoordinatorScenario aggregates one scenario's per-shard placement.  Rows
// are reported per shard rather than summed: replicated relations appear on
// every shard, so a sum would double-count them.
type CoordinatorScenario struct {
	Name     string              `json:"name"`
	Target   string              `json:"target"`
	Mappings int                 `json:"mappings"`
	Shards   []ScenarioShardInfo `json:"shards"`
}

func (c *Coordinator) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.RequestTimeout)
	defer cancel()
	owners := c.leases.Owners()
	type shardList struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}
	lists := make(map[int]*shardList, len(owners))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for index, owner := range owners {
		wg.Add(1)
		go func(index int, owner LeaseOwner) {
			defer wg.Done()
			hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, owner.Addr+"/v1/scenarios", nil)
			if err != nil {
				return
			}
			hresp, err := c.client.Do(hreq)
			if err != nil {
				c.upstreamErrors.Add(1)
				return
			}
			defer hresp.Body.Close()
			if hresp.StatusCode != http.StatusOK {
				c.upstreamErrors.Add(1)
				return
			}
			var sl shardList
			if err := json.NewDecoder(io.LimitReader(hresp.Body, 16<<20)).Decode(&sl); err != nil {
				c.upstreamErrors.Add(1)
				return
			}
			mu.Lock()
			lists[index] = &sl
			mu.Unlock()
		}(index, owner)
	}
	wg.Wait()
	byName := make(map[string]*CoordinatorScenario)
	for index, sl := range lists {
		owner := owners[index]
		for _, info := range sl.Scenarios {
			cs := byName[info.Name]
			if cs == nil {
				cs = &CoordinatorScenario{Name: info.Name, Target: info.Target, Mappings: info.Mappings}
				byName[info.Name] = cs
			}
			cs.Shards = append(cs.Shards, ScenarioShardInfo{
				Shard: index,
				Node:  owner.Node,
				Addr:  owner.Addr,
				Epoch: info.Epoch,
				Rows:  info.Rows,
			})
		}
	}
	out := make([]*CoordinatorScenario, 0, len(byName))
	for _, cs := range byName {
		sort.Slice(cs.Shards, func(i, j int) bool { return cs.Shards[i].Shard < cs.Shards[j].Shard })
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": out})
}
