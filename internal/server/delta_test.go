package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/store"
)

// deltaQuery is maintainable under every clustered method (e-basic here) —
// a selection the fixture mappings reformulate into single-relation scans.
const deltaQuery = "SELECT a FROM T WHERE b = 7"

// doQuery runs one e-basic request and returns the response.
func doQuery(t *testing.T, srv *Server, text string) *Response {
	t.Helper()
	resp, err := srv.Do(context.Background(), Request{Scenario: "test", Query: text, Method: "e-basic"})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	return resp
}

// TestDeltaMaintainsCachedAnswers is the serving-layer maintenance loop: a
// served answer enrolls; appends (single and batched) mark the scenario; a
// convergence pass republishes at the new epoch so the next request is a cache
// hit; and the maintained answer is bit-identical to cold evaluation.
func TestDeltaMaintainsCachedAnswers(t *testing.T) {
	srv, sc := newTestServer(t, 40, Config{})
	first := doQuery(t, srv, deltaQuery)
	if first.Cached {
		t.Fatal("first request unexpectedly cached")
	}
	if n := srv.DeltaEntries("test"); n != 1 {
		t.Fatalf("enrolled entries = %d, want 1", n)
	}

	if err := sc.AppendRow("S", tuple("fresh", 7, 7)); err != nil {
		t.Fatal(err)
	}
	batch := []engine.Tuple{tuple("fresh2", 7, 3), tuple("fresh3", 1, 7), tuple("cold", 2, 2)}
	if err := sc.AppendRows("S", batch); err != nil {
		t.Fatal(err)
	}
	// The background loop may already have converged (OnAppend marks the
	// scenario dirty); the explicit pass makes convergence deterministic
	// either way.
	srv.ConvergeDelta("test")

	evalsBefore := srv.Metrics().Evaluations
	second := doQuery(t, srv, deltaQuery)
	if !second.Cached {
		t.Fatal("request after convergence missed the cache: the maintained answer was not republished at the new epoch")
	}
	if second.Epoch != sc.Epoch() {
		t.Fatalf("served epoch %d, want current %d", second.Epoch, sc.Epoch())
	}
	if got := srv.Metrics().Evaluations; got != evalsBefore {
		t.Fatalf("cache hit ran %d new evaluations", got-evalsBefore)
	}

	cold, err := sc.EvaluatePrepared(context.Background(), mustPrepare(t, sc, deltaQuery), 0, core.Options{Method: core.MethodEBasic})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "maintained vs cold", cold, second.Result)

	m := srv.Metrics()
	if m.DeltaApplied == 0 {
		t.Fatalf("delta_applied = 0 after a convergence publish")
	}
	if m.EpochInvalidations != 0 {
		t.Fatalf("epoch_invalidations = %d under append-only traffic, want 0", m.EpochInvalidations)
	}
	if m.IndexInplaceAppends == 0 {
		t.Fatalf("index_inplace_appends = 0 with warmed indexes")
	}
	if m.Appends != 4 {
		t.Fatalf("appends metric = %d, want 4 (1 single + 3 batched)", m.Appends)
	}
}

func mustPrepare(t *testing.T, sc *Scenario, text string) *core.Prepared {
	t.Helper()
	prep, _, _, err := sc.Prepare(text)
	if err != nil {
		t.Fatal(err)
	}
	return prep
}

// TestDeltaFallbackPaths: o-sharing (no per-group stream) and top-k requests
// still answer correctly through the ordinary evaluator, counted as fallbacks;
// an explicit Bump purges maintained entries and counts as an epoch
// invalidation.
func TestDeltaFallbackPaths(t *testing.T) {
	srv, sc := newTestServer(t, 30, Config{})

	resp, err := srv.Do(context.Background(), Request{Scenario: "test", Query: deltaQuery}) // default o-sharing
	if err != nil {
		t.Fatalf("o-sharing query: %v", err)
	}
	if resp.Cached {
		t.Fatal("first o-sharing request cached")
	}
	if n := srv.Metrics().DeltaFallbacks; n != 1 {
		t.Fatalf("delta_fallbacks = %d after an o-sharing evaluation, want 1", n)
	}
	if n := srv.DeltaEntries("test"); n != 0 {
		t.Fatalf("o-sharing enrolled %d entries, want 0", n)
	}

	if _, err := srv.Do(context.Background(), Request{Scenario: "test", Query: deltaQuery, Method: "e-basic", TopK: 2}); err != nil {
		t.Fatalf("top-k query: %v", err)
	}
	if n := srv.DeltaEntries("test"); n != 0 {
		t.Fatalf("top-k enrolled %d entries, want 0", n)
	}

	doQuery(t, srv, deltaQuery)
	if n := srv.DeltaEntries("test"); n != 1 {
		t.Fatalf("e-basic enrolled %d entries, want 1", n)
	}
	sc.Bump()
	if n := srv.DeltaEntries("test"); n != 0 {
		t.Fatalf("bump left %d maintained entries, want 0", n)
	}
	if n := srv.Metrics().EpochInvalidations; n != 1 {
		t.Fatalf("epoch_invalidations = %d after one bump, want 1", n)
	}
}

// TestBatchAppendEndpoint: the rows form of POST /v1/append applies the whole
// batch as one epoch step, and exactly one of values/rows is required.
func TestBatchAppendEndpoint(t *testing.T) {
	srv, sc := newTestServer(t, 10, Config{})
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/append", strings.NewReader(body))
		srv.ServeHTTP(rec, req)
		return rec
	}

	epoch0 := sc.Epoch()
	rec := post(`{"scenario":"test","relation":"S","rows":[["b1",1,2],["b2",3,4],["b3",5,6]]}`)
	if rec.Code != 200 {
		t.Fatalf("batch append = %d %q", rec.Code, rec.Body.String())
	}
	var resp struct {
		Epoch uint64 `json:"epoch"`
		Rows  int    `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != epoch0+1 || resp.Rows != 13 {
		t.Fatalf("batch response epoch=%d rows=%d, want epoch=%d rows=13 (one epoch step for the whole batch)",
			resp.Epoch, resp.Rows, epoch0+1)
	}

	if rec := post(`{"scenario":"test","relation":"S"}`); rec.Code != 400 {
		t.Fatalf("neither values nor rows = %d, want 400", rec.Code)
	}
	if rec := post(`{"scenario":"test","relation":"S","values":["x",1,2],"rows":[["y",3,4]]}`); rec.Code != 400 {
		t.Fatalf("both values and rows = %d, want 400", rec.Code)
	}
	if rec := post(`{"scenario":"test","relation":"S","rows":[["short",1]]}`); rec.Code != 400 {
		t.Fatalf("bad arity in batch = %d, want 400", rec.Code)
	}
	if rec := post(`{"scenario":"test","relation":"S","rows":[]}`); rec.Code != 400 {
		t.Fatalf("empty batch = %d, want 400", rec.Code)
	}

	if m := srv.Metrics().Appends; m != 3 {
		t.Fatalf("appends metric = %d, want 3 (rows, not requests)", m)
	}
}

// TestDeltaMaintainedAnswersSurviveRestart: batched appends land in the WAL as
// single records; after maintenance publishes refreshed answers, a cold
// restart replaying the store must reach the same epoch and serve bit-identical
// answers to the maintained ones.
func TestDeltaMaintainedAnswersSurviveRestart(t *testing.T) {
	ctx := context.Background()
	fs := store.NewMemFS()
	reg := openStoreRegistry(t, fs, -1)
	if _, err := reg.Register(ctx, "test", serveTargetSchema(), serveInstance(25), serveMappings(),
		RegisterOptions{TargetLabel: "Test", WarmIndexes: true}); err != nil {
		t.Fatal(err)
	}
	srv := New(reg, Config{})
	sc, _ := reg.Get("test")

	doQuery(t, srv, deltaQuery)
	for round := 0; round < 5; round++ {
		batch := []engine.Tuple{
			tuple(fmt.Sprintf("r%d-a", round), 7, int64(round)),
			tuple(fmt.Sprintf("r%d-b", round), int64(round%9), 7),
		}
		if err := sc.AppendRows("S", batch); err != nil {
			t.Fatal(err)
		}
		srv.ConvergeDelta("test")
	}
	maintained := doQuery(t, srv, deltaQuery)
	if !maintained.Cached {
		t.Fatal("final answer was not served from maintained cache")
	}

	reg2 := openStoreRegistry(t, fs.Clone(), -1)
	if _, err := reg2.Recover(ctx, RegisterOptions{}); err != nil {
		t.Fatal(err)
	}
	sc2, ok := reg2.Get("test")
	if !ok {
		t.Fatal("scenario missing after recovery")
	}
	if sc2.Epoch() != sc.Epoch() {
		t.Fatalf("recovered epoch %d, want %d", sc2.Epoch(), sc.Epoch())
	}
	cold, err := sc2.EvaluatePrepared(ctx, mustPrepare(t, sc2, deltaQuery), 0, core.Options{Method: core.MethodEBasic})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "restart replay vs maintained", cold, maintained.Result)
}

// TestDeltaConcurrentAppendQuery races batched appends, queries and
// convergence passes (plus the background maintainer) and then checks the
// final converged answer against cold evaluation — run under -race this is
// the subsystem's thread-safety test.
func TestDeltaConcurrentAppendQuery(t *testing.T) {
	srv, sc := newTestServer(t, 30, Config{Parallelism: 2})
	doQuery(t, srv, deltaQuery)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				batch := []engine.Tuple{
					tuple(fmt.Sprintf("w%d-%d", w, i), int64(i%23), 7),
					tuple(fmt.Sprintf("w%d-%d-b", w, i), 7, int64(i%17)),
				}
				if err := sc.AppendRows("S", batch); err != nil {
					t.Error(err)
					return
				}
				if _, err := srv.Do(context.Background(), Request{Scenario: "test", Query: deltaQuery, Method: "e-basic"}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	srv.ConvergeDelta("test")
	final := doQuery(t, srv, deltaQuery)
	cold, err := sc.EvaluatePrepared(context.Background(), mustPrepare(t, sc, deltaQuery), 0, core.Options{Method: core.MethodEBasic})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "converged vs cold", cold, final.Result)
	if m := srv.Metrics().EpochInvalidations; m != 0 {
		t.Fatalf("epoch_invalidations = %d under append-only traffic, want 0", m)
	}
}
