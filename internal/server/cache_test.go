package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
)

func testKey(q string) CacheKey {
	return CacheKey{Scenario: "s", Epoch: 1, Query: q, Method: core.MethodOSharing}
}

// fakeResult builds a result whose estimated size is dominated by one string
// payload of the given length.
func fakeResult(payload int) *core.Result {
	return &core.Result{Answers: []core.Answer{
		{Tuple: engine.Tuple{engine.S(string(make([]byte, payload)))}, Prob: 1},
	}}
}

func TestAnswerCacheLRUEviction(t *testing.T) {
	one := resultSize(fakeResult(1000))
	c := NewAnswerCache(3 * one) // room for three entries
	for i := 0; i < 4; i++ {
		key := testKey(fmt.Sprintf("q%d", i))
		if _, out, err := c.GetOrCompute(context.Background(), key, func() (*core.Result, error) {
			return fakeResult(1000), nil
		}); err != nil || out != OutcomeMiss {
			t.Fatalf("insert %d: outcome %v err %v", i, out, err)
		}
		if i == 1 {
			// Touch q0 so q1 becomes the LRU entry.
			if _, out, _ := c.GetOrCompute(context.Background(), testKey("q0"), nil); out != OutcomeHit {
				t.Fatal("q0 should be cached")
			}
		}
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("entries = %d, want 3", n)
	}
	if _, out, _ := c.GetOrCompute(context.Background(), testKey("q0"), nil); out != OutcomeHit {
		t.Error("recently touched q0 should have survived eviction")
	}
	if _, out, _ := c.GetOrCompute(context.Background(), testKey("q1"), func() (*core.Result, error) {
		return fakeResult(1000), nil
	}); out != OutcomeMiss {
		t.Error("q1 should have been evicted as least recently used")
	}
	if m := c.Metrics(); m.Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

func TestAnswerCacheOversizeEntryNotStored(t *testing.T) {
	c := NewAnswerCache(64) // smaller than any result estimate
	if _, _, err := c.GetOrCompute(context.Background(), testKey("big"), func() (*core.Result, error) {
		return fakeResult(10000), nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversize entry stored: len %d bytes %d", c.Len(), c.Bytes())
	}
}

func TestAnswerCacheErrorsNotCached(t *testing.T) {
	c := NewAnswerCache(1 << 20)
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(context.Background(), testKey("q"), func() (*core.Result, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	calls := 0
	if _, out, err := c.GetOrCompute(context.Background(), testKey("q"), func() (*core.Result, error) {
		calls++
		return fakeResult(10), nil
	}); err != nil || out != OutcomeMiss || calls != 1 {
		t.Fatalf("retry after error: outcome %v err %v calls %d", out, err, calls)
	}
}

// TestAnswerCacheWaiterSurvivesLeaderCancellation mirrors the PlanCache
// contract: a waiter whose leader died of the *leader's* context takes over
// instead of failing.
func TestAnswerCacheWaiterSurvivesLeaderCancellation(t *testing.T) {
	c := NewAnswerCache(1 << 20)
	key := testKey("q")
	leaderStarted := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.GetOrCompute(context.Background(), key, func() (*core.Result, error) {
			close(leaderStarted)
			<-release
			return nil, context.Canceled // the leader's own context died
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v", err)
		}
	}()

	<-leaderStarted
	waiterComputed := false
	var waiterErr error
	var waiterOut Outcome
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, waiterOut, waiterErr = c.GetOrCompute(context.Background(), key, func() (*core.Result, error) {
			waiterComputed = true
			return fakeResult(10), nil
		})
	}()
	close(release)
	wg.Wait()
	if waiterErr != nil || !waiterComputed || waiterOut != OutcomeMiss {
		t.Fatalf("waiter: computed %v outcome %v err %v; want retry as leader", waiterComputed, waiterOut, waiterErr)
	}
}

func TestAnswerCacheWaiterHonoursOwnContext(t *testing.T) {
	c := NewAnswerCache(1 << 20)
	key := testKey("q")
	leaderStarted := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompute(context.Background(), key, func() (*core.Result, error) {
		close(leaderStarted)
		<-release
		return fakeResult(10), nil
	})
	<-leaderStarted
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, key, nil)
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want its own cancellation", err)
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	ctx := context.Background()
	tgt, db, maps := serveTargetSchema(), serveInstance(10), serveMappings()
	if _, err := reg.Register(ctx, "", tgt, db, maps, RegisterOptions{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := reg.Register(ctx, "s", nil, db, maps, RegisterOptions{}); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := reg.Register(ctx, "s", tgt, nil, maps, RegisterOptions{}); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := reg.Register(ctx, "s", tgt, db, nil, RegisterOptions{}); err == nil {
		t.Error("empty mappings accepted")
	}
	sc, err := reg.Register(ctx, "s", tgt, db, maps, RegisterOptions{WarmIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(ctx, "s", tgt, db, maps, RegisterOptions{}); err == nil {
		t.Error("duplicate name accepted")
	}
	if sc.WarmIndexBuilds() != 3 {
		t.Errorf("warm builds = %d, want 3 (one per S column)", sc.WarmIndexBuilds())
	}
	if got := reg.Names(); len(got) != 1 || got[0] != "s" || reg.Len() != 1 {
		t.Errorf("names = %v", got)
	}
	if _, ok := reg.Get("nope"); ok {
		t.Error("Get returned a missing scenario")
	}
}
