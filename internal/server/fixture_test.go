package server

import (
	"context"
	"fmt"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/schema"
)

// The test scenario: source S(x, y, z), target T(a, b), two mappings that
// agree on a→x and disagree on b (y versus z).  Small enough to evaluate in
// microseconds, with a self-product query available when a test needs an
// evaluation slow enough to race against (see slowQueryText).

func serveSourceSchema() *schema.Schema {
	s := schema.NewSchema("Source")
	s.MustAddRelation(&schema.RelationSchema{Name: "S", Columns: []schema.Column{
		{Name: "x"}, {Name: "y", Type: schema.TypeInt}, {Name: "z", Type: schema.TypeInt},
	}})
	return s
}

func serveTargetSchema() *schema.Schema {
	t := schema.NewSchema("Target")
	t.MustAddRelation(&schema.RelationSchema{Name: "T", Columns: []schema.Column{
		{Name: "a"}, {Name: "b", Type: schema.TypeInt},
	}})
	return t
}

// serveInstance builds S with n rows: x cycles through 40 distinct labels,
// y = i%23, z = i%17.
func serveInstance(n int) *engine.Instance {
	db := engine.NewInstance("D")
	rel := engine.NewRelation("S", []string{"x", "y", "z"})
	for i := 0; i < n; i++ {
		rel.MustAppend(engine.Tuple{
			engine.S(fmt.Sprintf("k%02d", i%40)),
			engine.I(int64(i % 23)),
			engine.I(int64(i % 17)),
		})
	}
	db.AddRelation(rel)
	return db
}

func serveMappings() schema.MappingSet {
	sAttr := func(name string) schema.Attribute { return schema.Attribute{Relation: "S", Name: name} }
	tAttr := func(name string) schema.Attribute { return schema.Attribute{Relation: "T", Name: name} }
	m1 := schema.MustNewMapping("m1", []schema.Correspondence{
		{Source: sAttr("x"), Target: tAttr("a"), Score: 0.9},
		{Source: sAttr("y"), Target: tAttr("b"), Score: 0.8},
	}, 0.6)
	m2 := schema.MustNewMapping("m2", []schema.Correspondence{
		{Source: sAttr("x"), Target: tAttr("a"), Score: 0.9},
		{Source: sAttr("z"), Target: tAttr("b"), Score: 0.7},
	}, 0.4)
	return schema.MappingSet{m1, m2}
}

const (
	// fastQueryText evaluates in microseconds (index probe over S).
	fastQueryText = "SELECT a FROM T WHERE b = 7"
	// slowQueryText forces a Cartesian self-product with a non-equi condition
	// — rows² pairs per mapping — so tests can hold an evaluation slot or a
	// deadline open long enough to observe concurrent behaviour.
	slowQueryText = "SELECT P1.a FROM T P1, T P2 WHERE P1.b < P2.b"
)

// tuple builds one S row.
func tuple(x string, y, z int64) engine.Tuple {
	return engine.Tuple{engine.S(x), engine.I(y), engine.I(z)}
}

// newTestServer registers one scenario ("test", n source rows) on a fresh
// registry and returns the server and scenario.
func newTestServer(t *testing.T, n int, cfg Config) (*Server, *Scenario) {
	t.Helper()
	reg := NewRegistry()
	sc, err := reg.Register(context.Background(), "test", serveTargetSchema(), serveInstance(n), serveMappings(),
		RegisterOptions{TargetLabel: "Test", WarmIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	return New(reg, cfg), sc
}

// sameResult asserts bit-identical results: same answer tuples in the same
// order with exactly equal (not approximately equal) probabilities, same
// empty probability, same columns.
func sameResult(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if len(want.Answers) != len(got.Answers) {
		t.Fatalf("%s: %d answers, want %d", label, len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		w, g := want.Answers[i], got.Answers[i]
		if !w.Tuple.EqualKey(g.Tuple) || w.Prob != g.Prob {
			t.Fatalf("%s: answer %d = %v@%v, want %v@%v", label, i, g.Tuple, g.Prob, w.Tuple, w.Prob)
		}
	}
	if want.EmptyProb != got.EmptyProb {
		t.Fatalf("%s: empty prob %v, want %v", label, got.EmptyProb, want.EmptyProb)
	}
	if len(want.Columns) != len(got.Columns) {
		t.Fatalf("%s: columns %v, want %v", label, got.Columns, want.Columns)
	}
	for i := range want.Columns {
		if want.Columns[i] != got.Columns[i] {
			t.Fatalf("%s: columns %v, want %v", label, got.Columns, want.Columns)
		}
	}
}
