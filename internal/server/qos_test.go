package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/qos"
)

// distinctQuery returns the i-th member of an unbounded family of distinct
// fast queries: QoS tests need cache *misses* (the ladder sits inside the
// compute path), so every request must be a question the cache has not seen.
func distinctQuery(i int) string {
	return fmt.Sprintf("SELECT a FROM T WHERE b = %d", i)
}

// TestTenantIsolationUnderFlood is the tenant-isolation property test: a
// tenant flooding far past its share must not push a compliant tenant's
// rejection rate above the token-bucket prediction (here: zero, since the
// compliant tenant paces below its guaranteed share), and the compliant
// tenant's answers must stay bit-identical to direct evaluation.  The fake
// clock makes the token math exact; requests are driven sequentially so the
// only nondeterminism left is inside the engine, which its own determinism
// contract covers.
func TestTenantIsolationUnderFlood(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		t.Run(fmt.Sprintf("parallelism=%d", parallelism), func(t *testing.T) {
			clk := qos.NewFakeClock()
			// Rate 10, equal weights, two active tenants: 5/s and burst 2 each.
			// The compliant tenant sends one request per 250ms = 4/s < 5/s, so
			// bucket math predicts zero rejections for it, whatever the other
			// tenant does.
			s, sc := newTestServer(t, 200, Config{
				TenantRate:  10,
				TenantBurst: 4,
				Parallelism: parallelism,
				Faults:      &qos.Faults{Clock: clk},
			})
			ctx := context.Background()

			const rounds = 20
			const floodPerRound = 5
			hostileAdmitted, hostileRejected := 0, 0
			q := 0
			for round := 0; round < rounds; round++ {
				clk.Advance(250 * time.Millisecond)

				goodQuery := distinctQuery(q)
				q++
				resp, err := s.Do(ctx, Request{Scenario: "test", Query: goodQuery, Tenant: "good"})
				if err != nil {
					t.Fatalf("round %d: compliant tenant rejected: %v", round, err)
				}
				if resp.Stale {
					t.Fatalf("round %d: compliant tenant served stale without pressure", round)
				}
				// Bit-identical to a direct evaluation outside the server.
				pq, err := sc.Parse("direct", goodQuery)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sc.Evaluate(ctx, pq, 0, core.Options{Parallelism: parallelism})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, fmt.Sprintf("round %d", round), want, resp.Result)

				for f := 0; f < floodPerRound; f++ {
					_, err := s.Do(ctx, Request{Scenario: "test", Query: distinctQuery(q), Tenant: "hostile"})
					q++
					switch {
					case err == nil:
						hostileAdmitted++
					case errors.Is(err, ErrOverloaded):
						hostileRejected++
						if RetryAfter(err) <= 0 {
							t.Fatal("rate-limit rejection carried no Retry-After hint")
						}
					default:
						t.Fatalf("unexpected hostile error: %v", err)
					}
				}
			}

			// The flood sent 100 requests over 5s.  Its bucket-math ceiling is
			// burst (2) + share×time (5/s × 5s) = 27 admissions.
			if hostileAdmitted > 27 {
				t.Fatalf("hostile tenant admitted %d times, bucket math allows 27", hostileAdmitted)
			}
			if hostileRejected == 0 {
				t.Fatal("hostile flood was never rejected")
			}
			tm := s.Metrics().Tenants
			if got := tm["good"].ShedRateLimited; got != 0 {
				t.Fatalf("compliant tenant shed %d times, want 0", got)
			}
			if got := tm["hostile"].ShedRateLimited; got != int64(hostileRejected) {
				t.Fatalf("hostile shed counter = %d, want %d", got, hostileRejected)
			}
		})
	}
}

// TestStaleDegradation is the stale-serve correctness test: under rate
// pressure the server answers from the previous epoch — bit-identically to
// what that epoch served fresh — but only while the scenario has seen nothing
// except appends; fresh answers resume once pressure drops; Bump (a
// destructive change) makes degradation refuse.
func TestStaleDegradation(t *testing.T) {
	clk := qos.NewFakeClock()
	// One token per second, burst one: the second request in any one-second
	// window is shed, which is all the pressure the test needs.
	s, sc := newTestServer(t, 200, Config{
		TenantRate: 1,
		Faults:     &qos.Faults{Clock: clk},
	})
	ctx := context.Background()
	const queryText = fastQueryText

	// Epoch 0: served fresh, cached.
	fresh, err := s.Do(ctx, Request{Scenario: "test", Query: queryText})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stale || fresh.Epoch != 0 {
		t.Fatalf("first response: stale=%v epoch=%d", fresh.Stale, fresh.Epoch)
	}

	// Append-only change: epoch moves, stale floor does not.
	if err := sc.AppendRow("S", tuple("zz", 7, 7)); err != nil {
		t.Fatal(err)
	}

	// Same question at the new epoch with an empty bucket: degraded to the
	// epoch-0 answer, bit-identical to what was served fresh.
	stale, err := s.Do(ctx, Request{Scenario: "test", Query: queryText})
	if err != nil {
		t.Fatalf("expected stale degradation, got error: %v", err)
	}
	if !stale.Stale || stale.Epoch != 0 || !stale.Cached {
		t.Fatalf("degraded response: stale=%v epoch=%d cached=%v, want stale epoch-0 cache entry", stale.Stale, stale.Epoch, stale.Cached)
	}
	sameResult(t, "stale replay", fresh.Result, stale.Result)
	if got := s.Metrics().StaleServed; got != 1 {
		t.Fatalf("stale_served = %d, want 1", got)
	}
	if got := s.Cache().Metrics().StaleHits; got != 1 {
		t.Fatalf("cache stale_hits = %d, want 1", got)
	}

	// Pressure drops (a token accrues): fresh answers resume at the new epoch.
	clk.Advance(1100 * time.Millisecond)
	resumed, err := s.Do(ctx, Request{Scenario: "test", Query: queryText})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stale || resumed.Epoch != 1 {
		t.Fatalf("post-pressure response: stale=%v epoch=%d, want fresh epoch 1", resumed.Stale, resumed.Epoch)
	}

	// Destructive change: Bump raises the stale floor, so the epoch-1 entry
	// is no longer servable and the shed becomes an honest 429.
	sc.Bump()
	_, err = s.Do(ctx, Request{Scenario: "test", Query: queryText})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("post-Bump shed returned %v, want ErrOverloaded (stale refused)", err)
	}

	t.Run("disabled", func(t *testing.T) {
		clk := qos.NewFakeClock()
		s, sc := newTestServer(t, 200, Config{
			TenantRate:        1,
			DisableStaleServe: true,
			Faults:            &qos.Faults{Clock: clk},
		})
		if _, err := s.Do(ctx, Request{Scenario: "test", Query: queryText}); err != nil {
			t.Fatal(err)
		}
		if err := sc.AppendRow("S", tuple("zz", 7, 7)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Do(ctx, Request{Scenario: "test", Query: queryText}); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("with stale serving disabled, got %v, want ErrOverloaded", err)
		}
	})
}

// TestDoomedDeadlineShed seeds the scenario's cold-latency tracker with long
// observations and asserts that a request whose deadline cannot cover the
// median is rejected before admission — and that a cached previous-epoch
// answer turns even that rejection into a stale response.
func TestDoomedDeadlineShed(t *testing.T) {
	s, sc := newTestServer(t, 200, Config{})
	ctx := context.Background()

	// Prime the cache at epoch 0 before the tracker is poisoned.
	fresh, err := s.Do(ctx, Request{Scenario: "test", Query: fastQueryText})
	if err != nil {
		t.Fatal(err)
	}

	// Eight one-second observations: the median cold latency is now 1s.
	tracker := s.latencyFor("test")
	for i := 0; i < 8; i++ {
		tracker.Observe(time.Second)
	}

	// A 50ms deadline on an uncached question is doomed; no evaluation slot
	// should be burned on it.
	_, err = s.Do(ctx, Request{Scenario: "test", Query: distinctQuery(999), TimeoutMS: 50})
	if !errors.Is(err, ErrDeadlineTooShort) {
		t.Fatalf("doomed request returned %v, want ErrDeadlineTooShort", err)
	}
	var ae *apiError
	if !errors.As(err, &ae) || ae.status != http.StatusGatewayTimeout {
		t.Fatalf("doomed request status = %v, want 504", err)
	}
	m := s.Metrics()
	if m.ShedDoomedDeadline != 1 {
		t.Fatalf("shed_doomed_deadline = %d, want 1", m.ShedDoomedDeadline)
	}
	if m.Evaluations != 1 {
		t.Fatalf("evaluations = %d, want 1 (the doomed request must not evaluate)", m.Evaluations)
	}

	// The same doomed deadline on the *cached* question, after an append,
	// degrades to the epoch-0 answer instead of erroring.
	if err := sc.AppendRow("S", tuple("zz", 7, 7)); err != nil {
		t.Fatal(err)
	}
	stale, err := s.Do(ctx, Request{Scenario: "test", Query: fastQueryText, TimeoutMS: 50})
	if err != nil {
		t.Fatalf("doomed request with stale answer available errored: %v", err)
	}
	if !stale.Stale || stale.Epoch != 0 {
		t.Fatalf("degraded doomed request: stale=%v epoch=%d", stale.Stale, stale.Epoch)
	}
	sameResult(t, "doomed stale replay", fresh.Result, stale.Result)
}

// TestMeasuredQueueWait pins the satellite fix: the queue wait reported by a
// response (and recorded in the histograms) is the wait actually measured on
// the clock, not an inferred or zero value.  A fault hook holds the only
// evaluation slot while the fake clock advances exactly 7ms under a second
// request.
func TestMeasuredQueueWait(t *testing.T) {
	clk := qos.NewFakeClock()
	stallEntered := make(chan struct{})
	stallRelease := make(chan struct{})
	first := true
	s, _ := newTestServer(t, 200, Config{
		MaxConcurrent: 1,
		QueueWait:     time.Hour,
		Faults: &qos.Faults{
			Clock: clk,
			SlotStall: func(string) {
				if first {
					first = false
					close(stallEntered)
					<-stallRelease
				}
			},
		},
	})
	ctx := context.Background()

	type outcome struct {
		resp *Response
		err  error
	}
	firstDone := make(chan outcome, 1)
	go func() {
		resp, err := s.Do(ctx, Request{Scenario: "test", Query: distinctQuery(0), Tenant: "a"})
		firstDone <- outcome{resp, err}
	}()
	<-stallEntered // the slot is now held

	secondDone := make(chan outcome, 1)
	go func() {
		resp, err := s.Do(ctx, Request{Scenario: "test", Query: distinctQuery(1), Tenant: "a"})
		secondDone <- outcome{resp, err}
	}()
	waitFor(t, "second request queued", func() bool { return s.queue.Depth() == 1 })

	clk.Advance(7 * time.Millisecond)
	close(stallRelease)

	if r := <-firstDone; r.err != nil {
		t.Fatal(r.err)
	} else if r.resp.QueueWaitMS != 0 {
		t.Fatalf("unqueued request reported wait %vms", r.resp.QueueWaitMS)
	}
	r := <-secondDone
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.resp.QueueWaitMS != 7 {
		t.Fatalf("queued request reported wait %vms, want exactly 7 (fake clock)", r.resp.QueueWaitMS)
	}

	m := s.Metrics()
	if m.QueueWait.Count != 2 {
		t.Fatalf("aggregate queue-wait histogram count = %d, want 2", m.QueueWait.Count)
	}
	if m.QueueWait.SumMS != 7 {
		t.Fatalf("aggregate queue-wait sum = %vms, want 7", m.QueueWait.SumMS)
	}
	if tm := m.Tenants["a"]; tm.QueueWait.Count != 2 || tm.QueueWait.SumMS != 7 {
		t.Fatalf("tenant histogram = %+v, want count 2 sum 7ms", tm.QueueWait)
	}
}

// TestQoSHTTPSurface exercises the HTTP contract: X-URM-Tenant routes QoS
// accounting, 429s carry Retry-After (header and precise body hint), and
// /metrics exposes the per-tenant counters.
func TestQoSHTTPSurface(t *testing.T) {
	clk := qos.NewFakeClock()
	s, _ := newTestServer(t, 200, Config{
		TenantRate: 1, // burst 1: the second uncached request is shed
		Faults:     &qos.Faults{Clock: clk},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(tenant, priority, query string) *http.Response {
		t.Helper()
		body, _ := json.Marshal(Request{Scenario: "test", Query: query})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
		req.Header.Set("X-URM-Tenant", tenant)
		if priority != "" {
			req.Header.Set("X-URM-Priority", priority)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("alice", "interactive", distinctQuery(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = post("alice", "", distinctQuery(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After header")
	}
	var errBody struct {
		RetryAfterMS float64 `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if errBody.RetryAfterMS <= 0 {
		t.Fatalf("429 body retry_after_ms = %v, want > 0", errBody.RetryAfterMS)
	}

	resp = post("alice", "bogus", distinctQuery(2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus priority: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics Metrics
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	alice := metrics.Tenants["alice"]
	if alice.Requests != 2 || alice.ShedRateLimited != 1 || alice.Evaluations != 1 {
		t.Fatalf("alice metrics = %+v, want 2 requests, 1 shed, 1 evaluation", alice)
	}
}

func TestAdmissionFor(t *testing.T) {
	s, _ := newTestServer(t, 10, Config{
		Tenants: map[string]TenantQoS{
			"gold":   {Weight: 3},
			"batchy": {Weight: 2, Priority: PriorityBatch},
		},
	})
	cases := []struct {
		req    Request
		tenant string
		weight float64
	}{
		{Request{}, "default", 4},                                         // anonymous, interactive default
		{Request{Tenant: "gold"}, "gold", 12},                             // 3 × interactive 4
		{Request{Tenant: "batchy"}, "batchy", 2},                          // 2 × batch 1 (tenant default)
		{Request{Tenant: "batchy", Priority: "interactive"}, "batchy", 8}, // explicit override
		{Request{Tenant: "nobody", Priority: "batch"}, "nobody", 1},       // unconfigured
	}
	for i, c := range cases {
		adm, err := s.admissionFor(c.req)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if adm.tenant != c.tenant || adm.weight != c.weight {
			t.Fatalf("case %d: got (%s, %v), want (%s, %v)", i, adm.tenant, adm.weight, c.tenant, c.weight)
		}
	}
	if _, err := s.admissionFor(Request{Priority: "turbo"}); err == nil {
		t.Fatal("unknown priority accepted")
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := s.admissionFor(Request{Tenant: string(long)}); err == nil {
		t.Fatal("overlong tenant name accepted")
	}
}

func TestParseTenantSpec(t *testing.T) {
	got, err := ParseTenantSpec("gold", "4/interactive")
	if err != nil || got.Weight != 4 || got.Priority != PriorityInteractive {
		t.Fatalf("got %+v err=%v", got, err)
	}
	got, err = ParseTenantSpec("b", "0.5")
	if err != nil || got.Weight != 0.5 || got.Priority != "" {
		t.Fatalf("got %+v err=%v", got, err)
	}
	for _, bad := range []string{"", "x", "-1", "0", "2/turbo"} {
		if _, err := ParseTenantSpec("t", bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
