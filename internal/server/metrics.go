package server

import (
	"sync/atomic"

	"github.com/probdb/urm/internal/qos"
)

// serverMetrics are the server-level counters exposed by /metrics.  All
// fields are atomics: the request path updates them without locking.
type serverMetrics struct {
	requests       atomic.Int64
	rejected       atomic.Int64 // 429: rate-limited or no evaluation slot
	shedDoomed     atomic.Int64 // 504: deadline below median cold latency
	staleServed    atomic.Int64 // degraded to a previous epoch's answer
	unavailable    atomic.Int64 // 503: draining
	timeouts       atomic.Int64 // 504: request deadline exceeded
	badRequests    atomic.Int64 // 4xx other than overload
	evaluations    atomic.Int64 // evaluations actually run (cache misses)
	evalErrors     atomic.Int64
	preparedBuilds atomic.Int64 // prepared-query cache misses: parse+reformulate+compile paid
	preparedReuses atomic.Int64 // prepared-query cache hits: straight to execution
	indexBuilds    atomic.Int64 // summed from per-evaluation engine stats
	indexLookups   atomic.Int64
	operators      atomic.Int64
	inflight       atomic.Int64 // requests currently being served
	appends        atomic.Int64 // rows appended via POST /v1/append
	scatters       atomic.Int64 // shard-side scatter executions (POST /v1/scatter)
	slowQueries    atomic.Int64 // requests over the slow-query threshold (AfterQuery hook)

	// Incremental-maintenance counters.  deltaApplied counts cache entries the
	// maintainer refreshed through a delta pass; deltaFallbacks the evaluations
	// that tried to enroll but fell back (plan not maintainable, or the
	// per-scenario cap refused it); indexInplace the shared hash indexes
	// extended in place by appends; epochInvalidations the explicit Bumps that
	// purged maintained state.  staleWindow is a gauge: the epoch distance of
	// the most recent stale-served answer.
	deltaApplied       atomic.Int64
	deltaFallbacks     atomic.Int64
	indexInplace       atomic.Int64
	epochInvalidations atomic.Int64
	staleWindow        atomic.Int64

	queueWait qos.Histogram // measured evaluation-slot waits, all tenants

	// Per-stage latency histograms over the request path: parse covers
	// parse+reformulate+compile when a prepared query is built (reuses pay
	// nothing and are not observed), reformulate/execute/merge split each
	// evaluation by core.Result's stage timings.
	stageParse       qos.Histogram
	stageReformulate qos.Histogram
	stageExecute     qos.Histogram
	stageMerge       qos.Histogram
}

// Metrics is the JSON snapshot served by GET /metrics and embedded in the
// serve benchmark's record.
type Metrics struct {
	Requests int64 `json:"requests"`
	Rejected int64 `json:"rejected"`
	// ShedDoomedDeadline counts requests rejected before admission because
	// their remaining deadline was below the scenario's median cold latency.
	ShedDoomedDeadline int64 `json:"shed_doomed_deadline"`
	// StaleServed counts responses degraded to a previous epoch's cached
	// answer instead of a rejection.
	StaleServed int64 `json:"stale_served"`
	Unavailable int64 `json:"unavailable"`
	Timeouts    int64 `json:"timeouts"`
	BadRequests int64 `json:"bad_requests"`
	Inflight    int64 `json:"inflight"`

	Evaluations int64 `json:"evaluations"`
	EvalErrors  int64 `json:"eval_errors"`

	// PreparedBuilds/PreparedReuses count prepared-query cache misses versus
	// hits: a reuse skips parse, reformulation and plan compilation even when
	// the answer cache misses.
	PreparedBuilds int64 `json:"prepared_builds"`
	PreparedReuses int64 `json:"prepared_reuses"`

	// IndexBuilds/IndexLookups aggregate engine.Stats.IndexBuilds/IndexLookups
	// over every evaluation the server ran: how often the shared base-relation
	// index subsystem built versus served.
	IndexBuilds  int64 `json:"index_builds"`
	IndexLookups int64 `json:"index_lookups"`
	Operators    int64 `json:"operators"`

	// Appends counts rows accepted by POST /v1/append.
	Appends int64 `json:"appends"`

	// Scatters counts shard-side scatter executions (POST /v1/scatter), and
	// SlowQueries the requests whose total latency crossed the slow-query
	// threshold (zero when no threshold is configured).
	Scatters    int64 `json:"scatters"`
	SlowQueries int64 `json:"slow_queries"`

	// Incremental-maintenance counters.  DeltaApplied counts cached answers
	// refreshed by a delta pass instead of invalidated; DeltaFallbacks the
	// evaluations that could not enroll for maintenance (non-SPJ plan, o-sharing
	// or top-k method, or per-scenario cap); IndexInplaceAppends the shared hash
	// indexes extended in place under appends; EpochInvalidations the explicit
	// Bumps, each of which purged the scenario's maintained entries.
	// StaleWindowEpochs is a gauge: how many epochs behind the most recently
	// stale-served answer was.
	DeltaApplied        int64 `json:"delta_applied"`
	DeltaFallbacks      int64 `json:"delta_fallbacks"`
	IndexInplaceAppends int64 `json:"index_inplace_appends"`
	EpochInvalidations  int64 `json:"epoch_invalidations"`
	StaleWindowEpochs   int64 `json:"stale_window_epochs"`

	// Durable-store counters.  StoreRecoveries counts scenarios rebuilt from
	// disk at boot, StoreReplayedRecords the WAL records replayed to do so,
	// StoreQuarantined the scenarios refused because their on-disk state was
	// corrupt, and StorePersistErrors the mutations that were applied in
	// memory but failed to reach disk.
	StoreRecoveries      int64 `json:"store_recoveries"`
	StoreReplayedRecords int64 `json:"store_replayed_records"`
	StoreQuarantined     int64 `json:"store_quarantined"`
	StorePersistErrors   int64 `json:"store_persist_errors"`

	Cache CacheMetrics `json:"cache"`

	// QueueWait is the distribution of measured evaluation-slot waits across
	// all tenants; Tenants breaks every QoS counter down per tenant.
	QueueWait qos.HistogramSnapshot    `json:"queue_wait"`
	Tenants   map[string]TenantMetrics `json:"tenants,omitempty"`

	// Stages holds per-stage latency histograms keyed "parse", "reformulate",
	// "execute" and "merge".  Parse is observed only when a prepared query is
	// actually built; the other three split every evaluation by the stage
	// timings core.Result records.
	Stages map[string]qos.HistogramSnapshot `json:"stages"`

	Draining   bool           `json:"draining"`
	Recovering bool           `json:"recovering"`
	Scenarios  []ScenarioInfo `json:"scenarios"`
}

// ScenarioInfo describes one registered scenario in API responses.
type ScenarioInfo struct {
	Name            string `json:"name"`
	Target          string `json:"target"`
	Epoch           uint64 `json:"epoch"`
	Mappings        int    `json:"mappings"`
	Relations       int    `json:"relations"`
	Rows            int    `json:"rows"`
	WarmIndexBuilds int    `json:"warm_index_builds"`
	// Shard is this node's placement in a partitioned deployment — which
	// shard slice of the scenario it holds — or nil when unsharded.
	Shard *ShardIdentity `json:"shard,omitempty"`
}

func (s *Server) snapshotMetrics() Metrics {
	return Metrics{
		Requests:            s.metrics.requests.Load(),
		Rejected:            s.metrics.rejected.Load(),
		ShedDoomedDeadline:  s.metrics.shedDoomed.Load(),
		StaleServed:         s.metrics.staleServed.Load(),
		Unavailable:         s.metrics.unavailable.Load(),
		Timeouts:            s.metrics.timeouts.Load(),
		BadRequests:         s.metrics.badRequests.Load(),
		Inflight:            s.metrics.inflight.Load(),
		Evaluations:         s.metrics.evaluations.Load(),
		EvalErrors:          s.metrics.evalErrors.Load(),
		PreparedBuilds:      s.metrics.preparedBuilds.Load(),
		PreparedReuses:      s.metrics.preparedReuses.Load(),
		IndexBuilds:         s.metrics.indexBuilds.Load(),
		IndexLookups:        s.metrics.indexLookups.Load(),
		Operators:           s.metrics.operators.Load(),
		Appends:             s.metrics.appends.Load(),
		Scatters:            s.metrics.scatters.Load(),
		SlowQueries:         s.metrics.slowQueries.Load(),
		DeltaApplied:        s.metrics.deltaApplied.Load(),
		DeltaFallbacks:      s.metrics.deltaFallbacks.Load(),
		IndexInplaceAppends: s.metrics.indexInplace.Load(),
		EpochInvalidations:  s.metrics.epochInvalidations.Load(),
		StaleWindowEpochs:   s.metrics.staleWindow.Load(),
		Cache:               s.cache.Metrics(),
		QueueWait:           s.metrics.queueWait.Snapshot(),
		Stages: map[string]qos.HistogramSnapshot{
			"parse":       s.metrics.stageParse.Snapshot(),
			"reformulate": s.metrics.stageReformulate.Snapshot(),
			"execute":     s.metrics.stageExecute.Snapshot(),
			"merge":       s.metrics.stageMerge.Snapshot(),
		},
		Tenants:    s.tenants.snapshot(),
		Draining:   s.draining(),
		Recovering: s.recovering.Load(),
		Scenarios:  s.scenarioInfos(),

		StoreRecoveries:      s.registry.Recoveries(),
		StoreReplayedRecords: s.registry.ReplayedRecords(),
		StoreQuarantined:     int64(len(s.registry.QuarantinedNames())),
		StorePersistErrors:   storePersistErrors(s.registry),
	}
}

// storePersistErrors sums store-level persistence failures; zero when the
// server runs without a durable store.
func storePersistErrors(r *Registry) int64 {
	if st := r.Store(); st != nil {
		return st.PersistErrors()
	}
	return 0
}
