package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
)

// CacheKey identifies one cacheable request exactly.  The query text is the
// canonical form (query.Query.Fingerprint): the parser round-trip property
// guarantees two requests with the same canonical text evaluate the same AST.
// Epoch is part of the key, so a scenario mutation makes every older entry
// unreachable without any synchronous sweep; stale entries age out through
// the LRU.  Parallelism is deliberately absent — answers are bit-identical at
// every setting (the runtime's determinism contract), so it must not split
// the cache.
type CacheKey struct {
	Scenario string
	Epoch    uint64
	Query    string
	Method   core.Method
	Strategy core.Strategy
	TopK     int
}

// AnswerCache is a byte-budgeted LRU of evaluation results with singleflight
// semantics mirroring engine.PlanCache: when several requests need the same
// missing key at once, exactly one evaluates and the rest block for its
// result, so N concurrent identical requests cost one evaluation.  Unlike
// PlanCache it never caches errors — a failed evaluation releases the key so
// the next request retries — and it evicts least-recently-used entries once
// the byte budget is exceeded.
type AnswerCache struct {
	mu       sync.Mutex
	budget   int64
	bytes    int64
	entries  map[CacheKey]*list.Element
	lru      *list.List // front = most recently used
	inflight map[CacheKey]*inflightCall
	// byQuery indexes the newest-epoch entry per epoch-stripped key: the
	// stale-answer degradation path asks "what is the freshest answer we ever
	// served for this question", which the epoch-keyed primary map cannot
	// answer without a scan.
	byQuery map[CacheKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	staleHits atomic.Int64
}

type cacheEntry struct {
	key  CacheKey
	res  *core.Result
	size int64
}

// inflightCall is one in-progress evaluation other requests can wait on.
type inflightCall struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// NewAnswerCache returns a cache that holds at most budget bytes of results
// (estimated; see resultSize).  A budget <= 0 disables storage but keeps the
// singleflight coalescing: concurrent identical requests still share one
// evaluation even with caching off.
func NewAnswerCache(budget int64) *AnswerCache {
	return &AnswerCache{
		budget:   budget,
		entries:  make(map[CacheKey]*list.Element),
		lru:      list.New(),
		inflight: make(map[CacheKey]*inflightCall),
		byQuery:  make(map[CacheKey]*list.Element),
	}
}

// Outcome says how GetOrCompute satisfied a request.
type Outcome int

// Outcomes.
const (
	// OutcomeMiss: this request ran the evaluation.
	OutcomeMiss Outcome = iota
	// OutcomeHit: served from the cache without any evaluation.
	OutcomeHit
	// OutcomeCoalesced: waited on another request's in-flight evaluation.
	OutcomeCoalesced
)

// GetOrCompute returns the result for the key, evaluating with compute on a
// miss.  Concurrent callers with the same key share one compute call.  The
// returned *core.Result is shared across callers and must be treated as
// immutable.
//
// Error handling follows engine.PlanCache's cancellation rule, tightened for
// a serving context: no error is ever cached, and a waiter whose leader died
// of *the leader's* context (cancellation or deadline) retries with its own
// live context rather than inheriting the failure.
func (c *AnswerCache) GetOrCompute(ctx context.Context, key CacheKey, compute func() (*core.Result, error)) (*core.Result, Outcome, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			c.hits.Add(1)
			return res, OutcomeHit, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, OutcomeCoalesced, ctx.Err()
			}
			if call.err == nil {
				c.coalesced.Add(1)
				return call.res, OutcomeCoalesced, nil
			}
			if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
				// The leader's context died, not necessarily ours.  If ours is
				// live, take another turn (possibly becoming the leader).
				if err := ctx.Err(); err != nil {
					return nil, OutcomeCoalesced, err
				}
				continue
			}
			return nil, OutcomeCoalesced, call.err
		}
		call := &inflightCall{done: make(chan struct{})}
		c.inflight[key] = call
		c.mu.Unlock()

		call.res, call.err = compute()
		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil {
			c.insertLocked(key, call.res)
		}
		c.mu.Unlock()
		close(call.done)
		if call.err != nil {
			return nil, OutcomeMiss, call.err
		}
		c.misses.Add(1)
		return call.res, OutcomeMiss, nil
	}
}

// Put stores a computed result directly — the delta maintainer's publish path,
// which refreshes answers outside any request (no singleflight involved; a
// concurrent GetOrCompute for the same key simply finds the entry).
func (c *AnswerCache) Put(key CacheKey, res *core.Result) {
	c.mu.Lock()
	c.insertLocked(key, res)
	c.mu.Unlock()
}

// stripEpoch is the byQuery index key: the request identity with the epoch
// zeroed, so entries for the same question at different epochs collide.
func stripEpoch(key CacheKey) CacheKey {
	key.Epoch = 0
	return key
}

// insertLocked stores the result and evicts from the LRU tail until the
// budget holds.  An entry larger than the whole budget is not stored at all.
func (c *AnswerCache) insertLocked(key CacheKey, res *core.Result) {
	size := resultSize(res)
	if size > c.budget {
		return
	}
	if el, ok := c.entries[key]; ok {
		// A concurrent computation for the same key can finish twice only via
		// epoch races; keep the newer result.
		c.removeLocked(el)
	}
	el := c.lru.PushFront(&cacheEntry{key: key, res: res, size: size})
	c.entries[key] = el
	c.bytes += size
	// The stale index tracks the newest epoch per question; never step it back.
	sk := stripEpoch(key)
	if prev, ok := c.byQuery[sk]; !ok || prev.Value.(*cacheEntry).key.Epoch <= key.Epoch {
		c.byQuery[sk] = el
	}
	for c.bytes > c.budget {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
		c.evictions.Add(1)
	}
}

// removeLocked unlinks one entry from every structure that references it.
func (c *AnswerCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	if sk := stripEpoch(e.key); c.byQuery[sk] == el {
		delete(c.byQuery, sk)
	}
}

// GetStale returns the newest cached answer for the request regardless of
// epoch, provided its epoch is at or above floor — the degradation path of an
// overloaded server.  Everything it can return was stored by a completed
// evaluation and is immutable, so a stale answer is always a bit-identical
// replay of an answer some earlier request was served fresh, never a torn or
// partially updated one.
func (c *AnswerCache) GetStale(key CacheKey, floor uint64) (*core.Result, uint64, bool) {
	c.mu.Lock()
	el, ok := c.byQuery[stripEpoch(key)]
	if !ok {
		c.mu.Unlock()
		return nil, 0, false
	}
	e := el.Value.(*cacheEntry)
	if e.key.Epoch < floor {
		c.mu.Unlock()
		return nil, 0, false
	}
	// Serving it under pressure is a reason to keep it around.
	c.lru.MoveToFront(el)
	res, epoch := e.res, e.key.Epoch
	c.mu.Unlock()
	c.staleHits.Add(1)
	return res, epoch, true
}

// Len returns the number of cached entries.
func (c *AnswerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the estimated size of the cached results.
func (c *AnswerCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// CacheMetrics is a snapshot of the cache counters.
type CacheMetrics struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	// StaleHits counts GetStale successes: answers served from a previous
	// epoch as overload degradation.
	StaleHits   int64 `json:"stale_hits"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}

// Metrics returns a snapshot of the cache counters.
func (c *AnswerCache) Metrics() CacheMetrics {
	c.mu.Lock()
	entries, bytes := len(c.entries), c.bytes
	c.mu.Unlock()
	return CacheMetrics{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		Evictions:   c.evictions.Load(),
		StaleHits:   c.staleHits.Load(),
		Entries:     entries,
		Bytes:       bytes,
		BudgetBytes: c.budget,
	}
}

// resultSize estimates the retained footprint of a result: answer tuples
// dominate, at slice/struct overhead plus string payloads.  The estimate only
// needs to be proportional — the budget is a pressure valve, not an
// accounting system.
func resultSize(res *core.Result) int64 {
	const entryOverhead = 256
	size := int64(entryOverhead)
	for _, a := range res.Answers {
		size += 24 + int64(len(a.Tuple))*48
		for _, v := range a.Tuple {
			if v.Kind == engine.KindString {
				size += int64(len(v.Str))
			}
		}
	}
	for _, c := range res.Columns {
		size += int64(len(c)) + 16
	}
	return size
}
