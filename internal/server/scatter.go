package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/qos"
	"github.com/probdb/urm/internal/shard"
)

// ShardIdentity declares that this server holds one shard slice of a
// partitioned deployment: shard Index of Count, where the named relation was
// split on Column by the given partitioner kind and every other relation is
// replicated.  Shard nodes regenerate the same scenario deterministically
// (same seed) and keep only their slice, so their prepared front halves — and
// therefore their scatter-group orders and probabilities — are identical,
// which is what lets a coordinator merge their per-group answer streams
// without holding any data itself.
type ShardIdentity struct {
	// Node names this server in the coordinator's lease table.
	Node string `json:"node"`
	// Index/Count place this node in the partition: shard Index of Count.
	Index int `json:"index"`
	Count int `json:"count"`
	// Relation/Column/Kind describe the partitioning function, matching
	// shard.Spec (Kind is "hash" or "range").
	Relation string `json:"relation"`
	Column   string `json:"column"`
	Kind     string `json:"kind"`
}

// ErrNotDistributable is returned (and mapped to 422) when a scatter request
// names a method, or reformulates into a plan, whose evaluation does not
// distribute over the node's partitioned relation: o-sharing and top-k
// always, and any group plan that scans the partitioned relation more than
// once (a self-join) or aggregates.  Per-shard evaluation of such a plan
// would silently drop cross-shard row pairs, so the node refuses instead.
var ErrNotDistributable = errors.New("query is not distributable over this node's shard partition")

// ScatterRequest is the body of POST /v1/scatter — the shard half of a
// coordinator's fan-out.  Unlike /v1/query it returns per-group answer
// relations instead of an aggregated distribution: a tuple produced by the
// same group on several shards must be deduplicated per group across shards,
// which only the coordinator can do.
type ScatterRequest struct {
	Scenario  string `json:"scenario"`
	Query     string `json:"query"`
	Method    string `json:"method,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// WireValue is one typed datum on the scatter wire.  Exactly one field is
// set; the zero value is NULL.  Values are typed explicitly rather than as
// bare JSON values because bit-identity requires kinds to round-trip: a float
// 3.0 encoded as the JSON number 3 would decode as an int, changing the
// tuple's hash, key and sort position.  Go's float64 JSON encoding is
// shortest-round-trip, so probabilities and float data survive the wire
// bit-exactly.
type WireValue struct {
	S *string  `json:"s,omitempty"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
}

// ScatterGroupJSON is one scatter group's slice of the answer stream on this
// shard: the group's probability mass, whether its mappings cover the query
// (uncovered groups carry mass for the empty answer and no rows), and the
// distinct rows this shard produced for it.
type ScatterGroupJSON struct {
	Prob    float64       `json:"prob"`
	Covered bool          `json:"covered"`
	Rows    [][]WireValue `json:"rows,omitempty"`
}

// ScatterResponse is the body of a successful POST /v1/scatter.
type ScatterResponse struct {
	Scenario string `json:"scenario"`
	Epoch    uint64 `json:"epoch"`
	// Query is the canonical text, identical across shards for one request.
	Query   string   `json:"query"`
	Method  string   `json:"method"`
	Columns []string `json:"columns,omitempty"`
	// PreEmptyProb and Groups mirror core.ScatterPlan: the merge adds
	// PreEmptyProb to the empty answer first, then folds the groups in order.
	PreEmptyProb float64            `json:"pre_empty_prob"`
	Groups       []ScatterGroupJSON `json:"groups"`
	// Shard echoes the node's placement so the coordinator can detect a node
	// booted with the wrong index or count before merging anything.
	Shard     *ShardIdentity `json:"shard,omitempty"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

// wireValues encodes a tuple for the scatter wire.
func wireValues(t engine.Tuple) []WireValue {
	out := make([]WireValue, len(t))
	for i, v := range t {
		switch v.Kind {
		case engine.KindString:
			s := v.Str
			out[i].S = &s
		case engine.KindInt:
			n := v.Int
			out[i].I = &n
		case engine.KindFloat:
			f := v.Float
			out[i].F = &f
		}
	}
	return out
}

// wireTuple decodes a scatter-wire row.
func wireTuple(vals []WireValue) engine.Tuple {
	row := make(engine.Tuple, len(vals))
	for i, v := range vals {
		switch {
		case v.S != nil:
			row[i] = engine.S(*v.S)
		case v.I != nil:
			row[i] = engine.I(*v.I)
		case v.F != nil:
			row[i] = engine.F(*v.F)
		default:
			row[i] = engine.Null()
		}
	}
	return row
}

// Scatter answers one scatter request in-process: it prepares the query on
// the named scenario, builds the method's scatter plan, verifies every group
// plan distributes over this node's partition, executes the groups against
// the node's (sliced) instance and returns the per-group rows.  It is the
// transport-free core handleScatter wraps, like Do for /v1/query.
func (s *Server) Scatter(ctx context.Context, req ScatterRequest) (*ScatterResponse, error) {
	s.metrics.scatters.Add(1)
	if !s.enter() {
		s.metrics.unavailable.Add(1)
		return nil, apiErr(http.StatusServiceUnavailable, ErrDraining)
	}
	defer s.leave()
	if s.recovering.Load() {
		s.metrics.unavailable.Add(1)
		return nil, apiErr(http.StatusServiceUnavailable, ErrRecovering)
	}
	start := time.Now()
	if req.Scenario == "" {
		return nil, errBadRequest("missing scenario")
	}
	sc, ok := s.registry.Get(req.Scenario)
	if !ok {
		if qerr, quarantined := s.registry.QuarantineReason(req.Scenario); quarantined {
			s.metrics.unavailable.Add(1)
			return nil, apiErr(http.StatusServiceUnavailable, fmt.Errorf("%w: %q: %v", ErrQuarantined, req.Scenario, qerr))
		}
		return nil, apiErr(http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownScenario, req.Scenario))
	}
	method := core.MethodOSharing
	if req.Method != "" {
		var err error
		if method, err = core.ParseMethod(req.Method); err != nil {
			return nil, errBadRequest("%w: %v", core.ErrBadOptions, err)
		}
	}
	parseStart := time.Now()
	prep, canonical, reused, err := sc.Prepare(req.Query)
	if err != nil {
		return nil, apiErr(http.StatusBadRequest, err)
	}
	if reused {
		s.metrics.preparedReuses.Add(1)
	} else {
		s.metrics.preparedBuilds.Add(1)
		s.metrics.stageParse.Observe(time.Since(parseStart))
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Scatter executions spend the same evaluation capacity as /v1/query
	// evaluations, so they queue for the same slots; a saturated node answers
	// 429 with the queue-wait budget as its Retry-After and the coordinator's
	// backoff takes it from there.
	wait, err := s.queue.Acquire(ctx, "scatter", 1, s.cfg.QueueWait)
	s.metrics.queueWait.Observe(wait)
	if err != nil {
		if errors.Is(err, qos.ErrSaturated) {
			return nil, apiErrRetry(http.StatusTooManyRequests, s.cfg.QueueWait,
				fmt.Errorf("%w: no evaluation slot within %v", ErrOverloaded, s.cfg.QueueWait))
		}
		return nil, err
	}
	defer s.queue.Release()

	epoch := sc.Epoch()
	ec := exec.NewContext(ctx, s.cfg.Parallelism)
	sp, err := prep.Scatter(ec, core.Options{Method: method, Parallelism: s.cfg.Parallelism})
	if err != nil {
		if errors.Is(err, core.ErrNotShardable) {
			return nil, apiErr(http.StatusUnprocessableEntity, fmt.Errorf("%w: %v", ErrNotDistributable, err))
		}
		s.metrics.evalErrors.Add(1)
		return nil, err
	}
	if sh := s.cfg.Shard; sh != nil && sh.Count > 1 {
		for _, g := range sp.Groups {
			if g.Plan != nil && !shard.Distributable(g.Plan, sh.Relation) {
				return nil, apiErr(http.StatusUnprocessableEntity,
					fmt.Errorf("%w: a reformulated plan self-joins or aggregates the partitioned relation %q", ErrNotDistributable, sh.Relation))
			}
		}
	}
	run, err := sp.ExecuteOn(ec, sc.DB())
	if err != nil {
		s.metrics.evalErrors.Add(1)
		return nil, err
	}
	s.metrics.indexBuilds.Add(int64(run.Stats.IndexBuilds()))
	s.metrics.indexLookups.Add(int64(run.Stats.IndexLookups()))
	s.metrics.operators.Add(int64(run.Stats.TotalOperators()))
	s.metrics.stageExecute.Observe(run.ExecTime)

	resp := &ScatterResponse{
		Scenario:     sc.Name(),
		Epoch:        epoch,
		Query:        canonical,
		Method:       method.String(),
		Columns:      core.OutputColumns(prep.Query()),
		PreEmptyProb: sp.PreEmptyProb,
		Groups:       make([]ScatterGroupJSON, len(sp.Groups)),
		Shard:        s.cfg.Shard,
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, g := range sp.Groups {
		gj := ScatterGroupJSON{Prob: g.Prob, Covered: g.Plan != nil}
		if rel := run.Rels[i]; rel != nil {
			gj.Rows = make([][]WireValue, len(rel.Rows))
			for ri, row := range rel.Rows {
				gj.Rows[ri] = wireValues(row)
			}
		}
		resp.Groups[i] = gj
	}
	return resp, nil
}

func (s *Server) handleScatter(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ScatterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return
	}
	resp, err := s.Scatter(r.Context(), req)
	if err != nil {
		status := http.StatusInternalServerError
		var ae *apiError
		switch {
		case errors.As(err, &ae):
			status = ae.status
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = 499
		}
		body := map[string]any{"error": err.Error(), "status": status}
		if retryAfter := RetryAfter(err); retryAfter > 0 {
			setRetryAfter(w, body, retryAfter)
		}
		writeJSON(w, status, body)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
