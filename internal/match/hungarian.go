package match

import (
	"fmt"
	"math"
)

// assignmentProblem is a maximum-weight bipartite assignment instance over
// rows (target attributes) and columns (source attributes).  Weights of
// negative infinity mark forbidden pairs.  The solver may leave a row
// unassigned when every remaining column is forbidden or when skipping yields
// a higher total weight than only non-positive candidates (weights are
// expected to be positive for real candidate correspondences).
type assignmentProblem struct {
	weights [][]float64 // weights[row][col]
}

var negInf = math.Inf(-1)

// newAssignmentProblem copies the weight matrix.
func newAssignmentProblem(weights [][]float64) *assignmentProblem {
	w := make([][]float64, len(weights))
	for i := range weights {
		w[i] = make([]float64, len(weights[i]))
		copy(w[i], weights[i])
	}
	return &assignmentProblem{weights: w}
}

// clone deep-copies the problem.
func (p *assignmentProblem) clone() *assignmentProblem {
	return newAssignmentProblem(p.weights)
}

// forbid marks a (row, col) pair as unusable.
func (p *assignmentProblem) forbid(row, col int) { p.weights[row][col] = negInf }

// require forces row to be assigned to col by forbidding every alternative in
// the same row and the same column.
func (p *assignmentProblem) require(row, col int) {
	for c := range p.weights[row] {
		if c != col {
			p.weights[row][c] = negInf
		}
	}
	for r := range p.weights {
		if r != row {
			p.weights[r][col] = negInf
		}
	}
}

// assignment is a solution: assign[row] = col, or -1 when the row is left
// unassigned.  Weight is the total weight of the assigned pairs.
type assignment struct {
	assign []int
	weight float64
}

// solve finds a maximum-weight assignment using the Jonker–Volgenant style
// Hungarian algorithm with potentials (O(n^3)).  Unassignable rows (all
// candidates forbidden or non-positive) are matched to a dummy column, which
// appears in the result as -1.
func (p *assignmentProblem) solve() (*assignment, bool) {
	nRows := len(p.weights)
	if nRows == 0 {
		return &assignment{assign: nil, weight: 0}, true
	}
	nCols := len(p.weights[0])
	// Build a square cost matrix of size n = nRows + nCols: real columns plus
	// one dummy column per row (cost 0, meaning "leave unassigned"), and dummy
	// rows so the matrix is square.  Costs are negated weights so the standard
	// minimisation Hungarian applies.  Forbidden pairs get a huge cost.
	n := nRows + nCols
	const bigCost = 1e9
	cost := make([][]float64, n+1)
	for i := range cost {
		cost[i] = make([]float64, n+1)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			switch {
			case i <= nRows && j <= nCols:
				w := p.weights[i-1][j-1]
				if math.IsInf(w, -1) {
					cost[i][j] = bigCost
				} else {
					cost[i][j] = -w
				}
			case i <= nRows && j > nCols:
				// Dummy column for row i: only the row's own dummy is free so a
				// row skips at zero gain; other rows' dummies are available at
				// zero too (they are interchangeable), which is fine.
				cost[i][j] = 0
			case i > nRows && j <= nCols:
				// Dummy row for column j: zero cost (column left unassigned).
				cost[i][j] = 0
			default:
				cost[i][j] = 0
			}
		}
	}

	// Hungarian algorithm with potentials (1-indexed).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	matchCol := make([]int, n+1) // matchCol[col] = row
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}

	assign := make([]int, nRows)
	for i := range assign {
		assign[i] = -1
	}
	total := 0.0
	feasible := true
	for j := 1; j <= n; j++ {
		i := matchCol[j]
		if i >= 1 && i <= nRows && j <= nCols {
			w := p.weights[i-1][j-1]
			if math.IsInf(w, -1) || cost[i][j] >= bigCost {
				// The solver was forced onto a forbidden pair; treat the row as
				// unassigned and remember that the constrained problem may be
				// infeasible for required edges.
				feasible = false
				continue
			}
			if w <= 0 {
				// Prefer leaving the row unassigned over a non-positive gain.
				continue
			}
			assign[i-1] = j - 1
			total += w
		}
	}
	return &assignment{assign: assign, weight: total}, feasible
}

// String renders the assignment for debugging.
func (a *assignment) String() string {
	return fmt.Sprintf("assignment(weight=%.3f, pairs=%v)", a.weight, a.assign)
}
