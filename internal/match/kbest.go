package match

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/probdb/urm/internal/schema"
)

// KBestOptions controls possible-mapping generation.
type KBestOptions struct {
	// K is the number of possible mappings to generate (the paper's h).
	K int
	// MaxExpansions bounds the number of Murty expansions as a safety valve
	// for adversarial inputs; 0 means no bound.
	MaxExpansions int
}

// KBestMappings derives the top-K one-to-one partial mappings from a scored
// correspondence set, ranked by total similarity score, and normalises their
// scores into probabilities (Pr(mi) = score(mi) / Σ score(mj)).  This is the
// mapping-generation procedure of Gal [9] and Cheng et al. [10] that the
// paper assumes as input.
//
// The enumeration uses a maximum-weight bipartite assignment (Hungarian
// algorithm) combined with Murty's ranking algorithm.  Target attributes that
// have a single unambiguous candidate are factored out before ranking, which
// keeps the assignment problems small for realistic matcher outputs where
// only a handful of attributes are ambiguous.
//
// Fewer than K mappings are returned when the correspondence set does not
// admit K distinct assignments.
func KBestMappings(corrs []schema.Correspondence, opts KBestOptions) (schema.MappingSet, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("kbest: K must be positive, got %d", opts.K)
	}
	if len(corrs) == 0 {
		return nil, fmt.Errorf("kbest: no correspondences")
	}
	for _, c := range corrs {
		if c.Score <= 0 {
			return nil, fmt.Errorf("kbest: correspondence %v has non-positive score", c)
		}
	}

	// Index target (row) and source (column) attributes.
	rowIdx := make(map[schema.Attribute]int)
	colIdx := make(map[schema.Attribute]int)
	var rows, cols []schema.Attribute
	for _, c := range corrs {
		if _, ok := rowIdx[c.Target]; !ok {
			rowIdx[c.Target] = len(rows)
			rows = append(rows, c.Target)
		}
		if _, ok := colIdx[c.Source]; !ok {
			colIdx[c.Source] = len(cols)
			cols = append(cols, c.Source)
		}
	}

	// Candidate lists per row and per column.
	type cand struct {
		col   int
		score float64
	}
	rowCands := make([][]cand, len(rows))
	colRows := make(map[int]map[int]bool) // col -> set of rows using it
	weight := make(map[[2]int]float64)
	for _, c := range corrs {
		r, cl := rowIdx[c.Target], colIdx[c.Source]
		key := [2]int{r, cl}
		if old, ok := weight[key]; !ok || c.Score > old {
			if !ok {
				rowCands[r] = append(rowCands[r], cand{col: cl, score: c.Score})
			}
			weight[key] = c.Score
		}
		if colRows[cl] == nil {
			colRows[cl] = make(map[int]bool)
		}
		colRows[cl][r] = true
	}

	// Factor out forced edges: rows with a single candidate whose column is not
	// wanted by any other row are part of every mapping.
	forced := make([]schema.Correspondence, 0)
	ambiguousRows := make([]int, 0, len(rows))
	for r, cands := range rowCands {
		if len(cands) == 1 && len(colRows[cands[0].col]) == 1 {
			forced = append(forced, schema.Correspondence{
				Target: rows[r],
				Source: cols[cands[0].col],
				Score:  weight[[2]int{r, cands[0].col}],
			})
			continue
		}
		ambiguousRows = append(ambiguousRows, r)
	}
	forcedScore := 0.0
	for _, c := range forced {
		forcedScore += c.Score
	}

	// Build the reduced weight matrix over ambiguous rows and the columns they
	// reference.
	redColIdx := make(map[int]int)
	var redCols []int
	for _, r := range ambiguousRows {
		for _, cd := range rowCands[r] {
			if _, ok := redColIdx[cd.col]; !ok {
				redColIdx[cd.col] = len(redCols)
				redCols = append(redCols, cd.col)
			}
		}
	}
	base := make([][]float64, len(ambiguousRows))
	for i, r := range ambiguousRows {
		base[i] = make([]float64, len(redCols))
		for j := range base[i] {
			base[i][j] = negInf
		}
		for _, cd := range rowCands[r] {
			base[i][redColIdx[cd.col]] = cd.score
		}
	}

	toMapping := func(id string, a *assignment) *schema.Mapping {
		cs := make([]schema.Correspondence, 0, len(forced)+len(a.assign))
		cs = append(cs, forced...)
		for i, j := range a.assign {
			if j < 0 {
				continue
			}
			r := ambiguousRows[i]
			cl := redCols[j]
			cs = append(cs, schema.Correspondence{Target: rows[r], Source: cols[cl], Score: weight[[2]int{r, cl}]})
		}
		schema.SortCorrespondences(cs)
		m, err := schema.NewMapping(id, cs, 0)
		if err != nil {
			// One-to-one is guaranteed by the assignment structure; a failure
			// here indicates a bug rather than bad input.
			panic(fmt.Sprintf("kbest: generated invalid mapping: %v", err))
		}
		return m
	}

	// Degenerate case: nothing ambiguous — exactly one possible mapping.
	if len(ambiguousRows) == 0 {
		set := schema.MappingSet{toMapping("m1", &assignment{})}
		set.NormalizeProbabilities()
		return set, nil
	}

	results := murtyKBest(base, opts.K, opts.MaxExpansions)
	out := make(schema.MappingSet, 0, len(results))
	seen := make(map[string]bool)
	for _, a := range results {
		m := toMapping(fmt.Sprintf("m%d", len(out)+1), a)
		sig := m.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, m)
		if len(out) == opts.K {
			break
		}
	}
	_ = forcedScore
	out.NormalizeProbabilities()
	return out, nil
}

// murtyNode is a constrained sub-problem together with its best solution.
type murtyNode struct {
	problem *assignmentProblem
	best    *assignment
}

// murtyQueue is a max-heap of nodes ordered by solution weight.
type murtyQueue []*murtyNode

func (q murtyQueue) Len() int            { return len(q) }
func (q murtyQueue) Less(i, j int) bool  { return q[i].best.weight > q[j].best.weight }
func (q murtyQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *murtyQueue) Push(x interface{}) { *q = append(*q, x.(*murtyNode)) }
func (q *murtyQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// murtyKBest enumerates up to k maximum-weight assignments of the weight
// matrix in non-increasing weight order using Murty's partitioning scheme.
func murtyKBest(weights [][]float64, k, maxExpansions int) []*assignment {
	root := newAssignmentProblem(weights)
	best, ok := root.solve()
	if !ok && best.weight <= 0 {
		return nil
	}
	queue := &murtyQueue{{problem: root, best: best}}
	heap.Init(queue)

	var results []*assignment
	expansions := 0
	for queue.Len() > 0 && len(results) < k {
		node := heap.Pop(queue).(*murtyNode)
		results = append(results, node.best)
		if maxExpansions > 0 && expansions >= maxExpansions {
			continue
		}
		// Partition the node's solution space around its best assignment.
		var pairs [][2]int
		for r, c := range node.best.assign {
			if c >= 0 {
				pairs = append(pairs, [2]int{r, c})
			}
		}
		// Deterministic branch order.
		sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
		child := node.problem
		for i, p := range pairs {
			sub := child.clone()
			sub.forbid(p[0], p[1])
			if a, feasible := sub.solve(); feasible || a.weight > 0 {
				if hasAssignment(a) {
					heap.Push(queue, &murtyNode{problem: sub, best: a})
				}
			}
			expansions++
			// Subsequent children require all previous pairs.
			if i < len(pairs)-1 {
				next := child.clone()
				next.require(p[0], p[1])
				child = next
			}
		}
	}
	return results
}

func hasAssignment(a *assignment) bool {
	for _, c := range a.assign {
		if c >= 0 {
			return true
		}
	}
	return false
}
