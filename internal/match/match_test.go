package match

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/probdb/urm/internal/schema"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"deliverToStreet", []string{"deliver", "to", "street"}},
		{"invoice_to", []string{"invoice", "to"}},
		{"itemNum1", []string{"item", "num", "1"}},
		{"PO", []string{"po"}},
		{"ship-to-phone", []string{"ship", "to", "phone"}},
		{"", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestNGramsAndJaccard(t *testing.T) {
	g := NGrams("phone", 3)
	if len(g) != 3 || !g["pho"] || !g["hon"] || !g["one"] {
		t.Errorf("NGrams(phone,3) = %v", g)
	}
	if len(NGrams("ab", 3)) != 1 {
		t.Error("short strings should yield one gram")
	}
	if len(NGrams("", 3)) != 0 {
		t.Error("empty string should yield no grams")
	}
	if len(NGrams("abc", 0)) != 0 {
		t.Error("non-positive n should yield no grams")
	}
	if JaccardStrings(nil, nil) != 1 {
		t.Error("Jaccard of two empty sets should be 1")
	}
	if JaccardStrings(map[string]bool{"a": true}, nil) != 0 {
		t.Error("Jaccard with one empty set should be 0")
	}
	j := JaccardStrings(map[string]bool{"a": true, "b": true}, map[string]bool{"b": true, "c": true})
	if math.Abs(j-1.0/3.0) > 1e-12 {
		t.Errorf("Jaccard = %g, want 1/3", j)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"phone", "phone", 0},
		{"phone", "phones", 1},
		{"ophone", "hphone", 1},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if EditSimilarity("phone", "phone") != 1 {
		t.Error("identical strings should have edit similarity 1")
	}
	if EditSimilarity("", "") != 1 {
		t.Error("empty strings should have edit similarity 1")
	}
	if s := EditSimilarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint strings similarity = %g, want 0", s)
	}
}

func TestNameSimilarity(t *testing.T) {
	if NameSimilarity("telephone", "telephone") != 1 {
		t.Error("equal names should score 1")
	}
	if NameSimilarity("Telephone", "telephone") != 1 {
		t.Error("case-insensitive equality should score 1")
	}
	related := NameSimilarity("telephone", "phone")
	unrelated := NameSimilarity("telephone", "orderdate")
	if related <= unrelated {
		t.Errorf("telephone~phone (%g) should exceed telephone~orderdate (%g)", related, unrelated)
	}
	synRelated := NameSimilarity("shipToAddress", "deliverToStreet")
	if synRelated <= 0.2 {
		t.Errorf("synonym-related names should have material similarity, got %g", synRelated)
	}
	for _, pair := range [][2]string{{"a", "b"}, {"phone", "telephone"}, {"x", ""}} {
		s := NameSimilarity(pair[0], pair[1])
		if s < 0 || s > 1 {
			t.Errorf("similarity out of range for %v: %g", pair, s)
		}
	}
}

// Property: similarity is symmetric and bounded.
func TestNameSimilarityProperties(t *testing.T) {
	words := []string{"phone", "telephone", "addr", "address", "orderNum", "itemNum", "price", "total", "cname", "pname", "x", ""}
	prop := func(i, j uint8) bool {
		a := words[int(i)%len(words)]
		b := words[int(j)%len(words)]
		s1, s2 := NameSimilarity(a, b), NameSimilarity(b, a)
		return math.Abs(s1-s2) < 1e-12 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHungarianSimple(t *testing.T) {
	// Classic 3x3: optimal assignment is the diagonal-ish max.
	w := [][]float64{
		{0.9, 0.2, 0.1},
		{0.3, 0.8, 0.1},
		{0.1, 0.2, 0.7},
	}
	p := newAssignmentProblem(w)
	a, ok := p.solve()
	if !ok {
		t.Fatal("solve reported infeasible")
	}
	if math.Abs(a.weight-2.4) > 1e-9 {
		t.Errorf("weight = %g, want 2.4", a.weight)
	}
	for i, j := range a.assign {
		if i != j {
			t.Errorf("assign[%d] = %d, want diagonal", i, j)
		}
	}
}

func TestHungarianPrefersSwap(t *testing.T) {
	// Greedy would take (0,0)=0.9 then (1,1)=0.1 for 1.0, but the optimum is
	// the anti-diagonal 0.8+0.8=1.6.
	w := [][]float64{
		{0.9, 0.8},
		{0.8, 0.1},
	}
	a, _ := newAssignmentProblem(w).solve()
	if math.Abs(a.weight-1.6) > 1e-9 {
		t.Errorf("weight = %g, want 1.6", a.weight)
	}
}

func TestHungarianPartialAndForbidden(t *testing.T) {
	// Row 1 has no usable candidate; it must stay unassigned.
	w := [][]float64{
		{0.9, 0.5},
		{negInf, negInf},
	}
	a, _ := newAssignmentProblem(w).solve()
	if a.assign[1] != -1 {
		t.Errorf("row 1 should be unassigned, got %d", a.assign[1])
	}
	if math.Abs(a.weight-0.9) > 1e-9 {
		t.Errorf("weight = %g, want 0.9", a.weight)
	}
	// More rows than columns: at most one row can be assigned.
	w2 := [][]float64{{0.5}, {0.6}, {0.7}}
	a2, _ := newAssignmentProblem(w2).solve()
	assigned := 0
	for _, c := range a2.assign {
		if c >= 0 {
			assigned++
		}
	}
	if assigned != 1 || math.Abs(a2.weight-0.7) > 1e-9 {
		t.Errorf("rectangular case: assigned=%d weight=%g", assigned, a2.weight)
	}
	// Empty problem.
	a3, ok := newAssignmentProblem(nil).solve()
	if !ok || a3.weight != 0 {
		t.Errorf("empty problem should solve trivially, got %v %v", a3, ok)
	}
	if a.String() == "" {
		t.Error("assignment String should not be empty")
	}
}

func TestRequireAndForbid(t *testing.T) {
	w := [][]float64{
		{0.9, 0.8},
		{0.8, 0.1},
	}
	p := newAssignmentProblem(w)
	p.require(0, 0) // force the greedy edge
	a, _ := p.solve()
	if a.assign[0] != 0 {
		t.Errorf("required edge not used: %v", a.assign)
	}
	if math.Abs(a.weight-1.0) > 1e-9 {
		t.Errorf("weight with requirement = %g, want 1.0", a.weight)
	}
	p2 := newAssignmentProblem(w)
	p2.forbid(0, 1)
	p2.forbid(1, 0)
	a2, _ := p2.solve()
	if math.Abs(a2.weight-1.0) > 1e-9 {
		t.Errorf("weight with forbidden anti-diagonal = %g, want 1.0", a2.weight)
	}
}

// bruteForceKBest enumerates all one-to-one partial assignments of the matrix
// and returns the totals of the top k, for cross-checking Murty.
func bruteForceKBest(w [][]float64, k int) []float64 {
	nRows := len(w)
	nCols := 0
	if nRows > 0 {
		nCols = len(w[0])
	}
	var totals []float64
	seen := make(map[string]bool)
	var rec func(row int, used []bool, sum float64, sig string)
	rec = func(row int, used []bool, sum float64, sig string) {
		if row == nRows {
			if !seen[sig] {
				seen[sig] = true
				totals = append(totals, sum)
			}
			return
		}
		rec(row+1, used, sum, sig+".")
		for c := 0; c < nCols; c++ {
			if used[c] || math.IsInf(w[row][c], -1) || w[row][c] <= 0 {
				continue
			}
			used[c] = true
			rec(row+1, used, sum+w[row][c], sig+string(rune('a'+c)))
			used[c] = false
		}
	}
	rec(0, make([]bool, nCols), 0, "")
	sort.Sort(sort.Reverse(sort.Float64Slice(totals)))
	if len(totals) > k {
		totals = totals[:k]
	}
	return totals
}

func TestMurtyKBestMatchesBruteForce(t *testing.T) {
	w := [][]float64{
		{0.9, 0.6, negInf},
		{0.7, 0.8, 0.3},
		{negInf, 0.5, 0.4},
	}
	got := murtyKBest(w, 8, 0)
	want := bruteForceKBest(w, 8)
	if len(got) == 0 {
		t.Fatal("murty returned no assignments")
	}
	// Murty's solutions must come out in non-increasing weight order and the
	// i-th weight must match the brute-force i-th best mapping weight.
	for i := 1; i < len(got); i++ {
		if got[i].weight > got[i-1].weight+1e-9 {
			t.Errorf("murty weights not sorted: %g after %g", got[i].weight, got[i-1].weight)
		}
	}
	limit := len(got)
	if len(want) < limit {
		limit = len(want)
	}
	for i := 0; i < limit; i++ {
		if math.Abs(got[i].weight-want[i]) > 1e-9 {
			t.Errorf("k=%d: murty weight %g, brute force %g", i, got[i].weight, want[i])
		}
	}
}

func attr(rel, name string) schema.Attribute { return schema.Attribute{Relation: rel, Name: name} }

// figure1Correspondences reproduces the running example of Figure 1: the
// Person target relation with ambiguous phone and addr attributes.
func figure1Correspondences() []schema.Correspondence {
	return []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "hphone"), Target: attr("Person", "phone"), Score: 0.83},
		{Source: attr("Customer", "mobile"), Target: attr("Person", "phone"), Score: 0.65},
		{Source: attr("Customer", "oaddr"), Target: attr("Person", "addr"), Score: 0.75},
		{Source: attr("Customer", "haddr"), Target: attr("Person", "addr"), Score: 0.65},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
	}
}

func TestKBestMappingsFigure1(t *testing.T) {
	set, err := KBestMappings(figure1Correspondences(), KBestOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 5 {
		t.Fatalf("got %d mappings, want 5", len(set))
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("mapping set invalid: %v", err)
	}
	// Probabilities are sorted non-increasing because mapping scores are.
	for i := 1; i < len(set); i++ {
		if set[i].Prob > set[i-1].Prob+1e-9 {
			t.Errorf("probabilities not ordered: %g after %g", set[i].Prob, set[i-1].Prob)
		}
	}
	// The best mapping uses the highest-score alternatives: ophone and oaddr.
	best := set[0]
	if src, _ := best.SourceFor(attr("Person", "phone")); src != attr("Customer", "ophone") {
		t.Errorf("best mapping phone -> %v, want ophone", src)
	}
	if src, _ := best.SourceFor(attr("Person", "addr")); src != attr("Customer", "oaddr") {
		t.Errorf("best mapping addr -> %v, want oaddr", src)
	}
	// Every mapping keeps the unambiguous correspondences.
	for _, m := range set {
		if src, ok := m.SourceFor(attr("Person", "pname")); !ok || src != attr("Customer", "cname") {
			t.Errorf("mapping %s lost forced correspondence pname->cname", m.ID)
		}
	}
	// All signatures are distinct.
	sigs := make(map[string]bool)
	for _, m := range set {
		if sigs[m.Signature()] {
			t.Errorf("duplicate mapping signature for %s", m.ID)
		}
		sigs[m.Signature()] = true
	}
	// Mappings overlap highly, the property the paper exploits.
	if r := set.ORatio(); r < 0.4 {
		t.Errorf("o-ratio = %g, expected high overlap", r)
	}
}

func TestKBestMappingsErrors(t *testing.T) {
	if _, err := KBestMappings(nil, KBestOptions{K: 3}); err == nil {
		t.Error("empty correspondences should error")
	}
	if _, err := KBestMappings(figure1Correspondences(), KBestOptions{K: 0}); err == nil {
		t.Error("K=0 should error")
	}
	bad := []schema.Correspondence{{Source: attr("A", "a"), Target: attr("B", "b"), Score: 0}}
	if _, err := KBestMappings(bad, KBestOptions{K: 1}); err == nil {
		t.Error("non-positive scores should error")
	}
}

func TestKBestMappingsUnambiguous(t *testing.T) {
	corrs := []schema.Correspondence{
		{Source: attr("C", "a"), Target: attr("T", "x"), Score: 0.9},
		{Source: attr("C", "b"), Target: attr("T", "y"), Score: 0.8},
	}
	set, err := KBestMappings(corrs, KBestOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("unambiguous matching should yield exactly 1 mapping, got %d", len(set))
	}
	if set[0].Prob != 1 {
		t.Errorf("single mapping probability = %g, want 1", set[0].Prob)
	}
	if set[0].Size() != 2 {
		t.Errorf("mapping size = %d, want 2", set[0].Size())
	}
}

func personCustomerSchemas() (*schema.Schema, *schema.Schema) {
	src := schema.NewSchema("Source")
	src.MustAddRelation(&schema.RelationSchema{Name: "Customer", Columns: []schema.Column{
		{Name: "cid"}, {Name: "cname"}, {Name: "ophone"}, {Name: "hphone"}, {Name: "mobile"},
		{Name: "oaddr"}, {Name: "haddr"}, {Name: "nid"},
	}})
	src.MustAddRelation(&schema.RelationSchema{Name: "Nation", Columns: []schema.Column{
		{Name: "nid"}, {Name: "name"},
	}})
	tgt := schema.NewSchema("Target")
	tgt.MustAddRelation(&schema.RelationSchema{Name: "Person", Columns: []schema.Column{
		{Name: "pname"}, {Name: "phone"}, {Name: "addr"}, {Name: "nation"}, {Name: "gender"},
	}})
	return src, tgt
}

func TestMatcherProducesAmbiguousCandidates(t *testing.T) {
	src, tgt := personCustomerSchemas()
	mt := NewMatcher(MatcherOptions{Threshold: 0.4}).Match(src, tgt)
	if err := mt.Validate(); err != nil {
		t.Fatalf("matching invalid: %v", err)
	}
	if len(mt.Correspondences) == 0 {
		t.Fatal("matcher found no correspondences")
	}
	// The phone target attribute should have several candidates (ophone,
	// hphone, mobile) — this ambiguity is what creates multiple mappings.
	phoneCands := 0
	for _, c := range mt.Correspondences {
		if c.Target == attr("Person", "phone") {
			phoneCands++
		}
	}
	if phoneCands < 2 {
		t.Errorf("phone has %d candidates, want >= 2", phoneCands)
	}
}

func TestBuildMatching(t *testing.T) {
	src, tgt := personCustomerSchemas()
	mt, err := BuildMatching(src, tgt, MatcherOptions{Threshold: 0.4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mt.Mappings) == 0 {
		t.Fatal("no mappings derived")
	}
	if err := mt.Mappings.Validate(); err != nil {
		t.Errorf("mappings invalid: %v", err)
	}
	if len(mt.Mappings) > 5 {
		t.Errorf("more mappings than requested: %d", len(mt.Mappings))
	}
	// MaxCandidatesPerTarget trims candidates.
	trimmed := NewMatcher(MatcherOptions{Threshold: 0.4, MaxCandidatesPerTarget: 1}).Match(src, tgt)
	perTarget := make(map[schema.Attribute]int)
	for _, c := range trimmed.Correspondences {
		perTarget[c.Target]++
	}
	for a, n := range perTarget {
		if n > 1 {
			t.Errorf("target %v has %d candidates after trimming", a, n)
		}
	}
	// Error paths.
	if err := DeriveMappings(nil, 5); err == nil {
		t.Error("DeriveMappings(nil) should error")
	}
	empty := schema.NewSchema("Empty")
	if _, err := BuildMatching(empty, tgt, MatcherOptions{}, 5); err == nil {
		t.Error("BuildMatching with empty source should error")
	}
}

// Property: for any correspondence set built from a small random pattern, the
// generated mapping set validates, has at most K members, all one-to-one.
func TestKBestMappingsProperty(t *testing.T) {
	prop := func(seed uint16, kRaw uint8) bool {
		k := int(kRaw)%6 + 1
		// Build up to 4 target attributes, each with 1-3 source candidates
		// drawn from a pool of 5 sources (shared across targets, creating
		// conflicts).
		var corrs []schema.Correspondence
		s := uint32(seed) + 1
		next := func(n int) int {
			s = s*1664525 + 1013904223
			return int(s>>16) % n
		}
		sources := []string{"s1", "s2", "s3", "s4", "s5"}
		for ti := 0; ti < 4; ti++ {
			nc := next(3) + 1
			used := map[int]bool{}
			for c := 0; c < nc; c++ {
				si := next(len(sources))
				if used[si] {
					continue
				}
				used[si] = true
				corrs = append(corrs, schema.Correspondence{
					Source: attr("S", sources[si]),
					Target: attr("T", string(rune('a'+ti))),
					Score:  0.1 + float64(next(90))/100.0,
				})
			}
		}
		if len(corrs) == 0 {
			return true
		}
		set, err := KBestMappings(corrs, KBestOptions{K: k})
		if err != nil {
			return false
		}
		if len(set) == 0 || len(set) > k {
			return false
		}
		return set.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
