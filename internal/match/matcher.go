package match

import (
	"fmt"

	"github.com/probdb/urm/internal/schema"
)

// MatcherOptions configures the lexical schema matcher.
type MatcherOptions struct {
	// Threshold is the minimum similarity for a candidate correspondence to be
	// reported.  Defaults to 0.45, which keeps only plausible pairs while still
	// producing ambiguous candidates for related attributes.
	Threshold float64
	// MaxCandidatesPerTarget caps how many source candidates are kept per
	// target attribute (highest scores win).  0 means unlimited.
	MaxCandidatesPerTarget int
	// Synonyms optionally overrides the built-in synonym table.
	Synonyms map[string]string
	// RelationWeight is the contribution of relation-name similarity to the
	// final score (attribute-name similarity contributes the rest).  Defaults
	// to 0.2.
	RelationWeight float64
}

func (o MatcherOptions) withDefaults() MatcherOptions {
	if o.Threshold <= 0 {
		o.Threshold = 0.45
	}
	if o.RelationWeight <= 0 {
		o.RelationWeight = 0.2
	}
	if o.Synonyms == nil {
		o.Synonyms = defaultSynonyms
	}
	return o
}

// Matcher produces scored attribute correspondences between two schemas using
// composite lexical similarity.  It is the reproduction's stand-in for
// COMA++: the downstream algorithms only require a scored correspondence set,
// which this matcher provides with comparable shape (a few dozen candidates,
// scores in (0,1], some target attributes with several competing candidates).
type Matcher struct {
	opts MatcherOptions
}

// NewMatcher returns a matcher with the given options.
func NewMatcher(opts MatcherOptions) *Matcher {
	return &Matcher{opts: opts.withDefaults()}
}

// Match computes the scored correspondences between the source and target
// schemas.  The result contains no mappings; use DeriveMappings or
// BuildMatching to generate them.
func (m *Matcher) Match(source, target *schema.Schema) *schema.Matching {
	var corrs []schema.Correspondence
	for _, tRel := range target.Relations {
		for _, tCol := range tRel.Columns {
			tAttr := schema.Attribute{Relation: tRel.Name, Name: tCol.Name}
			var best []schema.Correspondence
			for _, sRel := range source.Relations {
				relSim := NameSimilarityWith(sRel.Name, tRel.Name, m.opts.Synonyms)
				for _, sCol := range sRel.Columns {
					attrSim := NameSimilarityWith(sCol.Name, tCol.Name, m.opts.Synonyms)
					score := (1-m.opts.RelationWeight)*attrSim + m.opts.RelationWeight*relSim
					if score < m.opts.Threshold {
						continue
					}
					if score > 1 {
						score = 1
					}
					best = append(best, schema.Correspondence{
						Source: schema.Attribute{Relation: sRel.Name, Name: sCol.Name},
						Target: tAttr,
						Score:  score,
					})
				}
			}
			schema.SortCorrespondences(best)
			if m.opts.MaxCandidatesPerTarget > 0 && len(best) > m.opts.MaxCandidatesPerTarget {
				best = best[:m.opts.MaxCandidatesPerTarget]
			}
			corrs = append(corrs, best...)
		}
	}
	schema.SortCorrespondences(corrs)
	return &schema.Matching{Source: source, Target: target, Correspondences: corrs}
}

// DeriveMappings populates the matching's possible mappings with the top-h
// assignments derived from its correspondences.
func DeriveMappings(mt *schema.Matching, h int) error {
	if mt == nil {
		return fmt.Errorf("derive mappings: nil matching")
	}
	set, err := KBestMappings(mt.Correspondences, KBestOptions{K: h})
	if err != nil {
		return fmt.Errorf("derive mappings: %w", err)
	}
	mt.Mappings = set
	return nil
}

// BuildMatching runs the matcher and derives h possible mappings in one step.
func BuildMatching(source, target *schema.Schema, opts MatcherOptions, h int) (*schema.Matching, error) {
	mt := NewMatcher(opts).Match(source, target)
	if len(mt.Correspondences) == 0 {
		return nil, fmt.Errorf("matcher found no correspondences between %s and %s", source.Name, target.Name)
	}
	if err := DeriveMappings(mt, h); err != nil {
		return nil, err
	}
	if err := mt.Validate(); err != nil {
		return nil, fmt.Errorf("generated matching is invalid: %w", err)
	}
	return mt, nil
}
