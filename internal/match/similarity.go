// Package match provides the schema-matching substrate of the reproduction:
// a lexical similarity matcher that stands in for COMA++ (which is
// closed-source) and a k-best bipartite mapping generator (Hungarian
// assignment plus Murty's algorithm) that derives the set of h possible
// mappings with probabilities, as described in Sections I–II of the paper and
// its references [9], [10].
package match

import (
	"strings"
	"unicode"
)

// Tokenize splits an attribute name into lower-cased word tokens.  It handles
// camelCase, snake_case, kebab-case and digit boundaries, e.g.
// "deliverToStreet" -> ["deliver", "to", "street"].
func Tokenize(name string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == '.' || r == ' ':
			flush()
		case unicode.IsUpper(r):
			// Start of a new camelCase token unless the previous rune was also
			// upper-case (acronym run).
			if i > 0 && !unicode.IsUpper(runes[i-1]) {
				flush()
			}
			cur.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			if i > 0 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}

// NGrams returns the set of character n-grams of the lower-cased string.
func NGrams(s string, n int) map[string]bool {
	s = strings.ToLower(s)
	grams := make(map[string]bool)
	if n <= 0 {
		return grams
	}
	if len(s) < n {
		if s != "" {
			grams[s] = true
		}
		return grams
	}
	for i := 0; i+n <= len(s); i++ {
		grams[s[i:i+n]] = true
	}
	return grams
}

// JaccardStrings computes the Jaccard similarity of two string sets.
func JaccardStrings(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// EditDistance returns the Levenshtein distance between two strings.
func EditDistance(a, b string) int {
	a, b = strings.ToLower(a), strings.ToLower(b)
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// EditSimilarity converts edit distance to a similarity in [0,1].
func EditSimilarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	d := EditDistance(a, b)
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(d)/float64(max)
}

// defaultSynonyms maps tokens to canonical concepts so that, for example,
// "phone" and "telephone" or "addr" and "address" are recognised as related,
// mimicking the auxiliary thesaurus COMA++ uses.
var defaultSynonyms = map[string]string{
	"phone":     "phone",
	"telephone": "phone",
	"tel":       "phone",
	"mobile":    "phone",
	"fax":       "phone",
	"addr":      "address",
	"address":   "address",
	"street":    "address",
	"city":      "address",
	"name":      "name",
	"cname":     "name",
	"pname":     "name",
	"sname":     "name",
	"firstname": "name",
	"lastname":  "name",
	"nation":    "nation",
	"country":   "nation",
	"price":     "price",
	"cost":      "price",
	"amount":    "price",
	"total":     "price",
	"qty":       "quantity",
	"quantity":  "quantity",
	"num":       "number",
	"number":    "number",
	"no":        "number",
	"id":        "number",
	"key":       "number",
	"date":      "date",
	"time":      "date",
	"comment":   "comment",
	"remark":    "comment",
	"note":      "comment",
	"item":      "item",
	"part":      "item",
	"product":   "item",
	"order":     "order",
	"po":        "order",
	"purchase":  "order",
	"customer":  "customer",
	"cust":      "customer",
	"person":    "customer",
	"supplier":  "supplier",
	"vendor":    "supplier",
	"ship":      "deliver",
	"deliver":   "deliver",
	"delivery":  "deliver",
	"bill":      "invoice",
	"invoice":   "invoice",
	"status":    "status",
	"priority":  "priority",
	"segment":   "segment",
	"balance":   "balance",
	"account":   "balance",
	"discount":  "discount",
	"tax":       "tax",
	"size":      "size",
	"type":      "type",
	"brand":     "brand",
	"company":   "company",
	"clerk":     "clerk",
	"contact":   "contact",
	"region":    "region",
	"email":     "email",
	"mail":      "email",
}

// synonymOverlap measures the fraction of tokens in a and b that map to a
// shared canonical concept.
func synonymOverlap(aTokens, bTokens []string, synonyms map[string]string) float64 {
	if len(aTokens) == 0 || len(bTokens) == 0 {
		return 0
	}
	conceptsA := make(map[string]bool)
	for _, t := range aTokens {
		if c, ok := synonyms[t]; ok {
			conceptsA[c] = true
		}
	}
	conceptsB := make(map[string]bool)
	for _, t := range bTokens {
		if c, ok := synonyms[t]; ok {
			conceptsB[c] = true
		}
	}
	if len(conceptsA) == 0 || len(conceptsB) == 0 {
		return 0
	}
	return JaccardStrings(conceptsA, conceptsB)
}

// tokenSet converts a token slice to a set.
func tokenSet(tokens []string) map[string]bool {
	s := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		s[t] = true
	}
	return s
}

// NameSimilarity is the composite lexical similarity between two attribute
// names: a weighted blend of token Jaccard, trigram Jaccard, edit similarity
// and synonym-concept overlap.  It approximates the combined matcher score
// COMA++ produces for a candidate correspondence.
func NameSimilarity(a, b string) float64 {
	return NameSimilarityWith(a, b, defaultSynonyms)
}

// NameSimilarityWith is NameSimilarity with a caller-provided synonym table.
func NameSimilarityWith(a, b string, synonyms map[string]string) float64 {
	if strings.EqualFold(a, b) {
		return 1
	}
	ta, tb := Tokenize(a), Tokenize(b)
	token := JaccardStrings(tokenSet(ta), tokenSet(tb))
	gram := JaccardStrings(NGrams(a, 3), NGrams(b, 3))
	edit := EditSimilarity(a, b)
	syn := synonymOverlap(ta, tb, synonyms)
	blend := 0.30*token + 0.25*gram + 0.20*edit + 0.25*syn

	// COMA-style combination: a strong signal from a single matcher (substring
	// containment such as "ophone"/"phone", or synonym-concept agreement such
	// as "mobile"/"phone") should dominate a mediocre blend.
	score := blend
	if c := 0.80 * containment(a, b); c > score {
		score = c
	}
	if s := 0.70 * syn; s > score {
		score = s
	}
	if score > 1 {
		score = 1
	}
	if score < 0 {
		score = 0
	}
	return score
}

// containment measures substring containment between the lower-cased names:
// if one contains the other it returns len(shorter)/len(longer), else 0.
func containment(a, b string) float64 {
	la, lb := strings.ToLower(a), strings.ToLower(b)
	if la == "" || lb == "" {
		return 0
	}
	shorter, longer := la, lb
	if len(shorter) > len(longer) {
		shorter, longer = longer, shorter
	}
	if strings.Contains(longer, shorter) {
		return float64(len(shorter)) / float64(len(longer))
	}
	return 0
}
