// Package schema models relational schemas, attribute correspondences and the
// possible-mapping representation of an uncertain schema matching, as defined
// in Section III of "Evaluating Probabilistic Queries over Uncertain Matching"
// (Cheng et al., ICDE 2012).
//
// A Schema is a named collection of relations, each with a list of attributes.
// A Correspondence relates one source attribute to one target attribute with a
// similarity score.  A Mapping is a one-to-one, partial set of correspondences
// together with the probability that the mapping is the correct one.  A
// Matching is the full uncertain matching: the scored correspondence matrix
// produced by a matcher plus the derived set of possible mappings.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute identifies a single attribute (column) of a relation within a
// schema.  Attributes are value types and compare with ==.
type Attribute struct {
	// Relation is the name of the relation the attribute belongs to.
	Relation string
	// Name is the attribute (column) name, unique within its relation.
	Name string
}

// String returns the qualified "Relation.Name" form.
func (a Attribute) String() string { return a.Relation + "." + a.Name }

// IsZero reports whether the attribute is the zero value.
func (a Attribute) IsZero() bool { return a.Relation == "" && a.Name == "" }

// Type enumerates the value types an attribute may carry.  The engine uses it
// to generate and validate data; the matching algorithms treat attributes as
// opaque names.
type Type int

// Supported attribute types.
const (
	TypeString Type = iota
	TypeInt
	TypeFloat
)

// String returns a human-readable type name.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column describes one attribute of a relation schema: its name and type.
type Column struct {
	Name string
	Type Type
}

// RelationSchema is the schema of one relation: an ordered list of columns.
type RelationSchema struct {
	Name    string
	Columns []Column
}

// ColumnIndex returns the position of the named column, or -1 if absent.
func (r *RelationSchema) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the relation contains the named column.
func (r *RelationSchema) HasColumn(name string) bool { return r.ColumnIndex(name) >= 0 }

// Attributes returns the relation's attributes in column order.
func (r *RelationSchema) Attributes() []Attribute {
	attrs := make([]Attribute, len(r.Columns))
	for i, c := range r.Columns {
		attrs[i] = Attribute{Relation: r.Name, Name: c.Name}
	}
	return attrs
}

// Schema is a named set of relation schemas.  It plays both the source-schema
// role (S, with an attached instance) and the target-schema role (T).
type Schema struct {
	Name      string
	Relations []*RelationSchema

	byName map[string]*RelationSchema
}

// NewSchema creates an empty schema with the given name.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, byName: make(map[string]*RelationSchema)}
}

// AddRelation appends a relation schema.  It returns an error if a relation
// with the same name already exists or if the relation has duplicate columns.
func (s *Schema) AddRelation(rel *RelationSchema) error {
	if s.byName == nil {
		s.byName = make(map[string]*RelationSchema)
	}
	if _, ok := s.byName[rel.Name]; ok {
		return fmt.Errorf("schema %q: duplicate relation %q", s.Name, rel.Name)
	}
	seen := make(map[string]bool, len(rel.Columns))
	for _, c := range rel.Columns {
		if seen[c.Name] {
			return fmt.Errorf("schema %q: relation %q has duplicate column %q", s.Name, rel.Name, c.Name)
		}
		seen[c.Name] = true
	}
	s.Relations = append(s.Relations, rel)
	s.byName[rel.Name] = rel
	return nil
}

// MustAddRelation is AddRelation that panics on error; intended for building
// static schemas in code and tests.
func (s *Schema) MustAddRelation(rel *RelationSchema) {
	if err := s.AddRelation(rel); err != nil {
		panic(err)
	}
}

// Relation returns the named relation schema, or nil if absent.
func (s *Schema) Relation(name string) *RelationSchema {
	if s.byName == nil {
		return nil
	}
	return s.byName[name]
}

// HasAttribute reports whether the schema contains the given attribute.
func (s *Schema) HasAttribute(a Attribute) bool {
	rel := s.Relation(a.Relation)
	return rel != nil && rel.HasColumn(a.Name)
}

// Attributes returns every attribute in the schema, ordered by relation then
// column position.
func (s *Schema) Attributes() []Attribute {
	var attrs []Attribute
	for _, rel := range s.Relations {
		attrs = append(attrs, rel.Attributes()...)
	}
	return attrs
}

// NumAttributes returns the total number of attributes across all relations.
func (s *Schema) NumAttributes() int {
	n := 0
	for _, rel := range s.Relations {
		n += len(rel.Columns)
	}
	return n
}

// AttributeType returns the declared type of the attribute and whether it was
// found.
func (s *Schema) AttributeType(a Attribute) (Type, bool) {
	rel := s.Relation(a.Relation)
	if rel == nil {
		return TypeString, false
	}
	idx := rel.ColumnIndex(a.Name)
	if idx < 0 {
		return TypeString, false
	}
	return rel.Columns[idx].Type, true
}

// RelationOf returns the relation schema that owns the attribute, or nil.
func (s *Schema) RelationOf(a Attribute) *RelationSchema {
	rel := s.Relation(a.Relation)
	if rel == nil || !rel.HasColumn(a.Name) {
		return nil
	}
	return rel
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := NewSchema(s.Name)
	for _, rel := range s.Relations {
		cols := make([]Column, len(rel.Columns))
		copy(cols, rel.Columns)
		out.MustAddRelation(&RelationSchema{Name: rel.Name, Columns: cols})
	}
	return out
}

// String renders the schema as "name(rel1(a,b,...), rel2(...))" for debugging.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteString("(")
	for i, rel := range s.Relations {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(rel.Name)
		b.WriteString("(")
		for j, c := range rel.Columns {
			if j > 0 {
				b.WriteString(",")
			}
			b.WriteString(c.Name)
		}
		b.WriteString(")")
	}
	b.WriteString(")")
	return b.String()
}

// Correspondence relates a source attribute to a target attribute with the
// similarity score assigned by a matcher.  Scores lie in (0, 1].
type Correspondence struct {
	Source Attribute
	Target Attribute
	Score  float64
}

// String renders the correspondence as "(source, target)@score".
func (c Correspondence) String() string {
	return fmt.Sprintf("(%s, %s)@%.2f", c.Source, c.Target, c.Score)
}

// Key identifies a correspondence irrespective of its score; used for mapping
// overlap and partitioning.
type Key struct {
	Source Attribute
	Target Attribute
}

// Key returns the score-free identity of the correspondence.
func (c Correspondence) Key() Key { return Key{Source: c.Source, Target: c.Target} }

// SortCorrespondences orders correspondences by descending score, breaking
// ties by target then source attribute name for determinism.
func SortCorrespondences(cs []Correspondence) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Score != cs[j].Score {
			return cs[i].Score > cs[j].Score
		}
		if cs[i].Target != cs[j].Target {
			return lessAttr(cs[i].Target, cs[j].Target)
		}
		return lessAttr(cs[i].Source, cs[j].Source)
	})
}

func lessAttr(a, b Attribute) bool {
	if a.Relation != b.Relation {
		return a.Relation < b.Relation
	}
	return a.Name < b.Name
}
