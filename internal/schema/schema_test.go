package schema

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func demoSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema("Src")
	s.MustAddRelation(&RelationSchema{
		Name: "Customer",
		Columns: []Column{
			{Name: "cid", Type: TypeInt},
			{Name: "cname", Type: TypeString},
			{Name: "ophone", Type: TypeString},
			{Name: "hphone", Type: TypeString},
			{Name: "oaddr", Type: TypeString},
			{Name: "haddr", Type: TypeString},
		},
	})
	s.MustAddRelation(&RelationSchema{
		Name: "C_Order",
		Columns: []Column{
			{Name: "oid", Type: TypeInt},
			{Name: "cid", Type: TypeInt},
			{Name: "amount", Type: TypeFloat},
		},
	})
	return s
}

func TestSchemaAddRelationDuplicate(t *testing.T) {
	s := NewSchema("S")
	if err := s.AddRelation(&RelationSchema{Name: "R", Columns: []Column{{Name: "a"}}}); err != nil {
		t.Fatalf("first AddRelation: %v", err)
	}
	if err := s.AddRelation(&RelationSchema{Name: "R", Columns: []Column{{Name: "b"}}}); err == nil {
		t.Fatal("expected error adding duplicate relation")
	}
	if err := s.AddRelation(&RelationSchema{Name: "Q", Columns: []Column{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("expected error adding relation with duplicate column")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := demoSchema(t)
	if got := s.NumAttributes(); got != 9 {
		t.Fatalf("NumAttributes = %d, want 9", got)
	}
	if !s.HasAttribute(Attribute{Relation: "Customer", Name: "ophone"}) {
		t.Error("expected Customer.ophone to exist")
	}
	if s.HasAttribute(Attribute{Relation: "Customer", Name: "missing"}) {
		t.Error("did not expect Customer.missing")
	}
	typ, ok := s.AttributeType(Attribute{Relation: "C_Order", Name: "amount"})
	if !ok || typ != TypeFloat {
		t.Errorf("AttributeType(amount) = %v,%v; want float,true", typ, ok)
	}
	if _, ok := s.AttributeType(Attribute{Relation: "Nope", Name: "x"}); ok {
		t.Error("AttributeType on missing relation should report false")
	}
	if rel := s.RelationOf(Attribute{Relation: "Customer", Name: "cid"}); rel == nil || rel.Name != "Customer" {
		t.Errorf("RelationOf = %v, want Customer", rel)
	}
	if got := len(s.Attributes()); got != 9 {
		t.Errorf("Attributes() length = %d, want 9", got)
	}
	if !strings.Contains(s.String(), "Customer(") {
		t.Errorf("String() = %q lacks relation name", s.String())
	}
}

func TestSchemaClone(t *testing.T) {
	s := demoSchema(t)
	c := s.Clone()
	c.Relation("Customer").Columns[0].Name = "changed"
	if s.Relation("Customer").Columns[0].Name != "cid" {
		t.Error("Clone is not deep: mutation leaked to original")
	}
	if c.NumAttributes() != s.NumAttributes() {
		t.Error("Clone changed attribute count")
	}
}

func attr(rel, name string) Attribute { return Attribute{Relation: rel, Name: name} }

func TestMappingOneToOneValidation(t *testing.T) {
	corrs := []Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
	}
	if _, err := NewMapping("m1", corrs, 0.5); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	dupTarget := append(corrs[:1:1], Correspondence{Source: attr("Customer", "hphone"), Target: attr("Person", "pname"), Score: 0.2})
	if _, err := NewMapping("m2", dupTarget, 0.5); err == nil {
		t.Error("expected error for duplicate target attribute")
	}
	dupSource := append(corrs[:1:1], Correspondence{Source: attr("Customer", "cname"), Target: attr("Person", "phone"), Score: 0.2})
	if _, err := NewMapping("m3", dupSource, 0.5); err == nil {
		t.Error("expected error for duplicate source attribute")
	}
}

func TestMappingLookupAndSignature(t *testing.T) {
	m := MustNewMapping("m1", []Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "oaddr"), Target: attr("Person", "addr"), Score: 0.75},
	}, 0.3)
	src, ok := m.SourceFor(attr("Person", "addr"))
	if !ok || src != attr("Customer", "oaddr") {
		t.Errorf("SourceFor(addr) = %v,%v", src, ok)
	}
	if _, ok := m.SourceFor(attr("Person", "gender")); ok {
		t.Error("SourceFor(gender) should be absent")
	}
	if !m.Covers([]Attribute{attr("Person", "pname"), attr("Person", "addr")}) {
		t.Error("Covers should be true")
	}
	if m.Covers([]Attribute{attr("Person", "pname"), attr("Person", "gender")}) {
		t.Error("Covers should be false for gender")
	}
	m2 := MustNewMapping("m2", []Correspondence{
		{Source: attr("Customer", "oaddr"), Target: attr("Person", "addr"), Score: 0.10},
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.20},
	}, 0.2)
	if m.Signature() != m2.Signature() {
		t.Errorf("signatures differ for same correspondence sets:\n%s\n%s", m.Signature(), m2.Signature())
	}
	proj := []Attribute{attr("Person", "addr")}
	if m.ProjectedSignature(proj) != m2.ProjectedSignature(proj) {
		t.Error("projected signatures should match")
	}
	m3 := MustNewMapping("m3", []Correspondence{
		{Source: attr("Customer", "haddr"), Target: attr("Person", "addr"), Score: 0.65},
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.20},
	}, 0.5)
	if m.ProjectedSignature(proj) == m3.ProjectedSignature(proj) {
		t.Error("projected signatures should differ when addr maps differently")
	}
	if m.TotalScore() != 0.85+0.75 {
		t.Errorf("TotalScore = %g", m.TotalScore())
	}
}

func TestORatio(t *testing.T) {
	m1 := MustNewMapping("m1", []Correspondence{
		{Source: attr("C", "a"), Target: attr("T", "x"), Score: 1},
		{Source: attr("C", "b"), Target: attr("T", "y"), Score: 1},
		{Source: attr("C", "c"), Target: attr("T", "z"), Score: 1},
	}, 0.5)
	m2 := MustNewMapping("m2", []Correspondence{
		{Source: attr("C", "a"), Target: attr("T", "x"), Score: 1},
		{Source: attr("C", "b"), Target: attr("T", "y"), Score: 1},
		{Source: attr("C", "d"), Target: attr("T", "z"), Score: 1},
	}, 0.5)
	got := ORatio(m1, m2)
	want := 2.0 / 4.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ORatio = %g, want %g", got, want)
	}
	if ORatio(m1, m1) != 1 {
		t.Error("self o-ratio should be 1")
	}
	set := MappingSet{m1, m2}
	if math.Abs(set.ORatio()-want) > 1e-12 {
		t.Errorf("set ORatio = %g, want %g", set.ORatio(), want)
	}
	if (MappingSet{m1}).ORatio() != 1 {
		t.Error("singleton set o-ratio should be 1")
	}
}

func TestNormalizeProbabilities(t *testing.T) {
	m1 := MustNewMapping("m1", []Correspondence{{Source: attr("C", "a"), Target: attr("T", "x"), Score: 0.6}}, 0)
	m2 := MustNewMapping("m2", []Correspondence{{Source: attr("C", "b"), Target: attr("T", "x"), Score: 0.4}}, 0)
	set := MappingSet{m1, m2}
	set.NormalizeProbabilities()
	if math.Abs(m1.Prob-0.6) > 1e-12 || math.Abs(m2.Prob-0.4) > 1e-12 {
		t.Errorf("normalized probs = %g,%g; want 0.6,0.4", m1.Prob, m2.Prob)
	}
	if err := set.Validate(); err != nil {
		t.Errorf("Validate after normalize: %v", err)
	}
	// Zero-score sets fall back to uniform.
	z1 := MustNewMapping("z1", nil, 0)
	z2 := MustNewMapping("z2", nil, 0)
	zs := MappingSet{z1, z2}
	zs.NormalizeProbabilities()
	if z1.Prob != 0.5 || z2.Prob != 0.5 {
		t.Errorf("uniform fallback = %g,%g", z1.Prob, z2.Prob)
	}
}

func TestMappingSetValidateErrors(t *testing.T) {
	if err := (MappingSet{}).Validate(); err == nil {
		t.Error("empty set should not validate")
	}
	a := MustNewMapping("m1", nil, 0.7)
	b := MustNewMapping("m1", nil, 0.3)
	if err := (MappingSet{a, b}).Validate(); err == nil {
		t.Error("duplicate ids should not validate")
	}
	c := MustNewMapping("m2", nil, 0.1)
	if err := (MappingSet{a, c}).Validate(); err == nil {
		t.Error("probabilities not summing to 1 should not validate")
	}
}

func TestMatchingValidate(t *testing.T) {
	src := demoSchema(t)
	tgt := NewSchema("Tgt")
	tgt.MustAddRelation(&RelationSchema{Name: "Person", Columns: []Column{{Name: "pname"}, {Name: "phone"}, {Name: "addr"}}})
	good := Correspondence{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.9}
	m := MustNewMapping("m1", []Correspondence{good}, 1)
	mt := &Matching{Source: src, Target: tgt, Correspondences: []Correspondence{good}, Mappings: MappingSet{m}}
	if err := mt.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := &Matching{Source: src, Target: tgt, Correspondences: []Correspondence{{Source: attr("Nope", "x"), Target: attr("Person", "pname"), Score: 0.5}}}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for correspondence outside source schema")
	}
	badScore := &Matching{Source: src, Target: tgt, Correspondences: []Correspondence{{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 1.5}}}
	if err := badScore.Validate(); err == nil {
		t.Error("expected error for score > 1")
	}
}

func TestSortCorrespondences(t *testing.T) {
	cs := []Correspondence{
		{Source: attr("C", "b"), Target: attr("T", "y"), Score: 0.5},
		{Source: attr("C", "a"), Target: attr("T", "x"), Score: 0.9},
		{Source: attr("C", "c"), Target: attr("T", "x"), Score: 0.9},
	}
	SortCorrespondences(cs)
	if cs[0].Score != 0.9 || cs[2].Score != 0.5 {
		t.Errorf("not sorted by score: %v", cs)
	}
	if cs[0].Source.Name != "a" {
		t.Errorf("tie not broken by source attr: %v", cs[0])
	}
}

// Property: o-ratio is symmetric and within [0,1].
func TestORatioProperties(t *testing.T) {
	build := func(mask uint8, id string) *Mapping {
		var corrs []Correspondence
		names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for i, n := range names {
			if mask&(1<<uint(i)) != 0 {
				corrs = append(corrs, Correspondence{Source: attr("C", n), Target: attr("T", "t"+n), Score: 1})
			}
		}
		return MustNewMapping(id, corrs, 0)
	}
	prop := func(x, y uint8) bool {
		m1, m2 := build(x, "m1"), build(y, "m2")
		r1, r2 := ORatio(m1, m2), ORatio(m2, m1)
		return r1 == r2 && r1 >= 0 && r1 <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAttributeString(t *testing.T) {
	a := attr("Customer", "cid")
	if a.String() != "Customer.cid" {
		t.Errorf("String = %q", a.String())
	}
	if a.IsZero() {
		t.Error("non-zero attribute reported zero")
	}
	if !(Attribute{}).IsZero() {
		t.Error("zero attribute not reported zero")
	}
	if TypeString.String() != "string" || TypeInt.String() != "int" || TypeFloat.String() != "float" {
		t.Error("Type.String mismatch")
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still render")
	}
}
