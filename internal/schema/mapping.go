package schema

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mapping is one possible interpretation of an uncertain matching: a
// one-to-one, partial set of correspondences between source and target
// attributes, together with the probability that the mapping is correct
// (Section III-A of the paper).
type Mapping struct {
	// ID is a stable identifier such as "m1", "m2", ... used in traces and
	// experiment output.
	ID string
	// Correspondences is the set of attribute correspondences this mapping
	// asserts.  The target attributes are pairwise distinct and so are the
	// source attributes (one-to-one).
	Correspondences []Correspondence
	// Prob is Pr(mi), the probability that this mapping is the correct one.
	// Probabilities of all mappings in a Matching sum to 1.
	Prob float64

	byTarget map[Attribute]Correspondence
}

// NewMapping builds a mapping from correspondences, validating the one-to-one
// property.  The probability may be set later via SetProb or by
// NormalizeProbabilities.
func NewMapping(id string, corrs []Correspondence, prob float64) (*Mapping, error) {
	m := &Mapping{ID: id, Prob: prob}
	seenSource := make(map[Attribute]bool, len(corrs))
	seenTarget := make(map[Attribute]bool, len(corrs))
	for _, c := range corrs {
		if seenSource[c.Source] {
			return nil, fmt.Errorf("mapping %s: source attribute %s appears twice", id, c.Source)
		}
		if seenTarget[c.Target] {
			return nil, fmt.Errorf("mapping %s: target attribute %s appears twice", id, c.Target)
		}
		seenSource[c.Source] = true
		seenTarget[c.Target] = true
		m.Correspondences = append(m.Correspondences, c)
	}
	m.reindex()
	return m, nil
}

// MustNewMapping is NewMapping that panics on error.
func MustNewMapping(id string, corrs []Correspondence, prob float64) *Mapping {
	m, err := NewMapping(id, corrs, prob)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Mapping) reindex() {
	m.byTarget = make(map[Attribute]Correspondence, len(m.Correspondences))
	for _, c := range m.Correspondences {
		m.byTarget[c.Target] = c
	}
}

// SourceFor returns the source attribute this mapping assigns to the target
// attribute, and whether such a correspondence exists.
func (m *Mapping) SourceFor(target Attribute) (Attribute, bool) {
	if m.byTarget == nil {
		m.reindex()
	}
	c, ok := m.byTarget[target]
	if !ok {
		return Attribute{}, false
	}
	return c.Source, true
}

// CorrespondenceFor returns the full correspondence for the target attribute.
func (m *Mapping) CorrespondenceFor(target Attribute) (Correspondence, bool) {
	if m.byTarget == nil {
		m.reindex()
	}
	c, ok := m.byTarget[target]
	return c, ok
}

// Covers reports whether the mapping has a correspondence for every target
// attribute in the list.
func (m *Mapping) Covers(targets []Attribute) bool {
	for _, t := range targets {
		if _, ok := m.SourceFor(t); !ok {
			return false
		}
	}
	return true
}

// Size returns the number of correspondences in the mapping.
func (m *Mapping) Size() int { return len(m.Correspondences) }

// TotalScore returns the sum of similarity scores of the mapping's
// correspondences.  It is the raw weight the k-best matcher optimises and the
// quantity that is normalised into Pr(mi).
func (m *Mapping) TotalScore() float64 {
	s := 0.0
	for _, c := range m.Correspondences {
		s += c.Score
	}
	return s
}

// Keys returns the score-free correspondence keys of the mapping, sorted for
// deterministic comparison.
func (m *Mapping) Keys() []Key {
	keys := make([]Key, 0, len(m.Correspondences))
	for _, c := range m.Correspondences {
		keys = append(keys, c.Key())
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Target != keys[j].Target {
			return lessAttr(keys[i].Target, keys[j].Target)
		}
		return lessAttr(keys[i].Source, keys[j].Source)
	})
	return keys
}

// Signature returns a canonical string identifying the mapping's
// correspondence set (ignoring scores and probability).  Two mappings with the
// same signature reformulate every query identically.
func (m *Mapping) Signature() string {
	keys := m.Keys()
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(k.Target.String())
		b.WriteByte('=')
		b.WriteString(k.Source.String())
	}
	return b.String()
}

// ProjectedSignature returns a canonical string identifying only the
// correspondences for the given target attributes.  Mappings with equal
// projected signatures produce the same source query for any query that
// touches exactly those attributes (the q-sharing partition criterion).
func (m *Mapping) ProjectedSignature(targets []Attribute) string {
	var b strings.Builder
	for i, t := range targets {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(t.String())
		b.WriteByte('=')
		if src, ok := m.SourceFor(t); ok {
			b.WriteString(src.String())
		} else {
			b.WriteString("<none>")
		}
	}
	return b.String()
}

// Clone returns a deep copy of the mapping.
func (m *Mapping) Clone() *Mapping {
	corrs := make([]Correspondence, len(m.Correspondences))
	copy(corrs, m.Correspondences)
	out := &Mapping{ID: m.ID, Correspondences: corrs, Prob: m.Prob}
	out.reindex()
	return out
}

// String renders the mapping id and probability.
func (m *Mapping) String() string {
	return fmt.Sprintf("%s(p=%.3f, %d corrs)", m.ID, m.Prob, len(m.Correspondences))
}

// ORatio computes the overlap ratio |mi ∩ mj| / |mi ∪ mj| between two
// mappings, counting score-free correspondences (Section VIII-B.1).
func ORatio(a, b *Mapping) float64 {
	if a == nil || b == nil {
		return 0
	}
	setA := make(map[Key]bool, len(a.Correspondences))
	for _, c := range a.Correspondences {
		setA[c.Key()] = true
	}
	inter := 0
	union := len(setA)
	for _, c := range b.Correspondences {
		if setA[c.Key()] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// MappingSet is an ordered collection of possible mappings.
type MappingSet []*Mapping

// TotalProb returns the sum of the mappings' probabilities.
func (ms MappingSet) TotalProb() float64 {
	p := 0.0
	for _, m := range ms {
		p += m.Prob
	}
	return p
}

// ORatio returns the average pairwise overlap ratio of the mapping set, the
// metric reported in Figure 9(a).  It returns 1 for sets with fewer than two
// mappings.
func (ms MappingSet) ORatio() float64 {
	if len(ms) < 2 {
		return 1
	}
	sum := 0.0
	pairs := 0
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			sum += ORatio(ms[i], ms[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

// NormalizeProbabilities assigns each mapping a probability equal to its total
// similarity score divided by the sum of scores over the set, the derivation
// used in Section I and [9].  If every score is zero it assigns the uniform
// distribution.
func (ms MappingSet) NormalizeProbabilities() {
	total := 0.0
	for _, m := range ms {
		total += m.TotalScore()
	}
	if total <= 0 {
		for _, m := range ms {
			m.Prob = 1 / float64(len(ms))
		}
		return
	}
	for _, m := range ms {
		m.Prob = m.TotalScore() / total
	}
}

// Validate checks the mutual-exclusiveness contract: probabilities are
// non-negative and sum to 1 within tolerance, and IDs are unique.
func (ms MappingSet) Validate() error {
	if len(ms) == 0 {
		return fmt.Errorf("mapping set is empty")
	}
	ids := make(map[string]bool, len(ms))
	sum := 0.0
	for _, m := range ms {
		if m.Prob < -1e-12 {
			return fmt.Errorf("mapping %s has negative probability %g", m.ID, m.Prob)
		}
		if ids[m.ID] {
			return fmt.Errorf("duplicate mapping id %s", m.ID)
		}
		ids[m.ID] = true
		sum += m.Prob
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("mapping probabilities sum to %g, want 1", sum)
	}
	return nil
}

// Clone returns a deep copy of the mapping set.
func (ms MappingSet) Clone() MappingSet {
	out := make(MappingSet, len(ms))
	for i, m := range ms {
		out[i] = m.Clone()
	}
	return out
}

// Matching is the full uncertain matching between a source and a target
// schema: the raw scored correspondences returned by a matcher plus the set of
// possible mappings derived from them.
type Matching struct {
	Source *Schema
	Target *Schema
	// Correspondences is the matcher's scored correspondence matrix (every
	// candidate pair above threshold), before mapping generation.
	Correspondences []Correspondence
	// Mappings is the set of h possible mappings with probabilities.
	Mappings MappingSet
}

// Validate checks schema membership of every correspondence and the mapping
// probability contract.
func (mt *Matching) Validate() error {
	if mt.Source == nil || mt.Target == nil {
		return fmt.Errorf("matching must reference both schemas")
	}
	for _, c := range mt.Correspondences {
		if !mt.Source.HasAttribute(c.Source) {
			return fmt.Errorf("correspondence %v: source attribute not in schema %s", c, mt.Source.Name)
		}
		if !mt.Target.HasAttribute(c.Target) {
			return fmt.Errorf("correspondence %v: target attribute not in schema %s", c, mt.Target.Name)
		}
		if c.Score <= 0 || c.Score > 1 {
			return fmt.Errorf("correspondence %v: score out of (0,1]", c)
		}
	}
	for _, m := range mt.Mappings {
		for _, c := range m.Correspondences {
			if !mt.Source.HasAttribute(c.Source) || !mt.Target.HasAttribute(c.Target) {
				return fmt.Errorf("mapping %s: correspondence %v not covered by schemas", m.ID, c)
			}
		}
	}
	if len(mt.Mappings) > 0 {
		return mt.Mappings.Validate()
	}
	return nil
}
