package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
)

// This file is the delta half of the incremental-maintenance subsystem
// (internal/delta owns the reconciler that drives it).  The paper's answer
// semantics make SPJ answers monotone under inserts: every answer tuple's
// probability is a sum over the mappings whose reformulated query produced it,
// and appending base rows can only add tuples to an SPJ query's output, never
// remove or change existing ones.  So instead of re-running every group plan
// over the whole instance after an append, the delta evaluator re-runs them
// over just the appended rows — the classic join-delta expansion
//
//	Δ(R1 ⋈ … ⋈ Rk) = Σ_i  R1ⁿᵉʷ ⋈ … ⋈ R_{i-1}ⁿᵉʷ ⋈ ΔR_i ⋈ R_{i+1}ᵒˡᵈ ⋈ … ⋈ Rkᵒˡᵈ
//
// realized with zero copying, because append-only relations make every old
// state a prefix slice of the live row list — and folds the new tuples into
// the per-group distinct-tuple sets it keeps.  Replaying those sets through
// GroupMerge reproduces the unsharded aggregation order exactly, so maintained
// answers stay bit-identical to cold re-evaluation (same values, same
// probabilities, same canonical order).

// ErrNotDeltaMaintainable marks a (query, method) pair the delta evaluator
// cannot maintain incrementally: non-SPJ operators (aggregate, distinct,
// materialized fragments), self-joins (the name-keyed relation replacement
// cannot express a per-occurrence delta), and the methods with no per-group
// relation stream (o-sharing, top-k).  Callers fall back to epoch
// invalidation — today's behavior.
var ErrNotDeltaMaintainable = errors.New("core: plan not delta-maintainable")

// DeltaPlan is a prepared query's scatter form plus the per-group scan sets
// the delta passes need.  It is immutable after PrepareDelta and may back any
// number of DeltaStates.
type DeltaPlan struct {
	sp   *ScatterPlan
	qry  *Prepared
	cols []string

	// scans[i] holds the base-relation names group i's plan scans (nil for
	// non-covering groups); rels is their union in sorted order — the fixed
	// pass order every ApplyDelta walks, so float accumulation never depends
	// on which relation happened to grow first.
	scans []map[string]bool
	rels  []string
}

// PrepareDelta builds the delta-maintenance form of a prepared query for the
// options' method, or ErrNotDeltaMaintainable when the plan shape or method
// cannot be maintained under appends.
func PrepareDelta(p *Prepared, ec *exec.Context, opts Options) (*DeltaPlan, error) {
	sp, err := p.Scatter(ec, opts)
	if err != nil {
		if errors.Is(err, ErrNotShardable) {
			return nil, fmt.Errorf("%w: %v", ErrNotDeltaMaintainable, err)
		}
		return nil, err
	}
	dp := &DeltaPlan{sp: sp, qry: p, cols: OutputColumns(p.Query())}
	seen := make(map[string]bool)
	for _, g := range sp.Groups {
		if g.Plan == nil {
			dp.scans = append(dp.scans, nil)
			continue
		}
		scans, err := scanSet(g.Plan)
		if err != nil {
			return nil, err
		}
		dp.scans = append(dp.scans, scans)
		for name := range scans {
			if !seen[name] {
				seen[name] = true
				dp.rels = append(dp.rels, name)
			}
		}
	}
	sort.Strings(dp.rels)
	return dp, nil
}

// Relations returns the base relations the plan reads, in pass order.
func (dp *DeltaPlan) Relations() []string {
	out := make([]string, len(dp.rels))
	copy(out, dp.rels)
	return out
}

// scanSet walks one group plan and collects the relations it scans.  The walk
// is the eligibility check: only select/project/join/product over single-
// occurrence scans qualify; anything else — aggregation, distinct,
// materialized fragments, a relation scanned twice — is not maintainable.
func scanSet(p engine.Plan) (map[string]bool, error) {
	out := make(map[string]bool)
	var walk func(engine.Plan) error
	walk = func(n engine.Plan) error {
		switch t := n.(type) {
		case *engine.ScanPlan:
			if out[t.Relation] {
				return fmt.Errorf("%w: relation %s scanned more than once", ErrNotDeltaMaintainable, t.Relation)
			}
			out[t.Relation] = true
			return nil
		case *engine.SelectPlan, *engine.ProjectPlan, *engine.JoinPlan, *engine.ProductPlan:
			for _, c := range n.Children() {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("%w: non-SPJ operator %T", ErrNotDeltaMaintainable, n)
		}
	}
	if err := walk(p); err != nil {
		return nil, err
	}
	return out, nil
}

// deltaGroup accumulates one scatter group's distinct answer tuples: the seen
// set answers membership, rows keeps first-seen order for deterministic
// replay.  (Replay order does not affect answer bits — GroupMerge accumulates
// per distinct tuple and the final sort is a total order — but determinism
// keeps runs comparable.)
type deltaGroup struct {
	seen *engine.TupleSet
	rows []engine.Tuple
}

// DeltaState is the maintained evaluation state of one (query, method) pair
// against one instance: the per-group distinct-tuple sets plus the row counts
// the state covers.  It is not safe for concurrent use; the reconciler
// serializes ApplyDelta/Result per entry, and both must run under the same
// lock that excludes appends (the data and the lens must describe the same
// moment).
type DeltaState struct {
	plan   *DeltaPlan
	groups []deltaGroup
	lens   map[string]int

	stats    *engine.Stats
	execTime time.Duration
	passes   int
}

// Plan returns the immutable plan the state maintains.
func (st *DeltaState) Plan() *DeltaPlan { return st.plan }

// Passes returns the number of delta passes applied since the full run.
func (st *DeltaState) Passes() int { return st.passes }

// EvaluateFull runs the plan over the whole instance and captures the
// maintained state: the per-group distinct tuples and the covered row counts.
func (dp *DeltaPlan) EvaluateFull(ec *exec.Context, db *engine.Instance) (*DeltaState, error) {
	run, err := dp.sp.ExecuteOn(ec, db)
	if err != nil {
		return nil, err
	}
	st := &DeltaState{
		plan:     dp,
		groups:   make([]deltaGroup, len(dp.sp.Groups)),
		lens:     make(map[string]int, len(dp.rels)),
		stats:    engine.NewStats(),
		execTime: run.ExecTime,
	}
	st.stats.Add(run.Stats)
	for i := range dp.sp.Groups {
		if dp.sp.Groups[i].Plan == nil {
			continue
		}
		g := &st.groups[i]
		var rows []engine.Tuple
		if run.Rels[i] != nil {
			rows = run.Rels[i].Rows
		}
		g.seen = engine.NewTupleSet(len(rows))
		for _, row := range rows {
			if g.seen.Add(row) {
				g.rows = append(g.rows, row)
			}
		}
	}
	for _, name := range dp.rels {
		rel := db.Relation(name)
		if rel == nil {
			return nil, fmt.Errorf("delta: plan scans unknown relation %q", name)
		}
		st.lens[name] = len(rel.Rows)
	}
	return st, nil
}

// ApplyDelta folds every row appended since the state's covered lengths into
// the per-group tuple sets: one pass per grown relation, each pass executing
// the group plans against a derived instance where the grown relation is its
// delta slice, later grown relations are their old prefixes, and everything
// else is the live relation (probing the live instance's shared indexes via
// AdoptIndexes).  The passes partition the new row combinations, so together
// they produce exactly the tuples a cold run would add.  It returns the number
// of passes executed; an error (a shrunk or vanished relation — something
// other than an append happened) means the state can no longer be trusted and
// the caller must fall back to cold evaluation.
func (st *DeltaState) ApplyDelta(ec *exec.Context, db *engine.Instance) (int, error) {
	dp := st.plan
	newLens := make(map[string]int, len(dp.rels))
	var changed []string
	for _, name := range dp.rels {
		rel := db.Relation(name)
		if rel == nil {
			return 0, fmt.Errorf("delta: relation %q vanished", name)
		}
		n := len(rel.Rows)
		if old := st.lens[name]; n < old {
			return 0, fmt.Errorf("delta: relation %s shrank from %d to %d rows", name, old, n)
		}
		newLens[name] = n
	}
	for _, name := range dp.rels {
		if newLens[name] > st.lens[name] {
			changed = append(changed, name)
		}
	}
	passes := 0
	for ci, name := range changed {
		replace := make(map[string]*engine.Relation, len(changed)-ci)
		rel := db.Relation(name)
		old := st.lens[name]
		replace[name] = &engine.Relation{
			Name:    name,
			Columns: rel.Columns,
			Rows:    rel.Rows[old:newLens[name]:newLens[name]],
		}
		for _, later := range changed[ci+1:] {
			lrel := db.Relation(later)
			lold := st.lens[later]
			replace[later] = &engine.Relation{
				Name:    later,
				Columns: lrel.Columns,
				Rows:    lrel.Rows[:lold:lold],
			}
		}
		groups := make([]ScatterGroup, len(dp.sp.Groups))
		active := 0
		for gi, g := range dp.sp.Groups {
			if g.Plan != nil && dp.scans[gi][name] {
				groups[gi] = g
				active++
			} else {
				groups[gi] = ScatterGroup{Prob: g.Prob}
			}
		}
		if active == 0 {
			continue
		}
		pass := &ScatterPlan{Method: dp.sp.Method, Groups: groups}
		deltaDB := db.WithRelations(db.Name, replace)
		deltaDB.AdoptIndexes(db)
		run, err := pass.ExecuteOn(ec, deltaDB)
		if err != nil {
			return passes, err
		}
		st.stats.Add(run.Stats)
		st.execTime += run.ExecTime
		for gi := range groups {
			if groups[gi].Plan == nil || run.Rels[gi] == nil {
				continue
			}
			g := &st.groups[gi]
			for _, row := range run.Rels[gi].Rows {
				if g.seen.Add(row) {
					g.rows = append(g.rows, row)
				}
			}
		}
		passes++
	}
	st.lens = newLens
	st.passes += passes
	return passes, nil
}

// Result re-aggregates the maintained tuple sets into the canonical answer
// distribution through GroupMerge — the same replay the shard gatherer uses —
// so the result is bit-identical to cold evaluation of the same method over
// the same instance state.
func (st *DeltaState) Result() *Result {
	start := time.Now()
	dp := st.plan
	res := &Result{
		Query:            dp.qry.Query(),
		Method:           dp.sp.Method,
		Columns:          dp.cols,
		Stats:            engine.NewStats(),
		RewrittenQueries: dp.sp.Rewritten,
		Partitions:       dp.sp.Partitions,
		ExecTime:         st.execTime,
	}
	res.Stats.Add(st.stats)
	merge := NewGroupMerge(dp.sp.PreEmptyProb)
	for gi, g := range dp.sp.Groups {
		if g.Plan == nil {
			merge.AddEmpty(g.Prob)
			continue
		}
		merge.Add(g.Prob, st.groups[gi].rows)
		res.ExecutedQueries++
	}
	res.Answers, res.EmptyProb = merge.Finalize()
	res.AggregateTime = time.Since(start)
	res.TotalTime = time.Since(start)
	return res
}
