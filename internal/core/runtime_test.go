package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/schema"
)

// runtimeQueries is the workload used by the runtime tests: selection,
// projection, join and aggregate shapes over the paper's running example, so
// every operator of every method crosses the worker pool.
var runtimeQueries = []struct {
	name string
	text string
}{
	{"selection", "SELECT phone FROM Person WHERE addr = 'aaa'"},
	{"projection", "SELECT pname, phone FROM Person"},
	{"join", "SELECT P.pname FROM Person P, Person Q WHERE P.phone = Q.phone AND Q.addr = 'aaa'"},
	{"aggregate", "SELECT COUNT(*) FROM Person WHERE addr = 'aaa'"},
}

// identicalResults asserts bit-identical answers: same tuples with the same
// probabilities in the same order, and the same empty-answer probability.
// This is stricter than sameAnswers (no epsilon): the runtime's ordered
// aggregation must reproduce the sequential float operations exactly.
func identicalResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.Answers) != len(got.Answers) {
		t.Fatalf("%s: answer count %d, want %d", label, len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if want.Answers[i].Tuple.Key() != got.Answers[i].Tuple.Key() {
			t.Errorf("%s: answer[%d] tuple = %v, want %v", label, i, got.Answers[i].Tuple, want.Answers[i].Tuple)
		}
		if want.Answers[i].Prob != got.Answers[i].Prob {
			t.Errorf("%s: answer[%d] prob = %v, want %v (must be bit-identical)", label, i, got.Answers[i].Prob, want.Answers[i].Prob)
		}
	}
	if want.EmptyProb != got.EmptyProb {
		t.Errorf("%s: empty prob = %v, want %v", label, got.EmptyProb, want.EmptyProb)
	}
}

// TestMethodEquivalenceAcrossParallelism is the refactor's safety net: every
// method run at Parallelism 1 and Parallelism 8 must produce identical answer
// sets, probabilities and answer order, and (for deterministic strategies)
// identical operator statistics.
func TestMethodEquivalenceAcrossParallelism(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	methods := []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing}

	for _, qc := range runtimeQueries {
		q := mustParse(t, qc.name, qc.text)
		for _, m := range methods {
			ev := NewEvaluator(db, maps)
			seq, err := ev.Evaluate(q, Options{Method: m, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", qc.name, m, err)
			}
			par, err := ev.Evaluate(q, Options{Method: m, Parallelism: 8})
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", qc.name, m, err)
			}
			label := qc.name + "/" + m.String()
			identicalResults(t, label, seq, par)
			if seq.Stats.TotalOperators() != par.Stats.TotalOperators() {
				t.Errorf("%s: parallel executed %d operators, sequential %d",
					label, par.Stats.TotalOperators(), seq.Stats.TotalOperators())
			}
			if seq.Partitions != par.Partitions {
				t.Errorf("%s: partitions %d vs %d", label, par.Partitions, seq.Partitions)
			}
		}
	}
}

// TestOSharingRandomStrategyDeterministicAcrossParallelism pins the
// seed-derivation design: StrategyRandom must choose the same operators (and
// so execute the same operator counts) at any parallelism, because each
// u-trace node derives its seed from its position rather than from a shared
// generator.
func TestOSharingRandomStrategyDeterministicAcrossParallelism(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	q := mustParse(t, "q", "SELECT pname FROM Person WHERE addr = 'aaa' AND phone = '456'")
	for _, seed := range []int64{1, 7, 42} {
		var ops []int
		for _, parallelism := range []int{1, 8} {
			res, err := NewEvaluator(db, maps).Evaluate(q, Options{
				Method: MethodOSharing, Strategy: StrategyRandom, RandomSeed: seed, Parallelism: parallelism,
			})
			if err != nil {
				t.Fatalf("seed %d parallelism %d: %v", seed, parallelism, err)
			}
			ops = append(ops, res.Stats.TotalOperators())
		}
		if ops[0] != ops[1] {
			t.Errorf("seed %d: Random strategy executed %d operators sequentially, %d in parallel", seed, ops[0], ops[1])
		}
	}
}

// TestEvaluateContextCancelled checks that an already-cancelled context aborts
// every method promptly with context.Canceled instead of running to
// completion.
func TestEvaluateContextCancelled(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	methods := []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing}
	for _, m := range methods {
		for _, parallelism := range []int{1, 8} {
			_, err := NewEvaluator(db, maps).EvaluateContext(ctx, q, Options{Method: m, Parallelism: parallelism})
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s parallelism %d: err = %v, want context.Canceled", m, parallelism, err)
			}
		}
	}
	if _, err := NewEvaluator(db, maps).EvaluateTopKContext(ctx, q, 2, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("top-k: err = %v, want context.Canceled", err)
	}
}

// TestEvaluateContextDeadline checks that a deadline that expires mid-run
// surfaces context.DeadlineExceeded: the engine's operators check the context
// periodically, so even a single long-running operator stops promptly.
func TestEvaluateContextDeadline(t *testing.T) {
	// A cross join over a generated relation makes Product big enough that the
	// run cannot finish within the deadline on any machine.
	db := engine.NewInstance("big")
	rel := engine.NewRelation("Customer", []string{"cid", "cname", "ophone", "hphone", "mobile", "oaddr", "haddr", "nid"})
	for i := 0; i < 3000; i++ {
		rel.MustAppend(engine.Tuple{
			engine.I(int64(i)), engine.S("n"), engine.S("123"), engine.S("789"),
			engine.S("555"), engine.S("aaa"), engine.S("hk"), engine.I(1),
		})
	}
	db.AddRelation(rel)
	ord := engine.NewRelation("C_Order", []string{"oid", "cid", "amount"})
	for i := 0; i < 3000; i++ {
		ord.MustAppend(engine.Tuple{engine.I(int64(i)), engine.I(int64(i)), engine.F(1)})
	}
	db.AddRelation(ord)
	nat := engine.NewRelation("Nation", []string{"nid", "name"})
	nat.MustAppend(engine.Tuple{engine.I(1), engine.S("HK")})
	db.AddRelation(nat)

	maps := paperMappings()
	// A product without a join condition: O(n^2) rows, far beyond the deadline.
	q := mustParse(t, "big", "SELECT P.pname FROM Person P, Order O WHERE P.addr = 'aaa' AND O.total > 0")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := NewEvaluator(db, maps).EvaluateContext(ctx, q, Options{Method: MethodBasic, Parallelism: 2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestEvaluatorNilAndDefaults keeps the non-context entry points working: the
// zero Options value must pick GOMAXPROCS workers and still verify against the
// sequential run.
func TestDefaultParallelismMatchesSequential(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	seq, err := NewEvaluator(db, maps).Evaluate(q, Options{Method: MethodQSharing, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewEvaluator(db, maps).Evaluate(q, Options{Method: MethodQSharing})
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, "default-parallelism", seq, def)
}

// mappingSetTimes8 inflates the paper mapping set with perturbed copies so the
// parallel paths see more than a handful of partitions.
func mappingSetTimes8(t *testing.T) schema.MappingSet {
	t.Helper()
	base := paperMappings()
	out := make(schema.MappingSet, 0, len(base)*8)
	for i := 0; i < 8; i++ {
		for _, m := range base {
			c := m.Clone()
			c.ID = c.ID + "-" + string(rune('a'+i))
			c.Prob = m.Prob / 8
			out = append(out, c)
		}
	}
	return out
}

// TestEquivalenceWiderMappingSet re-runs the equivalence check with a 40-way
// mapping set so the pool actually saturates (more partitions than workers).
func TestEquivalenceWiderMappingSet(t *testing.T) {
	db := paperInstance()
	maps := mappingSetTimes8(t)
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	for _, m := range []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing} {
		seq, err := NewEvaluator(db, maps).Evaluate(q, Options{Method: m, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s sequential: %v", m, err)
		}
		par, err := NewEvaluator(db, maps).Evaluate(q, Options{Method: m, Parallelism: 8})
		if err != nil {
			t.Fatalf("%s parallel: %v", m, err)
		}
		identicalResults(t, m.String(), seq, par)
	}
}
