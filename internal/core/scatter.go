package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/mqo"
)

// ErrNotShardable marks a (query, method) pair whose evaluation cannot be
// distributed over disjoint partitions of the base relations.  o-sharing and
// top-k always return it: their u-trace traversal interleaves operator-level
// work across mappings with data-dependent early termination, so there is no
// per-group relation stream to union across shards.  Callers fall back to
// unsharded evaluation (in-process) or report the query as not shardable
// (coordinator mode).
var ErrNotShardable = errors.New("core: method not shardable")

// ScatterGroup is one unit of scatter work: a source plan together with the
// probability mass its answers carry.  A nil Plan marks a group whose
// mappings do not cover the query — its mass goes to the empty answer exactly
// once, on the merge side, never per shard.
type ScatterGroup struct {
	Prob float64
	Plan engine.Plan
}

// ScatterPlan is a prepared query's front half reshaped for scatter-gather
// evaluation: an ordered list of groups whose per-shard answer relations are
// unioned and re-aggregated group by group.  The group order is exactly the
// aggregation order of the corresponding unsharded method — mapping order for
// basic, first-seen cluster order for e-basic, the MQO global plan's query
// order for e-MQO, representative order for q-sharing — so the merged
// probabilities accumulate in the same float-addition sequence and answers
// stay bit-identical to unsharded evaluation.
type ScatterPlan struct {
	// Method is the evaluation method the plan was built for.
	Method Method
	// PreEmptyProb is probability mass added to the empty answer before any
	// group is merged (e-basic/e-MQO account non-covering mappings up front).
	PreEmptyProb float64
	// Groups are the scatter units in aggregation order.
	Groups []ScatterGroup
	// Global is the e-MQO global plan; when non-nil, ExecuteOn runs it once
	// per shard (with a fresh shared-subexpression cache) instead of the
	// group plans individually.  Groups are aligned with Global.Queries.
	Global *mqo.Plan
	// Rewritten and Partitions carry the front half's bookkeeping into the
	// merged Result.
	Rewritten  int
	Partitions int
}

// Scatter builds the scatter form of the prepared query's front half for the
// options' method.  MethodOSharing and MethodTopK return ErrNotShardable.
func (p *Prepared) Scatter(ec *exec.Context, opts Options) (*ScatterPlan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ec.Err(); err != nil {
		return nil, err
	}
	switch opts.Method {
	case MethodBasic:
		plans, err := p.basicPlans(ec)
		if err != nil {
			return nil, fmt.Errorf("basic: %w", err)
		}
		sp := &ScatterPlan{Method: MethodBasic, Groups: make([]ScatterGroup, len(plans))}
		for i, plan := range plans {
			sp.Groups[i] = ScatterGroup{Prob: p.maps[i].Prob, Plan: plan}
			if plan != nil {
				sp.Rewritten++
			}
		}
		return sp, nil
	case MethodEBasic:
		cp, err := p.ebasicPrep(ec)
		if err != nil {
			return nil, err
		}
		sp := &ScatterPlan{
			Method:       MethodEBasic,
			PreEmptyProb: cp.emptyProb,
			Groups:       make([]ScatterGroup, 0, len(cp.order)),
			Rewritten:    cp.rewritten,
			Partitions:   len(cp.order),
		}
		for _, sig := range cp.order {
			c := cp.clusters[sig]
			sp.Groups = append(sp.Groups, ScatterGroup{Prob: c.prob, Plan: c.plan})
		}
		return sp, nil
	case MethodEMQO:
		ep, err := p.emqoPrep(ec)
		if err != nil {
			return nil, err
		}
		sp := &ScatterPlan{
			Method:       MethodEMQO,
			PreEmptyProb: ep.emptyProb,
			Global:       ep.global,
			Rewritten:    ep.rewritten,
			Partitions:   len(ep.order),
		}
		if ep.global != nil {
			sp.Groups = make([]ScatterGroup, len(ep.global.Queries))
			for i, q := range ep.global.Queries {
				sp.Groups[i] = ScatterGroup{Prob: ep.probs[q.Signature()], Plan: q}
			}
		}
		return sp, nil
	case MethodQSharing:
		qp, err := p.qsharingFront(ec)
		if err != nil {
			return nil, err
		}
		sp := &ScatterPlan{
			Method:     MethodQSharing,
			Groups:     make([]ScatterGroup, len(qp.plans)),
			Partitions: qp.partitions,
		}
		for i, plan := range qp.plans {
			sp.Groups[i] = ScatterGroup{Prob: qp.reps[i].prob, Plan: plan}
			if plan != nil {
				sp.Rewritten++
			}
		}
		return sp, nil
	case MethodOSharing, MethodTopK:
		return nil, fmt.Errorf("%w: %s", ErrNotShardable, opts.Method)
	default:
		return nil, fmt.Errorf("scatter: unknown method %v", opts.Method)
	}
}

// ShardRun is the outcome of executing a scatter plan against one shard:
// the per-group answer relations (index-aligned with Groups, nil for
// non-covering groups) plus the shard's operator statistics and CPU time.
type ShardRun struct {
	Rels     []*engine.Relation
	Stats    *engine.Stats
	ExecTime time.Duration
}

// ExecuteOn runs every group of the scatter plan against one instance —
// normally a shard holding one partition of the base relations — and returns
// the per-group answer relations.  e-MQO plans execute through the MQO global
// plan with a fresh shared-subexpression cache, exactly as the unsharded
// phase 3 does; other methods execute the group plans individually on the
// runtime's worker pool.
func (sp *ScatterPlan) ExecuteOn(ec *exec.Context, db *engine.Instance) (*ShardRun, error) {
	run := &ShardRun{Rels: make([]*engine.Relation, len(sp.Groups)), Stats: engine.NewStats()}
	if sp.Global != nil {
		execStart := time.Now()
		rels, err := sp.Global.ExecuteParallel(ec, db, run.Stats)
		if err != nil {
			return nil, fmt.Errorf("scatter %s: %w", sp.Method, err)
		}
		run.ExecTime = time.Since(execStart)
		copy(run.Rels, rels)
		return run, nil
	}
	err := exec.Map(ec, len(sp.Groups),
		func(ctx context.Context, i int) (*mappingRun, error) {
			mr := &mappingRun{stats: engine.NewStats()}
			if sp.Groups[i].Plan == nil {
				return mr, nil
			}
			execStart := time.Now()
			ex := &engine.Executor{DB: db, Stats: mr.stats, Indexes: db.Indexes(), Batch: ec.Batch(), Workers: ec.Parallelism()}
			rel, err := ex.ExecuteContext(ctx, sp.Groups[i].Plan)
			mr.exec = time.Since(execStart)
			if err != nil {
				return nil, fmt.Errorf("scatter %s: executing source query: %w", sp.Method, err)
			}
			mr.rel = rel
			return mr, nil
		},
		func(i int, mr *mappingRun) error {
			run.ExecTime += mr.exec
			run.Stats.Add(mr.stats)
			run.Rels[i] = mr.rel
			return nil
		})
	if err != nil {
		return nil, err
	}
	return run, nil
}

// GroupMerge re-aggregates per-shard answer streams into the canonical answer
// distribution.  It replays exactly the unsharded aggregation: one Add call
// per covering group in group order (rows being the concatenation of that
// group's per-shard relations in shard order), one AddEmpty per non-covering
// group.  Because Add collapses duplicate rows before accumulating — the same
// per-call dedup addRelation performs — and the final sort is the canonical
// (probability desc, tuple key asc) total order, the merged answers are
// bit-identical to evaluating the unpartitioned instance: each distinct tuple
// receives `prob` exactly once per group that produced it, in the same
// float-addition sequence.
type GroupMerge struct {
	agg *aggregator
}

// NewGroupMerge starts a merge with the scatter plan's pre-group empty-answer
// mass (0 for methods that account non-covering mappings per group).
func NewGroupMerge(preEmptyProb float64) *GroupMerge {
	m := &GroupMerge{agg: newAggregator()}
	m.agg.addEmpty(preEmptyProb)
	return m
}

// AddEmpty assigns one group's probability mass to the empty answer.
func (m *GroupMerge) AddEmpty(prob float64) { m.agg.addEmpty(prob) }

// Add merges one group's unioned rows under the group's probability.  Rows
// are deduplicated within the call; an empty union sends the mass to the
// empty answer, as addRelation does for an empty relation.
func (m *GroupMerge) Add(prob float64, rows []engine.Tuple) {
	seen := engine.NewTupleSet(len(rows))
	for _, row := range rows {
		h := row.Hash64()
		if !seen.AddHashed(h, row) {
			continue
		}
		m.agg.addHashed(h, row, prob)
	}
	if len(rows) == 0 {
		m.agg.addEmpty(prob)
	}
}

// AddGroup merges one scatter group given its per-shard relations in shard
// order: nil-plan groups go to the empty answer, covering groups concatenate
// their shard relations into one union.  A nil relation (a shard that
// produced nothing for the group) contributes no rows.
func (m *GroupMerge) AddGroup(g ScatterGroup, rels []*engine.Relation) {
	if g.Plan == nil {
		m.agg.addEmpty(g.Prob)
		return
	}
	n := 0
	for _, rel := range rels {
		if rel != nil {
			n += len(rel.Rows)
		}
	}
	rows := make([]engine.Tuple, 0, n)
	for _, rel := range rels {
		if rel != nil {
			rows = append(rows, rel.Rows...)
		}
	}
	m.Add(g.Prob, rows)
}

// Finalize returns the merged answers in canonical order together with the
// empty-answer probability.
func (m *GroupMerge) Finalize() ([]Answer, float64) {
	return m.agg.answers(), m.agg.emptyProb
}
