package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// MethodTopK labels results produced by the probabilistic top-k algorithm of
// Section VII.  It is reported through Result.Method but is not a value for
// Options.Method (use Evaluator.EvaluateTopK).
const MethodTopK Method = 100

// TopK evaluates a probabilistic top-k query (Algorithm 4): it explores the
// same u-trace as o-sharing but maintains lower and upper probability bounds
// for the candidate answers, stopping as soon as the k answers with the
// highest probabilities are determined.  The reported probabilities are the
// lower bounds accumulated so far — the algorithm deliberately avoids
// computing exact probabilities.
//
// The traversal runs sequentially regardless of the runtime's parallelism:
// the early-termination bounds depend on the order e-units are visited, so a
// concurrent exploration would change which leaves are executed.  The
// context's cancellation and deadline are still honoured.
func TopK(ec *exec.Context, q *query.Query, maps schema.MappingSet, db *engine.Instance, k int, opts OSharingOptions) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("top-k: k must be positive, got %d", k)
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodTopK, Columns: OutputColumns(q), Stats: engine.NewStats()}

	sink := newTopkSink(k)
	if err := runOSharing(ec.WithParallelism(1), q, maps, db, opts, res, sink); err != nil {
		return nil, err
	}
	aggStart := time.Now()
	res.Answers = sink.topK()
	res.EmptyProb = sink.emptyProb
	res.AggregateTime = time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return res, nil
}

// tkEntry is one candidate answer with its probability bounds.
type tkEntry struct {
	tuple engine.Tuple
	lb    float64
	ub    float64
}

// topkSink implements the decide_result bookkeeping of Algorithm 4.
// Candidates are looked up by 64-bit tuple hash with EqualKey bucket
// resolution, so the per-leaf bookkeeping never formats key strings.
type topkSink struct {
	k       int
	buckets map[uint64][]*tkEntry
	order   []*tkEntry
	// ub is the global UB: the probability mass of e-units not yet visited, an
	// upper bound on the probability of any tuple not seen so far.
	ub float64
	// emptyProb accumulates mass of empty results (not candidates).
	emptyProb float64
}

func newTopkSink(k int) *topkSink {
	return &topkSink{k: k, buckets: make(map[uint64][]*tkEntry), ub: 1}
}

// lookup returns the candidate entry for the tuple, or nil.
func (s *topkSink) lookup(h uint64, t engine.Tuple) *tkEntry {
	for _, e := range s.buckets[h] {
		if e.tuple.EqualKey(t) {
			return e
		}
	}
	return nil
}

// sorted returns the current candidates ordered by descending lower bound.
func (s *topkSink) sorted() []*tkEntry {
	out := make([]*tkEntry, len(s.order))
	copy(out, s.order)
	sort.SliceStable(out, func(i, j int) bool { return out[i].lb > out[j].lb })
	return out
}

// lowerBound returns LB: the lower bound of the k-th highest candidate, or 0
// when fewer than k candidates are known (a new tuple could still enter the
// top-k, so termination must not trigger on UB alone in that case).
func (s *topkSink) lowerBound() float64 {
	sorted := s.sorted()
	if len(sorted) < s.k {
		return 0
	}
	return sorted[s.k-1].lb
}

// decide checks the two termination conditions of decide_result: every
// candidate ranked below k has ub ≤ LB, and no unseen tuple can exceed LB.
func (s *topkSink) decide() bool {
	lb := s.lowerBound()
	if s.ub > lb {
		return false
	}
	sorted := s.sorted()
	for i := s.k; i < len(sorted); i++ {
		if sorted[i].ub > lb {
			return false
		}
	}
	return true
}

// onAnswers implements resultSink.
func (s *topkSink) onAnswers(rel *engine.Relation, prob float64) bool {
	lb := s.lowerBound()
	seen := engine.NewTupleSet(len(rel.Rows))
	for _, row := range rel.Rows {
		h := row.Hash64()
		if !seen.AddHashed(h, row) {
			continue
		}
		if e := s.lookup(h, row); e != nil {
			e.lb += prob
			continue
		}
		if s.ub > lb || len(s.order) < s.k {
			e := &tkEntry{tuple: row.Clone(), lb: prob, ub: s.ub}
			s.buckets[h] = append(s.buckets[h], e)
			s.order = append(s.order, e)
		}
	}
	s.ub -= prob
	return s.decide()
}

// onEmpty implements resultSink.
func (s *topkSink) onEmpty(prob float64) bool {
	s.emptyProb += prob
	s.ub -= prob
	return s.decide()
}

// topK returns the k candidates with the highest lower-bound probabilities.
func (s *topkSink) topK() []Answer {
	sorted := s.sorted()
	if len(sorted) > s.k {
		sorted = sorted[:s.k]
	}
	out := make([]Answer, 0, len(sorted))
	for _, e := range sorted {
		out = append(out, Answer{Tuple: e.tuple, Prob: e.lb})
	}
	return out
}
