package core

// Cursor streams the answers of one evaluation in canonical order (descending
// probability, ties broken by canonical tuple key) without materializing the
// answer slice.  The evaluation itself runs before the cursor is handed out —
// probabilities accumulate across every mapping, so the canonical order exists
// only after aggregation — but the []Answer copy (and the per-answer
// allocations it implies) is never built: each Answer is assembled on demand
// as Next advances.
//
// Usage follows the database/sql Rows contract:
//
//	cur, err := prepared.StreamContext(ctx, opts)
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//	    a := cur.Answer()
//	    ...
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Streamed answers are bit-identical, in the same order, to the Answers slice
// a materialized execution of the same prepared query returns: both paths
// read the same aggregated entries through the same sort.
type Cursor struct {
	res     *Result
	entries []*aggEntry // aggregate-backed cursor (the five full methods)
	answers []Answer    // answer-backed cursor (top-k)
	next    int
	cur     Answer
}

// newCursor wraps sorted aggregator entries.
func newCursor(res *Result, entries []*aggEntry) *Cursor {
	return &Cursor{res: res, entries: entries}
}

// newCursorAnswers wraps an already-built answer list (the top-k path, where
// at most k answers exist).
func newCursorAnswers(res *Result, answers []Answer) *Cursor {
	return &Cursor{res: res, answers: answers}
}

// Next advances to the next answer, returning false once the cursor is
// exhausted or closed.
func (c *Cursor) Next() bool {
	if c.entries != nil {
		if c.next >= len(c.entries) {
			return false
		}
		e := c.entries[c.next]
		c.cur = Answer{Tuple: e.tuple, Prob: e.prob}
	} else {
		if c.next >= len(c.answers) {
			return false
		}
		c.cur = c.answers[c.next]
	}
	c.next++
	return true
}

// Answer returns the answer Next advanced to.  It is only valid after a Next
// that returned true.
func (c *Cursor) Answer() Answer { return c.cur }

// Err reports a cursor error.  Evaluation errors surface from StreamContext
// itself; iteration over the aggregated answers cannot fail, so Err exists to
// complete the Rows-style contract (check it after the Next loop) and always
// returns nil today.
func (c *Cursor) Err() error { return nil }

// Close releases the cursor's backing entries.  It is safe to call multiple
// times; Next returns false afterwards.
func (c *Cursor) Close() error {
	c.entries = nil
	c.answers = nil
	c.next = 0
	return nil
}

// Len returns the total number of answers the cursor iterates over.
func (c *Cursor) Len() int {
	if c.entries != nil {
		return len(c.entries)
	}
	return len(c.answers)
}

// Columns returns the display labels of the answer tuples (empty when the
// query has no explicit projection or aggregate).
func (c *Cursor) Columns() []string { return c.res.Columns }

// EmptyProb returns the probability that the query has no answer at all.
func (c *Cursor) EmptyProb() float64 { return c.res.EmptyProb }

// Result returns the evaluation metadata backing the cursor: query, method,
// statistics, phase timings and EmptyProb.  Its Answers slice is nil — the
// whole point of streaming — so read answers from the cursor.
func (c *Cursor) Result() *Result { return c.res }
