package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// ErrBadOptions marks an Options value that fails validation (negative
// parallelism, unknown method or strategy, non-positive top-k).  Errors
// returned by Options.Validate and the evaluation entry points wrap it, so
// callers can test with errors.Is.
var ErrBadOptions = errors.New("invalid evaluation options")

// Method enumerates the evaluation algorithms described in the paper.
type Method int

// Evaluation methods.
const (
	// MethodBasic reformulates and executes one source query per mapping
	// (Section III-B, "basic").
	MethodBasic Method = iota
	// MethodEBasic clusters identical source queries before execution
	// (Section III-B, "e-basic").
	MethodEBasic
	// MethodEMQO runs a multiple-query-optimisation pass over the distinct
	// source queries before executing the shared global plan (Section III-B,
	// "e-MQO").
	MethodEMQO
	// MethodQSharing partitions mappings that produce the same source query
	// using the partition tree and evaluates one query per partition
	// (Section IV).
	MethodQSharing
	// MethodOSharing shares work at the operator level with e-units and a
	// u-trace (Sections V–VI).
	MethodOSharing
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case MethodBasic:
		return "basic"
	case MethodEBasic:
		return "e-basic"
	case MethodEMQO:
		return "e-MQO"
	case MethodQSharing:
		return "q-sharing"
	case MethodOSharing:
		return "o-sharing"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a method name ("basic", "e-basic", "e-mqo",
// "q-sharing", "o-sharing") into a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "basic":
		return MethodBasic, nil
	case "e-basic", "ebasic":
		return MethodEBasic, nil
	case "e-mqo", "emqo", "e-MQO":
		return MethodEMQO, nil
	case "q-sharing", "qsharing":
		return MethodQSharing, nil
	case "o-sharing", "osharing":
		return MethodOSharing, nil
	default:
		return 0, fmt.Errorf("unknown evaluation method %q", s)
	}
}

// Strategy enumerates the o-sharing operator-selection strategies of
// Section VI-A.
type Strategy int

// Operator selection strategies.
const (
	// StrategySEF (Smallest Entropy First) picks the operator whose mapping
	// partition distribution has the lowest entropy.  It is the paper's best
	// performer and the default.
	StrategySEF Strategy = iota
	// StrategySNF (Smallest Number of partitions First) picks the operator
	// with the fewest mapping partitions.
	StrategySNF
	// StrategyRandom picks uniformly at random among executable operators.
	StrategyRandom
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategySEF:
		return "SEF"
	case StrategySNF:
		return "SNF"
	case StrategyRandom:
		return "Random"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a strategy name into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "SEF", "sef":
		return StrategySEF, nil
	case "SNF", "snf":
		return StrategySNF, nil
	case "Random", "random":
		return StrategyRandom, nil
	default:
		return 0, fmt.Errorf("unknown operator selection strategy %q", s)
	}
}

// Options tunes query evaluation.
type Options struct {
	// Method selects the evaluation algorithm.  Defaults to MethodOSharing.
	Method Method
	// Strategy selects the o-sharing operator-selection strategy.  Defaults to
	// StrategySEF.
	Strategy Strategy
	// RandomSeed seeds StrategyRandom so runs are reproducible.
	RandomSeed int64
	// Parallelism bounds the number of worker goroutines the evaluation
	// runtime may use.  0 (the default) selects runtime.GOMAXPROCS(0); 1
	// forces sequential execution.  Answers are identical — same tuples, same
	// probabilities, same order — at every setting; parallelism is purely a
	// performance knob.
	Parallelism int
	// BatchSize tunes the engine's vectorized batch pipeline: 0 (the default)
	// uses the engine's own batch size, a positive value sets the rows per
	// batch, and a negative value falls back to the tuple-at-a-time pipeline.
	// Like Parallelism it is purely a performance knob — answers and operator
	// statistics are identical at every setting.
	BatchSize int
}

// Validate checks the options for values no evaluation can honour: a negative
// parallelism (0 means GOMAXPROCS, 1 sequential; below that is a caller bug,
// not a request for "less than sequential"), an unknown method or an unknown
// strategy.  Returned errors wrap ErrBadOptions.
func (o Options) Validate() error {
	if o.Parallelism < 0 {
		return fmt.Errorf("%w: negative parallelism %d", ErrBadOptions, o.Parallelism)
	}
	switch o.Method {
	case MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing:
	default:
		return fmt.Errorf("%w: unknown method %v", ErrBadOptions, o.Method)
	}
	switch o.Strategy {
	case StrategySEF, StrategySNF, StrategyRandom:
	default:
		return fmt.Errorf("%w: unknown strategy %v", ErrBadOptions, o.Strategy)
	}
	return nil
}

// Evaluator evaluates probabilistic target queries over a set of possible
// mappings and a source instance.
//
// All evaluation methods (and top-k) share the instance's base-relation index
// cache (engine.Instance.Indexes): constant-equality selections and equi-join
// builds over base relations are served from per-column hash indexes that are
// built once per instance — under concurrency, exactly once — instead of once
// per reformulated source query.  Answers are bit-identical with the cache
// enabled or disabled (engine.Instance.SetIndexing).
type Evaluator struct {
	DB   *engine.Instance
	Maps schema.MappingSet
}

// NewEvaluator returns an evaluator over the instance and mapping set.
func NewEvaluator(db *engine.Instance, maps schema.MappingSet) *Evaluator {
	return &Evaluator{DB: db, Maps: maps}
}

// Evaluate runs the target query with the selected method and returns its
// probabilistic answers.
func (e *Evaluator) Evaluate(q *query.Query, opts Options) (*Result, error) {
	return e.EvaluateContext(context.Background(), q, opts)
}

// EvaluateContext runs the target query with the selected method under the
// given context.  The evaluation runtime checks the context between and inside
// operators, so cancelling it (or letting its deadline pass) aborts the
// evaluation promptly with the context's error.  Work fans out over
// opts.Parallelism worker goroutines; answers do not depend on the setting.
func (e *Evaluator) EvaluateContext(ctx context.Context, q *query.Query, opts Options) (*Result, error) {
	if err := validateInputs(q, e.Maps, e.DB); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	ec := exec.NewContext(ctx, opts.Parallelism)
	if opts.BatchSize != 0 {
		ec = ec.WithBatch(opts.BatchSize)
	}
	if err := ec.Err(); err != nil {
		return nil, err
	}
	switch opts.Method {
	case MethodBasic:
		return Basic(ec, q, e.Maps, e.DB)
	case MethodEBasic:
		return EBasic(ec, q, e.Maps, e.DB)
	case MethodEMQO:
		return EMQO(ec, q, e.Maps, e.DB)
	case MethodQSharing:
		return QSharing(ec, q, e.Maps, e.DB)
	case MethodOSharing:
		return OSharing(ec, q, e.Maps, e.DB, OSharingOptions{Strategy: opts.Strategy, RandomSeed: opts.RandomSeed})
	default:
		return nil, fmt.Errorf("evaluate: unknown method %v", opts.Method)
	}
}

// EvaluateTopK runs the probabilistic top-k algorithm of Section VII and
// returns the k answers with the highest probabilities.
func (e *Evaluator) EvaluateTopK(q *query.Query, k int, opts Options) (*Result, error) {
	return e.EvaluateTopKContext(context.Background(), q, k, opts)
}

// EvaluateTopKContext is EvaluateTopK under a context.  The top-k traversal is
// inherently sequential — its early-termination bounds depend on the visit
// order of the u-trace — so opts.Parallelism is ignored, but cancellation and
// deadlines are honoured.
func (e *Evaluator) EvaluateTopKContext(ctx context.Context, q *query.Query, k int, opts Options) (*Result, error) {
	if err := validateInputs(q, e.Maps, e.DB); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: top-k requires k >= 1, got %d", ErrBadOptions, k)
	}
	ec := exec.NewContext(ctx, 1)
	if opts.BatchSize != 0 {
		ec = ec.WithBatch(opts.BatchSize)
	}
	if err := ec.Err(); err != nil {
		return nil, err
	}
	return TopK(ec, q, e.Maps, e.DB, k, OSharingOptions{Strategy: opts.Strategy, RandomSeed: opts.RandomSeed})
}
