package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/mqo"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// Prepared is a target query bound to an evaluator whose front half — the
// work that depends only on the query and the mapping set, not on the data —
// is computed once and reused across executions:
//
//   - basic/e-basic/e-MQO: the per-mapping reformulated and optimized source
//     plans (and, for e-basic/e-MQO, their signature clusters and the MQO
//     global plan);
//   - q-sharing: the partition tree's representative mappings and their
//     reformulated plans;
//   - o-sharing/top-k: the normalized query and the top-level representative
//     mappings.
//
// Each method's front half is built lazily on first use (under the chosen
// method) and memoized; every subsequent Execute/Stream with that method pays
// only the execution and aggregation phases.  Answers are bit-identical to an
// unprepared evaluation — same tuples, probabilities, order and operator
// counts — because the prepared state is exactly what the cold path would
// recompute.
//
// The prepared state references base relations by name, so executions always
// see the instance's current rows; only changes to the mapping set or the
// query require a new Prepared.  A Prepared is safe for concurrent use.
type Prepared struct {
	db   *engine.Instance
	maps schema.MappingSet
	q    *query.Query

	// mu guards the lazily built per-method front halves below.  Builds are
	// memoized on success only, so a build aborted by cancellation retries.
	mu       sync.Mutex
	plans    []engine.Plan // per-mapping optimized plans, index-aligned with maps (nil = not covered)
	ebasic   *clusterPrep
	emqo     *emqoPrep
	qsharing *qsharingPrep
	osharing *osharingPrep
}

// clusterPrep is the e-basic front half: distinct source plans clustered by
// signature, plus the bookkeeping clusterPlans derived from the per-mapping
// plans.
type clusterPrep struct {
	clusters  map[string]*planCluster
	order     []string
	emptyProb float64
	rewritten int
}

// emqoPrep extends the cluster front half with the MQO global plan.  global
// is nil when no mapping covers the query.
type emqoPrep struct {
	clusterPrep
	global *mqo.Plan
	probs  map[string]float64
}

// qsharingPrep is the q-sharing front half: one representative mapping per
// partition with the partition's probability, and its reformulated plan.
type qsharingPrep struct {
	reps       []weightedMapping
	plans      []engine.Plan // index-aligned with reps (nil = not covered)
	partitions int
}

// Prepare binds the query to the evaluator's instance and mapping set and
// returns its prepared form.  Validation happens here; the per-method front
// halves are compiled on first execution with each method.
func (e *Evaluator) Prepare(q *query.Query) (*Prepared, error) {
	if err := validateInputs(q, e.Maps, e.DB); err != nil {
		return nil, err
	}
	return &Prepared{db: e.DB, maps: e.Maps, q: q}, nil
}

// Query returns the prepared target query.
func (p *Prepared) Query() *query.Query { return p.q }

// basicPlans returns (building once) the per-mapping optimized source plans.
func (p *Prepared) basicPlans(ec *exec.Context) ([]engine.Plan, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.plans == nil {
		plans, err := rewriteAll(ec, p.q, p.maps, "prepare")
		if err != nil {
			return nil, err
		}
		p.plans = plans
	}
	return p.plans, nil
}

// ebasicPrep returns (building once) the signature clusters of the
// per-mapping plans.
func (p *Prepared) ebasicPrep(ec *exec.Context) (*clusterPrep, error) {
	plans, err := p.basicPlans(ec)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ebasic == nil {
		clusters, order, emptyProb, rewritten := clusterPlans(plans, p.maps)
		p.ebasic = &clusterPrep{clusters: clusters, order: order, emptyProb: emptyProb, rewritten: rewritten}
	}
	return p.ebasic, nil
}

// emqoPrep returns (building once) the MQO global plan over the distinct
// source plans.
func (p *Prepared) emqoPrep(ec *exec.Context) (*emqoPrep, error) {
	cp, err := p.ebasicPrep(ec)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.emqo == nil {
		ep := &emqoPrep{clusterPrep: *cp}
		if len(cp.order) > 0 {
			plans := make([]engine.Plan, 0, len(cp.order))
			probs := make(map[string]float64, len(cp.order))
			for _, sig := range cp.order {
				plans = append(plans, cp.clusters[sig].plan)
				probs[sig] = cp.clusters[sig].prob
			}
			global, err := mqo.Optimize(plans)
			if err != nil {
				return nil, fmt.Errorf("e-MQO: %w", err)
			}
			ep.global = global
			ep.probs = probs
		}
		p.emqo = ep
	}
	return p.emqo, nil
}

// qsharingFront returns (building once) the q-sharing representatives and
// their reformulated plans.
func (p *Prepared) qsharingFront(ec *exec.Context) (*qsharingPrep, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.qsharing == nil {
		parts, err := PartitionMappings(p.q, p.maps)
		if err != nil {
			return nil, fmt.Errorf("q-sharing: %w", err)
		}
		reps := Represent(parts)
		repMaps := make(schema.MappingSet, len(reps))
		for i := range reps {
			repMaps[i] = reps[i].mapping
		}
		plans, err := rewriteAll(ec, p.q, repMaps, "q-sharing")
		if err != nil {
			return nil, err
		}
		p.qsharing = &qsharingPrep{reps: reps, plans: plans, partitions: len(parts)}
	}
	return p.qsharing, nil
}

// osharingFront returns (building once) the o-sharing/top-k front half.
func (p *Prepared) osharingFront() (*osharingPrep, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.osharing == nil {
		prep, err := prepareOSharing(p.q, p.maps)
		if err != nil {
			return nil, fmt.Errorf("o-sharing: %w", err)
		}
		p.osharing = prep
	}
	return p.osharing, nil
}

// Execute runs the prepared query with the given options and returns the
// materialized result.
func (p *Prepared) Execute(opts Options) (*Result, error) {
	return p.ExecuteContext(context.Background(), opts)
}

// ExecuteContext is Execute under a context: cancellation or a deadline
// aborts the execution promptly with the context's error.
func (p *Prepared) ExecuteContext(ctx context.Context, opts Options) (*Result, error) {
	start := time.Now()
	res, agg, err := p.run(ctx, opts)
	if err != nil {
		return nil, err
	}
	agg.finalize(res)
	res.TotalTime = time.Since(start)
	return res, nil
}

// StreamContext runs the prepared query and returns a cursor over its answers
// in canonical order (descending probability, ties by tuple key) instead of a
// materialized answer slice.  The evaluation and aggregation run before
// StreamContext returns — the canonical order is only known once every
// mapping's contribution is merged — but the answer slice is never built:
// each Answer is produced as the cursor advances, so callers that serialize
// or early-exit never hold the full result.
func (p *Prepared) StreamContext(ctx context.Context, opts Options) (*Cursor, error) {
	start := time.Now()
	res, agg, err := p.run(ctx, opts)
	if err != nil {
		return nil, err
	}
	aggStart := time.Now()
	entries := agg.sortedEntries()
	res.EmptyProb = agg.emptyProb
	res.AggregateTime += time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return newCursor(res, entries), nil
}

// run executes the prepared query's back half under the chosen method,
// returning the result skeleton and the loaded aggregator.
func (p *Prepared) run(ctx context.Context, opts Options) (*Result, *aggregator, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	ec := exec.NewContext(ctx, opts.Parallelism)
	if err := ec.Err(); err != nil {
		return nil, nil, err
	}
	res := &Result{Query: p.q, Method: opts.Method, Columns: OutputColumns(p.q), Stats: engine.NewStats()}
	agg := newAggregator()

	switch opts.Method {
	case MethodBasic:
		plans, err := p.basicPlans(ec)
		if err != nil {
			return nil, nil, fmt.Errorf("basic: %w", err)
		}
		probs := make([]float64, len(p.maps))
		for i, m := range p.maps {
			probs[i] = m.Prob
		}
		if err := executePlans(ec, p.db, plans, probs, "basic", res, agg); err != nil {
			return nil, nil, fmt.Errorf("basic: %w", err)
		}
	case MethodEBasic:
		cp, err := p.ebasicPrep(ec)
		if err != nil {
			return nil, nil, err
		}
		agg.addEmpty(cp.emptyProb)
		res.RewrittenQueries = cp.rewritten
		res.Partitions = len(cp.order)
		if err := executeClusters(ec, p.db, cp.clusters, cp.order, "e-basic", res, agg); err != nil {
			return nil, nil, err
		}
	case MethodEMQO:
		ep, err := p.emqoPrep(ec)
		if err != nil {
			return nil, nil, err
		}
		agg.addEmpty(ep.emptyProb)
		res.RewrittenQueries = ep.rewritten
		res.Partitions = len(ep.order)
		if ep.global != nil {
			if err := executeGlobal(ec, p.db, ep.global, ep.probs, res, agg); err != nil {
				return nil, nil, err
			}
		}
	case MethodQSharing:
		qp, err := p.qsharingFront(ec)
		if err != nil {
			return nil, nil, err
		}
		res.Partitions = qp.partitions
		probs := make([]float64, len(qp.reps))
		for i := range qp.reps {
			probs[i] = qp.reps[i].prob
		}
		if err := executePlans(ec, p.db, qp.plans, probs, "q-sharing", res, agg); err != nil {
			return nil, nil, fmt.Errorf("q-sharing: %w", err)
		}
	case MethodOSharing:
		prep, err := p.osharingFront()
		if err != nil {
			return nil, nil, err
		}
		sink := &collectSink{agg: agg}
		oo := OSharingOptions{Strategy: opts.Strategy, RandomSeed: opts.RandomSeed}
		if err := runOSharingPrepared(ec, prep, p.db, oo, res, sink); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("prepared execute: unknown method %v", opts.Method)
	}
	return res, agg, nil
}

// ExecuteTopK runs the probabilistic top-k algorithm over the prepared query.
func (p *Prepared) ExecuteTopK(k int, opts Options) (*Result, error) {
	return p.ExecuteTopKContext(context.Background(), k, opts)
}

// ExecuteTopKContext is ExecuteTopK under a context.  The traversal is
// inherently sequential (the early-termination bounds depend on visit order),
// so opts.Parallelism is ignored; cancellation and deadlines are honoured.
func (p *Prepared) ExecuteTopKContext(ctx context.Context, k int, opts Options) (*Result, error) {
	start := time.Now()
	res, sink, err := p.runTopK(ctx, k, opts)
	if err != nil {
		return nil, err
	}
	aggStart := time.Now()
	res.Answers = sink.topK()
	res.EmptyProb = sink.emptyProb
	res.AggregateTime = time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return res, nil
}

// StreamTopKContext is ExecuteTopKContext returning a cursor over the top-k
// answers.  Top-k results are at most k answers, so the cursor is a
// convenience for API symmetry rather than a memory saver.
func (p *Prepared) StreamTopKContext(ctx context.Context, k int, opts Options) (*Cursor, error) {
	start := time.Now()
	res, sink, err := p.runTopK(ctx, k, opts)
	if err != nil {
		return nil, err
	}
	aggStart := time.Now()
	answers := sink.topK()
	res.EmptyProb = sink.emptyProb
	res.AggregateTime = time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return newCursorAnswers(res, answers), nil
}

func (p *Prepared) runTopK(ctx context.Context, k int, opts Options) (*Result, *topkSink, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("%w: top-k requires k >= 1, got %d", ErrBadOptions, k)
	}
	ec := exec.NewContext(ctx, 1)
	if err := ec.Err(); err != nil {
		return nil, nil, err
	}
	prep, err := p.osharingFront()
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Query: p.q, Method: MethodTopK, Columns: OutputColumns(p.q), Stats: engine.NewStats()}
	sink := newTopkSink(k)
	oo := OSharingOptions{Strategy: opts.Strategy, RandomSeed: opts.RandomSeed}
	if err := runOSharingPrepared(ec, prep, p.db, oo, res, sink); err != nil {
		return nil, nil, err
	}
	return res, sink, nil
}

// executePlans executes one precompiled plan per (mapping, probability) pair
// on the worker pool and aggregates in index order — the prepared twin of
// basicOver, minus the rewriting that Prepare already paid.  A nil plan marks
// a mapping that does not cover the query; its mass goes to the empty answer.
func executePlans(ec *exec.Context, db *engine.Instance, plans []engine.Plan, probs []float64, label string, res *Result, agg *aggregator) error {
	return exec.Map(ec, len(plans),
		func(ctx context.Context, i int) (*mappingRun, error) {
			run := &mappingRun{stats: engine.NewStats()}
			if plans[i] == nil {
				return run, nil
			}
			execStart := time.Now()
			ex := &engine.Executor{DB: db, Stats: run.stats, Indexes: db.Indexes(), Batch: ec.Batch(), Workers: ec.Parallelism()}
			rel, err := ex.ExecuteContext(ctx, plans[i])
			run.exec = time.Since(execStart)
			if err != nil {
				return nil, fmt.Errorf("%s: executing source query: %w", label, err)
			}
			run.rel = rel
			return run, nil
		},
		func(i int, run *mappingRun) error {
			res.ExecTime += run.exec
			res.Stats.Add(run.stats)
			if run.rel == nil {
				agg.addEmpty(probs[i])
				return nil
			}
			res.RewrittenQueries++
			res.ExecutedQueries++
			aggStart := time.Now()
			agg.addRelation(run.rel, probs[i])
			res.AggregateTime += time.Since(aggStart)
			return nil
		})
}
