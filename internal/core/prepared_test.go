package core

import (
	"context"
	"errors"
	"testing"

	"github.com/probdb/urm/internal/engine"
)

// identicalRuns extends identicalResults with the operator-count and
// bookkeeping fields the prepared path must reproduce exactly: the prepared
// front half is precisely what the cold path recomputes, so nothing observable
// may differ.
func identicalRuns(t *testing.T, label string, want, got *Result) {
	t.Helper()
	identicalResults(t, label, want, got)
	if w, g := want.Stats.Operators(), got.Stats.Operators(); len(w) != len(g) {
		t.Errorf("%s: operator kinds %v, want %v", label, g, w)
	} else {
		for kind, n := range w {
			if g[kind] != n {
				t.Errorf("%s: %s operators = %d, want %d", label, kind, g[kind], n)
			}
		}
	}
	if want.Stats.IndexLookups() != got.Stats.IndexLookups() {
		t.Errorf("%s: index lookups = %d, want %d", label, got.Stats.IndexLookups(), want.Stats.IndexLookups())
	}
	if want.RewrittenQueries != got.RewrittenQueries {
		t.Errorf("%s: rewritten queries = %d, want %d", label, got.RewrittenQueries, want.RewrittenQueries)
	}
	if want.ExecutedQueries != got.ExecutedQueries {
		t.Errorf("%s: executed queries = %d, want %d", label, got.ExecutedQueries, want.ExecutedQueries)
	}
	if want.Partitions != got.Partitions {
		t.Errorf("%s: partitions = %d, want %d", label, got.Partitions, want.Partitions)
	}
}

// collectCursor drains a cursor into an Answers slice plus the result metadata.
func collectCursor(t *testing.T, cur *Cursor) *Result {
	t.Helper()
	res := *cur.Result()
	if res.Answers != nil {
		t.Errorf("streamed Result.Answers = %v, want nil (streaming must not materialize)", res.Answers)
	}
	answers := make([]Answer, 0, cur.Len())
	for cur.Next() {
		answers = append(answers, cur.Answer())
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor close: %v", err)
	}
	if cur.Next() {
		t.Error("Next after Close returned true")
	}
	res.Answers = answers
	return &res
}

// TestPreparedMatchesUnprepared is the prepared-query property test: for every
// method (and top-k), at parallelism 1 and 8, a prepared query re-executed any
// number of times returns answers bit-identical to a cold Evaluate — same
// tuples, probabilities, order, operator counts and bookkeeping.
func TestPreparedMatchesUnprepared(t *testing.T) {
	db := paperInstance()
	maps := mappingSetTimes8(t)
	methods := []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing}

	for _, qc := range runtimeQueries {
		q := mustParse(t, qc.name, qc.text)
		ev := NewEvaluator(db, maps)
		prep, err := ev.Prepare(q)
		if err != nil {
			t.Fatalf("%s: prepare: %v", qc.name, err)
		}
		for _, m := range methods {
			for _, parallelism := range []int{1, 8} {
				opts := Options{Method: m, Parallelism: parallelism}
				cold, err := ev.Evaluate(q, opts)
				if err != nil {
					t.Fatalf("%s/%s/p%d cold: %v", qc.name, m, parallelism, err)
				}
				// Twice: the first execution builds the front half, the second
				// reuses the memoized state.
				for run := 0; run < 2; run++ {
					got, err := prep.Execute(opts)
					if err != nil {
						t.Fatalf("%s/%s/p%d prepared run %d: %v", qc.name, m, parallelism, run, err)
					}
					label := qc.name + "/" + m.String() + "/prepared"
					identicalRuns(t, label, cold, got)
				}
			}
		}
		// Top-k (sequential by design).
		for _, k := range []int{1, 3} {
			cold, err := ev.EvaluateTopK(q, k, Options{})
			if err != nil {
				t.Fatalf("%s/topk%d cold: %v", qc.name, k, err)
			}
			got, err := prep.ExecuteTopK(k, Options{})
			if err != nil {
				t.Fatalf("%s/topk%d prepared: %v", qc.name, k, err)
			}
			identicalRuns(t, qc.name+"/topk/prepared", cold, got)
		}
	}
}

// TestStreamedMatchesMaterialized pins the streaming contract: the cursor
// yields exactly the answers (values, probabilities, order) a materialized
// execution returns, for every method and top-k, at parallelism 1 and 8.
func TestStreamedMatchesMaterialized(t *testing.T) {
	db := paperInstance()
	maps := mappingSetTimes8(t)
	methods := []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing}

	for _, qc := range runtimeQueries {
		q := mustParse(t, qc.name, qc.text)
		prep, err := NewEvaluator(db, maps).Prepare(q)
		if err != nil {
			t.Fatalf("%s: prepare: %v", qc.name, err)
		}
		for _, m := range methods {
			for _, parallelism := range []int{1, 8} {
				opts := Options{Method: m, Parallelism: parallelism}
				mat, err := prep.ExecuteContext(context.Background(), opts)
				if err != nil {
					t.Fatalf("%s/%s/p%d materialized: %v", qc.name, m, parallelism, err)
				}
				cur, err := prep.StreamContext(context.Background(), opts)
				if err != nil {
					t.Fatalf("%s/%s/p%d stream: %v", qc.name, m, parallelism, err)
				}
				if cur.Len() != len(mat.Answers) {
					t.Errorf("%s/%s: cursor Len = %d, want %d", qc.name, m, cur.Len(), len(mat.Answers))
				}
				streamed := collectCursor(t, cur)
				identicalRuns(t, qc.name+"/"+m.String()+"/streamed", mat, streamed)
			}
		}
		matTop, err := prep.ExecuteTopK(2, Options{})
		if err != nil {
			t.Fatalf("%s/topk materialized: %v", qc.name, err)
		}
		curTop, err := prep.StreamTopKContext(context.Background(), 2, Options{})
		if err != nil {
			t.Fatalf("%s/topk stream: %v", qc.name, err)
		}
		identicalRuns(t, qc.name+"/topk/streamed", matTop, collectCursor(t, curTop))
	}
}

// TestPreparedSeesAppendedRows pins the data-freshness contract: prepared
// plans reference base relations by name, so an execution after
// Relation.Append sees the new rows, and re-preparing gives the same answers
// as the already-prepared query.
func TestPreparedSeesAppendedRows(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	ev := NewEvaluator(db, maps)
	prep, err := ev.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing} {
		if _, err := prep.Execute(Options{Method: m}); err != nil {
			t.Fatalf("%s warm-up: %v", m, err)
		}
	}

	// Dave lives at "aaa" (home and office) with a distinctive phone number.
	cust := db.Relation("Customer")
	if err := cust.Append(engine.Tuple{
		engine.I(4), engine.S("Dave"), engine.S("999"), engine.S("999"),
		engine.S("999"), engine.S("aaa"), engine.S("aaa"), engine.I(1),
	}); err != nil {
		t.Fatal(err)
	}

	for _, m := range []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing} {
		got, err := prep.Execute(Options{Method: m})
		if err != nil {
			t.Fatalf("%s after append: %v", m, err)
		}
		if got.Lookup(engine.Tuple{engine.S("999")}) == 0 {
			t.Errorf("%s: prepared execution after Append does not see the new row", m)
		}
		// Re-preparing from scratch must agree exactly with the old prepared
		// query on the new data.
		fresh, err := ev.Prepare(q)
		if err != nil {
			t.Fatalf("%s re-prepare: %v", m, err)
		}
		want, err := fresh.Execute(Options{Method: m})
		if err != nil {
			t.Fatalf("%s re-prepared execute: %v", m, err)
		}
		identicalRuns(t, m.String()+"/after-append", want, got)
	}
}

// TestOptionsValidate exercises the option-validation satellite: negative
// parallelism, unknown methods/strategies and non-positive k are rejected with
// errors wrapping ErrBadOptions, on both the cold and the prepared paths.
func TestOptionsValidate(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	ev := NewEvaluator(db, maps)
	prep, err := ev.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		name string
		opts Options
	}{
		{"negative parallelism", Options{Method: MethodBasic, Parallelism: -1}},
		{"unknown method", Options{Method: Method(42)}},
		{"unknown strategy", Options{Method: MethodOSharing, Strategy: Strategy(9)}},
	}
	for _, tc := range bad {
		if err := tc.opts.Validate(); !errors.Is(err, ErrBadOptions) {
			t.Errorf("Validate %s: err = %v, want ErrBadOptions", tc.name, err)
		}
		if _, err := ev.Evaluate(q, tc.opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("Evaluate %s: err = %v, want ErrBadOptions", tc.name, err)
		}
		if _, err := prep.Execute(tc.opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("prepared Execute %s: err = %v, want ErrBadOptions", tc.name, err)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options should validate, got %v", err)
	}
	if _, err := ev.EvaluateTopK(q, 0, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("EvaluateTopK k=0: err = %v, want ErrBadOptions", err)
	}
	if _, err := prep.ExecuteTopK(-1, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("prepared ExecuteTopK k=-1: err = %v, want ErrBadOptions", err)
	}

	// Cancellation still aborts prepared executions promptly.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prep.ExecuteContext(cancelled, Options{Method: MethodQSharing}); !errors.Is(err, context.Canceled) {
		t.Errorf("prepared cancelled: err = %v, want context.Canceled", err)
	}
	if _, err := prep.StreamContext(cancelled, Options{Method: MethodOSharing}); !errors.Is(err, context.Canceled) {
		t.Errorf("prepared stream cancelled: err = %v, want context.Canceled", err)
	}
}
