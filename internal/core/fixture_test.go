package core

import (
	"math"
	"testing"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// This file builds the paper's running example (Figures 1–3) as a shared test
// fixture: the Customer/C_Order/Nation source schema with the Figure 2
// instance, the Person/Order target schema, and the five possible mappings of
// Figure 3.

func attr(rel, name string) schema.Attribute { return schema.Attribute{Relation: rel, Name: name} }

func paperSourceSchema() *schema.Schema {
	s := schema.NewSchema("Source")
	s.MustAddRelation(&schema.RelationSchema{Name: "Customer", Columns: []schema.Column{
		{Name: "cid", Type: schema.TypeInt}, {Name: "cname"}, {Name: "ophone"}, {Name: "hphone"},
		{Name: "mobile"}, {Name: "oaddr"}, {Name: "haddr"}, {Name: "nid", Type: schema.TypeInt},
	}})
	s.MustAddRelation(&schema.RelationSchema{Name: "C_Order", Columns: []schema.Column{
		{Name: "oid", Type: schema.TypeInt}, {Name: "cid", Type: schema.TypeInt}, {Name: "amount", Type: schema.TypeFloat},
	}})
	s.MustAddRelation(&schema.RelationSchema{Name: "Nation", Columns: []schema.Column{
		{Name: "nid", Type: schema.TypeInt}, {Name: "name"},
	}})
	return s
}

func paperTargetSchema() *schema.Schema {
	t := schema.NewSchema("Target")
	t.MustAddRelation(&schema.RelationSchema{Name: "Person", Columns: []schema.Column{
		{Name: "pname"}, {Name: "phone"}, {Name: "addr"}, {Name: "nation"}, {Name: "gender"},
	}})
	t.MustAddRelation(&schema.RelationSchema{Name: "Order", Columns: []schema.Column{
		{Name: "sname"}, {Name: "item"}, {Name: "status"}, {Name: "price", Type: schema.TypeFloat}, {Name: "total", Type: schema.TypeFloat},
	}})
	return t
}

// paperInstance is the source instance of Figure 2 plus small C_Order and
// Nation relations.
func paperInstance() *engine.Instance {
	db := engine.NewInstance("D")
	cust := engine.NewRelation("Customer", []string{"cid", "cname", "ophone", "hphone", "mobile", "oaddr", "haddr", "nid"})
	cust.MustAppend(engine.Tuple{engine.I(1), engine.S("Alice"), engine.S("123"), engine.S("789"), engine.S("555"), engine.S("aaa"), engine.S("hk"), engine.I(1)})
	cust.MustAppend(engine.Tuple{engine.I(2), engine.S("Bob"), engine.S("456"), engine.S("123"), engine.S("556"), engine.S("bbb"), engine.S("hk"), engine.I(1)})
	cust.MustAppend(engine.Tuple{engine.I(3), engine.S("Cindy"), engine.S("456"), engine.S("789"), engine.S("557"), engine.S("aaa"), engine.S("aaa"), engine.I(2)})
	db.AddRelation(cust)
	ord := engine.NewRelation("C_Order", []string{"oid", "cid", "amount"})
	ord.MustAppend(engine.Tuple{engine.I(10), engine.I(1), engine.F(100)})
	ord.MustAppend(engine.Tuple{engine.I(11), engine.I(2), engine.F(250)})
	db.AddRelation(ord)
	nat := engine.NewRelation("Nation", []string{"nid", "name"})
	nat.MustAppend(engine.Tuple{engine.I(1), engine.S("HK")})
	nat.MustAppend(engine.Tuple{engine.I(2), engine.S("CN")})
	db.AddRelation(nat)
	return db
}

// paperMappings builds the five possible mappings of Figure 3.  Every mapping
// keeps (cname, pname) except m5, and they differ on phone and addr exactly as
// in the figure.  Order-side correspondences are added so queries over Order
// can be reformulated.
func paperMappings() schema.MappingSet {
	m1 := schema.MustNewMapping("m1", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "oaddr"), Target: attr("Person", "addr"), Score: 0.75},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
		{Source: attr("C_Order", "amount"), Target: attr("Order", "total"), Score: 0.63},
	}, 0.3)
	m2 := schema.MustNewMapping("m2", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "oaddr"), Target: attr("Person", "addr"), Score: 0.75},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
		{Source: attr("C_Order", "amount"), Target: attr("Order", "price"), Score: 0.4},
	}, 0.2)
	m3 := schema.MustNewMapping("m3", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "haddr"), Target: attr("Person", "addr"), Score: 0.65},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
		{Source: attr("C_Order", "amount"), Target: attr("Order", "total"), Score: 0.63},
	}, 0.2)
	m4 := schema.MustNewMapping("m4", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "hphone"), Target: attr("Person", "phone"), Score: 0.83},
		{Source: attr("Customer", "haddr"), Target: attr("Person", "addr"), Score: 0.65},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
		{Source: attr("C_Order", "amount"), Target: attr("Order", "total"), Score: 0.63},
	}, 0.2)
	m5 := schema.MustNewMapping("m5", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Order", "sname"), Score: 0.45},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "haddr"), Target: attr("Person", "addr"), Score: 0.65},
		{Source: attr("Nation", "name"), Target: attr("Order", "item"), Score: 0.3},
		{Source: attr("C_Order", "amount"), Target: attr("Order", "total"), Score: 0.63},
	}, 0.1)
	return schema.MappingSet{m1, m2, m3, m4, m5}
}

// mustParse builds a target query over the paper's target schema.
func mustParse(t *testing.T, name, text string) *query.Query {
	t.Helper()
	q, err := query.Parse(name, paperTargetSchema(), text)
	if err != nil {
		t.Fatalf("parse %s: %v", text, err)
	}
	return q
}

// answersByValue converts a result into a value-string -> probability map for
// easy comparison (single-column answers).
func answersByValue(res *Result) map[string]float64 {
	out := make(map[string]float64, len(res.Answers))
	for _, a := range res.Answers {
		key := ""
		for i, v := range a.Tuple {
			if i > 0 {
				key += "|"
			}
			key += v.String()
		}
		out[key] = a.Prob
	}
	return out
}

func approxEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// sameAnswers asserts that two results contain the same answer tuples with the
// same probabilities and the same empty-answer probability.
func sameAnswers(t *testing.T, want, got *Result, label string) {
	t.Helper()
	wa, ga := answersByValue(want), answersByValue(got)
	if len(wa) != len(ga) {
		t.Errorf("%s: answer count %d, want %d (%v vs %v)", label, len(ga), len(wa), ga, wa)
		return
	}
	for k, p := range wa {
		if !approxEqual(ga[k], p) {
			t.Errorf("%s: answer %q prob = %g, want %g", label, k, ga[k], p)
		}
	}
	if !approxEqual(want.EmptyProb, got.EmptyProb) {
		t.Errorf("%s: empty prob = %g, want %g", label, got.EmptyProb, want.EmptyProb)
	}
}
