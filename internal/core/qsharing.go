package core

import (
	"fmt"
	"math"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// QSharing evaluates the target query with query-level sharing (Algorithm 1):
// the mapping set is partitioned with the partition tree so that each group of
// mappings producing the same source query is rewritten and executed exactly
// once, with the group's total probability.
//
// Compared with e-basic, q-sharing avoids rewriting one source query per
// mapping: the partition tree works directly on the mappings' correspondences
// for the query's target attributes.
//
// The per-partition evaluations are independent and run on the runtime's
// worker pool; answers are aggregated in partition order, so the result is
// identical at any parallelism.
func QSharing(ec *exec.Context, q *query.Query, maps schema.MappingSet, db *engine.Instance) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodQSharing, Columns: OutputColumns(q), Stats: engine.NewStats()}
	agg := newAggregator()

	// Step 1: partition the mappings with the partition tree.
	rewriteStart := time.Now()
	parts, err := PartitionMappings(q, maps)
	if err != nil {
		return nil, fmt.Errorf("q-sharing: %w", err)
	}
	// Step 2: pick representative mappings with summed probabilities.
	reps := Represent(parts)
	res.Partitions = len(parts)
	res.RewriteTime = time.Since(rewriteStart)

	// Step 3: run basic over the representatives (one evaluation per partition
	// leaf, fanned out over the pool).
	if err := basicOver(ec, q, reps, db, res, agg); err != nil {
		return nil, fmt.Errorf("q-sharing: %w", err)
	}
	agg.finalize(res)
	res.TotalTime = time.Since(start)
	return res, nil
}

// Entropy computes the entropy of a mapping set with respect to a partition of
// it (Definition 1): E = -Σ (|Pj|/|M|) log2(|Pj|/|M|).
func Entropy(parts []*Partition, totalMappings int) float64 {
	if totalMappings == 0 {
		return 0
	}
	e := 0.0
	for _, p := range parts {
		if len(p.Mappings) == 0 {
			continue
		}
		frac := float64(len(p.Mappings)) / float64(totalMappings)
		e -= frac * math.Log2(frac)
	}
	return e
}

// EntropyForAttributes is a convenience that partitions the mapping set by the
// given target attributes and returns the entropy of that partitioning.
func EntropyForAttributes(attrs []schema.Attribute, maps schema.MappingSet) float64 {
	return Entropy(PartitionByAttributes(attrs, maps), len(maps))
}
