package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// OSharingOptions tunes the o-sharing evaluation (Sections V–VI).
type OSharingOptions struct {
	// Strategy selects the next-operator choice: SEF (default), SNF or Random.
	Strategy Strategy
	// RandomSeed seeds the Random strategy; 0 uses a fixed default seed so
	// runs stay reproducible.
	RandomSeed int64
}

// OSharing evaluates the target query with operator-level sharing
// (Algorithm 2): query rewriting and execution are interleaved over a u-trace
// of e-units, so that the result of executing one source operator is shared by
// every mapping that translates the corresponding target operator identically,
// even when the mappings differ elsewhere.
//
// The subtrees below the first branching node of the u-trace are independent,
// so they run on the runtime's worker pool; each branch buffers its leaf
// results, which are then replayed into the aggregator in branch order,
// reproducing the sequential depth-first visit exactly.  Operator selection
// (SEF/SNF/Random) stays deterministic at any parallelism: every u-trace node
// derives its Random seed from its position in the trace rather than from a
// shared generator.
func OSharing(ec *exec.Context, q *query.Query, maps schema.MappingSet, db *engine.Instance, opts OSharingOptions) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodOSharing, Columns: OutputColumns(q), Stats: engine.NewStats()}

	agg := newAggregator()
	sink := &collectSink{agg: agg}
	if err := runOSharing(ec, q, maps, db, opts, res, sink); err != nil {
		return nil, err
	}
	aggStart := time.Now()
	res.Answers = agg.answers()
	res.EmptyProb = agg.emptyProb
	res.AggregateTime = time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return res, nil
}

// resultSink receives leaf e-unit results as the u-trace is explored.  The
// plain o-sharing sink aggregates them; the top-k sink maintains probability
// bounds and can stop the traversal early.
type resultSink interface {
	// onAnswers receives the answer relation computed for a leaf e-unit and
	// the total probability of its mapping set.  It returns true to stop the
	// whole traversal.
	onAnswers(rel *engine.Relation, prob float64) bool
	// onEmpty receives the probability mass of an e-unit whose result is
	// empty.  It returns true to stop the traversal.
	onEmpty(prob float64) bool
}

// collectSink aggregates every answer; it never stops the traversal.
type collectSink struct {
	agg *aggregator
}

func (s *collectSink) onAnswers(rel *engine.Relation, prob float64) bool {
	s.agg.addRelation(rel, prob)
	return false
}

func (s *collectSink) onEmpty(prob float64) bool {
	s.agg.addEmpty(prob)
	return false
}

// osharingPrep is the precomputed front half of an o-sharing (or top-k)
// evaluation: the normalized target query and the representative mappings of
// the top-level partition tree (Steps 1–2 of Algorithm 2).  Everything in it
// is read-only during the u-trace traversal, so one prep may back any number
// of concurrent executions.
type osharingPrep struct {
	nq   *normalizedQuery
	reps schema.MappingSet
}

// prepareOSharing computes the o-sharing front half: it normalizes the query
// into the operator/fragment form e-units manipulate and partitions the
// mapping set, cloning one representative per partition with the partition's
// total probability.
func prepareOSharing(q *query.Query, maps schema.MappingSet) (*osharingPrep, error) {
	nq, err := normalizeQuery(q)
	if err != nil {
		return nil, err
	}
	parts, err := PartitionMappings(q, maps)
	if err != nil {
		return nil, err
	}
	reps := make(schema.MappingSet, 0, len(parts))
	for _, p := range parts {
		if p.Representative == nil {
			continue
		}
		rep := p.Representative.Clone()
		rep.Prob = p.Prob
		reps = append(reps, rep)
	}
	return &osharingPrep{nq: nq, reps: reps}, nil
}

// runOSharing drives Algorithm 2 for either o-sharing or top-k (which differ
// only in the sink).  It fills the rewrite/exec timing and partition fields of
// res.  Top-k callers pass a sequential context: early termination depends on
// the visit order, so only the plain collecting sink may run parallel.
func runOSharing(ec *exec.Context, q *query.Query, maps schema.MappingSet, db *engine.Instance, opts OSharingOptions, res *Result, sink resultSink) error {
	// Steps 1–2: normalization and representative mappings M'.
	rewriteStart := time.Now()
	prep, err := prepareOSharing(q, maps)
	if err != nil {
		return fmt.Errorf("o-sharing: %w", err)
	}
	res.RewriteTime = time.Since(rewriteStart)
	return runOSharingPrepared(ec, prep, db, opts, res, sink)
}

// runOSharingPrepared is runOSharing with the front half already computed: it
// only explores the u-trace (Steps 3–4).  Prepared re-executions enter here,
// paying no normalization or partitioning cost.
func runOSharingPrepared(ec *exec.Context, prep *osharingPrep, db *engine.Instance, opts OSharingOptions, res *Result, sink resultSink) error {
	res.Partitions = len(prep.reps)

	seed := opts.RandomSeed
	if seed == 0 {
		seed = 1
	}
	osh := &osharer{
		nq:       prep.nq,
		db:       db,
		ec:       ec,
		stats:    res.Stats,
		strategy: opts.Strategy,
		sink:     sink,
		indexes:  db.Indexes(),
	}

	// Step 3: initial e-unit covering the whole query and all representatives.
	execStart := time.Now()
	u1 := newEUnit(prep.nq, prep.reps)
	// Step 4: recursively expand the u-trace.
	_, err := osh.runQT(u1, seed)
	res.ExecTime = time.Since(execStart)
	if err != nil {
		return fmt.Errorf("o-sharing: %w", err)
	}
	return nil
}

// splitSeed derives a deterministic child seed for the idx-th branch below a
// u-trace node (SplitMix64 finalizer).  Deriving per-branch seeds from the
// trace position instead of consuming a shared generator is what keeps
// StrategyRandom reproducible no matter how branches are scheduled across
// workers.
func splitSeed(seed int64, idx int) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// opKind enumerates the target-operator classes handled by o-sharing.
type opKind int

const (
	opSelect opKind = iota
	opJoinSelect
	opProduct
	opFinal
)

func (k opKind) String() string {
	switch k {
	case opSelect:
		return "select"
	case opJoinSelect:
		return "join-select"
	case opProduct:
		return "product"
	case opFinal:
		return "final"
	default:
		return fmt.Sprintf("opKind(%d)", int(k))
	}
}

// targetOp is one operator of the normalized target query.
type targetOp struct {
	id   int
	kind opKind

	sel  *query.Select
	jsel *query.JoinSelect

	// Product operands: the alias sets under the left and right subtrees.
	leftAliases  []string
	rightAliases []string

	// final is the root projection/aggregation node, or nil when the query has
	// neither (the final op then only merges and materializes fragments).
	final query.Node
}

// normalizedQuery is the target query decomposed into relation occurrences,
// selection operators, Cartesian-product operators and a final operator, which
// is the form the o-sharing e-units manipulate.  Queries whose internal nodes
// include projections or aggregates below other operators are not supported by
// o-sharing (they are by the other methods).
type normalizedQuery struct {
	q       *query.Query
	ref     *query.Reformulator
	aliases []string
	ops     []*targetOp
	// aliasAttrs caches the target attributes referenced via each alias.
	aliasAttrs map[string][]schema.Attribute
}

func normalizeQuery(q *query.Query) (*normalizedQuery, error) {
	nq := &normalizedQuery{q: q, ref: query.NewReformulator(q), aliasAttrs: make(map[string][]schema.Attribute)}

	body := q.Root
	var final query.Node
	switch q.Root.(type) {
	case *query.Project, *query.Aggregate:
		final = q.Root
		body = q.Root.Children()[0]
	}

	var collect func(n query.Node) error
	collect = func(n query.Node) error {
		switch op := n.(type) {
		case *query.Scan:
			nq.aliases = append(nq.aliases, op.AliasName())
			return nil
		case *query.Select:
			nq.ops = append(nq.ops, &targetOp{kind: opSelect, sel: op})
			return collect(op.Child)
		case *query.JoinSelect:
			nq.ops = append(nq.ops, &targetOp{kind: opJoinSelect, jsel: op})
			return collect(op.Child)
		case *query.Product:
			nq.ops = append(nq.ops, &targetOp{
				kind:         opProduct,
				leftAliases:  subtreeAliases(op.Left),
				rightAliases: subtreeAliases(op.Right),
			})
			if err := collect(op.Left); err != nil {
				return err
			}
			return collect(op.Right)
		case *query.Project, *query.Aggregate:
			return fmt.Errorf("o-sharing does not support %T below other operators", n)
		default:
			return fmt.Errorf("o-sharing: unsupported node type %T", n)
		}
	}
	if err := collect(body); err != nil {
		return nil, err
	}
	// The final operator is always present; it merges remaining fragments and
	// applies the root projection/aggregation if any.
	nq.ops = append(nq.ops, &targetOp{kind: opFinal, final: final})
	for i, op := range nq.ops {
		op.id = i
	}
	// Cache per-alias attribute lists.
	for _, alias := range nq.aliases {
		names, err := q.AttributesForAlias(alias)
		if err != nil {
			return nil, err
		}
		rel := q.Aliases()[alias]
		attrs := make([]schema.Attribute, 0, len(names))
		for _, n := range names {
			attrs = append(attrs, schema.Attribute{Relation: rel, Name: n})
		}
		nq.aliasAttrs[alias] = attrs
	}
	return nq, nil
}

func subtreeAliases(n query.Node) []string {
	var out []string
	var walk func(query.Node)
	walk = func(n query.Node) {
		if s, ok := n.(*query.Scan); ok {
			out = append(out, s.AliasName())
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// fragment is a set of relation occurrences of the target query together with
// the source relation that currently materializes them inside an e-unit.  A
// nil rel means the (single) occurrence has not been touched yet.
type fragment struct {
	aliases  map[string]bool
	included map[string]map[string]bool // alias -> source relations scanned in
	rel      *engine.Relation
}

func (f *fragment) clone() *fragment {
	out := &fragment{
		aliases:  make(map[string]bool, len(f.aliases)),
		included: make(map[string]map[string]bool, len(f.included)),
		rel:      f.rel,
	}
	for a := range f.aliases {
		out.aliases[a] = true
	}
	for a, rels := range f.included {
		cp := make(map[string]bool, len(rels))
		for r := range rels {
			cp[r] = true
		}
		out.included[a] = cp
	}
	return out
}

func (f *fragment) hasAlias(a string) bool { return f.aliases[a] }

// eUnit is an execution unit (Section V): the partially executed target query
// (fragments plus the set of operators already executed) and the mapping set
// that shares this state.
type eUnit struct {
	fragments []*fragment
	done      []bool
	maps      schema.MappingSet
}

func newEUnit(nq *normalizedQuery, maps schema.MappingSet) *eUnit {
	u := &eUnit{done: make([]bool, len(nq.ops)), maps: maps}
	for _, alias := range nq.aliases {
		u.fragments = append(u.fragments, &fragment{
			aliases:  map[string]bool{alias: true},
			included: make(map[string]map[string]bool),
		})
	}
	return u
}

func (u *eUnit) clone() *eUnit {
	out := &eUnit{
		fragments: make([]*fragment, len(u.fragments)),
		done:      make([]bool, len(u.done)),
		maps:      u.maps,
	}
	for i, f := range u.fragments {
		out.fragments[i] = f.clone()
	}
	copy(out.done, u.done)
	return out
}

func (u *eUnit) allDone() bool {
	for _, d := range u.done {
		if !d {
			return false
		}
	}
	return true
}

func (u *eUnit) fragmentOf(alias string) *fragment {
	for _, f := range u.fragments {
		if f.hasAlias(alias) {
			return f
		}
	}
	return nil
}

func (u *eUnit) fragmentCovering(aliases []string) *fragment {
	if len(aliases) == 0 {
		return nil
	}
	f := u.fragmentOf(aliases[0])
	if f == nil {
		return nil
	}
	for _, a := range aliases[1:] {
		if !f.hasAlias(a) {
			return nil
		}
	}
	return f
}

// hasEmptyFragment reports whether any materialized fragment is empty, which
// forces every downstream product and selection to be empty as well.
func (u *eUnit) hasEmptyFragment() bool {
	for _, f := range u.fragments {
		if f.rel != nil && f.rel.IsEmpty() {
			return true
		}
	}
	return false
}

func (u *eUnit) totalProb() float64 { return u.maps.TotalProb() }

// replaceFragments removes the given fragments from the unit and adds the
// replacement.
func (u *eUnit) replaceFragments(remove []*fragment, add *fragment) {
	out := u.fragments[:0]
	for _, f := range u.fragments {
		skip := false
		for _, r := range remove {
			if f == r {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, f)
		}
	}
	u.fragments = append(out, add)
}

// osharer carries the shared state of one o-sharing evaluation.
type osharer struct {
	nq       *normalizedQuery
	db       *engine.Instance
	ec       *exec.Context
	stats    *engine.Stats
	strategy Strategy
	sink     resultSink
	// indexes is the instance's shared base-relation index cache (nil when
	// disabled): selections and join builds over untouched fragments — a
	// fragment fresh from a scan still shares the base relation's rows — are
	// served from it.
	indexes *engine.IndexCache
}

// sinkEvent is one buffered leaf result of a u-trace branch: an answer
// relation with its probability mass, or (rel == nil) empty-answer mass.
type sinkEvent struct {
	rel  *engine.Relation
	prob float64
}

// bufferSink records leaf results instead of aggregating them, so a branch
// explored on a worker can replay them into the real sink in branch order.
type bufferSink struct {
	events []sinkEvent
}

func (s *bufferSink) onAnswers(rel *engine.Relation, prob float64) bool {
	s.events = append(s.events, sinkEvent{rel: rel, prob: prob})
	return false
}

func (s *bufferSink) onEmpty(prob float64) bool {
	s.events = append(s.events, sinkEvent{prob: prob})
	return false
}

// runQT is the recursive run_qt function of Algorithm 2.  It returns true when
// the sink asked to stop the traversal (top-k early termination).  seed is the
// node's deterministic position-derived seed for StrategyRandom.
func (os *osharer) runQT(u *eUnit, seed int64) (bool, error) {
	if err := os.ec.Err(); err != nil {
		return false, err
	}
	// Case 2: an empty intermediate relation makes the remaining result empty
	// (or a trivially computable aggregate over an empty input).
	if u.hasEmptyFragment() && !u.allDone() {
		return os.finishEmpty(u)
	}
	// Case 1: every operator has been executed; the single remaining fragment
	// holds the answers for all mappings of this e-unit.
	if u.allDone() {
		rel := u.fragments[0].rel
		if len(u.fragments) != 1 || rel == nil {
			return false, fmt.Errorf("o-sharing: malformed terminal e-unit (%d fragments)", len(u.fragments))
		}
		if rel.IsEmpty() {
			return os.sink.onEmpty(u.totalProb()), nil
		}
		return os.sink.onAnswers(rel, u.totalProb()), nil
	}

	// Case 3: choose the next operator, execute it once per mapping partition,
	// and recurse into the child e-units.
	op, parts, err := os.chooseNext(u, seed)
	if err != nil {
		return false, err
	}
	// Visit large partitions first: harmless for o-sharing, and it tightens
	// the top-k bounds as early as possible.
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].Prob > parts[j].Prob })

	// The partitions' subtrees are independent: fan them out over the worker
	// pool at the first branching node.  Below it, branches run sequentially
	// (their contexts carry parallelism 1).
	if os.ec.Parallelism() > 1 && len(parts) > 1 {
		return os.runBranchesParallel(u, op, parts, seed)
	}

	for idx, p := range parts {
		child, execErr := os.executeOp(u, op, p)
		if execErr != nil {
			if errors.Is(execErr, query.ErrNotCovered) {
				// None of the partition's mappings can answer the query.
				if stop := os.sink.onEmpty(p.Prob); stop {
					return true, nil
				}
				continue
			}
			return false, execErr
		}
		stop, err := os.runQT(child, splitSeed(seed, idx))
		if err != nil {
			return false, err
		}
		if stop {
			return true, nil
		}
	}
	return false, nil
}

// runBranchesParallel explores the partitions' subtrees on the worker pool.
// Each branch runs a private sequential osharer that buffers its leaf results
// and records into private statistics; results are replayed into the real sink
// and the statistics merged in branch order, so the observable behaviour is
// exactly the sequential depth-first traversal.
func (os *osharer) runBranchesParallel(u *eUnit, op *targetOp, parts []*Partition, seed int64) (bool, error) {
	type branchOut struct {
		events []sinkEvent
		stats  *engine.Stats
	}
	stopped := false
	err := exec.Map(os.ec, len(parts),
		func(ctx context.Context, i int) (*branchOut, error) {
			buf := &bufferSink{}
			sub := &osharer{
				nq:       os.nq,
				db:       os.db,
				ec:       exec.NewContext(ctx, 1),
				stats:    engine.NewStats(),
				strategy: os.strategy,
				sink:     buf,
				indexes:  os.indexes,
			}
			child, execErr := sub.executeOp(u, op, parts[i])
			if execErr != nil {
				if errors.Is(execErr, query.ErrNotCovered) {
					buf.onEmpty(parts[i].Prob)
					return &branchOut{events: buf.events, stats: sub.stats}, nil
				}
				return nil, execErr
			}
			if _, err := sub.runQT(child, splitSeed(seed, i)); err != nil {
				return nil, err
			}
			return &branchOut{events: buf.events, stats: sub.stats}, nil
		},
		func(i int, b *branchOut) error {
			os.stats.Add(b.stats)
			if stopped {
				return nil
			}
			for _, ev := range b.events {
				if ev.rel == nil {
					if os.sink.onEmpty(ev.prob) {
						stopped = true
						break
					}
				} else if os.sink.onAnswers(ev.rel, ev.prob) {
					stopped = true
					break
				}
			}
			return nil
		})
	if err != nil {
		return false, err
	}
	return stopped, nil
}

// finishEmpty handles Case 2: the e-unit contains an empty intermediate
// relation.  If the query's final operator is an aggregate, the aggregate over
// an empty input is still a real answer (COUNT = 0, SUM = 0); otherwise the
// whole result is empty.
func (os *osharer) finishEmpty(u *eUnit) (bool, error) {
	finalOp := os.nq.ops[len(os.nq.ops)-1]
	if agg, ok := finalOp.final.(*query.Aggregate); ok && !u.done[finalOp.id] {
		emptyIn := engine.NewRelation("empty", []string{"v"})
		col := ""
		if agg.Func != engine.AggCount {
			col = "v"
		}
		rel, err := engine.Aggregate(os.ec.Ctx(), emptyIn, agg.Func, col, os.stats)
		if err != nil {
			return false, err
		}
		return os.sink.onAnswers(rel, u.totalProb()), nil
	}
	return os.sink.onEmpty(u.totalProb()), nil
}

// executable reports whether the operator can be chosen as next-op in the
// e-unit (the "correctness" criterion of Section VI-A).
func (os *osharer) executable(u *eUnit, op *targetOp) bool {
	if u.done[op.id] {
		return false
	}
	switch op.kind {
	case opSelect, opJoinSelect:
		return true
	case opProduct:
		// Both operand alias sets must each already live inside a single
		// fragment (their own sub-products or join conditions have merged
		// them), mirroring a bottom-up execution of the product tree.
		return u.fragmentCovering(op.leftAliases) != nil && u.fragmentCovering(op.rightAliases) != nil
	case opFinal:
		for i, d := range u.done {
			if i != op.id && !d {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// partitionAttrs returns the target attributes whose correspondences determine
// how the operator reformulates in the e-unit: the attributes the operator
// references plus, for relation occurrences it must materialize, every query
// attribute of those occurrences.
func (os *osharer) partitionAttrs(u *eUnit, op *targetOp) ([]schema.Attribute, error) {
	var attrs []schema.Attribute
	addAlias := func(alias string) {
		frag := u.fragmentOf(alias)
		if frag != nil && frag.rel != nil {
			return // already materialized; its shape is fixed
		}
		attrs = append(attrs, os.nq.aliasAttrs[alias]...)
	}
	switch op.kind {
	case opSelect:
		a, err := os.nq.q.NodeAttributes(op.sel)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a...)
	case opJoinSelect:
		a, err := os.nq.q.NodeAttributes(op.jsel)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a...)
	case opProduct:
		for _, alias := range op.leftAliases {
			addAlias(alias)
		}
		for _, alias := range op.rightAliases {
			addAlias(alias)
		}
	case opFinal:
		if op.final != nil {
			a, err := os.nq.q.NodeAttributes(op.final)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a...)
		}
		for _, alias := range os.nq.aliases {
			addAlias(alias)
		}
	}
	// De-duplicate while preserving order.
	seen := make(map[schema.Attribute]bool, len(attrs))
	out := attrs[:0]
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out, nil
}

// chooseNext implements the next() function of Algorithm 2 with the strategy
// of Section VI-A: among executable operators, pick by Random, SNF (fewest
// partitions) or SEF (lowest entropy), and return the chosen operator together
// with the partitioning of the e-unit's mappings with respect to it.  seed
// drives StrategyRandom for this node only.
func (os *osharer) chooseNext(u *eUnit, seed int64) (*targetOp, []*Partition, error) {
	type candidate struct {
		op    *targetOp
		parts []*Partition
	}
	var cands []candidate
	for _, op := range os.nq.ops {
		if !os.executable(u, op) {
			continue
		}
		attrs, err := os.partitionAttrs(u, op)
		if err != nil {
			return nil, nil, err
		}
		cands = append(cands, candidate{op: op, parts: PartitionByAttributes(attrs, u.maps)})
	}
	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("o-sharing: no executable operator in e-unit")
	}
	best := 0
	switch os.strategy {
	case StrategyRandom:
		best = rand.New(rand.NewSource(seed)).Intn(len(cands))
	case StrategySNF:
		for i := 1; i < len(cands); i++ {
			if len(cands[i].parts) < len(cands[best].parts) {
				best = i
			}
		}
	case StrategySEF:
		bestE := Entropy(cands[best].parts, len(u.maps))
		for i := 1; i < len(cands); i++ {
			e := Entropy(cands[i].parts, len(u.maps))
			if e < bestE-1e-12 {
				best, bestE = i, e
			}
		}
	default:
		return nil, nil, fmt.Errorf("o-sharing: unknown strategy %v", os.strategy)
	}
	return cands[best].op, cands[best].parts, nil
}

// ensureIncluded guarantees that the fragment's materialization contains the
// given source relation for the alias, scanning (and, if the fragment is
// already materialized, extending it with a Cartesian product — Case 2 of the
// reformulate_op rules) as needed.
func (os *osharer) ensureIncluded(frag *fragment, alias, srcRel string) error {
	if frag.included[alias] != nil && frag.included[alias][srcRel] {
		return nil
	}
	base := os.db.Relation(srcRel)
	if base == nil {
		return fmt.Errorf("o-sharing: unknown source relation %q", srcRel)
	}
	os.stats.RecordOp(engine.OpKindScan)
	scanned := base.QualifyColumns(alias + "." + srcRel)
	if frag.rel == nil {
		frag.rel = scanned
	} else {
		prod, err := engine.Product(os.ec.Ctx(), frag.rel, scanned, os.stats)
		if err != nil {
			return err
		}
		frag.rel = prod
	}
	if frag.included[alias] == nil {
		frag.included[alias] = make(map[string]bool)
	}
	frag.included[alias][srcRel] = true
	return nil
}

// materializeAlias brings every source relation needed to cover the query's
// attributes of the alias (under mapping m) into the fragment.
func (os *osharer) materializeAlias(frag *fragment, alias string, m *schema.Mapping) error {
	rels, err := os.nq.ref.SourceRelationsForAlias(m, alias)
	if err != nil {
		return err
	}
	for _, r := range rels {
		if err := os.ensureIncluded(frag, alias, r); err != nil {
			return err
		}
	}
	return nil
}

// sourceColumnIn resolves the target attribute reference to its engine column
// name under the mapping, making sure the owning fragment includes the needed
// source relation.
func (os *osharer) sourceColumnIn(u *eUnit, m *schema.Mapping, ref query.AttrRef) (string, *fragment, error) {
	target, err := os.nq.q.ResolveRef(ref)
	if err != nil {
		return "", nil, err
	}
	alias := ref.Alias
	if alias == "" {
		// Resolve the alias the same way the reformulator does.
		col, err := os.nq.ref.SourceColumn(m, ref)
		if err != nil {
			return "", nil, err
		}
		// Column is "<alias>.<rel>.<attr>"; recover the alias prefix.
		alias = col[:indexByte(col, '.')]
	}
	src, ok := m.SourceFor(target)
	if !ok {
		return "", nil, fmt.Errorf("%w: %s under mapping %s", query.ErrNotCovered, target, m.ID)
	}
	frag := u.fragmentOf(alias)
	if frag == nil {
		return "", nil, fmt.Errorf("o-sharing: no fragment for alias %q", alias)
	}
	if err := os.ensureIncluded(frag, alias, src.Relation); err != nil {
		return "", nil, err
	}
	return alias + "." + src.Relation + "." + src.Name, frag, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return len(s)
}

// mergeFragments materializes and products the given fragments into one.
func (os *osharer) mergeFragments(u *eUnit, frags []*fragment, m *schema.Mapping) (*fragment, error) {
	merged := &fragment{aliases: make(map[string]bool), included: make(map[string]map[string]bool)}
	for _, f := range frags {
		if f.rel == nil {
			// Materialize untouched single-alias fragments with their covering
			// source relations.
			for a := range f.aliases {
				if err := os.materializeAlias(f, a, m); err != nil {
					return nil, err
				}
			}
		}
		if merged.rel == nil {
			merged.rel = f.rel
		} else {
			prod, err := engine.Product(os.ec.Ctx(), merged.rel, f.rel, os.stats)
			if err != nil {
				return nil, err
			}
			merged.rel = prod
		}
		for a := range f.aliases {
			merged.aliases[a] = true
		}
		for a, rels := range f.included {
			if merged.included[a] == nil {
				merged.included[a] = make(map[string]bool)
			}
			for r := range rels {
				merged.included[a][r] = true
			}
		}
	}
	return merged, nil
}

// executeOp executes the chosen operator for one mapping partition and returns
// the child e-unit (Steps 15–21 of Algorithm 2).
func (os *osharer) executeOp(u *eUnit, op *targetOp, p *Partition) (*eUnit, error) {
	if p.Representative == nil {
		return nil, fmt.Errorf("o-sharing: partition without representative")
	}
	m := p.Representative
	child := u.clone()
	child.maps = p.Mappings
	child.done[op.id] = true

	switch op.kind {
	case opSelect:
		col, frag, err := os.sourceColumnIn(child, m, op.sel.Ref)
		if err != nil {
			return nil, err
		}
		out, err := engine.IndexedSelect(os.ec.Ctx(), frag.rel, &engine.ConstPredicate{Column: col, Op: op.sel.Op, Value: op.sel.Value}, os.stats, os.indexes)
		if err != nil {
			return nil, err
		}
		frag.rel = out
		return child, nil

	case opJoinSelect:
		leftCol, leftFrag, err := os.sourceColumnIn(child, m, op.jsel.Left)
		if err != nil {
			return nil, err
		}
		rightCol, rightFrag, err := os.sourceColumnIn(child, m, op.jsel.Right)
		if err != nil {
			return nil, err
		}
		if leftFrag != rightFrag {
			// The two operands live in different fragments: combine them.  For
			// an equality condition use a hash join instead of product+filter,
			// which is how the engine would rearrange the operator anyway.
			merged := &fragment{aliases: make(map[string]bool), included: make(map[string]map[string]bool)}
			for _, f := range []*fragment{leftFrag, rightFrag} {
				for a := range f.aliases {
					merged.aliases[a] = true
				}
				for a, rels := range f.included {
					merged.included[a] = rels
				}
			}
			var joined *engine.Relation
			if op.jsel.Op == engine.OpEq {
				joined, err = engine.IndexedHashJoin(os.ec.Ctx(), leftFrag.rel, rightFrag.rel, leftCol, rightCol, os.stats, os.indexes)
			} else {
				joined, err = engine.Product(os.ec.Ctx(), leftFrag.rel, rightFrag.rel, os.stats)
				if err == nil {
					joined, err = engine.Select(os.ec.Ctx(), joined, &engine.ColPredicate{Left: leftCol, Op: op.jsel.Op, Right: rightCol}, os.stats)
				}
			}
			if err != nil {
				return nil, err
			}
			merged.rel = joined
			child.replaceFragments([]*fragment{leftFrag, rightFrag}, merged)
			return child, nil
		}
		out, err := engine.Select(os.ec.Ctx(), leftFrag.rel, &engine.ColPredicate{Left: leftCol, Op: op.jsel.Op, Right: rightCol}, os.stats)
		if err != nil {
			return nil, err
		}
		leftFrag.rel = out
		return child, nil

	case opProduct:
		left := child.fragmentCovering(op.leftAliases)
		right := child.fragmentCovering(op.rightAliases)
		if left == nil || right == nil {
			return nil, fmt.Errorf("o-sharing: product operands not available")
		}
		if left == right {
			// Another operator (a join condition) already merged the operands.
			return child, nil
		}
		merged, err := os.mergeFragments(child, []*fragment{left, right}, m)
		if err != nil {
			return nil, err
		}
		child.replaceFragments([]*fragment{left, right}, merged)
		return child, nil

	case opFinal:
		// Merge whatever fragments remain into one relation.
		frags := append([]*fragment(nil), child.fragments...)
		merged, err := os.mergeFragments(child, frags, m)
		if err != nil {
			return nil, err
		}
		child.fragments = []*fragment{merged}
		switch final := op.final.(type) {
		case nil:
			return child, nil
		case *query.Project:
			cols := make([]string, len(final.Refs))
			for i, ref := range final.Refs {
				col, _, err := os.sourceColumnIn(child, m, ref)
				if err != nil {
					return nil, err
				}
				cols[i] = col
			}
			out, err := engine.Project(os.ec.Ctx(), merged.rel, cols, os.stats)
			if err != nil {
				return nil, err
			}
			merged.rel = out
			return child, nil
		case *query.Aggregate:
			col := ""
			if final.Func != engine.AggCount && !final.Ref.IsZero() {
				c, _, err := os.sourceColumnIn(child, m, final.Ref)
				if err != nil {
					return nil, err
				}
				col = c
			}
			out, err := engine.Aggregate(os.ec.Ctx(), merged.rel, final.Func, col, os.stats)
			if err != nil {
				return nil, err
			}
			merged.rel = out
			return child, nil
		default:
			return nil, fmt.Errorf("o-sharing: unsupported final operator %T", op.final)
		}
	default:
		return nil, fmt.Errorf("o-sharing: unknown operator kind %v", op.kind)
	}
}
