package core
