package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/mqo"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// EMQO evaluates the target query with the e-MQO baseline (Section III-B):
// like e-basic it first rewrites one source query per mapping and keeps the
// distinct ones, but before executing them it runs a multiple-query
// optimisation pass that builds a global plan in which every common
// subexpression is executed exactly once.
//
// The optimisation pass minimises the number of executed source operators, but
// constructing the global plan is expensive and grows super-linearly with the
// number of distinct source queries — the behaviour the paper reports in
// Figure 10(c), where e-MQO eventually becomes slower than basic.
func EMQO(q *query.Query, maps schema.MappingSet, db *engine.Instance) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodEMQO, Columns: OutputColumns(q), Stats: engine.NewStats()}
	ref := query.NewReformulator(q)
	agg := newAggregator()

	// Phase 1 (same as e-basic): rewrite every mapping, cluster identical
	// source queries.
	rewriteStart := time.Now()
	type cluster struct {
		plan engine.Plan
		prob float64
	}
	clusters := make(map[string]*cluster)
	var order []string
	for _, m := range maps {
		plan, err := ref.Reformulate(m)
		if err != nil {
			if errors.Is(err, query.ErrNotCovered) {
				agg.addEmpty(m.Prob)
				continue
			}
			return nil, fmt.Errorf("e-MQO: reformulating through %s: %w", m.ID, err)
		}
		plan = engine.Optimize(plan)
		res.RewrittenQueries++
		sig := plan.Signature()
		c, ok := clusters[sig]
		if !ok {
			c = &cluster{plan: plan}
			clusters[sig] = c
			order = append(order, sig)
		}
		c.prob += m.Prob
	}
	res.Partitions = len(order)

	// Phase 2: multiple-query optimisation over the distinct plans.  The
	// planning cost is part of the rewrite/plan phase timing.
	plans := make([]engine.Plan, 0, len(order))
	probs := make(map[string]float64, len(order))
	for _, sig := range order {
		plans = append(plans, clusters[sig].plan)
		probs[sig] = clusters[sig].prob
	}
	if len(plans) == 0 {
		res.Answers = agg.answers()
		res.EmptyProb = agg.emptyProb
		res.RewriteTime = time.Since(rewriteStart)
		res.TotalTime = time.Since(start)
		return res, nil
	}
	global, err := mqo.Optimize(plans)
	if err != nil {
		return nil, fmt.Errorf("e-MQO: %w", err)
	}
	res.RewriteTime = time.Since(rewriteStart)

	// Phase 3: execute the global plan with a shared-subexpression cache.
	execStart := time.Now()
	rels, err := global.Execute(db, res.Stats)
	if err != nil {
		return nil, fmt.Errorf("e-MQO: %w", err)
	}
	res.ExecTime = time.Since(execStart)
	res.ExecutedQueries = len(rels)

	aggStart := time.Now()
	for i, rel := range rels {
		agg.addRelation(rel, probs[global.Queries[i].Signature()])
	}
	res.Answers = agg.answers()
	res.EmptyProb = agg.emptyProb
	res.AggregateTime = time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return res, nil
}
