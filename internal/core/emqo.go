package core

import (
	"fmt"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/mqo"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// EMQO evaluates the target query with the e-MQO baseline (Section III-B):
// like e-basic it first rewrites one source query per mapping and keeps the
// distinct ones, but before executing them it runs a multiple-query
// optimisation pass that builds a global plan in which every common
// subexpression is executed exactly once.
//
// The optimisation pass minimises the number of executed source operators, but
// constructing the global plan is expensive and grows super-linearly with the
// number of distinct source queries — the behaviour the paper reports in
// Figure 10(c), where e-MQO eventually becomes slower than basic.
//
// The rewrite phase and the execution of the global plan's independent
// subtrees run on the runtime's worker pool; the shared-subexpression cache is
// concurrency-safe with singleflight semantics, so each common subexpression
// is still executed exactly once.
func EMQO(ec *exec.Context, q *query.Query, maps schema.MappingSet, db *engine.Instance) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodEMQO, Columns: OutputColumns(q), Stats: engine.NewStats()}
	agg := newAggregator()

	// Phase 1 (same as e-basic): rewrite every mapping, cluster identical
	// source queries.
	rewriteStart := time.Now()
	rawPlans, err := rewriteAll(ec, q, maps, "e-MQO")
	if err != nil {
		return nil, err
	}
	clusters, order, emptyProb, rewritten := clusterPlans(rawPlans, maps)
	agg.addEmpty(emptyProb)
	res.RewrittenQueries = rewritten
	res.Partitions = len(order)

	// Phase 2: multiple-query optimisation over the distinct plans.  The
	// planning cost is part of the rewrite/plan phase timing.
	plans := make([]engine.Plan, 0, len(order))
	probs := make(map[string]float64, len(order))
	for _, sig := range order {
		plans = append(plans, clusters[sig].plan)
		probs[sig] = clusters[sig].prob
	}
	if len(plans) == 0 {
		agg.finalize(res)
		res.RewriteTime = time.Since(rewriteStart)
		res.TotalTime = time.Since(start)
		return res, nil
	}
	global, err := mqo.Optimize(plans)
	if err != nil {
		return nil, fmt.Errorf("e-MQO: %w", err)
	}
	res.RewriteTime = time.Since(rewriteStart)

	// Phase 3: execute the global plan.
	if err := executeGlobal(ec, db, global, probs, res, agg); err != nil {
		return nil, err
	}
	agg.finalize(res)
	res.TotalTime = time.Since(start)
	return res, nil
}

// executeGlobal executes the MQO global plan on the worker pool with a fresh
// shared-subexpression cache and aggregates each query's answers under its
// cluster probability (e-MQO's phase 3, shared by the prepared re-execution
// path — ExecuteParallel builds a new cache per call, so re-executions repeat
// the exact same operator work).
func executeGlobal(ec *exec.Context, db *engine.Instance, global *mqo.Plan, probs map[string]float64, res *Result, agg *aggregator) error {
	execStart := time.Now()
	rels, err := global.ExecuteParallel(ec, db, res.Stats)
	if err != nil {
		return fmt.Errorf("e-MQO: %w", err)
	}
	res.ExecTime = time.Since(execStart)
	res.ExecutedQueries = len(rels)

	aggStart := time.Now()
	for i, rel := range rels {
		agg.addRelation(rel, probs[global.Queries[i].Signature()])
	}
	res.AggregateTime = time.Since(aggStart)
	return nil
}
