package core

import (
	"context"
	"errors"
	"testing"

	"github.com/probdb/urm/internal/engine"
)

// These tests pin the acceptance property of the shared base-relation index
// subsystem: every evaluation method (and top-k) produces bit-identical
// results — same answer tuples, same probabilities, same order, same
// empty-answer mass — with the index cache enabled and disabled, at any
// parallelism.

// indexEquivQueries covers the shapes the index accelerates (constant
// selections, conjunctions, joins over constant-filtered sides) and shapes it
// must leave alone (projections, aggregates, column comparisons).
var indexEquivQueries = []struct {
	name string
	text string
}{
	{"selection", "SELECT phone FROM Person WHERE addr = 'aaa'"},
	{"conjunction", "SELECT pname FROM Person WHERE addr = 'hk' AND phone = '123'"},
	{"projection", "SELECT pname, phone FROM Person"},
	{"join", "SELECT P.pname FROM Person P, Person Q WHERE P.phone = Q.phone AND Q.addr = 'aaa'"},
	{"aggregate", "SELECT COUNT(*) FROM Person WHERE addr = 'aaa'"},
	{"multi-relation", "SELECT total FROM Person, Order WHERE addr = 'hk' AND phone = '123'"},
}

// TestIndexedEvaluationBitIdentical evaluates every method over the paper
// fixture twice — shared indexes on and off — and requires bit-identical
// results at parallelism 1 and 8, plus identical answer row counts.
func TestIndexedEvaluationBitIdentical(t *testing.T) {
	maps := paperMappings()
	methods := []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing}
	for _, qc := range indexEquivQueries {
		q := mustParse(t, qc.name, qc.text)
		for _, m := range methods {
			for _, parallelism := range []int{1, 8} {
				indexed := paperInstance()
				plain := paperInstance()
				plain.SetIndexing(false)

				want, err := NewEvaluator(plain, maps).Evaluate(q, Options{Method: m, Parallelism: parallelism})
				if err != nil {
					t.Fatalf("%s/%s/p%d plain: %v", qc.name, m, parallelism, err)
				}
				got, err := NewEvaluator(indexed, maps).Evaluate(q, Options{Method: m, Parallelism: parallelism})
				if err != nil {
					t.Fatalf("%s/%s/p%d indexed: %v", qc.name, m, parallelism, err)
				}
				label := qc.name + "/" + m.String()
				identicalResults(t, label, want, got)
				if len(want.Answers) != len(got.Answers) {
					t.Errorf("%s: answer row counts differ: %d vs %d", label, len(got.Answers), len(want.Answers))
				}
			}
		}
	}
}

// TestIndexedTopKBitIdentical runs the probabilistic top-k algorithm with the
// index cache enabled and disabled and requires identical top-k answers.
func TestIndexedTopKBitIdentical(t *testing.T) {
	maps := paperMappings()
	for _, qc := range indexEquivQueries {
		q := mustParse(t, qc.name, qc.text)
		for _, k := range []int{1, 3} {
			indexed := paperInstance()
			plain := paperInstance()
			plain.SetIndexing(false)
			want, err := NewEvaluator(plain, maps).EvaluateTopK(q, k, Options{})
			if err != nil {
				t.Fatalf("%s k=%d plain: %v", qc.name, k, err)
			}
			got, err := NewEvaluator(indexed, maps).EvaluateTopK(q, k, Options{})
			if err != nil {
				t.Fatalf("%s k=%d indexed: %v", qc.name, k, err)
			}
			identicalResults(t, qc.name, want, got)
		}
	}
}

// TestIndexedEvaluationCancelledMidBuild cancels an evaluation while the first
// index build is in flight: the run must surface the context error, the
// aborted build must not poison the per-instance cache, and a subsequent run
// with a live context must produce answers identical to a non-indexed run.
func TestIndexedEvaluationCancelledMidBuild(t *testing.T) {
	db := engine.NewInstance("big")
	rel := engine.NewRelation("Customer", []string{"cid", "cname", "ophone", "hphone", "mobile", "oaddr", "haddr", "nid"})
	for i := 0; i < 50000; i++ {
		addr := "hk"
		if i%17 == 0 {
			addr = "aaa"
		}
		rel.MustAppend(engine.Tuple{
			engine.I(int64(i)), engine.S("n"), engine.S("123"), engine.S("789"),
			engine.S("555"), engine.S(addr), engine.S("hk"), engine.I(1),
		})
	}
	db.AddRelation(rel)
	ord := engine.NewRelation("C_Order", []string{"oid", "cid", "amount"})
	ord.MustAppend(engine.Tuple{engine.I(1), engine.I(1), engine.F(10)})
	db.AddRelation(ord)
	nat := engine.NewRelation("Nation", []string{"nid", "name"})
	nat.MustAppend(engine.Tuple{engine.I(1), engine.S("HK")})
	db.AddRelation(nat)

	maps := paperMappings()
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{MethodBasic, MethodOSharing} {
		if _, err := NewEvaluator(db, maps).EvaluateContext(ctx, q, Options{Method: m, Parallelism: 4}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", m, err)
		}
	}
	if n := db.Indexes().Len(); n != 0 {
		t.Fatalf("aborted builds left %d cached indexes, want 0", n)
	}

	// A live context must rebuild and agree with the non-indexed evaluation.
	got, err := NewEvaluator(db, maps).Evaluate(q, Options{Method: MethodBasic, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	db.SetIndexing(false)
	want, err := NewEvaluator(db, maps).Evaluate(q, Options{Method: MethodBasic, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	db.SetIndexing(true)
	identicalResults(t, "post-cancellation", want, got)
	if got.Stats.IndexLookups() == 0 {
		t.Error("indexed run after cancellation recorded no index lookups")
	}
}
