package core

import (
	"math"
	"strings"
	"testing"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// TestBasicPaperExample reproduces the worked example of Section III-B:
// π_phone σ_addr='aaa' Person over the Figure 3 mappings and the Figure 2
// instance yields (123, 0.5), (456, 0.8), (789, 0.2).
func TestBasicPaperExample(t *testing.T) {
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	res, err := Basic(exec.Sequential(), q, paperMappings(), paperInstance())
	if err != nil {
		t.Fatal(err)
	}
	got := answersByValue(res)
	want := map[string]float64{"123": 0.5, "456": 0.8, "789": 0.2}
	if len(got) != len(want) {
		t.Fatalf("answers = %v, want %v", got, want)
	}
	for k, p := range want {
		if !approxEqual(got[k], p) {
			t.Errorf("answer %q prob = %g, want %g", k, got[k], p)
		}
	}
	if res.ExecutedQueries != 5 || res.RewrittenQueries != 5 {
		t.Errorf("basic executed/rewrote %d/%d queries, want 5/5", res.ExecutedQueries, res.RewrittenQueries)
	}
	// Answers come sorted by descending probability.
	if res.Answers[0].Prob < res.Answers[len(res.Answers)-1].Prob {
		t.Error("answers not sorted by probability")
	}
	if !approxEqual(res.TopK(1)[0].Prob, 0.8) {
		t.Errorf("top-1 prob = %g, want 0.8", res.TopK(1)[0].Prob)
	}
	if got := res.Lookup(engine.Tuple{engine.S("123")}); !approxEqual(got, 0.5) {
		t.Errorf("Lookup(123) = %g, want 0.5", got)
	}
	if got := res.Lookup(engine.Tuple{engine.S("zzz")}); got != 0 {
		t.Errorf("Lookup(zzz) = %g, want 0", got)
	}
	if !strings.Contains(res.String(), "basic") {
		t.Errorf("result String = %q", res.String())
	}
}

// TestQ0PaperExample checks the introduction's example: π_addr σ_phone='123'
// Person yields {(aaa, 0.5), (hk, 0.5)} — using only mappings that cover both
// attributes (m1..m4 plus m5).
func TestQ0PaperExample(t *testing.T) {
	q := mustParse(t, "q0", "SELECT addr FROM Person WHERE phone = '123'")
	res, err := Basic(exec.Sequential(), q, paperMappings(), paperInstance())
	if err != nil {
		t.Fatal(err)
	}
	got := answersByValue(res)
	// m1, m2 (prob 0.5): ophone=123 -> Alice -> oaddr aaa.
	// m3, m5 (prob 0.3): ophone=123 -> Alice -> haddr hk.
	// m4 (prob 0.2): hphone=123 -> Bob -> haddr hk.
	want := map[string]float64{"aaa": 0.5, "hk": 0.5}
	for k, p := range want {
		if !approxEqual(got[k], p) {
			t.Errorf("answer %q prob = %g, want %g", k, got[k], p)
		}
	}
}

// TestEBasicClustersDistinctQueries verifies that e-basic executes one source
// query per distinct reformulation but returns the same answers as basic.
func TestEBasicClustersDistinctQueries(t *testing.T) {
	q := mustParse(t, "q1", "SELECT pname FROM Person WHERE addr = 'abc'")
	maps := paperMappings()
	db := paperInstance()

	basic, err := Basic(exec.Sequential(), q, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	ebasic, err := EBasic(exec.Sequential(), q, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswers(t, basic, ebasic, "e-basic vs basic")
	// The paper's q1 example: partitions are {m1,m2}, {m3,m4}, {m5}; m5 does
	// not map pname so it cannot answer, leaving 2 distinct source queries.
	if ebasic.ExecutedQueries != 2 {
		t.Errorf("e-basic executed %d distinct queries, want 2", ebasic.ExecutedQueries)
	}
	if ebasic.RewrittenQueries >= basic.RewrittenQueries && basic.RewrittenQueries != 4 {
		t.Errorf("rewrites: basic %d, e-basic %d", basic.RewrittenQueries, ebasic.RewrittenQueries)
	}
	if ebasic.Stats.TotalOperators() >= basic.Stats.TotalOperators() {
		t.Errorf("e-basic should execute fewer operators: %d vs %d",
			ebasic.Stats.TotalOperators(), basic.Stats.TotalOperators())
	}
}

// TestPartitionTreeFigure4 reproduces the partition of the q1 example
// (Section IV): P1 = {m1, m2}, P2 = {m3, m4}, P3 = {m5}.
func TestPartitionTreeFigure4(t *testing.T) {
	q := mustParse(t, "q1", "SELECT pname FROM Person WHERE addr = 'abc'")
	maps := paperMappings()
	parts, err := PartitionMappings(q, maps)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(parts))
	}
	byLen := map[int]int{}
	var probs []float64
	for _, p := range parts {
		byLen[len(p.Mappings)]++
		probs = append(probs, p.Prob)
	}
	if byLen[2] != 2 || byLen[1] != 1 {
		t.Errorf("partition sizes wrong: %v", byLen)
	}
	total := 0.0
	for _, p := range probs {
		total += p
	}
	if !approxEqual(total, 1) {
		t.Errorf("partition probabilities sum to %g, want 1", total)
	}
	// The partition containing m1 must have probability 0.5 and representative
	// m1 (first inserted).
	for _, p := range parts {
		for _, m := range p.Mappings {
			if m.ID == "m1" {
				if !approxEqual(p.Prob, 0.5) {
					t.Errorf("partition of m1 has prob %g, want 0.5", p.Prob)
				}
				if p.Representative.ID != "m1" {
					t.Errorf("representative = %s, want m1", p.Representative.ID)
				}
			}
		}
	}
	// Tree introspection.
	attrs, _ := q.TargetAttributes()
	tree := NewPartitionTree(attrs)
	for _, m := range maps {
		tree.Insert(m)
	}
	if tree.Depth() != 2 {
		t.Errorf("tree depth = %d, want 2 (pname, addr)", tree.Depth())
	}
	if tree.NumPartitions() != 3 {
		t.Errorf("tree partitions = %d, want 3", tree.NumPartitions())
	}
	sizes := partitionSizes(tree.Partitions())
	if sizes[0] != 2 || sizes[2] != 1 {
		t.Errorf("partition sizes = %v", sizes)
	}
	// Keys follow the tree path labels.
	for _, p := range tree.Partitions() {
		if !strings.Contains(p.Key, "Customer.") && !strings.Contains(p.Key, noCorrespondence) {
			t.Errorf("partition key %q does not carry edge labels", p.Key)
		}
	}
}

// TestQSharingMatchesBasic verifies Algorithm 1 end to end on several queries.
func TestQSharingMatchesBasic(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	queries := []string{
		"SELECT phone FROM Person WHERE addr = 'aaa'",
		"SELECT pname FROM Person WHERE addr = 'abc'",
		"SELECT addr FROM Person WHERE phone = '123'",
		"SELECT COUNT(*) FROM Person WHERE addr = 'hk' AND phone = '123'",
		"SELECT nation FROM Person WHERE phone = '456'",
	}
	for _, text := range queries {
		q := mustParse(t, "q", text)
		want, err := Basic(exec.Sequential(), q, maps, db)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		got, err := QSharing(exec.Sequential(), q, maps, db)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		sameAnswers(t, want, got, "q-sharing "+text)
		if got.RewrittenQueries > len(maps) {
			t.Errorf("%s: q-sharing rewrote %d queries (more than h)", text, got.RewrittenQueries)
		}
		if got.Partitions == 0 || got.Partitions > len(maps) {
			t.Errorf("%s: q-sharing partitions = %d", text, got.Partitions)
		}
	}
}

// TestEMQOMatchesBasic verifies the e-MQO baseline agrees with basic while
// executing no more operators than e-basic.
func TestEMQOMatchesBasic(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	want, err := Basic(exec.Sequential(), q, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	emqo, err := EMQO(exec.Sequential(), q, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswers(t, want, emqo, "e-MQO vs basic")
	ebasic, err := EBasic(exec.Sequential(), q, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	if emqo.Stats.TotalOperators() > ebasic.Stats.TotalOperators() {
		t.Errorf("e-MQO executed %d operators, e-basic %d; MQO should not execute more",
			emqo.Stats.TotalOperators(), ebasic.Stats.TotalOperators())
	}
}

// TestOSharingMatchesBasic is the central consistency check: o-sharing (all
// strategies) must produce exactly the answers of basic for a range of query
// shapes, while executing fewer source operators than basic.
func TestOSharingMatchesBasic(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	queries := []string{
		"SELECT phone FROM Person WHERE addr = 'aaa'",
		"SELECT pname FROM Person WHERE addr = 'abc'",
		"SELECT addr FROM Person WHERE phone = '123'",
		"SELECT pname FROM Person WHERE addr = 'hk' AND phone = '123'",
		"SELECT COUNT(*) FROM Person WHERE addr = 'hk' AND phone = '123'",
		"SELECT nation FROM Person WHERE phone = '456' AND addr = 'aaa'",
		"SELECT total FROM Person, Order WHERE addr = 'hk' AND phone = '123'",
		"SELECT SUM(total) FROM Person, Order WHERE addr = 'aaa'",
		"SELECT P1.phone FROM Person P1, Person P2 WHERE P1.addr = P2.addr AND P2.phone = '789'",
	}
	for _, text := range queries {
		q := mustParse(t, "q", text)
		want, err := Basic(exec.Sequential(), q, maps, db)
		if err != nil {
			t.Fatalf("%s: basic: %v", text, err)
		}
		for _, strat := range []Strategy{StrategySEF, StrategySNF, StrategyRandom} {
			got, err := OSharing(exec.Sequential(), q, maps, db, OSharingOptions{Strategy: strat, RandomSeed: 7})
			if err != nil {
				t.Fatalf("%s (%v): %v", text, strat, err)
			}
			sameAnswers(t, want, got, "o-sharing/"+strat.String()+" "+text)
		}
	}
}

// TestOSharingSharesOperators checks the headline property: for a query whose
// mappings agree on a selective operator, o-sharing executes fewer selection
// operators than one per mapping.
func TestOSharingSharesOperators(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	// phone is shared by m1, m2, m3, m5 (ophone); addr splits the mappings.
	q := mustParse(t, "q", "SELECT pname FROM Person WHERE phone = '123' AND addr = 'hk'")
	basicRes, err := Basic(exec.Sequential(), q, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	osRes, err := OSharing(exec.Sequential(), q, maps, db, OSharingOptions{Strategy: StrategySEF})
	if err != nil {
		t.Fatal(err)
	}
	if osRes.Stats.Count(engine.OpKindSelect) >= basicRes.Stats.Count(engine.OpKindSelect) {
		t.Errorf("o-sharing ran %d selects, basic ran %d; expected sharing",
			osRes.Stats.Count(engine.OpKindSelect), basicRes.Stats.Count(engine.OpKindSelect))
	}
	sameAnswers(t, basicRes, osRes, "o-sharing sharing check")
}

// TestEntropyFigure7 checks Definition 1 against the paper's Figure 7 numbers:
// partitions of 40/30/30 percent have entropy 1.57; partitions of
// 10/70/10/10 percent have entropy 1.36 (both to two decimals the paper
// rounds to 1.53 and 1.36).
func TestEntropyFigure7(t *testing.T) {
	mk := func(sizes ...int) []*Partition {
		var parts []*Partition
		for _, s := range sizes {
			p := &Partition{}
			for i := 0; i < s; i++ {
				p.Mappings = append(p.Mappings, schema.MustNewMapping("x", nil, 0))
			}
			parts = append(parts, p)
		}
		return parts
	}
	e1 := Entropy(mk(4, 3, 3), 10)
	if math.Abs(e1-1.571) > 0.01 {
		t.Errorf("entropy(40/30/30) = %g, want ~1.57", e1)
	}
	e2 := Entropy(mk(1, 7, 1, 1), 10)
	if math.Abs(e2-1.357) > 0.01 {
		t.Errorf("entropy(10/70/10/10) = %g, want ~1.36", e2)
	}
	if e2 >= e1 {
		t.Error("SEF should prefer the 70-percent-concentrated operator (lower entropy)")
	}
	if Entropy(nil, 0) != 0 {
		t.Error("entropy of empty set should be 0")
	}
	if Entropy(mk(5), 5) != 0 {
		t.Error("entropy of a single partition should be 0")
	}
}

// TestStrategySelection verifies SEF and SNF disagree in the Figure 7
// situation: SNF picks the 3-partition operator, SEF the 4-partition one with
// the concentrated 70% group.
func TestStrategySelection(t *testing.T) {
	// Build 10 mappings over two independent target attributes a (op1) and b
	// (op2).  a has 3 source alternatives split 4/3/3; b has 4 alternatives
	// split 1/7/1/1.
	aAlt := []string{"s1", "s2", "s2", "s2", "s3", "s3", "s3", "s1", "s1", "s1"}
	bAlt := []string{"t1", "t2", "t2", "t2", "t2", "t2", "t2", "t2", "t3", "t4"}
	var maps schema.MappingSet
	for i := 0; i < 10; i++ {
		m := schema.MustNewMapping(
			"m"+string(rune('0'+i)),
			[]schema.Correspondence{
				{Source: attr("S", aAlt[i]), Target: attr("T", "a"), Score: 0.5},
				{Source: attr("S", bAlt[i]), Target: attr("T", "b"), Score: 0.5},
			}, 0.1)
		maps = append(maps, m)
	}
	partsA := PartitionByAttributes([]schema.Attribute{attr("T", "a")}, maps)
	partsB := PartitionByAttributes([]schema.Attribute{attr("T", "b")}, maps)
	if len(partsA) != 3 || len(partsB) != 4 {
		t.Fatalf("partition counts = %d,%d; want 3,4", len(partsA), len(partsB))
	}
	eA := Entropy(partsA, 10)
	eB := Entropy(partsB, 10)
	if !(eB < eA) {
		t.Errorf("entropy: a=%g b=%g; SEF should prefer b", eA, eB)
	}
}

// TestOSharingEmptyIntermediatePruning checks Case 2: when the shared operator
// yields an empty relation the whole partition is answered at once, so fewer
// operators run than under e-basic.
func TestOSharingEmptyIntermediatePruning(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	// No customer has oaddr or haddr equal to 'nowhere': every branch dies at
	// the first selection.
	q := mustParse(t, "q", "SELECT pname FROM Person WHERE addr = 'nowhere' AND phone = '123'")
	res, err := OSharing(exec.Sequential(), q, maps, db, OSharingOptions{Strategy: StrategySEF})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("expected no answers, got %v", res.Answers)
	}
	if !approxEqual(res.EmptyProb, 1) {
		t.Errorf("empty prob = %g, want 1", res.EmptyProb)
	}
	basicRes, err := Basic(exec.Sequential(), q, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalOperators() >= basicRes.Stats.TotalOperators() {
		t.Errorf("pruning should save operators: o-sharing %d, basic %d",
			res.Stats.TotalOperators(), basicRes.Stats.TotalOperators())
	}
	// A COUNT query over an empty intermediate still returns 0 as an answer.
	qc := mustParse(t, "qc", "SELECT COUNT(*) FROM Person WHERE addr = 'nowhere'")
	resc, err := OSharing(exec.Sequential(), qc, maps, db, OSharingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantc, err := Basic(exec.Sequential(), qc, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswers(t, wantc, resc, "count over empty intermediate")
}

// TestNotCoveredMappings verifies that mappings lacking correspondences for
// the query contribute their probability to the empty answer consistently in
// every method.
func TestNotCoveredMappings(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	// gender is mapped by no mapping: no mapping can answer.
	q := mustParse(t, "q", "SELECT gender FROM Person WHERE addr = 'aaa'")
	for name, fn := range map[string]func() (*Result, error){
		"basic":     func() (*Result, error) { return Basic(exec.Sequential(), q, maps, db) },
		"e-basic":   func() (*Result, error) { return EBasic(exec.Sequential(), q, maps, db) },
		"e-MQO":     func() (*Result, error) { return EMQO(exec.Sequential(), q, maps, db) },
		"q-sharing": func() (*Result, error) { return QSharing(exec.Sequential(), q, maps, db) },
		"o-sharing": func() (*Result, error) { return OSharing(exec.Sequential(), q, maps, db, OSharingOptions{}) },
	} {
		res, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Answers) != 0 {
			t.Errorf("%s: expected no answers, got %v", name, res.Answers)
		}
		if !approxEqual(res.EmptyProb, 1) {
			t.Errorf("%s: empty prob = %g, want 1", name, res.EmptyProb)
		}
	}
	// pname is not covered only by m5 (probability 0.1).
	q2 := mustParse(t, "q2", "SELECT pname FROM Person WHERE addr = 'aaa'")
	res, err := OSharing(exec.Sequential(), q2, maps, db, OSharingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	basicRes, err := Basic(exec.Sequential(), q2, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswers(t, basicRes, res, "partial coverage")
}

// TestEvaluatorDispatch exercises the Evaluator facade and method parsing.
func TestEvaluatorDispatch(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	ev := NewEvaluator(db, maps)
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	want, err := Basic(exec.Sequential(), q, maps, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing} {
		res, err := ev.Evaluate(q, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		sameAnswers(t, want, res, m.String())
		if res.Method != m {
			t.Errorf("result method = %v, want %v", res.Method, m)
		}
	}
	if _, err := ev.Evaluate(q, Options{Method: Method(42)}); err == nil {
		t.Error("unknown method should error")
	}
	if _, err := ev.Evaluate(nil, Options{}); err == nil {
		t.Error("nil query should error")
	}
	// Parsers.
	for _, name := range []string{"basic", "e-basic", "e-mqo", "q-sharing", "o-sharing"} {
		if _, err := ParseMethod(name); err != nil {
			t.Errorf("ParseMethod(%q): %v", name, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("ParseMethod(nope) should error")
	}
	for _, name := range []string{"SEF", "SNF", "Random"} {
		if _, err := ParseStrategy(name); err != nil {
			t.Errorf("ParseStrategy(%q): %v", name, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("ParseStrategy(nope) should error")
	}
	for _, m := range []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing, MethodTopK, Method(42)} {
		if m.String() == "" {
			t.Errorf("method %d renders empty", m)
		}
	}
	for _, s := range []Strategy{StrategySEF, StrategySNF, StrategyRandom, Strategy(42)} {
		if s.String() == "" {
			t.Errorf("strategy %d renders empty", s)
		}
	}
}

// TestTopKPaperExample reproduces the top-1 evaluation of Section VII/Table II:
// the top answer is found without visiting every e-unit.
func TestTopKPaperExample(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")

	full, err := OSharing(exec.Sequential(), q, maps, db, OSharingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	top1, err := TopK(exec.Sequential(), q, maps, db, 1, OSharingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(top1.Answers) != 1 {
		t.Fatalf("top-1 returned %d answers", len(top1.Answers))
	}
	// The true top answer is 456 with probability 0.8; the top-k algorithm
	// reports a lower bound that can be below the exact value but must
	// identify the same tuple.
	if top1.Answers[0].Tuple[0].Str != full.Answers[0].Tuple[0].Str {
		t.Errorf("top-1 tuple = %v, want %v", top1.Answers[0].Tuple, full.Answers[0].Tuple)
	}
	if top1.Answers[0].Prob > full.Answers[0].Prob+1e-9 {
		t.Errorf("top-1 lower bound %g exceeds exact %g", top1.Answers[0].Prob, full.Answers[0].Prob)
	}
	if top1.Method != MethodTopK {
		t.Errorf("method = %v, want top-k", top1.Method)
	}
}

// TestTopKMatchesOSharingOrdering verifies that for every k the top-k answer
// set equals the k most probable answers of the full evaluation.
func TestTopKMatchesOSharingOrdering(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	queries := []string{
		"SELECT phone FROM Person WHERE addr = 'aaa'",
		"SELECT addr FROM Person WHERE phone = '123'",
		"SELECT pname FROM Person WHERE addr = 'hk' AND phone = '123'",
		"SELECT total FROM Person, Order WHERE addr = 'hk' AND phone = '123'",
	}
	for _, text := range queries {
		q := mustParse(t, "q", text)
		full, err := OSharing(exec.Sequential(), q, maps, db, OSharingOptions{})
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		for k := 1; k <= len(full.Answers)+1; k++ {
			topk, err := TopK(exec.Sequential(), q, maps, db, k, OSharingOptions{})
			if err != nil {
				t.Fatalf("%s k=%d: %v", text, k, err)
			}
			wantLen := k
			if wantLen > len(full.Answers) {
				wantLen = len(full.Answers)
			}
			if len(topk.Answers) != wantLen {
				t.Errorf("%s k=%d: got %d answers, want %d", text, k, len(topk.Answers), wantLen)
				continue
			}
			// The returned tuple set must be a valid top-k set: every returned
			// tuple's exact probability must be >= the (k+1)-th exact
			// probability.
			threshold := 0.0
			if wantLen < len(full.Answers) {
				threshold = full.Answers[wantLen].Prob
			}
			for _, a := range topk.Answers {
				exact := full.Lookup(a.Tuple)
				if exact+1e-9 < threshold {
					t.Errorf("%s k=%d: returned tuple %v with exact prob %g below threshold %g",
						text, k, a.Tuple, exact, threshold)
				}
				if a.Prob > exact+1e-9 {
					t.Errorf("%s k=%d: reported bound %g exceeds exact %g", text, k, a.Prob, exact)
				}
			}
		}
	}
}

// TestTopKEarlyTermination checks that small k values explore less of the
// u-trace (fewer executed operators) than the full o-sharing run.
func TestTopKEarlyTermination(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	q := mustParse(t, "q", "SELECT addr FROM Person WHERE phone = '123'")
	full, err := OSharing(exec.Sequential(), q, maps, db, OSharingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	top1, err := TopK(exec.Sequential(), q, maps, db, 1, OSharingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if top1.Stats.TotalOperators() > full.Stats.TotalOperators() {
		t.Errorf("top-1 executed %d operators, full o-sharing %d",
			top1.Stats.TotalOperators(), full.Stats.TotalOperators())
	}
	if _, err := TopK(exec.Sequential(), q, maps, db, 0, OSharingOptions{}); err == nil {
		t.Error("k=0 should error")
	}
}

// TestValidateInputs exercises the shared argument validation.
func TestValidateInputs(t *testing.T) {
	maps := paperMappings()
	db := paperInstance()
	q := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	if err := validateInputs(q, maps, nil); err == nil {
		t.Error("nil instance should error")
	}
	if err := validateInputs(q, nil, db); err == nil {
		t.Error("empty mapping set should error")
	}
	bad := schema.MappingSet{schema.MustNewMapping("m1", nil, 0.4)}
	if err := validateInputs(q, bad, db); err == nil {
		t.Error("invalid probabilities should error")
	}
	badQuery := &query.Query{Name: "bad", Target: paperTargetSchema(), Root: &query.Scan{Relation: "NoSuch"}}
	if err := validateInputs(badQuery, maps, db); err == nil {
		t.Error("invalid query should error")
	}
}

// TestOutputColumns covers answer column labelling.
func TestOutputColumns(t *testing.T) {
	q := mustParse(t, "q", "SELECT pname, addr FROM Person WHERE phone = '1'")
	cols := OutputColumns(q)
	if len(cols) != 2 || cols[0] != "pname" {
		t.Errorf("columns = %v", cols)
	}
	qa := mustParse(t, "qa", "SELECT COUNT(*) FROM Person WHERE phone = '1'")
	if cols := OutputColumns(qa); len(cols) != 1 || cols[0] != "COUNT" {
		t.Errorf("aggregate columns = %v", cols)
	}
	qs := mustParse(t, "qs", "SELECT SUM(total) FROM Order WHERE status = 'x'")
	if cols := OutputColumns(qs); len(cols) != 1 || !strings.Contains(cols[0], "SUM") {
		t.Errorf("sum columns = %v", cols)
	}
	qn := mustParse(t, "qn", "SELECT * FROM Person WHERE phone = '1'")
	if cols := OutputColumns(qn); cols != nil {
		t.Errorf("SELECT * columns = %v, want nil", cols)
	}
}

// TestAggregatorDuplicateRowsWithinMapping ensures duplicate rows produced by a
// single mapping are counted once (the paper aggregates distinct answers).
func TestAggregatorDuplicateRowsWithinMapping(t *testing.T) {
	agg := newAggregator()
	rel := engine.NewRelation("R", []string{"v"})
	rel.MustAppend(engine.Tuple{engine.S("x")})
	rel.MustAppend(engine.Tuple{engine.S("x")})
	agg.addRelation(rel, 0.5)
	answers := agg.answers()
	if len(answers) != 1 || !approxEqual(answers[0].Prob, 0.5) {
		t.Errorf("answers = %v, want single x@0.5", answers)
	}
	agg.addRelation(engine.NewRelation("E", []string{"v"}), 0.25)
	if !approxEqual(agg.emptyProb, 0.25) {
		t.Errorf("empty prob = %g", agg.emptyProb)
	}
}

// TestOSharingUnsupportedShape checks the explicit error for queries o-sharing
// does not handle (nested projection).
func TestOSharingUnsupportedShape(t *testing.T) {
	tgt := paperTargetSchema()
	inner := &query.Project{Refs: []query.AttrRef{query.Ref("Person", "phone")}, Child: &query.Scan{Relation: "Person"}}
	q := &query.Query{Name: "nested", Target: tgt, Root: &query.Select{
		Ref: query.Ref("Person", "phone"), Op: engine.OpEq, Value: engine.S("123"), Child: inner,
	}}
	if err := q.Validate(); err != nil {
		t.Fatalf("fixture query invalid: %v", err)
	}
	if _, err := OSharing(exec.Sequential(), q, paperMappings(), paperInstance(), OSharingOptions{}); err == nil {
		t.Error("nested projection should be rejected by o-sharing")
	}
	// The basic method still evaluates it.
	if _, err := Basic(exec.Sequential(), q, paperMappings(), paperInstance()); err != nil {
		t.Errorf("basic should handle nested projection: %v", err)
	}
}
