package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
)

// deltaRNG is a tiny splitmix64 so the append stream is seeded and identical
// across runs and parallelism levels.
type deltaRNG struct{ s uint64 }

func (r *deltaRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *deltaRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *deltaRNG) pick(opts []string) string { return opts[r.intn(len(opts))] }

// deltaAppend is one step of the stream: a row for one source relation.
type deltaAppend struct {
	rel string
	row engine.Tuple
}

// deltaAppendStream builds a seeded stream of n appends over the paper
// fixture's three source relations.  Values are drawn from small pools that
// include the workload's predicate constants ('aaa', 'hk', '123', '456'), so
// many appended rows actually join and select into the maintained answers.
func deltaAppendStream(seed uint64, n int) []deltaAppend {
	r := &deltaRNG{s: seed}
	phones := []string{"123", "456", "789", "555", "998"}
	addrs := []string{"aaa", "bbb", "hk", "ccc"}
	out := make([]deltaAppend, 0, n)
	for i := 0; i < n; i++ {
		switch r.intn(10) {
		case 0, 1, 2, 3, 4: // half the stream grows Customer
			out = append(out, deltaAppend{rel: "Customer", row: engine.Tuple{
				engine.I(int64(100 + i)),
				engine.S(r.pick([]string{"Dan", "Eve", "Fay", "Alice"})),
				engine.S(r.pick(phones)),
				engine.S(r.pick(phones)),
				engine.S(r.pick(phones)),
				engine.S(r.pick(addrs)),
				engine.S(r.pick(addrs)),
				engine.I(int64(r.intn(2) + 1)),
			}})
		case 5, 6, 7, 8:
			out = append(out, deltaAppend{rel: "C_Order", row: engine.Tuple{
				engine.I(int64(100 + i)),
				engine.I(int64(r.intn(6) + 1)),
				engine.F(float64(r.intn(400)) + 0.5),
			}})
		default:
			out = append(out, deltaAppend{rel: "Nation", row: engine.Tuple{
				engine.I(int64(r.intn(3) + 1)),
				engine.S(r.pick([]string{"HK", "CN", "JP"})),
			}})
		}
	}
	return out
}

// requireBitIdentical asserts got is a bit-for-bit replay of want: the same
// answer tuples in the same canonical order, with probabilities equal as
// IEEE-754 bit patterns, and identical empty-answer probability bits.  This is
// the maintenance contract — approximate equality would hide accumulation-
// order drift.
func requireBitIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.Answers) != len(got.Answers) {
		t.Fatalf("%s: %d answers, want %d", label, len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		wa, ga := want.Answers[i], got.Answers[i]
		if len(wa.Tuple) != len(ga.Tuple) {
			t.Fatalf("%s: answer %d arity %d, want %d", label, i, len(ga.Tuple), len(wa.Tuple))
		}
		for j := range wa.Tuple {
			if !wa.Tuple[j].Equal(ga.Tuple[j]) {
				t.Fatalf("%s: answer %d value %d = %v, want %v", label, i, j, ga.Tuple[j], wa.Tuple[j])
			}
		}
		if math.Float64bits(wa.Prob) != math.Float64bits(ga.Prob) {
			t.Fatalf("%s: answer %d prob bits %x, want %x (%v vs %v)", label, i,
				math.Float64bits(ga.Prob), math.Float64bits(wa.Prob), ga.Prob, wa.Prob)
		}
	}
	if math.Float64bits(want.EmptyProb) != math.Float64bits(got.EmptyProb) {
		t.Fatalf("%s: empty prob %v, want %v", label, got.EmptyProb, want.EmptyProb)
	}
}

// TestDeltaMaintainedBitIdentical is the maintenance property test: after
// every prefix of a seeded 100-append stream, the delta-maintained answer must
// be bit-identical to a cold re-evaluation of the same method over the same
// instance state — for every maintainable method, at parallelism 1 and 8.
func TestDeltaMaintainedBitIdentical(t *testing.T) {
	queries := []string{
		"SELECT phone FROM Person WHERE addr = 'aaa'",
		"SELECT total FROM Person, Order WHERE addr = 'hk' AND phone = '123'",
	}
	methods := []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing}
	stream := deltaAppendStream(7, 100)
	for _, par := range []int{1, 8} {
		for _, method := range methods {
			for qi, text := range queries {
				t.Run(fmt.Sprintf("p%d/%s/q%d", par, method, qi), func(t *testing.T) {
					db := paperInstance()
					maps := paperMappings()
					q := mustParse(t, "q", text)
					opts := Options{Method: method, Parallelism: par}
					prep, err := NewEvaluator(db, maps).Prepare(q)
					if err != nil {
						t.Fatalf("prepare: %v", err)
					}
					ec := exec.NewContext(context.Background(), par)
					dp, err := PrepareDelta(prep, ec, opts)
					if err != nil {
						t.Fatalf("PrepareDelta: %v", err)
					}
					st, err := dp.EvaluateFull(ec, db)
					if err != nil {
						t.Fatalf("EvaluateFull: %v", err)
					}
					cold, err := NewEvaluator(db, maps).Evaluate(q, opts)
					if err != nil {
						t.Fatalf("cold: %v", err)
					}
					requireBitIdentical(t, "initial", cold, st.Result())
					for i, app := range stream {
						rel := db.Relation(app.rel)
						rel.MustAppend(app.row)
						if _, err := st.ApplyDelta(ec, db); err != nil {
							t.Fatalf("append %d: ApplyDelta: %v", i, err)
						}
						cold, err := NewEvaluator(db, maps).Evaluate(q, opts)
						if err != nil {
							t.Fatalf("append %d: cold: %v", i, err)
						}
						requireBitIdentical(t, fmt.Sprintf("append %d", i), cold, st.Result())
					}
					if st.Passes() == 0 {
						t.Fatalf("no delta passes ran over a 100-append stream")
					}
				})
			}
		}
	}
}

// TestDeltaCoalescedBursts pins that one ApplyDelta folding a burst of appends
// is identical to applying them one at a time — the reconciler's coalescing
// rests on it.
func TestDeltaCoalescedBursts(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	q := mustParse(t, "q", "SELECT total FROM Person, Order WHERE addr = 'hk' AND phone = '123'")
	opts := Options{Method: MethodEBasic, Parallelism: 2}
	prep, err := NewEvaluator(db, maps).Prepare(q)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	ec := exec.NewContext(context.Background(), 2)
	dp, err := PrepareDelta(prep, ec, opts)
	if err != nil {
		t.Fatalf("PrepareDelta: %v", err)
	}
	st, err := dp.EvaluateFull(ec, db)
	if err != nil {
		t.Fatalf("EvaluateFull: %v", err)
	}
	for _, app := range deltaAppendStream(11, 60) {
		db.Relation(app.rel).MustAppend(app.row)
	}
	if _, err := st.ApplyDelta(ec, db); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	cold, err := NewEvaluator(db, maps).Evaluate(q, opts)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	requireBitIdentical(t, "burst", cold, st.Result())
	// A pass over an unchanged instance is a no-op.
	passes, err := st.ApplyDelta(ec, db)
	if err != nil {
		t.Fatalf("idle ApplyDelta: %v", err)
	}
	if passes != 0 {
		t.Fatalf("idle ApplyDelta ran %d passes, want 0", passes)
	}
}

// TestDeltaNotMaintainable pins the fallback matrix: o-sharing, top-k-only
// shapes and non-SPJ queries (aggregates, DISTINCT) must refuse delta
// preparation with ErrNotDeltaMaintainable, and a shrunk relation must fail
// ApplyDelta rather than corrupt the state.
func TestDeltaNotMaintainable(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	ec := exec.NewContext(context.Background(), 1)

	osq := mustParse(t, "q", "SELECT phone FROM Person WHERE addr = 'aaa'")
	prep, err := NewEvaluator(db, maps).Prepare(osq)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if _, err := PrepareDelta(prep, ec, Options{Method: MethodOSharing}); !errors.Is(err, ErrNotDeltaMaintainable) {
		t.Fatalf("o-sharing PrepareDelta err = %v, want ErrNotDeltaMaintainable", err)
	}

	agg := mustParse(t, "q", "SELECT SUM(total) FROM Person, Order WHERE addr = 'aaa'")
	aprep, err := NewEvaluator(db, maps).Prepare(agg)
	if err != nil {
		t.Fatalf("prepare aggregate: %v", err)
	}
	if _, err := PrepareDelta(aprep, ec, Options{Method: MethodEBasic}); !errors.Is(err, ErrNotDeltaMaintainable) {
		t.Fatalf("aggregate PrepareDelta err = %v, want ErrNotDeltaMaintainable", err)
	}

	jq := mustParse(t, "q", "SELECT total FROM Person, Order WHERE addr = 'hk'")
	jprep, err := NewEvaluator(db, maps).Prepare(jq)
	if err != nil {
		t.Fatalf("prepare join: %v", err)
	}
	dp, err := PrepareDelta(jprep, ec, Options{Method: MethodEBasic})
	if err != nil {
		t.Fatalf("PrepareDelta: %v", err)
	}
	st, err := dp.EvaluateFull(ec, db)
	if err != nil {
		t.Fatalf("EvaluateFull: %v", err)
	}
	cust := db.Relation("Customer")
	cust.Rows = cust.Rows[:len(cust.Rows)-1]
	if _, err := st.ApplyDelta(ec, db); err == nil {
		t.Fatalf("ApplyDelta over a shrunk relation succeeded, want error")
	}
}
