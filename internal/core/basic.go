package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// Basic evaluates the target query by reformulating it once per mapping and
// executing every resulting source query independently, then aggregating
// duplicate answers (Section III-B, algorithm "basic").
//
// The per-mapping reformulation+execution steps are independent, so they run
// on the runtime's worker pool; answers are still aggregated in mapping order,
// which keeps the result identical to a sequential run at any parallelism.
func Basic(ec *exec.Context, q *query.Query, maps schema.MappingSet, db *engine.Instance) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodBasic, Columns: OutputColumns(q), Stats: engine.NewStats()}
	agg := newAggregator()

	wms := make([]weightedMapping, len(maps))
	for i, m := range maps {
		wms[i] = weightedMapping{mapping: m, prob: m.Prob}
	}
	if err := basicOver(ec, q, wms, db, res, agg); err != nil {
		return nil, fmt.Errorf("basic: %w", err)
	}

	agg.finalize(res)
	res.TotalTime = time.Since(start)
	return res, nil
}

// weightedMapping pairs a representative mapping with the total probability of
// the partition it represents.
type weightedMapping struct {
	mapping *schema.Mapping
	prob    float64
}

// mappingRun is the outcome of reformulating and executing the source query of
// one mapping on a worker: the answer relation (nil when the mapping cannot
// answer the query), the worker's private statistics and phase timings.
type mappingRun struct {
	rel     *engine.Relation
	stats   *engine.Stats
	rewrite time.Duration
	exec    time.Duration
}

// runMapping reformulates the target query through the mapping, optimizes the
// plan and executes it.  A mapping that does not cover the query returns a run
// with a nil relation rather than an error, so callers can assign its
// probability mass to the empty answer.  batch and workers carry the runtime's
// engine tuning (exec.Context.Batch and Parallelism) into the executor.
func runMapping(ctx context.Context, q *query.Query, m *schema.Mapping, db *engine.Instance, batch, workers int) (*mappingRun, error) {
	run := &mappingRun{stats: engine.NewStats()}
	rewriteStart := time.Now()
	plan, err := query.NewReformulator(q).Reformulate(m)
	if err != nil {
		run.rewrite = time.Since(rewriteStart)
		if errors.Is(err, query.ErrNotCovered) {
			return run, nil
		}
		return nil, fmt.Errorf("reformulating through %s: %w", m.ID, err)
	}
	plan = engine.Optimize(plan)
	run.rewrite = time.Since(rewriteStart)

	execStart := time.Now()
	ex := &engine.Executor{DB: db, Stats: run.stats, Indexes: db.Indexes(), Batch: batch, Workers: workers}
	rel, err := ex.ExecuteContext(ctx, plan)
	run.exec = time.Since(execStart)
	if err != nil {
		return nil, fmt.Errorf("executing source query for %s: %w", m.ID, err)
	}
	run.rel = rel
	return run, nil
}

// basicOver runs the basic algorithm over an explicit (mapping, probability)
// list on the runtime's worker pool; q-sharing reuses it with representative
// mappings whose probabilities are the partition totals.  Results are consumed
// in mapping order, so the aggregated probabilities are bit-identical at any
// parallelism level.
func basicOver(ec *exec.Context, q *query.Query, reps []weightedMapping, db *engine.Instance, res *Result, agg *aggregator) error {
	return exec.Map(ec, len(reps),
		func(ctx context.Context, i int) (*mappingRun, error) {
			return runMapping(ctx, q, reps[i].mapping, db, ec.Batch(), ec.Parallelism())
		},
		func(i int, run *mappingRun) error {
			res.RewriteTime += run.rewrite
			res.ExecTime += run.exec
			res.Stats.Add(run.stats)
			if run.rel == nil {
				// The mapping cannot answer the query: its probability mass
				// goes to the empty answer.
				agg.addEmpty(reps[i].prob)
				return nil
			}
			res.RewrittenQueries++
			res.ExecutedQueries++
			aggStart := time.Now()
			agg.addRelation(run.rel, reps[i].prob)
			res.AggregateTime += time.Since(aggStart)
			return nil
		})
}

// rewriteAll reformulates the target query through every mapping on the worker
// pool and returns the optimized plans in mapping order.  A nil plan marks a
// mapping that does not cover the query.
func rewriteAll(ec *exec.Context, q *query.Query, maps schema.MappingSet, label string) ([]engine.Plan, error) {
	plans := make([]engine.Plan, len(maps))
	err := exec.Map(ec, len(maps),
		func(ctx context.Context, i int) (engine.Plan, error) {
			plan, err := query.NewReformulator(q).Reformulate(maps[i])
			if err != nil {
				if errors.Is(err, query.ErrNotCovered) {
					return nil, nil
				}
				return nil, fmt.Errorf("%s: reformulating through %s: %w", label, maps[i].ID, err)
			}
			return engine.Optimize(plan), nil
		},
		func(i int, plan engine.Plan) error {
			plans[i] = plan
			return nil
		})
	if err != nil {
		return nil, err
	}
	return plans, nil
}

// planCluster groups mappings whose source queries are identical.
type planCluster struct {
	plan engine.Plan
	prob float64
}

// clusterPlans buckets per-mapping plans by signature, summing the mapping
// probabilities.  Cluster order is the first-seen mapping order.  It also
// returns the total probability mass of non-covering mappings (nil plans) —
// destined for the empty answer — and the number of covering mappings (the
// RewrittenQueries count).  Pure bookkeeping with no side effects, so the
// prepared-query path can run it once and replay the outputs per execution.
func clusterPlans(plans []engine.Plan, maps schema.MappingSet) (clusters map[string]*planCluster, order []string, emptyProb float64, rewritten int) {
	clusters = make(map[string]*planCluster)
	for i, plan := range plans {
		if plan == nil {
			emptyProb += maps[i].Prob
			continue
		}
		rewritten++
		sig := plan.Signature()
		c, ok := clusters[sig]
		if !ok {
			c = &planCluster{plan: plan}
			clusters[sig] = c
			order = append(order, sig)
		}
		c.prob += maps[i].Prob
	}
	return clusters, order, emptyProb, rewritten
}

// executeClusters executes each distinct source plan once on the worker pool
// and aggregates its answers under the cluster's total probability, in cluster
// order (e-basic's phase 2, shared by the prepared re-execution path).
func executeClusters(ec *exec.Context, db *engine.Instance, clusters map[string]*planCluster, order []string, label string, res *Result, agg *aggregator) error {
	return exec.Map(ec, len(order),
		func(ctx context.Context, i int) (*mappingRun, error) {
			run := &mappingRun{stats: engine.NewStats()}
			execStart := time.Now()
			ex := &engine.Executor{DB: db, Stats: run.stats, Indexes: db.Indexes(), Batch: ec.Batch(), Workers: ec.Parallelism()}
			rel, err := ex.ExecuteContext(ctx, clusters[order[i]].plan)
			run.exec = time.Since(execStart)
			if err != nil {
				return nil, fmt.Errorf("%s: executing source query: %w", label, err)
			}
			run.rel = rel
			return run, nil
		},
		func(i int, run *mappingRun) error {
			res.ExecTime += run.exec
			res.Stats.Add(run.stats)
			res.ExecutedQueries++
			aggStart := time.Now()
			agg.addRelation(run.rel, clusters[order[i]].prob)
			res.AggregateTime += time.Since(aggStart)
			return nil
		})
}

// EBasic clusters the mappings' source queries by signature so that each
// distinct source query is executed only once, with the summed probability of
// the mappings that produce it (Section III-B, algorithm "e-basic").  Unlike
// q-sharing it still pays the rewriting cost for every mapping.
//
// Both phases use the runtime's worker pool: the per-mapping rewrites are
// independent, and so are the distinct source queries.  Clustering and
// aggregation happen in mapping/cluster order, keeping results identical at
// any parallelism.
func EBasic(ec *exec.Context, q *query.Query, maps schema.MappingSet, db *engine.Instance) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodEBasic, Columns: OutputColumns(q), Stats: engine.NewStats()}
	agg := newAggregator()

	// Phase 1: rewrite every mapping and cluster by source-query signature.
	rewriteStart := time.Now()
	plans, err := rewriteAll(ec, q, maps, "e-basic")
	if err != nil {
		return nil, err
	}
	clusters, order, emptyProb, rewritten := clusterPlans(plans, maps)
	agg.addEmpty(emptyProb)
	res.RewrittenQueries = rewritten
	res.RewriteTime = time.Since(rewriteStart)
	res.Partitions = len(order)

	// Phase 2: execute each distinct source query once.
	if err := executeClusters(ec, db, clusters, order, "e-basic", res, agg); err != nil {
		return nil, err
	}

	agg.finalize(res)
	res.TotalTime = time.Since(start)
	return res, nil
}
