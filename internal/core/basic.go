package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// Basic evaluates the target query by reformulating it once per mapping and
// executing every resulting source query independently, then aggregating
// duplicate answers (Section III-B, algorithm "basic").
func Basic(q *query.Query, maps schema.MappingSet, db *engine.Instance) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodBasic, Columns: OutputColumns(q), Stats: engine.NewStats()}
	ref := query.NewReformulator(q)
	agg := newAggregator()

	for _, m := range maps {
		rewriteStart := time.Now()
		plan, err := ref.Reformulate(m)
		res.RewriteTime += time.Since(rewriteStart)
		if err != nil {
			if errors.Is(err, query.ErrNotCovered) {
				// The mapping cannot answer the query: its probability mass
				// goes to the empty answer.
				agg.addEmpty(m.Prob)
				continue
			}
			return nil, fmt.Errorf("basic: reformulating through %s: %w", m.ID, err)
		}
		plan = engine.Optimize(plan)
		res.RewrittenQueries++

		execStart := time.Now()
		ex := &engine.Executor{DB: db, Stats: res.Stats}
		rel, err := ex.Execute(plan)
		res.ExecTime += time.Since(execStart)
		if err != nil {
			return nil, fmt.Errorf("basic: executing source query for %s: %w", m.ID, err)
		}
		res.ExecutedQueries++

		aggStart := time.Now()
		agg.addRelation(rel, m.Prob)
		res.AggregateTime += time.Since(aggStart)
	}

	aggStart := time.Now()
	res.Answers = agg.answers()
	res.EmptyProb = agg.emptyProb
	res.AggregateTime += time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return res, nil
}

// basicOver runs the basic algorithm over an explicit (mapping, probability)
// list; q-sharing reuses it with representative mappings whose probabilities
// are the partition totals.
func basicOver(q *query.Query, reps []weightedMapping, db *engine.Instance, res *Result) error {
	ref := query.NewReformulator(q)
	agg := newAggregator()
	for _, wm := range reps {
		rewriteStart := time.Now()
		plan, err := ref.Reformulate(wm.mapping)
		res.RewriteTime += time.Since(rewriteStart)
		if err != nil {
			if errors.Is(err, query.ErrNotCovered) {
				agg.addEmpty(wm.prob)
				continue
			}
			return fmt.Errorf("reformulating through %s: %w", wm.mapping.ID, err)
		}
		plan = engine.Optimize(plan)
		res.RewrittenQueries++

		execStart := time.Now()
		ex := &engine.Executor{DB: db, Stats: res.Stats}
		rel, err := ex.Execute(plan)
		res.ExecTime += time.Since(execStart)
		if err != nil {
			return fmt.Errorf("executing source query for %s: %w", wm.mapping.ID, err)
		}
		res.ExecutedQueries++

		aggStart := time.Now()
		agg.addRelation(rel, wm.prob)
		res.AggregateTime += time.Since(aggStart)
	}
	aggStart := time.Now()
	res.Answers = agg.answers()
	res.EmptyProb = agg.emptyProb
	res.AggregateTime += time.Since(aggStart)
	return nil
}

// weightedMapping pairs a representative mapping with the total probability of
// the partition it represents.
type weightedMapping struct {
	mapping *schema.Mapping
	prob    float64
}

// EBasic clusters the mappings' source queries by signature so that each
// distinct source query is executed only once, with the summed probability of
// the mappings that produce it (Section III-B, algorithm "e-basic").  Unlike
// q-sharing it still pays the rewriting cost for every mapping.
func EBasic(q *query.Query, maps schema.MappingSet, db *engine.Instance) (*Result, error) {
	if err := validateInputs(q, maps, db); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Query: q, Method: MethodEBasic, Columns: OutputColumns(q), Stats: engine.NewStats()}
	ref := query.NewReformulator(q)
	agg := newAggregator()

	// Phase 1: rewrite every mapping and cluster by source-query signature.
	type cluster struct {
		plan engine.Plan
		prob float64
	}
	rewriteStart := time.Now()
	clusters := make(map[string]*cluster)
	var order []string
	for _, m := range maps {
		plan, err := ref.Reformulate(m)
		if err != nil {
			if errors.Is(err, query.ErrNotCovered) {
				agg.addEmpty(m.Prob)
				continue
			}
			return nil, fmt.Errorf("e-basic: reformulating through %s: %w", m.ID, err)
		}
		plan = engine.Optimize(plan)
		res.RewrittenQueries++
		sig := plan.Signature()
		c, ok := clusters[sig]
		if !ok {
			c = &cluster{plan: plan}
			clusters[sig] = c
			order = append(order, sig)
		}
		c.prob += m.Prob
	}
	res.RewriteTime = time.Since(rewriteStart)
	res.Partitions = len(order)

	// Phase 2: execute each distinct source query once.
	for _, sig := range order {
		c := clusters[sig]
		execStart := time.Now()
		ex := &engine.Executor{DB: db, Stats: res.Stats}
		rel, err := ex.Execute(c.plan)
		res.ExecTime += time.Since(execStart)
		if err != nil {
			return nil, fmt.Errorf("e-basic: executing source query: %w", err)
		}
		res.ExecutedQueries++
		aggStart := time.Now()
		agg.addRelation(rel, c.prob)
		res.AggregateTime += time.Since(aggStart)
	}

	aggStart := time.Now()
	res.Answers = agg.answers()
	res.EmptyProb = agg.emptyProb
	res.AggregateTime += time.Since(aggStart)
	res.TotalTime = time.Since(start)
	return res, nil
}
