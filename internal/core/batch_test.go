package core

import "testing"

// batchSizes are the settings every method must be invariant under: the
// tuple-at-a-time fallback (-1), single-row batches (1), a size that straddles
// every operator boundary (7) and one larger than any intermediate relation in
// the running example (1024).  The default (BatchSize 0) is the baseline.
var batchSizes = []int{-1, 1, 7, 1024}

// TestMethodEquivalenceAcrossBatchSizes is the vectorization's safety net at
// the evaluation layer: every method at every parallelism must produce answers,
// probabilities, answer order and operator statistics bit-identical to the
// default batch size, whatever BatchSize is set to.  The batch size is a pure
// physical-execution knob; if it ever leaks into an answer or a logical
// operator count, this fails.
func TestMethodEquivalenceAcrossBatchSizes(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	methods := []Method{MethodBasic, MethodEBasic, MethodEMQO, MethodQSharing, MethodOSharing}

	for _, qc := range runtimeQueries {
		q := mustParse(t, qc.name, qc.text)
		for _, m := range methods {
			for _, parallelism := range []int{1, 8} {
				ev := NewEvaluator(db, maps)
				want, err := ev.Evaluate(q, Options{Method: m, Parallelism: parallelism})
				if err != nil {
					t.Fatalf("%s/%s p=%d default: %v", qc.name, m, parallelism, err)
				}
				for _, bs := range batchSizes {
					got, err := ev.Evaluate(q, Options{Method: m, Parallelism: parallelism, BatchSize: bs})
					if err != nil {
						t.Fatalf("%s/%s p=%d batch %d: %v", qc.name, m, parallelism, bs, err)
					}
					label := qc.name + "/" + m.String()
					identicalResults(t, label, want, got)
					if want.Stats.TotalOperators() != got.Stats.TotalOperators() {
						t.Errorf("%s p=%d batch %d: executed %d operators, default executed %d",
							label, parallelism, bs, got.Stats.TotalOperators(), want.Stats.TotalOperators())
					}
				}
			}
		}
	}
}

// TestTopKEquivalenceAcrossBatchSizes extends the invariance to the
// probabilistic top-k algorithm, whose early-termination decisions depend on
// the probabilities the engine computes — identical answers at every batch
// size mean the batch pipeline changed none of them.
func TestTopKEquivalenceAcrossBatchSizes(t *testing.T) {
	db := paperInstance()
	maps := paperMappings()
	q := mustParse(t, "topk", "SELECT phone FROM Person WHERE addr = 'aaa'")
	for _, k := range []int{1, 3} {
		ev := NewEvaluator(db, maps)
		want, err := ev.EvaluateTopK(q, k, Options{})
		if err != nil {
			t.Fatalf("k=%d default: %v", k, err)
		}
		for _, bs := range batchSizes {
			got, err := ev.EvaluateTopK(q, k, Options{BatchSize: bs})
			if err != nil {
				t.Fatalf("k=%d batch %d: %v", k, bs, err)
			}
			label := "topk"
			identicalResults(t, label, want, got)
			if want.Stats.TotalOperators() != got.Stats.TotalOperators() {
				t.Errorf("k=%d batch %d: executed %d operators, default executed %d",
					k, bs, got.Stats.TotalOperators(), want.Stats.TotalOperators())
			}
		}
	}
}
