package core

import (
	"fmt"
	"sort"

	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// noCorrespondence is the edge label used when a mapping has no correspondence
// for a target attribute.  The paper assumes every mapping covers the query;
// this label extends the partition tree gracefully to partial mappings, which
// then share the "cannot answer" partition for that attribute.
const noCorrespondence = "<none>"

// Partition is one group of mappings that reformulate the target query to the
// same source query, together with the partition's total probability.
type Partition struct {
	// Mappings are the members of the partition.
	Mappings schema.MappingSet
	// Representative is the mapping chosen to rewrite the shared source query
	// (the represent routine of Algorithm 1).
	Representative *schema.Mapping
	// Prob is the sum of the members' probabilities.
	Prob float64
	// Key is the sequence of source-attribute labels along the partition
	// tree path that leads to this partition's bucket.
	Key string
}

// PartitionTree is the index of Section IV-A: a tree with one level per target
// attribute of the query, whose edges are labelled with source attributes and
// whose leaves are buckets of mappings that agree on every level.
type PartitionTree struct {
	attrs []schema.Attribute
	root  *ptNode
	// buckets holds the leaves in insertion order.
	buckets []*ptBucket
}

type ptNode struct {
	// children maps the source-attribute edge label to the next level.
	children map[string]*ptNode
	// order keeps deterministic child ordering.
	order []string
	// bucket is non-nil for leaves.
	bucket *ptBucket
}

type ptBucket struct {
	key      string
	mappings schema.MappingSet
}

// NewPartitionTree builds an empty partition tree for the given target
// attributes (the attributes referenced by the target query, one tree level
// per attribute).
func NewPartitionTree(attrs []schema.Attribute) *PartitionTree {
	return &PartitionTree{attrs: attrs, root: &ptNode{children: make(map[string]*ptNode)}}
}

// Insert places the mapping into the bucket identified by its correspondences
// for the tree's attributes, creating nodes and edges on demand (the recursive
// put routine of Algorithm 3).
func (t *PartitionTree) Insert(m *schema.Mapping) {
	t.put(m, t.root, 0, "")
}

func (t *PartitionTree) put(m *schema.Mapping, n *ptNode, level int, key string) {
	if level == len(t.attrs) {
		if n.bucket == nil {
			n.bucket = &ptBucket{key: key}
			t.buckets = append(t.buckets, n.bucket)
		}
		n.bucket.mappings = append(n.bucket.mappings, m)
		return
	}
	attr := t.attrs[level]
	label := noCorrespondence
	if src, ok := m.SourceFor(attr); ok {
		label = src.String()
	}
	child, ok := n.children[label]
	if !ok {
		child = &ptNode{children: make(map[string]*ptNode)}
		n.children[label] = child
		n.order = append(n.order, label)
	}
	nextKey := key
	if nextKey != "" {
		nextKey += "|"
	}
	nextKey += label
	t.put(m, child, level+1, nextKey)
}

// Partitions returns the tree's buckets as partitions with representatives and
// summed probabilities, in insertion order.
func (t *PartitionTree) Partitions() []*Partition {
	out := make([]*Partition, 0, len(t.buckets))
	for _, b := range t.buckets {
		p := &Partition{Mappings: b.mappings, Key: b.key}
		for _, m := range b.mappings {
			p.Prob += m.Prob
		}
		if len(b.mappings) > 0 {
			p.Representative = b.mappings[0]
		}
		out = append(out, p)
	}
	return out
}

// NumPartitions returns the number of buckets currently in the tree.
func (t *PartitionTree) NumPartitions() int { return len(t.buckets) }

// Depth returns the number of attribute levels of the tree.
func (t *PartitionTree) Depth() int { return len(t.attrs) }

// PartitionMappings partitions a mapping set with respect to a target query:
// mappings in the same partition produce the same source query for that query
// (the partition routine of Algorithm 1/3).  Partitions are returned in
// first-seen order of their representative mapping.
func PartitionMappings(q *query.Query, maps schema.MappingSet) ([]*Partition, error) {
	attrs, err := q.TargetAttributes()
	if err != nil {
		return nil, fmt.Errorf("partition: %w", err)
	}
	tree := NewPartitionTree(attrs)
	for _, m := range maps {
		tree.Insert(m)
	}
	return tree.Partitions(), nil
}

// PartitionByAttributes partitions the mapping set by the source attributes
// assigned to the given target attributes only.  o-sharing uses it to compute
// per-operator partitions (the mappings that translate one target operator to
// the same source operator).
func PartitionByAttributes(attrs []schema.Attribute, maps schema.MappingSet) []*Partition {
	tree := NewPartitionTree(attrs)
	for _, m := range maps {
		tree.Insert(m)
	}
	return tree.Partitions()
}

// Represent extracts the representative weighted mappings from the partitions
// (the represent routine of Algorithm 1): one mapping per partition whose
// probability is the partition's total probability.
func Represent(parts []*Partition) []weightedMapping {
	out := make([]weightedMapping, 0, len(parts))
	for _, p := range parts {
		if p.Representative == nil {
			continue
		}
		out = append(out, weightedMapping{mapping: p.Representative, prob: p.Prob})
	}
	return out
}

// partitionSizes returns the partition sizes sorted descending; used by the
// SEF entropy computation and by tests.
func partitionSizes(parts []*Partition) []int {
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		sizes = append(sizes, len(p.Mappings))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
