// Package core implements the paper's query-evaluation algorithms over
// uncertain schema matching: the baselines basic, e-basic and e-MQO
// (Section III-B), query-level sharing (q-sharing, Section IV), operator-level
// sharing (o-sharing, Sections V–VI) with the Random/SNF/SEF operator
// selection strategies, and the probabilistic top-k algorithm (Section VII).
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// Answer is one probabilistic answer tuple: a value tuple together with the
// probability that it belongs to the correct query result.
type Answer struct {
	Tuple engine.Tuple
	Prob  float64
}

// String renders the answer as "(v1, v2)@p".
func (a Answer) String() string {
	return fmt.Sprintf("%s@%.3f", a.Tuple, a.Prob)
}

// Result is the outcome of evaluating a probabilistic query.
type Result struct {
	// Query is the evaluated target query.
	Query *query.Query
	// Method is the evaluation algorithm that produced the result.
	Method Method
	// Answers are the aggregated probabilistic answers, sorted by descending
	// probability (ties broken by tuple key).
	Answers []Answer
	// EmptyProb is the probability that the query has no answer at all (the
	// probability mass of mappings whose source query returned nothing, the
	// null tuple θ of the paper's o-sharing Case 2).
	EmptyProb float64
	// Columns are display labels for the answer tuples (target-side names);
	// empty when the query has no explicit projection or aggregate.
	Columns []string

	// Stats aggregates the physical operators executed on the source instance.
	Stats *engine.Stats
	// RewrittenQueries counts how many complete source queries were rewritten.
	RewrittenQueries int
	// ExecutedQueries counts how many distinct complete source queries were
	// executed (o-sharing executes operators rather than whole queries, so it
	// reports 0 here and relies on Stats).
	ExecutedQueries int
	// Partitions is the number of mapping partitions (representative
	// mappings) used, when the method partitions mappings.
	Partitions int

	// RewriteTime, ExecTime and AggregateTime break the evaluation down into
	// the phases reported in Figure 10(a).  Phases that fan out over the
	// worker pool (per-mapping rewrite+execution in basic/q-sharing, source
	// query execution in e-basic) sum the per-worker durations, so with
	// Options.Parallelism > 1 those fields report CPU time per phase and
	// their sum can exceed TotalTime; at Parallelism 1 every field is the
	// wall-clock phase time as in the paper.
	RewriteTime   time.Duration
	ExecTime      time.Duration
	AggregateTime time.Duration
	// TotalTime is the end-to-end (wall-clock) evaluation time; this is the
	// figure that shrinks with parallelism.
	TotalTime time.Duration
}

// TopK returns the k answers with the highest probabilities.
func (r *Result) TopK(k int) []Answer {
	if k >= len(r.Answers) {
		out := make([]Answer, len(r.Answers))
		copy(out, r.Answers)
		return out
	}
	out := make([]Answer, k)
	copy(out, r.Answers[:k])
	return out
}

// Lookup returns the probability of the given tuple, or 0 if absent.
func (r *Result) Lookup(t engine.Tuple) float64 {
	key := t.Key()
	for _, a := range r.Answers {
		if a.Tuple.Key() == key {
			return a.Prob
		}
	}
	return 0
}

// String renders the result compactly.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s via %s: %d answers (empty %.3f)", r.Query.Name, r.Method, len(r.Answers), r.EmptyProb)
	limit := len(r.Answers)
	if limit > 10 {
		limit = 10
	}
	for i := 0; i < limit; i++ {
		b.WriteString("\n  ")
		b.WriteString(r.Answers[i].String())
	}
	if len(r.Answers) > limit {
		fmt.Fprintf(&b, "\n  ... (%d more)", len(r.Answers)-limit)
	}
	return b.String()
}

// aggregator accumulates probabilistic answers, merging duplicates by tuple
// value as the paper's result-aggregation phase does.  Duplicate detection is
// hash-based (Hash64 buckets resolved with EqualKey), so aggregation never
// formats canonical key strings; keys are built once per distinct answer only
// for the final deterministic sort.
type aggregator struct {
	buckets   map[uint64][]*aggEntry
	order     []*aggEntry
	emptyProb float64
}

// aggEntry is one distinct answer tuple with its accumulated probability.
type aggEntry struct {
	tuple engine.Tuple
	prob  float64
}

func newAggregator() *aggregator {
	return &aggregator{buckets: make(map[uint64][]*aggEntry)}
}

// add records one tuple observed under the given probability mass.
func (g *aggregator) add(t engine.Tuple, prob float64) {
	g.addHashed(t.Hash64(), t, prob)
}

// addHashed is add with the tuple's Hash64 already computed.
func (g *aggregator) addHashed(h uint64, t engine.Tuple, prob float64) {
	for _, e := range g.buckets[h] {
		if e.tuple.EqualKey(t) {
			e.prob += prob
			return
		}
	}
	e := &aggEntry{tuple: t.Clone(), prob: prob}
	g.buckets[h] = append(g.buckets[h], e)
	g.order = append(g.order, e)
}

// addRelation records every tuple of the relation under the probability mass;
// duplicate rows within the relation are first collapsed so the mass is not
// double-counted (the paper aggregates distinct answers per mapping).  Each
// row is hashed once, shared by the per-relation dedup and the merge.
func (g *aggregator) addRelation(rel *engine.Relation, prob float64) {
	seen := engine.NewTupleSet(len(rel.Rows))
	for _, row := range rel.Rows {
		h := row.Hash64()
		if !seen.AddHashed(h, row) {
			continue
		}
		g.addHashed(h, row, prob)
	}
	if len(rel.Rows) == 0 {
		g.addEmpty(prob)
	}
}

// addEmpty records probability mass for the empty (θ) answer.
func (g *aggregator) addEmpty(prob float64) { g.emptyProb += prob }

// finalize sorts the aggregated answers into the result and accounts the time
// to the aggregation phase.
func (g *aggregator) finalize(res *Result) {
	start := time.Now()
	res.Answers = g.answers()
	res.EmptyProb = g.emptyProb
	res.AggregateTime += time.Since(start)
}

// sortedEntries returns the aggregated entries in canonical answer order:
// descending probability, ties broken by canonical tuple key.  Keys are
// computed once per entry here rather than inside the comparator.  Both the
// materialized path (answers) and the streaming Cursor consume this order, so
// streamed and materialized results are identical answer for answer.
func (g *aggregator) sortedEntries() []*aggEntry {
	out := make([]*aggEntry, len(g.order))
	keys := make([]string, len(g.order))
	for i, e := range g.order {
		out[i] = e
		keys[i] = e.tuple.Key()
	}
	sort.Sort(&entriesByProb{entries: out, keys: keys})
	return out
}

// answers returns the aggregated answers sorted by descending probability.
func (g *aggregator) answers() []Answer {
	entries := g.sortedEntries()
	out := make([]Answer, len(entries))
	for i, e := range entries {
		out[i] = Answer{Tuple: e.tuple, Prob: e.prob}
	}
	return out
}

// entriesByProb sorts entries by descending probability, ties broken by the
// cached canonical tuple key.
type entriesByProb struct {
	entries []*aggEntry
	keys    []string
}

func (s *entriesByProb) Len() int { return len(s.entries) }
func (s *entriesByProb) Less(i, j int) bool {
	if s.entries[i].prob != s.entries[j].prob {
		return s.entries[i].prob > s.entries[j].prob
	}
	return s.keys[i] < s.keys[j]
}
func (s *entriesByProb) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// OutputColumns derives display labels for the query's answers: projection
// references or the aggregate name.  Queries without an explicit projection
// return nil.
func OutputColumns(q *query.Query) []string {
	switch root := q.Root.(type) {
	case *query.Project:
		cols := make([]string, len(root.Refs))
		for i, r := range root.Refs {
			cols[i] = r.String()
		}
		return cols
	case *query.Aggregate:
		if root.Ref.IsZero() {
			return []string{root.Func.String()}
		}
		return []string{fmt.Sprintf("%s(%s)", root.Func, root.Ref)}
	default:
		return nil
	}
}

// validateInputs checks the arguments shared by all evaluation methods.
func validateInputs(q *query.Query, maps schema.MappingSet, db *engine.Instance) error {
	if q == nil {
		return fmt.Errorf("core: nil query")
	}
	if err := q.Validate(); err != nil {
		return fmt.Errorf("core: invalid query: %w", err)
	}
	if len(maps) == 0 {
		return fmt.Errorf("core: empty mapping set")
	}
	if err := maps.Validate(); err != nil {
		return fmt.Errorf("core: invalid mapping set: %w", err)
	}
	if db == nil {
		return fmt.Errorf("core: nil source instance")
	}
	return nil
}
