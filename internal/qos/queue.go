package qos

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"
)

// ErrSaturated is returned by FairQueue.Acquire when no slot frees up within
// the caller's wait budget (or immediately, when the budget is zero).
var ErrSaturated = errors.New("admission queue saturated")

// QueueConfig tunes a FairQueue.
type QueueConfig struct {
	// Slots is the number of concurrent holders (the evaluation-slot count).
	// Must be at least 1.
	Slots int
	// Clock is the time source for wait measurement and timeouts (nil = wall).
	Clock Clock
}

// FairQueue hands out a fixed number of slots in weighted-fair order.  While
// slots are free and nobody waits, Acquire grants immediately; under backlog
// it becomes a weighted-fair queue: each waiter is tagged with a virtual
// finish time start+1/weight, where start is the later of the queue's virtual
// clock and the tenant's previous finish tag, and Release always grants the
// smallest tag.  Over a sustained backlog a weight-4 tenant therefore
// receives four grants for every one a weight-1 tenant gets, yet the weight-1
// tenant is never starved — its tags keep arriving and keep being reached.
//
// The same tenant-weight × class-weight product that shapes dequeue order is
// the priority mechanism: interactive requests carry a larger class weight
// than batch ones and overtake them in the backlog.
//
// Every Acquire also measures the wait it actually experienced on the
// configured clock, so admitted-instantly and waited-the-full-budget are
// distinguishable to the caller's metrics.
type FairQueue struct {
	clock Clock

	mu         sync.Mutex
	free       int
	vtime      float64
	seq        uint64
	waiters    waiterHeap
	lastFinish map[string]float64
}

type queueWaiter struct {
	tenant  string
	finish  float64
	seq     uint64
	index   int
	granted bool
	ready   chan struct{}
}

// NewFairQueue builds a queue with cfg.Slots slots.
func NewFairQueue(cfg QueueConfig) *FairQueue {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = Wall()
	}
	return &FairQueue{
		clock:      cfg.Clock,
		free:       cfg.Slots,
		lastFinish: make(map[string]float64),
	}
}

// Acquire obtains a slot for the tenant, waiting in weighted-fair order for
// at most maxWait (a non-positive budget rejects immediately when saturated).
// It returns the measured queue wait; on failure the error is ErrSaturated or
// the context's.  A nil-weight caller is treated as weight 1.
func (q *FairQueue) Acquire(ctx context.Context, tenant string, weight float64, maxWait time.Duration) (time.Duration, error) {
	if weight <= 0 {
		weight = 1
	}
	start := q.clock.Now()

	q.mu.Lock()
	if q.free > 0 && q.waiters.Len() == 0 {
		q.free--
		q.mu.Unlock()
		return 0, nil
	}
	if maxWait <= 0 {
		q.mu.Unlock()
		return 0, ErrSaturated
	}
	s := q.vtime
	if f, ok := q.lastFinish[tenant]; ok && f > s {
		s = f
	}
	w := &queueWaiter{tenant: tenant, finish: s + 1/weight, seq: q.seq, ready: make(chan struct{})}
	q.seq++
	q.lastFinish[tenant] = w.finish
	heap.Push(&q.waiters, w)
	q.mu.Unlock()

	timer := q.clock.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		return q.clock.Now().Sub(start), nil
	case <-timer.C():
	case <-ctx.Done():
	}

	// Timed out or cancelled — unless a grant raced us, in which case the
	// slot is already ours and must be kept (or handed back, if the context
	// is dead) rather than leaked.
	q.mu.Lock()
	granted := w.granted
	if !granted {
		heap.Remove(&q.waiters, w.index)
	}
	q.mu.Unlock()
	wait := q.clock.Now().Sub(start)
	if err := ctx.Err(); err != nil {
		if granted {
			q.Release()
		}
		return wait, err
	}
	if granted {
		return wait, nil
	}
	return wait, ErrSaturated
}

// Release returns a slot: the smallest-tag waiter is granted, or the slot
// goes back to the free pool.
func (q *FairQueue) Release() {
	q.mu.Lock()
	if q.waiters.Len() > 0 {
		w := heap.Pop(&q.waiters).(*queueWaiter)
		// The heap minimum is always >= vtime (arrival tags start at vtime),
		// so this assignment keeps the virtual clock monotone.
		q.vtime = w.finish
		w.granted = true
		close(w.ready)
	} else {
		q.free++
		// Finish tags at or behind the virtual clock no longer influence any
		// future tag; prune them so the map tracks backlogged tenants only.
		if len(q.lastFinish) > 64 {
			for tenant, f := range q.lastFinish {
				if f <= q.vtime {
					delete(q.lastFinish, tenant)
				}
			}
		}
	}
	q.mu.Unlock()
}

// Depth reports the number of waiting requests.
func (q *FairQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiters.Len()
}

// waiterHeap orders by finish tag, FIFO within equal tags.
type waiterHeap []*queueWaiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *waiterHeap) Push(x any) {
	w := x.(*queueWaiter)
	w.index = len(*h)
	*h = append(*h, w)
}
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
