package qos

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Backoff computes capped, jittered exponential retry delays — the client
// half of the 429 contract.  The server's Retry-After is honoured as a floor:
// backing off *less* than the server asked would re-shed the request, while
// the exponential growth above it keeps a fleet of retrying clients from
// re-synchronising into waves.
//
// The zero value is usable; every field has a serving-appropriate default.
type Backoff struct {
	// Base is the delay before the first retry (0 = 50ms).
	Base time.Duration
	// Max caps the grown delay, before the Retry-After floor (0 = 2s).
	Max time.Duration
	// Factor is the per-retry growth multiplier (0 = 2).
	Factor float64
	// Jitter spreads each delay uniformly over [1-Jitter, 1+Jitter] (0 = 0.2;
	// negative = no jitter).
	Jitter float64
	// Attempts caps the total number of attempts, the first included (0 = 4).
	Attempts int
	// Seed makes the jitter sequence reproducible (0 = 1).
	Seed uint64
	// Clock is the time source (nil = wall clock).
	Clock Clock
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Factor <= 1 {
		b.Factor = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Attempts <= 0 {
		b.Attempts = 4
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	if b.Clock == nil {
		b.Clock = Wall()
	}
	return b
}

// delay computes the pause before retry number `retry` (1-based), honouring
// the server-provided Retry-After hint as a floor.
func (b Backoff) delay(rng *rand.Rand, retry int, retryAfter time.Duration) time.Duration {
	d := float64(b.Base)
	for i := 1; i < retry; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 {
		d *= 1 - b.Jitter + 2*b.Jitter*rng.Float64()
	}
	out := time.Duration(d)
	if retryAfter > out {
		out = retryAfter
	}
	return out
}

// Retry runs attempt until it succeeds, fails non-retryably, exhausts the
// attempt budget, or the context can no longer fit the next delay.  attempt
// reports the server's Retry-After hint (0 when none) and whether its error
// is retryable; a nil error ends the loop immediately.
func Retry(ctx context.Context, b Backoff, attempt func(ctx context.Context) (retryAfter time.Duration, retryable bool, err error)) error {
	b = b.withDefaults()
	rng := rand.New(rand.NewSource(int64(b.Seed)))
	for try := 1; ; try++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		retryAfter, retryable, err := attempt(ctx)
		if err == nil || !retryable {
			return err
		}
		if try >= b.Attempts {
			return fmt.Errorf("giving up after %d attempts: %w", try, err)
		}
		d := b.delay(rng, try, retryAfter)
		if deadline, ok := ctx.Deadline(); ok && b.Clock.Now().Add(d).After(deadline) {
			return fmt.Errorf("deadline cannot fit the next %v retry pause: %w", d, err)
		}
		timer := b.Clock.NewTimer(d)
		select {
		case <-timer.C():
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
}
