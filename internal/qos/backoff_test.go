package qos

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestBackoffDelayGrowthAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: -1}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for i, w := range want {
		if d := b.delay(rng, i+1, 0); d != w {
			t.Fatalf("delay(retry=%d) = %v, want %v", i+1, d, w)
		}
	}
}

func TestBackoffHonorsRetryAfterFloor(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: -1}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	// The server asked for 500ms: early retries are floored up to it...
	if d := b.delay(rng, 1, 500*time.Millisecond); d != 500*time.Millisecond {
		t.Fatalf("floored delay = %v, want 500ms", d)
	}
	// ...but growth above the floor is kept.
	if d := b.delay(rng, 4, 500*time.Millisecond); d != 800*time.Millisecond {
		t.Fatalf("grown delay = %v, want 800ms", d)
	}
}

func TestBackoffJitterBoundsAndDeterminism(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Hour}.withDefaults() // Jitter defaults to 0.2
	seq := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 32)
		for i := range out {
			out[i] = b.delay(rng, 1, 0)
		}
		return out
	}
	a := seq(7)
	varied := false
	for i, d := range a {
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered delay %v outside [80ms, 120ms]", d)
		}
		if i > 0 && d != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced a constant sequence")
	}
	b2 := seq(7)
	for i := range a {
		if a[i] != b2[i] {
			t.Fatal("same seed produced different jitter sequences")
		}
	}
}

func TestRetryStopsOnSuccessAndNonRetryable(t *testing.T) {
	// Nanosecond delays keep the loop fast without a fake clock; nothing here
	// asserts on elapsed time.
	fast := Backoff{Base: 1, Max: 1, Jitter: -1, Attempts: 10}

	calls := 0
	err := Retry(context.Background(), fast, func(context.Context) (time.Duration, bool, error) {
		calls++
		if calls < 3 {
			return 0, true, errors.New("transient")
		}
		return 0, false, nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("success path: calls=%d err=%v, want 3 attempts and nil", calls, err)
	}

	calls = 0
	permanent := errors.New("permanent")
	err = Retry(context.Background(), fast, func(context.Context) (time.Duration, bool, error) {
		calls++
		return 0, false, permanent
	})
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("non-retryable path: calls=%d err=%v, want 1 attempt", calls, err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	fast := Backoff{Base: 1, Max: 1, Jitter: -1, Attempts: 4}
	calls := 0
	transient := errors.New("transient")
	err := Retry(context.Background(), fast, func(context.Context) (time.Duration, bool, error) {
		calls++
		return 0, true, transient
	})
	if calls != 4 {
		t.Fatalf("made %d attempts, want 4", calls)
	}
	if !errors.Is(err, transient) || !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("exhaustion error = %v", err)
	}
}

func TestRetryRefusesDelayBeyondDeadline(t *testing.T) {
	// An hour-long pause can never fit a 50ms deadline: Retry must return the
	// attempt's error immediately instead of sleeping into a timeout.
	slow := Backoff{Base: time.Hour, Max: time.Hour, Jitter: -1, Attempts: 4}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	calls := 0
	transient := errors.New("transient")
	err := Retry(ctx, slow, func(context.Context) (time.Duration, bool, error) {
		calls++
		return 0, true, transient
	})
	if calls != 1 {
		t.Fatalf("made %d attempts, want 1", calls)
	}
	if !errors.Is(err, transient) || !strings.Contains(err.Error(), "cannot fit") {
		t.Fatalf("deadline error = %v", err)
	}
}

func TestRetryObservesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, Backoff{}, func(context.Context) (time.Duration, bool, error) {
		t.Fatal("attempt ran under a dead context")
		return 0, false, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
