package qos

import (
	"sync"
	"time"
)

// LimiterConfig tunes a Limiter.
type LimiterConfig struct {
	// Rate is the global admission rate in tokens/sec, shared by every active
	// tenant in proportion to its weight.  Must be positive.
	Rate float64
	// Burst is the global token allowance, split like Rate.  0 selects one
	// second's worth of Rate.  Each tenant's share is floored at one token, or
	// a tenant whose share rounded below one could never be admitted at all.
	Burst float64
	// DefaultWeight is the weight of tenants absent from Weights (0 = 1).
	DefaultWeight float64
	// Weights overrides per-tenant weights.  A weight of 2 earns twice the
	// rate and burst share of a weight-1 tenant while both are active.
	Weights map[string]float64
	// IdleAfter is how long a tenant may go without a request before its
	// share is rebalanced to the remaining active tenants (0 = 10s).  Buckets
	// idle for 10×IdleAfter are deleted outright, bounding the tenant map.
	IdleAfter time.Duration
	// Clock is the time source (nil = wall clock).
	Clock Clock
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Burst <= 0 {
		c.Burst = c.Rate
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.IdleAfter <= 0 {
		c.IdleAfter = 10 * time.Second
	}
	if c.Clock == nil {
		c.Clock = Wall()
	}
	return c
}

// Limiter is a set of per-tenant token buckets over one shared capacity: the
// global Rate is divided among the currently active tenants in proportion to
// their weights, and the division is recomputed on every admission, so a
// tenant going idle hands its share back and a tenant waking up reclaims one.
// The shared pie is what makes the bucket math a tenant-isolation invariant:
// however hard one tenant floods, another tenant's refill rate never drops
// below Rate×w/Σw over the active set — flooding inflates the flooder's
// rejection count, not its share.
type Limiter struct {
	mu      sync.Mutex
	cfg     LimiterConfig
	tenants map[string]*tokenBucket
}

type tokenBucket struct {
	weight   float64
	tokens   float64
	refilled time.Time // last refill instant
	lastSeen time.Time // last Admit call; drives the active set
}

// NewLimiter builds a limiter; cfg.Rate must be positive.
func NewLimiter(cfg LimiterConfig) *Limiter {
	return &Limiter{cfg: cfg.withDefaults(), tenants: make(map[string]*tokenBucket)}
}

// Admit spends one token from the tenant's bucket.  When the bucket is empty
// it reports false along with the exact time until the next token accrues at
// the tenant's current share — the honest Retry-After for a 429.
func (l *Limiter) Admit(tenant string) (ok bool, retryAfter time.Duration) {
	now := l.cfg.Clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()

	b := l.tenants[tenant]
	if b == nil {
		// A new bucket starts full (at its share of the burst, computed below)
		// so a tenant's first requests are never penalised for being first.
		b = &tokenBucket{weight: l.weight(tenant), refilled: now}
		l.tenants[tenant] = b
		b.tokens = l.cfg.Burst // clamped to the share before use
	}
	b.lastSeen = now

	// The active set and the resulting share are recomputed on every
	// admission: O(tenants), which the 10×IdleAfter deletion keeps small.
	sumWeights := 0.0
	for name, t := range l.tenants {
		idle := now.Sub(t.lastSeen)
		switch {
		case idle > 10*l.cfg.IdleAfter:
			delete(l.tenants, name)
		case idle <= l.cfg.IdleAfter:
			sumWeights += t.weight
		}
	}
	if sumWeights <= 0 {
		sumWeights = b.weight
	}
	rate := l.cfg.Rate * b.weight / sumWeights
	burst := l.cfg.Burst * b.weight / sumWeights
	if burst < 1 {
		burst = 1
	}

	// Refill at the current share.  Negative elapsed time is clock skew (a
	// backwards Set on a fake clock, NTP in production): clamp, never drain.
	elapsed := now.Sub(b.refilled)
	if elapsed < 0 {
		elapsed = 0
	}
	b.refilled = now
	b.tokens += rate * elapsed.Seconds()
	if b.tokens > burst {
		b.tokens = burst
	}

	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / rate
	return false, time.Duration(need * float64(time.Second))
}

func (l *Limiter) weight(tenant string) float64 {
	if w, ok := l.cfg.Weights[tenant]; ok && w > 0 {
		return w
	}
	return l.cfg.DefaultWeight
}

// Tokens reports the tenant's current balance without spending; for tests and
// introspection.
func (l *Limiter) Tokens(tenant string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b := l.tenants[tenant]; b != nil {
		return b.tokens
	}
	return 0
}
