// Package qos is the per-tenant quality-of-service layer of the query
// service: token-bucket admission over a shared global capacity, a
// weighted-fair admission queue for the evaluation slots, client backoff, and
// the small measurement pieces (queue-wait histograms, cold-latency quantile
// tracking) the shed ladder decides with.
//
// The paper makes one evaluation over h uncertain mappings cheap; the server
// layer amortizes evaluations across requests.  What neither guards is the
// boundary between *users*: a single hot tenant draining the evaluation slots
// starves every other client, and overload turns into indiscriminate 429s.
// This package isolates tenants along three rungs:
//
//   - Limiter: per-tenant token buckets splitting one global rate in
//     proportion to tenant weight, rebalancing as tenants go idle or active.
//     A flooding tenant exhausts its own share and is rejected with an exact
//     Retry-After; compliant tenants keep theirs.
//   - FairQueue: the evaluation slots behind the buckets.  Backlogged
//     requests are granted in weighted-fair order (start-time-fair virtual
//     tags), so interactive traffic overtakes batch without starving it and
//     queue wait is measured, not inferred.
//   - Shedding signals: callers combine the bucket's retry hint, the queue's
//     saturation error and LatencyTracker's cold-latency median to reject
//     doomed work early and honestly instead of burning slots on it.
//
// Everything time-dependent reads an injected Clock, so the entire ladder is
// testable with FakeClock — no sleeps, no wall-clock assertions.
package qos

import "time"

// Clock is the time source of the QoS subsystem.  Production code uses
// Wall(); tests inject a FakeClock and advance it explicitly, which makes
// token refill, queue timeouts and measured waits exactly reproducible.
type Clock interface {
	Now() time.Time
	// NewTimer returns a timer that fires once after d.  Implementations with
	// a manual clock fire it from Advance, never from the wall.
	NewTimer(d time.Duration) Timer
}

// Timer is the clock-owned variant of time.Timer.
type Timer interface {
	// C returns the channel the firing is delivered on.
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the timer had not yet fired.
	Stop() bool
}

// Wall returns the real-time clock.
func Wall() Clock { return wallClock{} }

type wallClock struct{}

func (wallClock) Now() time.Time                 { return time.Now() }
func (wallClock) NewTimer(d time.Duration) Timer { return wallTimer{time.NewTimer(d)} }

type wallTimer struct{ t *time.Timer }

func (t wallTimer) C() <-chan time.Time { return t.t.C }
func (t wallTimer) Stop() bool          { return t.t.Stop() }
