package qos

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitDepth polls until the queue's backlog reaches n; the polling sleep is
// synchronisation only, never an assertion about elapsed time.
func waitDepth(t *testing.T, q *FairQueue, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for q.Depth() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, q.Depth())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFairQueueImmediateGrant(t *testing.T) {
	q := NewFairQueue(QueueConfig{Slots: 2, Clock: NewFakeClock()})
	for i := 0; i < 2; i++ {
		wait, err := q.Acquire(context.Background(), "a", 1, 0)
		if err != nil || wait != 0 {
			t.Fatalf("free-slot acquire %d: wait=%v err=%v", i, wait, err)
		}
	}
	// Third acquire with a zero budget: saturated, immediately.
	if _, err := q.Acquire(context.Background(), "a", 1, 0); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated acquire returned %v, want ErrSaturated", err)
	}
	q.Release()
	if _, err := q.Acquire(context.Background(), "a", 1, 0); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestFairQueueWeightedOrder(t *testing.T) {
	clk := NewFakeClock()
	q := NewFairQueue(QueueConfig{Slots: 1, Clock: clk})
	if _, err := q.Acquire(context.Background(), "holder", 1, 0); err != nil {
		t.Fatal(err)
	}

	// Enqueue three batch (weight 1) waiters FIRST, then three interactive
	// (weight 4) ones.  Despite arriving later, the interactive tags
	// (0.25, 0.5, 0.75) all sort ahead of the first batch tag (1.0).
	grants := make(chan string, 6)
	enqueue := func(id, tenant string, weight float64) {
		go func() {
			if _, err := q.Acquire(context.Background(), tenant, weight, time.Hour); err != nil {
				t.Errorf("%s: %v", id, err)
			}
			grants <- id
			q.Release()
		}()
	}
	order := []struct {
		id     string
		weight float64
	}{
		{"b1", 1}, {"b2", 1}, {"b3", 1},
		{"i1", 4}, {"i2", 4}, {"i3", 4},
	}
	for n, w := range order {
		enqueue(w.id, w.id[:1], w.weight) // tenants "b" and "i"
		waitDepth(t, q, n+1)              // fix arrival order deterministically
	}

	q.Release() // the holder leaves; grants chain through the Releases
	want := []string{"i1", "i2", "i3", "b1", "b2", "b3"}
	for _, expect := range want {
		got := <-grants
		if got != expect {
			t.Fatalf("grant order: got %s, want %s", got, expect)
		}
	}
}

func TestFairQueueMeasuresWait(t *testing.T) {
	clk := NewFakeClock()
	q := NewFairQueue(QueueConfig{Slots: 1, Clock: clk})
	if _, err := q.Acquire(context.Background(), "holder", 1, 0); err != nil {
		t.Fatal(err)
	}

	type result struct {
		wait time.Duration
		err  error
	}
	done := make(chan result, 1)
	go func() {
		wait, err := q.Acquire(context.Background(), "a", 1, time.Hour)
		done <- result{wait, err}
	}()
	waitDepth(t, q, 1)

	clk.Advance(7 * time.Millisecond)
	q.Release()
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.wait != 7*time.Millisecond {
		t.Fatalf("measured wait = %v, want exactly 7ms (fake clock)", r.wait)
	}
}

func TestFairQueueTimeout(t *testing.T) {
	clk := NewFakeClock()
	q := NewFairQueue(QueueConfig{Slots: 1, Clock: clk})
	if _, err := q.Acquire(context.Background(), "holder", 1, 0); err != nil {
		t.Fatal(err)
	}

	type result struct {
		wait time.Duration
		err  error
	}
	done := make(chan result, 1)
	go func() {
		wait, err := q.Acquire(context.Background(), "a", 1, 50*time.Millisecond)
		done <- result{wait, err}
	}()
	waitDepth(t, q, 1)

	clk.Advance(50 * time.Millisecond)
	r := <-done
	if !errors.Is(r.err, ErrSaturated) {
		t.Fatalf("timed-out acquire returned %v, want ErrSaturated", r.err)
	}
	if r.wait != 50*time.Millisecond {
		t.Fatalf("timed-out wait = %v, want the full 50ms budget", r.wait)
	}
	if q.Depth() != 0 {
		t.Fatalf("timed-out waiter left in queue (depth %d)", q.Depth())
	}

	// The slot is still held by the holder; releasing it must not grant a ghost.
	q.Release()
	if _, err := q.Acquire(context.Background(), "a", 1, 0); err != nil {
		t.Fatalf("acquire after timeout cleanup: %v", err)
	}
}

func TestFairQueueContextCancel(t *testing.T) {
	clk := NewFakeClock()
	q := NewFairQueue(QueueConfig{Slots: 1, Clock: clk})
	if _, err := q.Acquire(context.Background(), "holder", 1, 0); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, "a", 1, time.Hour)
		done <- err
	}()
	waitDepth(t, q, 1)

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	if q.Depth() != 0 {
		t.Fatalf("cancelled waiter left in queue (depth %d)", q.Depth())
	}
}

func TestFakeClockTimers(t *testing.T) {
	clk := NewFakeClock()
	tm := clk.NewTimer(10 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	clk.Advance(9 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired early")
	default:
	}
	clk.Advance(time.Millisecond)
	select {
	case <-tm.C():
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if tm.Stop() {
		t.Fatal("Stop reported an already-fired timer as active")
	}

	tm2 := clk.NewTimer(time.Hour)
	if !tm2.Stop() {
		t.Fatal("Stop reported a pending timer as inactive")
	}
	clk.Advance(2 * time.Hour)
	select {
	case <-tm2.C():
		t.Fatal("stopped timer fired")
	default:
	}

	// An immediate timer fires without any Advance.
	tm3 := clk.NewTimer(0)
	select {
	case <-tm3.C():
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}

	// ClockOrWall is nil-safe at both levels.
	var f *Faults
	if f.ClockOrWall() == nil {
		t.Fatal("nil Faults returned nil clock")
	}
	if (&Faults{}).ClockOrWall() == nil {
		t.Fatal("empty Faults returned nil clock")
	}
	if got := (&Faults{Clock: clk}).ClockOrWall(); got != Clock(clk) {
		t.Fatal("injected clock not returned")
	}
}
