package qos

import (
	"sort"
	"sync"
	"time"
)

const (
	// latencyWindow is how many recent observations a tracker keeps.
	latencyWindow = 64
	// latencyMinSamples is how many observations P50 needs before it reports:
	// shedding on one or two early outliers would reject real work on noise.
	latencyMinSamples = 8
)

// LatencyTracker keeps a sliding window of recent cold-evaluation durations
// for one scenario and reports their median.  The median is the shed ladder's
// crystal ball: a request whose remaining deadline is below the p50 cold
// latency is more likely than not to burn an evaluation slot and still time
// out, so the server rejects it before admission instead.
type LatencyTracker struct {
	mu      sync.Mutex
	samples [latencyWindow]time.Duration
	n       int // filled entries, saturates at latencyWindow
	next    int // ring write position
}

// Observe records one evaluation duration.  Non-positive durations are
// dropped — a skewed clock must not poison the estimate.
func (t *LatencyTracker) Observe(d time.Duration) {
	if d <= 0 {
		return
	}
	t.mu.Lock()
	t.samples[t.next] = d
	t.next = (t.next + 1) % latencyWindow
	if t.n < latencyWindow {
		t.n++
	}
	t.mu.Unlock()
}

// P50 returns the median of the window, and false until enough samples have
// accumulated for the estimate to be trustworthy.
func (t *LatencyTracker) P50() (time.Duration, bool) {
	t.mu.Lock()
	n := t.n
	if n < latencyMinSamples {
		t.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, t.samples[:n])
	t.mu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[n/2], true
}
