package qos

import (
	"testing"
	"time"
)

func TestLimiterSingleTenantGetsFullRate(t *testing.T) {
	clk := NewFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 5, Clock: clk})

	// A fresh bucket starts at its burst share: 5 admits, then empty.
	for i := 0; i < 5; i++ {
		if ok, _ := l.Admit("a"); !ok {
			t.Fatalf("admit %d rejected within burst", i)
		}
	}
	ok, retry := l.Admit("a")
	if ok {
		t.Fatal("admitted past the burst with no time elapsed")
	}
	// Empty bucket at 10 tokens/sec: the next token is exactly 100ms away.
	if retry != 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 100ms", retry)
	}

	// Refill at the full rate while alone: 1s restores the full burst.
	clk.Advance(time.Second)
	for i := 0; i < 5; i++ {
		if ok, _ := l.Admit("a"); !ok {
			t.Fatalf("post-refill admit %d rejected", i)
		}
	}
}

func TestLimiterActiveTenantsSplitTheRate(t *testing.T) {
	clk := NewFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 2, IdleAfter: 10 * time.Second, Clock: clk})

	// Both tenants present: each holds half the rate.
	drain := func(tenant string) {
		for {
			if ok, _ := l.Admit(tenant); !ok {
				return
			}
		}
	}
	drain("a")
	drain("b")

	// With two active tenants at 5 tokens/sec each, 200ms accrues one token.
	clk.Advance(200 * time.Millisecond)
	if ok, _ := l.Admit("a"); !ok {
		t.Fatal("tenant a denied its half share")
	}
	if ok, _ := l.Admit("a"); ok {
		t.Fatal("tenant a got more than its half share")
	}
	if ok, _ := l.Admit("b"); !ok {
		t.Fatal("tenant b denied its half share")
	}

	// After b idles past IdleAfter, a's share rebalances to the full rate:
	// the same 200ms now accrues two tokens.
	drain("a")
	clk.Advance(11 * time.Second) // b idle; a's bucket caps at burst share
	drain("a")
	clk.Advance(200 * time.Millisecond)
	admitted := 0
	for {
		ok, _ := l.Admit("a")
		if !ok {
			break
		}
		admitted++
	}
	if admitted != 2 {
		t.Fatalf("sole active tenant accrued %d tokens over 200ms, want 2 (full 10/s rate)", admitted)
	}
}

func TestLimiterWeightsSkewTheSplit(t *testing.T) {
	clk := NewFakeClock()
	l := NewLimiter(LimiterConfig{
		Rate: 12, Burst: 3, Clock: clk,
		Weights: map[string]float64{"gold": 3},
	})
	for _, tenant := range []string{"gold", "bronze"} {
		for {
			if ok, _ := l.Admit(tenant); !ok {
				break
			}
		}
	}
	// gold w=3, bronze w=1: gold refills at 9/s, bronze at 3/s.
	clk.Advance(time.Second)
	count := func(tenant string) int {
		n := 0
		for {
			if ok, _ := l.Admit(tenant); !ok {
				return n
			}
			n++
		}
	}
	// Burst shares cap the accrual: gold 3×3/4=2.25, bronze capped up to 1.
	if g := count("gold"); g != 2 {
		t.Fatalf("gold admitted %d, want 2 (burst share 2.25)", g)
	}
	if b := count("bronze"); b != 1 {
		t.Fatalf("bronze admitted %d, want 1 (burst share floored at 1)", b)
	}
}

func TestLimiterToleratesClockSkew(t *testing.T) {
	clk := NewFakeClock()
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 1, Clock: clk})
	if ok, _ := l.Admit("a"); !ok {
		t.Fatal("first admit rejected")
	}
	// Jump the clock backwards a full minute: the bucket must neither panic
	// nor mint tokens, and a subsequent forward step refills normally.
	clk.Set(clk.Now().Add(-time.Minute))
	if ok, _ := l.Admit("a"); ok {
		t.Fatal("backwards clock skew minted a token")
	}
	clk.Advance(time.Minute + 100*time.Millisecond)
	if ok, _ := l.Admit("a"); !ok {
		t.Fatal("forward progress after skew did not refill")
	}
}

func TestLatencyTrackerMedian(t *testing.T) {
	var lt LatencyTracker
	if _, ok := lt.P50(); ok {
		t.Fatal("empty tracker reported a median")
	}
	for i := 1; i <= latencyMinSamples-1; i++ {
		lt.Observe(time.Duration(i) * time.Millisecond)
	}
	if _, ok := lt.P50(); ok {
		t.Fatal("tracker reported a median below the minimum sample count")
	}
	lt.Observe(latencyMinSamples * time.Millisecond)
	p50, ok := lt.P50()
	if !ok {
		t.Fatal("tracker withheld the median at the minimum sample count")
	}
	if p50 != 5*time.Millisecond {
		t.Fatalf("p50 = %v, want 5ms over 1..8ms", p50)
	}
	lt.Observe(-time.Second) // skew: dropped
	if got, _ := lt.P50(); got != p50 {
		t.Fatalf("negative observation shifted the median to %v", got)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(0)                    // bucket 0 (<= 0.25ms)
	h.Observe(7 * time.Millisecond) // <= 8ms
	h.Observe(-time.Second)         // skew: counted as zero
	h.Observe(10 * time.Second)     // overflow bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	// Cumulative: bucket 0 holds the two zeros, the 8ms bound holds three,
	// the final catch-all holds all four.
	if s.Counts[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2", s.Counts[0])
	}
	idx8 := -1
	for i, le := range s.LeMS {
		if le == 8 {
			idx8 = i
		}
	}
	if s.Counts[idx8] != 3 {
		t.Fatalf("<=8ms cumulative = %d, want 3", s.Counts[idx8])
	}
	if last := s.Counts[len(s.Counts)-1]; last != 4 {
		t.Fatalf("+Inf cumulative = %d, want 4", last)
	}
	if want := 7.0 + 10_000.0; s.SumMS != want {
		t.Fatalf("sum = %v ms, want %v", s.SumMS, want)
	}
}
