package qos

import (
	"sync/atomic"
	"time"
)

// histogramBoundsMS are the upper bounds (inclusive, milliseconds) of the
// queue-wait histogram buckets: exponential from a quarter millisecond —
// sub-bucket-one waits are "admitted instantly" — to two seconds, with a
// final catch-all.  Fixed bounds keep Observe lock-free and snapshots
// comparable across tenants and across runs.
var histogramBoundsMS = [...]float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// Histogram counts durations in fixed exponential millisecond buckets.  All
// fields are atomics; Observe never locks.
type Histogram struct {
	counts [len(histogramBoundsMS) + 1]atomic.Int64
	sumNS  atomic.Int64
	count  atomic.Int64
}

// Observe records one duration (negative durations count as zero — clock
// skew must not corrupt the distribution).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(histogramBoundsMS) && ms > histogramBoundsMS[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// HistogramSnapshot is the JSON form of a histogram: bucket i counts
// observations <= LeMS[i] (the final bucket, beyond the last bound, is
// +Inf and appears only in Counts).
type HistogramSnapshot struct {
	LeMS   []float64 `json:"le_ms"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	SumMS  float64   `json:"sum_ms"`
}

// Snapshot returns a point-in-time copy of the distribution.  Counts are
// cumulative per bucket in the Prometheus style: Counts[i] is the number of
// observations at or below LeMS[i], and the final element is the total.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		LeMS:   histogramBoundsMS[:],
		Counts: make([]int64, len(histogramBoundsMS)+1),
		Count:  h.count.Load(),
		SumMS:  float64(h.sumNS.Load()) / float64(time.Millisecond),
	}
	var cum int64
	for i := range s.Counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	return s
}
