package qos

import (
	"sync"
	"time"
)

// Faults is the deterministic fault-injection seam of the QoS subsystem.  It
// exists so slot stalls, slow evaluations and clock skew are testable without
// wall-clock flakiness: every field is a test-only hook, and production
// configurations leave the whole struct nil.  The hooks run synchronously on
// the request path, so a test that blocks inside one holds exactly the state
// (an admission slot, an evaluation turn) the scenario needs held.
type Faults struct {
	// Clock replaces the wall clock for every QoS time read: token refill,
	// queue timers, measured queue wait, cold-latency observation.  Inject a
	// FakeClock and advance (or skew) it explicitly.
	Clock Clock
	// SlotStall runs while the request holds an admission slot, before its
	// evaluation starts.  Blocking here simulates a stalled slot holder.
	SlotStall func(tenant string)
	// SlowEvaluation runs in place of the dead time of a long evaluation,
	// immediately before the engine is invoked.  Blocking (or advancing a
	// FakeClock) here simulates evaluations of any chosen duration.
	SlowEvaluation func(tenant string)
}

// ClockOrWall returns the injected clock, or the wall clock when the fault
// set (or its Clock) is absent — the nil-safe accessor callers use.
func (f *Faults) ClockOrWall() Clock {
	if f != nil && f.Clock != nil {
		return f.Clock
	}
	return Wall()
}

// FakeClock is a manually advanced Clock.  Now returns the same instant until
// Advance or Set moves it; timers fire only from Advance.  Set may move the
// clock backwards — that is the clock-skew fault, and every consumer in this
// package must tolerate it (refill clamps negative elapsed time to zero,
// trackers drop negative durations).
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

// NewFakeClock returns a fake clock at a fixed, arbitrary epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_700_000_000, 0)}
}

// Now returns the current fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and fires every timer whose deadline
// has been reached.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.fireLocked()
	c.mu.Unlock()
}

// Set jumps the clock to t, forwards or backwards.  Timers already armed keep
// their original deadlines: a backwards jump delays them, a forwards jump
// fires the ones it passes.
func (c *FakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.fireLocked()
	c.mu.Unlock()
}

func (c *FakeClock) fireLocked() {
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.deadline.After(c.now) {
			t.fire(c.now)
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

// NewTimer arms a timer d from the current fake instant.  A non-positive d
// fires immediately.
func (c *FakeClock) NewTimer(d time.Duration) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{deadline: c.now.Add(d), ch: make(chan time.Time, 1)}
	if !t.deadline.After(c.now) {
		t.fire(c.now)
	} else {
		c.timers = append(c.timers, t)
	}
	return t
}

type fakeTimer struct {
	mu       sync.Mutex
	deadline time.Time
	ch       chan time.Time
	fired    bool
	stopped  bool
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) fire(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired || t.stopped {
		return
	}
	t.fired = true
	t.ch <- now
}

func (t *fakeTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	active := !t.fired && !t.stopped
	t.stopped = true
	return active
}
