package datagen

import (
	"fmt"

	"github.com/probdb/urm/internal/schema"
)

// TargetName identifies one of the three purchase-order target schemas of the
// evaluation (provided by COMA++ in the paper).
type TargetName string

// The three target schemas of Section VIII-A.
const (
	TargetExcel   TargetName = "Excel"
	TargetNoris   TargetName = "Noris"
	TargetParagon TargetName = "Paragon"
)

// AllTargets lists the target schemas in the paper's order.
func AllTargets() []TargetName { return []TargetName{TargetExcel, TargetNoris, TargetParagon} }

// ParseTarget converts a name into a TargetName.
func ParseTarget(s string) (TargetName, error) {
	switch s {
	case "Excel", "excel":
		return TargetExcel, nil
	case "Noris", "noris":
		return TargetNoris, nil
	case "Paragon", "paragon":
		return TargetParagon, nil
	default:
		return "", fmt.Errorf("unknown target schema %q (want Excel, Noris or Paragon)", s)
	}
}

func buildTarget(name string, poAttrs, itemAttrs []string) *schema.Schema {
	s := schema.NewSchema(name)
	po := &schema.RelationSchema{Name: "PO"}
	for _, a := range poAttrs {
		po.Columns = append(po.Columns, schema.Column{Name: a, Type: schema.TypeString})
	}
	item := &schema.RelationSchema{Name: "Item"}
	for _, a := range itemAttrs {
		item.Columns = append(item.Columns, schema.Column{Name: a, Type: schema.TypeString})
	}
	s.MustAddRelation(po)
	s.MustAddRelation(item)
	return s
}

// TargetSchema returns the requested target schema.  After the XML-to-
// relational conversion the paper applies, each target schema consists of two
// relations, PurchaseOrder (PO) and Item; the total attribute counts match the
// paper: Excel 48, Noris 66, Paragon 69.
func TargetSchema(name TargetName) *schema.Schema {
	switch name {
	case TargetExcel:
		return buildTarget("Excel",
			[]string{ // 30 attributes
				"orderNum", "telephone", "priority", "invoiceTo", "company", "deliverToStreet",
				"deliverToCity", "deliverToZip", "orderDate", "status", "totalAmount", "currency",
				"contactName", "contactFax", "customerSegment", "nation", "region", "paymentTerms",
				"shipVia", "taxRate", "subTotal", "freight", "insurance", "remark",
				"approvedBy", "requestedBy", "department", "costCenter", "projectCode", "revision",
			},
			[]string{ // 18 attributes
				"itemNum", "orderNum", "quantity", "unitPrice", "description", "brand",
				"itemType", "size", "supplier", "supplierPhone", "discount", "tax",
				"shipDate", "availQty", "supplyCost", "lineNumber", "unitOfMeasure", "comment",
			})
	case TargetNoris:
		return buildTarget("Noris",
			[]string{ // 36 attributes
				"orderNum", "telephone", "invoiceTo", "deliverTo", "deliverToStreet", "deliverToCity",
				"deliverToCountry", "deliverToZip", "invoiceStreet", "invoiceCity", "invoiceCountry", "invoiceZip",
				"orderDate", "requiredDate", "promisedDate", "status", "total", "currency",
				"paymentMethod", "paymentDays", "salesPerson", "salesOffice", "customerId", "customerGroup",
				"shippingMethod", "shippingCost", "handlingFee", "taxAmount", "grandTotal", "notes",
				"buyerName", "buyerFax", "buyerEmail", "warehouse", "dock", "carrier",
			},
			[]string{ // 30 attributes
				"itemNum", "orderNum", "quantity", "unitPrice", "lineTotal", "description",
				"manufacturer", "model", "color", "weight", "length", "width",
				"height", "packaging", "leadTime", "warranty", "origin", "hsCode",
				"batchNumber", "serialNumber", "expiryDate", "storageClass", "hazardClass", "reorderLevel",
				"binLocation", "inspectionFlag", "qualityGrade", "returnPolicy", "discountCode", "lineNote",
			})
	case TargetParagon:
		return buildTarget("Paragon",
			[]string{ // 37 attributes
				"orderNum", "telephone", "billTo", "billToAddress", "billToCity", "billToZip",
				"shipTo", "shipToAddress", "shipToCity", "shipToZip", "shipToPhone", "invoiceTo",
				"orderDate", "dueDate", "closeDate", "status", "total", "currency",
				"terms", "fob", "incoterm", "buyer", "buyerPhone", "buyerDept",
				"approver", "approvalDate", "vendorId", "vendorContact", "vendorPhone", "contractId",
				"budgetCode", "glAccount", "costCentre", "priority", "channel", "source", "notes",
			},
			[]string{ // 32 attributes
				"itemNum", "orderNum", "quantity", "price", "extendedPrice", "description",
				"brand", "category", "subCategory", "sku", "upc", "supplier",
				"supplierItemNum", "uom", "packSize", "caseQty", "palletQty", "minOrderQty",
				"discount", "taxCode", "dutyRate", "countryOfOrigin", "shipDate", "receiveDate",
				"inspectionDate", "lotNumber", "shelfLife", "temperatureClass", "fragileFlag", "insuranceValue",
				"customsValue", "lineComment",
			})
	default:
		panic(fmt.Sprintf("datagen: unknown target schema %q", name))
	}
}

func corr(srcRel, srcAttr, tgtRel, tgtAttr string, score float64) schema.Correspondence {
	return schema.Correspondence{
		Source: schema.Attribute{Relation: srcRel, Name: srcAttr},
		Target: schema.Attribute{Relation: tgtRel, Name: tgtAttr},
		Score:  score,
	}
}

// Correspondences returns the scored correspondence set between the TPC-H
// source schema and the given target schema.  The sets are curated to have
// the same cardinality COMA++ reported in the paper — 34 for Excel, 18 for
// Noris and 31 for Paragon — and the same character: most target attributes
// have a single plausible source attribute while a handful (phones, names,
// addresses, keys, prices) have several competing candidates, which is what
// makes the derived mapping sets both numerous and highly overlapping.
func Correspondences(name TargetName) []schema.Correspondence {
	switch name {
	case TargetExcel:
		return []schema.Correspondence{
			// telephone: 3 candidates.
			corr("Customer", "c_phone", "PO", "telephone", 0.85),
			corr("Orders", "o_contactphone", "PO", "telephone", 0.82),
			corr("Supplier", "s_phone", "PO", "telephone", 0.55),
			// priority: 2 candidates.
			corr("Orders", "o_orderpriority", "PO", "priority", 0.80),
			corr("Orders", "o_shippriority", "PO", "priority", 0.74),
			// invoiceTo: 3 candidates.
			corr("Customer", "c_name", "PO", "invoiceTo", 0.70),
			corr("Orders", "o_contactname", "PO", "invoiceTo", 0.66),
			corr("Orders", "o_clerk", "PO", "invoiceTo", 0.50),
			// company: 3 candidates.
			corr("Customer", "c_mktsegment", "PO", "company", 0.62),
			corr("Customer", "c_name", "PO", "company", 0.58),
			corr("Supplier", "s_name", "PO", "company", 0.50),
			// deliverToStreet: 3 candidates.
			corr("Customer", "c_address", "PO", "deliverToStreet", 0.72),
			corr("Orders", "o_shipaddress", "PO", "deliverToStreet", 0.70),
			corr("Supplier", "s_address", "PO", "deliverToStreet", 0.45),
			// orderNum on PO: 2 candidates.
			corr("Orders", "o_orderkey", "PO", "orderNum", 0.88),
			corr("Lineitem", "l_orderkey", "PO", "orderNum", 0.60),
			// Unambiguous PO attributes.
			corr("Orders", "o_orderdate", "PO", "orderDate", 0.90),
			corr("Orders", "o_orderstatus", "PO", "status", 0.85),
			corr("Orders", "o_totalprice", "PO", "totalAmount", 0.80),
			corr("Nation", "n_name", "PO", "nation", 0.80),
			// itemNum: 3 candidates.
			corr("Part", "p_partkey", "Item", "itemNum", 0.80),
			corr("PartSupp", "ps_partkey", "Item", "itemNum", 0.70),
			corr("Lineitem", "l_partkey", "Item", "itemNum", 0.68),
			// orderNum on Item: 2 candidates.
			corr("Lineitem", "l_orderkey", "Item", "orderNum", 0.82),
			corr("Orders", "o_orderkey", "Item", "orderNum", 0.60),
			// quantity: 2 candidates.
			corr("Lineitem", "l_quantity", "Item", "quantity", 0.85),
			corr("PartSupp", "ps_availqty", "Item", "quantity", 0.60),
			// unitPrice: 3 candidates.
			corr("Part", "p_retailprice", "Item", "unitPrice", 0.75),
			corr("Lineitem", "l_extendedprice", "Item", "unitPrice", 0.70),
			corr("PartSupp", "ps_supplycost", "Item", "unitPrice", 0.50),
			// Unambiguous Item attributes.
			corr("Part", "p_name", "Item", "description", 0.60),
			corr("Part", "p_brand", "Item", "brand", 0.85),
			corr("Part", "p_type", "Item", "itemType", 0.80),
			corr("Supplier", "s_name", "Item", "supplier", 0.70),
		}
	case TargetNoris:
		return []schema.Correspondence{
			corr("Customer", "c_phone", "PO", "telephone", 0.85),
			corr("Orders", "o_contactphone", "PO", "telephone", 0.78),
			corr("Customer", "c_name", "PO", "invoiceTo", 0.70),
			corr("Orders", "o_contactname", "PO", "invoiceTo", 0.60),
			corr("Customer", "c_name", "PO", "deliverTo", 0.55),
			corr("Orders", "o_clerk", "PO", "deliverTo", 0.50),
			corr("Customer", "c_address", "PO", "deliverToStreet", 0.70),
			corr("Orders", "o_shipaddress", "PO", "deliverToStreet", 0.68),
			corr("Orders", "o_orderkey", "PO", "orderNum", 0.85),
			corr("Lineitem", "l_orderkey", "PO", "orderNum", 0.55),
			corr("Part", "p_partkey", "Item", "itemNum", 0.80),
			corr("Lineitem", "l_partkey", "Item", "itemNum", 0.65),
			corr("Part", "p_retailprice", "Item", "unitPrice", 0.72),
			corr("Lineitem", "l_extendedprice", "Item", "unitPrice", 0.66),
			corr("PartSupp", "ps_supplycost", "Item", "unitPrice", 0.50),
			corr("Lineitem", "l_orderkey", "Item", "orderNum", 0.80),
			corr("Orders", "o_orderkey", "Item", "orderNum", 0.58),
			corr("Lineitem", "l_quantity", "Item", "quantity", 0.80),
		}
	case TargetParagon:
		return []schema.Correspondence{
			corr("Customer", "c_name", "PO", "billTo", 0.72),
			corr("Orders", "o_contactname", "PO", "billTo", 0.60),
			corr("Orders", "o_shipaddress", "PO", "shipToAddress", 0.74),
			corr("Customer", "c_address", "PO", "shipToAddress", 0.68),
			corr("Supplier", "s_address", "PO", "shipToAddress", 0.50),
			corr("Orders", "o_contactphone", "PO", "shipToPhone", 0.78),
			corr("Customer", "c_phone", "PO", "shipToPhone", 0.70),
			corr("Customer", "c_mobile", "PO", "shipToPhone", 0.50),
			corr("Customer", "c_phone", "PO", "telephone", 0.84),
			corr("Orders", "o_contactphone", "PO", "telephone", 0.66),
			corr("Supplier", "s_phone", "PO", "telephone", 0.60),
			corr("Customer", "c_address", "PO", "billToAddress", 0.72),
			corr("Orders", "o_shipaddress", "PO", "billToAddress", 0.55),
			corr("Customer", "c_name", "PO", "invoiceTo", 0.68),
			corr("Orders", "o_clerk", "PO", "invoiceTo", 0.52),
			corr("Orders", "o_orderkey", "PO", "orderNum", 0.86),
			corr("Lineitem", "l_orderkey", "PO", "orderNum", 0.50),
			corr("Orders", "o_orderstatus", "PO", "status", 0.80),
			corr("Orders", "o_totalprice", "PO", "total", 0.78),
			corr("Part", "p_partkey", "Item", "itemNum", 0.80),
			corr("PartSupp", "ps_partkey", "Item", "itemNum", 0.66),
			corr("Lineitem", "l_partkey", "Item", "itemNum", 0.60),
			corr("Part", "p_retailprice", "Item", "price", 0.76),
			corr("Lineitem", "l_extendedprice", "Item", "price", 0.70),
			corr("PartSupp", "ps_supplycost", "Item", "price", 0.52),
			corr("Lineitem", "l_orderkey", "Item", "orderNum", 0.80),
			corr("Orders", "o_orderkey", "Item", "orderNum", 0.55),
			corr("Lineitem", "l_quantity", "Item", "quantity", 0.82),
			corr("PartSupp", "ps_availqty", "Item", "quantity", 0.60),
			corr("Part", "p_brand", "Item", "brand", 0.80),
			corr("Supplier", "s_name", "Item", "supplier", 0.70),
		}
	default:
		panic(fmt.Sprintf("datagen: unknown target schema %q", name))
	}
}
