package datagen

import (
	"fmt"
	"math"
	"sort"

	"github.com/probdb/urm/internal/engine"
)

// AppendStreamRelation is the source relation the append-stream workload
// grows.  Orders is the natural churn relation of a purchase-order scenario
// (new orders arrive continuously) and every Excel-family workload query
// reads it, so appended rows exercise the incremental-maintenance path of
// each maintained answer.
const AppendStreamRelation = "Orders"

// AppendStreamOptions controls the high-churn append workload: a
// deterministic stream of Orders rows whose attribute values follow a Zipf
// distribution over a small rank universe, modeling the skew of a live order
// feed (a few customers, clerks and contacts dominate).  The hottest rank
// plants the workload's magic constants, so a slice of the stream lands in
// the answers of the Table III selections and maintained answers actually
// change as the stream is applied.
type AppendStreamOptions struct {
	// Rows is the stream length.  Defaults to 100.
	Rows int
	// Seed makes the stream deterministic; 0 selects a fixed default.
	Seed uint64
	// Skew is the Zipf exponent s (weights 1/rank^s).  Defaults to 1.2.
	Skew float64
	// Ranks is the size of the rank universe values are drawn from.
	// Defaults to 100.
	Ranks int
	// StartKey is the first o_orderkey; keys ascend from it so appended
	// orders never collide with generated ones.  Defaults to 1000000.
	StartKey int64
}

func (o AppendStreamOptions) withDefaults() AppendStreamOptions {
	if o.Rows <= 0 {
		o.Rows = 100
	}
	if o.Seed == 0 {
		o.Seed = 97
	}
	if o.Skew <= 0 {
		o.Skew = 1.2
	}
	if o.Ranks <= 0 {
		o.Ranks = 100
	}
	if o.StartKey <= 0 {
		o.StartKey = 1000000
	}
	return o
}

// zipf draws ranks in [0, ranks) with probability proportional to
// 1/(rank+1)^s, by binary search over the normalized cumulative weights.
type zipf struct {
	cum []float64
	r   *rng
}

func newZipf(r *rng, ranks int, s float64) *zipf {
	cum := make([]float64, ranks)
	total := 0.0
	for i := range cum {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipf{cum: cum, r: r}
}

func (z *zipf) draw() int {
	u := z.r.float()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

// AppendStream generates the append workload: opts.Rows Orders tuples in
// arrival order, matching the 11-column Orders schema of SourceSchema.  The
// stream is a pure function of its options, so benchmark runs, property
// tests and the soak harness replay identical workloads.
func AppendStream(opts AppendStreamOptions) []engine.Tuple {
	opts = opts.withDefaults()
	r := newRNG(opts.Seed)
	z := newZipf(r, opts.Ranks, opts.Skew)
	rows := make([]engine.Tuple, opts.Rows)
	for i := range rows {
		rank := z.draw()
		hot := rank == 0
		name := fmt.Sprintf("%s %c.", firstNames[rank%len(firstNames)], rune('A'+rank%26))
		phone := fmt.Sprintf("%03d-%04d", 100+rank%900, 1000+(rank*37)%9000)
		addr := fmt.Sprintf("%d %s Road", rank+1, streetNames[rank%len(streetNames)])
		prio := int64(rank%5 + 1)
		if hot {
			name = HotName
			phone = HotPhone
			addr = HotAddress
			prio = HotPriority
		}
		rows[i] = engine.Tuple{
			engine.I(opts.StartKey + int64(i)),
			engine.I(int64(rank + 1)),
			engine.S(statusValues[rank%len(statusValues)]),
			engine.F(float64(r.intn(5000000)+10000) / 100),
			engine.S(fmt.Sprintf("1997-%02d-%02d", rank%12+1, rank%28+1)),
			engine.I(prio),
			engine.I(int64(rank%5 + 1)),
			engine.S(clerkNames[rank%len(clerkNames)]),
			engine.S(name),
			engine.S(phone),
			engine.S(addr),
		}
	}
	return rows
}

// Batches cuts the stream into batches of at most size rows — the unit one
// batched append (one WAL record, one fsync) carries.  size <= 0 yields one
// batch holding the whole stream.
func Batches(rows []engine.Tuple, size int) [][]engine.Tuple {
	if size <= 0 {
		if len(rows) == 0 {
			return nil
		}
		return [][]engine.Tuple{rows}
	}
	out := make([][]engine.Tuple, 0, (len(rows)+size-1)/size)
	for len(rows) > size {
		out = append(out, rows[:size:size])
		rows = rows[size:]
	}
	if len(rows) > 0 {
		out = append(out, rows)
	}
	return out
}
