// Package datagen builds the synthetic evaluation environment of Section VIII:
// a TPC-H-style purchase-order source schema with a deterministic data
// generator (substituting for the 100 MB dbgen instance), the three
// purchase-order target schemas Excel, Noris and Paragon with the attribute
// counts reported in the paper (48, 66 and 69), hand-curated scored
// correspondence sets of the same sizes COMA++ returned (34, 18 and 31), and
// the ten workload queries of Table III plus the parametric query families
// used by Figures 11(d) and 11(e).
package datagen

// rng is a small deterministic pseudo-random generator (splitmix64) so that
// generated instances are reproducible across runs and platforms without
// depending on math/rand's generator stability.
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

// next returns the next 64-bit value.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float returns a uniform float in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// chance reports true with probability p.
func (r *rng) chance(p float64) bool { return r.float() < p }

// pick returns a uniformly chosen element of the slice.
func (r *rng) pick(options []string) string {
	if len(options) == 0 {
		return ""
	}
	return options[r.intn(len(options))]
}
