package datagen

import (
	"testing"

	"github.com/probdb/urm/internal/engine"
)

// TestAppendStreamDeterministicAndSkewed pins the append-workload family: the
// stream is a pure function of its options, every tuple matches the Orders
// arity, order keys are sequential from StartKey, and the Zipf skew surfaces
// the generator's hot values often enough that maintained hot-constant
// queries actually change under the stream.
func TestAppendStreamDeterministicAndSkewed(t *testing.T) {
	opts := AppendStreamOptions{Rows: 500, Seed: 7, Skew: 1.2, Ranks: 100, StartKey: 5000}
	a := AppendStream(opts)
	b := AppendStream(opts)
	if len(a) != 500 {
		t.Fatalf("rows = %d, want 500", len(a))
	}
	arity := len(SourceSchema().Relation(AppendStreamRelation).Columns)
	hot := 0
	for i := range a {
		if len(a[i]) != arity {
			t.Fatalf("row %d arity %d, want %d", i, len(a[i]), arity)
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Fatalf("row %d col %d differs across identical-option runs: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
		if a[i][0].Kind != engine.KindInt || a[i][0].Int != 5000+int64(i) {
			t.Fatalf("row %d order key %v, want %d", i, a[i][0], 5000+int64(i))
		}
		if a[i][9].Str == HotPhone {
			hot++
		}
	}
	// Zipf with s=1.2 over 100 ranks puts rank 0 at ~28% of draws; anything
	// clearly above uniform (1%) proves the skew is wired through.
	if hot < 50 {
		t.Fatalf("hot-phone rows = %d of 500: the Zipf skew is not reaching the values", hot)
	}
	// A different seed must produce a different stream.
	c := AppendStream(AppendStreamOptions{Rows: 500, Seed: 8, Skew: 1.2, Ranks: 100, StartKey: 5000})
	same := true
	for i := range a {
		for j := range a[i] {
			if !a[i][j].Equal(c[i][j]) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical streams")
	}
}

// TestBatches pins the batch slicing the one-fsync-per-batch append path uses.
func TestBatches(t *testing.T) {
	rows := AppendStream(AppendStreamOptions{Rows: 23})
	got := Batches(rows, 5)
	if len(got) != 5 {
		t.Fatalf("batches = %d, want 5", len(got))
	}
	total := 0
	for i, b := range got {
		want := 5
		if i == len(got)-1 {
			want = 3
		}
		if len(b) != want {
			t.Fatalf("batch %d has %d rows, want %d", i, len(b), want)
		}
		total += len(b)
	}
	if total != 23 {
		t.Fatalf("batches cover %d rows, want 23", total)
	}
	if whole := Batches(rows, 0); len(whole) != 1 || len(whole[0]) != 23 {
		t.Fatalf("size 0 should yield one whole-stream batch, got %d batches", len(whole))
	}
	if empty := Batches(nil, 0); empty != nil {
		t.Fatalf("empty stream should yield no batches, got %v", empty)
	}
}
