package datagen

import (
	"fmt"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/schema"
)

// Magic constants used by the workload predicates.  The generator plants them
// in a correlated fashion ("hot" rows carry several of them at once) so that
// the conjunctive selections of Table III return non-empty answers.
const (
	HotPhone    = "335-1736"
	HotName     = "Mary"
	HotSegment  = "ABC"
	HotPriority = 2
	HotQuantity = 10
	HotItem     = 1
)

// SourceOptions controls the synthetic TPC-H-style instance.
type SourceOptions struct {
	// SizeMB scales the instance the way the paper reports database size; the
	// default 100 corresponds to the paper's full instance and maps to the row
	// counts below (scaled linearly).  The absolute byte size of our in-memory
	// instance is far smaller than the paper's on-disk footprint; only the
	// relative scaling matters for the experiments.
	SizeMB float64
	// Seed makes generation deterministic; 0 selects a fixed default.
	Seed uint64
	// HotFraction is the fraction of "hot" rows that carry the workload's
	// magic constants together.  Defaults to 0.08.
	HotFraction float64
}

func (o SourceOptions) withDefaults() SourceOptions {
	if o.SizeMB <= 0 {
		o.SizeMB = 100
	}
	if o.HotFraction <= 0 {
		o.HotFraction = 0.08
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Row counts of the full-size (SizeMB = 100) instance.
const (
	baseOrders   = 150
	baseLineitem = 450
	baseCustomer = 80
	basePart     = 100
	basePartSupp = 200
	baseSupplier = 40
	baseNation   = 25
	baseRegion   = 5
)

// SourceSchema returns the TPC-H-style source schema: 8 relations with 46
// attributes in total, mirroring the relational TPC-H schema the paper matched
// against the COMA++ purchase-order schemas.
func SourceSchema() *schema.Schema {
	s := schema.NewSchema("TPC-H")
	add := func(name string, cols ...schema.Column) {
		s.MustAddRelation(&schema.RelationSchema{Name: name, Columns: cols})
	}
	str := func(n string) schema.Column { return schema.Column{Name: n, Type: schema.TypeString} }
	num := func(n string) schema.Column { return schema.Column{Name: n, Type: schema.TypeInt} }
	flt := func(n string) schema.Column { return schema.Column{Name: n, Type: schema.TypeFloat} }

	add("Region", num("r_regionkey"), str("r_name"))
	add("Nation", num("n_nationkey"), str("n_name"), num("n_regionkey"))
	add("Supplier", num("s_suppkey"), str("s_name"), str("s_address"), str("s_phone"), num("s_nationkey"))
	add("Customer", num("c_custkey"), str("c_name"), str("c_address"), str("c_phone"), str("c_mobile"),
		num("c_nationkey"), str("c_mktsegment"))
	add("Part", num("p_partkey"), str("p_name"), str("p_brand"), str("p_type"), num("p_size"), flt("p_retailprice"))
	add("PartSupp", num("ps_partkey"), num("ps_suppkey"), num("ps_availqty"), flt("ps_supplycost"))
	add("Orders", num("o_orderkey"), num("o_custkey"), str("o_orderstatus"), flt("o_totalprice"),
		str("o_orderdate"), num("o_orderpriority"), num("o_shippriority"), str("o_clerk"),
		str("o_contactname"), str("o_contactphone"), str("o_shipaddress"))
	add("Lineitem", num("l_orderkey"), num("l_partkey"), num("l_suppkey"), num("l_quantity"),
		flt("l_extendedprice"), flt("l_discount"), flt("l_tax"), str("l_shipdate"))
	return s
}

var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames  = []string{"CHINA", "FRANCE", "GERMANY", "INDIA", "JAPAN", "KENYA", "PERU", "RUSSIA", "SPAIN", "BRAZIL", "CANADA", "EGYPT", "IRAN", "IRAQ", "JORDAN", "KOREA", "MOROCCO", "ROMANIA", "VIETNAM", "UK", "USA", "ALGERIA", "ARGENTINA", "ETHIOPIA", "MOZAMBIQUE"}
	firstNames   = []string{"Alice", "Bob", "Cindy", "David", "Ella", "Frank", "Grace", "Henry", "Ivy", "Jack", "Karen", "Liam", "Nina", "Oscar", "Paula", "Quinn", "Rita", "Sam", "Tina", "Victor"}
	streetNames  = []string{"Garden", "Harbour", "Jordan", "Kimberley", "Lockhart", "Morrison", "Nathan", "Queens", "Stanley", "Waterloo"}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	partAdjs     = []string{"steel", "brass", "copper", "nickel", "tin", "plastic", "rubber", "wooden"}
	partNouns    = []string{"bolt", "bracket", "casing", "gear", "hinge", "lever", "panel", "valve"}
	brandNames   = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31", "Brand#32", "Brand#41"}
	typeNames    = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	statusValues = []string{"O", "F", "P"}
	clerkNames   = []string{"Clerk#01", "Clerk#02", "Clerk#03", "Clerk#04", "Mary", "Clerk#06", "Clerk#07"}
)

// GenerateSource builds the synthetic source instance.
func GenerateSource(opts SourceOptions) *engine.Instance {
	opts = opts.withDefaults()
	scale := opts.SizeMB / 100.0
	r := newRNG(opts.Seed)
	db := engine.NewInstance(fmt.Sprintf("tpch-%.0fMB", opts.SizeMB))

	count := func(base int) int {
		n := int(float64(base)*scale + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	nRegion := len(regionNames)
	nNation := count(baseNation)
	if nNation > len(nationNames) {
		nNation = len(nationNames)
	}
	nSupplier := count(baseSupplier)
	nCustomer := count(baseCustomer)
	nPart := count(basePart)
	nPartSupp := count(basePartSupp)
	nOrders := count(baseOrders)
	nLineitem := count(baseLineitem)

	phone := func(hot bool) string {
		if hot {
			return HotPhone
		}
		return fmt.Sprintf("%03d-%04d", r.intn(900)+100, r.intn(9000)+1000)
	}
	person := func(hot bool) string {
		if hot {
			return HotName
		}
		return r.pick(firstNames) + " " + string(rune('A'+r.intn(26))) + "."
	}
	address := func(hot bool) string {
		if hot {
			return HotAddress
		}
		return fmt.Sprintf("%d %s Road", r.intn(200)+1, r.pick(streetNames))
	}
	segment := func(hot bool) string {
		if hot {
			return HotSegment
		}
		return r.pick(segments)
	}

	region := engine.NewRelation("Region", []string{"r_regionkey", "r_name"})
	for i := 0; i < nRegion; i++ {
		region.MustAppend(engine.Tuple{engine.I(int64(i + 1)), engine.S(regionNames[i])})
	}
	db.AddRelation(region)

	nation := engine.NewRelation("Nation", []string{"n_nationkey", "n_name", "n_regionkey"})
	for i := 0; i < nNation; i++ {
		nation.MustAppend(engine.Tuple{engine.I(int64(i + 1)), engine.S(nationNames[i]), engine.I(int64(i%nRegion + 1))})
	}
	db.AddRelation(nation)

	supplier := engine.NewRelation("Supplier", []string{"s_suppkey", "s_name", "s_address", "s_phone", "s_nationkey"})
	for i := 0; i < nSupplier; i++ {
		hot := r.chance(opts.HotFraction)
		supplier.MustAppend(engine.Tuple{
			engine.I(int64(i + 1)),
			engine.S("Supplier " + person(hot)),
			engine.S(address(hot)),
			engine.S(phone(hot)),
			engine.I(int64(r.intn(nNation) + 1)),
		})
	}
	db.AddRelation(supplier)

	customer := engine.NewRelation("Customer", []string{"c_custkey", "c_name", "c_address", "c_phone", "c_mobile", "c_nationkey", "c_mktsegment"})
	for i := 0; i < nCustomer; i++ {
		hot := r.chance(opts.HotFraction)
		customer.MustAppend(engine.Tuple{
			engine.I(int64(i + 1)),
			engine.S(person(hot)),
			engine.S(address(hot)),
			engine.S(phone(hot)),
			engine.S(phone(r.chance(opts.HotFraction / 2))),
			engine.I(int64(r.intn(nNation) + 1)),
			engine.S(segment(hot)),
		})
	}
	db.AddRelation(customer)

	part := engine.NewRelation("Part", []string{"p_partkey", "p_name", "p_brand", "p_type", "p_size", "p_retailprice"})
	for i := 0; i < nPart; i++ {
		part.MustAppend(engine.Tuple{
			engine.I(int64(i + 1)),
			engine.S(r.pick(partAdjs) + " " + r.pick(partNouns)),
			engine.S(r.pick(brandNames)),
			engine.S(r.pick(typeNames)),
			engine.I(int64(r.intn(50) + 1)),
			engine.F(float64(r.intn(90000)+1000) / 100),
		})
	}
	db.AddRelation(part)

	partsupp := engine.NewRelation("PartSupp", []string{"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"})
	for i := 0; i < nPartSupp; i++ {
		qty := int64(r.intn(500) + 1)
		if r.chance(0.05) {
			qty = HotQuantity
		}
		partsupp.MustAppend(engine.Tuple{
			engine.I(int64(i%nPart + 1)),
			engine.I(int64(r.intn(nSupplier) + 1)),
			engine.I(qty),
			engine.F(float64(r.intn(50000)+500) / 100),
		})
	}
	db.AddRelation(partsupp)

	orders := engine.NewRelation("Orders", []string{"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
		"o_orderdate", "o_orderpriority", "o_shippriority", "o_clerk", "o_contactname", "o_contactphone", "o_shipaddress"})
	for i := 0; i < nOrders; i++ {
		hot := r.chance(opts.HotFraction)
		prio := int64(r.intn(5) + 1)
		if hot {
			prio = HotPriority
		}
		orders.MustAppend(engine.Tuple{
			engine.I(int64(i + 1)),
			engine.I(int64(r.intn(nCustomer) + 1)),
			engine.S(r.pick(statusValues)),
			engine.F(float64(r.intn(5000000)+10000) / 100),
			engine.S(fmt.Sprintf("1996-%02d-%02d", r.intn(12)+1, r.intn(28)+1)),
			engine.I(prio),
			engine.I(int64(r.intn(5) + 1)),
			engine.S(r.pick(clerkNames)),
			engine.S(person(hot)),
			engine.S(phone(hot)),
			engine.S(address(hot)),
		})
	}
	db.AddRelation(orders)

	lineitem := engine.NewRelation("Lineitem", []string{"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_shipdate"})
	for i := 0; i < nLineitem; i++ {
		qty := int64(r.intn(50) + 1)
		if r.chance(0.12) {
			qty = HotQuantity
		}
		lineitem.MustAppend(engine.Tuple{
			engine.I(int64(r.intn(nOrders) + 1)),
			engine.I(int64(r.intn(nPart) + 1)),
			engine.I(int64(r.intn(nSupplier) + 1)),
			engine.I(qty),
			engine.F(float64(r.intn(900000)+1000) / 100),
			engine.F(float64(r.intn(10)) / 100),
			engine.F(float64(r.intn(8)) / 100),
			engine.S(fmt.Sprintf("1996-%02d-%02d", r.intn(12)+1, r.intn(28)+1)),
		})
	}
	db.AddRelation(lineitem)

	return db
}
