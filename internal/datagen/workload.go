package datagen

import (
	"fmt"
	"strings"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/match"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// HotAddress is the exact street value planted on hot rows; the workload's
// address predicates select it.
const HotAddress = "1 Central Road"

// Dataset bundles everything one experiment needs: the source schema and
// instance, a target schema, its correspondences and the derived possible
// mappings.
type Dataset struct {
	TargetName TargetName
	Source     *schema.Schema
	Target     *schema.Schema
	DB         *engine.Instance
	Matching   *schema.Matching
}

// DatasetOptions configures NewDataset.
type DatasetOptions struct {
	// Target selects the target schema (default Excel, the paper's default).
	Target TargetName
	// NumMappings is h, the number of possible mappings (default 100).
	NumMappings int
	// SizeMB scales the source instance (default 100, the paper's full size).
	SizeMB float64
	// Seed drives the deterministic generator.
	Seed uint64
}

func (o DatasetOptions) withDefaults() DatasetOptions {
	if o.Target == "" {
		o.Target = TargetExcel
	}
	if o.NumMappings <= 0 {
		o.NumMappings = 100
	}
	if o.SizeMB <= 0 {
		o.SizeMB = 100
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// NewDataset generates the source instance, loads the target schema and
// correspondences, and derives the top-h possible mappings.
func NewDataset(opts DatasetOptions) (*Dataset, error) {
	opts = opts.withDefaults()
	if _, err := ParseTarget(string(opts.Target)); err != nil {
		return nil, err
	}
	src := SourceSchema()
	tgt := TargetSchema(opts.Target)
	corrs := Correspondences(opts.Target)
	mt := &schema.Matching{Source: src, Target: tgt, Correspondences: corrs}
	if err := mt.Validate(); err != nil {
		return nil, fmt.Errorf("datagen: correspondences for %s are inconsistent: %w", opts.Target, err)
	}
	maps, err := match.KBestMappings(corrs, match.KBestOptions{K: opts.NumMappings})
	if err != nil {
		return nil, fmt.Errorf("datagen: deriving mappings for %s: %w", opts.Target, err)
	}
	mt.Mappings = maps
	db := GenerateSource(SourceOptions{SizeMB: opts.SizeMB, Seed: opts.Seed})
	return &Dataset{
		TargetName: opts.Target,
		Source:     src,
		Target:     tgt,
		DB:         db,
		Matching:   mt,
	}, nil
}

// Mappings returns the dataset's possible mappings.
func (d *Dataset) Mappings() schema.MappingSet { return d.Matching.Mappings }

// MappingsPrefix returns the h highest-scored mappings with probabilities
// renormalised, which is how the experiments sweep the mapping-set size
// without regenerating assignments.
func (d *Dataset) MappingsPrefix(h int) schema.MappingSet {
	all := d.Matching.Mappings
	if h > len(all) {
		h = len(all)
	}
	prefix := all[:h].Clone()
	prefix.NormalizeProbabilities()
	return prefix
}

// NumWorkloadQueries is the number of queries in Table III.
const NumWorkloadQueries = 10

// QueryTarget returns the target schema a Table III query runs against:
// Q1–Q5 Excel, Q6–Q7 Noris, Q8–Q10 Paragon.
func QueryTarget(id int) (TargetName, error) {
	switch {
	case id >= 1 && id <= 5:
		return TargetExcel, nil
	case id >= 6 && id <= 7:
		return TargetNoris, nil
	case id >= 8 && id <= 10:
		return TargetParagon, nil
	default:
		return "", fmt.Errorf("workload query id %d out of range 1..%d", id, NumWorkloadQueries)
	}
}

// workloadText returns the SQL text of the Table III queries, adapted to the
// synthetic instance: the selection constants are the generator's hot values,
// and every query carries an explicit projection so that answers are
// well-defined value tuples (the paper leaves some projections implicit).
func workloadText(id int) (string, error) {
	switch id {
	case 1:
		return fmt.Sprintf("SELECT orderNum FROM PO WHERE telephone = '%s' AND priority = %d AND invoiceTo = '%s'",
			HotPhone, HotPriority, HotName), nil
	case 2:
		return fmt.Sprintf("SELECT PO.orderNum FROM PO, Item WHERE quantity = %d AND itemNum = %d",
			HotQuantity, HotItem), nil
	case 3:
		return fmt.Sprintf("SELECT PO.orderNum FROM PO, Item Item1, Item Item2 "+
			"WHERE PO.orderNum = Item1.orderNum AND PO.telephone = '%s' AND Item1.itemNum = %d AND Item1.orderNum = Item2.orderNum",
			HotPhone, HotItem), nil
	case 4:
		return fmt.Sprintf("SELECT PO1.orderNum FROM PO PO1, PO PO2, Item Item1, Item Item2 "+
			"WHERE PO1.orderNum = PO2.orderNum AND Item1.orderNum = Item2.orderNum AND Item1.itemNum = %d",
			HotItem), nil
	case 5:
		return fmt.Sprintf("SELECT COUNT(*) FROM PO WHERE telephone = '%s' AND company = '%s' AND invoiceTo = '%s' AND deliverToStreet = '%s'",
			HotPhone, HotSegment, HotName, HotAddress), nil
	case 6:
		return fmt.Sprintf("SELECT orderNum FROM PO WHERE telephone = '%s' AND invoiceTo = '%s' AND deliverToStreet = '%s'",
			HotPhone, HotName, HotAddress), nil
	case 7:
		return fmt.Sprintf("SELECT itemNum, unitPrice FROM PO, Item WHERE PO.orderNum = %d AND deliverTo = '%s' AND deliverToStreet = '%s'",
			HotItem, HotName, HotAddress), nil
	case 8:
		return fmt.Sprintf("SELECT orderNum FROM PO WHERE billTo = '%s' AND shipToAddress = '%s' AND shipToPhone = '%s'",
			HotName, HotAddress, HotPhone), nil
	case 9:
		return fmt.Sprintf("SELECT SUM(price) FROM PO, Item WHERE telephone = '%s' AND billToAddress = '%s' AND itemNum = %d",
			HotPhone, HotAddress, HotItem), nil
	case 10:
		return fmt.Sprintf("SELECT COUNT(*) FROM PO, Item WHERE invoiceTo = '%s' AND billToAddress = '%s'",
			HotName, HotAddress), nil
	default:
		return "", fmt.Errorf("workload query id %d out of range 1..%d", id, NumWorkloadQueries)
	}
}

// WorkloadQuery builds the Table III query with the given id (1–10) against
// its target schema.
func WorkloadQuery(id int) (*query.Query, error) {
	tgtName, err := QueryTarget(id)
	if err != nil {
		return nil, err
	}
	text, err := workloadText(id)
	if err != nil {
		return nil, err
	}
	q, err := query.Parse(fmt.Sprintf("Q%d", id), TargetSchema(tgtName), text)
	if err != nil {
		return nil, fmt.Errorf("workload Q%d: %w", id, err)
	}
	return q, nil
}

// MustWorkloadQuery is WorkloadQuery that panics on error.
func MustWorkloadQuery(id int) *query.Query {
	q, err := WorkloadQuery(id)
	if err != nil {
		panic(err)
	}
	return q
}

// selectionChain lists the Excel PO attributes (and hot constants) used by the
// Figure 11(d) experiment, which varies the number of selection operators.
var selectionChain = []struct {
	attr  string
	value string
	isInt bool
}{
	{"telephone", HotPhone, false},
	{"priority", fmt.Sprintf("%d", HotPriority), true},
	{"invoiceTo", HotName, false},
	{"company", HotSegment, false},
	{"deliverToStreet", HotAddress, false},
}

// SelectionChainQuery builds the Figure 11(d) query with n selection operators
// (1 ≤ n ≤ 5) over the Excel PO relation.
func SelectionChainQuery(n int) (*query.Query, error) {
	if n < 1 || n > len(selectionChain) {
		return nil, fmt.Errorf("selection chain supports 1..%d operators, got %d", len(selectionChain), n)
	}
	var conds []string
	for i := 0; i < n; i++ {
		c := selectionChain[i]
		if c.isInt {
			conds = append(conds, fmt.Sprintf("%s = %s", c.attr, c.value))
		} else {
			conds = append(conds, fmt.Sprintf("%s = '%s'", c.attr, c.value))
		}
	}
	text := "SELECT orderNum FROM PO WHERE " + strings.Join(conds, " AND ")
	return query.Parse(fmt.Sprintf("sel%d", n), TargetSchema(TargetExcel), text)
}

// SelfJoinQuery builds the Figure 11(e) query with p Cartesian-product
// operators (1 ≤ p ≤ 3): p+1 occurrences of the Excel PO relation chained on
// orderNum, with one selective predicate on the first occurrence.
func SelfJoinQuery(products int) (*query.Query, error) {
	if products < 1 || products > 3 {
		return nil, fmt.Errorf("self-join query supports 1..3 products, got %d", products)
	}
	n := products + 1
	var from []string
	for i := 1; i <= n; i++ {
		from = append(from, fmt.Sprintf("PO PO%d", i))
	}
	conds := []string{fmt.Sprintf("PO1.telephone = '%s'", HotPhone)}
	for i := 1; i < n; i++ {
		conds = append(conds, fmt.Sprintf("PO%d.orderNum = PO%d.orderNum", i, i+1))
	}
	text := "SELECT PO1.orderNum FROM " + strings.Join(from, ", ") + " WHERE " + strings.Join(conds, " AND ")
	return query.Parse(fmt.Sprintf("join%d", products), TargetSchema(TargetExcel), text)
}
