package datagen

import (
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

func TestSourceSchemaShape(t *testing.T) {
	s := SourceSchema()
	if len(s.Relations) != 8 {
		t.Errorf("relations = %d, want 8", len(s.Relations))
	}
	if got := s.NumAttributes(); got != 46 {
		t.Errorf("attributes = %d, want 46 (paper's TPC-H schema)", got)
	}
}

func TestTargetSchemaShapes(t *testing.T) {
	want := map[TargetName]int{TargetExcel: 48, TargetNoris: 66, TargetParagon: 69}
	for name, attrs := range want {
		s := TargetSchema(name)
		if got := s.NumAttributes(); got != attrs {
			t.Errorf("%s attributes = %d, want %d", name, got, attrs)
		}
		if s.Relation("PO") == nil || s.Relation("Item") == nil {
			t.Errorf("%s must expose PO and Item relations", name)
		}
	}
	if len(AllTargets()) != 3 {
		t.Error("AllTargets should list 3 schemas")
	}
	for _, name := range []string{"Excel", "noris", "Paragon"} {
		if _, err := ParseTarget(name); err != nil {
			t.Errorf("ParseTarget(%q): %v", name, err)
		}
	}
	if _, err := ParseTarget("nope"); err == nil {
		t.Error("ParseTarget(nope) should error")
	}
}

func TestCorrespondenceCounts(t *testing.T) {
	// The paper reports COMA++ returning 34, 18 and 31 correspondences.
	want := map[TargetName]int{TargetExcel: 34, TargetNoris: 18, TargetParagon: 31}
	src := SourceSchema()
	for name, count := range want {
		corrs := Correspondences(name)
		if len(corrs) != count {
			t.Errorf("%s correspondences = %d, want %d", name, len(corrs), count)
		}
		tgt := TargetSchema(name)
		for _, c := range corrs {
			if !src.HasAttribute(c.Source) {
				t.Errorf("%s: source attribute %v not in TPC-H schema", name, c.Source)
			}
			if !tgt.HasAttribute(c.Target) {
				t.Errorf("%s: target attribute %v not in target schema", name, c.Target)
			}
			if c.Score <= 0 || c.Score > 1 {
				t.Errorf("%s: score %g out of range for %v", name, c.Score, c)
			}
		}
	}
}

func TestGenerateSourceDeterministicAndScaled(t *testing.T) {
	a := GenerateSource(SourceOptions{SizeMB: 40, Seed: 7})
	b := GenerateSource(SourceOptions{SizeMB: 40, Seed: 7})
	if a.NumRows() != b.NumRows() {
		t.Errorf("same seed produced different sizes: %d vs %d", a.NumRows(), b.NumRows())
	}
	ra := a.Relation("Orders").Rows[0]
	rb := b.Relation("Orders").Rows[0]
	if !ra.Equal(rb) {
		t.Error("same seed produced different rows")
	}
	small := GenerateSource(SourceOptions{SizeMB: 20})
	large := GenerateSource(SourceOptions{SizeMB: 100})
	if small.NumRows() >= large.NumRows() {
		t.Errorf("20MB instance (%d rows) should be smaller than 100MB (%d rows)", small.NumRows(), large.NumRows())
	}
	for _, rel := range []string{"Region", "Nation", "Supplier", "Customer", "Part", "PartSupp", "Orders", "Lineitem"} {
		if large.Relation(rel) == nil || large.Relation(rel).NumRows() == 0 {
			t.Errorf("relation %s missing or empty", rel)
		}
	}
	// Hot values appear in the columns the workload predicates probe.
	hotCount := func(db *engine.Instance, rel, col, val string) int {
		r := db.Relation(rel)
		idx := r.ColumnIndex(col)
		n := 0
		for _, row := range r.Rows {
			if row[idx].Equal(engine.S(val)) {
				n++
			}
		}
		return n
	}
	if hotCount(large, "Customer", "c_phone", HotPhone) == 0 {
		t.Error("no hot phone values in Customer")
	}
	if hotCount(large, "Orders", "o_contactname", HotName) == 0 {
		t.Error("no hot names in Orders")
	}
	if hotCount(large, "Customer", "c_address", HotAddress) == 0 {
		t.Error("no hot addresses in Customer")
	}
}

func TestNewDatasetDerivesMappings(t *testing.T) {
	for _, tgt := range AllTargets() {
		ds, err := NewDataset(DatasetOptions{Target: tgt, NumMappings: 30, SizeMB: 10})
		if err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		if err := ds.Matching.Validate(); err != nil {
			t.Errorf("%s: matching invalid: %v", tgt, err)
		}
		if len(ds.Mappings()) < 10 {
			t.Errorf("%s: only %d mappings derived", tgt, len(ds.Mappings()))
		}
		// The mappings must overlap heavily (the property Figure 9 reports:
		// o-ratio between 68%% and 79%%).
		if r := ds.Mappings().ORatio(); r < 0.5 {
			t.Errorf("%s: o-ratio = %.2f, expected high overlap", tgt, r)
		}
		// Prefixes renormalise.
		p := ds.MappingsPrefix(5)
		if len(p) != 5 {
			t.Errorf("%s: prefix length = %d", tgt, len(p))
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: prefix does not validate: %v", tgt, err)
		}
		if got := ds.MappingsPrefix(10_000); len(got) != len(ds.Mappings()) {
			t.Errorf("%s: oversized prefix should clamp", tgt)
		}
	}
	if _, err := NewDataset(DatasetOptions{Target: TargetName("bogus")}); err == nil {
		t.Error("unknown target schema should be rejected")
	}
}

func TestWorkloadQueriesParseAndValidate(t *testing.T) {
	for id := 1; id <= NumWorkloadQueries; id++ {
		q, err := WorkloadQuery(id)
		if err != nil {
			t.Fatalf("Q%d: %v", id, err)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("Q%d invalid: %v", id, err)
		}
		tgt, err := QueryTarget(id)
		if err != nil {
			t.Fatal(err)
		}
		if q.Target.Name != string(tgt) {
			t.Errorf("Q%d target = %s, want %s", id, q.Target.Name, tgt)
		}
		if q.NumOperators() == 0 {
			t.Errorf("Q%d has no operators", id)
		}
	}
	if _, err := WorkloadQuery(0); err == nil {
		t.Error("id 0 should error")
	}
	if _, err := WorkloadQuery(11); err == nil {
		t.Error("id 11 should error")
	}
	if _, err := QueryTarget(0); err == nil {
		t.Error("QueryTarget(0) should error")
	}
	// Q5 and Q10 are aggregates, Q9 is a SUM.
	if _, ok := MustWorkloadQuery(5).Root.(*query.Aggregate); !ok {
		t.Error("Q5 should be a COUNT query")
	}
	if agg, ok := MustWorkloadQuery(9).Root.(*query.Aggregate); !ok || agg.Func != engine.AggSum {
		t.Error("Q9 should be a SUM query")
	}
}

func TestParametricQueryFamilies(t *testing.T) {
	for n := 1; n <= 5; n++ {
		q, err := SelectionChainQuery(n)
		if err != nil {
			t.Fatalf("selection chain %d: %v", n, err)
		}
		// n selections plus the projection.
		if got := q.NumOperators(); got != n+1 {
			t.Errorf("selection chain %d has %d operators, want %d", n, got, n+1)
		}
	}
	if _, err := SelectionChainQuery(0); err == nil {
		t.Error("0 selections should error")
	}
	if _, err := SelectionChainQuery(6); err == nil {
		t.Error("6 selections should error")
	}
	for p := 1; p <= 3; p++ {
		q, err := SelfJoinQuery(p)
		if err != nil {
			t.Fatalf("self join %d: %v", p, err)
		}
		if got := len(q.Scans()); got != p+1 {
			t.Errorf("self join %d has %d relation occurrences, want %d", p, got, p+1)
		}
	}
	if _, err := SelfJoinQuery(0); err == nil {
		t.Error("0 products should error")
	}
	if _, err := SelfJoinQuery(4); err == nil {
		t.Error("4 products should error")
	}
}

// TestWorkloadEndToEnd runs every Table III query end to end on a small
// instance with every evaluation method and checks cross-method consistency.
func TestWorkloadEndToEnd(t *testing.T) {
	datasets := make(map[TargetName]*Dataset)
	for _, tgt := range AllTargets() {
		ds, err := NewDataset(DatasetOptions{Target: tgt, NumMappings: 12, SizeMB: 6})
		if err != nil {
			t.Fatal(err)
		}
		datasets[tgt] = ds
	}
	for id := 1; id <= NumWorkloadQueries; id++ {
		tgt, _ := QueryTarget(id)
		ds := datasets[tgt]
		q := MustWorkloadQuery(id)
		want, err := core.Basic(exec.Sequential(), q, ds.Mappings(), ds.DB)
		if err != nil {
			t.Fatalf("Q%d basic: %v", id, err)
		}
		for _, method := range []core.Method{core.MethodEBasic, core.MethodQSharing, core.MethodOSharing} {
			got, err := core.NewEvaluator(ds.DB, ds.Mappings()).Evaluate(q, core.Options{Method: method})
			if err != nil {
				t.Fatalf("Q%d %v: %v", id, method, err)
			}
			if len(got.Answers) != len(want.Answers) {
				t.Errorf("Q%d %v: %d answers, basic has %d", id, method, len(got.Answers), len(want.Answers))
				continue
			}
			for i := range want.Answers {
				if want.Answers[i].Tuple.Key() != got.Answers[i].Tuple.Key() {
					t.Errorf("Q%d %v: answer %d tuple mismatch", id, method, i)
					break
				}
				if diff := want.Answers[i].Prob - got.Answers[i].Prob; diff > 1e-9 || diff < -1e-9 {
					t.Errorf("Q%d %v: answer %d prob %g vs %g", id, method, i, got.Answers[i].Prob, want.Answers[i].Prob)
					break
				}
			}
		}
	}
}

// TestMappingCoverageOfWorkload checks that for every workload query at least
// one mapping covers all its target attributes, so answers are non-trivial.
func TestMappingCoverageOfWorkload(t *testing.T) {
	for id := 1; id <= NumWorkloadQueries; id++ {
		tgt, _ := QueryTarget(id)
		ds, err := NewDataset(DatasetOptions{Target: tgt, NumMappings: 20, SizeMB: 5})
		if err != nil {
			t.Fatal(err)
		}
		q := MustWorkloadQuery(id)
		attrs, err := q.TargetAttributes()
		if err != nil {
			t.Fatalf("Q%d: %v", id, err)
		}
		covered := 0
		for _, m := range ds.Mappings() {
			if m.Covers(attrs) {
				covered++
			}
		}
		if covered == 0 {
			t.Errorf("Q%d: no mapping covers its %d attributes", id, len(attrs))
		}
	}
}

var _ = schema.Attribute{} // keep the schema import referenced in helper-only builds
