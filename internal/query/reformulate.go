package query

import (
	"errors"
	"fmt"
	"sort"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/schema"
)

// ErrNotCovered is returned when a mapping lacks a correspondence for a target
// attribute the query needs.  Under such a mapping the query has no answer;
// the evaluation algorithms assign the mapping's probability to the empty
// result.
var ErrNotCovered = errors.New("mapping does not cover a target attribute required by the query")

// Reformulator translates target queries into source-query plans through a
// possible mapping (the query-reformulation step of Section III, with the
// per-operator rules of Section VI-B).
type Reformulator struct {
	Query *Query
}

// NewReformulator returns a reformulator for the query.
func NewReformulator(q *Query) *Reformulator { return &Reformulator{Query: q} }

// SourceAttribute resolves a target attribute reference to the source
// attribute assigned by the mapping.
func (r *Reformulator) SourceAttribute(m *schema.Mapping, ref AttrRef) (schema.Attribute, error) {
	target, err := r.Query.ResolveRef(ref)
	if err != nil {
		return schema.Attribute{}, err
	}
	src, ok := m.SourceFor(target)
	if !ok {
		return schema.Attribute{}, fmt.Errorf("%w: %s under mapping %s", ErrNotCovered, target, m.ID)
	}
	return src, nil
}

// SourceColumn returns the engine column name that the reference denotes in
// the reformulated plan: "<alias>.<source relation>.<source attribute>".
// The alias prefix keeps several occurrences of the same source relation
// (self-joins) distinguishable.
func (r *Reformulator) SourceColumn(m *schema.Mapping, ref AttrRef) (string, error) {
	qref, err := r.Query.qualifyRef(ref)
	if err != nil {
		return "", err
	}
	src, err := r.SourceAttribute(m, qref)
	if err != nil {
		return "", err
	}
	return qref.Alias + "." + src.Relation + "." + src.Name, nil
}

// SourceRelationsForAlias returns the minimal set of source relations that
// cover, under the mapping, every target attribute the query references
// through the given relation occurrence.  The result is sorted for
// determinism.
func (r *Reformulator) SourceRelationsForAlias(m *schema.Mapping, alias string) ([]string, error) {
	attrNames, err := r.Query.AttributesForAlias(alias)
	if err != nil {
		return nil, err
	}
	relName := r.Query.Aliases()[alias]
	seen := make(map[string]bool)
	var rels []string
	for _, name := range attrNames {
		target := schema.Attribute{Relation: relName, Name: name}
		src, ok := m.SourceFor(target)
		if !ok {
			return nil, fmt.Errorf("%w: %s under mapping %s", ErrNotCovered, target, m.ID)
		}
		if !seen[src.Relation] {
			seen[src.Relation] = true
			rels = append(rels, src.Relation)
		}
	}
	if len(rels) == 0 {
		// The occurrence is never referenced by an attribute (e.g. COUNT(*)
		// over a bare relation): fall back to the source relations of every
		// correspondence the mapping has for the target relation.
		for _, c := range m.Correspondences {
			if c.Target.Relation == relName && !seen[c.Source.Relation] {
				seen[c.Source.Relation] = true
				rels = append(rels, c.Source.Relation)
			}
		}
		sort.Strings(rels)
		if len(rels) > 1 {
			rels = rels[:1]
		}
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("%w: relation %s under mapping %s", ErrNotCovered, relName, m.ID)
	}
	sort.Strings(rels)
	return rels, nil
}

// LeafPlan builds the source plan that replaces one target relation
// occurrence: the Cartesian product of the covering source relations, each
// scanned under an alias-qualified name.
func (r *Reformulator) LeafPlan(m *schema.Mapping, alias string) (engine.Plan, error) {
	rels, err := r.SourceRelationsForAlias(m, alias)
	if err != nil {
		return nil, err
	}
	var plan engine.Plan
	for _, rel := range rels {
		scan := &engine.ScanPlan{Relation: rel, Alias: alias + "." + rel}
		if plan == nil {
			plan = scan
		} else {
			plan = &engine.ProductPlan{Left: plan, Right: scan}
		}
	}
	return plan, nil
}

// Reformulate translates the whole target query into a source plan under the
// mapping.  It returns ErrNotCovered (wrapped) when the mapping cannot answer
// the query.
func (r *Reformulator) Reformulate(m *schema.Mapping) (engine.Plan, error) {
	return r.reformulateNode(r.Query.Root, m)
}

func (r *Reformulator) reformulateNode(n Node, m *schema.Mapping) (engine.Plan, error) {
	switch op := n.(type) {
	case *Scan:
		return r.LeafPlan(m, op.AliasName())
	case *Select:
		child, err := r.reformulateNode(op.Child, m)
		if err != nil {
			return nil, err
		}
		col, err := r.SourceColumn(m, op.Ref)
		if err != nil {
			return nil, err
		}
		return &engine.SelectPlan{
			Pred:  &engine.ConstPredicate{Column: col, Op: op.Op, Value: op.Value},
			Child: child,
		}, nil
	case *JoinSelect:
		child, err := r.reformulateNode(op.Child, m)
		if err != nil {
			return nil, err
		}
		left, err := r.SourceColumn(m, op.Left)
		if err != nil {
			return nil, err
		}
		right, err := r.SourceColumn(m, op.Right)
		if err != nil {
			return nil, err
		}
		return &engine.SelectPlan{
			Pred:  &engine.ColPredicate{Left: left, Op: op.Op, Right: right},
			Child: child,
		}, nil
	case *Project:
		child, err := r.reformulateNode(op.Child, m)
		if err != nil {
			return nil, err
		}
		cols := make([]string, len(op.Refs))
		for i, ref := range op.Refs {
			col, err := r.SourceColumn(m, ref)
			if err != nil {
				return nil, err
			}
			cols[i] = col
		}
		return &engine.ProjectPlan{Columns: cols, Child: child}, nil
	case *Product:
		left, err := r.reformulateNode(op.Left, m)
		if err != nil {
			return nil, err
		}
		right, err := r.reformulateNode(op.Right, m)
		if err != nil {
			return nil, err
		}
		return &engine.ProductPlan{Left: left, Right: right}, nil
	case *Aggregate:
		child, err := r.reformulateNode(op.Child, m)
		if err != nil {
			return nil, err
		}
		col := ""
		if op.Func != engine.AggCount && !op.Ref.IsZero() {
			c, err := r.SourceColumn(m, op.Ref)
			if err != nil {
				return nil, err
			}
			col = c
		}
		return &engine.AggregatePlan{Func: op.Func, Column: col, Child: child}, nil
	default:
		return nil, fmt.Errorf("reformulate: unsupported node type %T", n)
	}
}

// SourceSignature returns the canonical signature of the source query the
// mapping produces for this target query, or "" with ErrNotCovered when the
// mapping does not cover it.  e-basic clusters mappings by this signature.
func (r *Reformulator) SourceSignature(m *schema.Mapping) (string, error) {
	plan, err := r.Reformulate(m)
	if err != nil {
		return "", err
	}
	return plan.Signature(), nil
}
