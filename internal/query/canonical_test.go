package query_test

// The canonical-text contract of Query.SQL()/Fingerprint(), which the query
// service's answer cache is keyed by: rendering a parser-shaped query and
// re-parsing the text must rebuild an equal AST.  The test exercises the
// paper's full Table III workload plus randomized queries drawn from the
// grammar, including the literal spellings that historically collide
// (string-vs-int "5", integer-valued floats, negative numbers, -0.0).

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// assertRoundTrip renders q canonically, re-parses the text and requires a
// deeply equal AST (same node types, references, operators and literal kinds).
func assertRoundTrip(t *testing.T, q *query.Query) {
	t.Helper()
	text, err := q.SQL()
	if err != nil {
		t.Fatalf("%s: SQL() failed: %v (tree %s)", q.Name, err, q.Root)
	}
	back, err := query.Parse(q.Name, q.Target, text)
	if err != nil {
		t.Fatalf("%s: canonical text %q does not re-parse: %v", q.Name, text, err)
	}
	if !reflect.DeepEqual(q.Root, back.Root) {
		t.Fatalf("%s: round-trip changed the AST\n text: %s\n want: %s\n got:  %s",
			q.Name, text, q.Root, back.Root)
	}
	if again, err := back.SQL(); err != nil || again != text {
		t.Fatalf("%s: canonical text is not a fixpoint: %q -> %q (err %v)", q.Name, text, again, err)
	}
}

func TestCanonicalSQLRoundTripWorkload(t *testing.T) {
	for id := 1; id <= datagen.NumWorkloadQueries; id++ {
		q, err := datagen.WorkloadQuery(id)
		if err != nil {
			t.Fatal(err)
		}
		assertRoundTrip(t, q)
	}
	for n := 1; n <= 5; n++ {
		q, err := datagen.SelectionChainQuery(n)
		if err != nil {
			t.Fatal(err)
		}
		assertRoundTrip(t, q)
	}
	for p := 1; p <= 3; p++ {
		q, err := datagen.SelfJoinQuery(p)
		if err != nil {
			t.Fatal(err)
		}
		assertRoundTrip(t, q)
	}
}

// TestCanonicalSQLRoundTripRandom draws queries from the parser's grammar over
// the Excel target schema: random relation subsets with aliases, random
// constant and join conditions, random projection or aggregate.
func TestCanonicalSQLRoundTripRandom(t *testing.T) {
	target := datagen.TargetSchema(datagen.TargetExcel)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		q := randomQuery(t, rng, target, iter)
		assertRoundTrip(t, q)
	}
}

// TestFingerprintSeparatesLiteralKinds pins the collision the quoting rules
// exist for: the same constant spelled as a string, an int and a float must
// produce three distinct fingerprints.
func TestFingerprintSeparatesLiteralKinds(t *testing.T) {
	target := datagen.TargetSchema(datagen.TargetExcel)
	texts := []string{
		"SELECT orderNum FROM PO WHERE priority = '5'",
		"SELECT orderNum FROM PO WHERE priority = 5",
		"SELECT orderNum FROM PO WHERE priority = 5.0",
	}
	seen := make(map[string]string)
	for _, text := range texts {
		q, err := query.Parse("fp", target, text)
		if err != nil {
			t.Fatal(err)
		}
		fp := q.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %q and %q both render %q", prev, text, fp)
		}
		seen[fp] = text
	}
}

// TestSQLRejectsNonCanonicalShapes documents the fallback: trees the parser
// cannot produce have no SQL form, and Fingerprint degrades to the algebra
// rendering instead of failing.
func TestSQLRejectsNonCanonicalShapes(t *testing.T) {
	target := datagen.TargetSchema(datagen.TargetExcel)
	q := &query.Query{Name: "odd", Target: target, Root: &query.Product{
		Left: &query.Scan{Relation: "PO"},
		Right: &query.Select{
			Ref: query.Ref("", "itemNum"), Op: engine.OpEq, Value: engine.I(1),
			Child: &query.Scan{Relation: "Item"},
		},
	}}
	if _, err := q.SQL(); err == nil {
		t.Fatal("SQL() accepted a selection nested under a product")
	}
	if fp := q.Fingerprint(); fp == "" {
		t.Fatal("Fingerprint fell back to an empty string")
	}
	// The algebra fallback must stay injective across literal kinds too:
	// an int and an integer-valued float in the nested selection must not
	// share a fingerprint.
	alt := &query.Query{Name: "odd", Target: target, Root: &query.Product{
		Left: &query.Scan{Relation: "PO"},
		Right: &query.Select{
			Ref: query.Ref("", "itemNum"), Op: engine.OpEq, Value: engine.F(1),
			Child: &query.Scan{Relation: "Item"},
		},
	}}
	if q.Fingerprint() == alt.Fingerprint() {
		t.Fatalf("fallback fingerprint collision between int and float literals: %q", q.Fingerprint())
	}
}

// randomQuery builds one random parser-shaped query; every draw validates
// against the target schema so Parse accepts the rendering.
func randomQuery(t *testing.T, rng *rand.Rand, target *schema.Schema, iter int) *query.Query {
	t.Helper()
	// Scans: 1-3 relation occurrences; repeats get aliases.
	numScans := 1 + rng.Intn(3)
	scans := make([]*query.Scan, numScans)
	used := make(map[string]int)
	for i := range scans {
		rel := target.Relations[rng.Intn(len(target.Relations))]
		s := &query.Scan{Relation: rel.Name}
		used[rel.Name]++
		if used[rel.Name] > 1 || rng.Intn(3) == 0 {
			s.Alias = rel.Name[:1] + "_" + string(rune('a'+i))
		}
		scans[i] = s
	}
	var root query.Node = scans[0]
	for _, s := range scans[1:] {
		root = &query.Product{Left: root, Right: s}
	}

	// A reference is unqualified only when exactly one scan resolves it.
	pickRef := func() query.AttrRef {
		si := rng.Intn(len(scans))
		rel := target.Relation(scans[si].Relation)
		attr := rel.Columns[rng.Intn(len(rel.Columns))].Name
		resolvable := 0
		for _, s := range scans {
			if target.HasAttribute(schema.Attribute{Relation: s.Relation, Name: attr}) {
				resolvable++
			}
		}
		if resolvable == 1 && rng.Intn(2) == 0 {
			return query.Ref("", attr)
		}
		return query.Ref(scans[si].AliasName(), attr)
	}
	ops := []engine.CompareOp{engine.OpEq, engine.OpNe, engine.OpLt, engine.OpLe, engine.OpGt, engine.OpGe}
	randLiteral := func() engine.Value {
		switch rng.Intn(6) {
		case 0:
			return engine.S("hot value")
		case 1:
			return engine.S("5") // collides with I(5) unless quoted
		case 2:
			return engine.I(int64(rng.Intn(201) - 100))
		case 3:
			return engine.F(float64(rng.Intn(100))) // integer-valued float
		case 4:
			f := rng.NormFloat64() * 1000
			return engine.F(f)
		default:
			if rng.Intn(2) == 0 {
				return engine.F(0)
			}
			return engine.F(negZero())
		}
	}
	for n := rng.Intn(4); n > 0; n-- {
		if rng.Intn(3) == 0 && numScans > 1 {
			root = &query.JoinSelect{Left: pickRef(), Op: ops[rng.Intn(len(ops))], Right: pickRef(), Child: root}
		} else {
			root = &query.Select{Ref: pickRef(), Op: ops[rng.Intn(len(ops))], Value: randLiteral(), Child: root}
		}
	}

	switch rng.Intn(4) {
	case 0: // SELECT *
	case 1:
		fns := []engine.AggFunc{engine.AggCount, engine.AggSum, engine.AggAvg, engine.AggMin, engine.AggMax}
		agg := &query.Aggregate{Func: fns[rng.Intn(len(fns))], Child: root}
		if agg.Func != engine.AggCount {
			agg.Ref = pickRef()
		}
		root = agg
	default:
		refs := make([]query.AttrRef, 1+rng.Intn(3))
		for i := range refs {
			refs[i] = pickRef()
		}
		root = &query.Project{Refs: refs, Child: root}
	}

	q := &query.Query{Name: "rand", Target: target, Root: root}
	if err := q.Validate(); err != nil {
		// Ambiguous unqualified reference drawn by bad luck: skip by retrying
		// with a derived seed so the test stays deterministic.
		return randomQuery(t, rand.New(rand.NewSource(int64(iter)*7919+int64(rng.Int63()%1000))), target, iter)
	}
	return q
}

func negZero() float64 {
	z := 0.0
	return -z
}
