package query

import (
	"errors"
	"strings"
	"testing"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/schema"
)

// paperSchemas reproduces the source/target schemas of Figure 1.
func paperSchemas() (src, tgt *schema.Schema) {
	src = schema.NewSchema("Source")
	src.MustAddRelation(&schema.RelationSchema{Name: "Customer", Columns: []schema.Column{
		{Name: "cid", Type: schema.TypeInt}, {Name: "cname"}, {Name: "ophone"}, {Name: "hphone"},
		{Name: "mobile"}, {Name: "oaddr"}, {Name: "haddr"}, {Name: "nid", Type: schema.TypeInt},
	}})
	src.MustAddRelation(&schema.RelationSchema{Name: "C_Order", Columns: []schema.Column{
		{Name: "oid", Type: schema.TypeInt}, {Name: "cid", Type: schema.TypeInt}, {Name: "amount", Type: schema.TypeFloat},
	}})
	src.MustAddRelation(&schema.RelationSchema{Name: "Nation", Columns: []schema.Column{
		{Name: "nid", Type: schema.TypeInt}, {Name: "name"},
	}})
	tgt = schema.NewSchema("Target")
	tgt.MustAddRelation(&schema.RelationSchema{Name: "Person", Columns: []schema.Column{
		{Name: "pname"}, {Name: "phone"}, {Name: "addr"}, {Name: "nation"}, {Name: "gender"},
	}})
	tgt.MustAddRelation(&schema.RelationSchema{Name: "Order", Columns: []schema.Column{
		{Name: "sname"}, {Name: "item"}, {Name: "status"}, {Name: "price", Type: schema.TypeFloat}, {Name: "total", Type: schema.TypeFloat},
	}})
	return src, tgt
}

func attr(rel, name string) schema.Attribute { return schema.Attribute{Relation: rel, Name: name} }

// paperMappings builds the five possible mappings of Figure 3 (restricted to
// the Person attributes plus an Order correspondence for m5).
func paperMappings() schema.MappingSet {
	m1 := schema.MustNewMapping("m1", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "oaddr"), Target: attr("Person", "addr"), Score: 0.75},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
	}, 0.3)
	m2 := schema.MustNewMapping("m2", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "oaddr"), Target: attr("Person", "addr"), Score: 0.75},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
		{Source: attr("C_Order", "amount"), Target: attr("Order", "total"), Score: 0.63},
	}, 0.2)
	m3 := schema.MustNewMapping("m3", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "haddr"), Target: attr("Person", "addr"), Score: 0.65},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
	}, 0.2)
	m4 := schema.MustNewMapping("m4", []schema.Correspondence{
		{Source: attr("Customer", "cname"), Target: attr("Person", "pname"), Score: 0.85},
		{Source: attr("Customer", "hphone"), Target: attr("Person", "phone"), Score: 0.83},
		{Source: attr("Customer", "haddr"), Target: attr("Person", "addr"), Score: 0.65},
		{Source: attr("Nation", "name"), Target: attr("Person", "nation"), Score: 0.81},
	}, 0.2)
	m5 := schema.MustNewMapping("m5", []schema.Correspondence{
		{Source: attr("Customer", "sname_placeholder"), Target: attr("Person", "gender"), Score: 0.1},
		{Source: attr("Customer", "cname"), Target: attr("Order", "sname"), Score: 0.45},
		{Source: attr("Customer", "ophone"), Target: attr("Person", "phone"), Score: 0.85},
		{Source: attr("Customer", "haddr"), Target: attr("Person", "addr"), Score: 0.65},
		{Source: attr("Nation", "name"), Target: attr("Order", "item"), Score: 0.3},
	}, 0.1)
	return schema.MappingSet{m1, m2, m3, m4, m5}
}

func TestParseSimpleSelect(t *testing.T) {
	_, tgt := paperSchemas()
	q, err := Parse("q0", tgt, "SELECT addr FROM Person WHERE phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumOperators() != 2 {
		t.Errorf("operators = %d, want 2 (project, select)", q.NumOperators())
	}
	proj, ok := q.Root.(*Project)
	if !ok {
		t.Fatalf("root is %T, want *Project", q.Root)
	}
	sel, ok := proj.Child.(*Select)
	if !ok {
		t.Fatalf("child is %T, want *Select", proj.Child)
	}
	if sel.Value.Str != "123" || sel.Op != engine.OpEq {
		t.Errorf("selection = %v %v", sel.Op, sel.Value)
	}
	if _, ok := sel.Child.(*Scan); !ok {
		t.Errorf("leaf is %T, want *Scan", sel.Child)
	}
	if !strings.Contains(q.String(), "q0") {
		t.Errorf("String = %q", q.String())
	}
}

func TestParseAggregatesAndJoins(t *testing.T) {
	_, tgt := paperSchemas()
	q, err := Parse("qc", tgt, "SELECT COUNT(*) FROM Person WHERE addr = 'hk' AND phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Root.(*Aggregate); !ok {
		t.Fatalf("root is %T, want *Aggregate", q.Root)
	}
	// An unqualified attribute over a self-join is ambiguous and rejected.
	if _, err := Parse("qj-bad", tgt, "SELECT pname FROM Person P1, Person P2 WHERE P1.addr = P2.addr"); err == nil {
		t.Error("expected ambiguity error for unqualified pname over self-join")
	}
	q2, err := Parse("qj", tgt, "SELECT P1.pname FROM Person P1, Person P2 WHERE P1.addr = P2.addr AND P1.phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Scans()) != 2 {
		t.Errorf("scans = %d, want 2", len(q2.Scans()))
	}
	aliases := q2.Aliases()
	if aliases["P1"] != "Person" || aliases["P2"] != "Person" {
		t.Errorf("aliases = %v", aliases)
	}
	q3, err := Parse("qs", tgt, "SELECT SUM(price) FROM Order WHERE status = 'open'")
	if err != nil {
		t.Fatal(err)
	}
	agg := q3.Root.(*Aggregate)
	if agg.Func != engine.AggSum || agg.Ref.Name != "price" {
		t.Errorf("aggregate = %v %v", agg.Func, agg.Ref)
	}
	q4, err := Parse("qstar", tgt, "SELECT * FROM Person WHERE phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q4.Root.(*Select); !ok {
		t.Errorf("SELECT * root = %T, want *Select", q4.Root)
	}
	// Numeric literals.
	q5, err := Parse("qnum", tgt, "SELECT sname FROM Order WHERE price > 10.5 AND total <= 100")
	if err != nil {
		t.Fatal(err)
	}
	if q5.NumOperators() != 3 {
		t.Errorf("operators = %d, want 3", q5.NumOperators())
	}
}

func TestParseErrors(t *testing.T) {
	_, tgt := paperSchemas()
	bad := []string{
		"",
		"FROM Person",
		"SELECT FROM Person",
		"SELECT addr Person",
		"SELECT addr FROM",
		"SELECT addr FROM Person WHERE",
		"SELECT addr FROM Person WHERE phone 123",
		"SELECT addr FROM Person WHERE phone = ",
		"SELECT addr FROM Person WHERE phone ~ '1'",
		"SELECT COUNT(* FROM Person",
		"SELECT addr, COUNT(*) FROM Person",
		"SELECT addr FROM Person extra tokens here",
		"SELECT nosuchattr FROM Person",
		"SELECT addr FROM NoSuchRelation",
		"SELECT addr FROM Person, Person",
	}
	for _, text := range bad {
		if _, err := Parse("bad", tgt, text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestQueryIntrospection(t *testing.T) {
	_, tgt := paperSchemas()
	q := MustParse("q", tgt, "SELECT pname FROM Person WHERE addr = 'abc' AND phone = '123'")
	attrs, err := q.TargetAttributes()
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 {
		t.Fatalf("target attributes = %v, want 3", attrs)
	}
	// Project is the root so pname comes first.
	if attrs[0] != attr("Person", "pname") {
		t.Errorf("first attribute = %v, want pname", attrs[0])
	}
	names, err := q.AttributesForAlias("Person")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Errorf("AttributesForAlias = %v", names)
	}
	if _, err := q.AttributesForAlias("nope"); err == nil {
		t.Error("unknown alias should error")
	}
	if _, err := q.ResolveRef(Ref("ZZ", "addr")); err == nil {
		t.Error("unknown alias in ref should error")
	}
	if _, err := q.ResolveRef(Ref("Person", "nosuch")); err == nil {
		t.Error("unknown attribute should error")
	}
	if _, err := q.ResolveRef(Ref("", "nosuch")); err == nil {
		t.Error("unresolvable unqualified ref should error")
	}
	clone := q.Clone()
	if clone.String() != q.String() {
		t.Error("clone should render identically")
	}
	clone.Root.(*Project).Refs[0].Name = "changed"
	if q.Root.(*Project).Refs[0].Name != "pname" {
		t.Error("clone leaked mutation")
	}
}

func TestReformulatePaperExample(t *testing.T) {
	_, tgt := paperSchemas()
	maps := paperMappings()
	// qT = π_ophone σ_oaddr='aaa' Customer when reformulated through m1
	// (paper Section III-B example).
	q := MustParse("q", tgt, "SELECT phone FROM Person WHERE addr = 'aaa'")
	ref := NewReformulator(q)

	plan, err := ref.Reformulate(maps[0])
	if err != nil {
		t.Fatal(err)
	}
	sig := plan.Signature()
	if !strings.Contains(sig, "Customer.ophone") || !strings.Contains(sig, "Customer.oaddr=aaa") {
		t.Errorf("m1 source plan = %s", sig)
	}
	// m1 and m2 produce the same source query; m3 differs (haddr).
	sig2, err := ref.SourceSignature(maps[1])
	if err != nil {
		t.Fatal(err)
	}
	if sig != sig2 {
		t.Errorf("m1 and m2 should share the source query:\n%s\n%s", sig, sig2)
	}
	sig3, err := ref.SourceSignature(maps[2])
	if err != nil {
		t.Fatal(err)
	}
	if sig == sig3 {
		t.Error("m3 should produce a different source query")
	}
	// Source column naming.
	col, err := ref.SourceColumn(maps[0], Ref("", "phone"))
	if err != nil {
		t.Fatal(err)
	}
	if col != "Person.Customer.ophone" {
		t.Errorf("SourceColumn = %q", col)
	}
}

func TestReformulateNotCovered(t *testing.T) {
	_, tgt := paperSchemas()
	maps := paperMappings()
	// gender has no correspondence in m1.
	q := MustParse("q", tgt, "SELECT gender FROM Person WHERE addr = 'aaa'")
	ref := NewReformulator(q)
	_, err := ref.Reformulate(maps[0])
	if err == nil || !errors.Is(err, ErrNotCovered) {
		t.Errorf("expected ErrNotCovered, got %v", err)
	}
	if _, err := ref.SourceSignature(maps[0]); !errors.Is(err, ErrNotCovered) {
		t.Errorf("SourceSignature should propagate ErrNotCovered, got %v", err)
	}
}

func TestReformulateMultiRelationLeaf(t *testing.T) {
	_, tgt := paperSchemas()
	maps := paperMappings()
	// Under m1 the Person attributes phone and nation map to Customer and
	// Nation respectively, so the Person leaf expands to Customer × Nation.
	q := MustParse("q", tgt, "SELECT nation FROM Person WHERE phone = '123'")
	ref := NewReformulator(q)
	plan, err := ref.Reformulate(maps[0])
	if err != nil {
		t.Fatal(err)
	}
	sig := plan.Signature()
	if !strings.Contains(sig, "scan(Customer") || !strings.Contains(sig, "scan(Nation") {
		t.Errorf("leaf should cover Customer and Nation: %s", sig)
	}
	if !strings.Contains(sig, "product(") {
		t.Errorf("leaf covering two relations should be a product: %s", sig)
	}
	rels, err := ref.SourceRelationsForAlias(maps[0], "Person")
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Errorf("covering relations = %v, want 2", rels)
	}
}

func TestReformulateCrossProductQuery(t *testing.T) {
	_, tgt := paperSchemas()
	maps := paperMappings()
	// q2 of Section V: (σ_addr='hk' σ_phone='123' Person) × Order.
	// Under m2, Order.total maps to C_Order.amount so the Order occurrence
	// becomes a scan of C_Order.
	q := MustParse("q2", tgt, "SELECT total FROM Person, Order WHERE addr = 'hk' AND phone = '123'")
	ref := NewReformulator(q)
	plan, err := ref.Reformulate(maps[1])
	if err != nil {
		t.Fatal(err)
	}
	sig := plan.Signature()
	if !strings.Contains(sig, "scan(C_Order") {
		t.Errorf("Order occurrence should reformulate to C_Order: %s", sig)
	}
	// m1 has no correspondence for any Order attribute used by the query.
	if _, err := ref.Reformulate(maps[0]); !errors.Is(err, ErrNotCovered) {
		t.Errorf("m1 should not cover Order.total, got %v", err)
	}
}

func TestReformulateJoinSelect(t *testing.T) {
	_, tgt := paperSchemas()
	maps := paperMappings()
	q := MustParse("qj", tgt, "SELECT P1.pname FROM Person P1, Person P2 WHERE P1.addr = P2.addr")
	ref := NewReformulator(q)
	plan, err := ref.Reformulate(maps[0])
	if err != nil {
		t.Fatal(err)
	}
	sig := plan.Signature()
	if !strings.Contains(sig, "P1.Customer.oaddr=P2.Customer.oaddr") {
		t.Errorf("join condition not reformulated with aliases: %s", sig)
	}
	if strings.Count(sig, "scan(Customer") != 2 {
		t.Errorf("self-join should scan Customer twice: %s", sig)
	}
}

func TestReformulateAggregate(t *testing.T) {
	_, tgt := paperSchemas()
	maps := paperMappings()
	q := MustParse("qa", tgt, "SELECT COUNT(*) FROM Person WHERE addr = 'hk'")
	ref := NewReformulator(q)
	plan, err := ref.Reformulate(maps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.Signature(), "agg[COUNT()]") {
		t.Errorf("aggregate signature = %s", plan.Signature())
	}
	qs := MustParse("qsum", tgt, "SELECT SUM(total) FROM Order")
	refs := NewReformulator(qs)
	plan2, err := refs.Reformulate(maps[1])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2.Signature(), "agg[SUM(Order.C_Order.amount)]") {
		t.Errorf("sum signature = %s", plan2.Signature())
	}
}

func TestExecuteReformulatedPlan(t *testing.T) {
	// End-to-end: reformulate under m1 and run against the Figure 2 instance.
	_, tgt := paperSchemas()
	maps := paperMappings()
	db := engine.NewInstance("D")
	cust := engine.NewRelation("Customer", []string{"cid", "cname", "ophone", "hphone", "mobile", "oaddr", "haddr", "nid"})
	cust.MustAppend(engine.Tuple{engine.I(1), engine.S("Alice"), engine.S("123"), engine.S("789"), engine.S("555"), engine.S("aaa"), engine.S("hk"), engine.I(1)})
	cust.MustAppend(engine.Tuple{engine.I(2), engine.S("Bob"), engine.S("456"), engine.S("123"), engine.S("556"), engine.S("bbb"), engine.S("hk"), engine.I(1)})
	cust.MustAppend(engine.Tuple{engine.I(3), engine.S("Cindy"), engine.S("456"), engine.S("789"), engine.S("557"), engine.S("aaa"), engine.S("aaa"), engine.I(2)})
	db.AddRelation(cust)

	q := MustParse("q", tgt, "SELECT phone FROM Person WHERE addr = 'aaa'")
	ref := NewReformulator(q)
	plan, err := ref.Reformulate(maps[0])
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.NewExecutor(db)
	out, err := ex.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// σ_oaddr='aaa' keeps Alice and Cindy; π_ophone gives 123 and 456.
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
	got := map[string]bool{}
	for _, row := range out.Rows {
		got[row[0].Str] = true
	}
	if !got["123"] || !got["456"] {
		t.Errorf("answers = %v, want 123 and 456", got)
	}
}

func TestNodeStringRendering(t *testing.T) {
	n := &Product{
		Left:  &Scan{Relation: "Person", Alias: "P1"},
		Right: &Scan{Relation: "Person"},
	}
	s := n.String()
	if !strings.Contains(s, "Person AS P1") || !strings.Contains(s, "×") {
		t.Errorf("Product.String = %q", s)
	}
	agg := &Aggregate{Func: engine.AggCount, Child: &Scan{Relation: "Person"}}
	if !strings.Contains(agg.String(), "COUNT") {
		t.Errorf("Aggregate.String = %q", agg.String())
	}
	js := &JoinSelect{Left: Ref("P1", "a"), Op: engine.OpEq, Right: Ref("P2", "a"), Child: &Scan{Relation: "Person"}}
	if !strings.Contains(js.String(), "P1.a=P2.a") {
		t.Errorf("JoinSelect.String = %q", js.String())
	}
	if Ref("", "x").String() != "x" || Ref("A", "x").String() != "A.x" {
		t.Error("AttrRef.String rendering broken")
	}
	if !(AttrRef{}).IsZero() || Ref("A", "x").IsZero() {
		t.Error("AttrRef.IsZero broken")
	}
}

func TestValidateErrors(t *testing.T) {
	_, tgt := paperSchemas()
	q := &Query{Name: "nil", Target: tgt}
	if err := q.Validate(); err == nil {
		t.Error("nil root should not validate")
	}
	q2 := &Query{Name: "noschema", Root: &Scan{Relation: "Person"}}
	if err := q2.Validate(); err == nil {
		t.Error("nil target schema should not validate")
	}
	q3 := &Query{Name: "dup", Target: tgt, Root: &Product{
		Left:  &Scan{Relation: "Person"},
		Right: &Scan{Relation: "Person"},
	}}
	if err := q3.Validate(); err == nil {
		t.Error("duplicate aliases should not validate")
	}
	q4 := &Query{Name: "badattr", Target: tgt, Root: &Select{
		Ref: Ref("Person", "nosuch"), Op: engine.OpEq, Value: engine.S("x"),
		Child: &Scan{Relation: "Person"},
	}}
	if err := q4.Validate(); err == nil {
		t.Error("unknown attribute should not validate")
	}
}
