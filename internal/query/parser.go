package query

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/schema"
)

// ErrBadQuery marks a query text that does not parse or validate against the
// target schema.  Every error Parse returns wraps it, so callers (the facade,
// the query service) can classify failures with errors.Is instead of matching
// message strings.
var ErrBadQuery = errors.New("bad query")

// Parse parses a small SQL subset into a target Query.  The supported grammar
// covers the paper's workload (Table III):
//
//	SELECT <list> FROM <rel> [<alias>] {, <rel> [<alias>]} [WHERE <cond> {AND <cond>}]
//
//	<list> ::= '*' | item {',' item}
//	item   ::= COUNT(*) | SUM(ref) | AVG(ref) | MIN(ref) | MAX(ref) | ref
//	<cond> ::= ref op constant | ref op ref
//	op     ::= = | != | <> | < | <= | > | >=
//
// Constants are single-quoted strings or numeric literals.  References may be
// qualified with a relation alias ("PO1.orderNum").
func Parse(name string, target *schema.Schema, text string) (*Query, error) {
	p := &parser{lexer: newLexer(text)}
	q, err := p.parseQuery(name, target)
	if err != nil {
		return nil, fmt.Errorf("%w: parse %q: %v", ErrBadQuery, text, err)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	return q, nil
}

// MustParse is Parse that panics on error; for statically known queries.
func MustParse(name string, target *schema.Schema, text string) *Query {
	q, err := Parse(name, target, text)
	if err != nil {
		panic(err)
	}
	return q
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokOp
)

type token struct {
	kind tokenKind
	text string
}

type lexer struct {
	input string
	pos   int
	toks  []token
}

func newLexer(input string) *lexer {
	l := &lexer{input: input}
	l.tokenize()
	return l
}

func (l *lexer) tokenize() {
	s := l.input
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			l.toks = append(l.toks, token{tokComma, ","})
			i++
		case c == '.':
			l.toks = append(l.toks, token{tokDot, "."})
			i++
		case c == '(':
			l.toks = append(l.toks, token{tokLParen, "("})
			i++
		case c == ')':
			l.toks = append(l.toks, token{tokRParen, ")"})
			i++
		case c == '*':
			l.toks = append(l.toks, token{tokStar, "*"})
			i++
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			l.toks = append(l.toks, token{tokString, s[i+1 : min(j, len(s))]})
			i = j + 1
		case c == '=' || c == '<' || c == '>' || c == '!':
			j := i + 1
			if j < len(s) && (s[j] == '=' || (c == '<' && s[j] == '>')) {
				j++
			}
			l.toks = append(l.toks, token{tokOp, s[i:j]})
			i = j
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1]))):
			j := i + 1
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
				j++
			}
			l.toks = append(l.toks, token{tokNumber, s[i:j]})
			i = j
		default:
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			if j == i {
				// Unknown character: emit it as an ident so the parser reports
				// a sensible error.
				j = i + 1
			}
			l.toks = append(l.toks, token{tokIdent, s[i:j]})
			i = j
		}
	}
	l.toks = append(l.toks, token{tokEOF, ""})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type parser struct {
	lexer *lexer
	pos   int
}

func (p *parser) peek() token { return p.lexer.toks[p.pos] }

func (p *parser) next() token {
	t := p.lexer.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// selectItem is one entry of the SELECT list.
type selectItem struct {
	agg   engine.AggFunc
	isAgg bool
	ref   AttrRef
}

func (p *parser) parseQuery(name string, target *schema.Schema) (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	items, star, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	scans, err := p.parseFromList()
	if err != nil {
		return nil, err
	}
	var conds []Node // placeholder-free condition wrappers applied later
	type cond struct {
		left    AttrRef
		op      engine.CompareOp
		isJoin  bool
		right   AttrRef
		literal engine.Value
	}
	var condList []cond
	if p.peekKeyword("WHERE") {
		p.next()
		for {
			left, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			opTok := p.next()
			if opTok.kind != tokOp {
				return nil, fmt.Errorf("expected comparison operator, got %q", opTok.text)
			}
			op, err := parseCompareOp(opTok.text)
			if err != nil {
				return nil, err
			}
			rhs := p.peek()
			var c cond
			c.left, c.op = left, op
			switch rhs.kind {
			case tokString:
				p.next()
				c.literal = engine.S(rhs.text)
			case tokNumber:
				p.next()
				c.literal, err = parseNumber(rhs.text)
				if err != nil {
					return nil, err
				}
			case tokIdent:
				ref, err := p.parseRef()
				if err != nil {
					return nil, err
				}
				c.isJoin = true
				c.right = ref
			default:
				return nil, fmt.Errorf("expected constant or attribute after operator, got %q", rhs.text)
			}
			condList = append(condList, c)
			if !p.peekKeyword("AND") {
				break
			}
			p.next()
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing token %q", t.text)
	}

	// Build the tree: products of scans, then selections, then projection or
	// aggregation.
	if len(scans) == 0 {
		return nil, fmt.Errorf("query has no FROM relations")
	}
	var root Node = scans[0]
	for _, s := range scans[1:] {
		root = &Product{Left: root, Right: s}
	}
	for _, c := range condList {
		if c.isJoin {
			root = &JoinSelect{Left: c.left, Op: c.op, Right: c.right, Child: root}
		} else {
			root = &Select{Ref: c.left, Op: c.op, Value: c.literal, Child: root}
		}
	}
	_ = conds
	switch {
	case star:
		// No projection.
	case len(items) == 1 && items[0].isAgg:
		root = &Aggregate{Func: items[0].agg, Ref: items[0].ref, Child: root}
	default:
		refs := make([]AttrRef, 0, len(items))
		for _, it := range items {
			if it.isAgg {
				return nil, fmt.Errorf("mixing aggregates and plain attributes in SELECT is not supported")
			}
			refs = append(refs, it.ref)
		}
		root = &Project{Refs: refs, Child: root}
	}
	return &Query{Name: name, Target: target, Root: root}, nil
}

func (p *parser) parseSelectList() (items []selectItem, star bool, err error) {
	if p.peek().kind == tokStar {
		p.next()
		return nil, true, nil
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, false, fmt.Errorf("expected select item, got %q", t.text)
		}
		if fn, ok := aggKeyword(t.text); ok && p.lexer.toks[p.pos+1].kind == tokLParen {
			p.next() // function name
			p.next() // '('
			var ref AttrRef
			if p.peek().kind == tokStar {
				p.next()
			} else {
				ref, err = p.parseRef()
				if err != nil {
					return nil, false, err
				}
			}
			if t := p.next(); t.kind != tokRParen {
				return nil, false, fmt.Errorf("expected ) after aggregate, got %q", t.text)
			}
			items = append(items, selectItem{agg: fn, isAgg: true, ref: ref})
		} else {
			ref, err := p.parseRef()
			if err != nil {
				return nil, false, err
			}
			items = append(items, selectItem{ref: ref})
		}
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	return items, false, nil
}

func (p *parser) parseFromList() ([]*Scan, error) {
	var scans []*Scan
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("expected relation name, got %q", t.text)
		}
		s := &Scan{Relation: t.text}
		// Optional alias: a bare identifier that is not a clause keyword.
		if nt := p.peek(); nt.kind == tokIdent && !isKeyword(nt.text) {
			s.Alias = p.next().text
		}
		scans = append(scans, s)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	return scans, nil
}

func (p *parser) parseRef() (AttrRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return AttrRef{}, fmt.Errorf("expected attribute reference, got %q", t.text)
	}
	if p.peek().kind == tokDot {
		p.next()
		n := p.next()
		if n.kind != tokIdent {
			return AttrRef{}, fmt.Errorf("expected attribute name after %q., got %q", t.text, n.text)
		}
		return AttrRef{Alias: t.text, Name: n.text}, nil
	}
	return AttrRef{Name: t.text}, nil
}

func aggKeyword(s string) (engine.AggFunc, bool) {
	switch strings.ToUpper(s) {
	case "COUNT":
		return engine.AggCount, true
	case "SUM":
		return engine.AggSum, true
	case "AVG":
		return engine.AggAvg, true
	case "MIN":
		return engine.AggMin, true
	case "MAX":
		return engine.AggMax, true
	default:
		return 0, false
	}
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "AND":
		return true
	default:
		return false
	}
}

func parseCompareOp(s string) (engine.CompareOp, error) {
	switch s {
	case "=":
		return engine.OpEq, nil
	case "!=", "<>":
		return engine.OpNe, nil
	case "<":
		return engine.OpLt, nil
	case "<=":
		return engine.OpLe, nil
	case ">":
		return engine.OpGt, nil
	case ">=":
		return engine.OpGe, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", s)
	}
}

func parseNumber(s string) (engine.Value, error) {
	if strings.Contains(s, ".") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return engine.Value{}, fmt.Errorf("bad numeric literal %q", s)
		}
		return engine.F(f), nil
	}
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return engine.Value{}, fmt.Errorf("bad numeric literal %q", s)
	}
	return engine.I(i), nil
}
