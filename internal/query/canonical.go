package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/probdb/urm/internal/engine"
)

// This file defines the canonical textual form of a query — the contract the
// query service's answer cache is keyed by.  Two queries with equal ASTs must
// render to the same text, two queries with different ASTs must render to
// different texts, and the text must re-parse (query.Parse) to an AST equal to
// the original.  The round-trip property is enforced by
// TestCanonicalSQLRoundTrip over the paper's workload and randomized queries.

// SQL renders the query back into the library's SQL subset such that
// Parse(q.Name, q.Target, text) rebuilds an equal AST.  It succeeds exactly
// for the tree shapes the parser itself produces — an optional projection or
// aggregation over a stack of selections over a left-deep product of scans —
// and returns an error for any other shape or for values the grammar cannot
// spell (NULL constants, NaN/Inf floats, strings containing a single quote,
// identifiers that do not lex as one token).
func (q *Query) SQL() (string, error) {
	if q.Root == nil {
		return "", fmt.Errorf("query %s: nil root", q.Name)
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	node := q.Root
	switch root := node.(type) {
	case *Project:
		parts := make([]string, len(root.Refs))
		for i, r := range root.Refs {
			ref, err := sqlRef(r)
			if err != nil {
				return "", err
			}
			parts[i] = ref
		}
		if len(parts) == 0 {
			return "", fmt.Errorf("query %s: projection with no references", q.Name)
		}
		b.WriteString(strings.Join(parts, ", "))
		node = root.Child
	case *Aggregate:
		if root.Ref.IsZero() {
			fmt.Fprintf(&b, "%s(*)", root.Func)
		} else {
			ref, err := sqlRef(root.Ref)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%s(%s)", root.Func, ref)
		}
		node = root.Child
	default:
		b.WriteString("*")
	}

	// Selections were applied innermost-first by the parser, so the outermost
	// node is the last WHERE condition; collect top-down and render reversed.
	var conds []string
	for {
		var cond string
		var err error
		switch s := node.(type) {
		case *Select:
			var lit, ref string
			lit, err = sqlLiteral(s.Value)
			if err == nil {
				ref, err = sqlRef(s.Ref)
			}
			cond = fmt.Sprintf("%s %s %s", ref, s.Op, lit)
			node = s.Child
		case *JoinSelect:
			var left, right string
			left, err = sqlRef(s.Left)
			if err == nil {
				right, err = sqlRef(s.Right)
			}
			cond = fmt.Sprintf("%s %s %s", left, s.Op, right)
			node = s.Child
		default:
			goto from
		}
		if err != nil {
			return "", err
		}
		conds = append(conds, cond)
	}
from:
	scans, err := productScans(node)
	if err != nil {
		return "", fmt.Errorf("query %s: %w", q.Name, err)
	}
	froms := make([]string, len(scans))
	for i, s := range scans {
		froms[i], err = sqlScan(s)
		if err != nil {
			return "", fmt.Errorf("query %s: %w", q.Name, err)
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(froms, ", "))
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		for i := len(conds) - 1; i >= 0; i-- {
			if i < len(conds)-1 {
				b.WriteString(" AND ")
			}
			b.WriteString(conds[i])
		}
	}
	return b.String(), nil
}

// Fingerprint returns the canonical cache-key text of the query: the SQL
// round-trip form when the tree has the parser's shape, otherwise the algebra
// rendering of the root (which is injective per AST as long as literal kinds
// are spelled — Select.String quotes string constants for exactly that
// reason).  The query name is deliberately excluded: two requests for the
// same query under different labels share one cache entry.
func (q *Query) Fingerprint() string {
	if sql, err := q.SQL(); err == nil {
		return sql
	}
	return q.Root.String()
}

// productScans flattens a left-deep product tree into its scans, rejecting any
// other shape (the parser never nests a product under its right operand or
// interleaves other operators).
func productScans(n Node) ([]*Scan, error) {
	switch t := n.(type) {
	case *Scan:
		return []*Scan{t}, nil
	case *Product:
		left, err := productScans(t.Left)
		if err != nil {
			return nil, err
		}
		right, ok := t.Right.(*Scan)
		if !ok {
			return nil, fmt.Errorf("non-canonical product shape: right operand is %T", t.Right)
		}
		return append(left, right), nil
	default:
		return nil, fmt.Errorf("non-canonical tree: %T below the selection stack", n)
	}
}

func sqlScan(s *Scan) (string, error) {
	if err := checkIdent(s.Relation); err != nil {
		return "", err
	}
	if s.Alias == "" {
		return s.Relation, nil
	}
	if err := checkIdent(s.Alias); err != nil {
		return "", err
	}
	if isKeyword(s.Alias) {
		return "", fmt.Errorf("alias %q is a keyword and cannot re-parse", s.Alias)
	}
	return s.Relation + " " + s.Alias, nil
}

func sqlRef(r AttrRef) (string, error) {
	if r.Name == "" {
		return "", fmt.Errorf("empty attribute reference")
	}
	if err := checkIdent(r.Name); err != nil {
		return "", err
	}
	if r.Alias == "" {
		if isKeyword(r.Name) {
			return "", fmt.Errorf("reference %q is a keyword and cannot re-parse", r.Name)
		}
		return r.Name, nil
	}
	if err := checkIdent(r.Alias); err != nil {
		return "", err
	}
	return r.Alias + "." + r.Name, nil
}

// checkIdent verifies that the name lexes back as a single identifier token:
// letters, digits or underscores, not starting with a digit (a leading digit
// would lex as a number).
func checkIdent(name string) error {
	if name == "" {
		return fmt.Errorf("empty identifier")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return fmt.Errorf("identifier %q starts with a digit", name)
			}
		default:
			return fmt.Errorf("identifier %q contains %q", name, c)
		}
	}
	return nil
}

// sqlLiteral spells a constant so the parser rebuilds the identical Value:
// strings are single-quoted (a string containing a quote cannot be escaped in
// the grammar), integers are decimal, and floats always carry a decimal point
// so they re-parse as KindFloat rather than KindInt.
func sqlLiteral(v engine.Value) (string, error) {
	switch v.Kind {
	case engine.KindString:
		if strings.ContainsAny(v.Str, "'") {
			return "", fmt.Errorf("string literal %q contains a quote", v.Str)
		}
		return "'" + v.Str + "'", nil
	case engine.KindInt:
		return strconv.FormatInt(v.Int, 10), nil
	case engine.KindFloat:
		f := v.Float
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return "", fmt.Errorf("float literal %v has no textual form", f)
		}
		s := strconv.FormatFloat(f, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		// The lexer accepts only digits and dots, so the 'f' format (never
		// scientific) is required; reject anything it cannot retokenize, such
		// as nothing today — the minus sign is consumed as part of the number.
		if _, err := strconv.ParseFloat(s, 64); err != nil || !equalFloatBits(f, mustParseFloat(s)) {
			return "", fmt.Errorf("float literal %v does not round-trip through %q", f, s)
		}
		return s, nil
	default:
		return "", fmt.Errorf("%s literal has no textual form", v.Kind)
	}
}

func mustParseFloat(s string) float64 {
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

// equalFloatBits compares floats the way Value.EqualKey does: by bit pattern,
// so -0 and +0 stay distinct.
func equalFloatBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
