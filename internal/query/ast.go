// Package query models target queries — relational algebra expressions over
// the target schema — and their reformulation into source-query plans through
// a possible mapping, following Section III (query model) and Section VI-B
// (operator reformulation) of the paper.
//
// A Query is a tree of operators (selection, projection, Cartesian product,
// aggregation) whose leaves are aliased scans of target relations.  Attribute
// references are (alias, attribute-name) pairs so that self-joins such as
// Q3/Q4 in Table III can reference several occurrences of the same target
// relation.
package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/schema"
)

// AttrRef references a target attribute through the alias of a relation
// occurrence in the query ("PO1.orderNum").  An empty Alias means the
// reference is unqualified and resolves against the single relation occurrence
// that has such an attribute.
type AttrRef struct {
	Alias string
	Name  string
}

// String renders the reference.
func (r AttrRef) String() string {
	if r.Alias == "" {
		return r.Name
	}
	return r.Alias + "." + r.Name
}

// IsZero reports whether the reference is empty.
func (r AttrRef) IsZero() bool { return r.Alias == "" && r.Name == "" }

// Ref builds an AttrRef.
func Ref(alias, name string) AttrRef { return AttrRef{Alias: alias, Name: name} }

// Node is an operator of a target query tree.
type Node interface {
	// Children returns the child operators.
	Children() []Node
	// String renders the node (and its subtree) in algebra notation.
	String() string
}

// Scan is a leaf: one occurrence of a target relation under an alias.
type Scan struct {
	Relation string
	Alias    string
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// String implements Node.
func (s *Scan) String() string {
	if s.Alias != "" && s.Alias != s.Relation {
		return fmt.Sprintf("%s AS %s", s.Relation, s.Alias)
	}
	return s.Relation
}

// AliasName returns the effective alias of the scan.
func (s *Scan) AliasName() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Relation
}

// Select filters its child by comparing a target attribute with a constant.
type Select struct {
	Ref   AttrRef
	Op    engine.CompareOp
	Value engine.Value
	Child Node
}

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

// String implements Node.  The literal spelling is kind-distinct — σ[x='5'],
// σ[x=5] and σ[x=5.0] are different ASTs with different answers and must
// render differently; the answer-cache fingerprint relies on the rendering
// being injective per AST.
func (s *Select) String() string {
	return fmt.Sprintf("σ[%s%s%s](%s)", s.Ref, s.Op, literalString(s.Value), s.Child)
}

// literalString spells a constant with its kind visible: strings quoted,
// integer-valued floats with a forced decimal point.
func literalString(v engine.Value) string {
	out := v.String()
	switch v.Kind {
	case engine.KindString:
		return "'" + out + "'"
	case engine.KindFloat:
		if !strings.ContainsAny(out, ".eE") && out != "NaN" && !strings.Contains(out, "Inf") {
			out += ".0"
		}
		return out
	default:
		return out
	}
}

// JoinSelect filters its child by comparing two target attributes (the join
// condition of an equi/theta join expressed over a Cartesian product).
type JoinSelect struct {
	Left  AttrRef
	Op    engine.CompareOp
	Right AttrRef
	Child Node
}

// Children implements Node.
func (s *JoinSelect) Children() []Node { return []Node{s.Child} }

// String implements Node.
func (s *JoinSelect) String() string {
	return fmt.Sprintf("σ[%s%s%s](%s)", s.Left, s.Op, s.Right, s.Child)
}

// Project restricts its child to the referenced target attributes.
type Project struct {
	Refs  []AttrRef
	Child Node
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// String implements Node.
func (p *Project) String() string {
	parts := make([]string, len(p.Refs))
	for i, r := range p.Refs {
		parts[i] = r.String()
	}
	return fmt.Sprintf("π[%s](%s)", strings.Join(parts, ","), p.Child)
}

// Product is the Cartesian product of its children.
type Product struct {
	Left, Right Node
}

// Children implements Node.
func (p *Product) Children() []Node { return []Node{p.Left, p.Right} }

// String implements Node.
func (p *Product) String() string { return fmt.Sprintf("(%s × %s)", p.Left, p.Right) }

// Aggregate computes COUNT, SUM, AVG, MIN or MAX over its child.  Ref is
// ignored for COUNT.
type Aggregate struct {
	Func  engine.AggFunc
	Ref   AttrRef
	Child Node
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// String implements Node.
func (a *Aggregate) String() string {
	return fmt.Sprintf("%s[%s](%s)", a.Func, a.Ref, a.Child)
}

// Query is a complete target query: a root operator plus the target schema it
// is written against.
type Query struct {
	// Name is an optional label ("Q4") used in experiment output.
	Name string
	// Target is the target schema the query is expressed over.
	Target *schema.Schema
	// Root is the root operator.
	Root Node
}

// String renders the query.
func (q *Query) String() string {
	if q.Name != "" {
		return q.Name + ": " + q.Root.String()
	}
	return q.Root.String()
}

// Scans returns every relation occurrence (leaf) in the query, left to right.
func (q *Query) Scans() []*Scan {
	var scans []*Scan
	walk(q.Root, func(n Node) {
		if s, ok := n.(*Scan); ok {
			scans = append(scans, s)
		}
	})
	return scans
}

// Aliases returns a map from alias to target relation name.
func (q *Query) Aliases() map[string]string {
	out := make(map[string]string)
	for _, s := range q.Scans() {
		out[s.AliasName()] = s.Relation
	}
	return out
}

// Operators returns every non-leaf operator node in the query in pre-order.
func (q *Query) Operators() []Node {
	var ops []Node
	walk(q.Root, func(n Node) {
		if _, ok := n.(*Scan); !ok {
			ops = append(ops, n)
		}
	})
	return ops
}

// NumOperators returns the number of non-leaf operators (the paper's l).
func (q *Query) NumOperators() int { return len(q.Operators()) }

func walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		walk(c, fn)
	}
}

// ResolveRef resolves an attribute reference to the base target attribute it
// denotes, using the query's aliases.  Unqualified references resolve if
// exactly one relation occurrence has the attribute.
func (q *Query) ResolveRef(r AttrRef) (schema.Attribute, error) {
	aliases := q.Aliases()
	if r.Alias != "" {
		rel, ok := aliases[r.Alias]
		if !ok {
			return schema.Attribute{}, fmt.Errorf("query %s: unknown alias %q in reference %s", q.Name, r.Alias, r)
		}
		attr := schema.Attribute{Relation: rel, Name: r.Name}
		if q.Target != nil && !q.Target.HasAttribute(attr) {
			return schema.Attribute{}, fmt.Errorf("query %s: attribute %s not in target schema", q.Name, attr)
		}
		return attr, nil
	}
	var found schema.Attribute
	matches := 0
	// Deterministic iteration over aliases.
	names := make([]string, 0, len(aliases))
	for a := range aliases {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		rel := aliases[a]
		attr := schema.Attribute{Relation: rel, Name: r.Name}
		if q.Target == nil || q.Target.HasAttribute(attr) {
			found = attr
			matches++
		}
	}
	switch matches {
	case 1:
		return found, nil
	case 0:
		return schema.Attribute{}, fmt.Errorf("query %s: attribute %q not found in any relation occurrence", q.Name, r.Name)
	default:
		return schema.Attribute{}, fmt.Errorf("query %s: attribute %q is ambiguous across relation occurrences", q.Name, r.Name)
	}
}

// qualifyRef returns the reference with its alias filled in (resolving
// unqualified references against the query's aliases).
func (q *Query) qualifyRef(r AttrRef) (AttrRef, error) {
	if r.Alias != "" {
		if _, err := q.ResolveRef(r); err != nil {
			return AttrRef{}, err
		}
		return r, nil
	}
	aliases := q.Aliases()
	names := make([]string, 0, len(aliases))
	for a := range aliases {
		names = append(names, a)
	}
	sort.Strings(names)
	var out AttrRef
	matches := 0
	for _, a := range names {
		rel := aliases[a]
		attr := schema.Attribute{Relation: rel, Name: r.Name}
		if q.Target == nil || q.Target.HasAttribute(attr) {
			out = AttrRef{Alias: a, Name: r.Name}
			matches++
		}
	}
	switch matches {
	case 1:
		return out, nil
	case 0:
		return AttrRef{}, fmt.Errorf("query %s: attribute %q not found", q.Name, r.Name)
	default:
		return AttrRef{}, fmt.Errorf("query %s: attribute %q is ambiguous", q.Name, r.Name)
	}
}

// NodeRefs returns the attribute references used directly by a single operator
// node (not including its subtree).
func NodeRefs(n Node) []AttrRef {
	switch op := n.(type) {
	case *Select:
		return []AttrRef{op.Ref}
	case *JoinSelect:
		return []AttrRef{op.Left, op.Right}
	case *Project:
		out := make([]AttrRef, len(op.Refs))
		copy(out, op.Refs)
		return out
	case *Aggregate:
		if op.Func == engine.AggCount || op.Ref.IsZero() {
			return nil
		}
		return []AttrRef{op.Ref}
	default:
		return nil
	}
}

// NodeAttributes resolves the target attributes referenced directly by the
// operator, de-duplicated, in reference order.
func (q *Query) NodeAttributes(n Node) ([]schema.Attribute, error) {
	refs := NodeRefs(n)
	var out []schema.Attribute
	seen := make(map[schema.Attribute]bool)
	for _, r := range refs {
		attr, err := q.ResolveRef(r)
		if err != nil {
			return nil, err
		}
		if !seen[attr] {
			seen[attr] = true
			out = append(out, attr)
		}
	}
	return out, nil
}

// TargetAttributes returns the distinct base target attributes referenced
// anywhere in the query, in first-use (pre-order) order.  The partition tree
// of q-sharing has one level per element of this list.
func (q *Query) TargetAttributes() ([]schema.Attribute, error) {
	var out []schema.Attribute
	seen := make(map[schema.Attribute]bool)
	var firstErr error
	walk(q.Root, func(n Node) {
		if firstErr != nil {
			return
		}
		attrs, err := q.NodeAttributes(n)
		if err != nil {
			firstErr = err
			return
		}
		for _, a := range attrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	})
	return out, firstErr
}

// AttributesForAlias returns the distinct attribute names referenced anywhere
// in the query for the given relation occurrence (alias).
func (q *Query) AttributesForAlias(alias string) ([]string, error) {
	aliases := q.Aliases()
	rel, ok := aliases[alias]
	if !ok {
		return nil, fmt.Errorf("query %s: unknown alias %q", q.Name, alias)
	}
	var out []string
	seen := make(map[string]bool)
	var firstErr error
	walk(q.Root, func(n Node) {
		if firstErr != nil {
			return
		}
		for _, r := range NodeRefs(n) {
			qr, err := q.qualifyRef(r)
			if err != nil {
				firstErr = err
				return
			}
			if qr.Alias != alias {
				continue
			}
			if !seen[qr.Name] {
				seen[qr.Name] = true
				out = append(out, qr.Name)
			}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	_ = rel
	return out, nil
}

// Validate checks that every alias is unique, every reference resolves and
// every referenced attribute exists in the target schema.
func (q *Query) Validate() error {
	if q.Root == nil {
		return fmt.Errorf("query %s: nil root", q.Name)
	}
	if q.Target == nil {
		return fmt.Errorf("query %s: nil target schema", q.Name)
	}
	seen := make(map[string]bool)
	for _, s := range q.Scans() {
		if q.Target.Relation(s.Relation) == nil {
			return fmt.Errorf("query %s: unknown target relation %q", q.Name, s.Relation)
		}
		a := s.AliasName()
		if seen[a] {
			return fmt.Errorf("query %s: duplicate alias %q", q.Name, a)
		}
		seen[a] = true
	}
	var err error
	walk(q.Root, func(n Node) {
		if err != nil {
			return
		}
		if _, e := q.NodeAttributes(n); e != nil {
			err = e
		}
	})
	return err
}

// Clone returns a deep copy of the query tree (the target schema is shared).
func (q *Query) Clone() *Query {
	return &Query{Name: q.Name, Target: q.Target, Root: CloneNode(q.Root)}
}

// CloneNode deep-copies a query subtree.
func CloneNode(n Node) Node {
	switch op := n.(type) {
	case nil:
		return nil
	case *Scan:
		c := *op
		return &c
	case *Select:
		return &Select{Ref: op.Ref, Op: op.Op, Value: op.Value, Child: CloneNode(op.Child)}
	case *JoinSelect:
		return &JoinSelect{Left: op.Left, Op: op.Op, Right: op.Right, Child: CloneNode(op.Child)}
	case *Project:
		refs := make([]AttrRef, len(op.Refs))
		copy(refs, op.Refs)
		return &Project{Refs: refs, Child: CloneNode(op.Child)}
	case *Product:
		return &Product{Left: CloneNode(op.Left), Right: CloneNode(op.Right)}
	case *Aggregate:
		return &Aggregate{Func: op.Func, Ref: op.Ref, Child: CloneNode(op.Child)}
	default:
		panic(fmt.Sprintf("query: unknown node type %T", n))
	}
}
