package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestContextDefaults(t *testing.T) {
	var nilCtx *Context
	if got := nilCtx.Parallelism(); got != 1 {
		t.Errorf("nil context parallelism = %d, want 1", got)
	}
	if nilCtx.Ctx() == nil {
		t.Error("nil context Ctx() = nil")
	}
	if err := nilCtx.Err(); err != nil {
		t.Errorf("nil context Err() = %v", err)
	}
	if got := Sequential().Parallelism(); got != 1 {
		t.Errorf("Sequential parallelism = %d, want 1", got)
	}
	if got := NewContext(nil, 0).Parallelism(); got < 1 {
		t.Errorf("default parallelism = %d, want >= 1", got)
	}
	if got := NewContext(nil, 7).WithParallelism(3).Parallelism(); got != 3 {
		t.Errorf("WithParallelism(3) = %d", got)
	}
}

// TestMapOrdered checks the package's core contract: consume sees results in
// index order at every parallelism level, even when items complete out of
// order.
func TestMapOrdered(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 2, 8, 64} {
		ec := NewContext(context.Background(), workers)
		var consumed []int
		err := Map(ec, n, func(ctx context.Context, i int) (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // jitter completion order
			}
			return i * i, nil
		}, func(i, v int) error {
			if v != i*i {
				t.Errorf("workers=%d: consume(%d) got %d, want %d", workers, i, v, i*i)
			}
			consumed = append(consumed, i)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(consumed) != n {
			t.Fatalf("workers=%d: consumed %d items, want %d", workers, len(consumed), n)
		}
		for i, got := range consumed {
			if got != i {
				t.Fatalf("workers=%d: consume order[%d] = %d, want %d", workers, i, got, i)
			}
		}
	}
}

func TestMapProduceError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		ec := NewContext(context.Background(), workers)
		err := Map(ec, 50, func(ctx context.Context, i int) (int, error) {
			if i == 10 {
				return 0, boom
			}
			return i, nil
		}, func(i, v int) error {
			if i >= 10 {
				t.Errorf("workers=%d: consumed index %d past the failing item", workers, i)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, boom)
		}
	}
}

// TestMapPrefersRealErrorOverCancellationFallout pins the error-selection
// rule: when one item fails, lower-index items that die with context.Canceled
// because Map cancelled them must not mask the genuine error.
func TestMapPrefersRealErrorOverCancellationFallout(t *testing.T) {
	boom := errors.New("boom")
	err := Map(NewContext(context.Background(), 4), 10, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom // fails while items 0, 1, 3 are still sleeping
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
		return i, nil
	}, nil)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v (cancellation fallout must not win)", err, boom)
	}
}

// TestMapBoundedRunahead checks the reorder-buffer bound: while the item the
// consumer is waiting for is still in flight, workers must not claim items
// beyond the 2×workers ticket window.
func TestMapBoundedRunahead(t *testing.T) {
	const workers = 4
	var (
		done0     atomic.Bool
		maxDuring atomic.Int64
	)
	err := Map(NewContext(context.Background(), workers), 100, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			time.Sleep(250 * time.Millisecond)
			done0.Store(true)
			return 0, nil
		}
		if !done0.Load() {
			for {
				cur := maxDuring.Load()
				if int64(i) <= cur || maxDuring.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
		return i, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxDuring.Load(); got >= 2*workers {
		t.Errorf("claimed index %d while item 0 was in flight; window is %d", got, 2*workers)
	}
}

func TestMapConsumeError(t *testing.T) {
	stop := errors.New("stop")
	for _, workers := range []int{1, 8} {
		ec := NewContext(context.Background(), workers)
		last := -1
		err := Map(ec, 50, func(ctx context.Context, i int) (int, error) {
			return i, nil
		}, func(i, v int) error {
			if i == 5 {
				return stop
			}
			last = i
			return nil
		})
		if !errors.Is(err, stop) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, stop)
		}
		if last != 4 {
			t.Errorf("workers=%d: last consumed = %d, want 4", workers, last)
		}
	}
}

func TestMapCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		ec := NewContext(ctx, workers)
		calls := 0
		err := Map(ec, 50, func(ctx context.Context, i int) (int, error) {
			calls++
			return i, nil
		}, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if workers == 1 && calls != 0 {
			t.Errorf("sequential map ran %d items under a cancelled context", calls)
		}
	}
}

func TestMapCancelDuringRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ec := NewContext(ctx, 4)
	var started atomic.Int64
	err := Map(ec, 1000, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 8 {
			cancel()
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(time.Millisecond):
		}
		return i, nil
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("all %d items ran despite cancellation", n)
	}
}

func TestMapZeroItems(t *testing.T) {
	if err := Map(Sequential(), 0, func(ctx context.Context, i int) (int, error) {
		t.Fatal("produce called for empty input")
		return 0, nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(NewContext(context.Background(), 8), 100, func(ctx context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
	wantErr := fmt.Errorf("nope")
	if err := ForEach(Sequential(), 3, func(ctx context.Context, i int) error {
		return wantErr
	}); !errors.Is(err, wantErr) {
		t.Errorf("ForEach err = %v, want %v", err, wantErr)
	}
}
