// Package exec is the shared evaluation runtime: a Context that carries the
// caller's context.Context together with a bound on worker parallelism, and an
// ordered fan-out primitive (Map) used by every evaluation method in
// internal/core to run independent units of work — per-mapping reformulations,
// per-partition evaluations, per-e-unit operator steps — on a bounded pool of
// goroutines.
//
// Determinism is the package's contract: Map always delivers results to the
// consumer in item-index order, regardless of the order in which workers
// complete them.  Callers that aggregate floating-point probabilities in the
// consumer therefore produce bit-identical results at any parallelism level,
// which is what lets Parallelism become a pure performance knob.
package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Context carries the cross-cutting state of one evaluation run: the caller's
// context.Context (for cancellation and deadlines), the maximum number of
// worker goroutines any single fan-out may use, and the engine batch size the
// run's executors should use.  A nil *Context behaves like Sequential().
type Context struct {
	ctx         context.Context
	parallelism int
	batch       int
}

// NewContext builds an execution context.  A nil ctx defaults to
// context.Background(); parallelism <= 0 defaults to runtime.GOMAXPROCS(0).
func NewContext(ctx context.Context, parallelism int) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Context{ctx: ctx, parallelism: parallelism}
}

// Sequential returns a context with parallelism 1 and no cancellation, the
// behaviour of the pre-runtime sequential evaluators.
func Sequential() *Context { return NewContext(context.Background(), 1) }

// Ctx returns the underlying context.Context (never nil).
func (c *Context) Ctx() context.Context {
	if c == nil || c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Parallelism returns the worker bound (at least 1).
func (c *Context) Parallelism() int {
	if c == nil || c.parallelism <= 0 {
		return 1
	}
	return c.parallelism
}

// Err returns the underlying context's error, if any.
func (c *Context) Err() error { return c.Ctx().Err() }

// WithParallelism returns a context sharing c's context.Context and batch
// size but with the given worker bound (values <= 0 select GOMAXPROCS, as in
// NewContext).
func (c *Context) WithParallelism(parallelism int) *Context {
	nc := NewContext(c.Ctx(), parallelism)
	nc.batch = c.Batch()
	return nc
}

// Batch returns the engine batch size the run's executors should use: 0 (the
// default) selects the engine's own default, a positive value overrides the
// rows-per-batch, and a negative value selects the tuple-at-a-time pipeline.
func (c *Context) Batch() int {
	if c == nil {
		return 0
	}
	return c.batch
}

// WithBatch returns a context sharing c's context.Context and parallelism but
// with the given engine batch size.
func (c *Context) WithBatch(batch int) *Context {
	nc := NewContext(c.Ctx(), c.Parallelism())
	nc.batch = batch
	return nc
}

// slot is one produced result travelling from a worker to the consumer.
type slot[T any] struct {
	i   int
	v   T
	err error
}

// Map runs produce(ctx, i) for every i in [0, n) on up to Parallelism()
// workers, and feeds each result to consume(i, v) on the calling goroutine in
// strict index order.  Consumption streams: consume(i, ...) runs as soon as
// every result up to i is available, overlapping ordered aggregation with
// production.  consume may be nil when only side effects of produce matter.
//
// The first error — from produce, from consume, or from the context being
// cancelled — stops the run; outstanding workers are cancelled and their
// results discarded.  Genuine errors are preferred over the context.Canceled
// fallout the internal cancellation induces in other workers, and within a
// class the smallest item index wins, so the error a caller sees matches the
// sequential run's.  With Parallelism() == 1, Map degenerates to a plain
// sequential loop with a cancellation check before each item.
//
// Workers claim items at most 2×workers ahead of the item the consumer is
// waiting for, so the reorder buffer holds O(workers) results even when a
// low-index item is much slower than its successors.
func Map[T any](ec *Context, n int, produce func(ctx context.Context, i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return ec.Err()
	}
	workers := ec.Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ec.Err(); err != nil {
				return err
			}
			v, err := produce(ec.Ctx(), i)
			if err != nil {
				return err
			}
			if consume != nil {
				if err := consume(i, v); err != nil {
					return err
				}
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ec.Ctx())
	defer cancel()

	out := make(chan slot[T], workers)
	// tickets bounds how far production runs ahead of in-order consumption:
	// a worker takes a ticket before claiming an item, and the ticket returns
	// to the pool when the item's result is consumed or discarded.
	window := 2 * workers
	tickets := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := next
		next++
		return i
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-tickets:
				case <-ctx.Done():
					return
				}
				i := claim()
				if i >= n {
					tickets <- struct{}{} // wake the next waiting worker so it can exit too
					return
				}
				if err := ctx.Err(); err != nil {
					out <- slot[T]{i: i, err: err}
					return
				}
				v, err := produce(ctx, i)
				out <- slot[T]{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	// The consumer drains out until the workers exit, reordering results so
	// consume observes strict index order.
	var (
		firstErr       error
		firstErrIdx    = n
		firstErrCancel bool
		pending        = make(map[int]slot[T], window)
		nextConsume    = 0
	)
	fail := func(i int, err error) {
		cancellation := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		better := firstErr == nil ||
			(!cancellation && firstErrCancel) ||
			(cancellation == firstErrCancel && i < firstErrIdx)
		if better {
			firstErr, firstErrIdx, firstErrCancel = err, i, cancellation
		}
		cancel()
	}
	release := func() { tickets <- struct{}{} }
	for s := range out {
		if s.err != nil {
			release()
			fail(s.i, s.err)
			continue
		}
		if firstErr != nil {
			release()
			continue // draining after failure
		}
		pending[s.i] = s
		for {
			cur, ok := pending[nextConsume]
			if !ok {
				break
			}
			delete(pending, nextConsume)
			nextConsume++
			release()
			if consume != nil {
				if err := consume(cur.i, cur.v); err != nil {
					fail(cur.i, err)
					break
				}
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return ec.Err()
}

// ForEach is Map without a produced value: it runs fn(ctx, i) for every i in
// [0, n) on the worker pool and returns the first error.
func ForEach(ec *Context, n int, fn func(ctx context.Context, i int) error) error {
	return Map(ec, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	}, nil)
}
