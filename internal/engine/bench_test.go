package engine

import (
	"context"
	"fmt"
	"testing"
)

// Microbenchmarks comparing the live operators (hash keys, bound predicates,
// arena tuples, streaming executor) against the retained naive reference
// (string keys, per-row name lookups, per-row allocation, materialize per
// operator).  Run with:
//
//	go test ./internal/engine -bench . -benchmem
//
// The HashJoin and Distinct pairs are the acceptance gate of the streaming
// rewrite: the hashed implementations must stay ≥2x the naive throughput.

// benchRelation builds n rows of (int id, string tag, float score) with ~1%
// key locality so joins and distinct have realistic fan-out.
func benchRelation(name string, n int) *Relation {
	r := NewRelation(name, []string{name + ".id", name + ".tag", name + ".score"})
	r.Rows = make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, Tuple{
			I(int64(i % (n/100 + 1))),
			S(fmt.Sprintf("tag-%d", i%97)),
			F(float64(i%1000) / 3),
		})
	}
	return r
}

const benchRows = 20000

func BenchmarkSelect(b *testing.B) {
	rel := benchRelation("L", benchRows)
	pred := And(
		&ConstPredicate{Column: "L.score", Op: OpGt, Value: F(50)},
		&ConstPredicate{Column: "L.tag", Op: OpNe, Value: S("tag-13")},
	)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NaiveSelect(context.Background(), rel, pred, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bound", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Select(context.Background(), rel, pred, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkProject(b *testing.B) {
	rel := benchRelation("L", benchRows)
	cols := []string{"L.score", "L.id"}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NaiveProject(context.Background(), rel, cols, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Project(context.Background(), rel, cols, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// keyedRelation builds n rows with near-unique integer keys, the shape of a
// selective foreign-key equi-join (the cid-style joins of the workload).
func keyedRelation(name string, n, stride int) *Relation {
	r := NewRelation(name, []string{name + ".id", name + ".tag"})
	r.Rows = make([]Tuple, 0, n)
	for i := 0; i < n; i++ {
		r.Rows = append(r.Rows, Tuple{
			I(int64((i*stride + 1) % benchRows)),
			S(fmt.Sprintf("tag-%d", i%97)),
		})
	}
	return r
}

func BenchmarkHashJoin(b *testing.B) {
	left := keyedRelation("L", benchRows, 1)
	right := keyedRelation("R", benchRows/4, 4)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NaiveHashJoin(context.Background(), left, right, "L.id", "R.id", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hashed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HashJoin(context.Background(), left, right, "L.id", "R.id", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDistinct(b *testing.B) {
	rel := benchRelation("L", benchRows)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NaiveDistinct(context.Background(), rel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hashed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Distinct(context.Background(), rel, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAggregate(b *testing.B) {
	rel := benchRelation("L", benchRows)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NaiveAggregate(context.Background(), rel, AggSum, "L.score", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Aggregate(context.Background(), rel, AggSum, "L.score", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipeline measures a fused scan→select→select→project chain — the
// shape every reformulated source query takes — where the streaming executor
// materializes nothing between operators.
func BenchmarkPipeline(b *testing.B) {
	db := NewInstance("D")
	base := benchRelation("T", benchRows)
	base.Name = "T"
	db.AddRelation(base)
	plan := &ProjectPlan{
		Columns: []string{"T.id"},
		Child: &SelectPlan{
			Pred: &ConstPredicate{Column: "T.tag", Op: OpNe, Value: S("tag-13")},
			Child: &SelectPlan{
				Pred:  &ConstPredicate{Column: "T.score", Op: OpGt, Value: F(50)},
				Child: &ScanPlan{Relation: "T"},
			},
		},
	}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NaiveExecute(context.Background(), db, plan, NewStats()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		ex := &Executor{DB: db, Stats: NewStats()}
		for i := 0; i < b.N; i++ {
			if _, err := ex.ExecuteContext(context.Background(), plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexLookupVsScan measures a selective (~0.5%) constant-equality
// selection as a full scan+filter pipeline versus a probe of the shared
// per-column index — the acceptance gate of the index subsystem.
func BenchmarkIndexLookupVsScan(b *testing.B) {
	db := NewInstance("D")
	db.AddRelation(benchRelation("T", benchRows))
	plan := &SelectPlan{
		Pred:  &ConstPredicate{Column: "T.id", Op: OpEq, Value: I(7)},
		Child: &ScanPlan{Relation: "T"},
	}
	b.Run("scan+filter", func(b *testing.B) {
		ex := &Executor{DB: db, Stats: NewStats()}
		for i := 0; i < b.N; i++ {
			if _, err := ex.ExecuteContext(context.Background(), plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		ex := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes()}
		if _, err := ex.Execute(plan); err != nil { // warm the index build
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.ExecuteContext(context.Background(), plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSharedJoinBuild measures h=8 identical equi-joins — the e-basic
// shape, one probe per reformulated query — with h independent build-side
// hash tables versus the one shared per-column index.
func BenchmarkSharedJoinBuild(b *testing.B) {
	const h = 8
	db := NewInstance("D")
	db.AddRelation(keyedRelation("L", benchRows, 1))
	db.AddRelation(keyedRelation("R", benchRows/4, 4))
	plan := &JoinPlan{
		LeftCol: "L.id", RightCol: "R.id",
		Left:  &ScanPlan{Relation: "L"},
		Right: &ScanPlan{Relation: "R"},
	}
	run := func(b *testing.B, indexes *IndexCache) {
		for i := 0; i < b.N; i++ {
			for q := 0; q < h; q++ {
				ex := &Executor{DB: db, Stats: NewStats(), Indexes: indexes}
				if _, err := ex.ExecuteContext(context.Background(), plan); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("independent", func(b *testing.B) { run(b, nil) })
	b.Run("shared", func(b *testing.B) {
		warm := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes()}
		if _, err := warm.Execute(plan); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, db.Indexes())
	})
}
