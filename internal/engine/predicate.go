package engine

import (
	"fmt"
	"strings"
)

// CompareOp enumerates comparison operators usable in selection predicates.
type CompareOp int

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL-ish spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// Matches evaluates the operator over a comparison result (-1, 0, +1).
func (op CompareOp) Matches(cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

// Predicate is a boolean condition evaluated against a row of a relation.
type Predicate interface {
	// Eval evaluates the predicate on the row of rel at the given index.
	Eval(rel *Relation, row Tuple) (bool, error)
	// String returns a canonical rendering used for plan signatures.
	String() string
}

// ConstPredicate compares a column against a constant value.
type ConstPredicate struct {
	Column string
	Op     CompareOp
	Value  Value
}

// Eval implements Predicate.
func (p *ConstPredicate) Eval(rel *Relation, row Tuple) (bool, error) {
	idx := rel.ColumnIndex(p.Column)
	if idx < 0 {
		return false, fmt.Errorf("predicate %s: column %q not found in %v", p, p.Column, rel.Columns)
	}
	return p.Op.Matches(row[idx].Compare(p.Value)), nil
}

// String implements Predicate.
func (p *ConstPredicate) String() string {
	return fmt.Sprintf("%s%s%s", p.Column, p.Op, p.Value)
}

// ColPredicate compares two columns of the same (possibly joined) relation.
type ColPredicate struct {
	Left  string
	Op    CompareOp
	Right string
}

// Eval implements Predicate.
func (p *ColPredicate) Eval(rel *Relation, row Tuple) (bool, error) {
	li := rel.ColumnIndex(p.Left)
	if li < 0 {
		return false, fmt.Errorf("predicate %s: column %q not found in %v", p, p.Left, rel.Columns)
	}
	ri := rel.ColumnIndex(p.Right)
	if ri < 0 {
		return false, fmt.Errorf("predicate %s: column %q not found in %v", p, p.Right, rel.Columns)
	}
	return p.Op.Matches(row[li].Compare(row[ri])), nil
}

// String implements Predicate.
func (p *ColPredicate) String() string {
	return fmt.Sprintf("%s%s%s", p.Left, p.Op, p.Right)
}

// AndPredicate is the conjunction of its children.
type AndPredicate struct {
	Children []Predicate
}

// Eval implements Predicate.
func (p *AndPredicate) Eval(rel *Relation, row Tuple) (bool, error) {
	for _, c := range p.Children {
		ok, err := c.Eval(rel, row)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// String implements Predicate.
func (p *AndPredicate) String() string {
	parts := make([]string, len(p.Children))
	for i, c := range p.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// OrPredicate is the disjunction of its children.
type OrPredicate struct {
	Children []Predicate
}

// Eval implements Predicate.
func (p *OrPredicate) Eval(rel *Relation, row Tuple) (bool, error) {
	for _, c := range p.Children {
		ok, err := c.Eval(rel, row)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// String implements Predicate.
func (p *OrPredicate) String() string {
	parts := make([]string, len(p.Children))
	for i, c := range p.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

// NotPredicate negates its child.
type NotPredicate struct {
	Child Predicate
}

// Eval implements Predicate.
func (p *NotPredicate) Eval(rel *Relation, row Tuple) (bool, error) {
	ok, err := p.Child.Eval(rel, row)
	if err != nil {
		return false, err
	}
	return !ok, nil
}

// String implements Predicate.
func (p *NotPredicate) String() string { return "NOT " + p.Child.String() }

// boundPredicate is a predicate compiled against a fixed column list: column
// references are resolved to positions once at bind time, so per-row
// evaluation indexes straight into the tuple instead of scanning column names.
type boundPredicate interface {
	eval(row Tuple) (bool, error)
}

type boundConst struct {
	idx int
	op  CompareOp
	val Value
}

func (p *boundConst) eval(row Tuple) (bool, error) {
	return p.op.Matches(row[p.idx].Compare(p.val)), nil
}

type boundCol struct {
	li, ri int
	op     CompareOp
}

func (p *boundCol) eval(row Tuple) (bool, error) {
	return p.op.Matches(row[p.li].Compare(row[p.ri])), nil
}

type boundAnd struct{ children []boundPredicate }

func (p *boundAnd) eval(row Tuple) (bool, error) {
	for _, c := range p.children {
		ok, err := c.eval(row)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

type boundOr struct{ children []boundPredicate }

func (p *boundOr) eval(row Tuple) (bool, error) {
	for _, c := range p.children {
		ok, err := c.eval(row)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

type boundNot struct{ child boundPredicate }

func (p *boundNot) eval(row Tuple) (bool, error) {
	ok, err := p.child.eval(row)
	return !ok, err
}

// boundFallback adapts predicate implementations the binder does not know:
// they keep evaluating through the public Eval contract against a synthetic
// relation carrying the pipeline's columns.
type boundFallback struct {
	pred Predicate
	rel  *Relation
}

func (p *boundFallback) eval(row Tuple) (bool, error) { return p.pred.Eval(p.rel, row) }

// bindPredicate compiles the predicate against the column list, resolving
// every column reference once via resolve.  Unresolvable references fail at
// bind time with the same message the per-row evaluation used to produce.
func bindPredicate(p Predicate, resolve func(string) int, cols []string) (boundPredicate, error) {
	switch n := p.(type) {
	case *ConstPredicate:
		idx := resolve(n.Column)
		if idx < 0 {
			return nil, fmt.Errorf("predicate %s: column %q not found in %v", n, n.Column, cols)
		}
		return &boundConst{idx: idx, op: n.Op, val: n.Value}, nil
	case *ColPredicate:
		li := resolve(n.Left)
		if li < 0 {
			return nil, fmt.Errorf("predicate %s: column %q not found in %v", n, n.Left, cols)
		}
		ri := resolve(n.Right)
		if ri < 0 {
			return nil, fmt.Errorf("predicate %s: column %q not found in %v", n, n.Right, cols)
		}
		return &boundCol{li: li, ri: ri, op: n.Op}, nil
	case *AndPredicate:
		children := make([]boundPredicate, len(n.Children))
		for i, c := range n.Children {
			b, err := bindPredicate(c, resolve, cols)
			if err != nil {
				return nil, err
			}
			children[i] = b
		}
		return &boundAnd{children: children}, nil
	case *OrPredicate:
		children := make([]boundPredicate, len(n.Children))
		for i, c := range n.Children {
			b, err := bindPredicate(c, resolve, cols)
			if err != nil {
				return nil, err
			}
			children[i] = b
		}
		return &boundOr{children: children}, nil
	case *NotPredicate:
		child, err := bindPredicate(n.Child, resolve, cols)
		if err != nil {
			return nil, err
		}
		return &boundNot{child: child}, nil
	default:
		return &boundFallback{pred: p, rel: &Relation{Columns: cols}}, nil
	}
}

// bindRelPredicate binds a predicate against a materialized relation, using
// its cached column index.
func bindRelPredicate(p Predicate, rel *Relation) (boundPredicate, error) {
	return bindPredicate(p, rel.ColumnIndex, rel.Columns)
}

// Eq is shorthand for a column = constant predicate.
func Eq(column string, v Value) Predicate {
	return &ConstPredicate{Column: column, Op: OpEq, Value: v}
}

// ColEq is shorthand for a column = column predicate.
func ColEq(left, right string) Predicate {
	return &ColPredicate{Left: left, Op: OpEq, Right: right}
}

// And combines predicates into a conjunction, flattening nested Ands.
func And(preds ...Predicate) Predicate {
	var flat []Predicate
	for _, p := range preds {
		if p == nil {
			continue
		}
		if ap, ok := p.(*AndPredicate); ok {
			flat = append(flat, ap.Children...)
			continue
		}
		flat = append(flat, p)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &AndPredicate{Children: flat}
}
