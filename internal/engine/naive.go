package engine

import (
	"context"
	"fmt"
)

// This file retains the engine's original materialize-per-operator
// implementation, verbatim in behaviour: string-keyed hashing via Tuple.Key,
// per-row predicate evaluation with linear column lookups, and one tuple
// allocation per output row.  It is NOT used by any evaluation method.  It
// exists as the reference the streaming pipeline is tested against — the
// equivalence tests in stream_test.go assert identical rows, row order and
// statistics for randomized inputs — and as the "before" side of the
// microbenchmarks in bench_test.go, so the speedup of the hash-based
// streaming engine stays measurable against the implementation it replaced.

// NaiveSelect is the reference Select: per-row Predicate.Eval with a column
// name lookup on every row.
func NaiveSelect(ctx context.Context, rel *Relation, pred Predicate, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		ok, err := pred.Eval(rel, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	stats.record(OpKindSelect, len(rel.Rows), len(out.Rows))
	return out, nil
}

// NaiveProject is the reference Project: one tuple allocation per output row.
func NaiveProject(ctx context.Context, rel *Relation, columns []string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	idx := make([]int, len(columns))
	outCols := make([]string, len(columns))
	for i, c := range columns {
		j := lookupColumn(rel.Columns, c)
		if j < 0 {
			return nil, fmt.Errorf("project: column %q not found in %v", c, rel.Columns)
		}
		idx[i] = j
		outCols[i] = rel.Columns[j]
	}
	out := NewRelation(rel.Name, outCols)
	out.Rows = make([]Tuple, 0, len(rel.Rows))
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		t := make(Tuple, len(idx))
		for i, j := range idx {
			t[i] = row[j]
		}
		out.Rows = append(out.Rows, t)
	}
	stats.record(OpKindProject, len(rel.Rows), len(out.Rows))
	return out, nil
}

// NaiveProduct is the reference Cartesian product, including its original
// rows(left)·rows(right) pre-allocation (callers beware: that product can
// overflow — the live Product grows geometrically instead).
func NaiveProduct(ctx context.Context, left, right *Relation, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(left.Columns)+len(right.Columns))
	cols = append(cols, left.Columns...)
	cols = append(cols, right.Columns...)
	out := NewRelation(left.Name+"x"+right.Name, cols)
	out.Rows = make([]Tuple, 0, len(left.Rows)*len(right.Rows))
	produced := 0
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			produced++
			if produced%checkInterval == 0 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			t := make(Tuple, 0, len(lr)+len(rr))
			t = append(t, lr...)
			t = append(t, rr...)
			out.Rows = append(out.Rows, t)
		}
	}
	stats.record(OpKindProduct, len(left.Rows)+len(right.Rows), len(out.Rows))
	return out, nil
}

// NaiveHashJoin is the reference equi-join: the hash table is keyed by
// formatted canonical key strings.
func NaiveHashJoin(ctx context.Context, left, right *Relation, leftCol, rightCol string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	li := lookupColumn(left.Columns, leftCol)
	if li < 0 {
		return nil, fmt.Errorf("join: column %q not found in %v", leftCol, left.Columns)
	}
	ri := lookupColumn(right.Columns, rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("join: column %q not found in %v", rightCol, right.Columns)
	}
	cols := make([]string, 0, len(left.Columns)+len(right.Columns))
	cols = append(cols, left.Columns...)
	cols = append(cols, right.Columns...)
	out := NewRelation(left.Name+"⋈"+right.Name, cols)

	build := make(map[string][]Tuple, len(right.Rows))
	for i, rr := range right.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		k := Tuple{rr[ri]}.Key()
		build[k] = append(build[k], rr)
	}
	probed := 0
	for _, lr := range left.Rows {
		k := Tuple{lr[li]}.Key()
		for _, rr := range build[k] {
			probed++
			if probed%checkInterval == 0 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			t := make(Tuple, 0, len(lr)+len(rr))
			t = append(t, lr...)
			t = append(t, rr...)
			out.Rows = append(out.Rows, t)
		}
	}
	stats.record(OpKindJoin, len(left.Rows)+len(right.Rows), len(out.Rows))
	return out, nil
}

// NaiveDistinct is the reference duplicate elimination: a set of formatted
// canonical key strings.
func NaiveDistinct(ctx context.Context, rel *Relation, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	seen := make(map[string]bool, len(rel.Rows))
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		k := row.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rows = append(out.Rows, row)
	}
	stats.record(OpKindDistinct, len(rel.Rows), len(out.Rows))
	return out, nil
}

// NaiveAggregate is the reference single-row aggregate.
func NaiveAggregate(ctx context.Context, rel *Relation, fn AggFunc, column string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	outCol := fn.String()
	if column != "" {
		outCol = fn.String() + "(" + column + ")"
	}
	out := NewRelation(rel.Name, []string{outCol})

	switch fn {
	case AggCount:
		out.Rows = append(out.Rows, Tuple{I(int64(len(rel.Rows)))})
	case AggSum, AggAvg:
		idx := lookupColumn(rel.Columns, column)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s: column %q not found in %v", fn, column, rel.Columns)
		}
		sum := 0.0
		n := 0
		for i, row := range rel.Rows {
			if i%checkInterval == checkInterval-1 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			f, ok := row[idx].AsFloat()
			if !ok {
				return nil, fmt.Errorf("aggregate %s: non-numeric value %v in column %q", fn, row[idx], column)
			}
			sum += f
			n++
		}
		if fn == AggSum {
			out.Rows = append(out.Rows, Tuple{F(sum)})
		} else {
			if n == 0 {
				out.Rows = append(out.Rows, Tuple{Null()})
			} else {
				out.Rows = append(out.Rows, Tuple{F(sum / float64(n))})
			}
		}
	case AggMin, AggMax:
		idx := lookupColumn(rel.Columns, column)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s: column %q not found in %v", fn, column, rel.Columns)
		}
		if len(rel.Rows) == 0 {
			out.Rows = append(out.Rows, Tuple{Null()})
			break
		}
		best := rel.Rows[0][idx]
		for _, row := range rel.Rows[1:] {
			cmp := row[idx].Compare(best)
			if (fn == AggMin && cmp < 0) || (fn == AggMax && cmp > 0) {
				best = row[idx]
			}
		}
		out.Rows = append(out.Rows, Tuple{best})
	default:
		return nil, fmt.Errorf("aggregate: unsupported function %v", fn)
	}
	stats.record(OpKindAggregate, len(rel.Rows), 1)
	return out, nil
}

// NaiveExecute evaluates the plan with the reference operators, materializing
// every node's result — the executor's behaviour before the streaming
// pipeline.  Equivalence tests run it next to Executor.ExecuteContext.
func NaiveExecute(ctx context.Context, db *Instance, p Plan, stats *Stats) (*Relation, error) {
	if p == nil {
		return nil, fmt.Errorf("execute: nil plan")
	}
	switch n := p.(type) {
	case *ScanPlan:
		base := db.Relation(n.Relation)
		if base == nil {
			return nil, fmt.Errorf("scan: unknown relation %q", n.Relation)
		}
		alias := n.Alias
		if alias == "" {
			alias = n.Relation
		}
		stats.record(OpKindScan, 0, len(base.Rows))
		return base.QualifyColumns(alias), nil
	case *MaterialPlan:
		if n.Rel == nil {
			return nil, fmt.Errorf("materialized plan %q has nil relation", n.Label)
		}
		return n.Rel, nil
	case *SelectPlan:
		child, err := NaiveExecute(ctx, db, n.Child, stats)
		if err != nil {
			return nil, err
		}
		return NaiveSelect(ctx, child, n.Pred, stats)
	case *ProjectPlan:
		child, err := NaiveExecute(ctx, db, n.Child, stats)
		if err != nil {
			return nil, err
		}
		return NaiveProject(ctx, child, n.Columns, stats)
	case *ProductPlan:
		left, err := NaiveExecute(ctx, db, n.Left, stats)
		if err != nil {
			return nil, err
		}
		right, err := NaiveExecute(ctx, db, n.Right, stats)
		if err != nil {
			return nil, err
		}
		return NaiveProduct(ctx, left, right, stats)
	case *JoinPlan:
		left, err := NaiveExecute(ctx, db, n.Left, stats)
		if err != nil {
			return nil, err
		}
		right, err := NaiveExecute(ctx, db, n.Right, stats)
		if err != nil {
			return nil, err
		}
		return NaiveHashJoin(ctx, left, right, n.LeftCol, n.RightCol, stats)
	case *AggregatePlan:
		child, err := NaiveExecute(ctx, db, n.Child, stats)
		if err != nil {
			return nil, err
		}
		return NaiveAggregate(ctx, child, n.Func, n.Column, stats)
	case *DistinctPlan:
		child, err := NaiveExecute(ctx, db, n.Child, stats)
		if err != nil {
			return nil, err
		}
		return NaiveDistinct(ctx, child, stats)
	default:
		return nil, fmt.Errorf("execute: unsupported plan node %T", p)
	}
}
