package engine

import (
	"strings"
	"testing"
)

func optimizerInstance() *Instance {
	db := NewInstance("D")
	c := NewRelation("Customer", []string{"cid", "cname", "city"})
	c.MustAppend(Tuple{I(1), S("Alice"), S("hk")})
	c.MustAppend(Tuple{I(2), S("Bob"), S("sz")})
	c.MustAppend(Tuple{I(3), S("Cindy"), S("hk")})
	db.AddRelation(c)
	o := NewRelation("Orders", []string{"oid", "cid", "price"})
	o.MustAppend(Tuple{I(10), I(1), F(5)})
	o.MustAppend(Tuple{I(11), I(2), F(7)})
	o.MustAppend(Tuple{I(12), I(1), F(9)})
	o.MustAppend(Tuple{I(13), I(3), F(1)})
	db.AddRelation(o)
	return db
}

func TestOptimizeConvertsProductToJoin(t *testing.T) {
	plan := &SelectPlan{
		Pred: ColEq("C.Customer.cid", "O.Orders.cid"),
		Child: &ProductPlan{
			Left:  &ScanPlan{Relation: "Customer", Alias: "C.Customer"},
			Right: &ScanPlan{Relation: "Orders", Alias: "O.Orders"},
		},
	}
	opt := Optimize(plan)
	if _, ok := opt.(*JoinPlan); !ok {
		t.Fatalf("optimized plan is %T, want *JoinPlan (%s)", opt, opt.Signature())
	}
	db := optimizerInstance()
	exOpt := NewExecutor(db)
	relOpt, err := exOpt.Execute(opt)
	if err != nil {
		t.Fatal(err)
	}
	exRaw := NewExecutor(db)
	relRaw, err := exRaw.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if relOpt.NumRows() != relRaw.NumRows() {
		t.Errorf("optimized plan returned %d rows, raw %d", relOpt.NumRows(), relRaw.NumRows())
	}
	// The join avoids the 3x4 product.
	if exOpt.Stats.RowsProduced() >= exRaw.Stats.RowsProduced() {
		t.Errorf("optimizer should reduce intermediate rows: %d vs %d",
			exOpt.Stats.RowsProduced(), exRaw.Stats.RowsProduced())
	}
	// Reversed column order also converts.
	rev := &SelectPlan{
		Pred: ColEq("O.Orders.cid", "C.Customer.cid"),
		Child: &ProductPlan{
			Left:  &ScanPlan{Relation: "Customer", Alias: "C.Customer"},
			Right: &ScanPlan{Relation: "Orders", Alias: "O.Orders"},
		},
	}
	if _, ok := Optimize(rev).(*JoinPlan); !ok {
		t.Error("reversed join predicate should still convert to a join")
	}
}

func TestOptimizePushesSelectionsDown(t *testing.T) {
	plan := &SelectPlan{
		Pred: Eq("C.Customer.city", S("hk")),
		Child: &SelectPlan{
			Pred: &ConstPredicate{Column: "O.Orders.price", Op: OpGt, Value: F(4)},
			Child: &ProductPlan{
				Left:  &ScanPlan{Relation: "Customer", Alias: "C.Customer"},
				Right: &ScanPlan{Relation: "Orders", Alias: "O.Orders"},
			},
		},
	}
	opt := Optimize(plan)
	sig := opt.Signature()
	// Both selections must now sit directly above their scans, inside the
	// product.
	if !strings.Contains(sig, "product(select") {
		t.Errorf("selections not pushed below the product: %s", sig)
	}
	db := optimizerInstance()
	a, err := NewExecutor(db).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor(db).Execute(opt)
	if err != nil {
		t.Fatal(err)
	}
	a.SortRows()
	b.SortRows()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
	}
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Errorf("row %d differs: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestOptimizeLeavesUnrelatedPlansAlone(t *testing.T) {
	plan := &AggregatePlan{Func: AggCount, Child: &ScanPlan{Relation: "Customer"}}
	if got := Optimize(plan).Signature(); got != plan.Signature() {
		t.Errorf("aggregate-over-scan changed: %s", got)
	}
	sel := &SelectPlan{Pred: Eq("Customer.city", S("hk")), Child: &ScanPlan{Relation: "Customer"}}
	if got := Optimize(sel).Signature(); got != sel.Signature() {
		t.Errorf("simple selection changed: %s", got)
	}
	if Optimize(nil) != nil {
		t.Error("Optimize(nil) should be nil")
	}
	// A selection whose column belongs to neither product side stays put.
	odd := &SelectPlan{
		Pred: Eq("X.unknown", S("v")),
		Child: &ProductPlan{
			Left:  &ScanPlan{Relation: "Customer", Alias: "C.Customer"},
			Right: &ScanPlan{Relation: "Orders", Alias: "O.Orders"},
		},
	}
	if _, ok := Optimize(odd).(*SelectPlan); !ok {
		t.Error("unpushable selection should remain a selection")
	}
}

// TestOptimizeKeepsConstAdjacentToScan pins the index-enabling rewrite: a
// constant selection stacked above a column comparison over a scan slides
// below it, so the select*(scan) shape the index compiler recognises survives.
func TestOptimizeKeepsConstAdjacentToScan(t *testing.T) {
	scan := &ScanPlan{Relation: "Customer", Alias: "C.Customer"}
	plan := &SelectPlan{
		Pred: Eq("C.Customer.city", S("hk")),
		Child: &SelectPlan{
			Pred:  &ColPredicate{Left: "C.Customer.cid", Op: OpNe, Right: "C.Customer.cname"},
			Child: scan,
		},
	}
	opt := Optimize(plan)
	outer, ok := opt.(*SelectPlan)
	if !ok {
		t.Fatalf("optimized plan is %T (%s), want select over select", opt, opt.Signature())
	}
	if _, ok := outer.Pred.(*ColPredicate); !ok {
		t.Fatalf("outer predicate is %T, want the column comparison on top: %s", outer.Pred, opt.Signature())
	}
	inner, ok := outer.Child.(*SelectPlan)
	if !ok {
		t.Fatalf("inner plan is %T, want the constant selection: %s", outer.Child, opt.Signature())
	}
	if _, ok := inner.Pred.(*ConstPredicate); !ok {
		t.Fatalf("inner predicate is %T, want the constant adjacent to the scan", inner.Pred)
	}
	if _, ok := inner.Child.(*ScanPlan); !ok {
		t.Fatalf("constant selection sits over %T, want the scan", inner.Child)
	}

	// Same rows either way.
	db := optimizerInstance()
	a, err := NewExecutor(db).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExecutor(db).Execute(opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRelation(t, "const-adjacent rewrite", a, b)
}

func TestProvidesColumn(t *testing.T) {
	scan := &ScanPlan{Relation: "Customer", Alias: "C.Customer"}
	if !providesColumn(scan, "C.Customer.cid") || providesColumn(scan, "O.Orders.cid") {
		t.Error("scan column detection broken")
	}
	mat := &MaterialPlan{Rel: NewRelation("R", []string{"a", "b"}), Label: "R"}
	if !providesColumn(mat, "a") || providesColumn(mat, "zz") {
		t.Error("material column detection broken")
	}
	proj := &ProjectPlan{Columns: []string{"C.Customer.cid"}, Child: scan}
	if !providesColumn(proj, "C.Customer.cid") || providesColumn(proj, "C.Customer.cname") {
		t.Error("project column detection broken")
	}
	agg := &AggregatePlan{Func: AggCount, Child: scan}
	if providesColumn(agg, "C.Customer.cid") {
		t.Error("aggregate should not claim pass-through columns")
	}
	join := &JoinPlan{LeftCol: "x", RightCol: "y", Left: scan, Right: mat}
	if !providesColumn(join, "a") || !providesColumn(join, "C.Customer.cid") {
		t.Error("join column detection broken")
	}
}
