package engine

import "sync/atomic"

// OpKind enumerates the physical operator kinds the engine records.
type OpKind int

// Operator kinds, in the order their counters are stored.
const (
	OpKindScan OpKind = iota
	OpKindSelect
	OpKindProject
	OpKindProduct
	OpKindJoin
	OpKindDistinct
	OpKindAggregate
	numOpKinds
)

// opKindNames maps OpKind to the names reported in Stats.Operators().
var opKindNames = [numOpKinds]string{
	"scan", "select", "project", "product", "join", "distinct", "aggregate",
}

// String returns the operator kind name ("select", "join", ...).
func (k OpKind) String() string {
	if k < 0 || k >= numOpKinds {
		return "unknown"
	}
	return opKindNames[k]
}

// Stats records the work done by the engine while evaluating plans.  The
// evaluation algorithms in internal/core share one Stats per query run so that
// the number of executed source operators (Table IV), rows scanned and
// intermediate tuples produced can be reported.
//
// Recording is lock-free: counters are a fixed array of atomics indexed by
// OpKind, so operators on concurrent workers never contend on a mutex.  The
// evaluation runtime still gives each worker its own Stats and merges them
// with Add when the worker's results are consumed, but recording into a
// shared collector from several goroutines is also correct.
type Stats struct {
	ops          [numOpKinds]atomic.Int64
	rowsRead     atomic.Int64
	rowsProduced atomic.Int64

	// indexBuilds and indexLookups track the shared base-relation index
	// subsystem.  They are deliberately not operator kinds: an index build
	// happens at most once per (relation, column) per instance — whichever
	// evaluation triggers it records it — so folding builds into the operator
	// totals would make those totals depend on evaluation history.  Operators
	// served from an index still record their logical kind (select, join).
	indexBuilds  atomic.Int64
	indexLookups atomic.Int64

	// Batch-engine counters.  They describe physical execution shape — how
	// many vector batches flowed, how selective the selections were, how many
	// hash-join builds ran partitioned — and are deliberately outside the
	// logical operator totals, which stay identical across batch sizes and
	// parallelism levels.
	batches       atomic.Int64
	selectRowsIn  atomic.Int64
	selectRowsOut atomic.Int64
	partBuilds    atomic.Int64
	maxBuildParts atomic.Int64
}

// NewStats returns an empty statistics collector.
func NewStats() *Stats { return &Stats{} }

// record counts one executed operator with its input/output row counts.
// Selections additionally feed the selectivity counters, so every path that
// records a logical selection — naive, tuple-at-a-time, batch, index-served —
// contributes to the same average.
func (s *Stats) record(op OpKind, in, out int) {
	if s == nil {
		return
	}
	s.ops[op].Add(1)
	s.rowsRead.Add(int64(in))
	s.rowsProduced.Add(int64(out))
	if op == OpKindSelect {
		s.selectRowsIn.Add(int64(in))
		s.selectRowsOut.Add(int64(out))
	}
}

// recordBatches counts vector batches emitted by batch-pipeline operators.
func (s *Stats) recordBatches(n int) {
	if s == nil || n == 0 {
		return
	}
	s.batches.Add(int64(n))
}

// recordPartitionedBuild counts one hash-join build that ran partitioned
// across workers, remembering the largest partition count seen.
func (s *Stats) recordPartitionedBuild(parts int) {
	if s == nil {
		return
	}
	s.partBuilds.Add(1)
	for {
		cur := s.maxBuildParts.Load()
		if int64(parts) <= cur || s.maxBuildParts.CompareAndSwap(cur, int64(parts)) {
			return
		}
	}
}

// RecordOp counts one executed operator of the given kind without row
// accounting (o-sharing uses it for scans whose rows are consumed lazily by
// the operators reading the fragment).
func (s *Stats) RecordOp(op OpKind) {
	if s == nil {
		return
	}
	s.ops[op].Add(1)
}

// recordIndexBuild counts one base-relation hash-index construction.
func (s *Stats) recordIndexBuild() {
	if s == nil {
		return
	}
	s.indexBuilds.Add(1)
}

// recordIndexLookup counts one operator served from a shared index (a
// constant-equality selection probe or a join attaching the shared build).
func (s *Stats) recordIndexLookup() {
	if s == nil {
		return
	}
	s.indexLookups.Add(1)
}

// IndexBuilds returns the number of base-relation hash indexes built.
func (s *Stats) IndexBuilds() int {
	if s == nil {
		return 0
	}
	return int(s.indexBuilds.Load())
}

// IndexLookups returns the number of operators served from a shared index.
func (s *Stats) IndexLookups() int {
	if s == nil {
		return 0
	}
	return int(s.indexLookups.Load())
}

// Batches returns the number of vector batches produced by batch-pipeline
// operators.  Zero under the tuple-at-a-time fallback.
func (s *Stats) Batches() int {
	if s == nil {
		return 0
	}
	return int(s.batches.Load())
}

// SelectRowsIn returns the total rows that entered selection operators.
func (s *Stats) SelectRowsIn() int {
	if s == nil {
		return 0
	}
	return int(s.selectRowsIn.Load())
}

// SelectRowsOut returns the total rows that survived selection operators.
// SelectRowsOut/SelectRowsIn is the average selectivity across selections.
func (s *Stats) SelectRowsOut() int {
	if s == nil {
		return 0
	}
	return int(s.selectRowsOut.Load())
}

// PartitionedBuilds returns the number of hash-join builds that ran
// partitioned across workers.
func (s *Stats) PartitionedBuilds() int {
	if s == nil {
		return 0
	}
	return int(s.partBuilds.Load())
}

// MaxBuildPartitions returns the largest partition count used by any
// partitioned hash-join build, 0 when every build ran sequentially.
func (s *Stats) MaxBuildPartitions() int {
	if s == nil {
		return 0
	}
	return int(s.maxBuildParts.Load())
}

// Count returns the number of executed operators of the given kind.
func (s *Stats) Count(op OpKind) int {
	if s == nil || op < 0 || op >= numOpKinds {
		return 0
	}
	return int(s.ops[op].Load())
}

// Operators returns a snapshot of executed physical operators by kind name
// ("select", "project", "product", "join", "aggregate", "distinct", "scan").
// Kinds that never executed are omitted, matching the sparse map the
// collector historically exposed.
func (s *Stats) Operators() map[string]int {
	out := make(map[string]int, int(numOpKinds))
	if s == nil {
		return out
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		if n := s.ops[k].Load(); n != 0 {
			out[opKindNames[k]] = int(n)
		}
	}
	return out
}

// RowsRead returns the total number of input rows consumed by operators.
func (s *Stats) RowsRead() int {
	if s == nil {
		return 0
	}
	return int(s.rowsRead.Load())
}

// RowsProduced returns the total number of output rows produced by operators.
func (s *Stats) RowsProduced() int {
	if s == nil {
		return 0
	}
	return int(s.rowsProduced.Load())
}

// TotalOperators returns the total number of executed physical operators.
func (s *Stats) TotalOperators() int {
	if s == nil {
		return 0
	}
	n := int64(0)
	for k := OpKind(0); k < numOpKinds; k++ {
		n += s.ops[k].Load()
	}
	return int(n)
}

// Add accumulates another collector into s.
func (s *Stats) Add(o *Stats) {
	if s == nil || o == nil || s == o {
		return
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		if n := o.ops[k].Load(); n != 0 {
			s.ops[k].Add(n)
		}
	}
	s.rowsRead.Add(o.rowsRead.Load())
	s.rowsProduced.Add(o.rowsProduced.Load())
	s.indexBuilds.Add(o.indexBuilds.Load())
	s.indexLookups.Add(o.indexLookups.Load())
	s.batches.Add(o.batches.Load())
	s.selectRowsIn.Add(o.selectRowsIn.Load())
	s.selectRowsOut.Add(o.selectRowsOut.Load())
	s.partBuilds.Add(o.partBuilds.Load())
	if m := o.maxBuildParts.Load(); m > 0 {
		for {
			cur := s.maxBuildParts.Load()
			if m <= cur || s.maxBuildParts.CompareAndSwap(cur, m) {
				break
			}
		}
	}
}

// Reset clears the collector.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		s.ops[k].Store(0)
	}
	s.rowsRead.Store(0)
	s.rowsProduced.Store(0)
	s.indexBuilds.Store(0)
	s.indexLookups.Store(0)
	s.batches.Store(0)
	s.selectRowsIn.Store(0)
	s.selectRowsOut.Store(0)
	s.partBuilds.Store(0)
	s.maxBuildParts.Store(0)
}
