package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// This file holds the vectorized predicate kernels of the batch pipeline.  A
// vecPredicate filters a whole batch per call: instead of one interface
// dispatch and one Value.Compare per row, the common predicate shapes —
// column-vs-constant comparisons, and conjunctions of them — run as tight
// loops over the column with the constant's conversions hoisted out.  Every
// kernel reproduces Value.Compare semantics bit for bit; shapes the
// vectorizer does not know (OR, NOT, foreign Predicate implementations) fall
// back to the bound row-at-a-time evaluator inside the batch loop, so results
// never depend on which path ran.

// vecPredicate evaluates a predicate over a batch of rows.
//
// filterSel appends to dst the indices of the rows satisfying the predicate,
// drawn from src (or from all of rows when src is nil), preserving order.
// Implementations must read src strictly monotonically: callers may pass a
// dst that aliases src's prefix (in-place compaction of a selection vector),
// which is safe exactly because the write position never passes the read
// position.
type vecPredicate interface {
	filterSel(rows []Tuple, src, dst []int32) ([]int32, error)
}

// compileVecPredicate compiles the predicate into a vectorized kernel against
// the column list.  It resolves columns in the same order and fails with the
// same messages as bindPredicate, so the batch compiler and the tuple
// compiler reject exactly the same plans.
func compileVecPredicate(p Predicate, resolve func(string) int, cols []string) (vecPredicate, error) {
	switch n := p.(type) {
	case *ConstPredicate:
		idx := resolve(n.Column)
		if idx < 0 {
			return nil, fmt.Errorf("predicate %s: column %q not found in %v", n, n.Column, cols)
		}
		return newVecConst(idx, n.Op, n.Value), nil
	case *ColPredicate:
		li := resolve(n.Left)
		if li < 0 {
			return nil, fmt.Errorf("predicate %s: column %q not found in %v", n, n.Left, cols)
		}
		ri := resolve(n.Right)
		if ri < 0 {
			return nil, fmt.Errorf("predicate %s: column %q not found in %v", n, n.Right, cols)
		}
		return &vecCol{li: li, ri: ri, allow: allowMask(n.Op)}, nil
	case *AndPredicate:
		if len(n.Children) == 0 {
			// Degenerate conjunction: everything passes, as under boundAnd.
			bp, err := bindPredicate(p, resolve, cols)
			if err != nil {
				return nil, err
			}
			return &vecRowPred{pred: bp}, nil
		}
		children := make([]vecPredicate, len(n.Children))
		for i, c := range n.Children {
			vp, err := compileVecPredicate(c, resolve, cols)
			if err != nil {
				return nil, err
			}
			children[i] = vp
		}
		return &vecAnd{children: children}, nil
	default:
		// OR, NOT and foreign predicate implementations evaluate row by row
		// through the bound evaluator; bindPredicate recurses in the same
		// order as above, so bind-time errors are identical.
		bp, err := bindPredicate(p, resolve, cols)
		if err != nil {
			return nil, err
		}
		return &vecRowPred{pred: bp}, nil
	}
}

// allowMask precomputes the operator's acceptance per comparison outcome:
// allow[cmp+1] reports whether Compare result cmp (-1, 0, +1) satisfies op.
func allowMask(op CompareOp) [3]bool {
	return [3]bool{op.Matches(-1), op.Matches(0), op.Matches(1)}
}

// constComparer compares row values against one constant with the constant's
// kind tests, float conversion and rendering hoisted out of the loop.
// compare(v) returns exactly Value.Compare(*v, constant).
type constComparer struct {
	isNull  bool
	isStr   bool
	str     string
	f       float64
	floatOK bool
	render  string
}

func newConstComparer(v Value) constComparer {
	c := constComparer{
		isNull: v.Kind == KindNull,
		isStr:  v.Kind == KindString,
		str:    v.Str,
		render: v.String(),
	}
	c.f, c.floatOK = v.AsFloat()
	return c
}

func (c *constComparer) compare(v *Value) int {
	if v.Kind == KindNull || c.isNull {
		if v.Kind == KindNull {
			if c.isNull {
				return 0
			}
			return -1
		}
		return 1
	}
	if v.Kind == KindString && c.isStr {
		return strings.Compare(v.Str, c.str)
	}
	var vf float64
	vok := false
	switch v.Kind {
	case KindInt:
		vf, vok = float64(v.Int), true
	case KindFloat:
		vf, vok = v.Float, true
	case KindString:
		if f, err := strconv.ParseFloat(v.Str, 64); err == nil {
			vf, vok = f, true
		}
	}
	if vok && c.floatOK {
		switch {
		case vf < c.f:
			return -1
		case vf > c.f:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(v.String(), c.render)
}

// vecConst is a column-vs-constant comparison with specialized inner loops:
// numeric constants compare int/float rows inline, non-numeric string
// constants under =/!= reduce to one string equality per row, and everything
// else goes through the hoisted comparer.
type vecConst struct {
	idx   int
	allow [3]bool
	cmp   constComparer
}

func newVecConst(idx int, op CompareOp, v Value) *vecConst {
	return &vecConst{idx: idx, allow: allowMask(op), cmp: newConstComparer(v)}
}

func (p *vecConst) filterSel(rows []Tuple, src, dst []int32) ([]int32, error) {
	idx, allow := p.idx, p.allow
	c := &p.cmp
	switch {
	case !c.isNull && !c.isStr && c.floatOK:
		// Numeric constant.  The default branch of the float switch covers
		// equality and NaN operands alike: NaN comparisons are all false, and
		// Value.Compare returns 0 for them too.
		cf := c.f
		allowLt, allowEq, allowGt := allow[0], allow[1], allow[2]
		if src == nil {
			for i := range rows {
				v := &rows[i][idx]
				var keep bool
				switch v.Kind {
				case KindInt:
					f := float64(v.Int)
					switch {
					case f < cf:
						keep = allowLt
					case f > cf:
						keep = allowGt
					default:
						keep = allowEq
					}
				case KindFloat:
					f := v.Float
					switch {
					case f < cf:
						keep = allowLt
					case f > cf:
						keep = allowGt
					default:
						keep = allowEq
					}
				case KindNull:
					keep = allowLt // NULL sorts before every non-NULL
				default:
					keep = allow[c.compare(v)+1]
				}
				if keep {
					dst = append(dst, int32(i))
				}
			}
			return dst, nil
		}
		for _, i := range src {
			v := &rows[i][idx]
			var keep bool
			switch v.Kind {
			case KindInt:
				f := float64(v.Int)
				switch {
				case f < cf:
					keep = allowLt
				case f > cf:
					keep = allowGt
				default:
					keep = allowEq
				}
			case KindFloat:
				f := v.Float
				switch {
				case f < cf:
					keep = allowLt
				case f > cf:
					keep = allowGt
				default:
					keep = allowEq
				}
			case KindNull:
				keep = allowLt
			default:
				keep = allow[c.compare(v)+1]
			}
			if keep {
				dst = append(dst, i)
			}
		}
		return dst, nil

	case c.isStr && !c.floatOK && allow[0] == allow[2]:
		// Equality-shaped comparison (=, !=) against a string no number can
		// render as: only string rows can compare equal, so the loop is one
		// kind test and one string equality.  (Numeric renderings always
		// parse back as floats, and NULL is never equal to a non-NULL.)
		s := c.str
		eqKeep, neKeep := allow[1], allow[0]
		if src == nil {
			for i := range rows {
				v := &rows[i][idx]
				keep := neKeep
				if v.Kind == KindString && v.Str == s {
					keep = eqKeep
				}
				if keep {
					dst = append(dst, int32(i))
				}
			}
			return dst, nil
		}
		for _, i := range src {
			v := &rows[i][idx]
			keep := neKeep
			if v.Kind == KindString && v.Str == s {
				keep = eqKeep
			}
			if keep {
				dst = append(dst, i)
			}
		}
		return dst, nil

	default:
		if src == nil {
			for i := range rows {
				if allow[c.compare(&rows[i][idx])+1] {
					dst = append(dst, int32(i))
				}
			}
			return dst, nil
		}
		for _, i := range src {
			if allow[c.compare(&rows[i][idx])+1] {
				dst = append(dst, i)
			}
		}
		return dst, nil
	}
}

// vecCol is a column-vs-column comparison; the per-row work is one
// Value.Compare, with the position resolution and operator table hoisted.
type vecCol struct {
	li, ri int
	allow  [3]bool
}

func (p *vecCol) filterSel(rows []Tuple, src, dst []int32) ([]int32, error) {
	li, ri, allow := p.li, p.ri, p.allow
	if src == nil {
		for i := range rows {
			if allow[rows[i][li].Compare(rows[i][ri])+1] {
				dst = append(dst, int32(i))
			}
		}
		return dst, nil
	}
	for _, i := range src {
		if allow[rows[i][li].Compare(rows[i][ri])+1] {
			dst = append(dst, i)
		}
	}
	return dst, nil
}

// vecAnd runs its children as successive selection-vector compactions: child
// k filters the survivors of child k-1 in place.  Evaluation is child-major
// rather than row-major, which changes nothing observable for the engine's
// own predicate types (they cannot fail at evaluation time); a foreign
// child's evaluation error may surface for a different row than under
// row-major order.
type vecAnd struct {
	children []vecPredicate
}

func (p *vecAnd) filterSel(rows []Tuple, src, dst []int32) ([]int32, error) {
	cur, err := p.children[0].filterSel(rows, src, dst)
	if err != nil {
		return nil, err
	}
	for _, c := range p.children[1:] {
		if len(cur) == 0 {
			return cur, nil
		}
		cur, err = c.filterSel(rows, cur, cur[:0])
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// vecRowPred adapts a bound row-at-a-time predicate into the batch loop — the
// fallback for OR, NOT and foreign predicate implementations.
type vecRowPred struct {
	pred boundPredicate
}

func (p *vecRowPred) filterSel(rows []Tuple, src, dst []int32) ([]int32, error) {
	if src == nil {
		for i := range rows {
			ok, err := p.pred.eval(rows[i])
			if err != nil {
				return nil, err
			}
			if ok {
				dst = append(dst, int32(i))
			}
		}
		return dst, nil
	}
	for _, i := range src {
		ok, err := p.pred.eval(rows[i])
		if err != nil {
			return nil, err
		}
		if ok {
			dst = append(dst, i)
		}
	}
	return dst, nil
}
