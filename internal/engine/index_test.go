package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// probePool is a pool of values chosen to stress every edge of the
// Compare-vs-EqualKey gap the probe analysis must bridge: cross-kind numeric
// equality, numeric-parsing strings, non-canonical renderings, signed zeros,
// NaN (which Compare-equals every number), infinities, and integers beyond
// float64's exact range (which Compare-equal each other through the float64
// conversion).
var probePool = []Value{
	Null(),
	I(0), I(1), I(-1), I(2), I(maxExactInt), I(maxExactInt + 1), I(-maxExactInt), I(-maxExactInt - 2),
	F(0), F(math.Copysign(0, -1)), F(1), F(1.5), F(-1), F(2),
	F(float64(maxExactInt)), F(float64(maxExactInt) + 2),
	F(math.NaN()), F(math.Inf(1)), F(math.Inf(-1)),
	S("0"), S("1"), S("1.0"), S("01"), S("1e0"), S("-0"), S("1.5"),
	S("abc"), S(""), S("NaN"), S("+Inf"), S("x1"),
}

// TestProbeValuesMatchCompareEquality is the core correctness property of the
// index subsystem: whenever probeValuesForEq claims a constant is answerable
// from an index, the union of its probes' EqualKey classes must select exactly
// the rows that `column = const` selects under Compare semantics — same rows,
// same order.
func TestProbeValuesMatchCompareEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	covered := 0
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(25)
		rows := make([]Tuple, n)
		for i := range rows {
			rows[i] = Tuple{probePool[rng.Intn(len(probePool))]}
		}
		idx, err := buildColumnHashIndex(bgCtx, rows, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := probePool[rng.Intn(len(probePool))]
		probes, ok := probeValuesForEq(c, idx.kinds, idx.hasNaN)
		if !ok {
			continue
		}
		covered++
		matches, _, err := idx.probeMatches(bgCtx, probes)
		if err != nil {
			t.Fatal(err)
		}
		var want []int32
		for i, row := range rows {
			if OpEq.Matches(row[0].Compare(c)) {
				want = append(want, int32(i))
			}
		}
		if len(matches) != len(want) {
			t.Fatalf("trial %d: const %#v over %v: index matched %v, filter matched %v",
				trial, c, rows, matches, want)
		}
		for i := range want {
			if matches[i] != want[i] {
				t.Fatalf("trial %d: const %#v: index match order %v, want %v", trial, c, matches, want)
			}
		}
	}
	if covered == 0 {
		t.Fatal("probe analysis never accepted a constant; the index can never fire")
	}
}

// randIndexedPlan builds plans in the shapes the index subsystem accelerates —
// constant-selection stacks over scans, conjunctions, and joins with bare or
// constant-filtered build sides — plus shapes it must leave alone.
func randIndexedPlan(rng *rand.Rand) Plan {
	scanL := &ScanPlan{Relation: "L"}
	scanR := &ScanPlan{Relation: "R"}
	constSel := func(child Plan, col string) Plan {
		op := OpEq
		if rng.Intn(3) == 0 {
			op = CompareOp(rng.Intn(6))
		}
		return &SelectPlan{Pred: &ConstPredicate{Column: col, Op: op, Value: randValue(rng)}, Child: child}
	}
	switch rng.Intn(8) {
	case 0:
		return constSel(scanL, "L.a")
	case 1:
		return constSel(constSel(scanL, "L.a"), "L.b")
	case 2:
		return &SelectPlan{
			Pred: And(
				&ConstPredicate{Column: "L.a", Op: OpEq, Value: randValue(rng)},
				&ConstPredicate{Column: "L.c", Op: CompareOp(rng.Intn(6)), Value: randValue(rng)},
			),
			Child: scanL,
		}
	case 3:
		return &JoinPlan{LeftCol: "L.a", RightCol: "R.x", Left: scanL, Right: scanR}
	case 4:
		return &JoinPlan{LeftCol: "L.a", RightCol: "R.x", Left: constSel(scanL, "L.b"), Right: constSel(scanR, "R.y")}
	case 5:
		return &ProjectPlan{Columns: []string{"L.c", "L.a"}, Child: constSel(scanL, "L.b")}
	case 6:
		return &SelectPlan{
			Pred:  &ColPredicate{Left: "L.a", Op: OpNe, Right: "L.b"},
			Child: constSel(scanL, "L.c"),
		}
	default:
		return &DistinctPlan{Child: &ProjectPlan{Columns: []string{"L.a", "R.y"},
			Child: &JoinPlan{LeftCol: "L.c", RightCol: "R.y", Left: constSel(scanL, "L.a"), Right: scanR}}}
	}
}

// TestIndexedExecutorMatchesNaive drives randomized index-shaped plans through
// the index-aware executor and requires results bit-identical to the naive
// reference: same rows, same order, same columns.  (Statistics legitimately
// differ — fewer scans — so only relations are compared.)
func TestIndexedExecutorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 400; trial++ {
		db := NewInstance("D")
		db.AddRelation(randRelation(rng, "L", []string{"a", "b", "c"}, rng.Intn(50)))
		db.AddRelation(randRelation(rng, "R", []string{"x", "y"}, rng.Intn(40)))
		plan := randIndexedPlan(rng)
		label := fmt.Sprintf("trial %d plan %s", trial, plan.Signature())

		want, err1 := NaiveExecute(bgCtx, db, plan, NewStats())
		ex := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes()}
		got, err2 := ex.ExecuteContext(bgCtx, plan)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: naive err=%v, indexed err=%v", label, err1, err2)
		}
		if err1 != nil {
			continue
		}
		requireSameRelation(t, label, want, got)

		// The cached (materialized, MQO-style) executor must agree too.
		exc := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes(), Cache: NewPlanCache()}
		gotc, err3 := exc.ExecuteContext(bgCtx, plan)
		if err3 != nil {
			t.Fatalf("%s: cached indexed executor: %v", label, err3)
		}
		requireSameRelation(t, label+" (cached)", want, gotc)
	}
}

// TestIndexedMaterializedOperatorsMatch pins the materialized-path entry
// points the o-sharing evaluator uses: IndexedSelect and IndexedHashJoin over
// untouched base scans must be bit-identical to their plain counterparts.
func TestIndexedMaterializedOperatorsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 200; trial++ {
		db := NewInstance("D")
		left := randRelation(rng, "L", []string{"L.a", "L.b"}, rng.Intn(40))
		right := randRelation(rng, "R", []string{"R.x", "R.y"}, rng.Intn(40))
		db.AddRelation(left)
		db.AddRelation(right)
		label := fmt.Sprintf("trial %d", trial)

		pred := &ConstPredicate{Column: "L.a", Op: CompareOp(rng.Intn(6)), Value: randValue(rng)}
		want, err1 := Select(bgCtx, left, pred, NewStats())
		got, err2 := IndexedSelect(bgCtx, left, pred, NewStats(), db.Indexes())
		if err1 != nil || err2 != nil {
			t.Fatalf("%s select: %v / %v", label, err1, err2)
		}
		requireSameRelation(t, label+" select", want, got)

		jwant, err1 := HashJoin(bgCtx, left, right, "L.a", "R.x", NewStats())
		jgot, err2 := IndexedHashJoin(bgCtx, left, right, "L.a", "R.x", NewStats(), db.Indexes())
		if err1 != nil || err2 != nil {
			t.Fatalf("%s join: %v / %v", label, err1, err2)
		}
		requireSameRelation(t, label+" join", jwant, jgot)
	}
}

// TestIndexCacheSingleflight floods one column index with concurrent queries
// and requires exactly one build across all workers.
func TestIndexCacheSingleflight(t *testing.T) {
	db := NewInstance("D")
	r := NewRelation("T", []string{"id", "tag"})
	for i := 0; i < 20000; i++ {
		r.MustAppend(Tuple{I(int64(i % 97)), S("t")})
	}
	db.AddRelation(r)
	plan := &SelectPlan{Pred: Eq("T.id", I(13)), Child: &ScanPlan{Relation: "T"}}

	const workers = 16
	stats := make([]*Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		stats[w] = NewStats()
		wg.Add(1)
		go func(s *Stats) {
			defer wg.Done()
			ex := &Executor{DB: db, Stats: s, Indexes: db.Indexes()}
			if _, err := ex.Execute(plan); err != nil {
				t.Error(err)
			}
		}(stats[w])
	}
	wg.Wait()
	builds, lookups := 0, 0
	for _, s := range stats {
		builds += s.IndexBuilds()
		lookups += s.IndexLookups()
	}
	if builds != 1 {
		t.Errorf("index built %d times across %d concurrent workers, want 1", builds, workers)
	}
	if lookups != workers {
		t.Errorf("recorded %d lookups, want %d", lookups, workers)
	}
}

// TestIndexInvalidationOnAppend pins the staleness contract: appending to a
// base relation invalidates its cached indexes, and the next query sees the
// new row through a rebuilt index.
func TestIndexInvalidationOnAppend(t *testing.T) {
	db := NewInstance("D")
	r := NewRelation("T", []string{"id"})
	for i := 0; i < 100; i++ {
		r.MustAppend(Tuple{I(int64(i % 5))})
	}
	db.AddRelation(r)
	plan := &SelectPlan{Pred: Eq("T.id", I(3)), Child: &ScanPlan{Relation: "T"}}

	run := func() (int, *Stats) {
		ex := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes()}
		rel, err := ex.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		return rel.NumRows(), ex.Stats
	}
	before, s1 := run()
	if s1.IndexBuilds() != 1 {
		t.Fatalf("first run built %d indexes, want 1", s1.IndexBuilds())
	}
	r.MustAppend(Tuple{I(3)})
	after, s2 := run()
	if after != before+1 {
		t.Errorf("after append: %d rows, want %d (stale index served)", after, before+1)
	}
	if s2.IndexBuilds() != 1 {
		t.Errorf("post-append run built %d indexes, want 1 (rebuild)", s2.IndexBuilds())
	}
}

// TestIndexBuildCancellation cancels a context while an index build is in
// flight: the executing query fails with the context error, the aborted build
// does not poison the cache, and a later query with a live context rebuilds
// and answers correctly.
func TestIndexBuildCancellation(t *testing.T) {
	db := NewInstance("D")
	r := NewRelation("T", []string{"id"})
	for i := 0; i < 50000; i++ {
		r.MustAppend(Tuple{I(int64(i % 100))})
	}
	db.AddRelation(r)
	plan := &SelectPlan{Pred: Eq("T.id", I(42)), Child: &ScanPlan{Relation: "T"}}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes()}
	if _, err := ex.ExecuteContext(cancelled, plan); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-build execute err = %v, want context.Canceled", err)
	}
	if n := db.Indexes().Len(); n != 0 {
		t.Fatalf("aborted build left %d cache entries, want 0", n)
	}

	ex2 := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes()}
	rel, err := ex2.Execute(plan)
	if err != nil {
		t.Fatalf("post-cancellation execute: %v", err)
	}
	if rel.NumRows() != 500 {
		t.Errorf("post-cancellation rows = %d, want 500", rel.NumRows())
	}
	if ex2.Stats.IndexBuilds() != 1 {
		t.Errorf("post-cancellation builds = %d, want 1", ex2.Stats.IndexBuilds())
	}
}

// TestIndexCacheLiveWaitersSurviveCancelledBuilder pins the singleflight
// fairness contract: when the goroutine that wins the build has a cancelled
// context, concurrent waiters whose contexts are live must not inherit its
// cancellation — one of them retries the build and succeeds.  Each round
// appends a row so the index is stale and a fresh build races.
func TestIndexCacheLiveWaitersSurviveCancelledBuilder(t *testing.T) {
	db := NewInstance("D")
	r := NewRelation("T", []string{"id"})
	for i := 0; i < 30000; i++ {
		r.MustAppend(Tuple{I(int64(i % 7))})
	}
	db.AddRelation(r)
	cancelledCtx, cancel := context.WithCancel(context.Background())
	cancel()
	for round := 0; round < 25; round++ {
		r.MustAppend(Tuple{I(0)}) // invalidate: every round rebuilds under the race
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			ctx := context.Background()
			if w%2 == 0 {
				ctx = cancelledCtx
			}
			wg.Add(1)
			go func(ctx context.Context) {
				defer wg.Done()
				idx, err := db.Indexes().columnIndex(ctx, r, 0, NewStats())
				if ctx.Err() == nil && err != nil {
					t.Errorf("round %d: live-context waiter failed: %v", round, err)
				}
				if err == nil && idx == nil {
					t.Errorf("round %d: nil index without error", round)
				}
			}(ctx)
		}
		wg.Wait()
	}
}

// TestSetIndexingDisables pins the A/B switch: with indexing off the executor
// compiles plain pipelines (scans recorded, no lookups), with it on the same
// instance serves the probe from the index.
func TestSetIndexingDisables(t *testing.T) {
	db := NewInstance("D")
	r := NewRelation("T", []string{"id"})
	for i := 0; i < 100; i++ {
		r.MustAppend(Tuple{I(int64(i % 5))})
	}
	db.AddRelation(r)
	plan := &SelectPlan{Pred: Eq("T.id", I(1)), Child: &ScanPlan{Relation: "T"}}

	db.SetIndexing(false)
	if db.Indexes() != nil {
		t.Fatal("Indexes() should be nil while disabled")
	}
	ex := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes()}
	if _, err := ex.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Count(OpKindScan) != 1 || ex.Stats.IndexLookups() != 0 {
		t.Errorf("disabled: scans=%d lookups=%d, want 1/0", ex.Stats.Count(OpKindScan), ex.Stats.IndexLookups())
	}

	db.SetIndexing(true)
	ex2 := &Executor{DB: db, Stats: NewStats(), Indexes: db.Indexes()}
	if _, err := ex2.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if ex2.Stats.Count(OpKindScan) != 0 || ex2.Stats.IndexLookups() != 1 {
		t.Errorf("enabled: scans=%d lookups=%d, want 0/1", ex2.Stats.Count(OpKindScan), ex2.Stats.IndexLookups())
	}
}
