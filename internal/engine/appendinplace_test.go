package engine

import (
	"math/rand"
	"testing"
)

// requireSameIndex asserts two hash indexes are structurally identical —
// bucket array, chain threading, stored hashes, and content metadata.  Probes
// cannot distinguish structurally identical indexes, so this is strictly
// stronger than answer equality.
func requireSameIndex(t *testing.T, label string, want, got *hashIndex) {
	t.Helper()
	if got.mask != want.mask || len(got.heads) != len(want.heads) {
		t.Fatalf("%s: bucket array %d/mask %d, want %d/mask %d", label, len(got.heads), got.mask, len(want.heads), want.mask)
	}
	for i := range want.heads {
		if got.heads[i] != want.heads[i] {
			t.Fatalf("%s: heads[%d] = %d, want %d", label, i, got.heads[i], want.heads[i])
		}
	}
	if len(got.hashes) != len(want.hashes) || len(got.next) != len(want.next) {
		t.Fatalf("%s: %d hashes/%d next, want %d/%d", label, len(got.hashes), len(got.next), len(want.hashes), len(want.next))
	}
	for i := range want.hashes {
		if got.hashes[i] != want.hashes[i] {
			t.Fatalf("%s: hashes[%d] = %x, want %x", label, i, got.hashes[i], want.hashes[i])
		}
		if got.next[i] != want.next[i] {
			t.Fatalf("%s: next[%d] = %d, want %d", label, i, got.next[i], want.next[i])
		}
	}
	if got.kinds != want.kinds || got.hasNaN != want.hasNaN {
		t.Fatalf("%s: kinds/hasNaN = %v/%v, want %v/%v", label, got.kinds, got.hasNaN, want.kinds, want.hasNaN)
	}
	if len(got.rows) != len(want.rows) {
		t.Fatalf("%s: covers %d rows, want %d", label, len(got.rows), len(want.rows))
	}
}

// TestAppendInPlaceMatchesColdRebuild is the in-place maintenance property:
// extending a built index over appended rows must yield a structure identical
// to a cold rebuild over all rows — across sizes that exercise both the
// tail-append path (bucket array still large enough) and the grow-rethread
// path, over the adversarial value pool.
func TestAppendInPlaceMatchesColdRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	randRow := func() Tuple {
		return Tuple{probePool[rng.Intn(len(probePool))], probePool[rng.Intn(len(probePool))]}
	}
	for trial := 0; trial < 300; trial++ {
		db := NewInstance("t")
		rel := NewRelation("R", []string{"a", "b"})
		for i := rng.Intn(40); i > 0; i-- {
			rel.MustAppend(randRow())
		}
		db.AddRelation(rel)
		cache := db.Indexes()
		stats := NewStats()
		for col := 0; col < 2; col++ {
			if _, err := cache.columnIndex(bgCtx, rel, col, stats); err != nil {
				t.Fatal(err)
			}
		}
		oldLen, oldVer := len(rel.Rows), rel.version.Load()
		for i := rng.Intn(60) + 1; i > 0; i-- {
			rel.MustAppend(randRow())
		}
		if ext := cache.AppendInPlace(bgCtx, rel, oldLen, oldVer); ext != 2 {
			t.Fatalf("trial %d: extended %d indexes, want 2", trial, ext)
		}
		builds := stats.IndexBuilds()
		for col := 0; col < 2; col++ {
			got, err := cache.columnIndex(bgCtx, rel, col, stats)
			if err != nil {
				t.Fatal(err)
			}
			want, err := buildColumnHashIndex(bgCtx, rel.Rows, col)
			if err != nil {
				t.Fatal(err)
			}
			requireSameIndex(t, "col", want, got)
		}
		if stats.IndexBuilds() != builds {
			t.Fatalf("trial %d: lookup after AppendInPlace rebuilt (%d -> %d builds); extension was not accepted as current",
				trial, builds, stats.IndexBuilds())
		}
	}
}

// TestAppendInPlaceStaleEntryDropped pins the safety valve: an entry whose
// (version, nrows) does not match the append's base state must be dropped for
// lazy rebuild, never extended.
func TestAppendInPlaceStaleEntryDropped(t *testing.T) {
	db := NewInstance("t")
	rel := NewRelation("R", []string{"a"})
	rel.MustAppend(Tuple{I(1)})
	rel.MustAppend(Tuple{I(2)})
	db.AddRelation(rel)
	cache := db.Indexes()
	if _, err := cache.columnIndex(bgCtx, rel, 0, NewStats()); err != nil {
		t.Fatal(err)
	}
	oldLen := len(rel.Rows)
	rel.MustAppend(Tuple{I(3)})
	// Wrong base version: the entry must be evicted, not extended.
	if ext := cache.AppendInPlace(bgCtx, rel, oldLen, rel.version.Load()+7); ext != 0 {
		t.Fatalf("extended %d stale indexes, want 0", ext)
	}
	if cache.Len() != 0 {
		t.Fatalf("stale entry still cached (%d entries), want dropped", cache.Len())
	}
	// The lazy path then rebuilds a correct index.
	stats := NewStats()
	got, err := cache.columnIndex(bgCtx, rel, 0, stats)
	if err != nil {
		t.Fatal(err)
	}
	want, err := buildColumnHashIndex(bgCtx, rel.Rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireSameIndex(t, "rebuilt", want, got)
	if stats.IndexBuilds() != 1 {
		t.Fatalf("builds = %d, want 1", stats.IndexBuilds())
	}
}
