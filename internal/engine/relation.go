package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a materialized table: an ordered list of column names and a list
// of rows.  Column names are usually qualified ("Relation.attr") so that the
// columns of a Cartesian product remain unambiguous.
type Relation struct {
	Name    string
	Columns []string
	Rows    []Tuple
}

// NewRelation creates an empty relation with the given name and columns.
func NewRelation(name string, columns []string) *Relation {
	cols := make([]string, len(columns))
	copy(cols, columns)
	return &Relation{Name: name, Columns: cols}
}

// ColumnIndex returns the position of the named column.  The lookup first
// tries an exact match, then an unqualified suffix match ("attr" matching
// "Rel.attr") when that suffix is unambiguous.  It returns -1 if not found or
// ambiguous.
func (r *Relation) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	// Fall back to suffix matching on the unqualified attribute name, but only
	// when the requested name is itself unqualified.
	if strings.Contains(name, ".") {
		return -1
	}
	idx := -1
	for i, c := range r.Columns {
		if unqualified(c) == name {
			if idx >= 0 {
				return -1 // ambiguous
			}
			idx = i
		}
	}
	return idx
}

func unqualified(col string) string {
	if i := strings.LastIndexByte(col, '.'); i >= 0 {
		return col[i+1:]
	}
	return col
}

// HasColumn reports whether the column resolves uniquely in the relation.
func (r *Relation) HasColumn(name string) bool { return r.ColumnIndex(name) >= 0 }

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return len(r.Rows) }

// NumColumns returns the number of columns.
func (r *Relation) NumColumns() int { return len(r.Columns) }

// IsEmpty reports whether the relation has no rows.
func (r *Relation) IsEmpty() bool { return len(r.Rows) == 0 }

// Append adds a row.  It returns an error if the arity does not match.
func (r *Relation) Append(t Tuple) error {
	if len(t) != len(r.Columns) {
		return fmt.Errorf("relation %s: tuple arity %d does not match %d columns", r.Name, len(t), len(r.Columns))
	}
	r.Rows = append(r.Rows, t)
	return nil
}

// MustAppend is Append that panics on arity mismatch.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Name, r.Columns)
	out.Rows = make([]Tuple, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = row.Clone()
	}
	return out
}

// Column returns all values of the named column in row order.
func (r *Relation) Column(name string) ([]Value, error) {
	idx := r.ColumnIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("relation %s: unknown column %q", r.Name, name)
	}
	out := make([]Value, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row[idx]
	}
	return out, nil
}

// SortRows orders the rows by the canonical tuple key; useful for
// deterministic comparison in tests.
func (r *Relation) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i].Key() < r.Rows[j].Key() })
}

// String renders a compact textual table (header plus up to 20 rows).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%d rows](%s)", r.Name, len(r.Rows), strings.Join(r.Columns, ", "))
	limit := len(r.Rows)
	if limit > 20 {
		limit = 20
	}
	for i := 0; i < limit; i++ {
		b.WriteString("\n  ")
		b.WriteString(r.Rows[i].String())
	}
	if len(r.Rows) > limit {
		fmt.Fprintf(&b, "\n  ... (%d more)", len(r.Rows)-limit)
	}
	return b.String()
}

// QualifyColumns returns a copy of the relation whose column names are
// prefixed with the given relation name (columns already containing a '.' are
// re-qualified).
func (r *Relation) QualifyColumns(relName string) *Relation {
	cols := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		cols[i] = relName + "." + unqualified(c)
	}
	out := &Relation{Name: relName, Columns: cols, Rows: r.Rows}
	return out
}

// Instance is a named database: a set of base relations keyed by relation
// name.  It is the "source instance D" of the paper.
type Instance struct {
	Name      string
	relations map[string]*Relation
	order     []string
}

// NewInstance creates an empty instance.
func NewInstance(name string) *Instance {
	return &Instance{Name: name, relations: make(map[string]*Relation)}
}

// AddRelation registers a base relation.  Re-adding a name replaces the
// previous relation but keeps its position.
func (db *Instance) AddRelation(rel *Relation) {
	if _, ok := db.relations[rel.Name]; !ok {
		db.order = append(db.order, rel.Name)
	}
	db.relations[rel.Name] = rel
}

// Relation returns the named base relation, or nil.
func (db *Instance) Relation(name string) *Relation { return db.relations[name] }

// RelationNames returns the base relation names in insertion order.
func (db *Instance) RelationNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// NumRows returns the total number of rows across all base relations.
func (db *Instance) NumRows() int {
	n := 0
	for _, r := range db.relations {
		n += len(r.Rows)
	}
	return n
}

// SizeBytes estimates the storage footprint of the instance, counting string
// lengths plus 8 bytes per numeric value.  The experiment harness uses it to
// express database size in MB as the paper does.
func (db *Instance) SizeBytes() int {
	total := 0
	for _, r := range db.relations {
		for _, row := range r.Rows {
			for _, v := range row {
				switch v.Kind {
				case KindString:
					total += len(v.Str)
				default:
					total += 8
				}
			}
		}
	}
	return total
}
