package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Relation is a materialized table: an ordered list of column names and a list
// of rows.  Column names are usually qualified ("Relation.attr") so that the
// columns of a Cartesian product remain unambiguous.
//
// Columns must not be mutated after the first ColumnIndex call: lookups are
// served from a lazily built index map that is not invalidated.  (No code in
// this module mutates Columns after construction.)
type Relation struct {
	Name    string
	Columns []string
	Rows    []Tuple

	// colIndex caches name → position resolution.  It is built lazily on the
	// first lookup and published atomically, so concurrent readers — o-sharing
	// branches share fragment relations across workers — are race-free.
	colIndex atomic.Pointer[map[string]int]

	// version counts mutations through Append.  The IndexCache validates its
	// per-column indexes against it (plus the row count), so appending to a
	// base relation invalidates every index built over it.
	version atomic.Uint64
}

// NewRelation creates an empty relation with the given name and columns.
func NewRelation(name string, columns []string) *Relation {
	cols := make([]string, len(columns))
	copy(cols, columns)
	return &Relation{Name: name, Columns: cols}
}

// ColumnIndex returns the position of the named column.  The lookup first
// tries an exact match, then an unqualified suffix match ("attr" matching
// "Rel.attr") when that suffix is unambiguous.  It returns -1 if not found or
// ambiguous.  Lookups after the first are O(1): the resolution table is built
// once per relation.
func (r *Relation) ColumnIndex(name string) int {
	m := r.colIndex.Load()
	if m == nil {
		built := buildColumnIndex(r.Columns)
		r.colIndex.Store(&built)
		m = &built
	}
	idx, ok := (*m)[name]
	if !ok {
		return -1
	}
	return idx
}

// buildColumnIndex precomputes every resolvable name for the column list with
// the same semantics as lookupColumn: exact names win (first occurrence), and
// an unqualified suffix resolves only when unambiguous (ambiguous suffixes are
// stored as -1 so the miss is remembered too).
func buildColumnIndex(cols []string) map[string]int {
	m := make(map[string]int, 2*len(cols))
	for i, c := range cols {
		if _, ok := m[c]; !ok {
			m[c] = i
		}
	}
	type suffix struct {
		idx   int
		count int
	}
	suffixes := make(map[string]suffix, len(cols))
	for i, c := range cols {
		uq := unqualified(c)
		s := suffixes[uq]
		if s.count == 0 {
			s.idx = i
		}
		s.count++
		suffixes[uq] = s
	}
	for uq, s := range suffixes {
		if _, exact := m[uq]; exact {
			continue // an exact column name shadows the suffix rule
		}
		if s.count == 1 {
			m[uq] = s.idx
		} else {
			m[uq] = -1 // remembered as ambiguous
		}
	}
	return m
}

// lookupColumn resolves a column name against a plain column list with the
// relation resolution rules (exact match first, then unambiguous unqualified
// suffix).  The streaming compiler uses it when no Relation exists yet; it is
// the linear reference implementation of buildColumnIndex.
func lookupColumn(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	if strings.Contains(name, ".") {
		return -1
	}
	idx := -1
	for i, c := range cols {
		if unqualified(c) == name {
			if idx >= 0 {
				return -1 // ambiguous
			}
			idx = i
		}
	}
	return idx
}

func unqualified(col string) string {
	if i := strings.LastIndexByte(col, '.'); i >= 0 {
		return col[i+1:]
	}
	return col
}

// HasColumn reports whether the column resolves uniquely in the relation.
func (r *Relation) HasColumn(name string) bool { return r.ColumnIndex(name) >= 0 }

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return len(r.Rows) }

// NumColumns returns the number of columns.
func (r *Relation) NumColumns() int { return len(r.Columns) }

// IsEmpty reports whether the relation has no rows.
func (r *Relation) IsEmpty() bool { return len(r.Rows) == 0 }

// Append adds a row.  It returns an error if the arity does not match.
func (r *Relation) Append(t Tuple) error {
	if len(t) != len(r.Columns) {
		return fmt.Errorf("relation %s: tuple arity %d does not match %d columns", r.Name, len(t), len(r.Columns))
	}
	r.Rows = append(r.Rows, t)
	r.version.Add(1)
	return nil
}

// AppendAll adds every row of the batch, advancing the mutation version once
// for the whole batch rather than per row.  Arity is validated for every row
// before any is appended, so a bad batch leaves the relation untouched.
func (r *Relation) AppendAll(rows []Tuple) error {
	for _, t := range rows {
		if len(t) != len(r.Columns) {
			return fmt.Errorf("relation %s: tuple arity %d does not match %d columns", r.Name, len(t), len(r.Columns))
		}
	}
	if len(rows) == 0 {
		return nil
	}
	r.Rows = append(r.Rows, rows...)
	r.version.Add(1)
	return nil
}

// MustAppend is Append that panics on arity mismatch.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Version returns the relation's mutation counter: it advances on every
// Append, so caches derived from the rows — per-column indexes, shard
// slices — can detect staleness with a version+row-count check.
func (r *Relation) Version() uint64 { return r.version.Load() }

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Name, r.Columns)
	out.Rows = make([]Tuple, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = row.Clone()
	}
	return out
}

// Column returns all values of the named column in row order.
func (r *Relation) Column(name string) ([]Value, error) {
	idx := r.ColumnIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("relation %s: unknown column %q", r.Name, name)
	}
	out := make([]Value, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row[idx]
	}
	return out, nil
}

// SortRows orders the rows by the canonical tuple key; useful for
// deterministic comparison in tests.  Keys are computed once per row rather
// than inside the comparator, so sorting costs n key builds instead of
// O(n log n).
func (r *Relation) SortRows() {
	keys := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		keys[i] = row.Key()
	}
	sort.Sort(&rowsByKey{rows: r.Rows, keys: keys})
}

// rowsByKey sorts rows and their cached keys together.
type rowsByKey struct {
	rows []Tuple
	keys []string
}

func (s *rowsByKey) Len() int           { return len(s.rows) }
func (s *rowsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *rowsByKey) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// String renders a compact textual table (header plus up to 20 rows).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%d rows](%s)", r.Name, len(r.Rows), strings.Join(r.Columns, ", "))
	limit := len(r.Rows)
	if limit > 20 {
		limit = 20
	}
	for i := 0; i < limit; i++ {
		b.WriteString("\n  ")
		b.WriteString(r.Rows[i].String())
	}
	if len(r.Rows) > limit {
		fmt.Fprintf(&b, "\n  ... (%d more)", len(r.Rows)-limit)
	}
	return b.String()
}

// QualifyColumns returns a copy of the relation whose column names are
// prefixed with the given relation name (columns already containing a '.' are
// re-qualified).
func (r *Relation) QualifyColumns(relName string) *Relation {
	cols := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		cols[i] = relName + "." + unqualified(c)
	}
	out := &Relation{Name: relName, Columns: cols, Rows: r.Rows}
	return out
}

// Instance is a named database: a set of base relations keyed by relation
// name.  It is the "source instance D" of the paper.
type Instance struct {
	Name      string
	relations map[string]*Relation
	order     []string

	// indexes is the instance's shared base-relation index subsystem: one
	// lazily built hash index per (relation, column), shared by every query
	// evaluated against this instance.
	indexes *IndexCache
	noIndex bool
}

// NewInstance creates an empty instance.
func NewInstance(name string) *Instance {
	db := &Instance{Name: name, relations: make(map[string]*Relation)}
	db.indexes = newIndexCache(db)
	return db
}

// Indexes returns the instance's shared base-relation index cache, or nil
// when indexing is disabled.  Executors and the materialized operator API
// treat a nil cache as "no indexes": every plan runs as a plain scan-and-
// filter pipeline.
func (db *Instance) Indexes() *IndexCache {
	if db.noIndex {
		return nil
	}
	return db.indexes
}

// SetIndexing enables (the default) or disables the shared index subsystem.
// Answers are bit-identical either way; the switch exists for A/B perf
// comparison and for the equivalence tests that prove that property.
func (db *Instance) SetIndexing(on bool) { db.noIndex = !on }

// AddRelation registers a base relation.  Re-adding a name replaces the
// previous relation but keeps its position.
func (db *Instance) AddRelation(rel *Relation) {
	if _, ok := db.relations[rel.Name]; !ok {
		db.order = append(db.order, rel.Name)
	}
	db.relations[rel.Name] = rel
}

// Relation returns the named base relation, or nil.
func (db *Instance) Relation(name string) *Relation { return db.relations[name] }

// WithRelations derives a new instance that shares this instance's relations
// except for the given replacements, which take the originals' positions.
// The shard partitioner uses it to build per-shard instances: the partitioned
// relation is replaced with a shard slice while every other relation is the
// same *Relation the parent holds, so replicated data is never copied.  The
// derived instance gets its own index cache (its relation contents differ
// from the parent's) and inherits the indexing on/off switch.
func (db *Instance) WithRelations(name string, replace map[string]*Relation) *Instance {
	out := NewInstance(name)
	out.noIndex = db.noIndex
	for _, rn := range db.order {
		if rel, ok := replace[rn]; ok {
			out.AddRelation(rel)
			continue
		}
		out.AddRelation(db.relations[rn])
	}
	return out
}

// AdoptIndexes makes the instance share the parent's index cache instead of
// its own.  The delta evaluator uses it on derived instances whose unreplaced
// relations are the parent's own *Relation values: those relations then probe
// the parent's already-built shared indexes, while relations the cache does
// not own (delta and prefix slices) get transient per-query indexes — the
// cache's ownership check keeps the two apart.  The indexing on/off switch is
// adopted along with the cache.
func (db *Instance) AdoptIndexes(parent *Instance) {
	db.indexes = parent.indexes
	db.noIndex = parent.noIndex
}

// RelationNames returns the base relation names in insertion order.
func (db *Instance) RelationNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// NumRows returns the total number of rows across all base relations.
func (db *Instance) NumRows() int {
	n := 0
	for _, r := range db.relations {
		n += len(r.Rows)
	}
	return n
}

// SizeBytes estimates the storage footprint of the instance, counting string
// lengths plus 8 bytes per numeric value.  The experiment harness uses it to
// express database size in MB as the paper does.
func (db *Instance) SizeBytes() int {
	total := 0
	for _, r := range db.relations {
		for _, row := range r.Rows {
			for _, v := range row {
				switch v.Kind {
				case KindString:
					total += len(v.Str)
				default:
					total += 8
				}
			}
		}
	}
	return total
}
