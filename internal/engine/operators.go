package engine

import (
	"context"
	"fmt"
)

// checkInterval is the number of rows an operator processes between
// cancellation checks: small enough that cancelling a long-running operator
// takes effect promptly, large enough that the check cost is negligible.
const checkInterval = 4096

// canceled returns the context's error if it is done, and nil otherwise
// (including for a nil context).
func canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// The functions below are the materialized operator API: each consumes
// materialized relations and produces a materialized relation, recording one
// operator execution.  The o-sharing evaluator uses them directly — its
// fragments must stay materialized so partially executed state can be shared
// across e-units — while the plan executor streams through the RowSource
// pipeline in source.go instead.  Both paths share the same hashing, predicate
// binding and tuple-arena machinery, and produce identical results and
// statistics.

// Select returns the rows of rel satisfying the predicate.  The predicate is
// bound once — column references resolve to positions before the scan — so
// per-row evaluation does no name lookups.
func Select(ctx context.Context, rel *Relation, pred Predicate, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	bp, err := bindRelPredicate(pred, rel)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		ok, err := bp.eval(row)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	stats.record(OpKindSelect, len(rel.Rows), len(out.Rows))
	return out, nil
}

// Project returns rel restricted to the given columns, in the given order.
// Duplicate rows are preserved (bag semantics); use Distinct to remove them.
// Output tuples are carved from a flat arena rather than allocated per row.
func Project(ctx context.Context, rel *Relation, columns []string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	idx := make([]int, len(columns))
	outCols := make([]string, len(columns))
	for i, c := range columns {
		j := rel.ColumnIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("project: column %q not found in %v", c, rel.Columns)
		}
		idx[i] = j
		outCols[i] = rel.Columns[j]
	}
	out := NewRelation(rel.Name, outCols)
	out.Rows = make([]Tuple, 0, len(rel.Rows))
	var arena valueArena
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		t := arena.tuple(len(idx))
		for i, j := range idx {
			t[i] = row[j]
		}
		out.Rows = append(out.Rows, t)
	}
	stats.record(OpKindProject, len(rel.Rows), len(out.Rows))
	return out, nil
}

// Product returns the Cartesian product of two relations.  Column names are
// kept as-is, so callers should qualify them beforehand when they may collide.
// The output grows geometrically: pre-sizing it to rows(left)·rows(right)
// could overflow int or demand absurd memory before the first row exists.
func Product(ctx context.Context, left, right *Relation, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(left.Columns)+len(right.Columns))
	cols = append(cols, left.Columns...)
	cols = append(cols, right.Columns...)
	out := NewRelation(left.Name+"x"+right.Name, cols)
	var arena valueArena
	produced := 0
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			produced++
			if produced%checkInterval == 0 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			out.Rows = append(out.Rows, arena.concat(lr, rr))
		}
	}
	stats.record(OpKindProduct, len(left.Rows)+len(right.Rows), len(out.Rows))
	return out, nil
}

// HashJoin returns the equi-join of left and right on leftCol = rightCol.
// It builds a hash table on the right input, keyed by the 64-bit value hash;
// probes compare candidate rows with EqualKey, so no key strings are ever
// formatted.
func HashJoin(ctx context.Context, left, right *Relation, leftCol, rightCol string, stats *Stats) (*Relation, error) {
	return hashJoin(ctx, left, right, leftCol, rightCol, stats, nil)
}

// hashJoin is the equi-join shared by HashJoin and IndexedHashJoin: when the
// cache identifies the right side as an untouched base scan, the build table
// is the instance's shared per-column index; otherwise it is built here from
// the right rows.
func hashJoin(ctx context.Context, left, right *Relation, leftCol, rightCol string, stats *Stats, cache *IndexCache) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	li := left.ColumnIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("join: column %q not found in %v", leftCol, left.Columns)
	}
	ri := right.ColumnIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("join: column %q not found in %v", rightCol, right.Columns)
	}
	cols := make([]string, 0, len(left.Columns)+len(right.Columns))
	cols = append(cols, left.Columns...)
	cols = append(cols, right.Columns...)
	out := NewRelation(left.Name+"⋈"+right.Name, cols)

	var build *hashIndex
	shared := false
	if cache != nil {
		if base, ok := cache.baseForRows(right.Rows); ok {
			idx, err := cache.columnIndex(ctx, base, ri, stats)
			if err != nil {
				return nil, err
			}
			stats.recordIndexLookup()
			build, shared = idx, true
		}
	}
	if build == nil {
		var err error
		build, err = buildColumnHashIndex(ctx, right.Rows, ri)
		if err != nil {
			return nil, err
		}
	}
	if err := probeJoin(ctx, left.Rows, li, ri, build, out); err != nil {
		return nil, err
	}
	if shared {
		// The build side was not read: only the probe rows count as input.
		stats.record(OpKindJoin, len(left.Rows), len(out.Rows))
	} else {
		stats.record(OpKindJoin, len(left.Rows)+len(right.Rows), len(out.Rows))
	}
	return out, nil
}

// probeJoin streams the left rows against the build index, appending joined
// rows to out.  Chains preserve build-row order, so output order is identical
// whether the index was built here or shared.
func probeJoin(ctx context.Context, lrows []Tuple, li, ri int, build *hashIndex, out *Relation) error {
	var arena valueArena
	probed := 0
	for _, lr := range lrows {
		v := lr[li]
		for j := build.heads[v.Hash64()]; j != 0; j = build.next[j-1] {
			probed++
			if probed%checkInterval == 0 {
				if err := canceled(ctx); err != nil {
					return err
				}
			}
			rr := build.rows[j-1]
			if !rr[ri].EqualKey(v) {
				continue // hash collision, not an actual match
			}
			out.Rows = append(out.Rows, arena.concat(lr, rr))
		}
	}
	return nil
}

// Distinct removes duplicate rows, preserving first-seen order.  Duplicate
// detection is hash-based (Hash64/EqualKey) instead of canonical-key strings.
func Distinct(ctx context.Context, rel *Relation, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	seen := NewTupleSet(len(rel.Rows))
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		if seen.Add(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	stats.record(OpKindDistinct, len(rel.Rows), len(out.Rows))
	return out, nil
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions supported by the workloads (COUNT and SUM are the ones
// used by the paper's queries; AVG/MIN/MAX round out the engine).
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Aggregate computes a single-row aggregate over the relation.  COUNT ignores
// the column (counting rows); the other functions require a numeric column
// except MIN/MAX which also order strings.  The result relation has a single
// column named after the aggregate.
func Aggregate(ctx context.Context, rel *Relation, fn AggFunc, column string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	if err := validAggFunc(fn); err != nil {
		return nil, err
	}
	idx := -1
	if fn != AggCount {
		idx = rel.ColumnIndex(column)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s: column %q not found in %v", fn, column, rel.Columns)
		}
	}
	acc := aggAccumulator{fn: fn, idx: idx, column: column}
	if err := acc.addAll(ctx, rel.Rows); err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, []string{aggOutputColumn(fn, column)})
	out.Rows = append(out.Rows, acc.result())
	stats.record(OpKindAggregate, len(rel.Rows), 1)
	return out, nil
}
