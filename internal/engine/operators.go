package engine

import (
	"context"
	"fmt"
	"sync"
)

// Stats records the work done by the engine while evaluating plans.  The
// evaluation algorithms in internal/core share one Stats per query run so that
// the number of executed source operators (Table IV), rows scanned and
// intermediate tuples produced can be reported.
//
// Recording is safe for concurrent use: the evaluation runtime gives each
// worker its own Stats and merges them with Add when the worker's results are
// consumed, but operators recording into a shared collector from several
// goroutines is also correct.  The exported fields may be read directly once
// evaluation has finished.
type Stats struct {
	mu sync.Mutex

	// Operators counts executed physical operators by kind name
	// ("select", "project", "product", "join", "aggregate", "distinct", "scan").
	Operators map[string]int
	// RowsRead is the total number of input rows consumed by operators.
	RowsRead int
	// RowsProduced is the total number of output rows produced by operators.
	RowsProduced int
}

// NewStats returns an empty statistics collector.
func NewStats() *Stats { return &Stats{Operators: make(map[string]int)} }

func (s *Stats) record(op string, in, out int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Operators == nil {
		s.Operators = make(map[string]int)
	}
	s.Operators[op]++
	s.RowsRead += in
	s.RowsProduced += out
}

// RecordOp counts one executed operator of the given kind without row
// accounting (o-sharing uses it for scans whose rows are consumed lazily by
// the operators reading the fragment).
func (s *Stats) RecordOp(op string) { s.record(op, 0, 0) }

// TotalOperators returns the total number of executed physical operators.
func (s *Stats) TotalOperators() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.Operators {
		n += c
	}
	return n
}

// Add accumulates another collector into s.
func (s *Stats) Add(o *Stats) {
	if s == nil || o == nil || s == o {
		return
	}
	o.mu.Lock()
	ops := make(map[string]int, len(o.Operators))
	for k, v := range o.Operators {
		ops[k] = v
	}
	read, produced := o.RowsRead, o.RowsProduced
	o.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Operators == nil {
		s.Operators = make(map[string]int)
	}
	for k, v := range ops {
		s.Operators[k] += v
	}
	s.RowsRead += read
	s.RowsProduced += produced
}

// Reset clears the collector.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Operators = make(map[string]int)
	s.RowsRead = 0
	s.RowsProduced = 0
}

// checkInterval is the number of rows an operator processes between
// cancellation checks: small enough that cancelling a long-running operator
// takes effect promptly, large enough that the check cost is negligible.
const checkInterval = 4096

// canceled returns the context's error if it is done, and nil otherwise
// (including for a nil context).
func canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Select returns the rows of rel satisfying the predicate.
func Select(ctx context.Context, rel *Relation, pred Predicate, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		ok, err := pred.Eval(rel, row)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, row)
		}
	}
	stats.record("select", len(rel.Rows), len(out.Rows))
	return out, nil
}

// Project returns rel restricted to the given columns, in the given order.
// Duplicate rows are preserved (bag semantics); use Distinct to remove them.
func Project(ctx context.Context, rel *Relation, columns []string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	idx := make([]int, len(columns))
	outCols := make([]string, len(columns))
	for i, c := range columns {
		j := rel.ColumnIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("project: column %q not found in %v", c, rel.Columns)
		}
		idx[i] = j
		outCols[i] = rel.Columns[j]
	}
	out := NewRelation(rel.Name, outCols)
	out.Rows = make([]Tuple, 0, len(rel.Rows))
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		t := make(Tuple, len(idx))
		for i, j := range idx {
			t[i] = row[j]
		}
		out.Rows = append(out.Rows, t)
	}
	stats.record("project", len(rel.Rows), len(out.Rows))
	return out, nil
}

// Product returns the Cartesian product of two relations.  Column names are
// kept as-is, so callers should qualify them beforehand when they may collide.
func Product(ctx context.Context, left, right *Relation, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(left.Columns)+len(right.Columns))
	cols = append(cols, left.Columns...)
	cols = append(cols, right.Columns...)
	out := NewRelation(left.Name+"x"+right.Name, cols)
	out.Rows = make([]Tuple, 0, len(left.Rows)*len(right.Rows))
	produced := 0
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			produced++
			if produced%checkInterval == 0 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			t := make(Tuple, 0, len(lr)+len(rr))
			t = append(t, lr...)
			t = append(t, rr...)
			out.Rows = append(out.Rows, t)
		}
	}
	stats.record("product", len(left.Rows)+len(right.Rows), len(out.Rows))
	return out, nil
}

// HashJoin returns the equi-join of left and right on leftCol = rightCol.
// It builds a hash table on the smaller input.
func HashJoin(ctx context.Context, left, right *Relation, leftCol, rightCol string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	li := left.ColumnIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("join: column %q not found in %v", leftCol, left.Columns)
	}
	ri := right.ColumnIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("join: column %q not found in %v", rightCol, right.Columns)
	}
	cols := make([]string, 0, len(left.Columns)+len(right.Columns))
	cols = append(cols, left.Columns...)
	cols = append(cols, right.Columns...)
	out := NewRelation(left.Name+"⋈"+right.Name, cols)

	// Build on the right side.
	build := make(map[string][]Tuple, len(right.Rows))
	for i, rr := range right.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		k := Tuple{rr[ri]}.Key()
		build[k] = append(build[k], rr)
	}
	probed := 0
	for _, lr := range left.Rows {
		k := Tuple{lr[li]}.Key()
		for _, rr := range build[k] {
			probed++
			if probed%checkInterval == 0 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			t := make(Tuple, 0, len(lr)+len(rr))
			t = append(t, lr...)
			t = append(t, rr...)
			out.Rows = append(out.Rows, t)
		}
	}
	stats.record("join", len(left.Rows)+len(right.Rows), len(out.Rows))
	return out, nil
}

// Distinct removes duplicate rows, preserving first-seen order.
func Distinct(ctx context.Context, rel *Relation, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	seen := make(map[string]bool, len(rel.Rows))
	for i, row := range rel.Rows {
		if i%checkInterval == checkInterval-1 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		k := row.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Rows = append(out.Rows, row)
	}
	stats.record("distinct", len(rel.Rows), len(out.Rows))
	return out, nil
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions supported by the workloads (COUNT and SUM are the ones
// used by the paper's queries; AVG/MIN/MAX round out the engine).
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Aggregate computes a single-row aggregate over the relation.  COUNT ignores
// the column (counting rows); the other functions require a numeric column
// except MIN/MAX which also order strings.  The result relation has a single
// column named after the aggregate.
func Aggregate(ctx context.Context, rel *Relation, fn AggFunc, column string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	outCol := fn.String()
	if column != "" {
		outCol = fn.String() + "(" + column + ")"
	}
	out := NewRelation(rel.Name, []string{outCol})

	switch fn {
	case AggCount:
		out.Rows = append(out.Rows, Tuple{I(int64(len(rel.Rows)))})
	case AggSum, AggAvg:
		idx := rel.ColumnIndex(column)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s: column %q not found in %v", fn, column, rel.Columns)
		}
		sum := 0.0
		n := 0
		for i, row := range rel.Rows {
			if i%checkInterval == checkInterval-1 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			f, ok := row[idx].AsFloat()
			if !ok {
				return nil, fmt.Errorf("aggregate %s: non-numeric value %v in column %q", fn, row[idx], column)
			}
			sum += f
			n++
		}
		if fn == AggSum {
			out.Rows = append(out.Rows, Tuple{F(sum)})
		} else {
			if n == 0 {
				out.Rows = append(out.Rows, Tuple{Null()})
			} else {
				out.Rows = append(out.Rows, Tuple{F(sum / float64(n))})
			}
		}
	case AggMin, AggMax:
		idx := rel.ColumnIndex(column)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s: column %q not found in %v", fn, column, rel.Columns)
		}
		if len(rel.Rows) == 0 {
			out.Rows = append(out.Rows, Tuple{Null()})
			break
		}
		best := rel.Rows[0][idx]
		for _, row := range rel.Rows[1:] {
			cmp := row[idx].Compare(best)
			if (fn == AggMin && cmp < 0) || (fn == AggMax && cmp > 0) {
				best = row[idx]
			}
		}
		out.Rows = append(out.Rows, Tuple{best})
	default:
		return nil, fmt.Errorf("aggregate: unsupported function %v", fn)
	}
	stats.record("aggregate", len(rel.Rows), len(out.Rows))
	return out, nil
}
