package engine

import (
	"context"
	"fmt"
)

// checkInterval is the number of rows an operator processes between
// cancellation checks: small enough that cancelling a long-running operator
// takes effect promptly, large enough that the check cost is negligible.
const checkInterval = 4096

// canceled returns the context's error if it is done, and nil otherwise
// (including for a nil context).
func canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// The functions below are the materialized operator API: each consumes
// materialized relations and produces a materialized relation, recording one
// operator execution.  The o-sharing evaluator uses them directly — its
// fragments must stay materialized so partially executed state can be shared
// across e-units — while the plan executor streams through the RowSource
// pipeline in source.go instead.  Both paths share the same hashing, predicate
// binding and tuple-arena machinery, and produce identical results and
// statistics.

// Select returns the rows of rel satisfying the predicate.  The predicate is
// bound once — column references resolve to positions before the scan — so
// per-row evaluation does no name lookups.
func Select(ctx context.Context, rel *Relation, pred Predicate, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	vp, err := compileVecPredicate(pred, rel.ColumnIndex, rel.Columns)
	if err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	rows := rel.Rows
	// Filter the whole relation into one selection vector first (pointer-free,
	// so it is nearly invisible to the GC), then allocate the output row list
	// at its exact final size: no growth reallocations, no over-allocation.
	sel := make([]int32, 0, len(rows))
	var selbuf []int32
	for lo := 0; lo < len(rows); lo += checkInterval {
		if lo > 0 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		hi := lo + checkInterval
		if hi > len(rows) {
			hi = len(rows)
		}
		blockSel, err := vp.filterSel(rows[lo:hi], nil, selbuf[:0])
		if err != nil {
			return nil, err
		}
		selbuf = blockSel
		for _, i := range blockSel {
			sel = append(sel, i+int32(lo))
		}
	}
	if len(sel) > 0 {
		out.Rows = make([]Tuple, len(sel))
		for k, i := range sel {
			out.Rows[k] = rows[i]
		}
	}
	stats.record(OpKindSelect, len(rel.Rows), len(out.Rows))
	return out, nil
}

// Project returns rel restricted to the given columns, in the given order.
// Duplicate rows are preserved (bag semantics); use Distinct to remove them.
// Output tuples are carved from a flat arena rather than allocated per row.
func Project(ctx context.Context, rel *Relation, columns []string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	idx := make([]int, len(columns))
	outCols := make([]string, len(columns))
	for i, c := range columns {
		j := rel.ColumnIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("project: column %q not found in %v", c, rel.Columns)
		}
		idx[i] = j
		outCols[i] = rel.Columns[j]
	}
	out := NewRelation(rel.Name, outCols)
	if err := projectRows(ctx, rel.Rows, idx, &out.Rows); err != nil {
		return nil, err
	}
	stats.record(OpKindProject, len(rel.Rows), len(out.Rows))
	return out, nil
}

// projectRows gathers the idx columns of every input row into *out, sized
// exactly: one value slab and one row-header slab for the whole input, no
// growth reallocations.  The one- and two-column widths — virtually every
// projection the reformulated workloads produce — run specialized loops.
//
// When the requested columns are a contiguous run in source order (every
// single-column projection is), no values move at all: each output tuple is a
// capacity-clamped subslice of its input row.  Tuples are immutable once
// built — the batch pipeline already aliases base-relation rows into batches
// on the same contract — so sharing the value backing is observationally
// identical to copying it.  The full slice expression pins cap to the window,
// keeping any later append from writing into the source row's other columns.
// contiguousIdx reports whether the projection indices are a contiguous
// ascending run of source columns, the shape the zero-copy window path serves.
func contiguousIdx(idx []int) bool {
	for c := 1; c < len(idx); c++ {
		if idx[c] != idx[0]+c {
			return false
		}
	}
	return len(idx) > 0
}

func projectRows(ctx context.Context, rows []Tuple, idx []int, out *[]Tuple) error {
	n := len(rows)
	if n == 0 {
		return nil
	}
	k := len(idx)
	// Reuse the caller's slice when it has the capacity — the batch executor
	// hands back the drained (private) header slice so a root projection
	// rewrites headers in place instead of allocating a second slab.  Headers
	// are copied into locals before their slot is overwritten, and the value
	// backing is never written, so dst may alias rows.
	dst := *out
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]Tuple, n)
	}
	*out = dst
	if k == 0 {
		for i := range dst {
			dst[i] = Tuple{}
		}
		return nil
	}
	if contiguousIdx(idx) {
		j0, j1 := idx[0], idx[0]+k
		for lo := 0; lo < n; lo += checkInterval {
			if lo > 0 {
				if err := canceled(ctx); err != nil {
					return err
				}
			}
			hi := lo + checkInterval
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				dst[i] = rows[i][j0:j1:j1]
			}
		}
		return nil
	}
	flat := make([]Value, k*n)
	for lo := 0; lo < n; lo += checkInterval {
		if lo > 0 {
			if err := canceled(ctx); err != nil {
				return err
			}
		}
		hi := lo + checkInterval
		if hi > n {
			hi = n
		}
		off := lo * k
		switch k {
		case 1:
			j0 := idx[0]
			for i := lo; i < hi; i++ {
				t := Tuple(flat[off : off+1 : off+1])
				t[0] = rows[i][j0]
				dst[i] = t
				off++
			}
		case 2:
			j0, j1 := idx[0], idx[1]
			for i := lo; i < hi; i++ {
				t := Tuple(flat[off : off+2 : off+2])
				row := rows[i]
				t[0] = row[j0]
				t[1] = row[j1]
				dst[i] = t
				off += 2
			}
		default:
			for i := lo; i < hi; i++ {
				row := rows[i]
				t := Tuple(flat[off : off+k : off+k])
				for c, j := range idx {
					t[c] = row[j]
				}
				dst[i] = t
				off += k
			}
		}
	}
	return nil
}

// Product returns the Cartesian product of two relations.  Column names are
// kept as-is, so callers should qualify them beforehand when they may collide.
// The output grows geometrically: pre-sizing it to rows(left)·rows(right)
// could overflow int or demand absurd memory before the first row exists.
func Product(ctx context.Context, left, right *Relation, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	cols := make([]string, 0, len(left.Columns)+len(right.Columns))
	cols = append(cols, left.Columns...)
	cols = append(cols, right.Columns...)
	out := NewRelation(left.Name+"x"+right.Name, cols)
	var arena valueArena
	produced := 0
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			produced++
			if produced%checkInterval == 0 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			out.Rows = append(out.Rows, arena.concat(lr, rr))
		}
	}
	stats.record(OpKindProduct, len(left.Rows)+len(right.Rows), len(out.Rows))
	return out, nil
}

// HashJoin returns the equi-join of left and right on leftCol = rightCol.
// It builds a hash table on the right input, keyed by the 64-bit value hash;
// probes compare candidate rows with EqualKey, so no key strings are ever
// formatted.
func HashJoin(ctx context.Context, left, right *Relation, leftCol, rightCol string, stats *Stats) (*Relation, error) {
	return hashJoin(ctx, left, right, leftCol, rightCol, stats, nil, 0)
}

// hashJoin is the equi-join shared by HashJoin and IndexedHashJoin: when the
// cache identifies the right side as an untouched base scan, the build table
// is the instance's shared per-column index; otherwise it is built here from
// the right rows — partitioned across workers when the build side is large
// enough (the built structure is byte-identical either way).
func hashJoin(ctx context.Context, left, right *Relation, leftCol, rightCol string, stats *Stats, cache *IndexCache, workers int) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	li := left.ColumnIndex(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("join: column %q not found in %v", leftCol, left.Columns)
	}
	ri := right.ColumnIndex(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("join: column %q not found in %v", rightCol, right.Columns)
	}
	cols := make([]string, 0, len(left.Columns)+len(right.Columns))
	cols = append(cols, left.Columns...)
	cols = append(cols, right.Columns...)
	out := NewRelation(left.Name+"⋈"+right.Name, cols)

	var build *hashIndex
	shared := false
	if cache != nil {
		if base, ok := cache.baseForRows(right.Rows); ok {
			idx, err := cache.columnIndex(ctx, base, ri, stats)
			if err != nil {
				return nil, err
			}
			stats.recordIndexLookup()
			build, shared = idx, true
		}
	}
	if build == nil {
		var err error
		build, err = buildColumnHashIndexPar(ctx, right.Rows, ri, workers, stats)
		if err != nil {
			return nil, err
		}
	}
	if err := probeJoin(ctx, left.Rows, li, ri, build, out); err != nil {
		return nil, err
	}
	if shared {
		// The build side was not read: only the probe rows count as input.
		stats.record(OpKindJoin, len(left.Rows), len(out.Rows))
	} else {
		stats.record(OpKindJoin, len(left.Rows)+len(right.Rows), len(out.Rows))
	}
	return out, nil
}

// probeJoin streams the left rows against the build index, appending joined
// rows to out.  Probe-key hashes are precomputed one block at a time — the
// same batch FNV-1a pass the batch pipeline's join runs — and chain entries
// whose stored hash differs are rejected without touching the candidate row.
// Chains preserve build-row order, so output order is identical whether the
// index was built here or shared.
func probeJoin(ctx context.Context, lrows []Tuple, li, ri int, build *hashIndex, out *Relation) error {
	var arena valueArena
	// Seed the output at the no-duplicate-keys estimate: at most one match per
	// probe and at most one per build row, so the smaller side bounds the
	// duplicate-free output.  Joins at or under it never reallocate; larger
	// outputs fall back to geometric growth.  The arena is reserved to the
	// same estimate, so the common foreign-key shape fills exactly one value
	// slab instead of leaving a partially used chunk behind.
	if len(lrows) > 0 && len(build.rows) > 0 {
		seed := len(lrows)
		if len(build.rows) < seed {
			seed = len(build.rows)
		}
		out.Rows = make([]Tuple, 0, seed)
		if w := len(lrows[0]) + len(build.rows[0]); w > 0 && seed <= (1<<31)/w {
			arena.reserve(seed * w)
		}
	}
	hashes := make([]uint64, DefaultBatchSize)
	heads := make([]int32, DefaultBatchSize)
	bnext, bhashes, brows := build.next, build.hashes, build.rows
	probed := 0
	for lo := 0; lo < len(lrows); lo += DefaultBatchSize {
		if err := canceled(ctx); err != nil {
			return err
		}
		hi := lo + DefaultBatchSize
		if hi > len(lrows) {
			hi = len(lrows)
		}
		block := lrows[lo:hi]
		hashColumn(block, li, hashes[:len(block)])
		// Gather the bucket heads in their own pass: the masked loads are
		// independent, so the out-of-order window overlaps their cache misses
		// instead of serializing them behind each probe's chain walk.
		for i := range block {
			heads[i] = build.lookup(hashes[i])
		}
		for i := range block {
			j := heads[i]
			if j == 0 {
				continue // empty bucket: no candidate shares the hash prefix
			}
			lr := block[i]
			v := lr[li]
			h := hashes[i]
			for ; j != 0; j = bnext[j-1] {
				probed++
				if probed%checkInterval == 0 {
					if err := canceled(ctx); err != nil {
						return err
					}
				}
				if bhashes[j-1] != h {
					continue // bucket collision: different hash entirely
				}
				rr := brows[j-1]
				if !rr[ri].EqualKey(v) {
					continue // hash collision, not an actual match
				}
				out.Rows = append(out.Rows, arena.concat(lr, rr))
			}
		}
	}
	return nil
}

// Distinct removes duplicate rows, preserving first-seen order.  Duplicate
// detection is hash-based (Hash64/EqualKey) instead of canonical-key strings.
func Distinct(ctx context.Context, rel *Relation, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	seen := NewTupleSet(len(rel.Rows))
	rows := rel.Rows
	hashes := make([]uint64, 0, DefaultBatchSize)
	for lo := 0; lo < len(rows); lo += DefaultBatchSize {
		if lo > 0 {
			if err := canceled(ctx); err != nil {
				return nil, err
			}
		}
		hi := lo + DefaultBatchSize
		if hi > len(rows) {
			hi = len(rows)
		}
		block := rows[lo:hi]
		hashes = hashes[:0]
		for i := range block {
			hashes = append(hashes, block[i].Hash64())
		}
		for i := range block {
			if seen.AddHashed(hashes[i], block[i]) {
				out.Rows = append(out.Rows, block[i])
			}
		}
	}
	stats.record(OpKindDistinct, len(rel.Rows), len(out.Rows))
	return out, nil
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions supported by the workloads (COUNT and SUM are the ones
// used by the paper's queries; AVG/MIN/MAX round out the engine).
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// Aggregate computes a single-row aggregate over the relation.  COUNT ignores
// the column (counting rows); the other functions require a numeric column
// except MIN/MAX which also order strings.  The result relation has a single
// column named after the aggregate.
func Aggregate(ctx context.Context, rel *Relation, fn AggFunc, column string, stats *Stats) (*Relation, error) {
	if err := canceled(ctx); err != nil {
		return nil, err
	}
	if err := validAggFunc(fn); err != nil {
		return nil, err
	}
	idx := -1
	if fn != AggCount {
		idx = rel.ColumnIndex(column)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s: column %q not found in %v", fn, column, rel.Columns)
		}
	}
	acc := aggAccumulator{fn: fn, idx: idx, column: column}
	if err := acc.addAll(ctx, rel.Rows); err != nil {
		return nil, err
	}
	out := NewRelation(rel.Name, []string{aggOutputColumn(fn, column)})
	out.Rows = append(out.Rows, acc.result())
	stats.record(OpKindAggregate, len(rel.Rows), 1)
	return out, nil
}
