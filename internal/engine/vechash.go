package engine

import "math"

// Batch FNV-1a hashing.
//
// Value.hash64 is a strict dependency chain: every round's multiply feeds the
// next round's xor, so a single hash can never run faster than eight serial
// multiplies.  Different values' chains are independent, though, and the batch
// pipeline always has a block of keys in hand — so the kernels here interleave
// four chains and let the CPU overlap their multiplies.  The arithmetic per
// lane is exactly Value.hash64's: same seed, same kind tag, same byte order,
// same NaN canonicalization.  Every dst element is bit-identical to calling
// rows[i][col].Hash64(), which is what lets shared indexes, sequential builds
// and partitioned builds stay interchangeable.
//
// Only int and float lanes qualify for the interleaved rounds: their payload
// is always exactly eight bytes.  Strings (variable length) and nulls (no
// payload rounds) drop the whole group of four to the scalar path.

// fnvLane reduces an int or float value to its interleavable form: the seeded
// hash after the kind tag round, and the 8-byte payload.  ok is false for
// kinds without a fixed-width payload.
func fnvLane(v *Value) (h, x uint64, ok bool) {
	switch v.Kind {
	case KindInt:
		x = uint64(v.Int)
	case KindFloat:
		x = math.Float64bits(v.Float)
		if v.Float != v.Float {
			// Match Value.hash64: every NaN payload hashes like math.NaN().
			x = math.Float64bits(math.NaN())
		}
	default:
		return 0, 0, false
	}
	h = (fnvOffset64 ^ (uint64(v.Kind) + 1)) * fnvPrime64
	return h, x, true
}

// hashColumn fills dst[i] with rows[i][col].Hash64() for every row, four
// interleaved chains at a time.  dst must have len(rows) elements.
func hashColumn(rows []Tuple, col int, dst []uint64) {
	n := len(rows)
	i := 0
	for ; i+4 <= n; i += 4 {
		h0, x0, ok0 := fnvLane(&rows[i][col])
		h1, x1, ok1 := fnvLane(&rows[i+1][col])
		h2, x2, ok2 := fnvLane(&rows[i+2][col])
		h3, x3, ok3 := fnvLane(&rows[i+3][col])
		if !(ok0 && ok1 && ok2 && ok3) {
			dst[i] = rows[i][col].Hash64()
			dst[i+1] = rows[i+1][col].Hash64()
			dst[i+2] = rows[i+2][col].Hash64()
			dst[i+3] = rows[i+3][col].Hash64()
			continue
		}
		for r := 0; r < 8; r++ {
			h0 = (h0 ^ (x0 & 0xff)) * fnvPrime64
			h1 = (h1 ^ (x1 & 0xff)) * fnvPrime64
			h2 = (h2 ^ (x2 & 0xff)) * fnvPrime64
			h3 = (h3 ^ (x3 & 0xff)) * fnvPrime64
			x0 >>= 8
			x1 >>= 8
			x2 >>= 8
			x3 >>= 8
		}
		dst[i], dst[i+1], dst[i+2], dst[i+3] = h0, h1, h2, h3
	}
	for ; i < n; i++ {
		dst[i] = rows[i][col].Hash64()
	}
}

// hashColumnSel is hashColumn over a selection vector: dst[k] receives
// rows[sel[k]][col].Hash64().  dst must have len(sel) elements.
func hashColumnSel(rows []Tuple, col int, sel []int32, dst []uint64) {
	n := len(sel)
	k := 0
	for ; k+4 <= n; k += 4 {
		h0, x0, ok0 := fnvLane(&rows[sel[k]][col])
		h1, x1, ok1 := fnvLane(&rows[sel[k+1]][col])
		h2, x2, ok2 := fnvLane(&rows[sel[k+2]][col])
		h3, x3, ok3 := fnvLane(&rows[sel[k+3]][col])
		if !(ok0 && ok1 && ok2 && ok3) {
			dst[k] = rows[sel[k]][col].Hash64()
			dst[k+1] = rows[sel[k+1]][col].Hash64()
			dst[k+2] = rows[sel[k+2]][col].Hash64()
			dst[k+3] = rows[sel[k+3]][col].Hash64()
			continue
		}
		for r := 0; r < 8; r++ {
			h0 = (h0 ^ (x0 & 0xff)) * fnvPrime64
			h1 = (h1 ^ (x1 & 0xff)) * fnvPrime64
			h2 = (h2 ^ (x2 & 0xff)) * fnvPrime64
			h3 = (h3 ^ (x3 & 0xff)) * fnvPrime64
			x0 >>= 8
			x1 >>= 8
			x2 >>= 8
			x3 >>= 8
		}
		dst[k], dst[k+1], dst[k+2], dst[k+3] = h0, h1, h2, h3
	}
	for ; k < n; k++ {
		dst[k] = rows[sel[k]][col].Hash64()
	}
}
