package engine

import (
	"context"
	"strings"
	"testing"
	"testing/quick"
)

// bgCtx is the no-cancellation context shared by operator-level tests.
var bgCtx = context.Background()

// customerRelation builds the Customer relation of Figure 2 in the paper.
func customerRelation() *Relation {
	r := NewRelation("Customer", []string{"cid", "cname", "ophone", "hphone", "oaddr", "haddr"})
	r.MustAppend(Tuple{I(1), S("Alice"), S("123"), S("789"), S("aaa"), S("hk")})
	r.MustAppend(Tuple{I(2), S("Bob"), S("456"), S("123"), S("bbb"), S("hk")})
	r.MustAppend(Tuple{I(3), S("Cindy"), S("456"), S("789"), S("aaa"), S("aaa")})
	return r
}

func orderRelation() *Relation {
	r := NewRelation("C_Order", []string{"oid", "cid", "amount"})
	r.MustAppend(Tuple{I(10), I(1), F(100.5)})
	r.MustAppend(Tuple{I(11), I(2), F(20)})
	r.MustAppend(Tuple{I(12), I(1), F(3.25)})
	return r
}

func testInstance() *Instance {
	db := NewInstance("D")
	db.AddRelation(customerRelation())
	db.AddRelation(orderRelation())
	return db
}

func TestValueBasics(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null should be null")
	}
	if S("x").IsNull() || I(1).IsNull() || F(1).IsNull() {
		t.Error("non-null values reported null")
	}
	if f, ok := I(7).AsFloat(); !ok || f != 7 {
		t.Errorf("I(7).AsFloat = %v,%v", f, ok)
	}
	if f, ok := S("2.5").AsFloat(); !ok || f != 2.5 {
		t.Errorf("S(2.5).AsFloat = %v,%v", f, ok)
	}
	if _, ok := S("abc").AsFloat(); ok {
		t.Error("S(abc).AsFloat should fail")
	}
	if _, ok := Null().AsFloat(); ok {
		t.Error("Null.AsFloat should fail")
	}
	if !I(3).Equal(F(3)) {
		t.Error("I(3) should equal F(3)")
	}
	if I(3).Equal(S("3")) != true {
		// Numeric/string equality goes through AsFloat; "3" parses to 3.
		t.Error("I(3) vs S(3) should compare numerically equal")
	}
	if S("a").Equal(S("b")) {
		t.Error("distinct strings reported equal")
	}
	if !Null().Equal(Null()) || Null().Equal(I(0)) {
		t.Error("null equality semantics broken")
	}
	if I(1).Compare(I(2)) >= 0 || I(2).Compare(I(1)) <= 0 || I(2).Compare(I(2)) != 0 {
		t.Error("integer comparison broken")
	}
	if S("a").Compare(S("b")) >= 0 {
		t.Error("string comparison broken")
	}
	if Null().Compare(I(1)) >= 0 || I(1).Compare(Null()) <= 0 || Null().Compare(Null()) != 0 {
		t.Error("null ordering broken")
	}
	if got := F(2.5).String(); got != "2.5" {
		t.Errorf("F(2.5).String = %q", got)
	}
	if got := Null().String(); got != "NULL" {
		t.Errorf("Null.String = %q", got)
	}
	if KindInt.String() != "int" || KindNull.String() != "null" {
		t.Error("Kind.String mismatch")
	}
}

func TestTupleKeyAndEqual(t *testing.T) {
	a := Tuple{S("1"), I(2)}
	b := Tuple{S("1"), I(2)}
	c := Tuple{I(1), I(2)}
	if a.Key() != b.Key() {
		t.Error("identical tuples should have identical keys")
	}
	if a.Key() == c.Key() {
		t.Error("S(1) and I(1) tuples should have different keys")
	}
	if !a.Equal(b) || a.Equal(Tuple{S("1")}) {
		t.Error("tuple equality broken")
	}
	cl := a.Clone()
	cl[0] = S("changed")
	if a[0].Str != "1" {
		t.Error("Clone is not independent")
	}
	if !strings.Contains(a.String(), "1") {
		t.Error("tuple String should render values")
	}
}

func TestRelationColumnResolution(t *testing.T) {
	r := customerRelation().QualifyColumns("Customer")
	if idx := r.ColumnIndex("Customer.cname"); idx != 1 {
		t.Errorf("qualified lookup = %d, want 1", idx)
	}
	if idx := r.ColumnIndex("cname"); idx != 1 {
		t.Errorf("unqualified lookup = %d, want 1", idx)
	}
	if idx := r.ColumnIndex("nosuch"); idx != -1 {
		t.Errorf("missing column = %d, want -1", idx)
	}
	// Ambiguity: product of Customer with itself has two cid columns.
	p, err := Product(bgCtx, customerRelation().QualifyColumns("A"), customerRelation().QualifyColumns("B"), NewStats())
	if err != nil {
		t.Fatal(err)
	}
	if idx := p.ColumnIndex("cid"); idx != -1 {
		t.Errorf("ambiguous unqualified lookup should fail, got %d", idx)
	}
	if idx := p.ColumnIndex("A.cid"); idx != 0 {
		t.Errorf("qualified lookup in product = %d, want 0", idx)
	}
}

func TestRelationAppendAndClone(t *testing.T) {
	r := NewRelation("R", []string{"a", "b"})
	if err := r.Append(Tuple{I(1)}); err == nil {
		t.Error("arity mismatch should error")
	}
	r.MustAppend(Tuple{I(1), S("x")})
	c := r.Clone()
	c.Rows[0][0] = I(99)
	if r.Rows[0][0].Int != 1 {
		t.Error("Clone leaked mutation")
	}
	col, err := r.Column("b")
	if err != nil || len(col) != 1 || col[0].Str != "x" {
		t.Errorf("Column(b) = %v,%v", col, err)
	}
	if _, err := r.Column("zz"); err == nil {
		t.Error("Column on missing name should error")
	}
	if r.IsEmpty() {
		t.Error("relation with rows reported empty")
	}
	if r.NumRows() != 1 || r.NumColumns() != 2 {
		t.Error("NumRows/NumColumns mismatch")
	}
	if !strings.Contains(r.String(), "R[1 rows]") {
		t.Errorf("String = %q", r.String())
	}
}

func TestSelectOperator(t *testing.T) {
	stats := NewStats()
	rel := customerRelation()
	out, err := Select(bgCtx, rel, Eq("oaddr", S("aaa")), stats)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Errorf("select returned %d rows, want 2", out.NumRows())
	}
	if stats.Count(OpKindSelect) != 1 {
		t.Errorf("select operator count = %d", stats.Count(OpKindSelect))
	}
	if _, err := Select(bgCtx, rel, Eq("missing", S("x")), stats); err == nil {
		t.Error("select on missing column should error")
	}
	// Comparison operators.
	gt, err := Select(bgCtx, orderRelation(), &ConstPredicate{Column: "amount", Op: OpGt, Value: F(50)}, stats)
	if err != nil || gt.NumRows() != 1 {
		t.Errorf("amount > 50: rows=%v err=%v", gt.NumRows(), err)
	}
	ne, err := Select(bgCtx, rel, &ConstPredicate{Column: "cname", Op: OpNe, Value: S("Alice")}, stats)
	if err != nil || ne.NumRows() != 2 {
		t.Errorf("cname != Alice: rows=%v err=%v", ne.NumRows(), err)
	}
}

func TestProjectOperator(t *testing.T) {
	stats := NewStats()
	out, err := Project(bgCtx, customerRelation(), []string{"cname", "oaddr"}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumColumns() != 2 || out.NumRows() != 3 {
		t.Errorf("project shape = %dx%d", out.NumRows(), out.NumColumns())
	}
	if out.Rows[0][0].Str != "Alice" || out.Rows[0][1].Str != "aaa" {
		t.Errorf("project row = %v", out.Rows[0])
	}
	if _, err := Project(bgCtx, customerRelation(), []string{"nosuch"}, stats); err == nil {
		t.Error("project on missing column should error")
	}
}

func TestProductAndJoin(t *testing.T) {
	stats := NewStats()
	c := customerRelation().QualifyColumns("Customer")
	o := orderRelation().QualifyColumns("C_Order")
	p, err := Product(bgCtx, c, o, stats)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows() != 9 || p.NumColumns() != 9 {
		t.Errorf("product shape = %dx%d, want 9x9", p.NumRows(), p.NumColumns())
	}
	j, err := HashJoin(bgCtx, c, o, "Customer.cid", "C_Order.cid", stats)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 {
		t.Errorf("join rows = %d, want 3", j.NumRows())
	}
	if _, err := HashJoin(bgCtx, c, o, "bad", "C_Order.cid", stats); err == nil {
		t.Error("join with bad left column should error")
	}
	if _, err := HashJoin(bgCtx, c, o, "Customer.cid", "bad", stats); err == nil {
		t.Error("join with bad right column should error")
	}
	// Join must equal product followed by an equality selection.
	sel, err := Select(bgCtx, p, ColEq("Customer.cid", "C_Order.cid"), stats)
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumRows() != j.NumRows() {
		t.Errorf("join (%d rows) != product+select (%d rows)", j.NumRows(), sel.NumRows())
	}
}

func TestDistinct(t *testing.T) {
	stats := NewStats()
	r := NewRelation("R", []string{"a"})
	r.MustAppend(Tuple{S("x")})
	r.MustAppend(Tuple{S("x")})
	r.MustAppend(Tuple{S("y")})
	d, err := Distinct(bgCtx, r, stats)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 2 {
		t.Errorf("distinct rows = %d, want 2", d.NumRows())
	}
}

func TestAggregates(t *testing.T) {
	stats := NewStats()
	o := orderRelation()
	cases := []struct {
		fn   AggFunc
		col  string
		want Value
	}{
		{AggCount, "", I(3)},
		{AggSum, "amount", F(123.75)},
		{AggAvg, "amount", F(41.25)},
		{AggMin, "amount", F(3.25)},
		{AggMax, "amount", F(100.5)},
	}
	for _, c := range cases {
		out, err := Aggregate(bgCtx, o, c.fn, c.col, stats)
		if err != nil {
			t.Fatalf("%s: %v", c.fn, err)
		}
		if out.NumRows() != 1 || !out.Rows[0][0].Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.fn, out.Rows[0][0], c.want)
		}
	}
	if _, err := Aggregate(bgCtx, o, AggSum, "missing", stats); err == nil {
		t.Error("SUM on missing column should error")
	}
	if _, err := Aggregate(bgCtx, o, AggSum, "oid", stats); err != nil {
		t.Errorf("SUM on int column should work: %v", err)
	}
	empty := NewRelation("E", []string{"x"})
	avg, err := Aggregate(bgCtx, empty, AggAvg, "x", stats)
	if err != nil || !avg.Rows[0][0].IsNull() {
		t.Errorf("AVG of empty = %v, %v; want NULL", avg.Rows[0][0], err)
	}
	mn, err := Aggregate(bgCtx, empty, AggMin, "x", stats)
	if err != nil || !mn.Rows[0][0].IsNull() {
		t.Errorf("MIN of empty = %v, %v; want NULL", mn.Rows[0][0], err)
	}
	cnt, err := Aggregate(bgCtx, empty, AggCount, "", stats)
	if err != nil || cnt.Rows[0][0].Int != 0 {
		t.Errorf("COUNT of empty = %v, %v; want 0", cnt.Rows[0][0], err)
	}
}

func TestPredicates(t *testing.T) {
	rel := customerRelation()
	row := rel.Rows[0] // Alice
	and := And(Eq("cname", S("Alice")), Eq("oaddr", S("aaa")))
	ok, err := and.Eval(rel, row)
	if err != nil || !ok {
		t.Errorf("AND eval = %v,%v", ok, err)
	}
	or := &OrPredicate{Children: []Predicate{Eq("cname", S("Zed")), Eq("oaddr", S("aaa"))}}
	ok, err = or.Eval(rel, row)
	if err != nil || !ok {
		t.Errorf("OR eval = %v,%v", ok, err)
	}
	not := &NotPredicate{Child: Eq("cname", S("Alice"))}
	ok, err = not.Eval(rel, row)
	if err != nil || ok {
		t.Errorf("NOT eval = %v,%v", ok, err)
	}
	if !strings.Contains(and.String(), "AND") || !strings.Contains(or.String(), "OR") || !strings.Contains(not.String(), "NOT") {
		t.Error("predicate String renderings missing keywords")
	}
	// And() flattens nested conjunctions and drops nils.
	flat := And(nil, and, Eq("hphone", S("789")))
	if ap, okc := flat.(*AndPredicate); !okc || len(ap.Children) != 3 {
		t.Errorf("And flattening produced %#v", flat)
	}
	if single := And(Eq("a", I(1))); single.String() != "a=1" {
		t.Errorf("And of one predicate should be that predicate, got %s", single)
	}
	// Error propagation through composites.
	bad := And(Eq("missing", I(1)), Eq("cname", S("Alice")))
	if _, err := bad.Eval(rel, row); err == nil {
		t.Error("AND over missing column should error")
	}
	badOr := &OrPredicate{Children: []Predicate{Eq("missing", I(1))}}
	if _, err := badOr.Eval(rel, row); err == nil {
		t.Error("OR over missing column should error")
	}
	badNot := &NotPredicate{Child: Eq("missing", I(1))}
	if _, err := badNot.Eval(rel, row); err == nil {
		t.Error("NOT over missing column should error")
	}
	for _, op := range []CompareOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if op.String() == "" {
			t.Errorf("operator %d has empty rendering", op)
		}
	}
	if OpLe.Matches(0) != true || OpLt.Matches(0) != false || OpGe.Matches(1) != true || OpNe.Matches(0) != false {
		t.Error("CompareOp.Matches table broken")
	}
}

func TestExecutorPlans(t *testing.T) {
	db := testInstance()
	ex := NewExecutor(db)
	// σ oaddr='aaa' Customer, projected to cname.
	plan := &ProjectPlan{
		Columns: []string{"Customer.cname"},
		Child: &SelectPlan{
			Pred:  Eq("Customer.oaddr", S("aaa")),
			Child: &ScanPlan{Relation: "Customer"},
		},
	}
	out, err := ex.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", out.NumRows())
	}
	if got := CountOperators(plan); got != 2 {
		t.Errorf("CountOperators = %d, want 2", got)
	}
	if ex.Stats.Count(OpKindScan) != 1 || ex.Stats.Count(OpKindSelect) != 1 || ex.Stats.Count(OpKindProject) != 1 {
		t.Errorf("stats = %v", ex.Stats.Operators())
	}
	// Aggregate over a join.
	agg := &AggregatePlan{
		Func:   AggSum,
		Column: "C_Order.amount",
		Child: &JoinPlan{
			LeftCol: "Customer.cid", RightCol: "C_Order.cid",
			Left:  &ScanPlan{Relation: "Customer"},
			Right: &ScanPlan{Relation: "C_Order"},
		},
	}
	out, err = ex.Execute(agg)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := out.Rows[0][0].AsFloat(); f != 123.75 {
		t.Errorf("SUM over join = %v, want 123.75", out.Rows[0][0])
	}
	// Error paths.
	if _, err := ex.Execute(&ScanPlan{Relation: "nope"}); err == nil {
		t.Error("scan of unknown relation should error")
	}
	if _, err := ex.Execute(nil); err == nil {
		t.Error("nil plan should error")
	}
	if _, err := ex.Execute(&MaterialPlan{Label: "x"}); err == nil {
		t.Error("material plan with nil relation should error")
	}
	if _, err := ex.Execute(&SelectPlan{Pred: Eq("zz", I(1)), Child: &ScanPlan{Relation: "Customer"}}); err == nil {
		t.Error("select over missing column should error")
	}
}

func TestExecutorCacheSharesSubexpressions(t *testing.T) {
	db := testInstance()
	shared := &SelectPlan{Pred: Eq("Customer.oaddr", S("aaa")), Child: &ScanPlan{Relation: "Customer"}}
	p1 := &ProjectPlan{Columns: []string{"Customer.cname"}, Child: shared}
	p2 := &ProjectPlan{Columns: []string{"Customer.ophone"}, Child: &SelectPlan{Pred: Eq("Customer.oaddr", S("aaa")), Child: &ScanPlan{Relation: "Customer"}}}

	ex := NewExecutor(db)
	ex.EnableCache()
	if _, err := ex.Execute(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(p2); err != nil {
		t.Fatal(err)
	}
	// With the cache the shared select+scan executes once.
	if got := ex.Stats.Count(OpKindSelect); got != 1 {
		t.Errorf("cached executor ran select %d times, want 1", got)
	}
	exNo := NewExecutor(db)
	if _, err := exNo.Execute(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := exNo.Execute(p2); err != nil {
		t.Fatal(err)
	}
	if got := exNo.Stats.Count(OpKindSelect); got != 2 {
		t.Errorf("uncached executor ran select %d times, want 2", got)
	}
}

func TestPlanSignatures(t *testing.T) {
	a := &SelectPlan{Pred: Eq("Customer.oaddr", S("aaa")), Child: &ScanPlan{Relation: "Customer"}}
	b := &SelectPlan{Pred: Eq("Customer.oaddr", S("aaa")), Child: &ScanPlan{Relation: "Customer"}}
	c := &SelectPlan{Pred: Eq("Customer.haddr", S("aaa")), Child: &ScanPlan{Relation: "Customer"}}
	if a.Signature() != b.Signature() {
		t.Error("identical plans should share a signature")
	}
	if a.Signature() == c.Signature() {
		t.Error("different plans should not share a signature")
	}
	alias := &ScanPlan{Relation: "Customer", Alias: "C1"}
	if alias.Signature() == (&ScanPlan{Relation: "Customer"}).Signature() {
		t.Error("aliased scan should have distinct signature")
	}
	nested := &AggregatePlan{Func: AggCount, Child: &DistinctPlan{Child: &ProductPlan{Left: a, Right: alias}}}
	if CountOperators(nested) != 4 {
		t.Errorf("CountOperators(nested) = %d, want 4", CountOperators(nested))
	}
	if !strings.Contains(nested.Signature(), "distinct(") {
		t.Errorf("signature %q missing distinct", nested.Signature())
	}
	mat := &MaterialPlan{Rel: NewRelation("R", nil), Label: "R7"}
	if !strings.Contains(mat.Signature(), "R7") {
		t.Error("material signature should carry label")
	}
	if len(mat.Children()) != 0 || len(nested.Children()) != 1 {
		t.Error("Children() arity wrong")
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	s.record(OpKindSelect, 10, 5)
	s.record(OpKindSelect, 2, 1)
	o := NewStats()
	o.record(OpKindProject, 5, 5)
	s.Add(o)
	if s.TotalOperators() != 3 {
		t.Errorf("TotalOperators = %d, want 3", s.TotalOperators())
	}
	if s.RowsRead() != 17 || s.RowsProduced() != 11 {
		t.Errorf("rows read/produced = %d/%d", s.RowsRead(), s.RowsProduced())
	}
	s.Reset()
	if s.TotalOperators() != 0 {
		t.Error("Reset did not clear operators")
	}
	// nil receivers are safe no-ops.
	var nilStats *Stats
	nilStats.record(OpKindSelect, 1, 1)
	nilStats.Add(o)
	nilStats.Reset()
	if nilStats.TotalOperators() != 0 {
		t.Error("nil stats should report zero operators")
	}
}

func TestInstance(t *testing.T) {
	db := testInstance()
	if db.Relation("Customer") == nil || db.Relation("nope") != nil {
		t.Error("Relation lookup broken")
	}
	if got := db.RelationNames(); len(got) != 2 || got[0] != "Customer" {
		t.Errorf("RelationNames = %v", got)
	}
	if db.NumRows() != 6 {
		t.Errorf("NumRows = %d, want 6", db.NumRows())
	}
	if db.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	// Replacing a relation keeps the name registered once.
	db.AddRelation(NewRelation("Customer", []string{"cid"}))
	if len(db.RelationNames()) != 2 {
		t.Errorf("replacing a relation should not duplicate names: %v", db.RelationNames())
	}
}

// Property: Select never returns more rows than its input and every returned
// row satisfies the predicate.
func TestSelectProperty(t *testing.T) {
	prop := func(vals []int8, threshold int8) bool {
		rel := NewRelation("R", []string{"v"})
		for _, v := range vals {
			rel.MustAppend(Tuple{I(int64(v))})
		}
		pred := &ConstPredicate{Column: "v", Op: OpGe, Value: I(int64(threshold))}
		out, err := Select(bgCtx, rel, pred, NewStats())
		if err != nil {
			return false
		}
		if out.NumRows() > rel.NumRows() {
			return false
		}
		for _, row := range out.Rows {
			if row[0].Int < int64(threshold) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Distinct is idempotent and Product row counts multiply.
func TestAlgebraProperties(t *testing.T) {
	prop := func(a, b []uint8) bool {
		ra := NewRelation("A", []string{"x"})
		for _, v := range a {
			ra.MustAppend(Tuple{I(int64(v % 4))})
		}
		rb := NewRelation("B", []string{"y"})
		for _, v := range b {
			rb.MustAppend(Tuple{I(int64(v % 4))})
		}
		st := NewStats()
		p, err := Product(bgCtx, ra, rb, st)
		if err != nil || p.NumRows() != ra.NumRows()*rb.NumRows() {
			return false
		}
		d1, err := Distinct(bgCtx, ra, st)
		if err != nil {
			return false
		}
		d2, err := Distinct(bgCtx, d1, st)
		if err != nil {
			return false
		}
		return d1.NumRows() == d2.NumRows()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
