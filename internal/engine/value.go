// Package engine is an in-memory relational algebra engine: typed values,
// tuples, relations, a named instance (database), predicates, and the physical
// operators needed by the paper's workloads — selection, projection, Cartesian
// product, equi-join, duplicate elimination and COUNT/SUM/AVG/MIN/MAX
// aggregation.  Every operator execution is recorded in a Stats collector so
// the evaluation algorithms can report how many source operators they ran
// (Table IV of the paper).
package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single typed datum.  The zero value is NULL.
type Value struct {
	Kind  Kind
	Str   string
	Int   int64
	Float float64
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// S returns a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I returns an integer value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// F returns a float value.
func F(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts numeric values to float64; strings parse if possible.
// The second result reports whether the conversion succeeded.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	case KindString:
		f, err := strconv.ParseFloat(v.Str, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// String renders the value for display and for canonical answer-tuple keys.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	default:
		return "?"
	}
}

// FNV-1a parameters for the 64-bit value/tuple hashes.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hash64 mixes the value into the running FNV-1a hash h.  The kind tag is
// hashed first so that S("1"), I(1) and F(1) — distinct under Key equality —
// land in different buckets.
func (v Value) hash64(h uint64) uint64 {
	h ^= uint64(v.Kind) + 1
	h *= fnvPrime64
	switch v.Kind {
	case KindString:
		for i := 0; i < len(v.Str); i++ {
			h ^= uint64(v.Str[i])
			h *= fnvPrime64
		}
	case KindInt:
		x := uint64(v.Int)
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime64
			x >>= 8
		}
	case KindFloat:
		x := math.Float64bits(v.Float)
		if v.Float != v.Float {
			// Key() formats every NaN payload as "NaN", so all NaNs must
			// share a hash to stay consistent with EqualKey.
			x = math.Float64bits(math.NaN())
		}
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= fnvPrime64
			x >>= 8
		}
	}
	return h
}

// Hash64 returns a 64-bit hash of the value, consistent with EqualKey:
// values that are EqualKey always hash identically.
func (v Value) Hash64() uint64 { return v.hash64(fnvOffset64) }

// EqualKey reports equality under the canonical Key encoding: the kinds must
// match and the active payload must render identically.  Floats compare by
// bit pattern — strconv's 'g'/-1 rendering is injective per bit pattern
// (−0 and +0 render differently) — except NaNs, which all render "NaN" and
// so are all equal here regardless of payload bits.  This is the equality
// the engine's duplicate detection and hash joins are defined by; it is
// stricter than Equal, which compares numerics across kinds.
func (v Value) EqualKey(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.Str == o.Str
	case KindInt:
		return v.Int == o.Int
	case KindFloat:
		if v.Float != v.Float {
			return o.Float != o.Float // every NaN formats as "NaN"
		}
		return math.Float64bits(v.Float) == math.Float64bits(o.Float)
	default:
		return true
	}
}

// Equal reports whether two values are equal.  Numeric values compare by
// numeric value across int/float kinds; NULL equals only NULL.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return v.Kind == KindNull && o.Kind == KindNull
	}
	if v.Kind == KindString && o.Kind == KindString {
		return v.Str == o.Str
	}
	vf, vok := v.AsFloat()
	of, ook := o.AsFloat()
	if vok && ook {
		return vf == of
	}
	return v.String() == o.String()
}

// Compare returns -1, 0 or +1 ordering v relative to o.  NULL sorts before
// everything; strings compare lexicographically; numbers numerically.  Mixed
// string/number comparisons fall back to string comparison of renderings.
func (v Value) Compare(o Value) int {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == KindNull && o.Kind == KindNull:
			return 0
		case v.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.Kind == KindString && o.Kind == KindString {
		return strings.Compare(v.Str, o.Str)
	}
	vf, vok := v.AsFloat()
	of, ook := o.AsFloat()
	if vok && ook {
		switch {
		case vf < of:
			return -1
		case vf > of:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(v.String(), o.String())
}

// Tuple is an ordered list of values; positions correspond to the owning
// relation's columns.
type Tuple []Value

// Key returns a canonical encoding of the tuple used for duplicate detection
// and probabilistic answer aggregation.  Values are separated by an unlikely
// delimiter and prefixed by their kind to keep S("1") distinct from I(1).
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteByte(byte('0' + int(v.Kind)))
		b.WriteByte(':')
		b.WriteString(v.String())
	}
	return b.String()
}

// Hash64 returns a 64-bit hash of the whole tuple, consistent with EqualKey.
// It replaces Key() on the hot paths: hashing never formats values.
func (t Tuple) Hash64() uint64 {
	h := fnvOffset64
	for _, v := range t {
		h = v.hash64(h)
	}
	return h
}

// EqualKey reports element-wise EqualKey equality: exactly the tuples that
// share a canonical Key() are EqualKey.  Unlike Equal it distinguishes
// S("1") from I(1), which is what duplicate elimination and probabilistic
// answer aggregation require.
func (t Tuple) EqualKey(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].EqualKey(o[i]) {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// TupleSet is a hash set of tuples under Key equality (Hash64/EqualKey),
// backed by the engine's shared hashIndex bucket-chain structure: collisions
// are resolved by scanning a chain of row indices, so membership never formats
// values and never allocates a slice per bucket — storage is flat slices that
// grow geometrically, with the power-of-two bucket array doubling at load
// factor 1.  Chain indices are int32: the set silently assumes fewer than
// 2^31 tuples, which in-memory relations cannot approach (2 billion rows of
// ≥48 bytes each would need >100 GB).  The zero value is not usable; call
// NewTupleSet.
type TupleSet struct {
	idx hashIndex
}

// NewTupleSet returns an empty set sized for about n tuples.
func NewTupleSet(n int) *TupleSet {
	s := &TupleSet{idx: hashIndex{heads: newBuckets(n), col: -1}}
	s.idx.mask = uint64(len(s.idx.heads) - 1)
	return s
}

// Add inserts the tuple and reports whether it was not already present.
func (s *TupleSet) Add(t Tuple) bool { return s.AddHashed(t.Hash64(), t) }

// AddHashed is Add for callers that already computed the tuple's Hash64 —
// the answer aggregators and batch operators reuse one hash for dedup and
// bucket lookup.  Chain entries whose stored hash differs are bucket
// collisions and are rejected without touching the tuple.
func (s *TupleSet) AddHashed(h uint64, t Tuple) bool {
	for j := s.idx.lookup(h); j != 0; j = s.idx.next[j-1] {
		if s.idx.hashes[j-1] == h && s.idx.rows[j-1].EqualKey(t) {
			return false
		}
	}
	s.idx.add(h, t)
	return true
}

// Len returns the number of distinct tuples in the set.
func (s *TupleSet) Len() int { return len(s.idx.rows) }
