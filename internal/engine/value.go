// Package engine is an in-memory relational algebra engine: typed values,
// tuples, relations, a named instance (database), predicates, and the physical
// operators needed by the paper's workloads — selection, projection, Cartesian
// product, equi-join, duplicate elimination and COUNT/SUM/AVG/MIN/MAX
// aggregation.  Every operator execution is recorded in a Stats collector so
// the evaluation algorithms can report how many source operators they ran
// (Table IV of the paper).
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single typed datum.  The zero value is NULL.
type Value struct {
	Kind  Kind
	Str   string
	Int   int64
	Float float64
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// S returns a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I returns an integer value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// F returns a float value.
func F(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts numeric values to float64; strings parse if possible.
// The second result reports whether the conversion succeeded.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), true
	case KindFloat:
		return v.Float, true
	case KindString:
		f, err := strconv.ParseFloat(v.Str, 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// String renders the value for display and for canonical answer-tuple keys.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	default:
		return "?"
	}
}

// Equal reports whether two values are equal.  Numeric values compare by
// numeric value across int/float kinds; NULL equals only NULL.
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return v.Kind == KindNull && o.Kind == KindNull
	}
	if v.Kind == KindString && o.Kind == KindString {
		return v.Str == o.Str
	}
	vf, vok := v.AsFloat()
	of, ook := o.AsFloat()
	if vok && ook {
		return vf == of
	}
	return v.String() == o.String()
}

// Compare returns -1, 0 or +1 ordering v relative to o.  NULL sorts before
// everything; strings compare lexicographically; numbers numerically.  Mixed
// string/number comparisons fall back to string comparison of renderings.
func (v Value) Compare(o Value) int {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == KindNull && o.Kind == KindNull:
			return 0
		case v.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.Kind == KindString && o.Kind == KindString {
		return strings.Compare(v.Str, o.Str)
	}
	vf, vok := v.AsFloat()
	of, ook := o.AsFloat()
	if vok && ook {
		switch {
		case vf < of:
			return -1
		case vf > of:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(v.String(), o.String())
}

// Tuple is an ordered list of values; positions correspond to the owning
// relation's columns.
type Tuple []Value

// Key returns a canonical encoding of the tuple used for duplicate detection
// and probabilistic answer aggregation.  Values are separated by an unlikely
// delimiter and prefixed by their kind to keep S("1") distinct from I(1).
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(0x1f)
		}
		b.WriteByte(byte('0' + int(v.Kind)))
		b.WriteByte(':')
		b.WriteString(v.String())
	}
	return b.String()
}

// Equal reports element-wise equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
