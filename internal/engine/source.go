package engine

import (
	"context"
	"fmt"
)

// RowSource is the engine's streaming iterator: a pull-based stream of tuples
// with a fixed column layout.  The executor compiles a Plan into a chain of
// row sources so that selections and projections are fused with the scan that
// feeds them — no intermediate Relation is materialized between them.  Only
// pipeline breakers buffer rows: the build side of a hash join, the inner side
// of a Cartesian product, duplicate elimination's seen-set, aggregation, and
// the final materialization of the pipeline's result.
//
// Next returns (row, true, nil) for each row, (nil, false, nil) once the
// stream is exhausted, and (nil, false, err) on failure (including context
// cancellation).  Rows may share backing storage with the source's input —
// consumers must not mutate them.
type RowSource interface {
	// Name is the relation name a materialization of this source carries.
	Name() string
	// Columns is the output column layout.  It is fixed for the stream's life.
	Columns() []string
	// Next pulls the next row.
	Next() (Tuple, bool, error)
}

// Materialize drains the source into a Relation.
func Materialize(src RowSource) (*Relation, error) {
	out := &Relation{Name: src.Name(), Columns: src.Columns()}
	for {
		row, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Rows = append(out.Rows, row)
	}
}

// arenaChunkValues is the flat allocation unit for output tuples: operators
// that build new tuples (project, product, join) carve them out of []Value
// chunks of this size instead of calling make once per row.
const arenaChunkValues = 8192

// valueArena bulk-allocates tuples from flat []Value chunks.
type valueArena struct {
	buf []Value
}

// tuple returns a zero-length-capped slice of n fresh values.
func (a *valueArena) tuple(n int) Tuple {
	if n == 0 {
		return Tuple{}
	}
	if len(a.buf) < n {
		c := arenaChunkValues
		if c < n {
			c = n
		}
		a.buf = make([]Value, c)
	}
	t := Tuple(a.buf[:n:n])
	a.buf = a.buf[n:]
	return t
}

// concat appends lr and rr into one arena-backed tuple.
func (a *valueArena) concat(lr, rr Tuple) Tuple {
	t := a.tuple(len(lr) + len(rr))
	copy(t, lr)
	copy(t[len(lr):], rr)
	return t
}

// reserve sizes the arena's current chunk for at least n more values when the
// caller can estimate its total output up front: an exact estimate means one
// slab and no partially used chunk left behind as dead weight.
func (a *valueArena) reserve(n int) {
	if len(a.buf) < n {
		a.buf = make([]Value, n)
	}
}

// canceledEvery reports the context error on the first call and then once per
// checkInterval calls, keeping cancellation prompt at negligible per-row cost.
func canceledEvery(ctx context.Context, n int) error {
	if n%checkInterval == 0 {
		return canceled(ctx)
	}
	return nil
}

// matSource streams an already-materialized row list (a MaterialPlan input or
// an operator wrapper's argument).  It records nothing.
type matSource struct {
	ctx  context.Context
	name string
	cols []string
	rows []Tuple
	i    int
}

func newMatSource(ctx context.Context, name string, cols []string, rows []Tuple) *matSource {
	return &matSource{ctx: ctx, name: name, cols: cols, rows: rows}
}

func (s *matSource) Name() string      { return s.name }
func (s *matSource) Columns() []string { return s.cols }

func (s *matSource) Next() (Tuple, bool, error) {
	if err := canceledEvery(s.ctx, s.i); err != nil {
		return nil, false, err
	}
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.i]
	s.i++
	return row, true, nil
}

// scanSource streams a base relation under an alias, sharing the base rows
// (zero copy) and recording one "scan" when exhausted.
type scanSource struct {
	matSource
	stats *Stats
	done  bool
}

func newScanSource(ctx context.Context, base *Relation, alias string, stats *Stats) *scanSource {
	cols := make([]string, len(base.Columns))
	for i, c := range base.Columns {
		cols[i] = alias + "." + unqualified(c)
	}
	return &scanSource{
		matSource: matSource{ctx: ctx, name: alias, cols: cols, rows: base.Rows},
		stats:     stats,
	}
}

func (s *scanSource) Next() (Tuple, bool, error) {
	row, ok, err := s.matSource.Next()
	if !ok && err == nil && !s.done {
		s.done = true
		s.stats.record(OpKindScan, 0, len(s.rows))
	}
	return row, ok, err
}

// filterSource fuses a selection over its input: rows flow through without
// being buffered or copied.
type filterSource struct {
	ctx      context.Context
	src      RowSource
	pred     boundPredicate
	stats    *Stats
	in, out  int
	recorded bool
}

func (s *filterSource) Name() string      { return s.src.Name() }
func (s *filterSource) Columns() []string { return s.src.Columns() }

func (s *filterSource) Next() (Tuple, bool, error) {
	for {
		row, ok, err := s.src.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if !s.recorded {
				s.recorded = true
				s.stats.record(OpKindSelect, s.in, s.out)
			}
			return nil, false, nil
		}
		if err := canceledEvery(s.ctx, s.in); err != nil {
			return nil, false, err
		}
		s.in++
		keep, err := s.pred.eval(row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			s.out++
			return row, true, nil
		}
	}
}

// projectSource fuses a projection over its input, building output tuples
// from the arena.
type projectSource struct {
	ctx      context.Context
	src      RowSource
	name     string
	cols     []string
	idx      []int
	stats    *Stats
	arena    valueArena
	n        int
	recorded bool
}

func (s *projectSource) Name() string      { return s.name }
func (s *projectSource) Columns() []string { return s.cols }

func (s *projectSource) Next() (Tuple, bool, error) {
	row, ok, err := s.src.Next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		if !s.recorded {
			s.recorded = true
			s.stats.record(OpKindProject, s.n, s.n)
		}
		return nil, false, nil
	}
	if err := canceledEvery(s.ctx, s.n); err != nil {
		return nil, false, err
	}
	s.n++
	t := s.arena.tuple(len(s.idx))
	for i, j := range s.idx {
		t[i] = row[j]
	}
	return t, true, nil
}

// productSource is the Cartesian product: the right input is buffered (the
// product's pipeline-breaking side), the left input streams.
type productSource struct {
	ctx         context.Context
	left, right RowSource
	name        string
	cols        []string
	stats       *Stats
	arena       valueArena

	started bool
	rrows   []Tuple
	cur     Tuple // current left row, nil when a new one is needed
	ri      int   // next right index for cur
	leftIn  int
	out     int
	done    bool
}

func newProductSource(ctx context.Context, left, right RowSource, stats *Stats) *productSource {
	cols := make([]string, 0, len(left.Columns())+len(right.Columns()))
	cols = append(cols, left.Columns()...)
	cols = append(cols, right.Columns()...)
	return &productSource{
		ctx: ctx, left: left, right: right,
		name: left.Name() + "x" + right.Name(), cols: cols, stats: stats,
	}
}

func (s *productSource) Name() string      { return s.name }
func (s *productSource) Columns() []string { return s.cols }

func (s *productSource) finish() (Tuple, bool, error) {
	if !s.done {
		s.done = true
		s.stats.record(OpKindProduct, s.leftIn+len(s.rrows), s.out)
	}
	return nil, false, nil
}

func (s *productSource) Next() (Tuple, bool, error) {
	if !s.started {
		s.started = true
		for {
			row, ok, err := s.right.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			s.rrows = append(s.rrows, row)
		}
	}
	for {
		if s.cur == nil {
			row, ok, err := s.left.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return s.finish()
			}
			s.leftIn++
			if len(s.rrows) == 0 {
				continue
			}
			s.cur, s.ri = row, 0
		}
		if err := canceledEvery(s.ctx, s.out); err != nil {
			return nil, false, err
		}
		t := s.arena.concat(s.cur, s.rrows[s.ri])
		s.ri++
		if s.ri >= len(s.rrows) {
			s.cur = nil
		}
		s.out++
		return t, true, nil
	}
}

// joinSource is the equi-join: the right input is drained into a hash index
// (build side, the shared hashIndex bucket-chain structure), then left rows
// stream through as probes.  Matching is by EqualKey — identical to the
// canonical-key equality the join historically used, but without formatting a
// key string per row.
type joinSource struct {
	ctx         context.Context
	left, right RowSource
	li, ri      int
	name        string
	cols        []string
	stats       *Stats
	arena       valueArena

	started   bool
	build     *hashIndex
	cur       Tuple  // current probe row
	chain     int32  // next build-chain position (1-based) for cur; 0 = exhausted
	chainHash uint64 // cur's key hash, to reject bucket collisions
	leftIn    int
	out       int
	done      bool
}

func newJoinSource(ctx context.Context, left, right RowSource, li, ri int, stats *Stats) *joinSource {
	cols := make([]string, 0, len(left.Columns())+len(right.Columns()))
	cols = append(cols, left.Columns()...)
	cols = append(cols, right.Columns()...)
	return &joinSource{
		ctx: ctx, left: left, right: right, li: li, ri: ri,
		name: left.Name() + "⋈" + right.Name(), cols: cols, stats: stats,
	}
}

func (s *joinSource) Name() string      { return s.name }
func (s *joinSource) Columns() []string { return s.cols }

func (s *joinSource) Next() (Tuple, bool, error) {
	if !s.started {
		s.started = true
		var rrows []Tuple
		for {
			row, ok, err := s.right.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			rrows = append(rrows, row)
		}
		build, err := buildColumnHashIndex(s.ctx, rrows, s.ri)
		if err != nil {
			return nil, false, err
		}
		s.build = build
	}
	for {
		for s.chain != 0 {
			j := s.chain
			s.chain = s.build.next[j-1]
			if s.build.hashes[j-1] != s.chainHash {
				continue // bucket collision: different hash entirely
			}
			rr := s.build.rows[j-1]
			if !rr[s.ri].EqualKey(s.cur[s.li]) {
				continue // hash collision, not an actual match
			}
			if err := canceledEvery(s.ctx, s.out); err != nil {
				return nil, false, err
			}
			s.out++
			return s.arena.concat(s.cur, rr), true, nil
		}
		row, ok, err := s.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if !s.done {
				s.done = true
				s.stats.record(OpKindJoin, s.leftIn+len(s.build.rows), s.out)
			}
			return nil, false, nil
		}
		if err := canceledEvery(s.ctx, s.leftIn); err != nil {
			return nil, false, err
		}
		s.leftIn++
		s.cur = row
		s.chainHash = row[s.li].Hash64()
		s.chain = s.build.lookup(s.chainHash)
	}
}

// distinctSource streams first-seen rows, holding only the seen-set.
type distinctSource struct {
	ctx      context.Context
	src      RowSource
	seen     *TupleSet
	stats    *Stats
	in, out  int
	recorded bool
}

func newDistinctSource(ctx context.Context, src RowSource, stats *Stats) *distinctSource {
	return &distinctSource{ctx: ctx, src: src, seen: NewTupleSet(64), stats: stats}
}

func (s *distinctSource) Name() string      { return s.src.Name() }
func (s *distinctSource) Columns() []string { return s.src.Columns() }

func (s *distinctSource) Next() (Tuple, bool, error) {
	for {
		row, ok, err := s.src.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if !s.recorded {
				s.recorded = true
				s.stats.record(OpKindDistinct, s.in, s.out)
			}
			return nil, false, nil
		}
		if err := canceledEvery(s.ctx, s.in); err != nil {
			return nil, false, err
		}
		s.in++
		if s.seen.Add(row) {
			s.out++
			return row, true, nil
		}
	}
}

// validAggFunc rejects aggregate functions outside the supported set.
func validAggFunc(fn AggFunc) error {
	switch fn {
	case AggCount, AggSum, AggAvg, AggMin, AggMax:
		return nil
	default:
		return fmt.Errorf("aggregate: unsupported function %v", fn)
	}
}

// aggOutputColumn names the single result column of an aggregate.
func aggOutputColumn(fn AggFunc, column string) string {
	if column != "" {
		return fn.String() + "(" + column + ")"
	}
	return fn.String()
}

// aggAccumulator folds rows into a single aggregate value.  Both the
// materialized Aggregate and the streaming aggSource drive it, so the
// COUNT/SUM/AVG/MIN/MAX semantics — accumulation order, error strings, the
// NULL-on-empty rules — exist exactly once.
type aggAccumulator struct {
	fn     AggFunc
	idx    int    // value column position; -1 for COUNT
	column string // display name, for error messages
	n      int
	sum    float64
	numIn  int
	best   Value
}

func (a *aggAccumulator) add(row Tuple) error {
	a.n++
	switch a.fn {
	case AggCount:
		// counting only
	case AggSum, AggAvg:
		f, ok := row[a.idx].AsFloat()
		if !ok {
			return fmt.Errorf("aggregate %s: non-numeric value %v in column %q", a.fn, row[a.idx], a.column)
		}
		a.sum += f
		a.numIn++
	case AggMin, AggMax:
		v := row[a.idx]
		if a.n == 1 {
			a.best = v
		} else if cmp := v.Compare(a.best); (a.fn == AggMin && cmp < 0) || (a.fn == AggMax && cmp > 0) {
			a.best = v
		}
	}
	return nil
}

// addAll folds a materialized row slice with per-function loops — same
// semantics as add row by row (same accumulation order, same errors), without
// paying a per-row dispatch.  The materialized Aggregate and the batch
// pipeline's full batches drive it.  The hot loops accumulate into locals,
// read values through a pointer and run in checkInterval blocks so the inner
// loop carries no per-row cancellation arithmetic: a per-row field store, a
// 48-byte Value copy or a modulo per row are all measurable at scan speed.
func (a *aggAccumulator) addAll(ctx context.Context, rows []Tuple) error {
	switch a.fn {
	case AggCount:
		a.n += len(rows)
	case AggSum, AggAvg:
		idx := a.idx
		sum := a.sum
		for lo := 0; lo < len(rows); lo += checkInterval {
			if lo > 0 {
				if err := canceled(ctx); err != nil {
					a.sum = sum
					return err
				}
			}
			hi := lo + checkInterval
			if hi > len(rows) {
				hi = len(rows)
			}
			for i := lo; i < hi; i++ {
				v := &rows[i][idx]
				switch v.Kind {
				case KindFloat:
					sum += v.Float
				case KindInt:
					sum += float64(v.Int)
				default:
					f, ok := v.AsFloat()
					if !ok {
						a.sum = sum
						a.n += i + 1
						return fmt.Errorf("aggregate %s: non-numeric value %v in column %q", a.fn, *v, a.column)
					}
					sum += f
				}
			}
		}
		a.sum = sum
		a.n += len(rows)
		a.numIn += len(rows)
	case AggMin, AggMax:
		idx := a.idx
		for lo := 0; lo < len(rows); lo += checkInterval {
			if lo > 0 {
				if err := canceled(ctx); err != nil {
					return err
				}
			}
			hi := lo + checkInterval
			if hi > len(rows) {
				hi = len(rows)
			}
			for i := lo; i < hi; i++ {
				v := rows[i][idx]
				if a.n == 0 && i == 0 {
					a.best = v
				} else if cmp := v.Compare(a.best); (a.fn == AggMin && cmp < 0) || (a.fn == AggMax && cmp > 0) {
					a.best = v
				}
			}
		}
		a.n += len(rows)
	}
	return nil
}

// addSel folds the live rows of one batch: the selection vector indexes into
// rows exactly as the batch operators produced it, so accumulation order —
// and therefore float summation — is identical to feeding the selected rows
// one at a time.  A nil selection is the full batch (addAll).  Selection
// vectors are bounded by the batch size, so the caller's per-batch
// cancellation check keeps the selected path prompt; the full-batch path
// re-checks per block in case the configured batch size is huge.
func (a *aggAccumulator) addSel(ctx context.Context, rows []Tuple, sel []int32) error {
	if sel == nil {
		return a.addAll(ctx, rows)
	}
	switch a.fn {
	case AggCount:
		a.n += len(sel)
	case AggSum, AggAvg:
		idx := a.idx
		sum := a.sum
		for k, i := range sel {
			v := &rows[i][idx]
			switch v.Kind {
			case KindFloat:
				sum += v.Float
			case KindInt:
				sum += float64(v.Int)
			default:
				f, ok := v.AsFloat()
				if !ok {
					a.sum = sum
					a.n += k + 1
					return fmt.Errorf("aggregate %s: non-numeric value %v in column %q", a.fn, *v, a.column)
				}
				sum += f
			}
		}
		a.sum = sum
		a.n += len(sel)
		a.numIn += len(sel)
	case AggMin, AggMax:
		idx := a.idx
		for k, i := range sel {
			v := rows[i][idx]
			if a.n == 0 && k == 0 {
				a.best = v
			} else if cmp := v.Compare(a.best); (a.fn == AggMin && cmp < 0) || (a.fn == AggMax && cmp > 0) {
				a.best = v
			}
		}
		a.n += len(sel)
	}
	return nil
}

func (a *aggAccumulator) result() Tuple {
	switch a.fn {
	case AggCount:
		return Tuple{I(int64(a.n))}
	case AggSum:
		return Tuple{F(a.sum)}
	case AggAvg:
		if a.numIn == 0 {
			return Tuple{Null()}
		}
		return Tuple{F(a.sum / float64(a.numIn))}
	default: // AggMin, AggMax
		if a.n == 0 {
			return Tuple{Null()}
		}
		return Tuple{a.best}
	}
}

// aggSource drains its input through the aggregate accumulator and emits the
// single result row.  The accumulation order is the input order, so float
// summation is bit-identical to the materialized implementation.
type aggSource struct {
	ctx   context.Context
	src   RowSource
	acc   aggAccumulator
	stats *Stats

	emitted bool
}

func newAggSource(ctx context.Context, src RowSource, fn AggFunc, column string, stats *Stats) (*aggSource, error) {
	if err := validAggFunc(fn); err != nil {
		return nil, err
	}
	idx := -1
	if fn != AggCount {
		idx = lookupColumn(src.Columns(), column)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s: column %q not found in %v", fn, column, src.Columns())
		}
	}
	return &aggSource{
		ctx: ctx, src: src, stats: stats,
		acc: aggAccumulator{fn: fn, idx: idx, column: column},
	}, nil
}

func (s *aggSource) Name() string { return s.src.Name() }

func (s *aggSource) Columns() []string {
	return []string{aggOutputColumn(s.acc.fn, s.acc.column)}
}

func (s *aggSource) Next() (Tuple, bool, error) {
	if s.emitted {
		return nil, false, nil
	}
	for {
		row, ok, err := s.src.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		if err := canceledEvery(s.ctx, s.acc.n); err != nil {
			return nil, false, err
		}
		if err := s.acc.add(row); err != nil {
			return nil, false, err
		}
	}
	s.emitted = true
	s.stats.record(OpKindAggregate, s.acc.n, 1)
	return s.acc.result(), true, nil
}

// selectLevel is one bound selection of a constant-filter stack above a base
// scan, with its rows-in/rows-out accounting.  A nil residual marks a level
// whose predicate the index probe satisfies exactly.
type selectLevel struct {
	residual boundPredicate
	in, out  int
}

// evalLevels runs the row through the levels bottom-to-top, counting per-level
// input and output rows exactly as a chain of filterSources would.
func evalLevels(levels []selectLevel, row Tuple) (bool, error) {
	for i := range levels {
		l := &levels[i]
		l.in++
		if l.residual != nil {
			ok, err := l.residual.eval(row)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		l.out++
	}
	return true, nil
}

// recordLevels records one executed selection per level, preserving the
// logical operator counts of the scan+filter pipeline the index replaced.
func recordLevels(levels []selectLevel, stats *Stats) {
	for i := range levels {
		stats.record(OpKindSelect, levels[i].in, levels[i].out)
	}
}

// indexScanSource serves a stack of constant selections directly above a base
// relation scan from the shared per-column hash index: instead of streaming
// every base row through the filters, it probes the index for the rows whose
// probe column equals the constant and applies only the residual predicates.
// Probe chains preserve base row order, so the output is bit-identical to the
// scan+filter pipeline it replaces.  When the column's content makes the
// constant unanswerable from the index (mixed-kind columns whose
// Compare-equality is wider than hash equality), it falls back to exactly
// that pipeline at runtime.
type indexScanSource struct {
	ctx   context.Context
	cache *IndexCache
	base  *Relation
	alias string
	cols  []string
	stats *Stats

	probeCol int
	probeVal Value
	levels   []selectLevel
	fulls    []boundPredicate // per-level full predicates, for the fallback

	started  bool
	fallback RowSource
	rows     []Tuple
	matches  []int32
	mi       int
	done     bool
}

func (s *indexScanSource) Name() string      { return s.alias }
func (s *indexScanSource) Columns() []string { return s.cols }

func (s *indexScanSource) start() error {
	idx, err := s.cache.columnIndex(s.ctx, s.base, s.probeCol, s.stats)
	if err != nil {
		return err
	}
	probes, ok := probeValuesForEq(s.probeVal, idx.kinds, idx.hasNaN)
	if !ok {
		// The probe set cannot cover the predicate on this column's content:
		// run the exact pipeline the compiler would have built.
		src := RowSource(newScanSource(s.ctx, s.base, s.alias, s.stats))
		for _, bp := range s.fulls {
			src = &filterSource{ctx: s.ctx, src: src, pred: bp, stats: s.stats}
		}
		s.fallback = src
		return nil
	}
	s.stats.recordIndexLookup()
	matches, _, err := idx.probeMatches(s.ctx, probes)
	if err != nil {
		return err
	}
	s.matches, s.rows = matches, idx.rows
	return nil
}

func (s *indexScanSource) Next() (Tuple, bool, error) {
	if !s.started {
		s.started = true
		if err := s.start(); err != nil {
			return nil, false, err
		}
	}
	if s.fallback != nil {
		return s.fallback.Next()
	}
	for {
		if s.mi >= len(s.matches) {
			if !s.done {
				s.done = true
				recordLevels(s.levels, s.stats)
			}
			return nil, false, nil
		}
		if err := canceledEvery(s.ctx, s.mi); err != nil {
			return nil, false, err
		}
		row := s.rows[s.matches[s.mi]]
		s.mi++
		keep, err := evalLevels(s.levels, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

// sharedJoinSource is the equi-join whose build side is a bare or
// constant-filtered scan of a base relation: instead of draining and hashing
// the build side once per query, it attaches the instance's shared per-column
// index and evaluates the build-side constant filters per probed candidate.
// h reformulated queries probing the same join therefore pay one build instead
// of h.  Chain order is base row order, so the joined output is bit-identical
// to the drain-and-build join it replaces.
type sharedJoinSource struct {
	ctx    context.Context
	cache  *IndexCache
	left   RowSource
	li     int
	base   *Relation
	ri     int
	name   string
	cols   []string
	stats  *Stats
	arena  valueArena
	levels []selectLevel

	started   bool
	build     *hashIndex
	cur       Tuple
	chain     int32
	chainHash uint64
	leftIn    int
	out       int
	done      bool
}

func (s *sharedJoinSource) Name() string      { return s.name }
func (s *sharedJoinSource) Columns() []string { return s.cols }

func (s *sharedJoinSource) Next() (Tuple, bool, error) {
	if !s.started {
		s.started = true
		build, err := s.cache.columnIndex(s.ctx, s.base, s.ri, s.stats)
		if err != nil {
			return nil, false, err
		}
		s.stats.recordIndexLookup()
		s.build = build
	}
	for {
		for s.chain != 0 {
			j := s.chain
			s.chain = s.build.next[j-1]
			if s.build.hashes[j-1] != s.chainHash {
				continue // bucket collision: different hash entirely
			}
			rr := s.build.rows[j-1]
			if !rr[s.ri].EqualKey(s.cur[s.li]) {
				continue // hash collision: not an actual match
			}
			keep, err := evalLevels(s.levels, rr)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue // filtered out of the build side
			}
			if err := canceledEvery(s.ctx, s.out); err != nil {
				return nil, false, err
			}
			s.out++
			return s.arena.concat(s.cur, rr), true, nil
		}
		row, ok, err := s.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if !s.done {
				s.done = true
				recordLevels(s.levels, s.stats)
				// The build side was never read: only probe rows count as input.
				s.stats.record(OpKindJoin, s.leftIn, s.out)
			}
			return nil, false, nil
		}
		if err := canceledEvery(s.ctx, s.leftIn); err != nil {
			return nil, false, err
		}
		s.leftIn++
		s.cur = row
		s.chainHash = row[s.li].Hash64()
		s.chain = s.build.lookup(s.chainHash)
	}
}
