package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"time"
)

// randValue draws from a pool that deliberately overlaps across kinds:
// S("1"), I(1) and F(1) are distinct under Key equality but equal under the
// loose Equal, so any divergence between the hash-based duplicate detection
// and the canonical-key reference shows up here.
func randValue(rng *rand.Rand) Value {
	n := int64(rng.Intn(4))
	switch rng.Intn(7) {
	case 0:
		return S(strconv.FormatInt(n, 10))
	case 1:
		return I(n)
	case 2:
		return F(float64(n))
	case 3:
		return F(float64(n) + 0.5)
	case 4:
		return S("s" + strconv.FormatInt(n, 10))
	case 5:
		return Null()
	default:
		return I(n + 100)
	}
}

func randRelation(rng *rand.Rand, name string, cols []string, rows int) *Relation {
	r := NewRelation(name, cols)
	for i := 0; i < rows; i++ {
		t := make(Tuple, len(cols))
		for j := range t {
			t[j] = randValue(rng)
		}
		r.MustAppend(t)
	}
	return r
}

// requireSameRelation asserts bit-identical materialized results: same name,
// column layout, row count and canonical row keys in the same order.
func requireSameRelation(t *testing.T, label string, want, got *Relation) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("%s: name %q, want %q", label, got.Name, want.Name)
	}
	if len(want.Columns) != len(got.Columns) {
		t.Fatalf("%s: %d columns, want %d", label, len(got.Columns), len(want.Columns))
	}
	for i := range want.Columns {
		if want.Columns[i] != got.Columns[i] {
			t.Fatalf("%s: column[%d] = %q, want %q", label, i, got.Columns[i], want.Columns[i])
		}
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i].Key() != got.Rows[i].Key() {
			t.Fatalf("%s: row[%d] = %v, want %v", label, i, got.Rows[i], want.Rows[i])
		}
	}
}

func requireSameStats(t *testing.T, label string, want, got *Stats) {
	t.Helper()
	for k := OpKind(0); k < numOpKinds; k++ {
		if want.Count(k) != got.Count(k) {
			t.Fatalf("%s: %s count = %d, want %d", label, k, got.Count(k), want.Count(k))
		}
	}
	if want.RowsRead() != got.RowsRead() {
		t.Fatalf("%s: rows read = %d, want %d", label, got.RowsRead(), want.RowsRead())
	}
	if want.RowsProduced() != got.RowsProduced() {
		t.Fatalf("%s: rows produced = %d, want %d", label, got.RowsProduced(), want.RowsProduced())
	}
}

// TestOperatorsMatchNaiveReference drives the live materialized operators and
// the retained naive reference over randomized inputs and requires identical
// relations (rows and order) and statistics.
func TestOperatorsMatchNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		left := randRelation(rng, "L", []string{"L.a", "L.b", "L.c"}, rng.Intn(40))
		right := randRelation(rng, "R", []string{"R.x", "R.y"}, rng.Intn(40))
		preds := []Predicate{
			Eq("L.a", randValue(rng)),
			&ConstPredicate{Column: "L.b", Op: OpGt, Value: randValue(rng)},
			&ColPredicate{Left: "L.a", Op: OpNe, Right: "L.c"},
			And(Eq("L.a", randValue(rng)), &NotPredicate{Child: Eq("L.b", randValue(rng))}),
			&OrPredicate{Children: []Predicate{Eq("L.a", randValue(rng)), Eq("L.c", randValue(rng))}},
		}
		pred := preds[rng.Intn(len(preds))]

		label := fmt.Sprintf("trial %d", trial)
		wantStats, gotStats := NewStats(), NewStats()

		want, err1 := NaiveSelect(bgCtx, left, pred, wantStats)
		got, err2 := Select(bgCtx, left, pred, gotStats)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s select: naive err=%v, streaming err=%v", label, err1, err2)
		}
		if err1 == nil {
			requireSameRelation(t, label+" select", want, got)
		}

		want, err1 = NaiveProject(bgCtx, left, []string{"L.c", "L.a"}, wantStats)
		got, err2 = Project(bgCtx, left, []string{"L.c", "L.a"}, gotStats)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s project: %v / %v", label, err1, err2)
		}
		requireSameRelation(t, label+" project", want, got)

		want, err1 = NaiveProduct(bgCtx, left, right, wantStats)
		got, err2 = Product(bgCtx, left, right, gotStats)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s product: %v / %v", label, err1, err2)
		}
		requireSameRelation(t, label+" product", want, got)

		want, err1 = NaiveHashJoin(bgCtx, left, right, "L.a", "R.x", wantStats)
		got, err2 = HashJoin(bgCtx, left, right, "L.a", "R.x", gotStats)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s join: %v / %v", label, err1, err2)
		}
		requireSameRelation(t, label+" join", want, got)

		want, err1 = NaiveDistinct(bgCtx, left, wantStats)
		got, err2 = Distinct(bgCtx, left, gotStats)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s distinct: %v / %v", label, err1, err2)
		}
		requireSameRelation(t, label+" distinct", want, got)

		for _, fn := range []AggFunc{AggCount, AggMin, AggMax} {
			col := "L.b"
			if fn == AggCount {
				col = ""
			}
			want, err1 = NaiveAggregate(bgCtx, left, fn, col, wantStats)
			got, err2 = Aggregate(bgCtx, left, fn, col, gotStats)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s agg %s: %v / %v", label, fn, err1, err2)
			}
			requireSameRelation(t, label+" agg "+fn.String(), want, got)
		}

		requireSameStats(t, label, wantStats, gotStats)
	}
}

// numericRelation builds rows whose values all convert to float, for SUM/AVG
// equivalence (float accumulation order must match the reference exactly).
func numericRelation(rng *rand.Rand, rows int) *Relation {
	r := NewRelation("N", []string{"N.v"})
	for i := 0; i < rows; i++ {
		if rng.Intn(2) == 0 {
			r.MustAppend(Tuple{I(int64(rng.Intn(1000) - 500))})
		} else {
			r.MustAppend(Tuple{F(rng.Float64()*100 - 50)})
		}
	}
	return r
}

func TestSumAvgMatchNaiveBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		rel := numericRelation(rng, rng.Intn(200))
		for _, fn := range []AggFunc{AggSum, AggAvg} {
			want, err1 := NaiveAggregate(bgCtx, rel, fn, "N.v", NewStats())
			got, err2 := Aggregate(bgCtx, rel, fn, "N.v", NewStats())
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d %s: %v / %v", trial, fn, err1, err2)
			}
			// Bit-identical float result, not epsilon-close: the streaming
			// accumulator must add in the same order as the reference.
			if len(got.Rows) != 1 || got.Rows[0][0] != want.Rows[0][0] {
				t.Fatalf("trial %d %s = %#v, want %#v", trial, fn, got.Rows[0][0], want.Rows[0][0])
			}
		}
	}
}

// randPlan builds a random plan over relations L (columns L.a,L.b,L.c) and
// R (columns R.x,R.y), exercising every node type the compiler lowers.
func randPlan(rng *rand.Rand) Plan {
	scanL := &ScanPlan{Relation: "L"}
	scanR := &ScanPlan{Relation: "R"}
	sel := func(child Plan, col string) Plan {
		return &SelectPlan{Pred: &ConstPredicate{Column: col, Op: CompareOp(rng.Intn(6)), Value: randValue(rng)}, Child: child}
	}
	switch rng.Intn(8) {
	case 0:
		return sel(scanL, "L.a")
	case 1:
		return &ProjectPlan{Columns: []string{"L.b", "L.a"}, Child: sel(scanL, "L.c")}
	case 2:
		return &JoinPlan{LeftCol: "L.a", RightCol: "R.x", Left: sel(scanL, "L.b"), Right: scanR}
	case 3:
		return &DistinctPlan{Child: &ProjectPlan{Columns: []string{"L.a"}, Child: scanL}}
	case 4:
		return &AggregatePlan{Func: AggCount, Child: sel(scanL, "L.a")}
	case 5:
		return &ProductPlan{Left: sel(scanL, "L.a"), Right: sel(scanR, "R.y")}
	case 6:
		return &SelectPlan{
			Pred:  &ColPredicate{Left: "L.a", Op: OpEq, Right: "R.x"},
			Child: &ProductPlan{Left: scanL, Right: scanR},
		}
	default:
		return &DistinctPlan{Child: &ProjectPlan{Columns: []string{"L.a", "R.y"},
			Child: &JoinPlan{LeftCol: "L.c", RightCol: "R.y", Left: scanL, Right: scanR}}}
	}
}

// TestStreamingExecutorMatchesNaiveExecute compiles random plans through the
// streaming pipeline — the vectorized batch pipeline at its default and at
// adversarial batch sizes (1: every batch is a single row; 7: batches straddle
// every operator boundary; 1024: one batch per small input), and the
// tuple-at-a-time fallback (-1) — and requires results and statistics
// identical to the retained materialize-per-operator executor at every
// setting.
func TestStreamingExecutorMatchesNaiveExecute(t *testing.T) {
	batchSizes := []int{0, -1, 1, 7, 1024}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		db := NewInstance("D")
		db.AddRelation(randRelation(rng, "L", []string{"a", "b", "c"}, rng.Intn(30)))
		db.AddRelation(randRelation(rng, "R", []string{"x", "y"}, rng.Intn(30)))
		plan := randPlan(rng)

		naiveStats := NewStats()
		want, err1 := NaiveExecute(bgCtx, db, plan, naiveStats)

		for _, bs := range batchSizes {
			ex := &Executor{DB: db, Stats: NewStats(), Batch: bs}
			got, err2 := ex.ExecuteContext(bgCtx, plan)

			label := fmt.Sprintf("trial %d batch %d plan %s", trial, bs, plan.Signature())
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: naive err=%v, streaming err=%v", label, err1, err2)
			}
			if err1 != nil {
				continue
			}
			requireSameRelation(t, label, want, got)
			requireSameStats(t, label, naiveStats, ex.Stats)
		}
	}
}

// TestPipelineCancellation covers cancellation mid-stream: an already-expired
// context aborts before producing anything, and a deadline expiring inside a
// huge fused product+select pipeline surfaces promptly even though no
// intermediate relation is ever materialized.
func TestPipelineCancellation(t *testing.T) {
	db := NewInstance("big")
	rel := NewRelation("Big", []string{"v"})
	for i := 0; i < 5000; i++ {
		rel.MustAppend(Tuple{I(int64(i))})
	}
	db.AddRelation(rel)
	// σ[false](Big × Big): ~25M streamed rows, none kept — the pipeline does
	// all its work inside fused operators.
	plan := &SelectPlan{
		Pred: Eq("A.v", I(-1)),
		Child: &ProductPlan{
			Left:  &ScanPlan{Relation: "Big", Alias: "A"},
			Right: &ScanPlan{Relation: "Big", Alias: "B"},
		},
	}

	// Batch 0 = default vectorized pipeline, -1 = tuple-at-a-time fallback,
	// 64 = cancellation must surface between small batches.
	for _, bs := range []int{0, -1, 64} {
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		ex := &Executor{DB: db, Stats: NewStats(), Batch: bs}
		if _, err := ex.ExecuteContext(cancelled, plan); !errors.Is(err, context.Canceled) {
			t.Fatalf("batch %d: pre-cancelled execute err = %v, want context.Canceled", bs, err)
		}

		ctx, cancelDeadline := context.WithTimeout(context.Background(), 5*time.Millisecond)
		start := time.Now()
		_, err := (&Executor{DB: db, Stats: NewStats(), Batch: bs}).ExecuteContext(ctx, plan)
		cancelDeadline()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("batch %d: mid-stream deadline err = %v, want context.DeadlineExceeded", bs, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("batch %d: cancellation took %v, want prompt abort", bs, elapsed)
		}
	}
}

// TestBatchEdgeCases pins the batch pipeline's boundary behavior: empty
// relations, a single row, inputs exactly at the batch size (the final batch is
// full, then the source must still report exhaustion cleanly), and selection
// vectors that empty out mid-pipeline must all agree with the naive reference
// at every operator.
func TestBatchEdgeCases(t *testing.T) {
	sizedRelation := func(name string, cols []string, rows int) *Relation {
		r := NewRelation(name, cols)
		for i := 0; i < rows; i++ {
			r.MustAppend(Tuple{I(int64(i)), S("s" + strconv.Itoa(i%3))})
		}
		return r
	}
	plans := []Plan{
		&ScanPlan{Relation: "E"},
		&SelectPlan{Pred: Eq("E.id", I(0)), Child: &ScanPlan{Relation: "E"}},
		// σ[id = -1]: the selection vector goes empty in the first batch and
		// stays empty; downstream operators must still stream to completion.
		&ProjectPlan{Columns: []string{"E.tag"},
			Child: &SelectPlan{Pred: Eq("E.id", I(-1)), Child: &ScanPlan{Relation: "E"}}},
		&JoinPlan{LeftCol: "E.id", RightCol: "F.id",
			Left: &ScanPlan{Relation: "E"}, Right: &ScanPlan{Relation: "F"}},
		&DistinctPlan{Child: &ProjectPlan{Columns: []string{"E.tag"}, Child: &ScanPlan{Relation: "E"}}},
		&AggregatePlan{Func: AggSum, Column: "E.id", Child: &ScanPlan{Relation: "E"}},
		&ProductPlan{Left: &ScanPlan{Relation: "E"}, Right: &ScanPlan{Relation: "F"}},
	}
	const testBatch = 8
	// Row counts hugging the batch-size boundaries for both the explicit test
	// size and the default: empty, one, exactly one batch, one over, exactly
	// one default batch.
	for _, rows := range []int{0, 1, testBatch, testBatch + 1, DefaultBatchSize} {
		db := NewInstance("edge")
		db.AddRelation(sizedRelation("E", []string{"E.id", "E.tag"}, rows))
		db.AddRelation(sizedRelation("F", []string{"F.id", "F.w"}, rows/2))
		for pi, plan := range plans {
			naiveStats := NewStats()
			want, err := NaiveExecute(bgCtx, db, plan, naiveStats)
			if err != nil {
				t.Fatalf("rows %d plan %d: naive: %v", rows, pi, err)
			}
			for _, bs := range []int{0, testBatch, 1} {
				ex := &Executor{DB: db, Stats: NewStats(), Batch: bs}
				got, err := ex.ExecuteContext(bgCtx, plan)
				if err != nil {
					t.Fatalf("rows %d plan %d batch %d: %v", rows, pi, bs, err)
				}
				label := fmt.Sprintf("rows %d plan %d batch %d", rows, pi, bs)
				requireSameRelation(t, label, want, got)
				requireSameStats(t, label, naiveStats, ex.Stats)
			}
		}
	}
}

// TestHashKeyConsistency pins the contract between the hash scheme and the
// canonical key encoding: tuples are EqualKey exactly when their Key strings
// match, and EqualKey tuples always share a hash.
func TestHashKeyConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tuples := make([]Tuple, 300)
	for i := range tuples {
		tpl := make(Tuple, 1+rng.Intn(3))
		for j := range tpl {
			tpl[j] = randValue(rng)
		}
		tuples[i] = tpl
	}
	// Every NaN payload renders as "NaN" in the canonical key, so
	// distinct-bit NaNs must be EqualKey and share a hash.
	tuples = append(tuples,
		Tuple{F(math.NaN())},
		Tuple{F(math.Float64frombits(math.Float64bits(math.NaN()) ^ 1))},
		Tuple{F(math.Float64frombits(0xfff8000000000001))},
	)
	for _, a := range tuples {
		for _, b := range tuples {
			keyEq := a.Key() == b.Key()
			if got := a.EqualKey(b); got != keyEq {
				t.Fatalf("EqualKey(%v, %v) = %v, Key equality = %v", a, b, got, keyEq)
			}
			if keyEq && a.Hash64() != b.Hash64() {
				t.Fatalf("key-equal tuples %v and %v hash differently", a, b)
			}
		}
	}
}

// TestColumnIndexMatchesLinearLookup pins the cached resolution map to the
// linear reference rules for qualified, unqualified, missing and ambiguous
// names.
func TestColumnIndexMatchesLinearLookup(t *testing.T) {
	colSets := [][]string{
		{"A.x", "A.y", "B.x", "B.z"},
		{"x", "y", "z"},
		{"A.x", "x"},
		{"R.a", "R.a"},
		{},
		{"A.cid", "B.cid", "C.name"},
	}
	probes := []string{"A.x", "B.x", "x", "y", "z", "a", "cid", "name", "missing", "A.missing", "R.a"}
	for _, cols := range colSets {
		rel := &Relation{Name: "T", Columns: cols}
		for _, p := range probes {
			want := lookupColumn(cols, p)
			if got := rel.ColumnIndex(p); got != want {
				t.Errorf("cols %v: ColumnIndex(%q) = %d, linear reference = %d", cols, p, got, want)
			}
		}
	}
}

// TestTupleSetSemantics checks first-seen semantics under cross-kind
// collisions that the loose Equal would merge.
func TestTupleSetSemantics(t *testing.T) {
	s := NewTupleSet(4)
	if !s.Add(Tuple{I(1)}) {
		t.Fatal("first add should be new")
	}
	if s.Add(Tuple{I(1)}) {
		t.Fatal("duplicate add should report existing")
	}
	if !s.Add(Tuple{S("1")}) {
		t.Fatal("S(\"1\") is distinct from I(1) under key equality")
	}
	if !s.Add(Tuple{F(1)}) {
		t.Fatal("F(1) is distinct from I(1) under key equality")
	}
	if s.Len() != 3 {
		t.Fatalf("set size = %d, want 3", s.Len())
	}
}
